// Package chaos is the fault-injection layer of the test stack: a
// decorator around any coll.Comm that perturbs point-to-point traffic
// under a seeded PRNG — per-link delay, bounded reorder, duplicate
// delivery, one-shot drops repaired by an ack-tagged retry protocol, and
// per-rank slowdown — while preserving the semantics the collectives
// above it rely on.
//
// The decorator multiplexes its own wire protocol over the raw link layer
// (coll.Transport) of either backend: every application message travels
// as an envelope carrying the application tag plus two sequence numbers,
// one per link (the deduplication and acknowledgement key) and one per
// (link, tag) stream (the delivery-order key). Receivers deduplicate,
// acknowledge, and deliver each (source, tag) stream in send order, so
// the paper's tag discipline — collective n's messages never satisfy
// collective n+1's receives — survives arbitrary wire-level reorder. The
// guarantee this package exists to check: a program's results on a
// chaos-wrapped communicator are bitwise identical to its results on the
// bare one, for every profile and seed.
package chaos

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/algebra"
	"repro/internal/coll"
)

// wireTag is the single underlying-layer tag all chaos packets travel
// under; the application tags live inside the envelopes. It is far above
// the subgroup tag offset (1<<20), so undecorated traffic can never be
// mistaken for chaos traffic or vice versa.
const wireTag = 1<<30 + 7

// DefaultTimeout bounds how long a chaos operation may wait before
// panicking with a protocol-level diagnosis (distinct from the backend's
// own receive timeout, which guards the raw link).
const DefaultTimeout = 10 * time.Second

const (
	kindData = byte(iota)
	kindAck
)

// envelope is one chaos wire packet.
type envelope struct {
	kind byte
	// seq is the per-link sequence number: the deduplication and
	// acknowledgement key.
	seq uint64
	// tagseq orders the messages of one (link, application tag) stream;
	// the receiver delivers each stream strictly in tagseq order.
	tagseq uint64
	// tag is the application tag (data packets).
	tag int
	// doomed marks a copy that the wire "loses": the receiver discards
	// it without acknowledgement, forcing the sender's retry path.
	doomed bool
	// notBefore, when set, is the injected in-flight latency: the
	// receiver holds the packet until this instant.
	notBefore time.Time
	payload   algebra.Value
}

// Words prices the envelope for the virtual machine's cost accounting: an
// ack is one word, a data packet its payload plus a two-word header.
func (e *envelope) Words() int {
	if e.kind == kindAck {
		return 1
	}
	return e.payload.Words() + 2
}

func (e *envelope) String() string {
	if e.kind == kindAck {
		return fmt.Sprintf("ack#%d", e.seq)
	}
	return fmt.Sprintf("env#%d(tag %d, %s)", e.seq, e.tag, e.payload)
}

// outEntry tracks one sent message until it is acknowledged, given up on,
// or (for held-back messages) put on the wire.
type outEntry struct {
	env *envelope
	dst int
	// held marks a message not yet on the wire (bounded reorder).
	held bool
	// attempts counts wire transmissions; good counts the non-doomed
	// ones. An entry may only be discarded once good > 0 or acked.
	attempts, good int
	acked          bool
	// due is the next action time: release for held entries, retransmit
	// otherwise.
	due time.Time
}

// pendingAck is one acknowledgement owed to a sender, queued so that ack
// transmission never recurses through a full mailbox.
type pendingAck struct {
	dst int
	seq uint64
}

// Stats counts the injected faults and protocol traffic of one wrapped
// rank.
type Stats struct {
	// Sent and Delivered count application messages through the
	// decorator (Delivered excludes duplicates and doomed copies).
	Sent, Delivered int
	// Delayed, Reordered, Duplicated and Dropped count messages given
	// each fault.
	Delayed, Reordered, Duplicated, Dropped int
	// Retransmits counts retry transmissions; Acks counts
	// acknowledgements received.
	Retransmits, Acks int
}

// Comm is the fault-injecting communicator. Wrap one around each rank's
// backend communicator inside the SPMD body; all collectives of package
// coll run on it unmodified. Call Fence before the body returns so that
// every in-flight retry obligation is discharged.
type Comm struct {
	// Timeout bounds every chaos-level wait; zero means DefaultTimeout.
	Timeout time.Duration

	under coll.Comm
	raw   coll.Transport
	prof  Profile
	rng   *rand.Rand

	seq     []uint64         // next per-link sequence number, by dst
	sendTS  []map[int]uint64 // next per-(dst, tag) stream number
	recvTS  []map[int]uint64 // next expected per-(src, tag) stream number
	seen    []map[uint64]bool
	pending [][]*envelope
	out     []*outEntry
	ackq    []pendingAck
	stats   Stats
}

// Wrap decorates a backend communicator with fault injection. Each rank
// derives its own PRNG from seed and its rank, so a (profile, seed)
// pair replays the same fault schedule. The communicator must expose the
// raw link layer (coll.Transport); both backends do.
func Wrap(under coll.Comm, prof Profile, seed int64) *Comm {
	raw, ok := under.(coll.Transport)
	if !ok {
		panic(fmt.Sprintf("chaos: %T does not implement coll.Transport; wrap the backend communicator, not a subgroup", under))
	}
	p := under.Size()
	c := &Comm{
		under:   under,
		raw:     raw,
		prof:    prof,
		rng:     rand.New(rand.NewSource(seed*0x9E3779B9 + int64(under.Rank())*0x85EBCA6B + 1)),
		seq:     make([]uint64, p),
		sendTS:  make([]map[int]uint64, p),
		recvTS:  make([]map[int]uint64, p),
		seen:    make([]map[uint64]bool, p),
		pending: make([][]*envelope, p),
	}
	for r := 0; r < p; r++ {
		c.sendTS[r] = make(map[int]uint64)
		c.recvTS[r] = make(map[int]uint64)
		c.seen[r] = make(map[uint64]bool)
	}
	return c
}

// Stats returns the rank's fault and traffic counters.
func (c *Comm) Stats() Stats { return c.stats }

// Rank is the caller's rank in the wrapped group.
func (c *Comm) Rank() int { return c.under.Rank() }

// Size is the wrapped group size.
func (c *Comm) Size() int { return c.under.Size() }

// NextTag forwards to the wrapped communicator, keeping the tag sequence
// identical to an undecorated run.
func (c *Comm) NextTag() int { return c.under.NextTag() }

// Compute charges local computation on the wrapped communicator, with the
// profile's per-rank slowdown injected first.
func (c *Comm) Compute(n float64) {
	c.slow()
	c.under.Compute(n)
}

// Mark forwards stage annotations when the wrapped communicator records
// them.
func (c *Comm) Mark(label string) {
	if m, ok := c.under.(coll.Marker); ok {
		m.Mark(label)
	}
}

// ScratchArena exposes the wrapped rank's arena, if any, so the
// collectives' zero-allocation hot path runs under fault injection too.
func (c *Comm) ScratchArena() *algebra.Arena {
	if h, ok := c.under.(coll.ArenaHolder); ok {
		return h.ScratchArena()
	}
	return nil
}

func (c *Comm) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// slow injects the profile's per-rank slowdown.
func (c *Comm) slow() {
	if c.prof.SlowEvery > 0 && c.prof.SlowBy > 0 && c.Rank()%c.prof.SlowEvery == 0 {
		spinFor(c.prof.SlowBy)
	}
}

// Send ships v to dst under the fault regime: the message is wrapped in
// an envelope, possibly delayed, held back behind its successor,
// duplicated, or doomed to a first-transmission loss that the retry
// protocol repairs.
func (c *Comm) Send(dst int, v coll.Value, tag int) {
	c.slow()
	c.stats.Sent++
	env := &envelope{kind: kindData, tag: tag, payload: v}
	env.seq = c.seq[dst]
	c.seq[dst]++
	env.tagseq = c.sendTS[dst][tag]
	c.sendTS[dst][tag]++
	if c.prof.DelayProb > 0 && c.rng.Float64() < c.prof.DelayProb {
		env.notBefore = time.Now().Add(time.Duration(c.rng.Int63n(int64(c.prof.MaxDelay) + 1)))
		c.stats.Delayed++
	}
	now := time.Now()
	r := c.rng.Float64()
	switch {
	case r < c.prof.DropProb:
		// One-shot drop: the wire copy is doomed (the receiver discards
		// it without acking) and the retry path must deliver a fresh
		// copy after the backoff.
		doomed := *env
		doomed.doomed = true
		c.wireSend(dst, &doomed)
		c.stats.Dropped++
		c.out = append(c.out, &outEntry{env: env, dst: dst, attempts: 1, due: now.Add(c.prof.retryAfter())})
	case r < c.prof.DropProb+c.prof.DupProb:
		c.wireSend(dst, env)
		c.wireSend(dst, env)
		c.stats.Duplicated++
		c.out = append(c.out, &outEntry{env: env, dst: dst, attempts: 2, good: 2, due: now.Add(c.prof.retryAfter())})
	case r < c.prof.DropProb+c.prof.DupProb+c.prof.ReorderProb:
		// Hold this message back; the next send on the link overtakes it.
		c.stats.Reordered++
		c.out = append(c.out, &outEntry{env: env, dst: dst, held: true, due: now.Add(c.prof.holdFor())})
		c.service()
		return
	default:
		c.wireSend(dst, env)
		c.out = append(c.out, &outEntry{env: env, dst: dst, attempts: 1, good: 1, due: now.Add(c.prof.retryAfter())})
	}
	c.releaseHeld(dst)
	c.service()
}

// Recv returns the next message of the (src, tag) stream, in the order it
// was sent, whatever the wire did to it in between.
func (c *Comm) Recv(src, tag int) coll.Value {
	c.slow()
	deadline := time.Now().Add(c.timeout())
	for {
		if env, ok := c.takeDeliverable(src, tag); ok {
			c.stats.Delivered++
			return env.payload
		}
		if v, wtag, ok := c.raw.TryRecvAny(src); ok {
			c.admit(src, v, wtag)
			continue
		}
		c.service()
		if c.quiet() {
			// No retry obligations of our own: hand the wait to the raw
			// link, where the backend's timeout and deadlock watchdog
			// can see a genuinely blocked rank.
			v, wtag := c.raw.RecvAny(src)
			c.admit(src, v, wtag)
			continue
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("chaos: rank %d timed out after %v waiting for tag %d from rank %d (%d pending, %d unacked, %d held)",
				c.Rank(), c.timeout(), tag, src, len(c.pending[src]), c.unacked(), c.heldCount()))
		}
		runtime.Gosched()
	}
}

// Exchange is the bidirectional swap, realized as an independent send and
// receive so both directions pass through the fault machinery.
func (c *Comm) Exchange(partner int, v coll.Value, tag int) coll.Value {
	c.Send(partner, v, tag)
	return c.Recv(partner, tag)
}

// Fence discharges the rank's remaining wire obligations: held-back
// messages are released, messages whose only transmission was doomed are
// resent, and owed acknowledgements are flushed. Call it after the last
// collective of the SPMD body; without it, a drop on the body's final
// message would strand the receiver until the watchdog fires.
func (c *Comm) Fence() {
	deadline := time.Now().Add(c.timeout())
	for {
		// Force every entry that still owes the wire a good copy.
		for _, e := range c.out {
			if e.held {
				e.held = false
				c.wireSend(e.dst, e.env)
				e.attempts++
				e.good++
			} else if e.good == 0 {
				c.wireSend(e.dst, e.env)
				c.stats.Retransmits++
				e.attempts++
				e.good++
			}
		}
		c.out = c.out[:0]
		c.flushAcks()
		if len(c.ackq) == 0 {
			return
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("chaos: rank %d fence stuck for %v (%d acks unsent)", c.Rank(), c.timeout(), len(c.ackq)))
		}
		runtime.Gosched()
	}
}

// takeDeliverable pops the next in-order envelope of the (src, tag)
// stream from the pending set, honoring its injected latency.
func (c *Comm) takeDeliverable(src, tag int) (*envelope, bool) {
	want := c.recvTS[src][tag]
	for i, env := range c.pending[src] {
		if env.tag != tag || env.tagseq != want {
			continue
		}
		waitUntil(env.notBefore)
		c.pending[src] = append(c.pending[src][:i], c.pending[src][i+1:]...)
		c.recvTS[src][tag] = want + 1
		return env, true
	}
	return nil, false
}

// admit processes one raw-link arrival: acknowledgements cancel retries,
// doomed copies vanish, duplicates are acked but dropped, and fresh data
// joins the pending set.
func (c *Comm) admit(src int, v algebra.Value, wtag int) {
	if wtag != wireTag {
		panic(fmt.Sprintf("chaos: rank %d got undecorated traffic from rank %d (tag %d) on a chaos link", c.Rank(), src, wtag))
	}
	env, ok := v.(*envelope)
	if !ok {
		panic(fmt.Sprintf("chaos: rank %d got a bare %T from rank %d on a chaos link", c.Rank(), v, src))
	}
	if env.kind == kindAck {
		c.stats.Acks++
		for _, e := range c.out {
			if e.dst == src && e.env.seq == env.seq {
				e.acked = true
			}
		}
		return
	}
	if env.doomed {
		// Simulated loss: the copy never "arrived", so no ack — the
		// sender's retry path owns recovery.
		return
	}
	c.ackq = append(c.ackq, pendingAck{dst: src, seq: env.seq})
	c.flushAcks()
	if c.seen[src][env.seq] {
		return // duplicate (or retransmission of an already-delivered copy)
	}
	c.seen[src][env.seq] = true
	c.pending[src] = append(c.pending[src], env)
}

// service advances the protocol clockwork: owed acks are flushed, due
// held-back messages are released, and unacknowledged messages are
// retransmitted on their backoff schedule until MaxAttempts.
func (c *Comm) service() {
	c.flushAcks()
	now := time.Now()
	keep := c.out[:0]
	for _, e := range c.out {
		switch {
		case e.acked && !e.held:
		case !now.After(e.due):
			keep = append(keep, e)
		case e.held:
			// Held past its deadline with no overtaker: release.
			e.held = false
			c.wireSend(e.dst, e.env)
			e.attempts++
			e.good++
			e.due = now.Add(c.prof.retryAfter())
			keep = append(keep, e)
		case e.attempts >= c.prof.maxAttempts() && e.good > 0:
			// Give up retrying: at least one good copy is on the
			// reliable wire, so the receiver will get it.
		default:
			c.wireSend(e.dst, e.env)
			c.stats.Retransmits++
			e.attempts++
			e.good++
			e.due = now.Add(c.prof.retryAfter() << e.attempts)
			keep = append(keep, e)
		}
	}
	c.out = keep
}

// releaseHeld puts every held-back message for dst on the wire — called
// after a newer message to dst has been sent, completing the overtake.
func (c *Comm) releaseHeld(dst int) {
	for _, e := range c.out {
		if e.held && e.dst == dst {
			e.held = false
			c.wireSend(e.dst, e.env)
			e.attempts++
			e.good++
			e.due = time.Now().Add(c.prof.retryAfter())
		}
	}
}

// wireSend puts one envelope on the raw link, draining incoming traffic
// to make room when the mailbox is full.
func (c *Comm) wireSend(dst int, env *envelope) {
	if c.raw.TrySend(dst, env, wireTag) {
		return
	}
	t0 := time.Now()
	for {
		c.pollLinks()
		if c.raw.TrySend(dst, env, wireTag) {
			return
		}
		if time.Since(t0) > c.timeout() {
			panic(fmt.Sprintf("chaos: rank %d: mailbox to rank %d full for %v (%s)", c.Rank(), dst, c.timeout(), env))
		}
		runtime.Gosched()
	}
}

// flushAcks sends as many owed acknowledgements as the links will take.
func (c *Comm) flushAcks() {
	rest := c.ackq[:0]
	for _, a := range c.ackq {
		if !c.raw.TrySend(a.dst, &envelope{kind: kindAck, seq: a.seq}, wireTag) {
			rest = append(rest, a)
		}
	}
	c.ackq = rest
}

// pollLinks drains whatever has arrived on the links we owe or await
// something on, without blocking.
func (c *Comm) pollLinks() {
	for _, e := range c.out {
		if v, wtag, ok := c.raw.TryRecvAny(e.dst); ok {
			c.admit(e.dst, v, wtag)
		}
	}
}

// quiet reports whether the rank has no wire obligations left: nothing
// held back, nothing whose only copy was doomed, no acks owed. A quiet
// rank may block indefinitely on the raw link.
func (c *Comm) quiet() bool {
	if len(c.ackq) > 0 {
		return false
	}
	for _, e := range c.out {
		if e.held || e.good == 0 {
			return false
		}
	}
	return true
}

func (c *Comm) unacked() int {
	n := 0
	for _, e := range c.out {
		if !e.acked {
			n++
		}
	}
	return n
}

func (c *Comm) heldCount() int {
	n := 0
	for _, e := range c.out {
		if e.held {
			n++
		}
	}
	return n
}

func (p Profile) holdFor() time.Duration {
	if p.HoldFor <= 0 {
		return 100 * time.Microsecond
	}
	return p.HoldFor
}

// spinFor busy-waits: the injected delays sit below the scheduler's sleep
// granularity, exactly like backend.Machine's startup injection.
func spinFor(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// waitUntil busy-waits until the instant t (no-op for the zero time).
func waitUntil(t time.Time) {
	if t.IsZero() {
		return
	}
	for time.Now().Before(t) {
	}
}
