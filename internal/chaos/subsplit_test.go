// Subgroup coverage under fault injection: Sub and Split communicators
// layer their tag discipline on top of the chaos decorator, so subgroup
// collectives must survive delay and reorder exactly like full-group
// ones — including overlapping groups used in sequence and parent-level
// traffic interleaved between subgroup operations.
package chaos_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/coll"
	"repro/internal/machine"
)

// runEverywhere executes the same SPMD body bare and chaos-wrapped on
// both backends and returns the four per-rank output lists in that
// order: bare native, bare virtual, chaos native, chaos virtual.
func runEverywhere(p int, prof chaos.Profile, seed int64, body func(c coll.Comm) algebra.Value) [4][]algebra.Value {
	var out [4][]algebra.Value
	for i := range out {
		out[i] = make([]algebra.Value, p)
	}
	backend.New(p).Run(func(pr *backend.Proc) {
		out[0][pr.Rank()] = body(pr)
	})
	machine.New(p, machine.Params{Ts: 100, Tw: 1}).Run(func(pr *machine.Proc) {
		c := coll.World(pr)
		out[1][c.Rank()] = body(c)
	})
	chaos.OnNative(p, prof, seed, func(c *chaos.Comm) {
		out[2][c.Rank()] = body(c)
	})
	chaos.OnVirtual(p, prof, seed, func(c *chaos.Comm) {
		out[3][c.Rank()] = body(c)
	})
	return out
}

func checkEverywhere(t *testing.T, p int, body func(c coll.Comm) algebra.Value) {
	t.Helper()
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for _, prof := range []chaos.Profile{chaos.MustByName("delay"), chaos.MustByName("reorder"), chaos.MustByName("storm")} {
		for seed := int64(0); seed < seeds; seed++ {
			out := runEverywhere(p, prof, seed, body)
			names := []string{"bare native", "bare virtual", "chaos native", "chaos virtual"}
			for i := 1; i < len(out); i++ {
				for r := 0; r < p; r++ {
					if !algebra.Equal(out[0][r], out[i][r]) {
						t.Fatalf("%s/seed=%d: %s rank %d: got %v, bare native %v",
							prof.Name, seed, names[i], r, out[i][r], out[0][r])
					}
				}
			}
		}
	}
}

// contains reports whether rank is in ranks.
func contains(ranks []int, rank int) bool {
	for _, r := range ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// TestSubUnderChaos drives two overlapping subgroups in sequence, with
// full-group collectives interleaved before, between and after them, so
// subgroup tags (offset into their own namespace, and reused by the
// second group) meet parent traffic and each other on faulted links.
func TestSubUnderChaos(t *testing.T) {
	const p = 6
	g1 := []int{0, 1, 2, 3}
	g2 := []int{2, 3, 4, 5} // overlaps g1 in ranks 2 and 3
	body := func(c coll.Comm) algebra.Value {
		x := algebra.Scalar(float64(c.Rank()*3 + 1))
		a := coll.Bcast(c, 0, x) // parent traffic before any subgroup
		r1 := algebra.Value(algebra.Scalar(0))
		if contains(g1, c.Rank()) {
			s := coll.Sub(c, g1)
			r1 = coll.AllReduce(s, algebra.Add, x)
		}
		b := coll.AllReduce(c, algebra.Max, x) // parent traffic between the groups
		r2 := algebra.Value(algebra.Scalar(0))
		if contains(g2, c.Rank()) {
			s := coll.Sub(c, g2)
			r2 = coll.Scan(s, algebra.Add, x)
		}
		d := coll.Bcast(c, p-1, x) // parent traffic after
		return algebra.Tuple{a, r1, b, r2, d}
	}
	checkEverywhere(t, p, body)
}

// TestSplitUnderChaos partitions the world twice — rows, then columns of
// a 2×3 grid — with a full-group broadcast interleaved between the two
// partitions. Every member calls Split, so the allgather inside it runs
// under faults too.
func TestSplitUnderChaos(t *testing.T) {
	const p = 6
	body := func(c coll.Comm) algebra.Value {
		x := algebra.Scalar(float64(c.Rank() + 1))
		row := coll.Split(c, c.Rank()/3, c.Rank())
		rsum := coll.AllReduce(row, algebra.Add, x)
		mid := coll.Bcast(c, 1, rsum) // parent traffic between the partitions
		col := coll.Split(c, c.Rank()%3, -c.Rank())
		cscan := coll.Scan(col, algebra.Mul, x)
		return algebra.Tuple{rsum, mid, cscan}
	}
	checkEverywhere(t, p, body)
}

// TestSubExpectedValues pins the subgroup results to hand-computed
// values on one chaotic run, so the comparison above cannot be
// trivially green by all backends computing the same wrong thing.
func TestSubExpectedValues(t *testing.T) {
	const p = 4
	out := make([]algebra.Value, p)
	chaos.OnNative(p, chaos.MustByName("storm"), 11, func(c *chaos.Comm) {
		x := algebra.Scalar(float64(c.Rank() + 1)) // 1, 2, 3, 4
		if c.Rank() == 0 {
			out[0] = x
			return
		}
		s := coll.Sub(c, []int{1, 2, 3})
		out[c.Rank()] = coll.AllReduce(s, algebra.Add, x) // 2+3+4 on every member
	})
	for r := 1; r < p; r++ {
		if !algebra.Equal(out[r], algebra.Scalar(9)) {
			t.Fatalf("rank %d: got %v, want 9", r, out[r])
		}
	}
}
