package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Profile describes one fault regime: which perturbations the wrapped
// communicator injects and how hard. All probabilities are per message,
// drawn from the rank's seeded PRNG, so a (profile, seed, program) triple
// replays the same fault decisions on every run — only the host's thread
// interleaving varies.
type Profile struct {
	// Name identifies the profile in reports and reproducer commands.
	Name string

	// DelayProb is the fraction of messages given an in-flight latency,
	// sampled uniformly from [0, MaxDelay). The receiver's chaos layer
	// holds the message until its delivery time, so a delayed message
	// can be overtaken by later traffic on other links.
	DelayProb float64
	// MaxDelay bounds the sampled in-flight latency.
	MaxDelay time.Duration

	// ReorderProb is the fraction of messages held back at the sender so
	// that the next message on the same link overtakes them on the wire
	// — bounded reorder. A held message is released by the following
	// send to the same destination, or after HoldFor at the latest.
	ReorderProb float64
	// HoldFor bounds how long a held-back message may wait for an
	// overtaker before it is released anyway.
	HoldFor time.Duration

	// DupProb is the fraction of messages delivered twice (same
	// sequence number; the receiver deduplicates).
	DupProb float64

	// DropProb is the fraction of messages lost on their first
	// transmission attempt (one-shot drops): the wire copy arrives
	// poisoned and is discarded by the receiver without acknowledgement,
	// and the sender's retry machinery delivers a fresh copy after
	// RetryAfter. Retransmissions are never dropped.
	DropProb float64
	// RetryAfter is the base retransmission backoff: an unacknowledged
	// message is resent after RetryAfter, then 2·RetryAfter, doubling up
	// to MaxAttempts transmissions. Zero means 200µs.
	RetryAfter time.Duration
	// MaxAttempts caps transmissions per message (first send included).
	// Zero means 4.
	MaxAttempts int

	// SlowEvery, when positive, slows every SlowEvery-th rank (rank %
	// SlowEvery == 0) by SlowBy per communicator operation — the
	// straggler injection.
	SlowEvery int
	// SlowBy is the per-operation slowdown of the slowed ranks.
	SlowBy time.Duration
}

func (p Profile) retryAfter() time.Duration {
	if p.RetryAfter <= 0 {
		return 200 * time.Microsecond
	}
	return p.RetryAfter
}

func (p Profile) maxAttempts() int {
	if p.MaxAttempts < 2 {
		// At least one retransmission must be possible, or a one-shot
		// drop could never be repaired.
		return 4
	}
	return p.MaxAttempts
}

// Builtin profiles. The delays sit in the tens-of-microseconds range:
// large against the host's channel latency (so schedules genuinely
// shuffle) but small enough that a full conformance sweep stays in CI
// budget.
var builtin = []Profile{
	{
		Name:      "delay",
		DelayProb: 0.5, MaxDelay: 100 * time.Microsecond,
		SlowEvery: 3, SlowBy: 20 * time.Microsecond,
	},
	{
		Name:        "reorder",
		ReorderProb: 0.3, HoldFor: 100 * time.Microsecond,
		DelayProb: 0.25, MaxDelay: 50 * time.Microsecond,
	},
	{
		Name:     "loss",
		DropProb: 0.25, DupProb: 0.2,
		RetryAfter: 150 * time.Microsecond, MaxAttempts: 5,
	},
	{
		Name:      "storm",
		DelayProb: 0.3, MaxDelay: 60 * time.Microsecond,
		ReorderProb: 0.2, HoldFor: 80 * time.Microsecond,
		DropProb: 0.15, DupProb: 0.15,
		RetryAfter: 150 * time.Microsecond, MaxAttempts: 5,
		SlowEvery: 4, SlowBy: 15 * time.Microsecond,
	},
}

// Profiles returns the built-in fault profiles: "delay" (latency plus a
// straggler rank), "reorder" (bounded message reorder), "loss" (one-shot
// drops with retry, plus duplicates) and "storm" (all of the above).
func Profiles() []Profile {
	out := make([]Profile, len(builtin))
	copy(out, builtin)
	return out
}

// ByName returns the named built-in profile.
func ByName(name string) (Profile, bool) {
	for _, p := range builtin {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the built-in profile names, sorted.
func Names() []string {
	out := make([]string, len(builtin))
	for i, p := range builtin {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// MustByName is ByName panicking on unknown names (for test tables).
func MustByName(name string) Profile {
	p, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("chaos: no profile named %q (have %v)", name, Names()))
	}
	return p
}
