package chaos_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/chaos"
	"repro/internal/coll"
	"repro/internal/term"
)

// sparseIn builds inputs for a sparse program: Vec(total) per rank when
// a reduce_scatterv leads, ragged Vec(counts[r]) when an allgatherv
// leads, small vectors otherwise.
func sparseIn(prog term.Seq, p, m int, rng *rand.Rand) []algebra.Value {
	vec := func(n int) algebra.Vec {
		v := make(algebra.Vec, n)
		for j := range v {
			v[j] = float64(rng.Intn(19) - 9)
		}
		return v
	}
	for _, s := range prog {
		switch st := s.(type) {
		case term.ReduceScatterV:
			in := make([]algebra.Value, p)
			for i := range in {
				in[i] = vec(term.SumCounts(st.Counts))
			}
			return in
		case term.AllGatherV:
			in := make([]algebra.Value, p)
			for i := range in {
				in[i] = vec(st.Counts[i])
			}
			return in
		}
	}
	in := make([]algebra.Value, p)
	for i := range in {
		in[i] = vec(m)
	}
	return in
}

// TestSparseCollectivesUnderChaos sweeps the sparse program shapes
// through every fault profile on both backends and demands bitwise
// equality with the fault-free run — including zero-length and
// maximally-skewed counts vectors.
func TestSparseCollectivesUnderChaos(t *testing.T) {
	rng := newRng(408)
	type sp struct {
		name string
		p    int
		prog term.Seq
	}
	counts := []int{2, 0, 3, 1}
	skew := []int{0, 5, 0}
	cases := []sp{
		{"halo-ring", 5, term.Seq{term.Halo{H: &term.Hood{Offsets: []int{-1, 1}}}}},
		{"halo-chain", 4, term.Seq{
			term.Halo{H: &term.Hood{Offsets: []int{1, 2}}},
			term.Halo{H: &term.Hood{Offsets: []int{0, 3}}},
		}},
		{"halo-lists", 3, term.Seq{term.Halo{H: &term.Hood{Lists: [][]int{{1}, {0, 2}, {0}}}}}},
		{"agv", 4, term.Seq{term.AllGatherV{Counts: counts}}},
		{"agv-skew", 3, term.Seq{term.AllGatherV{Counts: skew}}},
		{"rsv", 4, term.Seq{term.ReduceScatterV{Op: algebra.Add, Counts: counts}}},
		{"rsv-agv", 3, term.Seq{
			term.ReduceScatterV{Op: algebra.Max, Counts: skew},
			term.AllGatherV{Counts: skew},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conform(t, tc.prog, tc.p, sparseIn(tc.prog, tc.p, 2, rng))
		})
	}
}

// TestSparseRawSPMDUnderChaos drives the coll-level sparse collectives
// directly on chaos-wrapped ranks (no program layer), mirroring how the
// apps call them.
func TestSparseRawSPMDUnderChaos(t *testing.T) {
	p := 4
	counts := []int{1, 0, 2, 1}
	total := term.SumCounts(counts)
	in := make([]algebra.Vec, p)
	rng := newRng(409)
	for i := range in {
		in[i] = make(algebra.Vec, total)
		for j := range in[i] {
			in[i][j] = float64(rng.Intn(19) - 9)
		}
	}
	progTerm := term.Seq{
		term.ReduceScatterV{Op: algebra.Add, Counts: counts},
		term.AllGatherV{Counts: counts},
	}
	evalIn := make([]algebra.Value, p)
	for i := range evalIn {
		evalIn[i] = in[i]
	}
	want := term.Eval(progTerm, evalIn)

	for _, prof := range sweepProfiles() {
		for seed := int64(0); seed < 3; seed++ {
			out := make([]algebra.Value, p)
			chaos.OnNative(p, prof, seed, func(c *chaos.Comm) {
				mid := coll.ReduceScatterV(c, algebra.Add, counts, append(algebra.Vec(nil), in[c.Rank()]...))
				out[c.Rank()] = coll.AllGatherV(c, counts, mid)
			})
			for r := 0; r < p; r++ {
				if !algebra.Equal(out[r], want[r]) {
					t.Fatalf("%s/seed=%d rank %d: got %v, want %v", prof.Name, seed, r, out[r], want[r])
				}
			}
		}
	}
}

// TestShrinkRespectsCountsPin checks the new structural guards: the
// machine walk-down skips sizes a counts vector pins, and stage removal
// never leaves two stages pinning different sizes.
func TestShrinkRespectsCountsPin(t *testing.T) {
	counts := []int{1, 0, 2, 1}
	fails := func(c chaos.Case) bool {
		for _, s := range c.Prog {
			if _, ok := s.(term.ReduceScatterV); ok {
				return true
			}
		}
		return false
	}
	start := chaos.Case{
		Prog: term.Seq{
			term.Halo{H: &term.Hood{Offsets: []int{-1, 1}}},
			term.ReduceScatterV{Op: algebra.Add, Counts: counts},
			term.AllGatherV{Counts: counts},
		},
		P: 4, M: 3,
		Profile: chaos.MustByName("loss"),
		Seed:    7,
	}
	min := chaos.Shrink(start, fails)
	if !fails(min) {
		t.Fatalf("shrunk case no longer fails: %s", min)
	}
	if len(min.Prog) != 1 {
		t.Fatalf("expected a single-stage reproducer, got %s", min.Prog)
	}
	if min.P != 4 {
		t.Fatalf("machine walked below the pinned size: p=%d, counts pin 4", min.P)
	}
	if min.M != 1 {
		t.Fatalf("expected m=1, got m=%d", min.M)
	}
	want := fmt.Sprintf("go run ./cmd/collchaos -prog %q -p 4 -m 1 -profile loss -seed 7",
		"reduce_scatterv(+,1,0,2,1)")
	if min.Repro() != want {
		t.Fatalf("repro line %q, want %q", min.Repro(), want)
	}
}
