package chaos_test

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/coll"
	"repro/internal/coll/sel"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/term"
)

// Chaos conformance for the collective-algorithm portfolio (coll/algo.go,
// docs/ALGORITHMS.md): every alternative implementation must survive the
// same fault regimes the butterfly does — delayed, reordered, duplicated
// and dropped envelopes — and still produce, bit for bit, the fault-free
// result. The chunked and pipelined algorithms are the interesting prey
// here: they ship many more envelopes per stage than the butterfly, and
// their correctness leans on the tag discipline, never on timing.

// portfolioCases enumerates the portfolio with a runner and the smallest
// block each algorithm accepts at group size p.
type portfolioCase struct {
	name string
	minM func(p int) int
	run  func(c coll.Comm, v algebra.Value) algebra.Value
}

func portfolioCases() []portfolioCase {
	return []portfolioCase{
		{
			name: "rabenseifner",
			minM: func(p int) int { return p },
			run:  func(c coll.Comm, v algebra.Value) algebra.Value { return coll.AllReduceRabenseifner(c, algebra.Add, v) },
		},
		{
			name: "ring-bi",
			minM: func(p int) int { return 2 * p },
			run:  func(c coll.Comm, v algebra.Value) algebra.Value { return coll.AllReduceRingBi(c, algebra.Add, v) },
		},
		{
			name: "pipeline",
			minM: func(int) int { return 1 },
			run:  func(c coll.Comm, v algebra.Value) algebra.Value { return coll.ReducePipelined(c, algebra.Add, v, 3) },
		},
	}
}

// faultFreeOn runs one collective body on the bare native backend — the
// bitwise baseline of the portfolio sweeps.
func faultFreeOn(p int, in []algebra.Value, run func(c coll.Comm, v algebra.Value) algebra.Value) []algebra.Value {
	out := make([]algebra.Value, p)
	backend.New(p).Run(func(pr *backend.Proc) {
		out[pr.Rank()] = run(pr, in[pr.Rank()])
	})
	return out
}

// TestPortfolioConformsUnderChaos sweeps every portfolio algorithm on a
// power-of-two and a non-power-of-two group (the rabenseifner fold path)
// across the full profile × seed sweep, on both backends, demanding
// bitwise equality with the fault-free run.
func TestPortfolioConformsUnderChaos(t *testing.T) {
	for _, tc := range portfolioCases() {
		for _, p := range []int{4, 7} {
			m := tc.minM(p) + 3 // uneven chunks: m does not divide by p
			in := blocks(p, m)
			want := faultFreeOn(p, in, tc.run)
			t.Run(fmt.Sprintf("%s/p=%d/m=%d", tc.name, p, m), func(t *testing.T) {
				for _, prof := range sweepProfiles() {
					for seed := int64(0); seed < sweepSeeds(); seed++ {
						got := make([]algebra.Value, p)
						chaos.OnNative(p, prof, seed, func(c *chaos.Comm) {
							got[c.Rank()] = tc.run(c, in[c.Rank()])
						})
						for r := 0; r < p; r++ {
							if !algebra.Equal(want[r], got[r]) {
								t.Fatalf("%s/seed=%d rank %d: chaos %v, fault-free %v",
									prof.Name, seed, r, got[r], want[r])
							}
						}
					}
					gotV := make([]algebra.Value, p)
					chaos.OnVirtual(p, prof, 0, func(c *chaos.Comm) {
						gotV[c.Rank()] = tc.run(c, in[c.Rank()])
					})
					for r := 0; r < p; r++ {
						if !algebra.Equal(want[r], gotV[r]) {
							t.Fatalf("%s virtual rank %d: chaos %v, fault-free %v",
								prof.Name, r, gotV[r], want[r])
						}
					}
				}
			})
		}
	}
}

// TestSelectedProgramConformsUnderChaos runs a whole auto-selected
// program — the execution path serving actually takes — under chaos:
// RunStagesSelected with non-butterfly selections must match the plain
// butterfly executor's fault-free result bitwise.
func TestSelectedProgramConformsUnderChaos(t *testing.T) {
	prog := term.Seq{
		term.Reduce{Op: algebra.Add, All: true},
		term.Scan{Op: algebra.Add},
		term.Reduce{Op: algebra.Add},
	}
	for _, p := range []int{4, 7} {
		m := 4 * p
		in := blocks(p, m)
		params := cost.Params{Ts: 1, Tw: 1, P: p, M: m} // cheap start-ups: every alternative wins
		sels := sel.ForTerm(prog, params)
		nonBF := 0
		for _, s := range sels {
			if s.Algo != cost.AlgoButterfly {
				nonBF++
			}
		}
		if nonBF == 0 {
			t.Fatalf("p=%d m=%d: expected non-butterfly selections, got %v", p, m, sels)
		}
		want := faultFree(prog, p, in)
		for _, prof := range sweepProfiles() {
			seeds := sweepSeeds() / 2
			if seeds < 2 {
				seeds = 2
			}
			for seed := int64(0); seed < seeds; seed++ {
				got := make([]algebra.Value, p)
				chaos.OnNative(p, prof, seed, func(c *chaos.Comm) {
					got[c.Rank()] = core.RunStagesSelected(c, prog, in[c.Rank()], sels)
				})
				for r := 0; r < p; r++ {
					if !algebra.Equal(want[r], got[r]) {
						t.Fatalf("p=%d %s/seed=%d rank %d: selected-under-chaos %v, fault-free butterfly %v\n  selections: %v",
							p, prof.Name, seed, r, got[r], want[r], sels)
					}
				}
			}
		}
	}
}
