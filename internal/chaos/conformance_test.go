// Randomized rule-conformance harness: every optimization rule's LHS and
// RHS, and random programs over the rule grammar, must produce the same
// results on a fault-injected communicator as on a quiet one — bitwise.
// The collectives' correctness must come from the tag discipline and the
// chaos layer's delivery protocol, never from lucky timing.
package chaos_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/chaos"
	"repro/internal/exper"
	"repro/internal/rules"
	"repro/internal/term"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sweepProfiles is the fault regime set of the conformance sweeps; the
// acceptance bar is at least three profiles.
func sweepProfiles() []chaos.Profile {
	return []chaos.Profile{
		chaos.MustByName("delay"),
		chaos.MustByName("reorder"),
		chaos.MustByName("loss"),
		chaos.MustByName("storm"),
	}
}

// sweepSeeds is the per-(program, size, profile) seed count: 20 in the
// full run (the acceptance bar), fewer under -short and -race smokes.
func sweepSeeds() int64 {
	if testing.Short() {
		return 4
	}
	return 20
}

// conform runs prog on p chaos-wrapped native ranks across the full
// profile × seed sweep and demands bitwise equality with the fault-free
// native run; the virtual machine is spot-checked on one seed per
// profile.
func conform(t *testing.T, prog term.Term, p int, in []algebra.Value) {
	t.Helper()
	want := faultFree(prog, p, in)
	for _, prof := range sweepProfiles() {
		for seed := int64(0); seed < sweepSeeds(); seed++ {
			got := chaos.RunNative(prog, p, prof, seed, in)
			for r := 0; r < p; r++ {
				if !algebra.Equal(want[r], got[r]) {
					t.Fatalf("%s/seed=%d rank %d: chaos %v, fault-free %v\n  program: %s",
						prof.Name, seed, r, got[r], want[r], prog)
				}
			}
		}
		gotV := chaos.RunVirtual(prog, p, prof, 0, in)
		for r := 0; r < p; r++ {
			if !algebra.Equal(want[r], gotV[r]) {
				t.Fatalf("%s virtual rank %d: chaos %v, fault-free %v\n  program: %s",
					prof.Name, r, gotV[r], want[r], prog)
			}
		}
	}
}

// rewrite applies exactly the named rule to lhs at machine size p.
func rewrite(t *testing.T, name string, lhs term.Term, p int) term.Term {
	t.Helper()
	r, ok := rules.ByName(name)
	if !ok {
		t.Fatalf("no rule named %s", name)
	}
	eng := rules.NewEngine()
	eng.Rules = []rules.Rule{r}
	eng.Env.P = p
	opt, apps := eng.Optimize(lhs)
	if len(apps) == 0 {
		t.Fatalf("rule %s did not apply to %s at p=%d", name, lhs, p)
	}
	return opt
}

// TestRulesConformUnderChaos sweeps all eleven paper rules: LHS and RHS
// run on the chaos-wrapped native backend across profiles, seeds, and
// power-of-two and non-power-of-two sizes, each compared bitwise against
// its fault-free run, and both checked against the functional semantics.
func TestRulesConformUnderChaos(t *testing.T) {
	for _, pat := range exper.Patterns() {
		r, ok := rules.ByName(pat.Rule)
		if !ok {
			t.Fatalf("no rule named %s", pat.Rule)
		}
		sizes := []int{4, 8}
		if r.Class != "Local" {
			sizes = []int{4, 6} // one power of two, one not
		}
		for _, p := range sizes {
			rhs := rewrite(t, pat.Rule, pat.LHS.Term(), p)
			for _, m := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/p=%d/m=%d", pat.Rule, p, m), func(t *testing.T) {
					in := blocks(p, m)
					conform(t, pat.LHS.Term(), p, in)
					conform(t, rhs, p, in)
					// And the two sides still agree with the semantics —
					// chaos must not have bought conformance by changing
					// what is computed.
					want := term.Eval(pat.LHS.Term(), in)
					got := chaos.RunNative(rhs, p, chaos.MustByName("storm"), 1, in)
					for rank := 0; rank < p; rank++ {
						if !algebra.EqualModuloUndef(got[rank], want[rank]) {
							t.Fatalf("rule %s RHS under storm disagrees with semantics at rank %d: got %v, want %v",
								pat.Rule, rank, got[rank], want[rank])
						}
					}
				})
			}
		}
	}
}

// scatterInput gives rank 0 a p-component list (what a leading scatter
// consumes) and the other ranks don't-care scalars.
func scatterInput(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	list := make(algebra.Tuple, p)
	copy(list, blocks(p, m))
	in[0] = list
	for r := 1; r < p; r++ {
		in[r] = algebra.Scalar(float64(-r))
	}
	return in
}

// TestExtensionsConformUnderChaos is the same sweep for the seven
// extension rules, whose LHS programs are built here (they are not part
// of the Table 1 pattern set).
func TestExtensionsConformUnderChaos(t *testing.T) {
	cases := []struct {
		rule  string
		lhs   term.Seq
		local bool // Local-class rules need power-of-two sizes
		gen   func(p, m int) []algebra.Value
	}{
		{rule: "RB-AllReduce", lhs: term.Seq{term.Reduce{Op: algebra.Add}, term.Bcast{}}},
		{rule: "AB-AllReduce", lhs: term.Seq{term.Reduce{Op: algebra.Add, All: true}, term.Bcast{}}},
		{rule: "BB-Bcast", lhs: term.Seq{term.Bcast{}, term.Bcast{}}},
		{rule: "BM-Mobility", lhs: term.Seq{term.Bcast{}, term.Map{F: rules.IncFn}}},
		{rule: "MM-Local", lhs: term.Seq{term.Map{F: rules.IncFn}, term.Map{F: rules.IncFn}}, local: true},
		{rule: "GS-Id", lhs: term.Seq{term.Gather{}, term.Scatter{}}, local: true},
		{rule: "SG-Id", lhs: term.Seq{term.Scatter{}, term.Gather{}}, local: true, gen: scatterInput},
	}
	for _, tc := range cases {
		sizes := []int{4, 6}
		if tc.local {
			sizes = []int{4, 8}
		}
		for _, p := range sizes {
			rhs := rewrite(t, tc.rule, tc.lhs, p)
			for _, m := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/p=%d/m=%d", tc.rule, p, m), func(t *testing.T) {
					gen := tc.gen
					if gen == nil {
						gen = blocks
					}
					in := gen(p, m)
					conform(t, tc.lhs, p, in)
					if len(term.Stages(rhs)) > 0 {
						conform(t, rhs, p, in)
					}
				})
			}
		}
	}
}

// TestRandomProgramsUnderChaos is the randomized harness: programs drawn
// from the rule grammar run on the chaos-wrapped native backend — as
// generated and as optimized by the full rule set — and must match the
// functional semantics and their own fault-free runs. A failure is
// shrunk to a minimal case and reported as a replayable collchaos
// command.
func TestRandomProgramsUnderChaos(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	rng := newRng(20260806)
	profiles := sweepProfiles()
	for trial := 0; trial < trials; trial++ {
		prog := rules.RandProgram(rng, 6)
		prof := profiles[trial%len(profiles)]
		c := chaos.Case{Prog: prog, P: 8, M: 1, Profile: prof, Seed: int64(trial)}
		if err := runCase(c); err != nil {
			min := chaos.Shrink(c, func(cand chaos.Case) bool { return runCase(cand) != nil })
			t.Fatalf("trial %d failed: %v\n  minimal reproducer: %s\n  replay: %s",
				trial, runCase(min), min, min.Repro())
		}
		// The optimized program must survive the same faults.
		eng := rules.NewEngine()
		eng.Rules = rules.AllWithExtensions()
		eng.Env.P = c.P
		opt, _ := eng.Optimize(prog)
		if stages := term.Stages(opt); len(stages) > 0 {
			co := c
			co.Prog = term.Compose(opt)
			if err := runCase(co); err != nil {
				min := chaos.Shrink(co, func(cand chaos.Case) bool { return runCase(cand) != nil })
				t.Fatalf("trial %d optimized (%s -> %s) failed: %v\n  minimal reproducer: %s\n  replay: %s",
					trial, prog, opt, runCase(min), min, min.Repro())
			}
		}
	}
}

// runCase executes one chaos case and checks it against the fault-free
// native run (bitwise) and the functional semantics (modulo undetermined
// positions, with a tolerance for reassociated operator chains). A panic
// — deadlock diagnosis, timeout — counts as a failure too, so Shrink can
// minimize hangs as well as wrong answers.
func runCase(c chaos.Case) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	in := blocks(c.P, c.M)
	want := faultFree(c.Prog, c.P, in)
	got := chaos.RunNative(c.Prog, c.P, c.Profile, c.Seed, in)
	sem := term.Eval(c.Prog, in)
	for r := 0; r < c.P; r++ {
		if !algebra.Equal(want[r], got[r]) {
			return fmt.Errorf("rank %d: chaos %v, fault-free %v", r, got[r], want[r])
		}
		if !algebra.EqualApproxModuloUndef(sem[r], got[r], 1e-9) {
			return fmt.Errorf("rank %d: chaos %v, semantics %v", r, got[r], sem[r])
		}
	}
	return nil
}

// TestNoGoroutineLeak verifies the acceptance bar's leak clause: a full
// mix of chaos runs — including watchdog-armed machines — must leave no
// goroutine behind once the runs return.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	prog := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Gather{}, term.Scatter{}, term.Reduce{Op: algebra.Max, All: true}}
	for _, prof := range sweepProfiles() {
		for seed := int64(0); seed < 3; seed++ {
			chaos.RunNative(prog, 6, prof, seed, blocks(6, 2))
			chaos.RunVirtual(prog, 4, prof, seed, blocks(4, 2))
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
