package chaos

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/term"
)

// Runners: execute a stage program under a fault profile on either
// backend, one chaos decorator per rank. These are what the conformance
// harness and the collchaos command drive.

// mailbox is the per-link buffer depth for chaos runs. The decorator puts
// duplicates, retransmissions and acknowledgements on the same links as
// the data, and acks to a rank that has moved on can sit undrained until
// the run ends, so the chaos runners want more headroom than the
// collectives' default of 4.
const mailbox = 64

// NativeMachine returns a native backend machine tuned for chaos traffic:
// deep mailboxes, a generous receive timeout, and the deadlock watchdog
// armed so a protocol bug yields a per-rank diagnosis instead of a hang.
func NativeMachine(p int) *backend.Machine {
	m := backend.New(p)
	m.MailboxCap = mailbox
	m.Timeout = 30 * time.Second
	m.Watchdog = 5 * time.Second
	return m
}

// VirtualMachine returns a virtual-time machine tuned the same way.
func VirtualMachine(p int) *machine.Machine {
	m := machine.New(p, machine.Params{Ts: 100, Tw: 1})
	m.MailboxCap = mailbox
	return m
}

// RunNative executes the stage program on the chaos-wrapped native
// backend: p goroutine ranks, each behind its own decorator seeded from
// (seed, rank), and returns the per-rank outputs. The promise under test:
// the result equals a fault-free run bit for bit.
func RunNative(t term.Term, p int, prof Profile, seed int64, in []algebra.Value) []algebra.Value {
	return RunNativeTransport(t, p, prof, seed, in, backend.TransportZeroCopy)
}

// RunNativeTransport is RunNative with an explicit payload transport.
// The two modes stress different hazards: under zero-copy the decorator's
// duplicates and retransmissions re-deliver the same value reference, so
// any in-place write by a receiver would corrupt a copy still in flight;
// under copy every delivery is an independent clone. The conformance
// promise — bitwise equality with a fault-free run — must hold under
// both aliasing regimes.
func RunNativeTransport(t term.Term, p int, prof Profile, seed int64, in []algebra.Value, transport backend.TransportMode) []algebra.Value {
	out := make([]algebra.Value, p)
	nm := NativeMachine(p)
	nm.Transport = transport
	nm.Run(func(pr *backend.Proc) {
		c := Wrap(pr, prof, seed)
		out[pr.Rank()] = core.RunStages(c, t, in[pr.Rank()])
		c.Fence()
	})
	return out
}

// RunVirtual is RunNative on the virtual-time machine — same decorator,
// same fault schedule, cost-model clocks underneath.
func RunVirtual(t term.Term, p int, prof Profile, seed int64, in []algebra.Value) []algebra.Value {
	out := make([]algebra.Value, p)
	VirtualMachine(p).Run(func(pr *machine.Proc) {
		c := Wrap(coll.World(pr), prof, seed)
		out[c.Rank()] = core.RunStages(c, t, in[c.Rank()])
		c.Fence()
	})
	return out
}

// OnNative runs an arbitrary SPMD body with a chaos communicator per rank
// on the native backend — for tests that drive subgroups or raw
// collectives rather than stage programs. The body must not outlive the
// call; Fence runs after it returns.
func OnNative(p int, prof Profile, seed int64, body func(c *Comm)) {
	NativeMachine(p).Run(func(pr *backend.Proc) {
		c := Wrap(pr, prof, seed)
		body(c)
		c.Fence()
	})
}

// OnVirtual is OnNative on the virtual-time machine.
func OnVirtual(p int, prof Profile, seed int64, body func(c *Comm)) {
	VirtualMachine(p).Run(func(pr *machine.Proc) {
		c := Wrap(coll.World(pr), prof, seed)
		body(c)
		c.Fence()
	})
}
