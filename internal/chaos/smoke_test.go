package chaos_test

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/term"
)

// blocks builds one deterministic m-word block per rank, with small
// integer entries so long operator chains stay exactly representable.
func blocks(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for r := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*7+j*3)%5 + 1)
		}
		in[r] = b
	}
	return in
}

// faultFree is the chaos sweeps' baseline: the same program on the bare
// native backend.
func faultFree(t term.Term, p int, in []algebra.Value) []algebra.Value {
	out, _ := core.ExecNative(t, backend.New(p), in)
	return out
}

// TestSmoke pushes one small program through every profile on both
// backends and demands bitwise equality with the fault-free run — the
// cheapest end-to-end check of the whole wire protocol.
func TestSmoke(t *testing.T) {
	prog := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Mul, All: true}}
	for _, p := range []int{2, 3, 4, 7} {
		in := blocks(p, 4)
		want := faultFree(prog, p, in)
		for _, prof := range chaos.Profiles() {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("p=%d/%s/seed=%d", p, prof.Name, seed), func(t *testing.T) {
					gotN := chaos.RunNative(prog, p, prof, seed, in)
					gotV := chaos.RunVirtual(prog, p, prof, seed, in)
					for r := 0; r < p; r++ {
						if !algebra.Equal(want[r], gotN[r]) {
							t.Fatalf("native rank %d: got %v, want %v", r, gotN[r], want[r])
						}
						if !algebra.Equal(want[r], gotV[r]) {
							t.Fatalf("virtual rank %d: got %v, want %v", r, gotV[r], want[r])
						}
					}
				})
			}
		}
	}
}
