package chaos_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/chaos"
	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/term"
)

// TestShrinkMinimizes drives Shrink with a synthetic failure predicate —
// the case "fails" iff the program still contains a scan(+) and runs on
// at least three ranks — and checks the result is minimal: one stage,
// the smallest failing machine, the narrowest blocks.
func TestShrinkMinimizes(t *testing.T) {
	fails := func(c chaos.Case) bool {
		if c.P < 3 {
			return false
		}
		for _, s := range c.Prog {
			if sc, ok := s.(term.Scan); ok && sc.Op == algebra.Add {
				return true
			}
		}
		return false
	}
	start := chaos.Case{
		Prog: term.Seq{
			term.Bcast{},
			term.Scan{Op: algebra.Add},
			term.Gather{}, term.Scatter{},
			term.Reduce{Op: algebra.Mul, All: true},
			term.Map{F: term.PairFn}, term.Map{F: term.FirstFn},
		},
		P: 8, M: 4,
		Profile: chaos.MustByName("storm"),
		Seed:    42,
	}
	min := chaos.Shrink(start, fails)
	if !fails(min) {
		t.Fatalf("shrunk case no longer fails: %s", min)
	}
	if len(min.Prog) != 1 {
		t.Fatalf("expected a single-stage reproducer, got %s", min.Prog)
	}
	if min.P != 3 || min.M != 1 {
		t.Fatalf("expected p=3 m=1, got p=%d m=%d", min.P, min.M)
	}
}

// TestShrinkKeepsScatterFed checks the structural guard: shrinking never
// produces a scatter without the gather that feeds it its list.
func TestShrinkKeepsScatterFed(t *testing.T) {
	fails := func(c chaos.Case) bool {
		for _, s := range c.Prog {
			if _, ok := s.(term.Scatter); ok {
				return true
			}
		}
		return false
	}
	start := chaos.Case{
		Prog:    term.Seq{term.Bcast{}, term.Gather{}, term.Scatter{}, term.Bcast{}},
		P:       4,
		M:       1,
		Profile: chaos.MustByName("delay"),
	}
	min := chaos.Shrink(start, fails)
	want := term.Seq{term.Gather{}, term.Scatter{}}.String()
	if min.Prog.String() != want {
		t.Fatalf("expected %q, got %q", want, min.Prog)
	}
}

// TestReproRoundTrips checks that the reproducer command embeds the
// program in the surface syntax: the -prog string must parse back to the
// same program (IncFn registered, as collchaos does).
func TestReproRoundTrips(t *testing.T) {
	c := chaos.Case{
		Prog: term.Seq{
			term.Bcast{},
			term.Scan{Op: algebra.Left},
			term.Map{F: rules.IncFn},
			term.Gather{}, term.Scatter{},
			term.Reduce{Op: algebra.Max, All: true},
		},
		P: 6, M: 2,
		Profile: chaos.MustByName("loss"),
		Seed:    7,
	}
	repro := c.Repro()
	for _, want := range []string{"-p 6", "-m 2", "-profile loss", "-seed 7", "collchaos"} {
		if !strings.Contains(repro, want) {
			t.Fatalf("reproducer %q lacks %q", repro, want)
		}
	}
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	parsed, err := lang.Parse(c.Prog.String(), syms)
	if err != nil {
		t.Fatalf("reproducer program %q does not parse: %v", c.Prog, err)
	}
	if parsed.String() != c.Prog.String() {
		t.Fatalf("parse round trip changed the program: %q -> %q", c.Prog, parsed)
	}
}
