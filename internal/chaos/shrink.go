package chaos

import (
	"fmt"

	"repro/internal/term"
)

// Seed shrinking: when a randomized sweep finds a failing (program, size,
// profile, seed) combination, the raw reproducer is usually a six-stage
// soup on eight ranks. Shrink cuts it down to a minimal case — fewest
// stages, then smallest machine, then narrowest blocks — that still
// fails, and Repro renders it as a collchaos command line.

// Case is one chaos execution: a stage program on P ranks with M-word
// blocks, under a fault profile and seed.
type Case struct {
	Prog    term.Seq
	P, M    int
	Profile Profile
	Seed    int64
}

func (c Case) String() string {
	return fmt.Sprintf("%s on p=%d m=%d under %s/seed=%d", c.Prog, c.P, c.M, c.Profile.Name, c.Seed)
}

// Repro renders the case as a collchaos invocation that replays it.
func (c Case) Repro() string {
	return fmt.Sprintf("go run ./cmd/collchaos -prog %q -p %d -m %d -profile %s -seed %d",
		c.Prog.String(), c.P, c.M, c.Profile.Name, c.Seed)
}

// Shrink minimizes a failing case against the predicate fails (which must
// be true for c itself): it greedily removes stages — single stages and
// adjacent pairs, so gather;scatter round trips vanish together — then
// walks P and M down, keeping every change that still fails, until a
// fixpoint. The result fails, and no single removal or reduction of it
// does.
func Shrink(c Case, fails func(Case) bool) Case {
	if !fails(c) {
		return c
	}
	for changed := true; changed; {
		changed = false
		for width := 2; width >= 1; width-- {
			for i := 0; i+width <= len(c.Prog); i++ {
				cand := c
				cand.Prog = cut(c.Prog, i, width)
				if len(cand.Prog) == 0 || !wellFormed(cand.Prog) {
					continue
				}
				if fails(cand) {
					c = cand
					changed = true
					i--
				}
			}
		}
		for p := 2; p < c.P; p++ {
			if pin, ok := pinnedP(c.Prog); ok && pin != p {
				// Counts vectors and per-rank neighborhoods pin the
				// machine size; smaller machines cannot even run the
				// program.
				continue
			}
			cand := c
			cand.P = p
			if fails(cand) {
				c = cand
				changed = true
				break
			}
		}
		for m := 1; m < c.M; m++ {
			cand := c
			cand.M = m
			if fails(cand) {
				c = cand
				changed = true
				break
			}
		}
	}
	return c
}

// cut returns prog with width stages removed at i.
func cut(prog term.Seq, i, width int) term.Seq {
	out := make(term.Seq, 0, len(prog)-width)
	out = append(out, prog[:i]...)
	return append(out, prog[i+width:]...)
}

// wellFormed rejects programs a removal made structurally invalid: a
// scatter must still be fed a list, i.e. immediately follow a gather
// (the only list-producing stage the generator emits), and every
// machine-size-pinning stage (counts vectors, per-rank neighborhoods)
// must agree on the size it pins.
func wellFormed(prog term.Seq) bool {
	pin := 0
	for i, s := range prog {
		if _, ok := s.(term.Scatter); ok {
			if i == 0 {
				return false
			}
			if _, ok := prog[i-1].(term.Gather); !ok {
				return false
			}
		}
		if q, ok := stagePin(s); ok {
			if pin != 0 && q != pin {
				return false
			}
			pin = q
		}
	}
	return true
}

// stagePin returns the machine size a stage pins, if any.
func stagePin(s term.Term) (int, bool) {
	if c, ok := term.CountsStage(s); ok {
		return len(c), true
	}
	if h, ok := s.(term.Halo); ok && !h.H.Isomorphic() {
		return len(h.H.Lists), true
	}
	return 0, false
}

// pinnedP returns the machine size the whole program pins, if any.
func pinnedP(prog term.Seq) (int, bool) {
	for _, s := range prog {
		if q, ok := stagePin(s); ok {
			return q, true
		}
	}
	return 0, false
}
