package apps

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// This file implements the sparse and irregular applications: a 2D
// stencil iteration on a periodic torus (halo exchange over row/column
// sub-communicators), a segmented scan over ragged per-rank blocks
// (delivered with allgatherv), and a graph-degree histogram
// (reduce_scatterv over a ragged vertex partition). The SPMD bodies are
// written against the generic coll.Comm, so the tests run them
// unchanged on the virtual and native backends, and the multi-process
// conformance suite registers them as worker bodies.

// Stencil2D runs iters steps of the 5-point periodic stencil
//
//	next[i][j] = (cur[i][j] + up + down + left + right) / 5
//
// on an R×C torus distributed over a pr×pc process grid (mach.P must
// equal pr·pc, and R, C must divide evenly). Each step exchanges the
// boundary rows and columns with the four torus neighbors via halo
// exchanges on the row and column sub-communicators.
func Stencil2D(mach Machine, grid [][]float64, pr, pc, iters int) ([][]float64, machine.Result) {
	if mach.P != pr*pc {
		panic(fmt.Sprintf("apps: stencil on %d ranks with a %d×%d process grid", mach.P, pr, pc))
	}
	rows, cols := len(grid), len(grid[0])
	if rows%pr != 0 || cols%pc != 0 {
		panic(fmt.Sprintf("apps: %d×%d grid does not tile over %d×%d processes", rows, cols, pr, pc))
	}
	tiles := tileGrid(grid, pr, pc)
	out := make([][][]float64, mach.P)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		out[proc.Rank()] = StencilRank(c, tiles[proc.Rank()], pr, pc, iters)
	})
	return untileGrid(out, pr, pc, rows, cols), res
}

// StencilRank is the per-rank stencil body: rank r owns tile (r/pc,
// r%pc) of the process grid and returns its tile after iters steps.
func StencilRank(c coll.Comm, tile [][]float64, pr, pc, iters int) [][]float64 {
	ri, ci := c.Rank()/pc, c.Rank()%pc
	rowComm := coll.Split(c, ri, ci) // left/right neighbors: same grid row
	colComm := coll.Split(c, ci, ri) // up/down neighbors: same grid column
	rows, cols := len(tile), len(tile[0])
	cur := make([][]float64, rows)
	for i := range cur {
		cur[i] = append([]float64(nil), tile[i]...)
	}
	for it := 0; it < iters; it++ {
		// Ship both boundary columns (rows) as a pair; each neighbor
		// picks the side facing it, so one halo exchange per axis serves
		// both directions — including the p=1 wrap onto ourselves.
		colPair := algebra.Tuple{colVec(cur, 0), colVec(cur, cols-1)}
		lr := coll.HaloExchange(rowComm, []int{-1, 1}, colPair).(algebra.Tuple)
		left := lr[0].(algebra.Tuple)[1].(algebra.Vec)  // left neighbor's rightmost column
		right := lr[1].(algebra.Tuple)[0].(algebra.Vec) // right neighbor's leftmost column
		rowPair := algebra.Tuple{algebra.Vec(cur[0]), algebra.Vec(cur[rows-1])}
		ud := coll.HaloExchange(colComm, []int{-1, 1}, rowPair).(algebra.Tuple)
		up := ud[0].(algebra.Tuple)[1].(algebra.Vec)   // upper neighbor's bottom row
		down := ud[1].(algebra.Tuple)[0].(algebra.Vec) // lower neighbor's top row

		next := make([][]float64, rows)
		for i := range next {
			next[i] = make([]float64, cols)
			for j := range next[i] {
				u, d, l, r := 0.0, 0.0, 0.0, 0.0
				if i > 0 {
					u = cur[i-1][j]
				} else {
					u = up[j]
				}
				if i < rows-1 {
					d = cur[i+1][j]
				} else {
					d = down[j]
				}
				if j > 0 {
					l = cur[i][j-1]
				} else {
					l = left[i]
				}
				if j < cols-1 {
					r = cur[i][j+1]
				} else {
					r = right[i]
				}
				next[i][j] = (cur[i][j] + u + d + l + r) / 5
			}
		}
		c.Compute(float64(5 * rows * cols))
		cur = next
	}
	return cur
}

// SeqStencil2D is the sequential reference, applying the identical
// update expression so the parallel result is bitwise-equal.
func SeqStencil2D(grid [][]float64, iters int) [][]float64 {
	rows, cols := len(grid), len(grid[0])
	cur := make([][]float64, rows)
	for i := range cur {
		cur[i] = append([]float64(nil), grid[i]...)
	}
	for it := 0; it < iters; it++ {
		next := make([][]float64, rows)
		for i := range next {
			next[i] = make([]float64, cols)
			for j := range next[i] {
				u := cur[(i-1+rows)%rows][j]
				d := cur[(i+1)%rows][j]
				l := cur[i][(j-1+cols)%cols]
				r := cur[i][(j+1)%cols]
				next[i][j] = (cur[i][j] + u + d + l + r) / 5
			}
		}
		cur = next
	}
	return cur
}

func colVec(tile [][]float64, j int) algebra.Vec {
	v := make(algebra.Vec, len(tile))
	for i := range tile {
		v[i] = tile[i][j]
	}
	return v
}

// tileGrid cuts grid into pr×pc equal tiles in rank order.
func tileGrid(grid [][]float64, pr, pc int) [][][]float64 {
	rows, cols := len(grid), len(grid[0])
	tr, tc := rows/pr, cols/pc
	tiles := make([][][]float64, pr*pc)
	for ri := 0; ri < pr; ri++ {
		for ci := 0; ci < pc; ci++ {
			tile := make([][]float64, tr)
			for i := range tile {
				tile[i] = append([]float64(nil), grid[ri*tr+i][ci*tc:ci*tc+tc]...)
			}
			tiles[ri*pc+ci] = tile
		}
	}
	return tiles
}

// untileGrid reassembles the per-rank tiles into the full grid.
func untileGrid(tiles [][][]float64, pr, pc, rows, cols int) [][]float64 {
	tr, tc := rows/pr, cols/pc
	grid := make([][]float64, rows)
	for i := range grid {
		grid[i] = make([]float64, cols)
	}
	for ri := 0; ri < pr; ri++ {
		for ci := 0; ci < pc; ci++ {
			tile := tiles[ri*pc+ci]
			for i := 0; i < tr; i++ {
				copy(grid[ri*tr+i][ci*tc:ci*tc+tc], tile[i])
			}
		}
	}
	return grid
}

// RaggedSegmentedScan is SegmentedScan over an explicitly ragged
// partition: rank i owns counts[i] consecutive elements (zero-length
// blocks allowed), and the full result vector is delivered to every
// rank with one allgatherv — the irregular-block collective doing the
// final redistribution a dense allgather cannot express.
func RaggedSegmentedScan(mach Machine, counts []int, flags []bool, values []float64) ([]float64, machine.Result) {
	if len(counts) != mach.P {
		panic(fmt.Sprintf("apps: %d counts on %d ranks", len(counts), mach.P))
	}
	if len(flags) != len(values) {
		panic(fmt.Sprintf("apps: %d flags for %d values", len(flags), len(values)))
	}
	total := 0
	for _, cnt := range counts {
		if cnt < 0 {
			panic("apps: negative count")
		}
		total += cnt
	}
	if total != len(values) {
		panic(fmt.Sprintf("apps: counts sum to %d, have %d values", total, len(values)))
	}
	out := make([][]float64, mach.P)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		off := 0
		for r := 0; r < proc.Rank(); r++ {
			off += counts[r]
		}
		fb := flags[off : off+counts[proc.Rank()]]
		vb := values[off : off+counts[proc.Rank()]]
		full := RaggedSegScanRank(c, counts, fb, vb)
		out[proc.Rank()] = append([]float64(nil), full...)
	})
	return out[0], res
}

// RaggedSegScanRank is the per-rank body: local segmented scan, one
// scan of the (flag, value) block summaries for the carries, and an
// allgatherv of the ragged local results. Every rank returns the full
// result vector.
func RaggedSegScanRank(c coll.Comm, counts []int, fb []bool, vb []float64) algebra.Vec {
	seg := algebra.OpSegmented(algebra.Add)
	local := make(algebra.Vec, len(vb))
	summary := algebra.Value(algebra.Tuple{algebra.Scalar(0), algebra.Scalar(0)})
	for i := range vb {
		elem := algebra.Tuple{algebra.Scalar(b2f(fb[i])), algebra.Scalar(vb[i])}
		if i == 0 {
			summary = elem
		} else {
			summary = seg.Apply(summary, elem)
		}
		local[i] = float64(summary.(algebra.Tuple)[1].(algebra.Scalar))
	}
	c.Compute(float64(2 * len(vb)))

	// Carries: inclusive scan of the summaries, shifted one rank right.
	// Zero-length blocks contribute the (no flag, zero) unit.
	incl := coll.Scan(c, seg, summary)
	tag := c.NextTag()
	if c.Rank()+1 < c.Size() {
		c.Send(c.Rank()+1, incl, tag)
	}
	if c.Rank() > 0 {
		carry := c.Recv(c.Rank()-1, tag)
		cv := float64(carry.(algebra.Tuple)[1].(algebra.Scalar))
		for i := range vb {
			if fb[i] {
				break
			}
			local[i] += cv
		}
		c.Compute(float64(len(vb)))
	}
	return coll.AllGatherV(c, counts, local).(algebra.Vec)
}

// DegreeHistogram computes the degree histogram of an n-vertex graph
// whose edge list is split evenly across the ranks: every rank counts
// endpoint hits into a full n-word vector, one reduce_scatterv(+) over
// the ragged vertex partition leaves each rank the true degrees of its
// owned vertices, and an allreduce of the per-rank bin counts yields
// the global histogram. Degrees ≥ bins clamp into the last bin.
func DegreeHistogram(mach Machine, n int, edges [][2]int, counts []int, bins int) ([]int, machine.Result) {
	if len(counts) != mach.P {
		panic(fmt.Sprintf("apps: %d counts on %d ranks", len(counts), mach.P))
	}
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	if total != n {
		panic(fmt.Sprintf("apps: vertex partition covers %d of %d vertices", total, n))
	}
	if bins < 1 {
		panic("apps: degree histogram needs at least one bin")
	}
	eblocks := chunkEdges(edges, mach.P)
	out := make([][]int, mach.P)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		hist := DegreeHistRank(c, n, counts, eblocks[proc.Rank()], bins)
		bucket := make([]int, bins)
		for i, v := range hist {
			bucket[i] = int(v)
		}
		out[proc.Rank()] = bucket
	})
	return out[0], res
}

// DegreeHistRank is the per-rank body; every rank returns the full
// bins-word histogram.
func DegreeHistRank(c coll.Comm, n int, counts []int, edges [][2]int, bins int) algebra.Vec {
	contrib := make(algebra.Vec, n)
	for _, e := range edges {
		contrib[e[0]]++
		contrib[e[1]]++
	}
	c.Compute(float64(2 * len(edges)))
	owned := coll.ReduceScatterV(c, algebra.Add, counts, contrib).(algebra.Vec)
	hist := make(algebra.Vec, bins)
	for _, d := range owned {
		b := int(d)
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	c.Compute(float64(len(owned)))
	return coll.AllReduce(c, algebra.Add, hist).(algebra.Vec)
}

// SeqDegreeHistogram is the sequential reference.
func SeqDegreeHistogram(n int, edges [][2]int, bins int) []int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	hist := make([]int, bins)
	for _, d := range deg {
		if d >= bins {
			d = bins - 1
		}
		hist[d]++
	}
	return hist
}

// chunkEdges splits the edge list into p nearly equal blocks.
func chunkEdges(edges [][2]int, p int) [][][2]int {
	out := make([][][2]int, p)
	per := len(edges) / p
	rem := len(edges) % p
	off := 0
	for i := 0; i < p; i++ {
		sz := per
		if i < rem {
			sz++
		}
		out[i] = edges[off : off+sz]
		off += sz
	}
	return out
}
