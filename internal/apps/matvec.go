package apps

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// MatVec multiplies a dense matrix by a vector in the PLAPACK style the
// paper cites ([18]): the matrix is distributed by contiguous row blocks,
// the vector lives on the first processor, and the program is three
// collectives and one local stage:
//
//	bcast x ; local y_i = A_i · x ; gather y
//
// It returns the product vector (assembled on the root and returned to
// the caller) and the machine result.
func MatVec(mach Machine, a algebra.Mat, x algebra.Vec) (algebra.Vec, machine.Result) {
	if a.C != len(x) {
		panic(fmt.Sprintf("apps: %d×%d matrix against %d-vector", a.R, a.C, len(x)))
	}
	p := mach.P
	// Row-block distribution.
	rowBlocks := make([]algebra.Mat, p)
	per := a.R / p
	rem := a.R % p
	off := 0
	for i := 0; i < p; i++ {
		rows := per
		if i < rem {
			rows++
		}
		rowBlocks[i] = algebra.Mat{R: rows, C: a.C, Data: a.Data[off*a.C : (off+rows)*a.C]}
		off += rows
	}
	var result algebra.Vec
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		var xs coll.Value
		if proc.Rank() == 0 {
			xs = append(algebra.Vec(nil), x...)
		} else {
			xs = algebra.Undef{}
		}
		xv := coll.Bcast(c, 0, xs).(algebra.Vec)
		block := rowBlocks[proc.Rank()]
		local := block.MulVec(xv)
		c.Compute(float64(2 * block.R * block.C))
		gathered := coll.Gather(c, 0, local)
		if proc.Rank() == 0 {
			out := make(algebra.Vec, 0, a.R)
			for _, g := range gathered {
				out = append(out, g.(algebra.Vec)...)
			}
			result = out
		}
	})
	return result, res
}
