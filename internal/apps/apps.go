// Package apps implements the kind of data-parallel applications the
// paper's introduction motivates — algorithms expressed exclusively in
// terms of collective operations, "without messing around with individual
// send-receive statements" (§1): maximum segment sum, streaming
// statistics, histogramming, and a sample sort. Each application runs on
// the virtual machine through the coll collectives and is verified
// against a sequential reference in the package tests.
//
// Several of the applications are showcases for the paper's central
// auxiliary-variable technique: the quantity of interest is not a
// homomorphism by itself, but becomes one when tupled with helper values
// (MSS needs a 4-tuple, variance a 3-tuple) — the same trick the
// optimization rules use with pair/triple/quadruple.
package apps

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// Machine bundles the virtual-machine parameters the applications run on.
type Machine struct {
	// P is the number of processors.
	P int
	// Ts and Tw are the communication cost parameters.
	Ts, Tw float64
}

func (m Machine) virtual() *machine.Machine {
	return machine.New(m.P, machine.Params{Ts: m.Ts, Tw: m.Tw})
}

// chunk splits xs into p nearly equal contiguous blocks.
func chunk(xs []float64, p int) [][]float64 {
	out := make([][]float64, p)
	per := len(xs) / p
	rem := len(xs) % p
	off := 0
	for i := 0; i < p; i++ {
		sz := per
		if i < rem {
			sz++
		}
		out[i] = xs[off : off+sz]
		off += sz
	}
	return out
}

// MSS computes the maximum segment sum of xs — the largest sum of any
// contiguous non-empty segment — with one allreduce over 4-tuples.
//
// The segment sum is the classic example of the auxiliary-variable
// technique: (mss) alone is not combinable across a block boundary, but
// the quadruple (mss, maximum prefix sum, maximum suffix sum, total) is,
// under the associative (non-commutative) operator
//
//	m  = max(m1, m2, t1 ⊕ p2)   p = max(p1, s1 + p2)
//	t  = max(t2, t1 + s2)       s = s1 + s2
//
// Every processor folds its local block into a quadruple, one allreduce
// combines them, and the first component is the answer.
func MSS(mach Machine, xs []float64) (float64, machine.Result) {
	if len(xs) == 0 {
		panic("apps: MSS of an empty sequence")
	}
	blocks := chunk(xs, mach.P)
	op := mssOp()
	results := make([]float64, mach.P)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		v := mssLocal(blocks[proc.Rank()])
		c.Compute(float64(4 * len(blocks[proc.Rank()])))
		v = coll.AllReduce(c, op, v)
		results[proc.Rank()] = float64(v.(algebra.Tuple)[0].(algebra.Scalar))
	})
	return results[0], res
}

// mssLocal folds a block into its (mss, mps, mts, total) quadruple. An
// empty block is the operator's unit.
func mssLocal(block []float64) algebra.Value {
	negInf := math.Inf(-1)
	m, p, t, s := negInf, negInf, negInf, 0.0
	for _, x := range block {
		// Sequential Kadane-style update, maintaining all four values.
		t = math.Max(t+x, x)
		m = math.Max(m, t)
		s += x
		p = math.Max(p, s)
	}
	// t currently holds the best suffix ending at the last element; the
	// true maximum suffix sum needs a second pass for clarity.
	t = negInf
	acc := 0.0
	for i := len(block) - 1; i >= 0; i-- {
		acc += block[i]
		t = math.Max(t, acc)
	}
	return algebra.Tuple{
		algebra.Scalar(m), algebra.Scalar(p), algebra.Scalar(t), algebra.Scalar(s),
	}
}

// mssOp is the 4-tuple combine; eight elementary operations per element.
func mssOp() *algebra.Op {
	sc := func(v algebra.Value) float64 { return float64(v.(algebra.Scalar)) }
	return &algebra.Op{
		Name:  "op_mss",
		Cost:  8,
		Arity: 4,
		Fn: func(a, b algebra.Value) algebra.Value {
			ta, tb := a.(algebra.Tuple), b.(algebra.Tuple)
			m1, p1, t1, s1 := sc(ta[0]), sc(ta[1]), sc(ta[2]), sc(ta[3])
			m2, p2, t2, s2 := sc(tb[0]), sc(tb[1]), sc(tb[2]), sc(tb[3])
			return algebra.Tuple{
				algebra.Scalar(math.Max(math.Max(m1, m2), t1+p2)),
				algebra.Scalar(math.Max(p1, s1+p2)),
				algebra.Scalar(math.Max(t2, t1+s2)),
				algebra.Scalar(s1 + s2),
			}
		},
	}
}

// SeqMSS is the quadratic sequential reference for MSS.
func SeqMSS(xs []float64) float64 {
	best := math.Inf(-1)
	for i := range xs {
		sum := 0.0
		for j := i; j < len(xs); j++ {
			sum += xs[j]
			if sum > best {
				best = sum
			}
		}
	}
	return best
}

// Stats holds streaming statistics of a distributed sequence.
type Stats struct {
	N        int
	Sum      float64
	Mean     float64
	Variance float64 // population variance
	Min, Max float64
}

// Statistics computes count, sum, mean, population variance, min and max
// of the distributed sequence with a single allreduce over the 5-tuple
// (n, Σx, Σx², min, max) — the auxiliary-variable technique again: the
// variance is not combinable, the tuple is.
func Statistics(mach Machine, xs []float64) (Stats, machine.Result) {
	blocks := chunk(xs, mach.P)
	op := &algebra.Op{
		Name:  "op_stats",
		Cost:  5,
		Arity: 5,
		Fn: func(a, b algebra.Value) algebra.Value {
			ta, tb := a.(algebra.Tuple), b.(algebra.Tuple)
			sc := func(v algebra.Value) float64 { return float64(v.(algebra.Scalar)) }
			return algebra.Tuple{
				algebra.Scalar(sc(ta[0]) + sc(tb[0])),
				algebra.Scalar(sc(ta[1]) + sc(tb[1])),
				algebra.Scalar(sc(ta[2]) + sc(tb[2])),
				algebra.Scalar(math.Min(sc(ta[3]), sc(tb[3]))),
				algebra.Scalar(math.Max(sc(ta[4]), sc(tb[4]))),
			}
		},
	}
	out := make([]algebra.Tuple, mach.P)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		block := blocks[proc.Rank()]
		n, sum, sq := 0.0, 0.0, 0.0
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, x := range block {
			n++
			sum += x
			sq += x * x
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		c.Compute(float64(3 * len(block)))
		v := coll.AllReduce(c, op, algebra.Tuple{
			algebra.Scalar(n), algebra.Scalar(sum), algebra.Scalar(sq),
			algebra.Scalar(mn), algebra.Scalar(mx),
		})
		out[proc.Rank()] = v.(algebra.Tuple)
	})
	t := out[0]
	sc := func(i int) float64 { return float64(t[i].(algebra.Scalar)) }
	n := sc(0)
	st := Stats{N: int(n), Sum: sc(1), Min: sc(3), Max: sc(4)}
	if n > 0 {
		st.Mean = st.Sum / n
		st.Variance = sc(2)/n - st.Mean*st.Mean
	}
	return st, res
}

// Histogram bins the distributed sequence into buckets of width
// (hi−lo)/bins over [lo, hi) and returns the global counts, computed with
// one vector allreduce. Out-of-range values clamp into the edge bins.
func Histogram(mach Machine, xs []float64, lo, hi float64, bins int) ([]int, machine.Result) {
	if bins < 1 || hi <= lo {
		panic("apps: bad histogram shape")
	}
	blocks := chunk(xs, mach.P)
	out := make([]algebra.Value, mach.P)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		counts := make(algebra.Vec, bins)
		for _, x := range blocks[proc.Rank()] {
			b := int((x - lo) / (hi - lo) * float64(bins))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
		}
		c.Compute(float64(len(blocks[proc.Rank()])))
		out[proc.Rank()] = coll.AllReduce(c, algebra.Add, counts)
	})
	vec := out[0].(algebra.Vec)
	counts := make([]int, bins)
	for i, v := range vec {
		counts[i] = int(v)
	}
	return counts, res
}
