package apps

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// SegmentedScan computes per-segment prefix sums of a distributed
// sequence: flags[i] = true starts a new segment at position i, and the
// result at i is the sum of values from its segment's start through i.
// Segmented scan is the workhorse of nested data parallelism (NESL, the
// paper's reference [4]), and it needs no new collective: the segmented
// operator op_seg over (flag, value) pairs is associative, so one
// ordinary scan over block summaries does the global part.
//
// Each processor folds its block locally, one scan of the (flag, value)
// block summaries propagates the carries, and a local fix-up applies each
// processor's carry to its elements before the block's first flag.
func SegmentedScan(mach Machine, flags []bool, values []float64) ([]float64, machine.Result) {
	if len(flags) != len(values) {
		panic(fmt.Sprintf("apps: %d flags for %d values", len(flags), len(values)))
	}
	if len(values) == 0 {
		return nil, machine.Result{}
	}
	fblocks := chunkBools(flags, mach.P)
	vblocks := chunk(values, mach.P)
	seg := algebra.OpSegmented(algebra.Add)
	out := make([]float64, len(values))
	offsets := make([]int, mach.P)
	off := 0
	for i := range vblocks {
		offsets[i] = off
		off += len(vblocks[i])
	}
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		fb, vb := fblocks[proc.Rank()], vblocks[proc.Rank()]

		// Local segmented scan, assuming no carry.
		local := make([]float64, len(vb))
		summary := algebra.Value(algebra.Tuple{algebra.Scalar(0), algebra.Scalar(0)})
		for i := range vb {
			elem := algebra.Tuple{algebra.Scalar(b2f(fb[i])), algebra.Scalar(vb[i])}
			if i == 0 {
				summary = elem
			} else {
				summary = seg.Apply(summary, elem)
			}
			local[i] = float64(summary.(algebra.Tuple)[1].(algebra.Scalar))
		}
		c.Compute(float64(2 * len(vb)))
		// An empty block keeps the initial (no flag, zero value)
		// summary, which is a unit of op_seg.

		// Global carries: inclusive scan of summaries, shifted one rank
		// to the right so each processor gets the fold of everything
		// before its block.
		incl := coll.Scan(c, seg, summary)
		tag := proc.NextTag()
		if proc.Rank()+1 < c.Size() {
			proc.Send(proc.Rank()+1, incl, incl.Words(), tag)
		}
		var carry algebra.Value
		if proc.Rank() > 0 {
			carry = proc.Recv(proc.Rank()-1, tag).(algebra.Value)
		}

		// Fix-up: elements before the block's first flag absorb the
		// carry (if the carry's own segment reaches into this block).
		if carry != nil && proc.Rank() > 0 {
			cv := float64(carry.(algebra.Tuple)[1].(algebra.Scalar))
			for i := range vb {
				if fb[i] {
					break
				}
				local[i] += cv
			}
			c.Compute(float64(len(vb)))
		}
		copy(out[offsets[proc.Rank()]:], local)
	})
	return out, res
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// chunkBools splits flags like chunk splits values.
func chunkBools(xs []bool, p int) [][]bool {
	out := make([][]bool, p)
	per := len(xs) / p
	rem := len(xs) % p
	off := 0
	for i := 0; i < p; i++ {
		sz := per
		if i < rem {
			sz++
		}
		out[i] = xs[off : off+sz]
		off += sz
	}
	return out
}

// SeqSegmentedScan is the sequential reference.
func SeqSegmentedScan(flags []bool, values []float64) []float64 {
	out := make([]float64, len(values))
	acc := 0.0
	for i, v := range values {
		if flags[i] {
			acc = v
		} else {
			acc += v
		}
		out[i] = acc
	}
	return out
}
