package apps

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
)

var testMach = Machine{P: 8, Ts: 100, Tw: 1}

func randSeq(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(41) - 20)
	}
	return out
}

func TestChunkCoversEverything(t *testing.T) {
	xs := make([]float64, 23)
	for i := range xs {
		xs[i] = float64(i)
	}
	blocks := chunk(xs, 5)
	if len(blocks) != 5 {
		t.Fatalf("%d blocks", len(blocks))
	}
	var flat []float64
	for _, b := range blocks {
		flat = append(flat, b...)
	}
	if len(flat) != 23 {
		t.Fatalf("flattened %d elements", len(flat))
	}
	for i, x := range flat {
		if x != float64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	// Sizes differ by at most one.
	for _, b := range blocks {
		if len(b) < 4 || len(b) > 5 {
			t.Fatalf("uneven chunk of %d", len(b))
		}
	}
}

func TestMSSKnownCases(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 6},
		{[]float64{-1, -2, -3}, -1},
		{[]float64{2, -1, 2}, 3},
		{[]float64{31, -41, 59, 26, -53, 58, 97, -93, -23, 84}, 187}, // Bentley's classic
		{[]float64{-2, 1, -3, 4, -1, 2, 1, -5, 4}, 6},
		{[]float64{5}, 5},
	}
	for _, c := range cases {
		got, _ := MSS(testMach, c.xs)
		if got != c.want {
			t.Errorf("MSS(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestMSSMatchesSequentialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(100)
		xs := randSeq(rng, n)
		for _, p := range []int{1, 2, 3, 5, 8, 16} {
			mach := Machine{P: p, Ts: 10, Tw: 1}
			got, _ := MSS(mach, xs)
			want := SeqMSS(xs)
			if got != want {
				t.Fatalf("trial %d p=%d: MSS = %g, want %g (xs %v)", trial, p, got, want, xs)
			}
		}
	}
}

func TestQuickMSSAgainstReference(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		got, _ := MSS(Machine{P: 4, Ts: 1, Tw: 1}, xs)
		return got == SeqMSS(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatistics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	st, res := Statistics(testMach, xs)
	if st.N != 8 || st.Sum != 40 || st.Mean != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Variance != 4 { // the textbook example
		t.Fatalf("variance = %g, want 4", st.Variance)
	}
	if st.Min != 2 || st.Max != 9 {
		t.Fatalf("min/max = %g/%g", st.Min, st.Max)
	}
	if res.Makespan <= 0 {
		t.Fatal("no cost charged")
	}
}

func TestStatisticsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 40; trial++ {
		xs := randSeq(rng, 1+rng.Intn(200))
		for _, p := range []int{1, 3, 8, 13} {
			st, _ := Statistics(Machine{P: p, Ts: 5, Tw: 1}, xs)
			n := float64(len(xs))
			sum, sq := 0.0, 0.0
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, x := range xs {
				sum += x
				sq += x * x
				mn = math.Min(mn, x)
				mx = math.Max(mx, x)
			}
			if st.N != len(xs) || st.Sum != sum || st.Min != mn || st.Max != mx {
				t.Fatalf("p=%d: stats = %+v", p, st)
			}
			wantVar := sq/n - (sum/n)*(sum/n)
			if math.Abs(st.Variance-wantVar) > 1e-9 {
				t.Fatalf("p=%d: variance = %g, want %g", p, st.Variance, wantVar)
			}
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.9, -5, 99}
	counts, _ := Histogram(testMach, xs, 0, 4, 4)
	// Bins [0,1) [1,2) [2,3) [3,4); -5 clamps low, 99 clamps high.
	want := []int{3, 2, 2, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", counts, want)
		}
	}
}

func TestHistogramTotalMass(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	xs := randSeq(rng, 500)
	counts, _ := Histogram(Machine{P: 7, Ts: 3, Tw: 1}, xs, -20, 21, 10)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 500 {
		t.Fatalf("histogram mass = %d, want 500", total)
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram(testMach, []float64{1}, 5, 5, 3)
}

func TestSampleSortSmall(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	blocks, _ := SampleSort(Machine{P: 4, Ts: 10, Tw: 1}, xs)
	if !IsGloballySorted(blocks) {
		t.Fatalf("not sorted: %v", blocks)
	}
	var flat []float64
	for _, b := range blocks {
		flat = append(flat, b...)
	}
	if len(flat) != len(xs) {
		t.Fatalf("lost elements: %v", blocks)
	}
	for i, x := range flat {
		if x != float64(i) {
			t.Fatalf("flat = %v", flat)
		}
	}
}

func TestSampleSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(400)
		xs := randSeq(rng, n)
		for _, p := range []int{1, 2, 4, 6, 8} {
			blocks, _ := SampleSort(Machine{P: p, Ts: 5, Tw: 1}, xs)
			if !IsGloballySorted(blocks) {
				t.Fatalf("trial %d p=%d: not globally sorted", trial, p)
			}
			var flat []float64
			for _, b := range blocks {
				flat = append(flat, b...)
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			if len(flat) != len(want) {
				t.Fatalf("trial %d p=%d: %d elements, want %d", trial, p, len(flat), len(want))
			}
			for i := range want {
				if flat[i] != want[i] {
					t.Fatalf("trial %d p=%d: position %d = %g, want %g", trial, p, i, flat[i], want[i])
				}
			}
		}
	}
}

func TestSampleSortWithDuplicates(t *testing.T) {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i % 4) // heavy duplication stresses splitters
	}
	blocks, _ := SampleSort(Machine{P: 8, Ts: 5, Tw: 1}, xs)
	if !IsGloballySorted(blocks) {
		t.Fatalf("duplicates broke sorting: %v", blocks)
	}
}

func TestSampleSortFewerElementsThanProcessors(t *testing.T) {
	xs := []float64{3, 1, 2}
	blocks, _ := SampleSort(Machine{P: 8, Ts: 5, Tw: 1}, xs)
	if !IsGloballySorted(blocks) {
		t.Fatalf("short input: %v", blocks)
	}
	var flat []float64
	for _, b := range blocks {
		flat = append(flat, b...)
	}
	if len(flat) != 3 {
		t.Fatalf("lost elements: %v", blocks)
	}
}

func TestIsGloballySorted(t *testing.T) {
	if !IsGloballySorted([][]float64{{1, 2}, {}, {2, 3}}) {
		t.Error("sorted blocks rejected")
	}
	if IsGloballySorted([][]float64{{1, 2}, {0}}) {
		t.Error("unsorted blocks accepted")
	}
}

func TestNlogn(t *testing.T) {
	if nlogn(0) != 0 || nlogn(1) != 1 {
		t.Error("tiny cases")
	}
	if nlogn(8) != 24 { // 8·3
		t.Errorf("nlogn(8) = %g", nlogn(8))
	}
}

func TestMatVecKnown(t *testing.T) {
	a := algebra.NewMat(3, 3,
		1, 0, 0,
		0, 2, 0,
		0, 0, 3)
	x := algebra.Vec{4, 5, 6}
	got, res := MatVec(Machine{P: 3, Ts: 5, Tw: 1}, a, x)
	if !algebra.Equal(got, algebra.Vec{4, 10, 18}) {
		t.Fatalf("MatVec = %v", got)
	}
	if res.Makespan <= 0 {
		t.Fatal("no cost charged")
	}
}

func TestMatVecMatchesReferenceAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, n := range []int{1, 3, 7, 16, 20} {
		for _, p := range []int{1, 2, 4, 5, 8} {
			if p > n {
				continue
			}
			data := make([]float64, n*n)
			for i := range data {
				data[i] = float64(rng.Intn(9) - 4)
			}
			a := algebra.NewMat(n, n, data...)
			x := make(algebra.Vec, n)
			for i := range x {
				x[i] = float64(rng.Intn(9) - 4)
			}
			got, _ := MatVec(Machine{P: p, Ts: 3, Tw: 1}, a, x)
			want := a.MulVec(x)
			if !algebra.Equal(got, want) {
				t.Fatalf("n=%d p=%d: MatVec = %v, want %v", n, p, got, want)
			}
		}
	}
}

func TestMatVecValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatVec(Machine{P: 2, Ts: 1, Tw: 1}, algebra.NewMat(2, 2, 1, 2, 3, 4), algebra.Vec{1})
}

func TestSegmentedScanKnown(t *testing.T) {
	flags := []bool{true, false, false, true, false, true, false, false}
	vals := []float64{3, 4, 5, 10, 1, 7, 7, 7}
	want := []float64{3, 7, 12, 10, 11, 7, 14, 21}
	got, _ := SegmentedScan(Machine{P: 3, Ts: 5, Tw: 1}, flags, vals)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segmented scan = %v, want %v", got, want)
		}
	}
}

func TestSegmentedScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		flags := make([]bool, n)
		vals := make([]float64, n)
		for i := range vals {
			flags[i] = rng.Intn(4) == 0
			vals[i] = float64(rng.Intn(9) - 4)
		}
		flags[0] = rng.Intn(2) == 0 // both leading-flag cases
		for _, p := range []int{1, 2, 3, 5, 8, 13} {
			got, _ := SegmentedScan(Machine{P: p, Ts: 2, Tw: 1}, flags, vals)
			want := SeqSegmentedScan(flags, vals)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d p=%d pos %d: %g, want %g\nflags %v\nvals %v",
						trial, p, i, got[i], want[i], flags, vals)
				}
			}
		}
	}
}

func TestSegmentedScanNoFlagsIsPlainScan(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	flags := make([]bool, 6)
	got, _ := SegmentedScan(Machine{P: 4, Ts: 2, Tw: 1}, flags, vals)
	want := []float64{1, 3, 6, 10, 15, 21}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSegmentedScanValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SegmentedScan(Machine{P: 2, Ts: 1, Tw: 1}, []bool{true}, []float64{1, 2})
}
