package apps

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// SampleSort sorts the distributed sequence with the classic sample-sort
// algorithm, expressed entirely in collective operations (the programming
// style of the paper's reference [5], computational geometry "in good
// programming style"):
//
//  1. every processor sorts its block locally,
//  2. each contributes p regular samples, gathered on the root,
//  3. the root selects p−1 splitters and broadcasts them,
//  4. each processor partitions its block by the splitters,
//  5. one personalized all-to-all redistributes the partitions,
//  6. each processor merges what it received.
//
// The result is returned as one block per processor: block i is sorted
// and everything in block i is ≤ everything in block i+1, so the
// concatenation is the sorted sequence.
func SampleSort(mach Machine, xs []float64) ([][]float64, machine.Result) {
	p := mach.P
	blocks := chunk(xs, p)
	out := make([][]float64, p)
	res := mach.virtual().Run(func(proc *machine.Proc) {
		c := coll.World(proc)
		rank := proc.Rank()

		// 1. Local sort.
		local := append([]float64(nil), blocks[rank]...)
		sort.Float64s(local)
		c.Compute(nlogn(len(local)))

		// 2. Regular sampling: p samples per processor (with
		// repetition when the block is short).
		samples := make(algebra.Vec, p)
		for i := 0; i < p; i++ {
			if len(local) == 0 {
				samples[i] = 0
			} else {
				samples[i] = local[i*len(local)/p]
			}
		}
		gathered := coll.Gather(c, 0, samples)

		// 3. Root selects the splitters and broadcasts them.
		var splitters algebra.Value
		if rank == 0 {
			all := make([]float64, 0, p*p)
			for _, g := range gathered {
				all = append(all, g.(algebra.Vec)...)
			}
			sort.Float64s(all)
			c.Compute(nlogn(len(all)))
			sp := make(algebra.Vec, p-1)
			for i := 1; i < p; i++ {
				sp[i-1] = all[i*len(all)/p]
			}
			splitters = sp
		} else {
			splitters = algebra.Undef{}
		}
		splitters = coll.Bcast(c, 0, splitters)
		sp := splitters.(algebra.Vec)

		// 4. Partition the sorted block by the splitters.
		parts := make([]algebra.Value, p)
		start := 0
		for b := 0; b < p; b++ {
			end := len(local)
			if b < p-1 {
				end = sort.SearchFloat64s(local, sp[b])
				// SearchFloat64s finds the first ≥ splitter; keep
				// duplicates of the splitter itself in the lower
				// bucket boundary deterministically.
				if end < start {
					end = start
				}
			}
			parts[b] = algebra.Vec(local[start:end])
			start = end
		}
		c.Compute(float64(p)) // splitter binary searches, ~log m each

		// 5. Personalized all-to-all.
		recv := coll.AllToAll(c, parts)

		// 6. Multiway merge (concatenate and sort: the runs are short).
		merged := make([]float64, 0, len(local))
		for _, r := range recv {
			merged = append(merged, r.(algebra.Vec)...)
		}
		sort.Float64s(merged)
		c.Compute(nlogn(len(merged)))
		out[rank] = merged
	})
	return out, res
}

// nlogn is the computation charge for an n·log n local sort.
func nlogn(n int) float64 {
	if n < 2 {
		return float64(n)
	}
	c := 0.0
	for k := n; k > 1; k >>= 1 {
		c++
	}
	return float64(n) * c
}

// IsGloballySorted checks the SampleSort postcondition.
func IsGloballySorted(blocks [][]float64) bool {
	last := 0.0
	first := true
	for _, b := range blocks {
		for _, x := range b {
			if !first && x < last {
				return false
			}
			last = x
			first = false
		}
	}
	return true
}
