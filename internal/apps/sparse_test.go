package apps

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
)

// nativeRanks runs the SPMD body on the native backend and returns
// nothing — the body stores its own results.
func nativeRanks(p int, body func(c coll.Comm)) {
	backend.New(p).Run(func(pr *backend.Proc) { body(pr) })
}

func randGrid(rng *rand.Rand, rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
		for j := range g[i] {
			g[i][j] = float64(rng.Intn(19) - 9)
		}
	}
	return g
}

func gridsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestStencil2DMatchesSequential runs the torus stencil over several
// process-grid shapes — including single rows, single columns, and
// non-power-of-two grids — and demands bitwise equality with the
// sequential reference.
func TestStencil2DMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	shapes := []struct{ pr, pc int }{
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 1}, {2, 3}, {4, 2},
	}
	for _, sh := range shapes {
		grid := randGrid(rng, 6*sh.pr, 4*sh.pc)
		want := SeqStencil2D(grid, 3)
		mach := Machine{P: sh.pr * sh.pc, Ts: 10, Tw: 1}
		got, res := Stencil2D(mach, grid, sh.pr, sh.pc, 3)
		if !gridsEqual(got, want) {
			t.Fatalf("%d×%d grid: virtual stencil diverged from sequential", sh.pr, sh.pc)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%d×%d grid: no cost charged", sh.pr, sh.pc)
		}
	}
}

// TestStencilRankOnNative runs the identical rank body on the native
// backend: real channel transfers, no cost model, same bits.
func TestStencilRankOnNative(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	for _, sh := range []struct{ pr, pc int }{{2, 2}, {3, 2}, {1, 3}} {
		p := sh.pr * sh.pc
		grid := randGrid(rng, 4*sh.pr, 3*sh.pc)
		want := SeqStencil2D(grid, 2)
		tiles := tileGrid(grid, sh.pr, sh.pc)
		out := make([][][]float64, p)
		nativeRanks(p, func(c coll.Comm) {
			out[c.Rank()] = StencilRank(c, tiles[c.Rank()], sh.pr, sh.pc, 2)
		})
		got := untileGrid(out, sh.pr, sh.pc, len(grid), len(grid[0]))
		if !gridsEqual(got, want) {
			t.Fatalf("%d×%d native stencil diverged from sequential", sh.pr, sh.pc)
		}
	}
}

// raggedCase builds a ragged partition with zero-length blocks and the
// matching flags/values.
func raggedCase(rng *rand.Rand, p int) (counts []int, flags []bool, values []float64) {
	counts = make([]int, p)
	total := 0
	for i := range counts {
		counts[i] = rng.Intn(5) // zeros happen often
		total += counts[i]
	}
	if total == 0 {
		counts[rng.Intn(p)] = 3
		total = 3
	}
	flags = make([]bool, total)
	values = make([]float64, total)
	for i := range values {
		flags[i] = rng.Intn(4) == 0
		values[i] = float64(rng.Intn(19) - 9)
	}
	return counts, flags, values
}

func TestRaggedSegmentedScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 30; trial++ {
		for _, p := range []int{1, 2, 3, 4, 5, 8} {
			counts, flags, values := raggedCase(rng, p)
			want := SeqSegmentedScan(flags, values)
			mach := Machine{P: p, Ts: 10, Tw: 1}
			got, _ := RaggedSegmentedScan(mach, counts, flags, values)
			if len(got) != len(want) {
				t.Fatalf("p=%d: %d results for %d values", p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d counts=%v: result[%d] = %g, want %g", p, counts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRaggedSegScanRankOnNative also pins that every rank — including
// zero-count ones — receives the identical full result vector.
func TestRaggedSegScanRankOnNative(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(5)
		counts, flags, values := raggedCase(rng, p)
		want := SeqSegmentedScan(flags, values)
		displs := make([]int, p+1)
		for i, cnt := range counts {
			displs[i+1] = displs[i] + cnt
		}
		out := make([]algebra.Vec, p)
		nativeRanks(p, func(c coll.Comm) {
			r := c.Rank()
			full := RaggedSegScanRank(c, counts, flags[displs[r]:displs[r+1]], values[displs[r]:displs[r+1]])
			out[r] = append(algebra.Vec(nil), full...)
		})
		for r := 0; r < p; r++ {
			if len(out[r]) != len(want) {
				t.Fatalf("rank %d got %d of %d results", r, len(out[r]), len(want))
			}
			for i := range want {
				if out[r][i] != want[i] {
					t.Fatalf("rank %d result[%d] = %g, want %g (counts %v)", r, i, out[r][i], want[i], counts)
				}
			}
		}
	}
}

// randEdges draws a random multigraph edge list over n vertices.
func randEdges(rng *rand.Rand, n, e int) [][2]int {
	edges := make([][2]int, e)
	for i := range edges {
		edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return edges
}

// raggedPartition splits n vertices over p ranks with skew and zeros.
func raggedPartition(rng *rand.Rand, n, p int) []int {
	counts := make([]int, p)
	left := n
	for i := 0; i < p-1; i++ {
		counts[i] = rng.Intn(left + 1)
		left -= counts[i]
	}
	counts[p-1] = left
	return counts
}

func TestDegreeHistogramMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 20; trial++ {
		for _, p := range []int{1, 2, 3, 4, 6} {
			n := 8 + rng.Intn(17)
			edges := randEdges(rng, n, 3*n)
			counts := raggedPartition(rng, n, p)
			const bins = 6
			want := SeqDegreeHistogram(n, edges, bins)
			mach := Machine{P: p, Ts: 10, Tw: 1}
			got, _ := DegreeHistogram(mach, n, edges, counts, bins)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d counts=%v: bin %d = %d, want %d", p, counts, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDegreeHistRankOnNative(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(4)
		n := 10 + rng.Intn(10)
		edges := randEdges(rng, n, 2*n)
		counts := raggedPartition(rng, n, p)
		const bins = 5
		want := SeqDegreeHistogram(n, edges, bins)
		eblocks := chunkEdges(edges, p)
		out := make([]algebra.Vec, p)
		nativeRanks(p, func(c coll.Comm) {
			hist := DegreeHistRank(c, n, counts, eblocks[c.Rank()], bins)
			out[c.Rank()] = append(algebra.Vec(nil), hist...)
		})
		for r := 0; r < p; r++ {
			for i := range want {
				if int(out[r][i]) != want[i] {
					t.Fatalf("rank %d bin %d = %g, want %d (counts %v)", r, i, out[r][i], want[i], counts)
				}
			}
		}
	}
}
