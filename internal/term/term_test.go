package term

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
)

func scalars(xs ...float64) []algebra.Value {
	out := make([]algebra.Value, len(xs))
	for i, x := range xs {
		out[i] = algebra.Scalar(x)
	}
	return out
}

func randScalars(rng *rand.Rand, n int) []algebra.Value {
	out := make([]algebra.Value, n)
	for i := range out {
		out[i] = algebra.Scalar(float64(rng.Intn(19) - 9))
	}
	return out
}

func TestMapSemantics(t *testing.T) {
	double := &Fn{Name: "double", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, v)
	}}
	got := Eval(Map{double}, scalars(1, 2, 3))
	if !algebra.EqualLists(got, scalars(2, 4, 6)) {
		t.Fatalf("map double = %v", got)
	}
}

func TestMapIdxSemantics(t *testing.T) {
	// map# f applies f i x_i — equation (13).
	addIdx := &IdxFn{
		Name: "addidx",
		F: func(i int, v algebra.Value) algebra.Value {
			return algebra.Add.Apply(v, algebra.Scalar(float64(i)))
		},
		Charge: func(i, m int) float64 { return float64(m) },
	}
	got := Eval(MapIdx{addIdx}, scalars(10, 10, 10))
	if !algebra.EqualLists(got, scalars(10, 11, 12)) {
		t.Fatalf("map# = %v", got)
	}
}

func TestScanSemantics(t *testing.T) {
	// Equation (7).
	got := Eval(Scan{algebra.Add}, scalars(2, 5, 9, 1, 2, 6))
	if !algebra.EqualLists(got, scalars(2, 7, 16, 17, 19, 25)) {
		t.Fatalf("scan(+) = %v", got)
	}
}

func TestReduceSemantics(t *testing.T) {
	// Equation (5), with the MPI don't-care convention for non-root
	// positions (see the Eval doc): result on the first processor,
	// others undetermined.
	got := Eval(Reduce{Op: algebra.Add}, scalars(1, 2, 3, 4))
	if !algebra.Equal(got[0], algebra.Scalar(10)) {
		t.Fatalf("reduce(+) root = %v, want 10", got[0])
	}
	for i := 1; i < 4; i++ {
		if !algebra.IsUndef(got[i]) {
			t.Fatalf("reduce(+) position %d = %v, want _", i, got[i])
		}
	}
}

func TestAllReduceSemantics(t *testing.T) {
	// Equation (6).
	got := Eval(Reduce{Op: algebra.Add, All: true}, scalars(1, 2, 3, 4))
	if !algebra.EqualLists(got, scalars(10, 10, 10, 10)) {
		t.Fatalf("allreduce(+) = %v", got)
	}
}

func TestBcastSemantics(t *testing.T) {
	// Equation (8): the other processors' data are irrelevant.
	got := Eval(Bcast{}, scalars(7, 1, 2, 3))
	if !algebra.EqualLists(got, scalars(7, 7, 7, 7)) {
		t.Fatalf("bcast = %v", got)
	}
}

func TestIterSemantics(t *testing.T) {
	// iter f [x,_,…] = [f^(log n) x, _, …].
	op := algebra.OpBR(algebra.Add)
	got := Eval(Iter{op}, scalars(3, 0, 0, 0))
	if !algebra.Equal(got[0], algebra.Scalar(12)) {
		t.Fatalf("iter(op_br) first = %v, want 12", got[0])
	}
	for i := 1; i < 4; i++ {
		if !algebra.IsUndef(got[i]) {
			t.Fatalf("iter position %d = %v, want _", i, got[i])
		}
	}
}

func TestIterNonPowerOfTwoRoundsUp(t *testing.T) {
	op := algebra.OpBR(algebra.Add)
	// n = 5: ceil(log2 5) = 3 applications → 8·x.
	got := Eval(Iter{op}, scalars(1, 0, 0, 0, 0))
	if !algebra.Equal(got[0], algebra.Scalar(8)) {
		t.Fatalf("iter on 5 = %v, want 8", got[0])
	}
}

func TestComcastSemantics(t *testing.T) {
	ops := algebra.OpCompBS(algebra.Add)
	got := Eval(Comcast{Ops: ops}, scalars(2, 0, 0, 0, 0, 0))
	if !algebra.EqualLists(got, scalars(2, 4, 6, 8, 10, 12)) {
		t.Fatalf("comcast = %v", got)
	}
}

func TestSeqComposesForward(t *testing.T) {
	// (f ; g) x = g (f x) — equation (3).
	got := Eval(Seq{Scan{algebra.Add}, Reduce{Op: algebra.Add}}, scalars(1, 2, 3))
	// scan: [1 3 6]; reduce: [10 _ _].
	if !algebra.Equal(got[0], algebra.Scalar(10)) {
		t.Fatalf("scan;reduce root = %v, want 10", got[0])
	}
}

func TestEvalEmptyInput(t *testing.T) {
	if got := Eval(Scan{algebra.Add}, nil); got != nil {
		t.Fatalf("Eval on empty input = %v", got)
	}
}

// TestExampleProgram evaluates the paper's program Example (§2.1):
// map f ; scan(op1) ; reduce(op2) ; map g ; bcast.
func TestExampleProgram(t *testing.T) {
	f := &Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}
	g := &Fn{Name: "g", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(2))
	}}
	example := Compose(Map{f}, Scan{algebra.Add}, Reduce{Op: algebra.Add}, Map{g}, Bcast{})
	got := Eval(example, scalars(1, 2, 3, 4))
	// f: [2 3 4 5]; scan: [2 5 9 14]; reduce: [30 5 9 14];
	// g: [60 10 18 28]; bcast: [60 60 60 60].
	if !algebra.EqualLists(got, scalars(60, 60, 60, 60)) {
		t.Fatalf("example = %v", got)
	}
}

func TestReduceBalancedSemanticsFigure4(t *testing.T) {
	sr := algebra.OpSR(algebra.Add)
	xs := Eval(Map{PairFn}, scalars(2, 5, 9, 1, 2, 6))
	got := Eval(Reduce{Op: sr, Balanced: true}, xs)
	want := algebra.Tuple{algebra.Scalar(86), algebra.Scalar(200)}
	if !algebra.Equal(got[0], want) {
		t.Fatalf("reduce_balanced first = %v, want %v", got[0], want)
	}
}

func TestScanBalancedSemanticsFigure5(t *testing.T) {
	ss := algebra.OpSS(algebra.Add)
	xs := Eval(Map{QuadrupleFn}, scalars(2, 5, 9, 1, 2, 6))
	got := Eval(Seq{ScanBal{ss}, Map{FirstFn}}, xs)
	if !algebra.EqualListsModuloUndef(got, scalars(2, 9, 25, 42, 61, 86)) {
		t.Fatalf("scan_balanced firsts = %v", got)
	}
}

func TestAllReduceBalancedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{1, 2, 3, 5, 6, 8, 16} {
		xs := randScalars(rng, n)
		sr := algebra.OpSR(algebra.Add)
		paired := Eval(Map{PairFn}, xs)
		got := Eval(Seq{Reduce{Op: sr, All: true, Balanced: true}, Map{FirstFn}}, paired)
		want := Eval(Seq{Scan{algebra.Add}, Reduce{Op: algebra.Add, All: true}}, xs)
		// allreduce_balanced duplicates the balanced-tree result.
		for i := range got {
			if !algebra.Equal(got[i], want[i]) {
				t.Fatalf("n=%d pos %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	sr2 := algebra.OpSR2(algebra.Mul, algebra.Add)
	cases := []struct {
		t    Term
		want string
	}{
		{Map{PairFn}, "map pair"},
		{MapIdx{RepeatFn(algebra.OpCompBS(algebra.Add))}, "map# op_comp[op_comp_bs(+)]"},
		{Scan{algebra.Add}, "scan(+)"},
		{Reduce{Op: algebra.Add}, "reduce(+)"},
		{Reduce{Op: algebra.Add, All: true}, "allreduce(+)"},
		{Reduce{Op: sr2, Balanced: true}, "reduce_balanced(op_sr2(*,+))"},
		{Bcast{}, "bcast"},
		{Iter{algebra.OpBR(algebra.Add)}, "iter(op_br(+))"},
		{Seq{Bcast{}, Scan{algebra.Add}}, "bcast ; scan(+)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestComposeFlattens(t *testing.T) {
	inner := Seq{Bcast{}, Scan{algebra.Add}}
	out := Compose(Map{PairFn}, inner, Reduce{Op: algebra.Add})
	if len(out) != 4 {
		t.Fatalf("Compose produced %d stages, want 4: %v", len(out), out)
	}
}

func TestStagesFlattens(t *testing.T) {
	nested := Seq{Seq{Bcast{}}, Seq{Scan{algebra.Add}, Seq{Reduce{Op: algebra.Add}}}}
	st := Stages(nested)
	if len(st) != 3 {
		t.Fatalf("Stages = %v", st)
	}
}

func TestEqualTerms(t *testing.T) {
	a := Compose(Bcast{}, Scan{algebra.Add})
	b := Seq{Bcast{}, Scan{algebra.Add}}
	if !EqualTerms(a, b) {
		t.Error("structurally equal terms compare unequal")
	}
	c := Seq{Bcast{}, Scan{algebra.Mul}}
	if EqualTerms(a, c) {
		t.Error("different operators compare equal")
	}
	d := Seq{Bcast{}}
	if EqualTerms(a, d) {
		t.Error("different lengths compare equal")
	}
	if !EqualTerms(Reduce{Op: algebra.Add}, Reduce{Op: algebra.Add}) {
		t.Error("identical reduces compare unequal")
	}
	if EqualTerms(Reduce{Op: algebra.Add}, Reduce{Op: algebra.Add, All: true}) {
		t.Error("reduce equals allreduce")
	}
}

// TestP1EqualsP2 is the §2.3 warm-up (Figure 2): P1 = allreduce(+) and
// P2 = map pair ; allreduce(op_new) ; map π₁ are semantically equal.
func TestP1EqualsP2(t *testing.T) {
	opNew := algebra.OpNew(algebra.Add, algebra.Mul)
	p1 := Seq{Reduce{Op: algebra.Add, All: true}}
	p2 := Seq{Map{PairFn}, Reduce{Op: opNew, All: true}, Map{FirstFn}}
	in := scalars(1, 2, 3, 4)
	got1 := Eval(p1, in)
	got2 := Eval(p2, in)
	if !algebra.EqualLists(got1, got2) {
		t.Fatalf("P1 = %v, P2 = %v", got1, got2)
	}
	if !algebra.EqualLists(got1, scalars(10, 10, 10, 10)) {
		t.Fatalf("P1 = %v, want all 10", got1)
	}
	// The intermediate of P2 is [(10,24) ×4] as in Figure 2.
	mid := Eval(Seq{Map{PairFn}, Reduce{Op: opNew, All: true}}, in)
	want := algebra.Tuple{algebra.Scalar(10), algebra.Scalar(24)}
	for i, v := range mid {
		if !algebra.Equal(v, want) {
			t.Fatalf("P2 intermediate %d = %v, want %v", i, v, want)
		}
	}
}

func TestGatherScatterStrings(t *testing.T) {
	if (Gather{}).String() != "gather" || (Scatter{}).String() != "scatter" {
		t.Fatal("gather/scatter strings")
	}
	ops := algebra.OpCompBS(algebra.Add)
	if got := (Comcast{Ops: ops, CostOptimal: true}).String(); got != "comcast(op_comp_bs(+))" {
		t.Fatalf("cost-optimal comcast String = %q", got)
	}
	rf := RepeatFn(ops)
	if rf.Charge(3, 10) != ops.RepeatCharge(3, 10) {
		t.Fatal("RepeatFn charge mismatch")
	}
	got := rf.F(3, algebra.Scalar(2))
	if !algebra.Equal(got, algebra.Scalar(8)) {
		t.Fatalf("RepeatFn(3, 2) = %v, want 8", got)
	}
}

func TestFnStringers(t *testing.T) {
	if PairFn.String() != "pair" {
		t.Fatal("Fn.String")
	}
	idx := &IdxFn{Name: "idx"}
	if idx.String() != "idx" {
		t.Fatal("IdxFn.String")
	}
}

func TestEvalUnknownTermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	type alien struct{ Term }
	Eval(alien{}, scalars(1))
}
