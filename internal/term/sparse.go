package term

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
)

// This file adds the sparse and irregular collectives of the
// neighborhood/message-combining literature (Träff et al., Jocksch et
// al.; see PAPERS.md) to the functional framework:
//
//   - Halo: an isomorphic (or per-rank) sparse neighborhood exchange —
//     every processor receives the blocks of its neighbors.
//   - AllGatherV: the irregular-block allgather — per-rank block sizes
//     given by a counts vector, every processor receives the full
//     concatenation.
//   - ReduceScatterV: the irregular-block reduce-scatter — blocks are
//     combined rank-ordered and processor i keeps its counts[i]-slice.
//
// Their semantics below are what the message-combining rules in package
// rules are verified against.

// Hood describes a neighborhood. Exactly one of Offsets and Lists is
// set.
//
// Offsets is the isomorphic form: processor i's j-th neighbor is
// processor (i+Offsets[j]) mod p, the same relative pattern at every
// rank (a ring halo is Offsets = [-1, 1]). Offsets may repeat and may
// include 0; offsets congruent mod p are served by one message.
//
// Lists is the non-isomorphic form: Lists[i] holds the absolute source
// ranks of processor i, pinning the neighborhood to p = len(Lists).
// It has no surface syntax and exists to express neighborhoods the
// combining rule must refuse to fuse.
type Hood struct {
	Offsets []int
	Lists   [][]int
}

// Isomorphic reports whether the neighborhood is in offset form.
func (h *Hood) Isomorphic() bool { return h.Lists == nil }

// Sources returns the absolute source ranks of processor i in a world
// of n processors, in neighbor order.
func (h *Hood) Sources(i, n int) []int {
	if h.Isomorphic() {
		src := make([]int, len(h.Offsets))
		for j, o := range h.Offsets {
			src[j] = ((i+o)%n + n) % n
		}
		return src
	}
	if len(h.Lists) != n {
		panic(fmt.Sprintf("term: halo neighborhood pins p=%d, evaluated at p=%d", len(h.Lists), n))
	}
	return h.Lists[i]
}

// Degree is the number of neighbors of processor i (i ignored for the
// isomorphic form).
func (h *Hood) Degree(i int) int {
	if h.Isomorphic() {
		return len(h.Offsets)
	}
	return len(h.Lists[i])
}

func (h *Hood) String() string {
	if h.Isomorphic() {
		parts := make([]string, len(h.Offsets))
		for i, o := range h.Offsets {
			parts[i] = fmt.Sprintf("%d", o)
		}
		return strings.Join(parts, ",")
	}
	parts := make([]string, len(h.Lists))
	for i, l := range h.Lists {
		inner := make([]string, len(l))
		for j, s := range l {
			inner[j] = fmt.Sprintf("%d", s)
		}
		parts[i] = "[" + strings.Join(inner, " ") + "]"
	}
	return "lists:" + strings.Join(parts, ",")
}

// EqualHoods reports structural equality of two neighborhoods.
func EqualHoods(a, b *Hood) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Isomorphic() != b.Isomorphic() {
		return false
	}
	if a.Isomorphic() {
		return equalInts(a.Offsets, b.Offsets)
	}
	if len(a.Lists) != len(b.Lists) {
		return false
	}
	for i := range a.Lists {
		if !equalInts(a.Lists[i], b.Lists[i]) {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Halo is the sparse neighborhood exchange: processor i receives the
// list ⟨x_{s} : s ∈ neighbors(i)⟩ of its neighbors' blocks, in neighbor
// order. The ring wraps, so a grid halo on a row or column communicator
// is periodic.
type Halo struct {
	H *Hood
}

func (h Halo) isTerm() {}
func (h Halo) String() string {
	return fmt.Sprintf("halo(%s)", h.H)
}

// AllGatherV is the irregular-block allgather: processor i holds a
// block of Counts[i] words and every processor receives the flat
// concatenation of all blocks in rank order (total ΣCounts words). The
// counts pin p = len(Counts).
type AllGatherV struct {
	Counts []int
}

func (a AllGatherV) isTerm() {}
func (a AllGatherV) String() string {
	return fmt.Sprintf("allgatherv(%s)", countsString(a.Counts))
}

// ReduceScatterV is the irregular-block reduce-scatter: every processor
// holds a ΣCounts-word vector, the vectors are combined with ⊕ in rank
// order, and processor i keeps the counts[i]-word slice at its
// displacement. The counts pin p = len(Counts).
type ReduceScatterV struct {
	Op     *algebra.Op
	Counts []int
}

func (r ReduceScatterV) isTerm() {}
func (r ReduceScatterV) String() string {
	return fmt.Sprintf("reduce_scatterv(%s,%s)", r.Op.Name, countsString(r.Counts))
}

func countsString(counts []int) string {
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// CountsStage returns the counts vector of a stage that carries one
// (AllGatherV or ReduceScatterV) and whether it did. Such stages pin
// the machine size to len(counts).
func CountsStage(t Term) ([]int, bool) {
	switch s := t.(type) {
	case AllGatherV:
		return s.Counts, true
	case ReduceScatterV:
		return s.Counts, true
	}
	return nil, false
}

// SumCounts is the total word count of an irregular counts vector.
func SumCounts(counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// Displs returns the rank displacements (exclusive prefix sums) of a
// counts vector.
func Displs(counts []int) []int {
	d := make([]int, len(counts))
	sum := 0
	for i, c := range counts {
		d[i] = sum
		sum += c
	}
	return d
}

// evalHalo gives the functional semantics of the neighborhood exchange:
// out[i] = ⟨xs[s] : s ∈ sources(i)⟩.
func evalHalo(h *Hood, xs []algebra.Value) []algebra.Value {
	n := len(xs)
	out := make([]algebra.Value, n)
	for i := range xs {
		src := h.Sources(i, n)
		nb := make(algebra.Tuple, len(src))
		for j, s := range src {
			nb[j] = xs[s]
		}
		out[i] = nb
	}
	return out
}

// evalAllGatherV concatenates the ragged blocks in rank order and
// delivers the flat result everywhere. Inputs are strict: processor i
// must hold a Counts[i]-element vector (compare Scatter, which panics
// on a shape mismatch).
func evalAllGatherV(counts []int, xs []algebra.Value) []algebra.Value {
	n := len(xs)
	if len(counts) != n {
		panic(fmt.Sprintf("term: allgatherv with %d counts evaluated at p=%d", len(counts), n))
	}
	total := SumCounts(counts)
	flat := make(algebra.Vec, 0, total)
	for i, x := range xs {
		v, ok := x.(algebra.Vec)
		if !ok || len(v) != counts[i] {
			panic(fmt.Sprintf("term: allgatherv needs a %d-word vector on processor %d, got %v", counts[i], i, x))
		}
		flat = append(flat, v...)
	}
	out := make([]algebra.Value, n)
	for i := range out {
		out[i] = flat
	}
	return out
}

// evalReduceScatterV folds the per-processor vectors with ⊕ in rank
// order and hands processor i its counts[i]-slice at displacement
// displs[i].
func evalReduceScatterV(op *algebra.Op, counts []int, xs []algebra.Value) []algebra.Value {
	n := len(xs)
	if len(counts) != n {
		panic(fmt.Sprintf("term: reduce_scatterv with %d counts evaluated at p=%d", len(counts), n))
	}
	y := xs[0]
	for _, x := range xs[1:] {
		y = op.Apply(y, x)
	}
	v, ok := y.(algebra.Vec)
	if !ok {
		panic(fmt.Sprintf("term: reduce_scatterv(%s) combined to a non-vector %v", op.Name, y))
	}
	displs := Displs(counts)
	total := SumCounts(counts)
	if len(v) < total {
		panic(fmt.Sprintf("term: reduce_scatterv needs %d combined words, got %d", total, len(v)))
	}
	out := make([]algebra.Value, n)
	for i := range out {
		seg := make(algebra.Vec, counts[i])
		copy(seg, v[displs[i]:displs[i]+counts[i]])
		out[i] = seg
	}
	return out
}
