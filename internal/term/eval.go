package term

import (
	"fmt"

	"repro/internal/algebra"
)

// Eval computes the functional semantics of a term on an input list with
// one value per processor, per equations (4)–(8) of the paper. It is the
// machine-independent reference the optimization rules are equalities
// over; the machine executor in package core must agree with it on the
// determined positions (package rules verifies that they do).
func Eval(t Term, xs []algebra.Value) []algebra.Value {
	if len(xs) == 0 {
		return nil
	}
	switch s := t.(type) {
	case Seq:
		cur := xs
		for _, sub := range s {
			cur = Eval(sub, cur)
		}
		return cur
	case Map:
		out := make([]algebra.Value, len(xs))
		for i, x := range xs {
			out[i] = s.F.F(x)
		}
		return out
	case MapIdx:
		out := make([]algebra.Value, len(xs))
		for i, x := range xs {
			out[i] = s.F.F(i, x)
		}
		return out
	case Scan:
		out := make([]algebra.Value, len(xs))
		out[0] = xs[0]
		for i := 1; i < len(xs); i++ {
			out[i] = s.Op.Apply(out[i-1], xs[i])
		}
		return out
	case ScanBal:
		return evalScanBalanced(s.Op, xs)
	case Reduce:
		var y algebra.Value
		if s.Balanced {
			y = evalReduceBalanced(s.Op, xs)
		} else {
			y = xs[0]
			for _, x := range xs[1:] {
				y = s.Op.Apply(y, x)
			}
		}
		out := make([]algebra.Value, len(xs))
		if s.All {
			for i := range out {
				out[i] = y
			}
		} else {
			// Equation (5) writes reduce(⊕)[x1,…,xn] = [y, x2, …, xn],
			// but the optimization rules are equalities only if the
			// non-root positions are don't-cares — which they are in
			// MPI, where non-root receive buffers are undefined. We
			// therefore mark them undetermined; a program that reads a
			// non-root value after a reduce is erroneous.
			out[0] = y
			for i := 1; i < len(out); i++ {
				out[i] = algebra.Undef{}
			}
		}
		return out
	case Bcast:
		out := make([]algebra.Value, len(xs))
		for i := range out {
			out[i] = xs[0]
		}
		return out
	case Gather:
		out := make([]algebra.Value, len(xs))
		list := make(algebra.Tuple, len(xs))
		copy(list, xs)
		out[0] = list
		for i := 1; i < len(out); i++ {
			out[i] = algebra.Undef{}
		}
		return out
	case Scatter:
		list, ok := xs[0].(algebra.Tuple)
		if !ok || len(list) != len(xs) {
			panic(fmt.Sprintf("term: scatter needs a %d-component list on the first processor, got %v", len(xs), xs[0]))
		}
		out := make([]algebra.Value, len(xs))
		copy(out, list)
		return out
	case Comcast:
		out := make([]algebra.Value, len(xs))
		for i := range out {
			out[i] = algebra.First(s.Ops.Repeat(i, s.Ops.Prepare(xs[0])))
		}
		return out
	case Halo:
		return evalHalo(s.H, xs)
	case AllGatherV:
		return evalAllGatherV(s.Counts, xs)
	case ReduceScatterV:
		return evalReduceScatterV(s.Op, s.Counts, xs)
	case Iter:
		out := make([]algebra.Value, len(xs))
		w := s.Op.Prepare(xs[0])
		for k := 1; k < len(xs); k <<= 1 {
			w = s.Op.F(w)
		}
		out[0] = algebra.First(w)
		for i := 1; i < len(xs); i++ {
			out[i] = algebra.Undef{}
		}
		return out
	}
	panic(fmt.Sprintf("term: Eval of unknown term %T", t))
}

// evalReduceBalanced folds xs over the balanced binary tree of §3.2:
// leaves all at depth ceil(log2 n), right subtrees complete. This is the
// bracketing under which the non-associative op_sr is correct.
func evalReduceBalanced(op *algebra.Op, xs []algebra.Value) algebra.Value {
	n := len(xs)
	h := 0
	for 1<<h < n {
		h++
	}
	var node func(lo, hi, h int) algebra.Value
	node = func(lo, hi, h int) algebra.Value {
		if h == 0 {
			return xs[lo]
		}
		half := 1 << (h - 1)
		if hi-lo <= half {
			return op.ApplyUnary(node(lo, hi, h-1))
		}
		mid := hi - half
		return op.Apply(node(lo, mid, h-1), node(mid, hi, h-1))
	}
	return node(0, n, h)
}

// evalScanBalanced runs the butterfly of §3.3 on the list: ceil(log2 n)
// phases, in phase k index i pairs with i xor 2^k; indices without a
// partner apply the Solo case (keep the first component, poison the
// rest).
func evalScanBalanced(op *algebra.BalancedScanOp, xs []algebra.Value) []algebra.Value {
	n := len(xs)
	cur := make([]algebra.Value, n)
	copy(cur, xs)
	for k := 0; 1<<k < n; k++ {
		next := make([]algebra.Value, n)
		for i := 0; i < n; i++ {
			partner := i ^ (1 << k)
			switch {
			case partner >= n:
				next[i] = op.Solo(cur[i])
			case partner > i:
				next[i] = op.Lo(cur[i], op.Ship(cur[partner]))
			default:
				next[i] = op.Hi(cur[i], op.Ship(cur[partner]))
			}
		}
		cur = next
	}
	return cur
}
