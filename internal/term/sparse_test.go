package term

import (
	"testing"

	"repro/internal/algebra"
)

func TestHoodSourcesWrap(t *testing.T) {
	h := &Hood{Offsets: []int{-1, 1, 0, 5, -7}}
	got := h.Sources(0, 4)
	want := []int{3, 1, 0, 1, 1} // -1→3, 1→1, 0→0, 5≡1, -7≡1 (mod 4)
	if !equalInts(got, want) {
		t.Fatalf("Sources(0,4) = %v, want %v", got, want)
	}
	if h.Degree(0) != 5 {
		t.Fatalf("Degree = %d, want 5", h.Degree(0))
	}
}

func TestHoodListsPinMachineSize(t *testing.T) {
	h := &Hood{Lists: [][]int{{1}, {0}}}
	if h.Isomorphic() {
		t.Fatal("Lists form reported isomorphic")
	}
	if got := h.Sources(1, 2); !equalInts(got, []int{0}) {
		t.Fatalf("Sources(1,2) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Lists hood evaluated at the wrong p did not panic")
		}
	}()
	h.Sources(0, 3)
}

func TestEvalHaloNeighborOrder(t *testing.T) {
	xs := []algebra.Value{algebra.Scalar(10), algebra.Scalar(20), algebra.Scalar(30)}
	out := Eval(Halo{H: &Hood{Offsets: []int{1, -1}}}, xs)
	want := algebra.Tuple{algebra.Scalar(20), algebra.Scalar(30)} // rank 0: +1 first, then -1
	if !algebra.Equal(out[0], want) {
		t.Fatalf("halo out[0] = %v, want %v", out[0], want)
	}
}

func TestEvalAllGatherVSharesFlatResult(t *testing.T) {
	counts := []int{2, 0, 1}
	xs := []algebra.Value{algebra.Vec{1, 2}, algebra.Vec{}, algebra.Vec{3}}
	out := Eval(AllGatherV{Counts: counts}, xs)
	want := algebra.Vec{1, 2, 3}
	for i := range out {
		if !algebra.Equal(out[i], want) {
			t.Fatalf("allgatherv out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestEvalAllGatherVStrictShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("allgatherv with a wrong-size block did not panic")
		}
	}()
	Eval(AllGatherV{Counts: []int{1, 1}}, []algebra.Value{algebra.Vec{1, 2}, algebra.Vec{3}})
}

func TestEvalReduceScatterVSegments(t *testing.T) {
	counts := []int{1, 0, 2}
	xs := []algebra.Value{
		algebra.Vec{1, 2, 3},
		algebra.Vec{10, 20, 30},
		algebra.Vec{100, 200, 300},
	}
	out := Eval(ReduceScatterV{Op: algebra.Add, Counts: counts}, xs)
	if !algebra.Equal(out[0], algebra.Vec{111}) {
		t.Fatalf("rsv out[0] = %v", out[0])
	}
	if !algebra.Equal(out[1], algebra.Vec{}) {
		t.Fatalf("rsv out[1] = %v", out[1])
	}
	if !algebra.Equal(out[2], algebra.Vec{222, 333}) {
		t.Fatalf("rsv out[2] = %v", out[2])
	}
}

func TestEvalReduceScatterVNonVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reduce_scatterv over scalars did not panic")
		}
	}()
	Eval(ReduceScatterV{Op: algebra.Add, Counts: []int{1, 1}},
		[]algebra.Value{algebra.Scalar(1), algebra.Scalar(2)})
}

func TestCountsStageAndDispls(t *testing.T) {
	if c, ok := CountsStage(AllGatherV{Counts: []int{1, 2}}); !ok || !equalInts(c, []int{1, 2}) {
		t.Fatalf("CountsStage(allgatherv) = %v, %v", c, ok)
	}
	if c, ok := CountsStage(ReduceScatterV{Op: algebra.Add, Counts: []int{3}}); !ok || !equalInts(c, []int{3}) {
		t.Fatalf("CountsStage(rsv) = %v, %v", c, ok)
	}
	if _, ok := CountsStage(Bcast{}); ok {
		t.Fatal("CountsStage(bcast) reported counts")
	}
	if d := Displs([]int{2, 0, 3}); !equalInts(d, []int{0, 2, 2}) {
		t.Fatalf("Displs = %v", d)
	}
	if SumCounts([]int{2, 0, 3}) != 5 {
		t.Fatal("SumCounts wrong")
	}
}

func TestSparseStageEquality(t *testing.T) {
	a := Halo{H: &Hood{Offsets: []int{-1, 1}}}
	b := Halo{H: &Hood{Offsets: []int{-1, 1}}}
	c := Halo{H: &Hood{Offsets: []int{1, -1}}}
	if !EqualTerms(Seq{a}, Seq{b}) || EqualTerms(Seq{a}, Seq{c}) {
		t.Fatal("halo equality wrong")
	}
	g1 := AllGatherV{Counts: []int{1, 2}}
	g2 := AllGatherV{Counts: []int{1, 2}}
	g3 := AllGatherV{Counts: []int{2, 1}}
	if !EqualTerms(Seq{g1}, Seq{g2}) || EqualTerms(Seq{g1}, Seq{g3}) {
		t.Fatal("allgatherv equality wrong")
	}
	r1 := ReduceScatterV{Op: algebra.Add, Counts: []int{1, 2}}
	r2 := ReduceScatterV{Op: algebra.Mul, Counts: []int{1, 2}}
	if EqualTerms(Seq{r1}, Seq{r2}) {
		t.Fatal("reduce_scatterv op equality wrong")
	}
}
