// Package term implements the formal framework of §2.2 of the paper:
// parallel programs as compositions of functions on lists, where element i
// of the list is the block held by processor i. A Term is the abstract
// syntax of such a program; Eval gives its functional semantics
// (equations (4)–(8)), independent of any machine, which is what the
// optimization rules are proved against.
package term

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
)

// Fn is a named unary function on per-processor values, the f of a local
// stage map f. Cost is its per-element operation count, used by the cost
// calculus and the machine executor.
type Fn struct {
	// Name identifies the function in printed terms.
	Name string
	// Cost is elementary operations per block element.
	Cost int
	// F is the function itself.
	F func(algebra.Value) algebra.Value
}

func (f *Fn) String() string { return f.Name }

// Predefined local functions: the auxiliary-variable constructions of
// §2.3. Duplication and projection touch no element values, so their cost
// is zero, matching the paper's "they contribute just a small additive
// constant ... which we ignore" (§4.2).
var (
	// PairFn duplicates into a pair.
	PairFn = &Fn{Name: "pair", F: algebra.Pair}
	// TripleFn duplicates into a triple.
	TripleFn = &Fn{Name: "triple", F: algebra.Triple}
	// QuadrupleFn duplicates into a quadruple.
	QuadrupleFn = &Fn{Name: "quadruple", F: algebra.Quadruple}
	// FirstFn is the projection π₁.
	FirstFn = &Fn{Name: "pi_1", F: algebra.First}
)

// IdxFn is a named function on per-processor values that additionally
// receives the processor number — the argument of map# (equation (13)).
type IdxFn struct {
	// Name identifies the function in printed terms.
	Name string
	// F applies the function at processor index i.
	F func(i int, v algebra.Value) algebra.Value
	// Charge is the computation cost at index i on blocks of m words.
	Charge func(i, m int) float64
}

func (f *IdxFn) String() string { return f.Name }

// RepeatFn wraps the repeat schema of a Comcast rule as a map# function:
// op_comp k = prepare ; repeat(e,o) k ; π₁.
func RepeatFn(ops *algebra.RepeatOps) *IdxFn {
	return &IdxFn{
		Name: "op_comp[" + ops.Name + "]",
		F: func(i int, v algebra.Value) algebra.Value {
			return algebra.First(ops.Repeat(i, ops.Prepare(v)))
		},
		Charge: func(i, m int) float64 { return ops.RepeatCharge(i, m) },
	}
}

// Term is a program in the functional framework. The concrete types are
// Map, MapIdx, Scan, ScanBal, Reduce, Bcast, Comcast, Iter and Seq.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Map is a local stage: map f (equation (4)).
type Map struct {
	F *Fn
}

func (m Map) isTerm() {}
func (m Map) String() string {
	return "map " + m.F.Name
}

// MapIdx is an index-aware local stage: map# f (equation (13)).
type MapIdx struct {
	F *IdxFn
}

func (m MapIdx) isTerm() {}
func (m MapIdx) String() string {
	return "map# " + m.F.Name
}

// Scan is the collective scan(⊕) (equation (7)); the operator must be
// associative.
type Scan struct {
	Op *algebra.Op
}

func (s Scan) isTerm() {}
func (s Scan) String() string {
	return fmt.Sprintf("scan(%s)", s.Op.Name)
}

// ScanBal is the balanced scan of §3.3, parameterized by a
// BalancedScanOp; it appears only on the right-hand side of rule SS-Scan.
type ScanBal struct {
	Op *algebra.BalancedScanOp
}

func (s ScanBal) isTerm() {}
func (s ScanBal) String() string {
	return fmt.Sprintf("scan_balanced(%s)", s.Op.Name)
}

// Reduce covers the four reduction collectives: reduce/allreduce
// (equations (5), (6)) and their balanced variants of §3.2 (which appear
// on the right-hand side of rule SR-Reduction and tolerate non-associative
// operators).
type Reduce struct {
	Op *algebra.Op
	// All delivers the result to every processor (allreduce).
	All bool
	// Balanced uses the balanced binary tree / butterfly of §3.2.
	Balanced bool
}

func (r Reduce) isTerm() {}
func (r Reduce) String() string {
	name := "reduce"
	if r.All {
		name = "allreduce"
	}
	if r.Balanced {
		name += "_balanced"
	}
	return fmt.Sprintf("%s(%s)", name, r.Op.Name)
}

// Bcast is the broadcast collective (equation (8)); the root is the first
// processor, per §2.2.
type Bcast struct{}

func (b Bcast) isTerm() {}
func (b Bcast) String() string {
	return "bcast"
}

// Comcast is the compute-after-broadcast pattern of §3.4 as a single
// collective: processor i receives g^i(b). It records the repeat ops so
// both implementations (cost-optimal doubling and bcast+repeat) can
// realize it; CostOptimal selects the doubling scheme.
type Comcast struct {
	Ops *algebra.RepeatOps
	// CostOptimal selects the successive-doubling implementation the
	// paper calls cost-optimal (and measures to be slower).
	CostOptimal bool
}

func (c Comcast) isTerm() {}
func (c Comcast) String() string {
	if c.CostOptimal {
		return fmt.Sprintf("comcast(%s)", c.Ops.Name)
	}
	return fmt.Sprintf("bcast; map# repeat(%s)", c.Ops.Name)
}

// Gather collects the per-processor values into a single list value on
// the first processor: [x₁, …, xn] → [⟨x₁…xn⟩, _, …, _]. The list is an
// algebra.Tuple, so a subsequent Scatter can redistribute it.
type Gather struct{}

func (g Gather) isTerm() {}
func (g Gather) String() string {
	return "gather"
}

// Scatter distributes the first processor's list value, one component per
// processor: [⟨x₁…xn⟩, _, …, _] → [x₁, …, xn]. The inverse of Gather.
type Scatter struct{}

func (s Scatter) isTerm() {}
func (s Scatter) String() string {
	return "scatter"
}

// Iter is the local iteration schema of the Local rules (§3.5):
// iter f [x, _, …, _] = [f^(log p) x, _, …, _].
type Iter struct {
	Op *algebra.IterOp
}

func (i Iter) isTerm() {}
func (i Iter) String() string {
	return fmt.Sprintf("iter(%s)", i.Op.Name)
}

// Seq is forward composition: (f ; g) x = g (f x) (equation (3)).
type Seq []Term

func (s Seq) isTerm() {}
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ; ")
}

// Compose flattens terms into a single Seq, splicing nested Seqs.
func Compose(ts ...Term) Seq {
	var out Seq
	for _, t := range ts {
		if s, ok := t.(Seq); ok {
			out = append(out, Compose(s...)...)
		} else {
			out = append(out, t)
		}
	}
	return out
}

// Stages returns the flattened stage list of a term.
func Stages(t Term) []Term {
	if s, ok := t.(Seq); ok {
		var out []Term
		for _, sub := range s {
			out = append(out, Stages(sub)...)
		}
		return out
	}
	return []Term{t}
}

// EqualTerms reports structural equality of two terms, comparing stages
// and operator identity.
func EqualTerms(a, b Term) bool {
	as, bs := Stages(a), Stages(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if !equalStage(as[i], bs[i]) {
			return false
		}
	}
	return true
}

func equalStage(a, b Term) bool {
	switch x := a.(type) {
	case Map:
		y, ok := b.(Map)
		return ok && x.F == y.F
	case MapIdx:
		y, ok := b.(MapIdx)
		return ok && x.F == y.F
	case Scan:
		y, ok := b.(Scan)
		return ok && x.Op == y.Op
	case ScanBal:
		y, ok := b.(ScanBal)
		return ok && x.Op == y.Op
	case Reduce:
		y, ok := b.(Reduce)
		return ok && x.Op == y.Op && x.All == y.All && x.Balanced == y.Balanced
	case Bcast:
		_, ok := b.(Bcast)
		return ok
	case Gather:
		_, ok := b.(Gather)
		return ok
	case Scatter:
		_, ok := b.(Scatter)
		return ok
	case Comcast:
		y, ok := b.(Comcast)
		return ok && x.Ops == y.Ops && x.CostOptimal == y.CostOptimal
	case Iter:
		y, ok := b.(Iter)
		return ok && x.Op == y.Op
	case Halo:
		y, ok := b.(Halo)
		return ok && EqualHoods(x.H, y.H)
	case AllGatherV:
		y, ok := b.(AllGatherV)
		return ok && equalInts(x.Counts, y.Counts)
	case ReduceScatterV:
		y, ok := b.(ReduceScatterV)
		return ok && x.Op == y.Op && equalInts(x.Counts, y.Counts)
	}
	return false
}
