package docscan

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestUsageFlags(t *testing.T) {
	usage := `Usage of collx:
  -p int
    	number of ranks (default 8)
  -profile string
    	fault profile name, or "all" (default "all")
  -v	report every run, not just failures
`
	got := UsageFlags(usage)
	want := map[string]bool{"p": true, "profile": true, "v": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UsageFlags = %v, want %v", got, want)
	}
}

func TestFlagsIgnoresHyphenatedWords(t *testing.T) {
	text := "the fault-injection sweep: collx -trials 50 -prog \"scan(+)\" " +
		"runs BASE..BASE+COUNT-1 seeds; override with -ts/-tw on a " +
		"start-up-dominated network"
	got := Flags(text)
	want := map[string]bool{"trials": true, "prog": true, "ts": true, "tw": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Flags = %v, want %v", got, want)
	}
}

func TestDocFlagsOnlyReadsLinesMentioningCommand(t *testing.T) {
	doc := "run collx -trials 50 for the sweep\n" +
		"and colly -other 3 for something else\n" +
		"plain prose with -stray flags\n"
	got := DocFlags(doc, "collx")
	want := map[string]bool{"trials": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DocFlags = %v, want %v", got, want)
	}
}

func TestDocFlagsInDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.md", "run collx -trials 50\n")
	write("b.md", "collx -seeds 2 here\nand colly -other 3\n")
	write("c.md", "no command mentioned, -stray flag\n")
	write("d.txt", "collx -notmarkdown 1\n")
	got, err := DocFlagsInDir(dir, "collx")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]bool{
		"a.md": {"trials": true},
		"b.md": {"seeds": true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DocFlagsInDir = %v, want %v", got, want)
	}
}

func TestCodeSpans(t *testing.T) {
	doc := "Prose with `inline one` and `inline two` spans.\n" +
		"```\nfenced line a\n\nfenced line b\n```\n" +
		"back to prose, `after fence`\n" +
		"    indented example\n" +
		"plain line\n"
	got := CodeSpans(doc)
	want := []string{
		"inline one", "inline two",
		"fenced line a", "fenced line b",
		"after fence", "indented example",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CodeSpans = %q, want %q", got, want)
	}
}

func TestCodeSpansInDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.md", "see `halo(-1,1)` there\n")
	write("b.md", "no code at all\n")
	got, err := CodeSpansInDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{"a.md": {"halo(-1,1)"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CodeSpansInDir = %v, want %v", got, want)
	}
}

func TestDocComment(t *testing.T) {
	src := "// Command collx does things.\n//\n//\t-p N  ranks\n\npackage main\n\nvar x = 1 // not doc\n"
	got := DocComment(src)
	if got != " Command collx does things.\n\n\t-p N  ranks\n" {
		t.Errorf("DocComment = %q", got)
	}
}

func TestMissing(t *testing.T) {
	want := map[string]bool{"b": true, "a": true, "c": true}
	have := map[string]bool{"b": true}
	if got := Missing(want, have); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("Missing = %v", got)
	}
	if got := Missing(have, want); got != nil {
		t.Errorf("Missing subset = %v, want none", got)
	}
}
