// Package docscan keeps command documentation honest: it extracts the
// flag names a command actually defines (from its -h usage output) and
// the flag names its documentation mentions (from doc comments and the
// docs/ pages), so a test can fail the moment the two drift apart —
// a flag added without documentation, or a doc example using a flag
// that no longer exists.
package docscan

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// usageRE matches flag.PrintDefaults output: two spaces, a dash, the
// flag name.
var usageRE = regexp.MustCompile(`(?m)^\s+-([a-zA-Z][a-zA-Z0-9-]*)`)

// UsageFlags parses the output of a flag set's PrintDefaults (what -h
// prints) into the set of defined flag names.
func UsageFlags(usage string) map[string]bool {
	flags := make(map[string]bool)
	for _, m := range usageRE.FindAllStringSubmatch(usage, -1) {
		flags[m[1]] = true
	}
	return flags
}

// tokenRE matches a -flag token in prose or a shell example: the dash
// must open the token (start of line, whitespace, quote/backtick/paren,
// or a slash as in "-ts/-tw") so hyphenated words like
// "fault-injection" and arithmetic like "COUNT-1" don't count.
var tokenRE = regexp.MustCompile("(?:^|[\\s\"'`(\\[/])-([a-zA-Z][a-zA-Z0-9-]*)")

// Flags extracts every -flag token from text.
func Flags(text string) map[string]bool {
	flags := make(map[string]bool)
	for _, m := range tokenRE.FindAllStringSubmatch(text, -1) {
		flags[m[1]] = true
	}
	return flags
}

// DocFlags extracts the -flag tokens from the lines of doc that mention
// cmd — the flags the documentation claims cmd has. Restricting to
// those lines keeps a page that documents several commands (like
// docs/TESTING.md) from attributing one command's flags to another.
func DocFlags(doc, cmd string) map[string]bool {
	flags := make(map[string]bool)
	for _, line := range strings.Split(doc, "\n") {
		if !strings.Contains(line, cmd) {
			continue
		}
		for f := range Flags(line) {
			flags[f] = true
		}
	}
	return flags
}

// DocFlagsInDir runs DocFlags over every .md page in dir and returns
// the per-page results keyed by file name, omitting pages that
// attribute no flags to cmd. One command's flags are documented across
// several pages (collbench in TESTING.md, RULES.md, ALGORITHMS.md and
// TUTORIAL.md, say); scanning the whole directory lets a drift test
// catch a stale example on any of them, and the per-page keying names
// the offending file in the failure message.
func DocFlagsInDir(dir, cmd string) (map[string]map[string]bool, error) {
	pages, err := filepath.Glob(filepath.Join(dir, "*.md"))
	if err != nil {
		return nil, err
	}
	byPage := make(map[string]map[string]bool)
	for _, page := range pages {
		doc, err := ReadFile(page)
		if err != nil {
			return nil, err
		}
		if flags := DocFlags(doc, cmd); len(flags) > 0 {
			byPage[filepath.Base(page)] = flags
		}
	}
	return byPage, nil
}

// inlineCodeRE matches a markdown inline code span on one line.
var inlineCodeRE = regexp.MustCompile("`([^`\n]+)`")

// CodeSpans extracts the code fragments of a markdown page: inline
// `span` contents plus each line of ``` fenced blocks and of
// four-space-indented blocks. Syntax drift tests run the returned
// fragments through the real parser, so a doc example using syntax
// that no longer parses fails the suite the same way a stale flag
// does.
func CodeSpans(text string) []string {
	var spans []string
	fenced := false
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			fenced = !fenced
			continue
		}
		if fenced || strings.HasPrefix(line, "    ") {
			if trimmed != "" {
				spans = append(spans, trimmed)
			}
			continue
		}
		for _, m := range inlineCodeRE.FindAllStringSubmatch(line, -1) {
			spans = append(spans, m[1])
		}
	}
	return spans
}

// CodeSpansInDir runs CodeSpans over every .md page in dir, keyed by
// file name, omitting pages without code.
func CodeSpansInDir(dir string) (map[string][]string, error) {
	pages, err := filepath.Glob(filepath.Join(dir, "*.md"))
	if err != nil {
		return nil, err
	}
	byPage := make(map[string][]string)
	for _, page := range pages {
		doc, err := ReadFile(page)
		if err != nil {
			return nil, err
		}
		if spans := CodeSpans(doc); len(spans) > 0 {
			byPage[filepath.Base(page)] = spans
		}
	}
	return byPage, nil
}

// DocComment returns a Go file's package doc comment: the leading //
// lines before the package clause, with the markers stripped.
func DocComment(src string) string {
	var b strings.Builder
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if rest, ok := strings.CutPrefix(trimmed, "//"); ok {
			b.WriteString(rest)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ReadFile is os.ReadFile returning a string; the drift tests read
// their own main.go and the docs/ pages through it.
func ReadFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

// Missing reports the elements of want absent from have, sorted for
// stable failure messages.
func Missing(want, have map[string]bool) []string {
	var missing []string
	for f := range want {
		if !have[f] {
			missing = append(missing, f)
		}
	}
	sortStrings(missing)
	return missing
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
