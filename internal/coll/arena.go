package coll

import "repro/internal/algebra"

// ArenaHolder is optionally implemented by communicators whose backend
// provides a per-rank scratch arena (the native backend does; see
// backend.Proc.ScratchArena). The collectives draw each combining round's
// destination buffer from it, so in steady state the log-p rounds
// allocate nothing. Communicators without one run the same code with a
// nil arena, which simply allocates fresh buffers — the representation
// decisions (flatten or not, kernel or reference) never depend on the
// arena, so both backends compute bitwise-identical values.
type ArenaHolder interface {
	// ScratchArena returns the caller's per-rank arena. The backend owns
	// the Reset discipline: it must only reclaim buffers at a point where
	// no peer can still read them (run start, after the previous run's
	// completion barrier).
	ScratchArena() *algebra.Arena
}

// arenaOf extracts the communicator's arena, or nil.
func arenaOf(c Comm) *algebra.Arena {
	if h, ok := c.(ArenaHolder); ok {
		return h.ScratchArena()
	}
	return nil
}

// toWork converts a collective's input into the working representation
// for operator op: a Tuple of equal-length Vec components flattens into
// one arena-backed buffer (a copy — the caller's input stays read-only)
// the flat kernels combine without boxing. The returned flag reports
// whether the value is scratch this rank owns, i.e. whether an in-place
// combine may target it. Values the kernels cannot handle pass through
// unchanged, keeping the reference semantics.
func toWork(ar *algebra.Arena, op *algebra.Op, x Value) (Value, bool) {
	if op.FlatFn == nil {
		return x, false
	}
	t, ok := x.(algebra.Tuple)
	if !ok || len(t) != op.Arity {
		return x, false
	}
	w, m, ok := algebra.CanFlatten(t)
	if !ok {
		return x, false
	}
	return ar.Flat(w, m).FlattenInto(t), true
}

// fromWork converts a working value back to the caller-facing boxed form
// at the collective's return boundary. The boxed components are views
// into the working buffer, not copies; they stay valid until the backing
// machine's next run (see the ownership rules in docs/PERF.md).
func fromWork(v Value) Value { return algebra.Boxed(v) }

// scratchLike returns an arena destination shaped like proto, or nil for
// shapes the kernels do not handle (ApplyInto then falls back to the
// allocating reference path, exactly as before this optimization).
func scratchLike(ar *algebra.Arena, proto Value) Value {
	switch v := proto.(type) {
	case algebra.Vec:
		return ar.Vec(len(v))
	case *algebra.FlatTuple:
		return ar.Flat(v.W, v.M())
	}
	return nil
}

// dstFor picks the destination for combining into cur: cur itself when it
// is scratch this rank owns (and has not been shipped), a fresh arena
// buffer shaped like proto otherwise.
func dstFor(ar *algebra.Arena, cur Value, owned bool, proto Value) Value {
	if owned {
		return cur
	}
	return scratchLike(ar, proto)
}
