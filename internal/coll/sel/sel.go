// Package sel is the algorithm-selection layer: it picks, for every
// eligible reduction stage of a program, the cheapest collective algorithm
// from the calibrated portfolio (cost/algo.go) at that stage's (p, m) —
// turning the rule engine's target shape from "the butterfly form" into
// "the best-known form on this machine". Selections are pure data: the
// executor (core.RunStagesSelected) dispatches on them, the serving layer
// records them in plans and cache keys, and collbench sweeps them against
// measurements.
//
// Only unbalanced reductions over elementwise base operators are eligible
// (cost.SelectableReduce): every portfolio alternative splits or segments
// the block, which is unsound for the derived tuple operators the rules
// introduce. The butterfly is always in the candidate set, so a selection
// is never predicted worse than the butterfly baseline.
package sel

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/term"
)

// Selection records the algorithm chosen for one eligible reduction
// stage of a program.
type Selection struct {
	// Stage is the stage's index in the flattened stage list (the order
	// the executor runs them in).
	Stage int `json:"stage"`
	// Collective is the collective kind, cost.CollReduce or
	// cost.CollAllReduce.
	Collective string `json:"collective"`
	// Algo is the chosen algorithm.
	Algo cost.Algo `json:"algo"`
	// Segments is the pipeline's Lowery–Langou segment count; 0 for the
	// other algorithms.
	Segments int `json:"segments,omitempty"`
	// M is the per-processor block size (words) the stage is predicted to
	// see, tracked through gather/scatter reshaping.
	M int `json:"m"`
	// Predicted and Butterfly are the model costs of the chosen algorithm
	// and of the butterfly baseline at (p, M); Predicted ≤ Butterfly.
	Predicted float64 `json:"predicted"`
	Butterfly float64 `json:"butterfly"`
}

func (s Selection) String() string {
	out := fmt.Sprintf("stage %d %s m=%d: %s", s.Stage, s.Collective, s.M, s.Algo)
	if s.Segments > 0 {
		out += fmt.Sprintf(" k=%d", s.Segments)
	}
	if s.Algo != cost.AlgoButterfly {
		out += fmt.Sprintf(" (predicted %.0f vs butterfly %.0f)", s.Predicted, s.Butterfly)
	}
	return out
}

// Choose picks the cheapest applicable algorithm for one collective at
// parameters p, assuming an elementwise operator. The butterfly is always
// a candidate, so Predicted ≤ Butterfly.
func Choose(collective string, p cost.Params) Selection {
	a, c := cost.BestAlgo(collective, p, true)
	bf, _ := cost.AlgoCost(collective, cost.AlgoButterfly, p)
	s := Selection{Collective: collective, Algo: a, M: p.M, Predicted: c, Butterfly: bf}
	if a == cost.AlgoPipeline {
		s.Segments = cost.PipelineSegments(p)
	}
	return s
}

// ForTerm walks the flattened stages of t, tracking the per-processor
// block size the way cost.OfTerm does (gather/scatter reshape it), and
// returns a Selection for every eligible reduction stage — including
// stages where the butterfly itself wins, so callers can see the whole
// decision. A nil result means no stage was eligible.
func ForTerm(t term.Term, p cost.Params) []Selection {
	var out []Selection
	idx := 0
	walk(t, p, float64(p.M), &idx, &out)
	return out
}

func walk(t term.Term, p cost.Params, b float64, idx *int, out *[]Selection) float64 {
	for _, stage := range term.Stages(t) {
		if s, ok := stage.(term.Seq); ok {
			b = walk(s, p, b, idx, out)
			continue
		}
		if r, ok := stage.(term.Reduce); ok && cost.SelectableReduce(r) {
			collective := cost.CollReduce
			if r.All {
				collective = cost.CollAllReduce
			}
			pp := p
			pp.M = int(math.Round(b))
			s := Choose(collective, pp)
			s.Stage = *idx
			*out = append(*out, s)
		}
		_, b = cost.StageCost(stage, p, b)
		*idx++
	}
	return b
}

// Total sums the predicted costs of the selections — the portfolio's
// contribution to an auto-scored estimate.
func Total(sels []Selection) (predicted, butterfly float64) {
	for _, s := range sels {
		predicted += s.Predicted
		butterfly += s.Butterfly
	}
	return predicted, butterfly
}
