package sel

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/term"
)

// calibrated is a representative native-machine fit (the shape a
// collbench -calibrate run produces): the boundary tests below pin the
// selector on either side of the crossovers this fixed fit predicts,
// independent of whatever the current host would calibrate to.
var calibrated = cost.Params{Ts: 203.6, Tw: 0.007}

// TestChooseCalibratedBoundaries pins the chosen algorithm on either
// side of each calibrated crossover: just below the first break-even the
// butterfly must win, just above an algorithm's own break-even that
// algorithm must beat the butterfly, and the expected winner at
// representative block sizes is fixed.
func TestChooseCalibratedBoundaries(t *testing.T) {
	cases := []struct {
		collective string
		p, m       int
		want       cost.Algo
	}{
		// p=8 (power of two): rabenseifner breaks even at m=287.
		{cost.CollAllReduce, 8, 286, cost.AlgoButterfly},
		{cost.CollAllReduce, 8, 287, cost.AlgoRabenseifner},
		{cost.CollAllReduce, 8, 4096, cost.AlgoRabenseifner},
		// p=7 (fold surcharge): ring-bi overtakes first, at m=850.
		{cost.CollAllReduce, 7, 849, cost.AlgoButterfly},
		{cost.CollAllReduce, 7, 850, cost.AlgoRingBi},
		{cost.CollAllReduce, 7, 65536, cost.AlgoRingBi},
		// Rooted reduce at p=8: pipeline breaks even at m=1770.
		{cost.CollReduce, 8, 1769, cost.AlgoButterfly},
		{cost.CollReduce, 8, 1770, cost.AlgoPipeline},
		{cost.CollReduce, 8, 65536, cost.AlgoPipeline},
	}
	for _, c := range cases {
		p := calibrated
		p.P, p.M = c.p, c.m
		got := Choose(c.collective, p)
		if got.Algo != c.want {
			t.Errorf("Choose(%s, p=%d, m=%d) = %s, want %s", c.collective, c.p, c.m, got.Algo, c.want)
		}
		if got.Predicted > got.Butterfly {
			t.Errorf("Choose(%s, p=%d, m=%d): predicted %.0f exceeds butterfly %.0f",
				c.collective, c.p, c.m, got.Predicted, got.Butterfly)
		}
		if got.Algo == cost.AlgoPipeline && got.Segments < 1 {
			t.Errorf("pipeline selection without a segment count: %+v", got)
		}
	}
}

// TestBreakEvenMatchesLinearScan validates the bisection against an
// exhaustive scan at the calibrated parameters.
func TestBreakEvenMatchesLinearScan(t *testing.T) {
	for _, p := range []int{4, 7, 8, 16} {
		base := calibrated
		base.P = p
		for _, collective := range []string{cost.CollAllReduce, cost.CollReduce} {
			for _, a := range cost.Algos(collective)[1:] {
				got := cost.BreakEven(collective, a, base, 1<<13)
				want := 0
				for m := 1; m <= 1<<13; m++ {
					pp := base
					pp.M = m
					c, ok := cost.AlgoCost(collective, a, pp)
					if !ok {
						continue
					}
					if bf, _ := cost.AlgoCost(collective, cost.AlgoButterfly, pp); c < bf {
						want = m
						break
					}
				}
				if got != want {
					t.Errorf("BreakEven(%s, %s, p=%d) = %d, linear scan found %d", collective, a, p, got, want)
				}
			}
		}
	}
}

// TestChooseNeverWorseThanButterfly is the selection-soundness property
// at the sel layer: across random parameters the selection's predicted
// cost never exceeds the butterfly's.
func TestChooseNeverWorseThanButterfly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		p := cost.Params{
			Ts: math.Exp(rng.Float64() * 10),
			Tw: math.Exp(rng.Float64()*6 - 3),
			P:  1 + rng.Intn(64),
			M:  1 + rng.Intn(1<<15),
		}
		for _, collective := range []string{cost.CollAllReduce, cost.CollReduce} {
			s := Choose(collective, p)
			if s.Predicted > s.Butterfly {
				t.Fatalf("%s %+v: %s predicted %.1f > butterfly %.1f", collective, p, s.Algo, s.Predicted, s.Butterfly)
			}
			if !cost.Applicable(collective, s.Algo, p) {
				t.Fatalf("%s %+v: chose inapplicable %s", collective, p, s.Algo)
			}
		}
	}
}

// TestForTermStageIndices: selections address eligible stages by their
// flattened index, skipping balanced and derived-operator reductions.
func TestForTermStageIndices(t *testing.T) {
	prog := term.Seq{
		term.Scan{Op: algebra.Add},                                 // 0
		term.Reduce{Op: algebra.Add, All: true},                    // 1: eligible
		term.Bcast{},                                               // 2
		term.Seq{term.Reduce{Op: algebra.Add}},                     // 3: eligible (nested)
		term.Reduce{Op: algebra.OpSR(algebra.Add), Balanced: true}, // 4: balanced, skipped
	}
	p := calibrated
	p.P, p.M = 8, 4096
	sels := ForTerm(prog, p)
	if len(sels) != 2 {
		t.Fatalf("ForTerm returned %d selections, want 2: %v", len(sels), sels)
	}
	if sels[0].Stage != 1 || sels[0].Collective != cost.CollAllReduce {
		t.Errorf("first selection %+v, want stage 1 allreduce", sels[0])
	}
	if sels[1].Stage != 3 || sels[1].Collective != cost.CollReduce {
		t.Errorf("second selection %+v, want stage 3 reduce", sels[1])
	}
	// At these parameters both eligible stages leave the butterfly.
	if sels[0].Algo == cost.AlgoButterfly || sels[1].Algo == cost.AlgoButterfly {
		t.Errorf("expected non-butterfly selections at m=4096: %v", sels)
	}
}

// TestForTermTracksBlockSize: a scatter hands each rank a 1/p share, so
// the reduction after it is selected at the smaller block — small enough
// here to keep the butterfly that a global-m selection would leave.
func TestForTermTracksBlockSize(t *testing.T) {
	p := calibrated
	p.P, p.M = 8, 2048
	flat := term.Seq{term.Reduce{Op: algebra.Add, All: true}}
	if s := ForTerm(flat, p); s[0].Algo == cost.AlgoButterfly {
		t.Fatalf("m=2048 should select a non-butterfly algorithm, got %v", s)
	}
	scattered := term.Seq{
		term.Gather{},
		term.Scatter{},
		term.Reduce{Op: algebra.Add, All: true},
	}
	// gather: m -> p·m at the root; scatter: back to m... so use a
	// scatter-only program via block tracking from the global M.
	sels := ForTerm(scattered, p)
	if len(sels) != 1 {
		t.Fatalf("want 1 selection, got %v", sels)
	}
	if sels[0].M != 2048 {
		t.Errorf("gather;scatter is block-neutral: stage m=%d, want 2048", sels[0].M)
	}
	shrink := term.Seq{term.Scatter{}, term.Reduce{Op: algebra.Add, All: true}}
	sels = ForTerm(shrink, p)
	if sels[0].M != 2048/8 {
		t.Errorf("scatter shrinks the block: stage m=%d, want %d", sels[0].M, 2048/8)
	}
	if sels[0].Algo != cost.AlgoButterfly {
		t.Errorf("at m=%d the butterfly should win, got %s", sels[0].M, sels[0].Algo)
	}
}

func TestSelectionString(t *testing.T) {
	s := Selection{Stage: 2, Collective: cost.CollAllReduce, Algo: cost.AlgoRabenseifner, M: 4096, Predicted: 100, Butterfly: 200}
	out := s.String()
	for _, want := range []string{"stage 2", "allreduce", "m=4096", "rabenseifner", "butterfly 200"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q, missing %q", out, want)
		}
	}
	k := Selection{Stage: 0, Collective: cost.CollReduce, Algo: cost.AlgoPipeline, Segments: 12, M: 4096}
	if !strings.Contains(k.String(), "k=12") {
		t.Errorf("pipeline String() = %q, missing segment count", k.String())
	}
}

func TestTotal(t *testing.T) {
	pred, bf := Total([]Selection{{Predicted: 10, Butterfly: 30}, {Predicted: 5, Butterfly: 5}})
	if pred != 15 || bf != 35 {
		t.Fatalf("Total = %g, %g, want 15, 35", pred, bf)
	}
}
