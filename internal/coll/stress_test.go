package coll

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

// TestStressRandomCollectiveSequences runs randomized sequences of
// collectives — over the world and over a random even/odd split — and
// checks every result against a sequential model. It targets the tag
// machinery and the SPMD synchronization of the communicator layer: any
// mismatch in collective order between group members would deadlock or
// trip the tag assertion.
func TestStressRandomCollectiveSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(11)
		steps := 1 + rng.Intn(6)
		kinds := make([]int, steps)
		for i := range kinds {
			kinds[i] = rng.Intn(4)
		}
		start := make([]float64, n)
		for i := range start {
			start[i] = float64(rng.Intn(9) - 4)
		}

		// Sequential model of the same sequence.
		model := append([]float64(nil), start...)
		apply := func(vals []float64, kind int) {
			switch kind {
			case 0: // allreduce(+)
				sum := 0.0
				for _, v := range vals {
					sum += v
				}
				for i := range vals {
					vals[i] = sum
				}
			case 1: // scan(+)
				for i := 1; i < len(vals); i++ {
					vals[i] += vals[i-1]
				}
			case 2: // bcast
				for i := range vals {
					vals[i] = vals[0]
				}
			case 3: // allreduce(max)
				best := vals[0]
				for _, v := range vals {
					if v > best {
						best = v
					}
				}
				for i := range vals {
					vals[i] = best
				}
			}
		}
		// The parallel run splits even/odd every other step.
		useSplit := make([]bool, steps)
		for i := range useSplit {
			useSplit[i] = rng.Intn(2) == 0 && n >= 4
		}
		for s, kind := range kinds {
			if useSplit[s] {
				var even, odd []float64
				var evenIdx, oddIdx []int
				for i, v := range model {
					if i%2 == 0 {
						even = append(even, v)
						evenIdx = append(evenIdx, i)
					} else {
						odd = append(odd, v)
						oddIdx = append(oddIdx, i)
					}
				}
				apply(even, kind)
				apply(odd, kind)
				for j, i := range evenIdx {
					model[i] = even[j]
				}
				for j, i := range oddIdx {
					model[i] = odd[j]
				}
			} else {
				apply(model, kind)
			}
		}

		// Parallel execution.
		m := machine.New(n, machine.Params{Ts: 3, Tw: 1})
		got := make([]float64, n)
		m.Run(func(proc *machine.Proc) {
			w := World(proc)
			v := Value(algebra.Scalar(start[proc.Rank()]))
			for s, kind := range kinds {
				c := w
				if useSplit[s] {
					c = Split(w, proc.Rank()%2, proc.Rank())
				}
				switch kind {
				case 0:
					v = AllReduce(c, algebra.Add, v)
				case 1:
					v = Scan(c, algebra.Add, v)
				case 2:
					v = Bcast(c, 0, v)
				case 3:
					v = AllReduce(c, algebra.Max, v)
				}
			}
			got[proc.Rank()] = float64(v.(algebra.Scalar))
		})
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("trial %d (n=%d, kinds=%v, split=%v): proc %d = %g, model %g\n got %v\n model %v",
					trial, n, kinds, useSplit, i, got[i], model[i], got, model)
			}
		}
	}
}
