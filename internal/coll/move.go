package coll

import "repro/internal/algebra"

// Mover is optionally implemented by communicators whose transport can
// transfer value ownership instead of sharing a frozen reference. A
// moving send relinquishes the value — the sender must not observe it
// again (for a *algebra.FlatTuple the transport enforces this by
// poisoning it; see algebra.FlatTuple.MarkMoved) — and the matching
// RecvOwned makes the receiver the new owner, entitled to write the value
// in place. On a zero-copy transport this turns a large-m send into an
// O(1) reference hand-off; on a copying transport the receiver gets an
// owned deep copy, so programs keep one ownership discipline on both.
//
// The native backend implements it; the virtual machine and the chaos
// decorator do not (their sends stay borrows), which the helpers below
// absorb so collectives need no per-backend branches.
type Mover interface {
	// SendMove ships v to dst, transferring ownership to the receiver.
	// Only call with values this rank owns for writing (arena scratch it
	// has not shipped) — never with a caller's input.
	SendMove(dst int, v Value, tag int)
	// RecvOwned receives like Recv and reports whether the message
	// transferred ownership: true means the caller may write the value in
	// place, false means it is a borrowed frozen reference.
	RecvOwned(src, tag int) (Value, bool)
}

// sendOwned ships v to dst, moving ownership when the sender owns v and
// the communicator's transport supports moves, borrowing otherwise. The
// collectives call it at every hand-off of an accumulator that is shipped
// and never observed again (binomial-tree sends, fold sends); exchanges,
// whose senders read their own value after shipping, must not.
func sendOwned(c Comm, dst int, v Value, owned bool, tag int) {
	if owned {
		if mv, ok := c.(Mover); ok {
			mv.SendMove(dst, v, tag)
			return
		}
	}
	c.Send(dst, v, tag)
}

// recvOwned receives from src, reporting whether the message transferred
// ownership of its value. On communicators without a Mover transport it
// is exactly Recv with owned == false.
func recvOwned(c Comm, src, tag int) (Value, bool) {
	if mv, ok := c.(Mover); ok {
		v, owned := mv.RecvOwned(src, tag)
		if v == nil {
			panic("coll: received nil value")
		}
		return v, owned
	}
	return recvValue(c, src, tag), false
}

// dstForOwned extends dstFor with an adoptable right operand: combining
// targets cur when this rank owns it, else the received value when the
// transport moved its ownership here, else a fresh arena buffer shaped
// like the received value.
func dstForOwned(ar *algebra.Arena, cur Value, curOwned bool, recv Value, adopted bool) Value {
	if curOwned {
		return cur
	}
	if adopted {
		return recv
	}
	return scratchLike(ar, recv)
}

// SendMove forwards an ownership-transferring send to the parent when it
// supports one, falling back to a borrowing send. Subgroup collectives
// thereby keep the move fast path of the underlying transport.
func (s *sub) SendMove(dst int, v Value, tag int) {
	if mv, ok := s.parent.(Mover); ok {
		mv.SendMove(s.ranks[dst], v, tag)
		return
	}
	s.parent.Send(s.ranks[dst], v, tag)
}

// RecvOwned forwards an ownership-reporting receive to the parent,
// degrading to a borrowed Recv when the parent has no Mover transport.
func (s *sub) RecvOwned(src, tag int) (Value, bool) {
	if mv, ok := s.parent.(Mover); ok {
		return mv.RecvOwned(s.ranks[src], tag)
	}
	return s.parent.Recv(s.ranks[src], tag), false
}
