package coll

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
	"repro/internal/term"
)

// sparseSizes covers powers of two and awkward sizes alike.
var sparseSizes = []int{1, 2, 3, 4, 5, 7, 8, 11, 16}

func TestHaloExchangeConformsToEval(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	hoods := [][]int{
		{-1, 1},       // ring halo
		{1},           // shift
		{0},           // self only: no messages
		{-1, -1, 2},   // duplicates
		{3, -3},       // collides mod p for small p
		{0, 1, 0, -1}, // zeros interleaved
	}
	for _, n := range sparseSizes {
		for _, offs := range hoods {
			m := 1 + rng.Intn(3)
			blocks := randBlocks(rng, n, m)
			in := make([]algebra.Value, n)
			for i := range in {
				in[i] = blocks[i]
			}
			want := term.Eval(term.Halo{H: &term.Hood{Offsets: offs}}, in)
			out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
				return HaloExchange(pr, offs, blocks[pr.Rank()])
			})
			for r, v := range out {
				if !algebra.Equal(v, want[r]) {
					t.Fatalf("p=%d offsets=%v: halo proc %d = %v, want %v", n, offs, r, v, want[r])
				}
			}
		}
	}
}

func TestHaloExchangeListsConformsToEval(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		// Random per-rank source lists, including self-edges and repeats.
		lists := make([][]int, n)
		for i := range lists {
			k := rng.Intn(3) + 1
			lists[i] = make([]int, k)
			for j := range lists[i] {
				lists[i][j] = rng.Intn(n)
			}
		}
		blocks := randBlocks(rng, n, 2)
		in := make([]algebra.Value, n)
		for i := range in {
			in[i] = blocks[i]
		}
		want := term.Eval(term.Halo{H: &term.Hood{Lists: lists}}, in)
		out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return HaloExchangeLists(pr, lists, blocks[pr.Rank()])
		})
		for r, v := range out {
			if !algebra.Equal(v, want[r]) {
				t.Fatalf("p=%d lists=%v: proc %d = %v, want %v", n, lists, r, v, want[r])
			}
		}
	}
}

// testCounts enumerates the block-vector shapes the acceptance criteria
// name: ragged, with zero-length blocks, and maximally skewed (one rank
// owns everything).
func testCounts(rng *rand.Rand, n int) [][]int {
	ragged := make([]int, n)
	for i := range ragged {
		ragged[i] = 1 + rng.Intn(3)
	}
	zeros := make([]int, n)
	for i := range zeros {
		zeros[i] = rng.Intn(3) // zero-length blocks likely
	}
	skew := make([]int, n)
	skew[rng.Intn(n)] = 5
	allZero := make([]int, n)
	return [][]int{ragged, zeros, skew, allZero}
}

func TestAllGatherVConformsToEval(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for _, n := range sparseSizes {
		for _, counts := range testCounts(rng, n) {
			in := make([]algebra.Value, n)
			for i := range in {
				v := make(algebra.Vec, counts[i])
				for j := range v {
					v[j] = float64(rng.Intn(19) - 9)
				}
				in[i] = v
			}
			want := term.Eval(term.AllGatherV{Counts: counts}, in)
			out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
				return AllGatherV(pr, counts, in[pr.Rank()])
			})
			for r, v := range out {
				if !algebra.Equal(v, want[r]) {
					t.Fatalf("p=%d counts=%v: allgatherv proc %d = %v, want %v", n, counts, r, v, want[r])
				}
			}
		}
	}
}

func TestReduceScatterVConformsToEval(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, op := range []*algebra.Op{algebra.Add, algebra.Max, algebra.Left} {
		for _, n := range sparseSizes {
			for _, counts := range testCounts(rng, n) {
				total := term.SumCounts(counts)
				in := make([]algebra.Value, n)
				for i := range in {
					v := make(algebra.Vec, total)
					for j := range v {
						v[j] = float64(rng.Intn(19) - 9)
					}
					in[i] = v
				}
				want := term.Eval(term.ReduceScatterV{Op: op, Counts: counts}, in)
				out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
					return ReduceScatterV(pr, op, counts, in[pr.Rank()])
				})
				for r, v := range out {
					if !algebra.Equal(v, want[r]) {
						t.Fatalf("p=%d op=%s counts=%v: proc %d = %v, want %v", n, op.Name, counts, r, v, want[r])
					}
				}
			}
		}
	}
}

// TestReduceScatterVThenAllGatherVMatchesAllReduce pins the semantic
// core of the RSAG-AllReduce rewrite at the collective level: slicing
// the rank-ordered combine and regathering it is bitwise the allreduce.
func TestReduceScatterVThenAllGatherVMatchesAllReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		counts := testCounts(rng, n)[0]
		total := term.SumCounts(counts)
		in := make([]algebra.Vec, n)
		for i := range in {
			in[i] = make(algebra.Vec, total)
			for j := range in[i] {
				in[i][j] = float64(rng.Intn(19) - 9)
			}
		}
		fused, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return AllReduce(pr, algebra.Add, in[pr.Rank()].Clone())
		})
		pair, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			mid := ReduceScatterV(pr, algebra.Add, counts, in[pr.Rank()])
			return AllGatherV(pr, counts, mid)
		})
		for r := range pair {
			if !algebra.Equal(pair[r], fused[r]) {
				t.Fatalf("p=%d counts=%v proc %d: pair %v, allreduce %v", n, counts, r, pair[r], fused[r])
			}
		}
	}
}

func TestSparseCollectivesPanicOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("allgatherv accepted a wrong-length block")
		}
	}()
	runSPMD(2, machine.Params{}, func(pr Comm) Value {
		return AllGatherV(pr, []int{1, 1}, make(algebra.Vec, 3))
	})
}
