package coll

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/machine"
)

// Comm is the communication context a collective operation runs in — the
// MPI communicator of the paper's notation (§2.2 assumes one group and
// omits comm; this layer supplies the general case). A Comm names a group
// of processors, gives the caller its rank within the group, and carries
// its own tag sequence so that collectives on different groups never
// cross-talk.
type Comm interface {
	// Rank is the caller's rank within this group.
	Rank() int
	// Size is the number of group members.
	Size() int
	// Send ships v to group rank dst.
	Send(dst int, v Value, tag int)
	// Recv receives the next tagged message from group rank src.
	Recv(src, tag int) Value
	// Exchange performs the simultaneous bidirectional swap with the
	// group rank partner.
	Exchange(partner int, v Value, tag int) Value
	// Compute charges local computation time.
	Compute(n float64)
	// NextTag returns a fresh tag, synchronized across the group.
	NextTag() int
}

// Transport is optionally implemented by communicators that expose the
// raw link layer beneath the tag discipline: non-blocking sends and
// tag-oblivious receives. Decorators that perturb traffic (package chaos)
// multiplex their own wire protocol — envelopes carrying the application
// tag, acknowledgements, retransmissions — over these primitives, while
// the collectives above them keep the ordinary tagged Comm interface.
// Both backends implement it; a decorator should type-assert and refuse
// communicators that do not.
type Transport interface {
	// TrySend enqueues v for dst if the link has room and reports
	// whether it did; nothing is charged on failure.
	TrySend(dst int, v Value, tag int) bool
	// RecvAny blocks for the next message from src regardless of tag,
	// returning the value and the tag it was sent under.
	RecvAny(src int) (Value, int)
	// TryRecvAny dequeues an already-arrived message from src, if any.
	TryRecvAny(src int) (Value, int, bool)
}

// Marker is optionally implemented by communicators that can record
// stage-boundary annotations — the virtual machine puts them on the event
// trace, the native backend on its wall-clock timeline. Executors should
// type-assert for it rather than require it.
type Marker interface {
	// Mark records a stage annotation at the current time.
	Mark(label string)
}

// world adapts a machine processor to the full-machine communicator.
type world struct {
	p      *machine.Proc
	tagseq int
}

// World returns the communicator spanning all processors of the machine,
// the analogue of MPI_COMM_WORLD. Each processor must create its own via
// this call inside the SPMD body.
func World(p *machine.Proc) Comm { return &world{p: p} }

func (w *world) Rank() int { return w.p.Rank() }
func (w *world) Size() int { return w.p.P() }

func (w *world) Send(dst int, v Value, tag int) {
	w.p.Send(dst, v, v.Words(), tag)
}

func (w *world) Recv(src, tag int) Value {
	raw := w.p.Recv(src, tag)
	if raw == nil {
		return nil
	}
	return raw.(Value)
}

func (w *world) Exchange(partner int, v Value, tag int) Value {
	return w.p.SendRecv(partner, v, v.Words(), tag).(Value)
}

func (w *world) Compute(n float64) { w.p.Compute(n) }

func (w *world) NextTag() int {
	w.tagseq++
	return w.tagseq
}

// TrySend exposes the processor's non-blocking send (Transport).
func (w *world) TrySend(dst int, v Value, tag int) bool {
	return w.p.TrySend(dst, v, v.Words(), tag)
}

// RecvAny exposes the processor's tag-oblivious receive (Transport).
func (w *world) RecvAny(src int) (Value, int) {
	raw, tag := w.p.RecvAny(src)
	if raw == nil {
		return nil, tag
	}
	return raw.(Value), tag
}

// TryRecvAny exposes the processor's non-blocking tag-oblivious receive
// (Transport).
func (w *world) TryRecvAny(src int) (Value, int, bool) {
	raw, tag, ok := w.p.TryRecvAny(src)
	if !ok || raw == nil {
		return nil, tag, ok
	}
	return raw.(Value), tag, ok
}

// Mark records a stage annotation on the processor's event trace.
func (w *world) Mark(label string) { w.p.Mark(label) }

// sub is a subgroup communicator: group rank i maps to parent rank
// ranks[i].
type sub struct {
	parent Comm
	ranks  []int
	rank   int
	tagseq int
}

// Sub builds the subgroup of parent consisting of the given parent ranks
// (which must be distinct and include the caller). Every listed member
// must call Sub with the same rank list; the caller's group rank is its
// index in the list.
func Sub(parent Comm, ranks []int) Comm {
	seen := make(map[int]bool, len(ranks))
	me := -1
	for i, r := range ranks {
		if r < 0 || r >= parent.Size() {
			panic(fmt.Sprintf("coll: Sub rank %d out of range [0,%d)", r, parent.Size()))
		}
		if seen[r] {
			panic(fmt.Sprintf("coll: Sub rank %d listed twice", r))
		}
		seen[r] = true
		if r == parent.Rank() {
			me = i
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("coll: caller rank %d not in subgroup %v", parent.Rank(), ranks))
	}
	return &sub{parent: parent, ranks: append([]int(nil), ranks...), rank: me}
}

func (s *sub) Rank() int { return s.rank }
func (s *sub) Size() int { return len(s.ranks) }

func (s *sub) Send(dst int, v Value, tag int) {
	s.parent.Send(s.ranks[dst], v, tag)
}

func (s *sub) Recv(src, tag int) Value {
	return s.parent.Recv(s.ranks[src], tag)
}

func (s *sub) Exchange(partner int, v Value, tag int) Value {
	return s.parent.Exchange(s.ranks[partner], v, tag)
}

func (s *sub) Compute(n float64) { s.parent.Compute(n) }

// Mark forwards a stage annotation to the parent, if it records them.
func (s *sub) Mark(label string) {
	if m, ok := s.parent.(Marker); ok {
		m.Mark(label)
	}
}

// ScratchArena exposes the parent's per-rank arena, if it provides one
// (subgroup collectives share the rank's arena with full-group ones).
func (s *sub) ScratchArena() *algebra.Arena {
	if h, ok := s.parent.(ArenaHolder); ok {
		return h.ScratchArena()
	}
	return nil
}

func (s *sub) NextTag() int {
	s.tagseq++
	// Offset subgroup tags so a sloppy caller mixing parent and
	// subgroup collectives gets a tag-mismatch panic instead of silent
	// cross-talk.
	return 1<<20 + s.tagseq
}

// Split partitions the communicator by color, MPI_Comm_split-style: every
// member calls Split with its color and key; members with equal color
// form a new group, ordered by (key, parent rank). The implementation
// allgathers the (color, key) pairs and builds the subgroup
// deterministically, so all members agree without further communication.
func Split(c Comm, color, key int) Comm {
	type entry struct{ rank, color, key int }
	pairs := AllGather(c, pairValue(color, key))
	entries := make([]entry, 0, len(pairs))
	for r, pv := range pairs {
		col, k := pairFields(pv)
		if col == color {
			entries = append(entries, entry{rank: r, color: col, key: k})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].rank < entries[j].rank
	})
	ranks := make([]int, len(entries))
	for i, e := range entries {
		ranks[i] = e.rank
	}
	return Sub(c, ranks)
}
