package coll

import "fmt"

// AllToAll performs the personalized all-to-all exchange: every member i
// supplies one value destined for each member j (parts[j]) and receives
// the value each member addressed to it, in rank order. The
// implementation runs p−1 rounds; in round r, rank i exchanges with rank
// i xor r when the group size is a power of two (a perfect pairing), and
// with partners (i+r) mod p / (i−r) mod p otherwise, ordered by rank to
// stay deadlock-free. Each round moves one block per member, so the time
// is (p−1)·(ts + m·tw) — all-to-all is inherently linear in p under the
// fully connected one-port model.
func AllToAll(c Comm, parts []Value) []Value {
	tag := c.NextTag()
	n := c.Size()
	if len(parts) != n {
		panic(fmt.Sprintf("coll: AllToAll needs %d parts, got %d", n, len(parts)))
	}
	rank := c.Rank()
	out := make([]Value, n)
	out[rank] = parts[rank]
	if n == 1 {
		return out
	}
	if IsPow2(n) {
		for r := 1; r < n; r++ {
			partner := rank ^ r
			out[partner] = c.Exchange(partner, parts[partner], tag)
		}
		return out
	}
	for r := 1; r < n; r++ {
		sendTo := (rank + r) % n
		recvFrom := (rank - r + n) % n
		if sendTo == recvFrom {
			// Mutual pairing: a single bidirectional exchange.
			out[sendTo] = c.Exchange(sendTo, parts[sendTo], tag)
			continue
		}
		// Order the two one-directional transfers by rank parity of the
		// round offset to avoid a cyclic wait: lower global rank in the
		// (rank, sendTo) pair sends first.
		if rank < sendTo {
			c.Send(sendTo, parts[sendTo], tag)
			out[recvFrom] = recvValue(c, recvFrom, tag)
		} else {
			out[recvFrom] = recvValue(c, recvFrom, tag)
			c.Send(sendTo, parts[sendTo], tag)
		}
	}
	return out
}
