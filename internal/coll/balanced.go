package coll

import (
	"repro/internal/algebra"
)

// ReduceBalanced combines the group's values on the balanced binary tree
// of §3.2 (Figure 4): every leaf at the same depth ceil(log2 p), and the
// right subtree of every node complete whenever the left subtree is
// non-empty. This shape is exactly what makes the non-associative derived
// operator op_sr correct — the operator's u component carries the segment
// sum weighted by 2^level, and combining is sound only when the right
// operand covers a complete power-of-two segment.
//
// Nodes with an empty left subtree apply the operator's one-sided case
// op((), v) locally (no communication). The result lands on rank 0;
// other members return their input unchanged, mirroring reduce's list
// semantics.
func ReduceBalanced(c Comm, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	v := reduceBalNode(c, op, 0, n, log2Ceil(n), x, tag)
	if c.Rank() == 0 {
		return v
	}
	return x
}

// reduceBalNode executes the subtree over ranks [lo,hi) at height h.
// Every rank in the span participates; the subtree's value is returned on
// the representative (the lowest rank, lo) and is unspecified on the
// others.
func reduceBalNode(c Comm, op *algebra.Op, lo, hi, h int, v Value, tag int) Value {
	if h == 0 {
		return v
	}
	n := hi - lo
	half := 1 << (h - 1)
	if n <= half {
		// Empty left subtree: the node passes the (complete or
		// recursively built) right subtree's value through the
		// one-sided case.
		v = reduceBalNode(c, op, lo, hi, h-1, v, tag)
		if c.Rank() == lo {
			v = op.ApplyUnary(v)
			c.Compute(op.Charge(v))
		}
		return v
	}
	mid := hi - half // right subtree covers [mid, hi) and is complete
	if c.Rank() < mid {
		v = reduceBalNode(c, op, lo, mid, h-1, v, tag)
		if c.Rank() == lo {
			right := recvValue(c, mid, tag)
			v = op.Apply(v, right)
			c.Compute(op.Charge(v))
		}
	} else {
		v = reduceBalNode(c, op, mid, hi, h-1, v, tag)
		if c.Rank() == mid {
			c.Send(lo, v, tag)
		}
	}
	return v
}

// AllReduceBalanced extends the balanced reduction to all members. On a
// power-of-two group it is the butterfly the paper sketches at the end of
// §3.2: in phase k the 2^k-segment partners exchange values and both
// combine in rank order, which is sound for op_sr because every butterfly
// segment is complete. On other group sizes it falls back to the balanced
// tree followed by a broadcast (the generalized butterfly the paper
// leaves open).
func AllReduceBalanced(c Comm, op *algebra.Op, x Value) Value {
	n := c.Size()
	if !IsPow2(n) {
		v := ReduceBalanced(c, op, x)
		return Bcast(c, 0, v)
	}
	tag := c.NextTag()
	v := x
	for k := 0; k < log2Ceil(n); k++ {
		partner := c.Rank() ^ (1 << k)
		recv := c.Exchange(partner, v, tag)
		if partner < c.Rank() {
			v = op.Apply(recv, v)
		} else {
			v = op.Apply(v, recv)
		}
		c.Compute(op.Charge(v))
	}
	return v
}

// ScanBalanced runs the balanced scan of §3.3 (Figure 5) with a
// BalancedScanOp such as op_ss: ceil(log2 p) butterfly phases; in each
// phase partners exchange the operator's shipped projection and the
// lower/higher partner applies its side of the node operation. Members
// whose partner does not exist (group size not a power of two) keep their
// first component and poison the rest — the paper proves, and the
// implementation preserves, that poisoned components are never consumed.
func ScanBalanced(c Comm, op *algebra.BalancedScanOp, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	v := x
	m := float64(x.Words()) / float64(op.Arity)
	for k := 0; k < log2Ceil(n); k++ {
		partner := c.Rank() ^ (1 << k)
		if partner >= n {
			v = op.Solo(v)
			continue
		}
		ship := op.Ship(v)
		recv := c.Exchange(partner, ship, tag)
		if partner > c.Rank() {
			v = op.Lo(v, recv)
			c.Compute(float64(op.CostLo) * m)
		} else {
			v = op.Hi(v, recv)
			c.Compute(float64(op.CostHi) * m)
		}
	}
	return v
}
