package coll

import (
	"repro/internal/algebra"
)

// ReduceBalanced combines the group's values on the balanced binary tree
// of §3.2 (Figure 4): every leaf at the same depth ceil(log2 p), and the
// right subtree of every node complete whenever the left subtree is
// non-empty. This shape is exactly what makes the non-associative derived
// operator op_sr correct — the operator's u component carries the segment
// sum weighted by 2^level, and combining is sound only when the right
// operand covers a complete power-of-two segment.
//
// Nodes with an empty left subtree apply the operator's one-sided case
// op((), v) locally (no communication). The result lands on rank 0;
// other members return their input unchanged, mirroring reduce's list
// semantics.
func ReduceBalanced(c Comm, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	ar := arenaOf(c)
	w, owned := toWork(ar, op, x)
	v, _ := reduceBalNode(c, ar, op, 0, n, log2Ceil(n), w, owned, tag)
	if c.Rank() == 0 {
		return fromWork(v)
	}
	return x
}

// reduceBalNode executes the subtree over ranks [lo,hi) at height h.
// Every rank in the span participates; the subtree's value is returned on
// the representative (the lowest rank, lo) and is unspecified on the
// others. The owned flag tracks whether v is scratch this rank may
// combine into in place: a representative combines in place once its
// accumulator is owned, and a rank that ships its value marks it frozen
// (a rank sends at most once and never combines afterwards, so this is
// belt and braces).
func reduceBalNode(c Comm, ar *algebra.Arena, op *algebra.Op, lo, hi, h int, v Value, owned bool, tag int) (Value, bool) {
	if h == 0 {
		return v, owned
	}
	n := hi - lo
	half := 1 << (h - 1)
	if n <= half {
		// Empty left subtree: the node passes the (complete or
		// recursively built) right subtree's value through the
		// one-sided case.
		v, owned = reduceBalNode(c, ar, op, lo, hi, h-1, v, owned, tag)
		if c.Rank() == lo {
			v = op.ApplyUnaryInto(dstFor(ar, v, owned, v), v)
			owned = true
			c.Compute(op.Charge(v))
		}
		return v, owned
	}
	mid := hi - half // right subtree covers [mid, hi) and is complete
	if c.Rank() < mid {
		v, owned = reduceBalNode(c, ar, op, lo, mid, h-1, v, owned, tag)
		if c.Rank() == lo {
			right := recvValue(c, mid, tag)
			v = op.ApplyInto(dstFor(ar, v, owned, right), v, right)
			owned = true
			c.Compute(op.Charge(v))
		}
	} else {
		v, owned = reduceBalNode(c, ar, op, mid, hi, h-1, v, owned, tag)
		if c.Rank() == mid {
			c.Send(lo, v, tag)
			owned = false
		}
	}
	return v, owned
}

// AllReduceBalanced extends the balanced reduction to all members. On a
// power-of-two group it is the butterfly the paper sketches at the end of
// §3.2: in phase k the 2^k-segment partners exchange values and both
// combine in rank order, which is sound for op_sr because every butterfly
// segment is complete. On other group sizes it falls back to the balanced
// tree followed by a broadcast (the generalized butterfly the paper
// leaves open).
func AllReduceBalanced(c Comm, op *algebra.Op, x Value) Value {
	n := c.Size()
	if !IsPow2(n) {
		v := ReduceBalanced(c, op, x)
		return Bcast(c, 0, v)
	}
	tag := c.NextTag()
	ar := arenaOf(c)
	v, _ := toWork(ar, op, x)
	for k := 0; k < log2Ceil(n); k++ {
		partner := c.Rank() ^ (1 << k)
		recv := c.Exchange(partner, v, tag)
		// v was just shipped and is frozen; combine into fresh scratch.
		d := scratchLike(ar, recv)
		if partner < c.Rank() {
			v = op.ApplyInto(d, recv, v)
		} else {
			v = op.ApplyInto(d, v, recv)
		}
		c.Compute(op.Charge(v))
	}
	return fromWork(v)
}

// ScanBalanced runs the balanced scan of §3.3 (Figure 5) with a
// BalancedScanOp such as op_ss: ceil(log2 p) butterfly phases; in each
// phase partners exchange the operator's shipped projection and the
// lower/higher partner applies its side of the node operation. Members
// whose partner does not exist (group size not a power of two) keep their
// first component and poison the rest — the paper proves, and the
// implementation preserves, that poisoned components are never consumed.
func ScanBalanced(c Comm, op *algebra.BalancedScanOp, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	ar := arenaOf(c)
	// Flatten the working state when the operator has flat kernels: each
	// phase then ships a fresh flat projection and rewrites the state in
	// place, allocating nothing in steady state. Phases whose partner is
	// missing (Solo) poison components with Undef, which only the boxed
	// form can hold — the state switches back to boxed there and the
	// remaining phases run the reference path.
	v := x
	if op.FlatShip != nil && op.FlatLo != nil && op.FlatHi != nil {
		if t, ok := x.(algebra.Tuple); ok && len(t) == op.Arity {
			if w, bm, can := algebra.CanFlatten(t); can {
				v = ar.Flat(w, bm).FlattenInto(t)
			}
		}
	}
	m := float64(x.Words()) / float64(op.Arity)
	for k := 0; k < log2Ceil(n); k++ {
		partner := c.Rank() ^ (1 << k)
		if partner >= n {
			v = op.Solo(algebra.Boxed(v))
			continue
		}
		if ft, ok := v.(*algebra.FlatTuple); ok {
			ship := ar.Flat(op.ShipWidth, ft.M())
			op.FlatShip(ship, ft)
			recv := c.Exchange(partner, ship, tag)
			if rf, flat := recv.(*algebra.FlatTuple); flat && rf.W == op.ShipWidth && rf.M() == ft.M() {
				// The state was never shipped (only its projection was),
				// so the node operation may rewrite it in place.
				if partner > c.Rank() {
					op.FlatLo(ft, ft, rf)
					c.Compute(float64(op.CostLo) * m)
				} else {
					op.FlatHi(ft, ft, rf)
					c.Compute(float64(op.CostHi) * m)
				}
				continue
			}
			// The partner shipped a boxed projection (it was poisoned by
			// an earlier Solo phase): fall back to the reference path.
			if partner > c.Rank() {
				v = op.Lo(algebra.Boxed(ft), algebra.Boxed(recv))
				c.Compute(float64(op.CostLo) * m)
			} else {
				v = op.Hi(algebra.Boxed(ft), algebra.Boxed(recv))
				c.Compute(float64(op.CostHi) * m)
			}
			continue
		}
		ship := op.Ship(v)
		recv := c.Exchange(partner, ship, tag)
		if partner > c.Rank() {
			v = op.Lo(v, algebra.Boxed(recv))
			c.Compute(float64(op.CostLo) * m)
		} else {
			v = op.Hi(v, algebra.Boxed(recv))
			c.Compute(float64(op.CostHi) * m)
		}
	}
	return fromWork(v)
}
