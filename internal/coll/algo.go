package coll

import (
	"fmt"

	"repro/internal/algebra"
)

// This file implements the algorithm portfolio behind the selection layer
// (package coll/sel): the reduce-scatter + allgather all-reduction via
// recursive halving/doubling (Rabenseifner's algorithm; Träff 2024), the
// chain-pipelined segmented reduction with a caller-chosen segment count
// (Lowery & Langou's greedy pipelining), and the bidirectional ring
// all-reduction that drives both ring directions concurrently (as in the
// poplibs ring program). All of them split or segment the block, so they
// require an elementwise base operator on Vec blocks; the cost lines that
// rank them against the butterfly live in cost/algo.go.
//
// Ownership follows the PR-4 owned-scratch discipline: working buffers
// come from the rank's arena (or fresh allocations without one), a region
// of a buffer is never written after it has been shipped, and combining
// happens in place only inside regions this rank still owns.

// chunkBounds returns the offset and size of chunk i when a block of
// mlen words is split into parts chunks, as evenly as possible with the
// remainder going to the lower chunks — the same layout ReduceScatter
// uses, shared so every chunked algorithm and both sides of a transfer
// agree on it without communication.
func chunkBounds(mlen, parts, i int) (off, sz int) {
	per := mlen / parts
	rem := mlen % parts
	off = i*per + min(i, rem)
	sz = per
	if i < rem {
		sz++
	}
	return off, sz
}

// chunkOff returns the word offset of chunk i (chunkBounds' offset only).
func chunkOff(mlen, parts, i int) int {
	off, _ := chunkBounds(mlen, parts, i)
	return off
}

// arenaVec draws an n-word scratch Vec from the arena (nil arenas
// allocate fresh).
func arenaVec(ar *algebra.Arena, n int) algebra.Vec {
	return ar.Vec(n).(algebra.Vec)
}

// AllReduceRabenseifner computes the all-reduction of Vec blocks with
// recursive-halving reduce-scatter followed by recursive-doubling
// allgather: 2·log p start-ups but only ~2m·(p−1)/p words and ~m·(p−1)/p
// combines per member, against the butterfly's m·log p of each — the
// classic large-block all-reduce. Non-power-of-two groups fold adjacent
// pairs into leaders first and unfold at the end. The operator must be
// elementwise (chunks are combined independently) and the block must hold
// at least one word per member; as in the MPI implementations of this
// algorithm, the halving phase combines partners in distance order, not
// rank order, so exactness under reassociation assumes a commutative
// base operator (true of every builtin elementwise operator here).
func AllReduceRabenseifner(c Comm, op *algebra.Op, x Value) Value {
	n := c.Size()
	vec, ok := x.(algebra.Vec)
	if !ok || len(vec) < n {
		panic("coll: AllReduceRabenseifner needs a Vec block with at least one element per member")
	}
	if n == 1 {
		return vec
	}
	tag := c.NextTag()
	ar := arenaOf(c)
	rank := c.Rank()
	q := 1 << log2Floor(n)
	r := n - q
	m := len(vec)

	// Fold: pairs (2i, 2i+1) for i < r combine into leader 2i, keeping
	// rank order (lower operand left). work is owned scratch from here on.
	isLeader := true
	leaderIdx := rank
	var work algebra.Vec
	if rank < 2*r {
		if rank%2 == 1 {
			c.Send(rank-1, vec, tag)
			isLeader = false
		} else {
			hi := recvValue(c, rank+1, tag)
			work = arenaVec(ar, m)
			op.ApplyInto(work, vec, hi)
			c.Compute(op.Charge(work))
			leaderIdx = rank / 2
		}
	} else {
		leaderIdx = rank - r
		work = arenaVec(ar, m)
		copy(work, vec)
	}
	leaderRank := func(idx int) int {
		if idx < r {
			return 2 * idx
		}
		return idx + r
	}
	if !isLeader {
		// Wait for the unfold: the pair's leader ships the finished block.
		return recvValue(c, rank-1, tag)
	}

	// Recursive halving over chunk indices [lo, hi): each step keeps the
	// half containing this leader's chunk, ships the other half to the
	// partner, and folds the received words into the kept region in
	// place — the kept region has never been shipped, so in-place
	// combining is safe; shipped regions are frozen from then on.
	type step struct {
		partner        int  // partner's machine rank
		keptLo, keptHi int  // chunk range kept after the step
		sentLo, sentHi int  // chunk range shipped to the partner
		partnerLower   bool // partner's chunks precede ours in rank order
	}
	var steps []step
	lo, hi := 0, q
	for hi-lo > 1 {
		half := (hi - lo) / 2
		var st step
		if leaderIdx < lo+half {
			st = step{partner: leaderRank(leaderIdx + half), keptLo: lo, keptHi: lo + half, sentLo: lo + half, sentHi: hi, partnerLower: false}
		} else {
			st = step{partner: leaderRank(leaderIdx - half), keptLo: lo + half, keptHi: hi, sentLo: lo, sentHi: lo + half, partnerLower: true}
		}
		sendSlice := work[chunkOff(m, q, st.sentLo):chunkOff(m, q, st.sentHi)]
		c.Send(st.partner, sendSlice, tag)
		recv := recvValue(c, st.partner, tag).(algebra.Vec)
		kept := work[chunkOff(m, q, st.keptLo):chunkOff(m, q, st.keptHi)]
		if st.partnerLower {
			op.ApplyInto(kept, recv, kept)
		} else {
			op.ApplyInto(kept, kept, recv)
		}
		c.Compute(op.Charge(kept))
		steps = append(steps, st)
		lo, hi = st.keptLo, st.keptHi
	}

	// Recursive-doubling allgather, replaying the halving steps in
	// reverse. The result is assembled in a fresh buffer: the regions the
	// halving phase shipped are frozen (a partner may still read them),
	// so finished words are never written back into work.
	out := arenaVec(ar, m)
	copy(out[chunkOff(m, q, lo):chunkOff(m, q, hi)], work[chunkOff(m, q, lo):chunkOff(m, q, hi)])
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		held := out[chunkOff(m, q, st.keptLo):chunkOff(m, q, st.keptHi)]
		c.Send(st.partner, held, tag)
		recv := recvValue(c, st.partner, tag).(algebra.Vec)
		copy(out[chunkOff(m, q, st.sentLo):chunkOff(m, q, st.sentHi)], recv)
	}

	// Unfold: leaders of folded pairs ship the finished block back.
	if rank < 2*r {
		c.Send(rank+1, out, tag)
	}
	return out
}

// ReducePipelined computes the rooted reduction (result on the first
// processor, all other members' values unchanged, like Reduce) by
// streaming the block down the rank chain p−1 → … → 0 in segments:
// segment s is combined and forwarded as soon as it arrives, so transfer
// and combine of different segments overlap — p−2+k pipeline slots of
// ts + (m/k)·(tw+1) each instead of the binomial tree's log p full-block
// phases. The segment count is the caller's choice; cost.PipelineSegments
// gives the Lowery–Langou optimum. The operator must be elementwise and
// the value a Vec; combining keeps rank order (lower ranks left).
func ReducePipelined(c Comm, op *algebra.Op, x Value, segments int) Value {
	n := c.Size()
	vec, ok := x.(algebra.Vec)
	if !ok || len(vec) == 0 {
		panic("coll: ReducePipelined needs a non-empty Vec block")
	}
	if n == 1 {
		return vec
	}
	tag := c.NextTag()
	rank := c.Rank()
	k := segments
	if k < 1 {
		k = 1
	}
	if k > len(vec) {
		k = len(vec)
	}
	m := len(vec)
	if rank == n-1 {
		// Tail of the chain: feed the pipeline, value unchanged.
		for s := 0; s < k; s++ {
			off, sz := chunkBounds(m, k, s)
			c.Send(rank-1, vec[off:off+sz], tag)
		}
		return x
	}
	// Combine each arriving segment with the own block's segment (own
	// rank is lower, so own goes left) into owned scratch; middle ranks
	// forward the combined segment and never touch it again.
	work := arenaVec(arenaOf(c), m)
	for s := 0; s < k; s++ {
		off, sz := chunkBounds(m, k, s)
		recv := recvValue(c, rank+1, tag)
		seg := work[off : off+sz]
		op.ApplyInto(seg, vec[off:off+sz], recv)
		c.Compute(op.Charge(seg))
		if rank > 0 {
			c.Send(rank-1, seg, tag)
		}
	}
	if rank == 0 {
		return work
	}
	return x
}

// ringHalf runs a unidirectional ring reduce-scatter + allgather over one
// half of the block, in direction d (+1: send to next, receive from prev;
// −1: the mirror). acc is this rank's private copy of the half, split
// into n chunks; after p−1 reduce-scatter steps chunk `rank` is complete,
// and p−1 allgather steps circulate the finished chunks. deliver is
// called as each transfer of the step is posted, letting the caller
// interleave two directions so their messages overlap in flight.
type ringHalf struct {
	c   Comm
	op  *algebra.Op
	tag int
	d   int // +1 clockwise (send next), −1 anticlockwise (send prev)
	acc []algebra.Vec
}

func newRingHalf(c Comm, op *algebra.Op, d int, half algebra.Vec) *ringHalf {
	n := c.Size()
	ar := arenaOf(c)
	acc := make([]algebra.Vec, n)
	for i := 0; i < n; i++ {
		off, sz := chunkBounds(len(half), n, i)
		ch := arenaVec(ar, sz)
		copy(ch, half[off:off+sz])
		acc[i] = ch
	}
	return &ringHalf{c: c, op: op, tag: c.NextTag(), d: d, acc: acc}
}

func (h *ringHalf) peerOut() int {
	n := h.c.Size()
	return (h.c.Rank() + h.d + n) % n
}

func (h *ringHalf) peerIn() int {
	n := h.c.Size()
	return (h.c.Rank() - h.d + n) % n
}

// idx maps a step offset to a chunk index in this direction.
func (h *ringHalf) idx(offset int) int {
	n := h.c.Size()
	return ((h.c.Rank()-h.d*offset)%n + n) % n
}

// sendReduce posts step s's reduce-scatter transfer.
func (h *ringHalf) sendReduce(s int) { h.c.Send(h.peerOut(), h.acc[h.idx(s+1)], h.tag) }

// recvReduce completes step s: fold the incoming partial chunk into the
// accumulator (incoming left: it carries the contributions of the ranks
// behind us in ring order; for the elementwise commutative operators this
// algorithm targets the order is immaterial, and for non-commutative ones
// ring order is documented behavior, as in ReduceScatter).
func (h *ringHalf) recvReduce(s int) {
	i := h.idx(s + 2)
	in := recvValue(h.c, h.peerIn(), h.tag)
	h.op.ApplyInto(h.acc[i], in, h.acc[i])
	h.c.Compute(h.op.Charge(h.acc[i]))
}

// sendGather posts step s's allgather transfer.
func (h *ringHalf) sendGather(s int) { h.c.Send(h.peerOut(), h.acc[h.idx(s)], h.tag) }

// recvGather completes step s: adopt the finished chunk.
func (h *ringHalf) recvGather(s int) {
	h.acc[h.idx(s+1)] = recvValue(h.c, h.peerIn(), h.tag).(algebra.Vec)
}

// assemble concatenates the finished chunks into dst.
func (h *ringHalf) assemble(dst algebra.Vec) {
	off := 0
	for i := 0; i < h.c.Size(); i++ {
		off += copy(dst[off:], h.acc[i])
	}
}

// AllReduceRingBi computes the all-reduction of Vec blocks on the
// bidirectional ring, as in the poplibs ring program: the block splits
// into two halves, the clockwise ring carries the lower half and the
// anticlockwise ring the upper half, and each step posts both directions'
// transfers before waiting on either, so on full-duplex links every step
// moves only m/(2p) words per direction — half the unidirectional ring's
// per-step volume. Start-ups double: 2(p−1) steps of two messages each.
// The operator must be elementwise and the block must hold at least two
// words per member (one per direction).
func AllReduceRingBi(c Comm, op *algebra.Op, x Value) Value {
	n := c.Size()
	vec, ok := x.(algebra.Vec)
	if !ok || len(vec) < 2*n {
		panic("coll: AllReduceRingBi needs a Vec block with at least two elements per member")
	}
	if n == 1 {
		return vec
	}
	half := len(vec) / 2
	cw := newRingHalf(c, op, +1, vec[:half])
	acw := newRingHalf(c, op, -1, vec[half:])
	for s := 0; s < n-1; s++ {
		// Post both directions' sends before receiving either: the sends
		// are buffered, so the step's four transfers are all in flight
		// together and full-duplex links overlap them.
		cw.sendReduce(s)
		acw.sendReduce(s)
		cw.recvReduce(s)
		acw.recvReduce(s)
	}
	for s := 0; s < n-1; s++ {
		cw.sendGather(s)
		acw.sendGather(s)
		cw.recvGather(s)
		acw.recvGather(s)
	}
	out := arenaVec(arenaOf(c), len(vec))
	cw.assemble(out[:half])
	acw.assemble(out[half:])
	return out
}

// Extended all-reduce algorithm choices (the first two are defined in
// ring.go).
const (
	// AllReduceRabenseifnerAlg is reduce-scatter + allgather via
	// recursive halving/doubling: 2·log p start-ups, ~2m bandwidth.
	AllReduceRabenseifnerAlg AllReduceAlg = iota + 2
	// AllReduceRingBiAlg is the bidirectional ring: both directions carry
	// half the block concurrently.
	AllReduceRingBiAlg
)

// ReduceAlg selects a rooted-reduction implementation for ReduceWith.
type ReduceAlg int

// Rooted-reduction algorithm choices.
const (
	// ReduceBinomial is the mirrored binomial tree of §4.1, the
	// implementation the paper's estimates assume.
	ReduceBinomial ReduceAlg = iota
	// ReducePipelineAlg is the chain-pipelined segmented reduction.
	ReducePipelineAlg
)

func (a ReduceAlg) String() string {
	switch a {
	case ReduceBinomial:
		return "butterfly"
	case ReducePipelineAlg:
		return "pipeline"
	}
	return fmt.Sprintf("ReduceAlg(%d)", int(a))
}

// ReduceWith performs the rooted reduction with the chosen algorithm.
// segments is the pipeline's segment count (ignored by the binomial
// tree); cost.PipelineSegments gives the calibrated optimum.
func ReduceWith(c Comm, root int, op *algebra.Op, x Value, alg ReduceAlg, segments int) Value {
	if alg == ReducePipelineAlg {
		if root != 0 {
			panic("coll: ReducePipelined chains toward the first processor; root must be 0")
		}
		return ReducePipelined(c, op, x, segments)
	}
	return Reduce(c, root, op, x)
}
