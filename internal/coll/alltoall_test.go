package coll

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

func TestAllToAllAllSizes(t *testing.T) {
	for _, n := range testSizes {
		// Processor i sends the value 100·i + j to processor j.
		m := machine.New(n, machine.Params{Ts: 3, Tw: 1})
		got := make([][]Value, n)
		m.Run(func(proc *machine.Proc) {
			c := World(proc)
			parts := make([]Value, n)
			for j := 0; j < n; j++ {
				parts[j] = algebra.Scalar(float64(100*proc.Rank() + j))
			}
			got[proc.Rank()] = AllToAll(c, parts)
		})
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want := algebra.Scalar(float64(100*i + j))
				if !algebra.Equal(got[j][i], want) {
					t.Fatalf("p=%d: proc %d slot %d = %v, want %v", n, j, i, got[j][i], want)
				}
			}
		}
	}
}

func TestAllToAllVariableSizes(t *testing.T) {
	// Unequal block sizes per destination (as sample sort produces).
	n := 5
	m := machine.New(n, machine.Params{Ts: 3, Tw: 1})
	got := make([][]Value, n)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		parts := make([]Value, n)
		for j := 0; j < n; j++ {
			v := make(algebra.Vec, (proc.Rank()+j)%3+1)
			for k := range v {
				v[k] = float64(proc.Rank()*100 + j*10 + k)
			}
			parts[j] = v
		}
		got[proc.Rank()] = AllToAll(c, parts)
	})
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := got[j][i].(algebra.Vec)
			wantLen := (i+j)%3 + 1
			if len(v) != wantLen {
				t.Fatalf("proc %d from %d: len %d, want %d", j, i, len(v), wantLen)
			}
			for k := range v {
				if v[k] != float64(i*100+j*10+k) {
					t.Fatalf("proc %d from %d: %v", j, i, v)
				}
			}
		}
	}
}

func TestAllToAllSelfSlotUntouched(t *testing.T) {
	m := machine.New(3, machine.Params{})
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		parts := []Value{algebra.Scalar(0), algebra.Scalar(1), algebra.Scalar(2)}
		out := AllToAll(c, parts)
		if !algebra.Equal(out[proc.Rank()], parts[proc.Rank()]) {
			t.Errorf("proc %d self slot = %v", proc.Rank(), out[proc.Rank()])
		}
	})
}

func TestAllToAllWrongPartsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := machine.New(2, machine.Params{})
	m.Run(func(proc *machine.Proc) {
		AllToAll(World(proc), []Value{algebra.Scalar(1)})
	})
}

func TestAllToAllOnSubgroup(t *testing.T) {
	// All-to-all within a subgroup must not disturb outsiders.
	m := machine.New(6, machine.Params{Ts: 2, Tw: 1})
	group := []int{0, 2, 4}
	got := make([][]Value, 6)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		if proc.Rank()%2 != 0 {
			return
		}
		g := Sub(c, group)
		parts := make([]Value, 3)
		for j := range parts {
			parts[j] = algebra.Scalar(float64(10*g.Rank() + j))
		}
		got[proc.Rank()] = AllToAll(g, parts)
	})
	for gi, global := range group {
		for src := 0; src < 3; src++ {
			want := algebra.Scalar(float64(10*src + gi))
			if !algebra.Equal(got[global][src], want) {
				t.Fatalf("member %d from %d = %v, want %v", gi, src, got[global][src], want)
			}
		}
	}
}
