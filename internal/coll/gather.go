package coll

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
)

// ValueList is an ordered slice of per-processor values shipped as one
// message; it is itself a Value whose word count is the sum of its
// members'. It is exported so transports outside this package — the
// multi-process wire codec in particular — can serialize and reconstruct
// it.
type ValueList []Value

// Words sums the members' word counts.
func (l ValueList) Words() int {
	n := 0
	for _, v := range l {
		n += v.Words()
	}
	return n
}

func (l ValueList) String() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = v.String()
	}
	return "list[" + strings.Join(parts, " ") + "]"
}

// Gather collects every member's value on the root, in rank order, using
// the mirrored binomial tree: rank r contributes x_r and the root returns
// [x_0, …, x_{p-1}]; every other member returns nil.
func Gather(c Comm, root int, x Value) []Value {
	tag := c.NextTag()
	n := c.Size()
	vr := (c.Rank() - root + n) % n
	acc := ValueList{x}
	done := false
	for k := 0; k < log2Ceil(n) && !done; k++ {
		bit := 1 << k
		if vr&bit != 0 {
			dst := (vr - bit + root) % n
			c.Send(dst, acc, tag)
			done = true
		} else if vr+bit < n {
			src := (vr + bit + root) % n
			recv := recvValue(c, src, tag).(ValueList)
			acc = append(acc, recv...)
		}
	}
	if vr == 0 {
		// acc is in virtual-rank order; rotate back to real ranks.
		real := make([]Value, n)
		for v, x := range acc {
			real[(v+root)%n] = x
		}
		return real
	}
	return nil
}

// Scatter distributes the root's per-member slices: the root supplies xs
// with one value per member, and every member returns its own xs[rank].
// Implemented as the top-down binomial tree: in descending phase k, each
// chunk holder at a virtual rank divisible by 2^(k+1) hands the upper
// half of its chunk to virtual rank +2^k.
func Scatter(c Comm, root int, xs []Value) Value {
	tag := c.NextTag()
	n := c.Size()
	vr := (c.Rank() - root + n) % n
	var hold ValueList
	if vr == 0 {
		if len(xs) != n {
			panic(fmt.Sprintf("coll: Scatter root got %d values for %d members", len(xs), n))
		}
		// Rotate into virtual-rank order so chunks are contiguous.
		hold = make(ValueList, n)
		for r, x := range xs {
			hold[(r-root+n)%n] = x
		}
	}
	have := vr == 0
	span := n // virtual ranks covered by the held chunk [vr, vr+span)
	for k := log2Ceil(n) - 1; k >= 0; k-- {
		bit := 1 << k
		switch {
		case have && vr%(bit<<1) == 0 && span > bit && vr+bit < n:
			upper := hold[bit:]
			dst := (vr + bit + root) % n
			c.Send(dst, upper, tag)
			hold = hold[:bit]
			span = bit
		case !have && vr%(bit<<1) == bit:
			src := (vr - bit + root) % n
			hold = recvValue(c, src, tag).(ValueList)
			have = true
			span = len(hold)
		}
	}
	return hold[0]
}

// AllGather delivers every member's value to every member, in rank order,
// using the fold/butterfly scheme of AllReduce with concatenation as the
// combine.
func AllGather(c Comm, x Value) []Value {
	concat := &algebra.Op{
		Name:  "++",
		Cost:  0,
		Arity: 1,
		Fn: func(a, b Value) Value {
			ta := a.(algebra.Tuple)
			tb := b.(algebra.Tuple)
			out := make(algebra.Tuple, 0, len(ta)+len(tb))
			out = append(out, ta...)
			return append(out, tb...)
		},
	}
	v := AllReduce(c, concat, algebra.Tuple{x})
	return []Value(v.(algebra.Tuple))
}

// Iter applies the Local-rule schema of §3.5 on rank 0: op.F iterated
// ceil(log2 p) times on the first member's working state, all other
// members idle and undetermined:
//
//	iter f [x, _, …, _] = [f^(log p) x, _, …, _]
//
// No communication happens at all — that is the whole point of the Local
// rules. The function returns the projected first component on rank 0 and
// Undef elsewhere.
func Iter(c Comm, op *algebra.IterOp, x Value) Value {
	if c.Rank() != 0 {
		return algebra.Undef{}
	}
	if vec, ok := x.(algebra.Vec); ok && op.FlatF != nil && len(vec) > 0 {
		// Flat path: one working buffer, rewritten in place per step.
		w := arenaOf(c).Flat(op.Arity, len(vec))
		for i := 0; i < op.Arity; i++ {
			copy(w.Comp(i), vec)
		}
		for k := 0; k < log2Ceil(c.Size()); k++ {
			op.FlatF(w, w)
			c.Compute(op.Charge(w))
		}
		return algebra.First(w)
	}
	w := op.Prepare(x)
	for k := 0; k < log2Ceil(c.Size()); k++ {
		w = op.F(w)
		c.Compute(op.Charge(w))
	}
	return algebra.First(w)
}

// pairValue packs two small integers into a pair of scalars (used by
// Split to allgather color/key).
func pairValue(a, b int) Value {
	return algebra.Tuple{algebra.Scalar(a), algebra.Scalar(b)}
}

// pairFields unpacks a pairValue.
func pairFields(v Value) (a, b int) {
	t := v.(algebra.Tuple)
	return int(t[0].(algebra.Scalar)), int(t[1].(algebra.Scalar))
}
