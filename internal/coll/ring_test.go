package coll

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

func randBlocks(rng *rand.Rand, p, m int) []algebra.Vec {
	out := make([]algebra.Vec, p)
	for i := range out {
		v := make(algebra.Vec, m)
		for j := range v {
			v[j] = float64(rng.Intn(9) - 4)
		}
		out[i] = v
	}
	return out
}

func elementwiseSum(blocks []algebra.Vec) algebra.Vec {
	out := append(algebra.Vec(nil), blocks[0]...)
	for _, b := range blocks[1:] {
		for j := range out {
			out[j] += b[j]
		}
	}
	return out
}

func TestReduceScatterAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8, 13, 16} {
		m := 2*n + 3 // remainder chunks exercised
		blocks := randBlocks(rng, n, m)
		want := elementwiseSum(blocks)
		vm := machine.New(n, machine.Params{Ts: 4, Tw: 1})
		got := make([]algebra.Vec, n)
		vm.Run(func(proc *machine.Proc) {
			c := World(proc)
			v := ReduceScatter(c, algebra.Add, blocks[proc.Rank()].Clone())
			got[proc.Rank()] = v.(algebra.Vec)
		})
		// Concatenate the chunks in rank order and compare.
		var flat algebra.Vec
		for _, g := range got {
			flat = append(flat, g...)
		}
		if !algebra.Equal(flat, want) {
			t.Fatalf("p=%d: reduce-scatter = %v, want %v", n, flat, want)
		}
	}
}

func TestReduceScatterMax(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	n, m := 6, 12
	blocks := randBlocks(rng, n, m)
	want := append(algebra.Vec(nil), blocks[0]...)
	for _, b := range blocks[1:] {
		for j := range want {
			if b[j] > want[j] {
				want[j] = b[j]
			}
		}
	}
	vm := machine.New(n, machine.Params{Ts: 4, Tw: 1})
	var flatMu [16]algebra.Vec
	vm.Run(func(proc *machine.Proc) {
		c := World(proc)
		v := ReduceScatter(c, algebra.Max, blocks[proc.Rank()].Clone())
		flatMu[proc.Rank()] = v.(algebra.Vec)
	})
	var flat algebra.Vec
	for i := 0; i < n; i++ {
		flat = append(flat, flatMu[i]...)
	}
	if !algebra.Equal(flat, want) {
		t.Fatalf("max reduce-scatter = %v, want %v", flat, want)
	}
}

func TestReduceScatterRejectsSmallBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	vm := machine.New(4, machine.Params{})
	vm.Run(func(proc *machine.Proc) {
		ReduceScatter(World(proc), algebra.Add, algebra.Vec{1, 2})
	})
}

func TestAllReduceRingAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for _, n := range []int{1, 2, 3, 5, 6, 8, 12, 16} {
		m := 3 * n
		blocks := randBlocks(rng, n, m)
		want := elementwiseSum(blocks)
		out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return AllReduceRing(pr, algebra.Add, blocks[pr.Rank()].Clone())
		})
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("p=%d: ring allreduce proc %d = %v, want %v", n, r, v, want)
			}
		}
	}
}

func TestAllReduceWithSelectsAlgorithm(t *testing.T) {
	blocks := randBlocks(rand.New(rand.NewSource(204)), 4, 8)
	want := elementwiseSum(blocks)
	for _, alg := range []AllReduceAlg{AllReduceButterfly, AllReduceRingAlg} {
		out, _ := runSPMD(4, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return AllReduceWith(pr, algebra.Add, blocks[pr.Rank()].Clone(), alg)
		})
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("%s: proc %d = %v, want %v", alg, r, v, want)
			}
		}
	}
}

// TestRingBeatsButterflyOnLargeBlocks: ~2m bandwidth against m·log p.
func TestRingBeatsButterflyOnLargeBlocks(t *testing.T) {
	params := machine.Params{Ts: 10, Tw: 4}
	p, m := 16, 1<<14
	run := func(alg AllReduceAlg) float64 {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return AllReduceWith(pr, algebra.Add, make(algebra.Vec, m), alg)
		})
		return res.Makespan
	}
	if ring, bf := run(AllReduceRingAlg), run(AllReduceButterfly); ring >= bf {
		t.Fatalf("ring (%g) should beat butterfly (%g) on large blocks", ring, bf)
	}
	// And the butterfly wins the start-up-dominated regime.
	params = machine.Params{Ts: 10000, Tw: 1}
	m = 64
	if ring, bf := run2(params, p, m, AllReduceRingAlg), run2(params, p, m, AllReduceButterfly); bf >= ring {
		t.Fatalf("butterfly (%g) should beat ring (%g) on small blocks", bf, ring)
	}
}

func run2(params machine.Params, p, m int, alg AllReduceAlg) float64 {
	_, res := runSPMD(p, params, func(pr Comm) Value {
		return AllReduceWith(pr, algebra.Add, make(algebra.Vec, m), alg)
	})
	return res.Makespan
}

func TestAllReduceAlgString(t *testing.T) {
	if AllReduceButterfly.String() != "butterfly" || AllReduceRingAlg.String() != "ring" {
		t.Fatal("algorithm names")
	}
	if !strings.Contains(AllReduceAlg(7).String(), "7") {
		t.Fatal("unknown algorithm name")
	}
}
