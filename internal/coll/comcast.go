package coll

import (
	"repro/internal/algebra"
)

// BcastRepeat implements the comcast pattern — rank i receives g^i(b) for
// the root's datum b — the way the Comcast rules of §3.4 do: broadcast b,
// then every member locally runs the logarithmic repeat schema (equation
// (14)) over the binary digits of its rank, applying the rule's e/o step
// pair, and projects the first component. Despite the redundant
// computation (all members rerun the low digits), this is the faster
// implementation: time log p · (ts + m·tw) for the broadcast plus at most
// log p · costO · m local work, with no extra start-ups.
func BcastRepeat(c Comm, root int, ops *algebra.RepeatOps, b Value) Value {
	v := Bcast(c, root, b)
	m := v.Words()
	k := (c.Rank() - root + c.Size()) % c.Size()
	if vec, ok := v.(algebra.Vec); ok && ops.FlatE != nil && ops.FlatO != nil && len(vec) > 0 {
		// Flat repeat: duplicate the broadcast block into one flat
		// working tuple and iterate the digit steps in place.
		w := arenaOf(c).Flat(ops.Arity, len(vec))
		for i := 0; i < ops.Arity; i++ {
			copy(w.Comp(i), vec)
		}
		ops.RepeatInto(k, w)
		c.Compute(ops.RepeatCharge(k, m))
		return algebra.First(w)
	}
	w := ops.Repeat(k, ops.Prepare(v))
	c.Compute(ops.RepeatCharge(k, m))
	return algebra.First(w)
}

// Comcast implements the same pattern with the cost-optimal doubling
// scheme the paper discusses (and measures as "comcast" in Figures 7 and
// 8): instead of broadcasting b, rank 0 computes e and o on its working
// tuple and ships the o result to rank 1; the step then repeats with two
// members, four, and so on. Total work is optimal — every g^i(b) is
// computed once — but each of the log p rounds ships a whole working
// tuple (Arity·m words) and performs both e and o on the critical path,
// which is why the paper finds it slower than BcastRepeat.
func Comcast(c Comm, root int, ops *algebra.RepeatOps, b Value) Value {
	tag := c.NextTag()
	n := c.Size()
	ar := arenaOf(c)
	vrank := (c.Rank() - root + n) % n
	m := b.Words()
	useFlat := ops.FlatE != nil && ops.FlatO != nil
	var w Value
	owned := false
	if vrank == 0 {
		if vec, ok := b.(algebra.Vec); ok && useFlat && len(vec) > 0 {
			f := ar.Flat(ops.Arity, len(vec))
			for i := 0; i < ops.Arity; i++ {
				copy(f.Comp(i), vec)
			}
			w = f
			owned = true
		} else {
			w = ops.Prepare(b)
		}
	}
	for k := 0; k < log2Ceil(n); k++ {
		bit := 1 << k
		switch {
		case vrank < bit:
			// This member holds g^vrank; spawn g^(vrank+2^k) at the
			// doubled partner, then advance the own state with e.
			if vrank+bit < n {
				var spawned Value
				if ft, ok := w.(*algebra.FlatTuple); ok {
					// The spawned state escapes into a message: it gets
					// its own buffer, frozen once sent.
					d := ar.Flat(ft.W, ft.M())
					ops.FlatO(d, ft)
					spawned = d
				} else {
					spawned = ops.O(w)
				}
				c.Compute(float64(ops.CostO) * float64(m))
				dst := (vrank + bit + root) % n
				c.Send(dst, spawned, tag)
			}
			if ft, ok := w.(*algebra.FlatTuple); ok {
				// A state received from the doubling source is frozen;
				// the first e-step after a receive moves to fresh
				// scratch, later steps rewrite it in place.
				d := ft
				if !owned {
					d = ar.Flat(ft.W, ft.M())
				}
				ops.FlatE(d, ft)
				w = d
				owned = true
			} else {
				w = ops.E(w)
			}
			c.Compute(float64(ops.CostE) * float64(m))
		case vrank < bit<<1:
			src := (vrank - bit + root) % n
			w = recvValue(c, src, tag)
			owned = false
		}
	}
	return algebra.First(w)
}
