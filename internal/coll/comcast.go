package coll

import (
	"repro/internal/algebra"
)

// BcastRepeat implements the comcast pattern — rank i receives g^i(b) for
// the root's datum b — the way the Comcast rules of §3.4 do: broadcast b,
// then every member locally runs the logarithmic repeat schema (equation
// (14)) over the binary digits of its rank, applying the rule's e/o step
// pair, and projects the first component. Despite the redundant
// computation (all members rerun the low digits), this is the faster
// implementation: time log p · (ts + m·tw) for the broadcast plus at most
// log p · costO · m local work, with no extra start-ups.
func BcastRepeat(c Comm, root int, ops *algebra.RepeatOps, b Value) Value {
	v := Bcast(c, root, b)
	m := v.Words()
	w := ops.Prepare(v)
	k := (c.Rank() - root + c.Size()) % c.Size()
	w = ops.Repeat(k, w)
	c.Compute(ops.RepeatCharge(k, m))
	return algebra.First(w)
}

// Comcast implements the same pattern with the cost-optimal doubling
// scheme the paper discusses (and measures as "comcast" in Figures 7 and
// 8): instead of broadcasting b, rank 0 computes e and o on its working
// tuple and ships the o result to rank 1; the step then repeats with two
// members, four, and so on. Total work is optimal — every g^i(b) is
// computed once — but each of the log p rounds ships a whole working
// tuple (Arity·m words) and performs both e and o on the critical path,
// which is why the paper finds it slower than BcastRepeat.
func Comcast(c Comm, root int, ops *algebra.RepeatOps, b Value) Value {
	tag := c.NextTag()
	n := c.Size()
	vrank := (c.Rank() - root + n) % n
	m := b.Words()
	var w Value
	if vrank == 0 {
		w = ops.Prepare(b)
	}
	for k := 0; k < log2Ceil(n); k++ {
		bit := 1 << k
		switch {
		case vrank < bit:
			// This member holds g^vrank; spawn g^(vrank+2^k) at the
			// doubled partner, then advance the own state with e.
			if vrank+bit < n {
				spawned := ops.O(w)
				c.Compute(float64(ops.CostO) * float64(m))
				dst := (vrank + bit + root) % n
				c.Send(dst, spawned, tag)
			}
			w = ops.E(w)
			c.Compute(float64(ops.CostE) * float64(m))
		case vrank < bit<<1:
			src := (vrank - bit + root) % n
			w = recvValue(c, src, tag)
		}
	}
	return algebra.First(w)
}
