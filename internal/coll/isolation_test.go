package coll

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/machine"
)

// forBothBackends runs the same SPMD body on the virtual machine and on
// the native goroutine backend and checks each outcome. Group isolation
// is a property of the communicator layer's tag discipline, so it must
// hold identically however the messages are actually delivered.
func forBothBackends(t *testing.T, p int, work func(c Comm, out []Value), check func(t *testing.T, out []Value)) {
	t.Helper()
	t.Run("virtual", func(t *testing.T) {
		out := make([]Value, p)
		machine.New(p, machine.Params{Ts: 3, Tw: 1}).Run(func(proc *machine.Proc) {
			work(World(proc), out)
		})
		check(t, out)
	})
	t.Run("native", func(t *testing.T) {
		out := make([]Value, p)
		backend.New(p).Run(func(proc *backend.Proc) {
			work(proc, out)
		})
		check(t, out)
	})
}

// TestDisjointGroupIsolation: two disjoint halves run different numbers
// of collectives concurrently; the per-communicator tag sequences must
// keep the traffic apart on both backends.
func TestDisjointGroupIsolation(t *testing.T) {
	forBothBackends(t, 8,
		func(c Comm, out []Value) {
			g := Split(c, c.Rank()/4, c.Rank())
			v := Value(algebra.Scalar(float64(c.Rank() + 1)))
			if c.Rank() < 4 {
				v = Scan(g, algebra.Add, v)
				v = AllReduce(g, algebra.Max, v)
				v = Bcast(g, 0, v)
			} else {
				v = AllReduce(g, algebra.Mul, v)
			}
			out[c.Rank()] = v
		},
		func(t *testing.T, out []Value) {
			// Group 0: scan [1 2 3 4] → [1 3 6 10]; max → 10; bcast → 10.
			// Group 1: product 5·6·7·8 = 1680.
			for r := 0; r < 4; r++ {
				if !algebra.Equal(out[r], algebra.Scalar(10)) {
					t.Fatalf("group 0 member %d = %v, want 10", r, out[r])
				}
			}
			for r := 4; r < 8; r++ {
				if !algebra.Equal(out[r], algebra.Scalar(1680)) {
					t.Fatalf("group 1 member %d = %v, want 1680", r, out[r])
				}
			}
		})
}

// TestGridRowColumnIsolation: a 2×3 grid where every rank belongs to one
// row group AND one column group, so the groups overlap pairwise.
// Row and column collectives alternate; any tag cross-talk between the
// two memberships would corrupt the values.
func TestGridRowColumnIsolation(t *testing.T) {
	const cols = 3
	forBothBackends(t, 6,
		func(c Comm, out []Value) {
			r := c.Rank()
			row := Split(c, r/cols, r)
			col := Split(c, r%cols, r)
			v := Value(algebra.Scalar(float64(r + 1)))
			v = Scan(row, algebra.Add, v)
			v = AllReduce(col, algebra.Mul, v)
			v = Scan(row, algebra.Add, v)
			out[r] = v
		},
		func(t *testing.T, out []Value) {
			// Values [1..6]. Row scans: [1 3 6 | 4 9 15]. Column products:
			// [4 27 90 | 4 27 90]. Row scans again: [4 31 121 | 4 31 121].
			want := []float64{4, 31, 121, 4, 31, 121}
			for r, w := range want {
				if !algebra.Equal(out[r], algebra.Scalar(w)) {
					t.Fatalf("grid member %d = %v, want %g (row/column cross-talk?)", r, out[r], w)
				}
			}
		})
}

// TestOverlappingSubgroupsShareMember: groups {0,1,2} and {2,3,4} share
// rank 2, which runs a collective in each, one after the other. The
// late-starting second group must wait for rank 2, not steal messages
// from the first group's traffic.
func TestOverlappingSubgroupsShareMember(t *testing.T) {
	groupA := []int{0, 1, 2}
	groupB := []int{2, 3, 4}
	forBothBackends(t, 5,
		func(c Comm, out []Value) {
			r := c.Rank()
			v := Value(algebra.Scalar(float64(r + 1)))
			if r <= 2 {
				v = AllReduce(Sub(c, groupA), algebra.Add, v)
			}
			if r >= 2 {
				v = AllReduce(Sub(c, groupB), algebra.Add, v)
			}
			out[r] = AllReduce(c, algebra.Max, v)
		},
		func(t *testing.T, out []Value) {
			// A sums 1+2+3 = 6; rank 2 carries 6 into B, so B sums
			// 6+4+5 = 15; the world max is 15 everywhere.
			for r := 0; r < 5; r++ {
				if !algebra.Equal(out[r], algebra.Scalar(15)) {
					t.Fatalf("member %d = %v, want 15", r, out[r])
				}
			}
		})
}

// TestParentAndSubgroupInterleaved: collectives on the world communicator
// interleave with collectives on a subgroup of it. The subgroup's offset
// tag sequence keeps its messages from matching pending world traffic.
func TestParentAndSubgroupInterleaved(t *testing.T) {
	forBothBackends(t, 4,
		func(c Comm, out []Value) {
			r := c.Rank()
			v := Bcast(c, 0, Value(algebra.Scalar(float64(r+1))))
			g := Split(c, r%2, r)
			v = Scan(g, algebra.Add, v)
			v = AllReduce(c, algebra.Add, v)
			out[r] = v
		},
		func(t *testing.T, out []Value) {
			// Bcast from 0 → all 1. Pair scans → [1 1 2 2]. World sum 6.
			for r := 0; r < 4; r++ {
				if !algebra.Equal(out[r], algebra.Scalar(6)) {
					t.Fatalf("member %d = %v, want 6", r, out[r])
				}
			}
		})
}
