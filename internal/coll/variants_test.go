package coll

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/machine"
)

func TestBcastLinearAllSizes(t *testing.T) {
	for _, n := range testSizes {
		out, _ := runSPMD(n, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = algebra.Scalar(5)
			}
			return BcastWith(pr, 0, x, BcastLinear)
		})
		for r, v := range out {
			if !algebra.Equal(v, algebra.Scalar(5)) {
				t.Fatalf("p=%d: proc %d got %v", n, r, v)
			}
		}
	}
}

func TestBcastScatterAllGatherAllSizes(t *testing.T) {
	for _, n := range testSizes {
		mWords := 3*n + 1 // not divisible by n: exercises remainder chunks
		want := make(algebra.Vec, mWords)
		for i := range want {
			want[i] = float64(i * i % 97)
		}
		out, _ := runSPMD(n, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = want.Clone()
			}
			return BcastWith(pr, 0, x, BcastScatterAllGather)
		})
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("p=%d: proc %d got %v, want the full block", n, r, v)
			}
		}
	}
}

func TestBcastScatterAllGatherRejectsSmallBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// The root's panic leaves the other processors blocked in Recv, so
	// use a short deadlock timeout to end the run quickly.
	m := machine.New(4, machine.Params{})
	m.Timeout = 100 * time.Millisecond
	m.Run(func(proc *machine.Proc) {
		pr := World(proc)
		x := Value(algebra.Undef{})
		if pr.Rank() == 0 {
			x = algebra.Vec{1, 2} // fewer elements than members
		}
		BcastWith(pr, 0, x, BcastScatterAllGather)
	})
}

func TestBcastWithDefaultsToBinomial(t *testing.T) {
	out, res := runSPMD(8, machine.Params{Ts: 100, Tw: 1}, func(pr Comm) Value {
		x := Value(algebra.Undef{})
		if pr.Rank() == 0 {
			x = algebra.Scalar(1)
		}
		return BcastWith(pr, 0, x, BcastBinomial)
	})
	for _, v := range out {
		if !algebra.Equal(v, algebra.Scalar(1)) {
			t.Fatalf("out = %v", out)
		}
	}
	// log p · (ts + tw) = 3·101.
	if res.Makespan != 303 {
		t.Fatalf("makespan = %g, want 303", res.Makespan)
	}
}

func TestReduceLinearAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{Ts: 2, Tw: 1}, func(pr Comm) Value {
			return ReduceLinear(pr, 0, algebra.Left, xs[pr.Rank()])
		})
		// Rank-ordered combining: left projection keeps x0.
		if !algebra.Equal(out[0], xs[0]) {
			t.Fatalf("p=%d: linear left-reduce = %v, want %v", n, out[0], xs[0])
		}
	}
}

func TestReduceLinearNonZeroRoot(t *testing.T) {
	xs := scalars(1, 2, 3, 4, 5)
	out, _ := runSPMD(5, machine.Params{}, func(pr Comm) Value {
		return ReduceLinear(pr, 2, algebra.Add, xs[pr.Rank()])
	})
	if !algebra.Equal(out[2], algebra.Scalar(15)) {
		t.Fatalf("linear reduce at root 2 = %v", out[2])
	}
}

func TestScanLinearAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{Ts: 2, Tw: 1}, func(pr Comm) Value {
			return ScanLinear(pr, algebra.Add, xs[pr.Rank()])
		})
		want := seqScan(algebra.Add, xs)
		if !algebra.EqualLists(out, want) {
			t.Fatalf("p=%d: linear scan = %v, want %v", n, out, want)
		}
	}
}

// TestVariantCostTradeoffs checks the textbook cost relationships the
// variants exist to demonstrate.
func TestVariantCostTradeoffs(t *testing.T) {
	p := 16
	run := func(params machine.Params, mWords int, alg BcastAlg) float64 {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = make(algebra.Vec, mWords)
			}
			return BcastWith(pr, 0, x, alg)
		})
		return res.Makespan
	}

	// Start-up dominated, small block: binomial (log p start-ups) beats
	// linear (p−1 start-ups).
	small := machine.Params{Ts: 1000, Tw: 1}
	if b, l := run(small, 16, BcastBinomial), run(small, 16, BcastLinear); b >= l {
		t.Errorf("small blocks: binomial (%g) should beat linear (%g)", b, l)
	}
	// Bandwidth dominated, large block: scatter/allgather (~2m words)
	// beats binomial (m·log p words).
	big := machine.Params{Ts: 10, Tw: 4}
	if v, b := run(big, 1<<16, BcastScatterAllGather), run(big, 1<<16, BcastBinomial); v >= b {
		t.Errorf("large blocks: scatter-allgather (%g) should beat binomial (%g)", v, b)
	}

	// Linear scan: p−1 start-ups end to end vs the butterfly's
	// log p — the butterfly wins whenever start-up matters.
	scanButterfly := func() float64 {
		_, res := runSPMD(p, small, func(pr Comm) Value {
			return Scan(pr, algebra.Add, algebra.Scalar(float64(pr.Rank())))
		})
		return res.Makespan
	}()
	scanLinear := func() float64 {
		_, res := runSPMD(p, small, func(pr Comm) Value {
			return ScanLinear(pr, algebra.Add, algebra.Scalar(float64(pr.Rank())))
		})
		return res.Makespan
	}()
	if scanButterfly >= scanLinear {
		t.Errorf("butterfly scan (%g) should beat linear scan (%g) at high start-up", scanButterfly, scanLinear)
	}
}

func TestBcastAlgString(t *testing.T) {
	for alg, want := range map[BcastAlg]string{
		BcastBinomial:         "binomial",
		BcastLinear:           "linear",
		BcastScatterAllGather: "scatter-allgather",
	} {
		if alg.String() != want {
			t.Errorf("String() = %q, want %q", alg.String(), want)
		}
	}
	if !strings.Contains(BcastAlg(9).String(), "9") {
		t.Error("unknown algorithm string")
	}
}

func TestBcastPipelinedAllSizes(t *testing.T) {
	for _, n := range testSizes {
		mWords := 40 + n
		want := make(algebra.Vec, mWords)
		for i := range want {
			want[i] = float64((i*7 + 3) % 53)
		}
		out, _ := runSPMD(n, machine.Params{Ts: 3, Tw: 1}, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = want.Clone()
			}
			return BcastWith(pr, 0, x, BcastPipelined)
		})
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("p=%d: proc %d got %v", n, r, v)
			}
		}
	}
}

func TestBcastPipelinedNonZeroRoot(t *testing.T) {
	want := make(algebra.Vec, 64)
	for i := range want {
		want[i] = float64(i)
	}
	out, _ := runSPMD(5, machine.Params{Ts: 3, Tw: 1}, func(pr Comm) Value {
		x := Value(algebra.Undef{})
		if pr.Rank() == 2 {
			x = want.Clone()
		}
		return BcastWith(pr, 2, x, BcastPipelined)
	})
	for r, v := range out {
		if !algebra.Equal(v, want) {
			t.Fatalf("proc %d got wrong block", r)
		}
	}
}

func TestBcastPipelinedBeatsBinomialOnLongMessages(t *testing.T) {
	// Store-and-forward pipelining costs ~2·m·tw end to end regardless
	// of p (each hop pays a receive and a forward per chunk), while the
	// binomial tree pays log p · m·tw — so the pipeline wins once
	// log p > 2. Check at p = 16 with a huge block.
	params := machine.Params{Ts: 10, Tw: 2}
	mWords := 1 << 16
	run := func(alg BcastAlg) float64 {
		_, res := runSPMD(16, params, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = make(algebra.Vec, mWords)
			}
			return BcastWith(pr, 0, x, alg)
		})
		return res.Makespan
	}
	if pipe, bin := run(BcastPipelined), run(BcastBinomial); pipe >= bin {
		t.Fatalf("pipelined (%g) should beat binomial (%g) for long messages on few processors", pipe, bin)
	}
}

func TestBcastPipelinedRejectsTinyBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := machine.New(3, machine.Params{})
	m.Timeout = 100 * time.Millisecond
	m.Run(func(proc *machine.Proc) {
		pr := World(proc)
		x := Value(algebra.Undef{})
		if pr.Rank() == 0 {
			x = algebra.Vec{1, 2}
		}
		BcastWith(pr, 0, x, BcastPipelined)
	})
}
