package coll

import (
	"fmt"

	"repro/internal/algebra"
)

// This file implements the sparse and irregular collectives (see
// term.Halo, term.AllGatherV, term.ReduceScatterV for the semantics):
//
//   - HaloExchange / HaloExchangeLists: the neighborhood exchange, one
//     message per distinct directed neighbor pair — offsets congruent
//     mod p, duplicated neighbors and self-edges cost nothing.
//   - AllGatherV: the irregular-block allgather as a ring with p−1
//     rounds, skipping empty blocks on both sides.
//   - ReduceScatterV: the irregular-block reduce-scatter as a direct
//     pairwise exchange with rank-ordered combining, so the result is
//     bitwise-identical to the functional semantics' left fold for
//     elementwise operators.
//
// All three follow the ownership discipline of docs/PERF.md: caller
// inputs and slices of them are only ever borrowed (plain Send),
// received borrows are never written, and combining targets arena
// scratch this rank owns.

// HaloExchange performs the isomorphic neighborhood exchange on c:
// the caller receives ⟨x from rank (r+o) mod p : o ∈ offsets⟩ as a
// Tuple in offset order. Offsets congruent mod p (including 0 and
// duplicates) are served locally or by a single message, so the
// message count per rank is the number of distinct nonzero offsets
// mod p.
func HaloExchange(c Comm, offsets []int, x Value) Value {
	n := c.Size()
	r := c.Rank()
	tag := c.NextTag()
	// Distinct nonzero deltas in first-occurrence order: the rank pulls
	// from (r+d) mod n and symmetrically pushes to (r−d) mod n.
	seen := make(map[int]bool, len(offsets))
	var deltas []int
	for _, o := range offsets {
		d := ((o % n) + n) % n
		if d != 0 && !seen[d] {
			seen[d] = true
			deltas = append(deltas, d)
		}
	}
	for _, d := range deltas {
		c.Send((r-d+n)%n, x, tag)
	}
	got := map[int]Value{0: x}
	for _, d := range deltas {
		got[d] = recvValue(c, (r+d)%n, tag)
	}
	out := make(algebra.Tuple, len(offsets))
	for j, o := range offsets {
		out[j] = got[((o%n)+n)%n]
	}
	return out
}

// HaloExchangeLists performs the non-isomorphic neighborhood exchange:
// lists[i] names the absolute source ranks of rank i, and the caller
// receives its sources' blocks as a Tuple in list order. len(lists)
// must equal the group size. Duplicate sources and self-edges are
// served by at most one message per directed pair.
func HaloExchangeLists(c Comm, lists [][]int, x Value) Value {
	n := c.Size()
	r := c.Rank()
	if len(lists) != n {
		panic(fmt.Sprintf("coll: halo neighborhood pins p=%d, ran at p=%d", len(lists), n))
	}
	tag := c.NextTag()
	for dst := 0; dst < n; dst++ {
		if dst == r {
			continue
		}
		for _, src := range lists[dst] {
			if src == r {
				c.Send(dst, x, tag)
				break
			}
		}
	}
	got := map[int]Value{r: x}
	for _, src := range lists[r] {
		if _, ok := got[src]; !ok {
			got[src] = recvValue(c, src, tag)
		}
	}
	out := make(algebra.Tuple, len(lists[r]))
	for j, src := range lists[r] {
		out[j] = got[src]
	}
	return out
}

// AllGatherV gathers ragged blocks — counts[i] words on rank i — into
// the flat rank-ordered concatenation, delivered to every rank. The
// implementation is the standard ring: p−1 rounds, each forwarding the
// block that originated p−1, p−2, … hops upstream, skipping empty
// blocks (counts are global knowledge, so receivers skip symmetrically).
// Time (p−1)·ts + ((p−1)/p)·T·tw for T = Σcounts with equal blocks,
// and no rank sends more than T−counts[r] words for skewed ones.
func AllGatherV(c Comm, counts []int, x Value) Value {
	n := c.Size()
	r := c.Rank()
	if len(counts) != n {
		panic(fmt.Sprintf("coll: allgatherv with %d counts ran at p=%d", len(counts), n))
	}
	v, ok := x.(algebra.Vec)
	if !ok || len(v) != counts[r] {
		panic(fmt.Sprintf("coll: allgatherv rank %d needs a %d-word vector, got %v", r, counts[r], x))
	}
	displs := displsOf(counts)
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	ar := arenaOf(c)
	out := ar.Vec(total).(algebra.Vec)
	copy(out[displs[r]:displs[r]+counts[r]], v)
	if n == 1 {
		return out
	}
	tag := c.NextTag()
	next, prev := (r+1)%n, (r-1+n)%n
	for k := 0; k < n-1; k++ {
		sendOrig := (r - k + n) % n
		recvOrig := (prev - k + n) % n
		// Segments already written into out are frozen from the moment
		// they are shipped; later rounds only write other (disjoint)
		// segments, so borrowing sub-slices of out is safe.
		if counts[sendOrig] > 0 {
			c.Send(next, algebra.Vec(out[displs[sendOrig]:displs[sendOrig]+counts[sendOrig]]), tag)
		}
		if counts[recvOrig] > 0 {
			blk, ok := recvValue(c, prev, tag).(algebra.Vec)
			if !ok || len(blk) != counts[recvOrig] {
				panic(fmt.Sprintf("coll: allgatherv rank %d expected %d words from %d", r, counts[recvOrig], prev))
			}
			copy(out[displs[recvOrig]:], blk)
		}
	}
	return out
}

// ReduceScatterV combines the ranks' T-word vectors (T = Σcounts) with
// op in rank order and leaves rank i its counts[i]-word slice at its
// displacement. The implementation is direct pairwise: each rank ships
// every peer's slice of its own contribution (one message per pair,
// skipped for empty slices) and combines the p contributions to its own
// slice lowest-rank first, so the result is bitwise-equal to slicing
// the left fold for any elementwise operator.
func ReduceScatterV(c Comm, op *algebra.Op, counts []int, x Value) Value {
	n := c.Size()
	r := c.Rank()
	if len(counts) != n {
		panic(fmt.Sprintf("coll: reduce_scatterv with %d counts ran at p=%d", len(counts), n))
	}
	displs := displsOf(counts)
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	v, ok := x.(algebra.Vec)
	if !ok || len(v) != total {
		panic(fmt.Sprintf("coll: reduce_scatterv rank %d needs a %d-word vector, got %v", r, total, x))
	}
	tag := c.NextTag()
	for j := 0; j < n; j++ {
		if j == r || counts[j] == 0 {
			continue
		}
		c.Send(j, algebra.Vec(v[displs[j]:displs[j]+counts[j]]), tag)
	}
	ar := arenaOf(c)
	if counts[r] == 0 {
		// Nothing owned here; still drain nothing — peers skip empty
		// destinations symmetrically.
		return ar.Vec(0)
	}
	var acc Value
	owned := false
	for j := 0; j < n; j++ {
		var contrib Value
		if j == r {
			contrib = algebra.Vec(v[displs[r] : displs[r]+counts[r]])
		} else {
			contrib = recvValue(c, j, tag)
		}
		if acc == nil {
			acc = contrib
			continue
		}
		acc = op.ApplyInto(dstFor(ar, acc, owned, contrib), acc, contrib)
		owned = true
		c.Compute(op.Charge(acc))
	}
	return acc
}

// displsOf returns the exclusive prefix sums of counts (the rank
// displacements into the flat concatenation).
func displsOf(counts []int) []int {
	d := make([]int, len(counts))
	sum := 0
	for i, cnt := range counts {
		d[i] = sum
		sum += cnt
	}
	return d
}
