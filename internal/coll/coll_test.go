package coll

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

// runSPMD executes body on p processors with the given params and collects
// each processor's returned value.
func runSPMD(p int, params machine.Params, body func(pr Comm) Value) ([]Value, machine.Result) {
	m := machine.New(p, params)
	out := make([]Value, p)
	res := m.Run(func(pr *machine.Proc) {
		out[pr.Rank()] = body(World(pr))
	})
	return out, res
}

func scalars(xs ...float64) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = algebra.Scalar(x)
	}
	return out
}

func randScalars(rng *rand.Rand, n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = algebra.Scalar(float64(rng.Intn(19) - 9))
	}
	return out
}

// seqReduce is the sequential reference x1 ⊕ x2 ⊕ … ⊕ xn (left fold).
func seqReduce(op *algebra.Op, xs []Value) Value {
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = op.Apply(acc, x)
	}
	return acc
}

// seqScan is the sequential inclusive prefix.
func seqScan(op *algebra.Op, xs []Value) []Value {
	out := make([]Value, len(xs))
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = op.Apply(out[i-1], xs[i])
	}
	return out
}

var testSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 13, 16, 17, 31, 32, 33, 64}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range testSizes {
		roots := []int{0}
		if n > 1 {
			roots = append(roots, 1, n-1)
		}
		for _, root := range roots {
			out, _ := runSPMD(n, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
				x := Value(algebra.Undef{})
				if pr.Rank() == root {
					x = algebra.Scalar(42)
				}
				return Bcast(pr, root, x)
			})
			for r, v := range out {
				if !algebra.Equal(v, algebra.Scalar(42)) {
					t.Fatalf("p=%d root=%d: proc %d got %v, want 42", n, root, r, v)
				}
			}
		}
	}
}

func TestBcastCostMatchesEquation15(t *testing.T) {
	// Tbcast = log p · (ts + m·tw), for power-of-two machines.
	params := machine.Params{Ts: 100, Tw: 2}
	mWords := 16
	for _, p := range []int{2, 4, 8, 16, 32} {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = make(algebra.Vec, mWords)
			}
			return Bcast(pr, 0, x)
		})
		logp := math.Log2(float64(p))
		want := logp * (params.Ts + float64(mWords)*params.Tw)
		if res.Makespan != want {
			t.Fatalf("p=%d: bcast makespan = %g, want %g", p, res.Makespan, want)
		}
	}
}

func TestReduceAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
			return Reduce(pr, 0, algebra.Add, xs[pr.Rank()])
		})
		want := seqReduce(algebra.Add, xs)
		if !algebra.Equal(out[0], want) {
			t.Fatalf("p=%d: reduce root = %v, want %v", n, out[0], want)
		}
		// Non-root processors keep their input (reduce's list semantics).
		for r := 1; r < n; r++ {
			if !algebra.Equal(out[r], xs[r]) {
				t.Fatalf("p=%d: proc %d changed from %v to %v", n, r, xs[r], out[r])
			}
		}
	}
}

func TestReduceNonCommutativeOrderCorrect(t *testing.T) {
	// Left projection reduces to x1 only when combining is rank-ordered.
	rng := rand.New(rand.NewSource(12))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			return Reduce(pr, 0, algebra.Left, xs[pr.Rank()])
		})
		if !algebra.Equal(out[0], xs[0]) {
			t.Fatalf("p=%d: left-reduce = %v, want %v", n, out[0], xs[0])
		}
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	xs := scalars(1, 2, 3, 4, 5)
	out, _ := runSPMD(5, machine.Params{}, func(pr Comm) Value {
		return Reduce(pr, 3, algebra.Add, xs[pr.Rank()])
	})
	if !algebra.Equal(out[3], algebra.Scalar(15)) {
		t.Fatalf("reduce at root 3 = %v, want 15", out[3])
	}
}

func TestReduceCostMatchesEquation16(t *testing.T) {
	// Treduce = log p · (ts + m·(tw+1)).
	params := machine.Params{Ts: 100, Tw: 2}
	mWords := 16
	for _, p := range []int{2, 4, 8, 16} {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			x := make(algebra.Vec, mWords)
			for i := range x {
				x[i] = float64(pr.Rank())
			}
			return Reduce(pr, 0, algebra.Add, x)
		})
		logp := math.Log2(float64(p))
		want := logp * (params.Ts + float64(mWords)*(params.Tw+1))
		if res.Makespan != want {
			t.Fatalf("p=%d: reduce makespan = %g, want %g", p, res.Makespan, want)
		}
	}
}

func TestAllReduceAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
			return AllReduce(pr, algebra.Add, xs[pr.Rank()])
		})
		want := seqReduce(algebra.Add, xs)
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("p=%d: allreduce proc %d = %v, want %v", n, r, v, want)
			}
		}
	}
}

func TestAllReduceNonCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			return AllReduce(pr, algebra.Left, xs[pr.Rank()])
		})
		for r, v := range out {
			if !algebra.Equal(v, xs[0]) {
				t.Fatalf("p=%d: left-allreduce proc %d = %v, want %v", n, r, v, xs[0])
			}
		}
	}
}

func TestAllReduceCostPow2(t *testing.T) {
	// On powers of two the butterfly costs the same as Reduce.
	params := machine.Params{Ts: 100, Tw: 2}
	mWords := 8
	for _, p := range []int{2, 4, 8, 16} {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return AllReduce(pr, algebra.Add, make(algebra.Vec, mWords))
		})
		logp := math.Log2(float64(p))
		want := logp * (params.Ts + float64(mWords)*(params.Tw+1))
		if res.Makespan != want {
			t.Fatalf("p=%d: allreduce makespan = %g, want %g", p, res.Makespan, want)
		}
	}
}

func TestScanAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
			return Scan(pr, algebra.Add, xs[pr.Rank()])
		})
		want := seqScan(algebra.Add, xs)
		if !algebra.EqualLists(out, want) {
			t.Fatalf("p=%d: scan = %v, want %v", n, out, want)
		}
	}
}

func TestScanNonCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			return Scan(pr, algebra.Left, xs[pr.Rank()])
		})
		// scan(left) leaves every prefix at x1.
		for r, v := range out {
			if !algebra.Equal(v, xs[0]) {
				t.Fatalf("p=%d: left-scan proc %d = %v, want %v", n, r, v, xs[0])
			}
		}
	}
}

func TestScanVectors(t *testing.T) {
	n := 6
	out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
		v := algebra.Vec{float64(pr.Rank() + 1), 1}
		return Scan(pr, algebra.Mul, v)
	})
	// First lane: factorial prefixes; second lane: all ones.
	fact := 1.0
	for r, v := range out {
		fact *= float64(r + 1)
		if !algebra.Equal(v, algebra.Vec{fact, 1}) {
			t.Fatalf("proc %d = %v, want [%g 1]", r, v, fact)
		}
	}
}

func TestScanCostMatchesEquation17(t *testing.T) {
	// Tscan = log p · (ts + m·(tw+2)) on powers of two.
	params := machine.Params{Ts: 100, Tw: 2}
	mWords := 16
	for _, p := range []int{2, 4, 8, 16} {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return Scan(pr, algebra.Add, make(algebra.Vec, mWords))
		})
		logp := math.Log2(float64(p))
		want := logp * (params.Ts + float64(mWords)*(params.Tw+2))
		if res.Makespan != want {
			t.Fatalf("p=%d: scan makespan = %g, want %g", p, res.Makespan, want)
		}
	}
}

func TestScanSingleProcessor(t *testing.T) {
	out, res := runSPMD(1, machine.Params{Ts: 100, Tw: 1}, func(pr Comm) Value {
		return Scan(pr, algebra.Add, algebra.Scalar(7))
	})
	if !algebra.Equal(out[0], algebra.Scalar(7)) || res.Makespan != 0 {
		t.Fatalf("single-proc scan = %v, makespan %g", out[0], res.Makespan)
	}
}

// TestNonPow2CostBounds: the fold/unfold scheme adds at most two extra
// transfer rounds beyond the power-of-two butterfly, so the makespan on
// any machine size stays within (log2(p)+2) phases.
func TestNonPow2CostBounds(t *testing.T) {
	params := machine.Params{Ts: 100, Tw: 1}
	mWords := 8
	phase := params.Ts + float64(mWords)*(params.Tw+2) // scan's worst phase
	for _, p := range []int{3, 5, 6, 7, 11, 13, 33, 63} {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return Scan(pr, algebra.Add, make(algebra.Vec, mWords))
		})
		phases := math.Floor(math.Log2(float64(p))) + 2
		// Folded leaders additionally track the exclusive prefix: allow
		// one extra op per phase.
		bound := phases * (phase + float64(mWords))
		if res.Makespan > bound+1e-9 {
			t.Errorf("p=%d: scan makespan %g exceeds bound %g", p, res.Makespan, bound)
		}
		_, res = runSPMD(p, params, func(pr Comm) Value {
			return AllReduce(pr, algebra.Add, make(algebra.Vec, mWords))
		})
		if res.Makespan > bound+1e-9 {
			t.Errorf("p=%d: allreduce makespan %g exceeds bound %g", p, res.Makespan, bound)
		}
	}
}
