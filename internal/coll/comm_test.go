package coll

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

func TestWorldBasics(t *testing.T) {
	m := machine.New(4, machine.Params{Ts: 1, Tw: 1})
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		if c.Rank() != proc.Rank() || c.Size() != 4 {
			t.Errorf("world rank/size = %d/%d", c.Rank(), c.Size())
		}
	})
}

func TestSubRankTranslation(t *testing.T) {
	// Split 6 processors into evens and odds; run a scan in each group
	// concurrently and check results against each group's own inputs.
	xs := scalars(10, 1, 20, 2, 30, 3)
	m := machine.New(6, machine.Params{Ts: 5, Tw: 1})
	out := make([]Value, 6)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		var group []int
		if proc.Rank()%2 == 0 {
			group = []int{0, 2, 4}
		} else {
			group = []int{1, 3, 5}
		}
		sub := Sub(c, group)
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		if group[sub.Rank()] != proc.Rank() {
			t.Errorf("rank translation broken: sub rank %d, global %d", sub.Rank(), proc.Rank())
		}
		out[proc.Rank()] = Scan(sub, algebra.Add, xs[proc.Rank()])
	})
	// Evens scan [10 20 30] → [10 30 60]; odds scan [1 2 3] → [1 3 6].
	want := scalars(10, 1, 30, 3, 60, 6)
	if !algebra.EqualLists(out, want) {
		t.Fatalf("subgroup scans = %v, want %v", out, want)
	}
}

func TestSubCollectivesFullSuite(t *testing.T) {
	// Every collective must work on a subgroup exactly as on a world of
	// the same size.
	rng := rand.New(rand.NewSource(61))
	for _, subSize := range []int{1, 2, 3, 4, 5} {
		total := subSize + 3 // some processors stay outside the group
		xs := randScalars(rng, total)
		group := make([]int, subSize)
		for i := range group {
			group[i] = i + 1 // ranks 1..subSize
		}
		m := machine.New(total, machine.Params{Ts: 2, Tw: 1})
		out := make([]Value, total)
		m.Run(func(proc *machine.Proc) {
			c := World(proc)
			in := false
			for _, g := range group {
				if g == proc.Rank() {
					in = true
				}
			}
			if !in {
				return
			}
			sub := Sub(c, group)
			v := Bcast(sub, 0, xs[group[0]])
			v = algebra.Add.Apply(v, xs[proc.Rank()])
			v = AllReduce(sub, algebra.Add, v)
			out[proc.Rank()] = v
		})
		// Reference: every member receives xs[group[0]] + own, then sum.
		var sum float64
		for _, g := range group {
			sum += float64(xs[group[0]].(algebra.Scalar)) + float64(xs[g].(algebra.Scalar))
		}
		for _, g := range group {
			if !algebra.Equal(out[g], algebra.Scalar(sum)) {
				t.Fatalf("subSize=%d: member %d = %v, want %g", subSize, g, out[g], sum)
			}
		}
	}
}

func TestSubValidation(t *testing.T) {
	m := machine.New(3, machine.Params{})
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}
		if proc.Rank() == 0 {
			mustPanic("out of range", func() { Sub(c, []int{0, 7}) })
			mustPanic("duplicate", func() { Sub(c, []int{0, 0}) })
			mustPanic("caller missing", func() { Sub(c, []int{1, 2}) })
		}
	})
}

func TestSplitByColor(t *testing.T) {
	// MPI_Comm_split semantics: same color groups together, ordered by
	// key then parent rank.
	m := machine.New(6, machine.Params{Ts: 2, Tw: 1})
	sizes := make([]int, 6)
	ranks := make([]int, 6)
	sums := make([]Value, 6)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		color := proc.Rank() % 2
		key := -proc.Rank() // reverse order within the group
		g := Split(c, color, key)
		sizes[proc.Rank()] = g.Size()
		ranks[proc.Rank()] = g.Rank()
		sums[proc.Rank()] = AllReduce(g, algebra.Add, algebra.Scalar(float64(proc.Rank())))
	})
	for r := 0; r < 6; r++ {
		if sizes[r] != 3 {
			t.Fatalf("proc %d group size = %d", r, sizes[r])
		}
	}
	// Reverse key ordering: global 4 gets group rank 0 among evens.
	if ranks[4] != 0 || ranks[0] != 2 {
		t.Fatalf("even group ranks = [%d _ %d _ %d _]", ranks[0], ranks[2], ranks[4])
	}
	// Evens sum 0+2+4 = 6, odds 1+3+5 = 9.
	for r := 0; r < 6; r++ {
		want := 6.0
		if r%2 == 1 {
			want = 9
		}
		if !algebra.Equal(sums[r], algebra.Scalar(want)) {
			t.Fatalf("proc %d group sum = %v, want %g", r, sums[r], want)
		}
	}
}

func TestSplitSingletonGroups(t *testing.T) {
	m := machine.New(3, machine.Params{})
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		g := Split(c, proc.Rank(), 0) // every processor its own color
		if g.Size() != 1 || g.Rank() != 0 {
			t.Errorf("proc %d: singleton group size=%d rank=%d", proc.Rank(), g.Size(), g.Rank())
		}
		// Collectives on a singleton group are identities.
		v := Scan(g, algebra.Add, algebra.Scalar(7))
		if !algebra.Equal(v, algebra.Scalar(7)) {
			t.Errorf("singleton scan = %v", v)
		}
	})
}

func TestNestedSub(t *testing.T) {
	// A subgroup of a subgroup translates ranks through both layers.
	xs := scalars(0, 10, 20, 30, 40, 50, 60, 70)
	m := machine.New(8, machine.Params{Ts: 1, Tw: 1})
	out := make([]Value, 8)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		if proc.Rank()%2 != 0 {
			return
		}
		evens := Sub(c, []int{0, 2, 4, 6}) // group ranks 0..3
		if proc.Rank() == 0 || proc.Rank() == 4 {
			inner := Sub(evens, []int{0, 2}) // global 0 and 4
			out[proc.Rank()] = AllReduce(inner, algebra.Add, xs[proc.Rank()])
		}
	})
	if !algebra.Equal(out[0], algebra.Scalar(40)) || !algebra.Equal(out[4], algebra.Scalar(40)) {
		t.Fatalf("nested sub allreduce = %v / %v, want 40", out[0], out[4])
	}
}

func TestConcurrentGroupsDoNotInterfere(t *testing.T) {
	// Two groups run different numbers of collectives concurrently; the
	// per-communicator tag sequences keep them isolated.
	m := machine.New(8, machine.Params{Ts: 3, Tw: 1})
	out := make([]Value, 8)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		g := Split(c, proc.Rank()/4, proc.Rank())
		v := Value(algebra.Scalar(float64(proc.Rank() + 1)))
		if proc.Rank() < 4 {
			// Group 0: three collectives.
			v = Scan(g, algebra.Add, v)
			v = AllReduce(g, algebra.Max, v)
			v = Bcast(g, 0, v)
		} else {
			// Group 1: one collective.
			v = AllReduce(g, algebra.Mul, v)
		}
		out[proc.Rank()] = v
	})
	// Group 0: scan [1 2 3 4] → [1 3 6 10]; allreduce max → 10; bcast → 10.
	for r := 0; r < 4; r++ {
		if !algebra.Equal(out[r], algebra.Scalar(10)) {
			t.Fatalf("group 0 member %d = %v, want 10", r, out[r])
		}
	}
	// Group 1: product 5·6·7·8 = 1680.
	for r := 4; r < 8; r++ {
		if !algebra.Equal(out[r], algebra.Scalar(1680)) {
			t.Fatalf("group 1 member %d = %v, want 1680", r, out[r])
		}
	}
}

func TestBalancedCollectivesOnSubgroups(t *testing.T) {
	// The paper's new collectives must also work on subgroups.
	xs := scalars(9, 2, 9, 5, 9, 9, 9, 1, 9, 2, 9, 6)
	group := []int{1, 3, 5, 7, 9, 11} // values [2 5 9 1 2 6] — Figure 4/5
	m := machine.New(12, machine.Params{Ts: 4, Tw: 1})
	outR := make([]Value, 12)
	outS := make([]Value, 12)
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		in := proc.Rank()%2 == 1
		if !in {
			return
		}
		g := Sub(c, group)
		sr := algebra.OpSR(algebra.Add)
		outR[proc.Rank()] = ReduceBalanced(g, sr, algebra.Pair(xs[proc.Rank()]))
		ss := algebra.OpSS(algebra.Add)
		outS[proc.Rank()] = ScanBalanced(g, ss, algebra.Quadruple(xs[proc.Rank()]))
	})
	want := algebra.Tuple{algebra.Scalar(86), algebra.Scalar(200)}
	if !algebra.Equal(outR[1], want) {
		t.Fatalf("subgroup balanced reduce = %v, want %v", outR[1], want)
	}
	wantS := []float64{2, 9, 25, 42, 61, 86}
	for i, g := range group {
		if !algebra.Equal(algebra.First(outS[g]), algebra.Scalar(wantS[i])) {
			t.Fatalf("subgroup balanced scan member %d = %v, want %g",
				g, algebra.First(outS[g]), wantS[i])
		}
	}
}
