// Package coll implements the collective operations of the paper on the
// virtual machine of package machine: broadcast, reduction, all-reduction
// and scan with the butterfly/binomial implementations whose costs §4.1
// estimates, plus the paper's new collectives — reduce_balanced and
// scan_balanced (§3.2, §3.3), which tolerate the non-associative derived
// operators, and the two comcast implementations of §3.4 (the cost-optimal
// doubling scheme and the faster bcast-plus-repeat scheme).
//
// Every collective is an SPMD call over a Comm — the communicator naming
// the participating group (coll.World for the whole machine, coll.Sub or
// coll.Split for subgroups). All group members run the same call inside
// Machine.Run, and each call charges the processor clocks with the
// transfer and computation costs of the model (ts + m·tw per transfer,
// one unit per elementary operation), so the Makespan of a run is
// directly comparable with the paper's estimates.
//
// Combining is always performed in rank order (lower-rank operand on the
// left), so non-commutative associative operators are handled correctly
// for any group size, not only powers of two.
package coll

import (
	"fmt"

	"repro/internal/algebra"
)

// Value is the per-processor datum; an alias re-exported for convenience.
type Value = algebra.Value

func recvValue(c Comm, src, tag int) Value {
	v := c.Recv(src, tag)
	if v == nil {
		panic(fmt.Sprintf("coll: rank %d received nil from %d", c.Rank(), src))
	}
	return v
}

// log2Ceil returns ceil(log2 n) for n ≥ 1.
func log2Ceil(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// log2Floor returns floor(log2 n) for n ≥ 1.
func log2Floor(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}

// IsPow2 reports whether n is a power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Bcast broadcasts the root's value to every group member using the
// binomial doubling tree: log p phases of one transfer each, time
// log p · (ts + m·tw) — equation (15). Non-root input values are ignored,
// mirroring bcast [x1, _, …, _] = [x1, x1, …, x1].
func Bcast(c Comm, root int, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.Rank() - root + n) % n
	v := x
	have := vr == 0
	for k := 0; k < log2Ceil(n); k++ {
		bit := 1 << k
		switch {
		case have && vr+bit < n:
			dst := (vr + bit + root) % n
			c.Send(dst, v, tag)
		case !have && vr >= bit && vr < bit<<1:
			src := (vr - bit + root) % n
			v = recvValue(c, src, tag)
			have = true
		}
	}
	return v
}

// Reduce combines the group's values with the associative operator op,
// leaving the result on the root and every other member's value
// unchanged: reduce (⊕) [x1,…,xn] = [y, x2, …, xn] with
// y = x1 ⊕ … ⊕ xn. The implementation is the mirrored binomial tree:
// log p phases of one transfer and one combine, time
// log p · (ts + m·(tw+1)) — equation (16).
func Reduce(c Comm, root int, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	ar := arenaOf(c)
	vr := (c.Rank() - root + n) % n
	v, owned := toWork(ar, op, x)
	done := false
	for k := 0; k < log2Ceil(n) && !done; k++ {
		bit := 1 << k
		if vr&bit != 0 {
			// Send the accumulated value (covering [vr, vr+bit) in
			// virtual-rank order) to the parent and drop out. The rank
			// never combines after sending, so shipping its scratch
			// buffer is safe — and when the buffer is owned scratch the
			// send moves ownership outright: the parent may combine into
			// it in place, and on a zero-copy transport nothing is copied.
			dst := (vr - bit + root) % n
			sendOwned(c, dst, v, owned, tag)
			done = true
		} else if vr+bit < n {
			src := (vr + bit + root) % n
			r, adopted := recvOwned(c, src, tag)
			// Own value covers lower virtual ranks: combine own ⊕ recv —
			// in place into the accumulator once it is owned scratch, or
			// into the received buffer when the child moved it here.
			v = op.ApplyInto(dstForOwned(ar, v, owned, r, adopted), v, r)
			owned = true
			c.Compute(op.Charge(v))
		}
	}
	if vr == 0 {
		return fromWork(v)
	}
	return x
}

// AllReduce combines the group's values with the associative operator op
// and delivers the result to every member:
// allreduce (⊕) [x1,…,xn] = [y, y, …, y]. For a power-of-two group it is
// the pure butterfly — log p phases of one exchange and one combine, the
// same cost as Reduce. For other group sizes, adjacent pairs fold into
// group leaders first, the leaders run the butterfly, and the result
// unfolds, preserving rank-ordered combining for non-commutative
// operators.
func AllReduce(c Comm, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	ar := arenaOf(c)
	rank := c.Rank()
	q := 1 << log2Floor(n)
	r := n - q
	v, owned := toWork(ar, op, x)
	// Fold: pairs (2i, 2i+1) for i < r combine into leader 2i.
	isLeader := true
	leaderIdx := rank // index within the q leaders
	if rank < 2*r {
		if rank%2 == 1 {
			// The fold send is terminal for this rank's accumulator (it
			// only receives from here on), so an owned buffer moves.
			sendOwned(c, rank-1, v, owned, tag)
			isLeader = false
		} else {
			hi, adopted := recvOwned(c, rank+1, tag)
			v = op.ApplyInto(dstForOwned(ar, v, owned, hi, adopted), v, hi)
			c.Compute(op.Charge(v))
			leaderIdx = rank / 2
		}
	} else {
		leaderIdx = rank - r
	}
	leaderRank := func(idx int) int {
		if idx < r {
			return 2 * idx
		}
		return idx + r
	}
	if isLeader {
		for k := 0; k < log2Floor(q); k++ {
			partnerIdx := leaderIdx ^ (1 << k)
			partner := leaderRank(partnerIdx)
			recv := c.Exchange(partner, v, tag)
			// v was just shipped — the partner may still be reading it —
			// so every butterfly round combines into a fresh arena
			// buffer rather than in place.
			d := scratchLike(ar, recv)
			if partnerIdx < leaderIdx {
				v = op.ApplyInto(d, recv, v)
			} else {
				v = op.ApplyInto(d, v, recv)
			}
			c.Compute(op.Charge(v))
		}
		if rank < 2*r {
			c.Send(rank+1, v, tag)
		}
		return fromWork(v)
	}
	return fromWork(recvValue(c, rank-1, tag))
}

// Scan computes the inclusive parallel prefix with the associative
// operator op: scan (⊕) [x1,…,xn] = [x1, x1⊕x2, …, x1⊕…⊕xn]. The
// power-of-two case is the classic butterfly maintaining (prefix, total):
// log p phases of one exchange and at most two combines, time
// log p · (ts + m·(tw+2)) — equation (17). Other group sizes use the same
// fold/unfold scheme as AllReduce, with leaders additionally tracking the
// exclusive prefix they must hand back to their folded partner.
func Scan(c Comm, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	rank := c.Rank()
	q := 1 << log2Floor(n)
	r := n - q
	// Fold: pairs (2i, 2i+1) for i < r combine into leader 2i+1, which
	// carries the pair's segment; the leader's own inclusive prefix then
	// equals the pair's, and the folded partner needs the leader's
	// exclusive prefix afterwards.
	ar := arenaOf(c)
	v, _ := toWork(ar, op, x)
	isLeader := true
	leaderIdx := rank
	if rank < 2*r {
		if rank%2 == 0 {
			c.Send(rank+1, v, tag)
			isLeader = false
		} else {
			lo := recvValue(c, rank-1, tag)
			v = op.ApplyInto(scratchLike(ar, lo), lo, v)
			c.Compute(op.Charge(v))
			leaderIdx = rank / 2
		}
	} else {
		leaderIdx = rank - r
	}
	leaderRank := func(idx int) int {
		if idx < r {
			return 2*idx + 1
		}
		return idx + r
	}
	if !isLeader {
		// Receive the leader's exclusive prefix (Undef if empty) and
		// append the own element.
		ex := recvValue(c, rank+1, tag)
		if algebra.IsUndef(ex) {
			return x
		}
		res := op.ApplyInto(scratchLike(ar, ex), ex, v)
		c.Compute(op.Charge(res))
		return fromWork(res)
	}
	// prefix, total and excl all start out aliasing (or holding) buffers
	// this rank does not own for writing: total is shipped every round
	// and prefix/excl initially share its storage or hold a partner's
	// buffer. Each accumulator therefore combines into a fresh arena
	// destination the first time and in place from then on — prefix and
	// excl are never shipped mid-run, so once they own private scratch
	// the in-place combine is safe.
	prefix := v // inclusive prefix over the leader's segment block
	prefOwned := false
	total := v
	var excl Value // exclusive prefix; nil means empty
	exclOwned := false
	for k := 0; k < log2Floor(q); k++ {
		partnerIdx := leaderIdx ^ (1 << k)
		partner := leaderRank(partnerIdx)
		recvTotal := c.Exchange(partner, total, tag)
		if partnerIdx < leaderIdx {
			// The partner's block precedes ours in index order.
			prefix = op.ApplyInto(dstFor(ar, prefix, prefOwned, recvTotal), recvTotal, prefix)
			prefOwned = true
			c.Compute(op.Charge(prefix))
			// Exclusive-prefix upkeep is only needed by leaders of
			// folded pairs; it is an extra combine beyond the paper's
			// two per phase, performed and charged only in that case.
			if rank < 2*r {
				if excl == nil {
					excl = recvTotal
				} else {
					excl = op.ApplyInto(dstFor(ar, excl, exclOwned, recvTotal), recvTotal, excl)
					exclOwned = true
					c.Compute(op.Charge(excl))
				}
			}
			total = op.ApplyInto(scratchLike(ar, recvTotal), recvTotal, total)
		} else {
			total = op.ApplyInto(scratchLike(ar, recvTotal), total, recvTotal)
		}
		c.Compute(op.Charge(total))
	}
	if rank < 2*r {
		if excl == nil {
			c.Send(rank-1, algebra.Undef{}, tag)
		} else {
			c.Send(rank-1, excl, tag)
		}
	}
	return fromWork(prefix)
}
