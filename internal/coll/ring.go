package coll

import (
	"fmt"

	"repro/internal/algebra"
)

// This file adds the bandwidth-optimal reduction algorithms built from
// reduce-scatter: the ring all-reduce (reduce-scatter + allgather) moves
// only ~2m words per processor regardless of p, against the butterfly's
// m·log p — the large-block counterpart to the van de Geijn broadcast in
// variants.go. They require elementwise operators on Vec blocks of at
// least one element per group member.

// ReduceScatter combines the members' blocks elementwise with op and
// leaves chunk i of the result on member i (chunks split the block as
// evenly as possible, remainder to the lower ranks). The ring algorithm
// runs p−1 steps; in step s, member r sends the partial chunk it has been
// accumulating onward to r+1, so every chunk travels the whole ring once:
// (p−1)·(ts + (m/p)·(tw+1)) — bandwidth ~m, not m·log p.
//
// It returns this member's fully reduced chunk.
func ReduceScatter(c Comm, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	vec, ok := x.(algebra.Vec)
	if !ok || len(vec) < n {
		panic("coll: ReduceScatter needs a Vec block with at least one element per member")
	}
	if n == 1 {
		return vec
	}
	rank := c.Rank()
	chunk := func(v algebra.Vec, i int) algebra.Vec {
		per := len(v) / n
		rem := len(v) % n
		off := 0
		for k := 0; k < i; k++ {
			sz := per
			if k < rem {
				sz++
			}
			off += sz
		}
		sz := per
		if i < rem {
			sz++
		}
		return v[off : off+sz]
	}
	// acc[i] accumulates chunk i; start with copies of the own block's
	// chunks (pre-boxed, so the in-place combines below box nothing).
	acc := make([]Value, n)
	for i := 0; i < n; i++ {
		acc[i] = Value(append(algebra.Vec(nil), chunk(vec, i)...))
	}
	next := (rank + 1) % n
	prev := (rank - 1 + n) % n
	// In step s, member r sends chunk (r−s−1) mod n and receives chunk
	// (r−s−2) mod n, folding it into its accumulator; each chunk rides
	// the ring once, and the chunk received in the last step — chunk r —
	// is then complete. Combining is (incoming ⊕ own): for the
	// elementwise commutative/associative operators this algorithm
	// targets, the order is immaterial, and for non-commutative ones
	// the ring order is documented behavior.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s-1)%n + n) % n
		recvIdx := ((rank-s-2)%n + n) % n
		sendChunk := acc[sendIdx]
		// Send before receiving: the machine's sends are buffered, so
		// the ring cannot deadlock on this order.
		c.Send(next, sendChunk, tag)
		incoming := recvValue(c, prev, tag)
		// acc[recvIdx] is not sent until the next step, so the combine
		// may accumulate into it in place.
		combined := op.ApplyInto(acc[recvIdx], incoming, acc[recvIdx])
		c.Compute(op.Charge(combined))
		acc[recvIdx] = combined
	}
	return acc[rank]
}

// AllReduceRing computes the all-reduction of Vec blocks with the ring
// algorithm: reduce-scatter followed by an allgather of the chunks —
// 2(p−1) steps of m/p words each, total bandwidth ~2m per member. The
// classic large-block all-reduce.
func AllReduceRing(c Comm, op *algebra.Op, x Value) Value {
	n := c.Size()
	own := ReduceScatter(c, op, x)
	if n == 1 {
		return own
	}
	tag := c.NextTag()
	rank := c.Rank()
	next := (rank + 1) % n
	prev := (rank - 1 + n) % n
	chunks := make([]algebra.Vec, n)
	chunks[rank] = own.(algebra.Vec)
	// Ring allgather: in step s, forward chunk (rank−s) mod n.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		recvIdx := ((rank-s-1)%n + n) % n
		c.Send(next, chunks[sendIdx], tag)
		chunks[recvIdx] = recvValue(c, prev, tag).(algebra.Vec)
	}
	out := make(algebra.Vec, 0, len(x.(algebra.Vec)))
	for i := 0; i < n; i++ {
		out = append(out, chunks[i]...)
	}
	return out
}

// AllReduceAlg selects an all-reduce implementation for AllReduceWith.
type AllReduceAlg int

// All-reduce algorithm choices.
const (
	// AllReduceButterfly is the log p exchange pattern of §4.1.
	AllReduceButterfly AllReduceAlg = iota
	// AllReduceRingAlg is reduce-scatter + allgather: more start-ups,
	// ~2m bandwidth — wins for large blocks.
	AllReduceRingAlg
)

func (a AllReduceAlg) String() string {
	switch a {
	case AllReduceButterfly:
		return "butterfly"
	case AllReduceRingAlg:
		return "ring"
	case AllReduceRabenseifnerAlg:
		return "rabenseifner"
	case AllReduceRingBiAlg:
		return "ring-bi"
	}
	return fmt.Sprintf("AllReduceAlg(%d)", int(a))
}

// AllReduceWith performs the all-reduction with the chosen algorithm.
func AllReduceWith(c Comm, op *algebra.Op, x Value, alg AllReduceAlg) Value {
	switch alg {
	case AllReduceRingAlg:
		return AllReduceRing(c, op, x)
	case AllReduceRabenseifnerAlg:
		return AllReduceRabenseifner(c, op, x)
	case AllReduceRingBiAlg:
		return AllReduceRingBi(c, op, x)
	}
	return AllReduce(c, op, x)
}
