package coll

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

// scanReduceRef computes scan(⊕); reduce(⊕) sequentially: the reduction
// of the prefixes.
func scanReduceRef(op *algebra.Op, xs []Value) Value {
	acc := xs[0]
	prefix := xs[0]
	for _, x := range xs[1:] {
		prefix = op.Apply(prefix, x)
		acc = op.Apply(acc, prefix)
	}
	return acc
}

// TestFigure4 reproduces the balanced reduction of Figure 4: input
// [2 5 9 1 2 6], ⊕ = +, op_sr over pairs; the root receives (86, 200),
// and π₁ gives scan;reduce = 86.
func TestFigure4(t *testing.T) {
	xs := scalars(2, 5, 9, 1, 2, 6)
	sr := algebra.OpSR(algebra.Add)
	out, _ := runSPMD(6, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
		return ReduceBalanced(pr, sr, algebra.Pair(xs[pr.Rank()]))
	})
	want := algebra.Tuple{algebra.Scalar(86), algebra.Scalar(200)}
	if !algebra.Equal(out[0], want) {
		t.Fatalf("root value = %v, want %v", out[0], want)
	}
	if !algebra.Equal(algebra.First(out[0]), algebra.Scalar(86)) {
		t.Fatalf("π₁ = %v, want 86", algebra.First(out[0]))
	}
}

// TestReduceBalancedMatchesScanReduce checks on every machine size that
// π₁(reduce_balanced(op_sr)) over paired inputs equals scan(⊕);reduce(⊕),
// the semantic content of rule SR-Reduction.
func TestReduceBalancedMatchesScanReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range testSizes {
		for trial := 0; trial < 3; trial++ {
			xs := randScalars(rng, n)
			sr := algebra.OpSR(algebra.Add)
			out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
				return ReduceBalanced(pr, sr, algebra.Pair(xs[pr.Rank()]))
			})
			got := algebra.First(out[0])
			want := scanReduceRef(algebra.Add, xs)
			if !algebra.Equal(got, want) {
				t.Fatalf("p=%d: balanced reduce = %v, want %v (inputs %v)", n, got, want, xs)
			}
		}
	}
}

func TestReduceBalancedMaxOperator(t *testing.T) {
	// The rule condition only requires commutativity; try ⊕ = max.
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{3, 5, 6, 8, 11, 16} {
		xs := randScalars(rng, n)
		sr := algebra.OpSR(algebra.Max)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			return ReduceBalanced(pr, sr, algebra.Pair(xs[pr.Rank()]))
		})
		got := algebra.First(out[0])
		want := scanReduceRef(algebra.Max, xs)
		if !algebra.Equal(got, want) {
			t.Fatalf("p=%d: balanced max-reduce = %v, want %v", n, got, want)
		}
	}
}

func TestReduceBalancedLevels(t *testing.T) {
	// The balanced tree has ceil(log2 p) levels; with one transfer and
	// one combine per level on the critical path, the makespan is
	// bounded by ceil(log2 p)·(ts + 2m·tw + 4m) for op_sr on pairs.
	params := machine.Params{Ts: 100, Tw: 2}
	for _, p := range []int{2, 4, 6, 8, 16} {
		sr := algebra.OpSR(algebra.Add)
		mWords := 8
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return ReduceBalanced(pr, sr, algebra.Pair(Value(make(algebra.Vec, mWords))))
		})
		levels := math.Ceil(math.Log2(float64(p)))
		bound := levels * (params.Ts + 2*float64(mWords)*params.Tw + 4*float64(mWords))
		if res.Makespan > bound+1e-9 {
			t.Fatalf("p=%d: balanced reduce makespan %g exceeds bound %g", p, res.Makespan, bound)
		}
		if res.Makespan == 0 {
			t.Fatalf("p=%d: balanced reduce makespan is zero", p)
		}
	}
}

func TestAllReduceBalancedPow2Butterfly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 4, 8, 16, 32} {
		xs := randScalars(rng, n)
		sr := algebra.OpSR(algebra.Add)
		out, res := runSPMD(n, machine.Params{Ts: 50, Tw: 1}, func(pr Comm) Value {
			return AllReduceBalanced(pr, sr, algebra.Pair(xs[pr.Rank()]))
		})
		want := scanReduceRef(algebra.Add, xs)
		for r, v := range out {
			if !algebra.Equal(algebra.First(v), want) {
				t.Fatalf("p=%d: proc %d π₁ = %v, want %v", n, r, algebra.First(v), want)
			}
		}
		// Butterfly: log p phases of (ts + 2m·tw + 4m) with m = 1.
		logp := math.Log2(float64(n))
		wantT := logp * (50 + 2*1 + 4*1)
		if res.Makespan != wantT {
			t.Fatalf("p=%d: allreduce_balanced makespan = %g, want %g", n, res.Makespan, wantT)
		}
	}
}

func TestAllReduceBalancedNonPow2FallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{3, 5, 6, 7, 12, 13} {
		xs := randScalars(rng, n)
		sr := algebra.OpSR(algebra.Add)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			return AllReduceBalanced(pr, sr, algebra.Pair(xs[pr.Rank()]))
		})
		want := scanReduceRef(algebra.Add, xs)
		for r, v := range out {
			if !algebra.Equal(algebra.First(v), want) {
				t.Fatalf("p=%d: proc %d π₁ = %v, want %v", n, r, algebra.First(v), want)
			}
		}
	}
}

// TestFigure5 reproduces the balanced scan of Figure 5: input
// [2 5 9 1 2 6] quadrupled, op_ss with ⊕ = +; the first components end as
// [2 9 25 42 61 86] — the double scan of the input.
func TestFigure5(t *testing.T) {
	xs := scalars(2, 5, 9, 1, 2, 6)
	ss := algebra.OpSS(algebra.Add)
	out, _ := runSPMD(6, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
		return ScanBalanced(pr, ss, algebra.Quadruple(xs[pr.Rank()]))
	})
	want := []float64{2, 9, 25, 42, 61, 86}
	for r, v := range out {
		if !algebra.Equal(algebra.First(v), algebra.Scalar(want[r])) {
			t.Fatalf("proc %d π₁ = %v, want %g", r, algebra.First(v), want[r])
		}
	}
}

// TestFigure5Intermediates checks the phase-by-phase values of Figure 5 on
// processors 0 and 1 after the first two phases.
func TestFigure5Intermediates(t *testing.T) {
	ss := algebra.OpSS(algebra.Add)
	q := func(a, b, c, d float64) algebra.Tuple {
		return algebra.Tuple{algebra.Scalar(a), algebra.Scalar(b), algebra.Scalar(c), algebra.Scalar(d)}
	}
	// Phase 1, processors 0 (lower) and 1 (higher).
	lo := ss.Lo(q(2, 2, 2, 2), algebra.Tuple{algebra.Scalar(5), algebra.Scalar(5), algebra.Scalar(5)})
	if !algebra.Equal(lo, q(2, 9, 14, 7)) {
		t.Fatalf("phase-1 lower = %v, want (2 9 14 7)", lo)
	}
	hi := ss.Hi(q(5, 5, 5, 5), algebra.Tuple{algebra.Scalar(2), algebra.Scalar(2), algebra.Scalar(2)})
	if !algebra.Equal(hi, q(9, 9, 14, 14)) {
		t.Fatalf("phase-1 higher = %v, want (9 9 14 14)", hi)
	}
	// Phase 2, processors 0 (lower, partner 2) and 2 (higher, partner 0).
	lo2 := ss.Lo(q(2, 9, 14, 7), algebra.Tuple{algebra.Scalar(19), algebra.Scalar(20), algebra.Scalar(10)})
	if !algebra.Equal(lo2, q(2, 42, 68, 17)) {
		t.Fatalf("phase-2 lower = %v, want (2 42 68 17)", lo2)
	}
	hi2 := ss.Hi(q(9, 19, 20, 10), algebra.Tuple{algebra.Scalar(9), algebra.Scalar(14), algebra.Scalar(7)})
	if !algebra.Equal(hi2, q(25, 42, 68, 51)) {
		t.Fatalf("phase-2 higher = %v, want (25 42 68 51)", hi2)
	}
}

// seqScanScan is the sequential reference for scan(⊕); scan(⊕).
func seqScanScan(op *algebra.Op, xs []Value) []Value {
	return seqScan(op, seqScan(op, xs))
}

func TestScanBalancedMatchesDoubleScanAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, n := range testSizes {
		for trial := 0; trial < 3; trial++ {
			xs := randScalars(rng, n)
			ss := algebra.OpSS(algebra.Add)
			out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
				return ScanBalanced(pr, ss, algebra.Quadruple(xs[pr.Rank()]))
			})
			want := seqScanScan(algebra.Add, xs)
			for r := range out {
				if !algebra.Equal(algebra.First(out[r]), want[r]) {
					t.Fatalf("p=%d proc %d: π₁ = %v, want %v (inputs %v)",
						n, r, algebra.First(out[r]), want[r], xs)
				}
			}
		}
	}
}

func TestScanBalancedMaxOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{3, 6, 8, 13} {
		xs := randScalars(rng, n)
		ss := algebra.OpSS(algebra.Max)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			return ScanBalanced(pr, ss, algebra.Quadruple(xs[pr.Rank()]))
		})
		want := seqScanScan(algebra.Max, xs)
		for r := range out {
			if !algebra.Equal(algebra.First(out[r]), want[r]) {
				t.Fatalf("p=%d proc %d: π₁ = %v, want %v", n, r, algebra.First(out[r]), want[r])
			}
		}
	}
}

func TestScanBalancedCostPow2(t *testing.T) {
	// log p phases of ts + 3m·tw (three of four components shipped) plus
	// 8m on the higher side (Table 1: ts + m(3tw + 8)).
	params := machine.Params{Ts: 100, Tw: 2}
	mWords := 8
	for _, p := range []int{2, 4, 8, 16} {
		ss := algebra.OpSS(algebra.Add)
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return ScanBalanced(pr, ss, algebra.Quadruple(Value(make(algebra.Vec, mWords))))
		})
		logp := math.Log2(float64(p))
		want := logp * (params.Ts + float64(mWords)*(3*params.Tw+8))
		if res.Makespan != want {
			t.Fatalf("p=%d: scan_balanced makespan = %g, want %g", p, res.Makespan, want)
		}
	}
}

// TestFigure6 reproduces the comcast computation of Figure 6: b = 2,
// ⊕ = +, six processors end with [2 4 6 8 10 12] via bcast + repeat.
func TestFigure6(t *testing.T) {
	ops := algebra.OpCompBS(algebra.Add)
	out, _ := runSPMD(6, machine.Params{Ts: 10, Tw: 1}, func(pr Comm) Value {
		x := Value(algebra.Undef{})
		if pr.Rank() == 0 {
			x = algebra.Scalar(2)
		}
		return BcastRepeat(pr, 0, ops, x)
	})
	want := []float64{2, 4, 6, 8, 10, 12}
	for r, v := range out {
		if !algebra.Equal(v, algebra.Scalar(want[r])) {
			t.Fatalf("proc %d = %v, want %g", r, v, want[r])
		}
	}
}

// comcastRef is the sequential reference for bcast; scan(⊕).
func comcastRef(op *algebra.Op, b Value, n int) []Value {
	out := make([]Value, n)
	out[0] = b
	for i := 1; i < n; i++ {
		out[i] = op.Apply(out[i-1], b)
	}
	return out
}

func TestBcastRepeatAllSizes(t *testing.T) {
	for _, n := range testSizes {
		ops := algebra.OpCompBS(algebra.Add)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = algebra.Scalar(3)
			}
			return BcastRepeat(pr, 0, ops, x)
		})
		want := comcastRef(algebra.Add, algebra.Scalar(3), n)
		if !algebra.EqualLists(out, want) {
			t.Fatalf("p=%d: bcast;repeat = %v, want %v", n, out, want)
		}
	}
}

func TestComcastDoublingAllSizes(t *testing.T) {
	for _, n := range testSizes {
		ops := algebra.OpCompBS(algebra.Add)
		out, _ := runSPMD(n, machine.Params{}, func(pr Comm) Value {
			x := Value(algebra.Undef{})
			if pr.Rank() == 0 {
				x = algebra.Scalar(3)
			}
			return Comcast(pr, 0, ops, x)
		})
		want := comcastRef(algebra.Add, algebra.Scalar(3), n)
		if !algebra.EqualLists(out, want) {
			t.Fatalf("p=%d: comcast = %v, want %v", n, out, want)
		}
	}
}

func TestComcastVariantsAgreeBSS2(t *testing.T) {
	// Both comcast implementations compute bcast; scan(*); scan(+).
	for _, n := range []int{1, 2, 5, 6, 8, 13} {
		ops := algebra.OpCompBSS2(algebra.Mul, algebra.Add)
		b := algebra.Scalar(2)
		ref := make([]Value, n)
		pow := Value(b)
		acc := Value(b)
		ref[0] = acc
		for i := 1; i < n; i++ {
			pow = algebra.Mul.Apply(pow, b)
			acc = algebra.Add.Apply(acc, pow)
			ref[i] = acc
		}
		for name, impl := range map[string]func(pr Comm) Value{
			"bcast;repeat": func(pr Comm) Value {
				x := Value(algebra.Undef{})
				if pr.Rank() == 0 {
					x = b
				}
				return BcastRepeat(pr, 0, ops, x)
			},
			"comcast": func(pr Comm) Value {
				x := Value(algebra.Undef{})
				if pr.Rank() == 0 {
					x = b
				}
				return Comcast(pr, 0, ops, x)
			},
		} {
			out, _ := runSPMD(n, machine.Params{}, impl)
			if !algebra.EqualLists(out, ref) {
				t.Fatalf("p=%d %s = %v, want %v", n, name, out, ref)
			}
		}
	}
}

func TestBcastRepeatFasterThanComcast(t *testing.T) {
	// The paper's observation (§3.4, Figures 7–8): the cost-optimal
	// doubling comcast is slower than bcast + local repeat because it
	// ships the auxiliary variables.
	params := machine.Params{Ts: 1000, Tw: 1}
	mWords := 64
	for _, p := range []int{8, 16, 32, 64} {
		ops := algebra.OpCompBS(algebra.Add)
		mkInput := func(pr Comm) Value {
			if pr.Rank() == 0 {
				return Value(make(algebra.Vec, mWords))
			}
			return algebra.Undef{}
		}
		_, fast := runSPMD(p, params, func(pr Comm) Value {
			return BcastRepeat(pr, 0, ops, mkInput(pr))
		})
		_, slow := runSPMD(p, params, func(pr Comm) Value {
			return Comcast(pr, 0, ops, mkInput(pr))
		})
		if fast.Makespan >= slow.Makespan {
			t.Fatalf("p=%d: bcast;repeat (%g) not faster than comcast (%g)",
				p, fast.Makespan, slow.Makespan)
		}
	}
}

func TestGatherAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		m := machine.New(n, machine.Params{Ts: 5, Tw: 1})
		var rootGot []Value
		m.Run(func(proc *machine.Proc) {
			pr := World(proc)
			got := Gather(pr, 0, xs[pr.Rank()])
			if pr.Rank() == 0 {
				rootGot = got
			} else if got != nil {
				t.Errorf("p=%d: non-root proc %d got %v", n, pr.Rank(), got)
			}
		})
		if !algebra.EqualLists(rootGot, xs) {
			t.Fatalf("p=%d: gather = %v, want %v", n, rootGot, xs)
		}
	}
}

func TestGatherNonZeroRoot(t *testing.T) {
	xs := scalars(10, 20, 30, 40, 50)
	m := machine.New(5, machine.Params{})
	m.Run(func(proc *machine.Proc) {
		pr := World(proc)
		got := Gather(pr, 2, xs[pr.Rank()])
		if pr.Rank() == 2 && !algebra.EqualLists(got, xs) {
			t.Errorf("gather at root 2 = %v, want %v", got, xs)
		}
	})
}

func TestScatterAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		out, _ := runSPMD(n, machine.Params{Ts: 5, Tw: 1}, func(pr Comm) Value {
			var in []Value
			if pr.Rank() == 0 {
				in = xs
			}
			return Scatter(pr, 0, in)
		})
		if !algebra.EqualLists(out, xs) {
			t.Fatalf("p=%d: scatter = %v, want %v", n, out, xs)
		}
	}
}

func TestAllGatherAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range testSizes {
		xs := randScalars(rng, n)
		m := machine.New(n, machine.Params{Ts: 5, Tw: 1})
		outs := make([][]Value, n)
		m.Run(func(proc *machine.Proc) {
			pr := World(proc)
			outs[pr.Rank()] = AllGather(pr, xs[pr.Rank()])
		})
		for r, got := range outs {
			if !algebra.EqualLists(got, xs) {
				t.Fatalf("p=%d: allgather proc %d = %v, want %v", n, r, got, xs)
			}
		}
	}
}

func TestIterLogPApplications(t *testing.T) {
	// Iter applies op.F ceil(log2 p) times on processor 0 only.
	op := algebra.OpBR(algebra.Add)
	for _, n := range []int{1, 2, 4, 8, 16} {
		out, res := runSPMD(n, machine.Params{Ts: 100, Tw: 1}, func(pr Comm) Value {
			return Iter(pr, op, algebra.Scalar(1))
		})
		want := algebra.Scalar(float64(n))
		if !algebra.Equal(out[0], want) {
			t.Fatalf("p=%d: iter = %v, want %v", n, out[0], want)
		}
		for r := 1; r < n; r++ {
			if !algebra.IsUndef(out[r]) {
				t.Fatalf("p=%d: proc %d = %v, want undefined", n, r, out[r])
			}
		}
		// No communication at all: makespan = log p computes of m = 1.
		if want := math.Log2(float64(n)); res.Makespan != want {
			t.Fatalf("p=%d: iter makespan = %g, want %g", n, res.Makespan, want)
		}
	}
}

func TestLog2Helpers(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
		{6, 3, 2}, {7, 3, 2}, {8, 3, 3}, {9, 4, 3}, {1024, 10, 10},
	}
	for _, c := range cases {
		if got := log2Ceil(c.n); got != c.ceil {
			t.Errorf("log2Ceil(%d) = %d, want %d", c.n, got, c.ceil)
		}
		if got := log2Floor(c.n); got != c.floor {
			t.Errorf("log2Floor(%d) = %d, want %d", c.n, got, c.floor)
		}
	}
	if !IsPow2(8) || IsPow2(6) || IsPow2(0) {
		t.Error("IsPow2 misbehaves")
	}
}
