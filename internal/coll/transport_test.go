package coll

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/machine"
)

// These tests cover the raw link layer beneath the tag discipline — the
// Transport interface the chaos decorator builds its wire protocol on —
// and the subgroup communicator's forwarding of the ownership-moving
// transport (Mover), on both backends.

func TestWorldTransportRoundTrip(t *testing.T) {
	// The virtual machine's world communicator exposes the Transport
	// primitives: a TrySend lands as an untagged RecvAny, and TryRecvAny
	// only reports messages that have already arrived.
	m := machine.New(2, machine.Params{Ts: 1, Tw: 1})
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		tr, ok := c.(Transport)
		if !ok {
			t.Error("world communicator does not expose Transport")
			return
		}
		if proc.Rank() == 0 {
			if !tr.TrySend(1, algebra.Scalar(7), 42) {
				t.Error("TrySend failed on an empty link")
			}
			return
		}
		v, tag := tr.RecvAny(0)
		if !algebra.Equal(v, algebra.Scalar(7)) || tag != 42 {
			t.Errorf("RecvAny = %v tag %d, want 7 tag 42", v, tag)
		}
		if _, _, ok := tr.TryRecvAny(0); ok {
			t.Error("TryRecvAny reported a message on a drained link")
		}
	})
}

func TestTrySendBackpressureNative(t *testing.T) {
	// The native backend's mailboxes hold 4 messages per directed pair:
	// the 5th TrySend must refuse rather than block, and room must
	// reopen once the receiver drains — the invariant the fault-injecting
	// decorators' retry loops depend on.
	nm := backend.New(2)
	full := make(chan struct{})
	drained := make(chan struct{})
	sent := make(chan struct{})
	v := algebra.Value(algebra.Scalar(1))
	nm.Run(func(p *backend.Proc) {
		tr := Comm(p).(Transport)
		if p.Rank() == 0 {
			for i := 0; i < 4; i++ {
				if !tr.TrySend(1, v, 100+i) {
					t.Errorf("TrySend %d failed below the mailbox cap", i)
				}
			}
			if tr.TrySend(1, v, 104) {
				t.Error("5th TrySend succeeded on a full mailbox")
			}
			close(full)
			<-drained
			if !tr.TrySend(1, v, 105) {
				t.Error("TrySend failed after the receiver drained the mailbox")
			}
			close(sent)
			return
		}
		<-full
		for i := 0; i < 4; i++ {
			if _, tag := tr.RecvAny(0); tag != 100+i {
				t.Errorf("drained tag %d, want %d (FIFO per link)", tag, 100+i)
			}
		}
		if _, _, ok := tr.TryRecvAny(0); ok {
			t.Error("TryRecvAny reported a message on a drained mailbox")
		}
		close(drained)
		<-sent
		if _, tag, ok := tr.TryRecvAny(0); !ok || tag != 105 {
			t.Errorf("TryRecvAny after refill = tag %d ok %v, want 105 true", tag, ok)
		}
	})
}

func TestSubTagsOffsetFromParent(t *testing.T) {
	// Subgroup tag sequences live in a disjoint range from the parent's:
	// a sloppy caller mixing parent and subgroup collectives must hit a
	// tag-mismatch panic, never silent cross-talk.
	m := machine.New(2, machine.Params{Ts: 1, Tw: 1})
	m.Run(func(proc *machine.Proc) {
		c := World(proc)
		sc := Sub(c, []int{0, 1})
		if pt := c.NextTag(); pt >= 1<<20 {
			t.Errorf("parent tag %d collides with the subgroup range", pt)
		}
		if st := sc.NextTag(); st < 1<<20 {
			t.Errorf("subgroup tag %d not offset out of the parent range", st)
		}
	})
}

func TestSubMoverForwarding(t *testing.T) {
	// A subgroup over the native backend keeps the parent transport's
	// move fast path: SendMove through the sub reaches the translated
	// parent rank as an ownership transfer, and the sender's tuple is
	// poisoned exactly as on the world communicator.
	nm := backend.New(4)
	group := []int{1, 3} // sub rank 0 → world 1, sub rank 1 → world 3
	ft := algebra.NewFlatTuple(2, 4)
	for i := range ft.Data {
		ft.Data[i] = float64(i + 1)
	}
	nm.Run(func(p *backend.Proc) {
		if p.Rank() != 1 && p.Rank() != 3 {
			return
		}
		sc := Sub(Comm(p), group)
		mv, ok := sc.(Mover)
		if !ok {
			t.Error("subgroup communicator does not expose Mover")
			return
		}
		if sc.Rank() == 0 {
			mv.SendMove(1, ft, 8)
			if !ft.IsMoved() {
				t.Error("sub SendMove did not poison the sender's tuple")
			}
			return
		}
		v, owned := mv.RecvOwned(0, 8)
		if !owned {
			t.Error("sub RecvOwned reported a borrow after SendMove")
		}
		got, ok := v.(*algebra.FlatTuple)
		if !ok || got.IsMoved() {
			t.Errorf("adopted value = %T moved=%v, want owned FlatTuple", v, ok && got.IsMoved())
			return
		}
		got.Data[0] = 99 // new owner writes in place
	})
}

func TestSubMoverFallbackOnVirtual(t *testing.T) {
	// The virtual machine has no Mover transport: a subgroup's SendMove
	// degrades to a borrowing Send — the value stays readable at the
	// sender and RecvOwned reports a borrow — so collectives written
	// against sendOwned/recvOwned run unmodified there.
	m := machine.New(3, machine.Params{Ts: 1, Tw: 1})
	group := []int{0, 2}
	ft := algebra.NewFlatTuple(1, 4)
	ft.Data[0] = 5
	m.Run(func(proc *machine.Proc) {
		if proc.Rank() == 1 {
			return
		}
		sc := Sub(World(proc), group)
		mv := sc.(Mover)
		if sc.Rank() == 0 {
			mv.SendMove(1, ft, 3)
			if ft.IsMoved() {
				t.Error("fallback borrow poisoned the sender's tuple")
			}
			if got := ft.Comp(0)[0]; got != 5 {
				t.Errorf("sender's value changed after fallback send: %g", got)
			}
			return
		}
		v, owned := mv.RecvOwned(0, 3)
		if owned {
			t.Error("virtual-machine transport reported an ownership transfer")
		}
		if v.Words() != 4 {
			t.Errorf("received %d words, want 4", v.Words())
		}
	})
}
