package coll

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/machine"
)

func elementwiseMax(blocks []algebra.Vec) algebra.Vec {
	out := append(algebra.Vec(nil), blocks[0]...)
	for _, b := range blocks[1:] {
		for j := range out {
			if b[j] > out[j] {
				out[j] = b[j]
			}
		}
	}
	return out
}

func TestAllReduceRabenseifnerAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 13, 16} {
		for _, m := range []int{n, 2*n + 3, 4 * n} {
			blocks := randBlocks(rng, n, m)
			want := elementwiseSum(blocks)
			out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
				return AllReduceRabenseifner(pr, algebra.Add, blocks[pr.Rank()].Clone())
			})
			for r, v := range out {
				if !algebra.Equal(v, want) {
					t.Fatalf("p=%d m=%d: rabenseifner proc %d = %v, want %v", n, m, r, v, want)
				}
			}
		}
	}
}

func TestAllReduceRabenseifnerMax(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for _, n := range []int{4, 6} { // pow2 and folded
		m := 2 * n
		blocks := randBlocks(rng, n, m)
		want := elementwiseMax(blocks)
		out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return AllReduceRabenseifner(pr, algebra.Max, blocks[pr.Rank()].Clone())
		})
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("p=%d: max rabenseifner proc %d = %v, want %v", n, r, v, want)
			}
		}
	}
}

func TestAllReduceRingBiAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8, 12, 16} {
		for _, m := range []int{2 * n, 4*n + 5} {
			blocks := randBlocks(rng, n, m)
			want := elementwiseSum(blocks)
			out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
				return AllReduceRingBi(pr, algebra.Add, blocks[pr.Rank()].Clone())
			})
			for r, v := range out {
				if !algebra.Equal(v, want) {
					t.Fatalf("p=%d m=%d: ring-bi proc %d = %v, want %v", n, m, r, v, want)
				}
			}
		}
	}
}

func TestReducePipelinedAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for _, segs := range []int{1, 2, 3, 100} { // 100 clamps to m
			m := 10
			blocks := randBlocks(rng, n, m)
			want := elementwiseSum(blocks)
			out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
				return ReducePipelined(pr, algebra.Add, blocks[pr.Rank()].Clone(), segs)
			})
			for r, v := range out {
				if r == 0 {
					if !algebra.Equal(v, want) {
						t.Fatalf("p=%d k=%d: pipelined root = %v, want %v", n, segs, v, want)
					}
				} else if !algebra.Equal(v, blocks[r]) {
					t.Fatalf("p=%d k=%d: proc %d value changed: %v", n, segs, r, v)
				}
			}
		}
	}
}

// TestReducePipelinedMatchesReduce: bitwise agreement with the binomial
// tree on integer inputs, via ReduceWith on both paths.
func TestReducePipelinedMatchesReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	n, m := 6, 13
	blocks := randBlocks(rng, n, m)
	run := func(alg ReduceAlg) Value {
		out, _ := runSPMD(n, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return ReduceWith(pr, 0, algebra.Add, blocks[pr.Rank()].Clone(), alg, 4)
		})
		return out[0]
	}
	tree, pipe := run(ReduceBinomial), run(ReducePipelineAlg)
	if !algebra.Equal(tree, pipe) {
		t.Fatalf("pipelined %v differs from binomial %v", pipe, tree)
	}
}

// TestAllReduceWithNewAlgorithms: every portfolio member agrees bitwise
// with the butterfly through the AllReduceWith dispatcher.
func TestAllReduceWithNewAlgorithms(t *testing.T) {
	blocks := randBlocks(rand.New(rand.NewSource(306)), 6, 14)
	want := elementwiseSum(blocks)
	for _, alg := range []AllReduceAlg{AllReduceButterfly, AllReduceRingAlg, AllReduceRabenseifnerAlg, AllReduceRingBiAlg} {
		out, _ := runSPMD(6, machine.Params{Ts: 4, Tw: 1}, func(pr Comm) Value {
			return AllReduceWith(pr, algebra.Add, blocks[pr.Rank()].Clone(), alg)
		})
		for r, v := range out {
			if !algebra.Equal(v, want) {
				t.Fatalf("%s: proc %d = %v, want %v", alg, r, v, want)
			}
		}
	}
}

func TestAlgoShapePanics(t *testing.T) {
	cases := []struct {
		name string
		body func(c Comm)
	}{
		{"rabenseifner-short", func(c Comm) { AllReduceRabenseifner(c, algebra.Add, algebra.Vec{1, 2}) }},
		{"rabenseifner-scalar", func(c Comm) { AllReduceRabenseifner(c, algebra.Add, algebra.Scalar(1)) }},
		{"ring-bi-short", func(c Comm) { AllReduceRingBi(c, algebra.Add, algebra.Vec{1, 2, 3}) }},
		{"pipeline-scalar", func(c Comm) { ReducePipelined(c, algebra.Add, algebra.Scalar(1), 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			vm := machine.New(4, machine.Params{})
			vm.Run(func(proc *machine.Proc) { tc.body(World(proc)) })
		})
	}
}

func TestReduceWithNonZeroRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	vm := machine.New(4, machine.Params{})
	vm.Run(func(proc *machine.Proc) {
		ReduceWith(World(proc), 1, algebra.Add, make(algebra.Vec, 8), ReducePipelineAlg, 2)
	})
}

func TestReduceAlgString(t *testing.T) {
	if ReduceBinomial.String() != "butterfly" || ReducePipelineAlg.String() != "pipeline" {
		t.Fatal("algorithm names")
	}
	if !strings.Contains(ReduceAlg(9).String(), "9") {
		t.Fatal("unknown algorithm name")
	}
	if AllReduceRabenseifnerAlg.String() != "rabenseifner" || AllReduceRingBiAlg.String() != "ring-bi" {
		t.Fatal("extended allreduce names")
	}
}

// TestRabenseifnerBeatsButterflyOnLargeBlocks: the model-level claim —
// 2·log p start-ups but ~2m bandwidth — holds on the virtual machine.
func TestRabenseifnerBeatsButterflyOnLargeBlocks(t *testing.T) {
	params := machine.Params{Ts: 10, Tw: 4}
	p, m := 16, 1<<14
	run := func(alg AllReduceAlg) float64 {
		_, res := runSPMD(p, params, func(pr Comm) Value {
			return AllReduceWith(pr, algebra.Add, make(algebra.Vec, m), alg)
		})
		return res.Makespan
	}
	if rab, bf := run(AllReduceRabenseifnerAlg), run(AllReduceButterfly); rab >= bf {
		t.Fatalf("rabenseifner (%g) should beat butterfly (%g) on large blocks", rab, bf)
	}
}
