package coll

import (
	"fmt"

	"repro/internal/algebra"
)

// This file provides alternative implementations of the basic collectives.
// §4.1 notes that the cost estimation "must be repeated" if a different
// implementation is used — these variants make that concrete: the flat
// (linear) algorithms that early MPI implementations shipped, and the
// scatter/allgather broadcast of van de Geijn's global-combine work (the
// paper's reference [17]), which beats the binomial tree for large blocks
// by trading start-ups for bandwidth.

// BcastAlg selects a broadcast implementation.
type BcastAlg int

// Broadcast algorithm choices.
const (
	// BcastBinomial is the doubling tree of §4.1: log p start-ups,
	// log p · m words — the implementation the paper's estimates assume.
	BcastBinomial BcastAlg = iota
	// BcastLinear has the root send to each member in turn: p−1
	// start-ups on the root's critical path. The baseline flat tree.
	BcastLinear
	// BcastScatterAllGather splits the block into p chunks, scatters
	// them, and allgathers — van de Geijn's large-message broadcast
	// ([17]): about twice the start-ups of the binomial tree but only
	// ~2m words on the critical path instead of m·log p.
	BcastScatterAllGather
	// BcastPipelined streams the block through a rank chain in chunks:
	// (p−1+k) pipeline slots of (ts + (m/k)·tw) each, approaching m·tw
	// end to end for many chunks — the other classic large-message
	// broadcast, best when p is small relative to m/ts.
	BcastPipelined
)

func (a BcastAlg) String() string {
	switch a {
	case BcastBinomial:
		return "binomial"
	case BcastLinear:
		return "linear"
	case BcastScatterAllGather:
		return "scatter-allgather"
	case BcastPipelined:
		return "pipelined"
	}
	return fmt.Sprintf("BcastAlg(%d)", int(a))
}

// BcastWith broadcasts with the chosen algorithm.
// BcastScatterAllGather requires the value to be a Vec with at least one
// element per group member; other values fall back to the binomial tree.
func BcastWith(c Comm, root int, x Value, alg BcastAlg) Value {
	switch alg {
	case BcastLinear:
		return bcastLinear(c, root, x)
	case BcastScatterAllGather:
		return bcastScatterAllGather(c, root, x)
	case BcastPipelined:
		return bcastPipelined(c, root, x)
	default:
		return Bcast(c, root, x)
	}
}

// pipelineChunks is the chunk count of BcastPipelined. A fixed modest
// value keeps the start-up term (p−1+k)·ts bounded while the per-chunk
// transfer shrinks to m/k words.
const pipelineChunks = 16

func bcastPipelined(c Comm, root int, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	// Chain position: virtual rank order starting at the root.
	vr := (c.Rank() - root + n) % n
	prev := (c.Rank() - 1 + n) % n
	next := (c.Rank() + 1) % n
	var vec algebra.Vec
	if vr == 0 {
		v, ok := x.(algebra.Vec)
		if !ok || len(v) < pipelineChunks {
			panic("coll: BcastPipelined needs a Vec block with at least one element per chunk")
		}
		vec = v
		for k := 0; k < pipelineChunks; k++ {
			c.Send(next, chunkOf(vec, k), tag)
		}
		return x
	}
	var parts []algebra.Vec
	for k := 0; k < pipelineChunks; k++ {
		chunk := recvValue(c, prev, tag).(algebra.Vec)
		if vr != n-1 {
			c.Send(next, chunk, tag)
		}
		parts = append(parts, chunk)
	}
	out := make(algebra.Vec, 0)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// chunkOf slices chunk k of pipelineChunks from v, remainder-aware.
func chunkOf(v algebra.Vec, k int) algebra.Vec {
	per := len(v) / pipelineChunks
	rem := len(v) % pipelineChunks
	off := 0
	for i := 0; i < k; i++ {
		sz := per
		if i < rem {
			sz++
		}
		off += sz
	}
	sz := per
	if k < rem {
		sz++
	}
	return v[off : off+sz]
}

func bcastLinear(c Comm, root int, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	if c.Rank() == root {
		for dst := 0; dst < n; dst++ {
			if dst != root {
				c.Send(dst, x, tag)
			}
		}
		return x
	}
	return recvValue(c, root, tag)
}

func bcastScatterAllGather(c Comm, root int, x Value) Value {
	n := c.Size()
	if n == 1 {
		return x
	}
	var vec algebra.Vec
	if c.Rank() == root {
		v, ok := x.(algebra.Vec)
		if !ok || len(v) < n {
			// Signal the fallback to everyone with a zero-length chunk
			// protocol: simplest is to just binomial-broadcast. All
			// members must agree on the shape, so the root decides and
			// the choice must be determinable without communication:
			// callers must pass Vec blocks with len ≥ p on every rank
			// for this algorithm (checked below on all ranks).
			panic("coll: BcastScatterAllGather needs a Vec block with at least one element per member")
		}
		vec = v
	}
	// Chunk boundaries must be agreed on all ranks: ship the length
	// first? The paper's model has all ranks knowing the block size m
	// statically, so we mirror that: non-roots receive their chunk and
	// learn the layout from the allgather.
	var chunks []Value
	if c.Rank() == root {
		chunks = make([]Value, n)
		per := len(vec) / n
		rem := len(vec) % n
		off := 0
		for i := 0; i < n; i++ {
			sz := per
			if i < rem {
				sz++
			}
			chunks[i] = vec[off : off+sz]
			off += sz
		}
	}
	own := Scatter(c, root, chunks)
	parts := AllGather(c, own)
	out := make(algebra.Vec, 0)
	for _, p := range parts {
		out = append(out, p.(algebra.Vec)...)
	}
	return out
}

// ReduceLinear is the flat reduction: every member sends its value to the
// root, which combines in rank order — p−1 start-ups and combines on the
// root's critical path.
func ReduceLinear(c Comm, root int, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	if n == 1 {
		return x
	}
	if c.Rank() != root {
		c.Send(root, x, tag)
		return x
	}
	// Combine in rank order for non-commutative operators; the
	// accumulator moves to owned scratch on the first combine and stays
	// in place from then on.
	ar := arenaOf(c)
	var acc Value
	owned := false
	for r := 0; r < n; r++ {
		var v Value
		if r == root {
			v = x
		} else {
			v = recvValue(c, r, tag)
		}
		if acc == nil {
			acc = v
		} else {
			acc = op.ApplyInto(dstFor(ar, acc, owned, v), acc, v)
			owned = true
			c.Compute(op.Charge(acc))
		}
	}
	return fromWork(acc)
}

// ScanLinear is the ring-pipelined prefix: member i waits for member
// i−1's prefix, combines, and forwards — p−1 start-ups end to end, but
// only one combine per member. For short pipelines of large blocks it can
// beat the butterfly's log p · 2m computation term.
func ScanLinear(c Comm, op *algebra.Op, x Value) Value {
	tag := c.NextTag()
	n := c.Size()
	rank := c.Rank()
	ar := arenaOf(c)
	v, _ := toWork(ar, op, x)
	if rank > 0 {
		prev := recvValue(c, rank-1, tag)
		// v is about to be shipped downstream; combine into fresh scratch.
		v = op.ApplyInto(scratchLike(ar, prev), prev, v)
		c.Compute(op.Charge(v))
	}
	if rank < n-1 {
		c.Send(rank+1, v, tag)
	}
	return fromWork(v)
}
