package backend_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
)

// The native Proc must satisfy the communicator interface the collective
// library is written against — that is the whole premise of the backend.
var _ coll.Comm = (*backend.Proc)(nil)
var _ coll.Marker = (*backend.Proc)(nil)

func TestRunTimingAndResultShape(t *testing.T) {
	nm := backend.New(4)
	res := nm.Run(func(p *backend.Proc) {
		coll.AllReduce(p, algebra.Add, algebra.Scalar(float64(p.Rank())))
	})
	if len(res.Ranks) != 4 {
		t.Fatalf("Ranks has %d entries", len(res.Ranks))
	}
	max := time.Duration(0)
	for r, d := range res.Ranks {
		if d <= 0 {
			t.Errorf("rank %d elapsed %v, want > 0", r, d)
		}
		if d > max {
			max = d
		}
	}
	if res.Makespan != max {
		t.Fatalf("Makespan %v != max rank time %v", res.Makespan, max)
	}
}

func TestCounters(t *testing.T) {
	nm := backend.New(2)
	v := make(algebra.Vec, 10)
	res := nm.Run(func(p *backend.Proc) {
		if p.Rank() == 0 {
			p.Send(1, v, 7)
		} else {
			got := p.Recv(0, 7)
			if got.Words() != 10 {
				t.Errorf("received %d words, want 10", got.Words())
			}
		}
		p.Compute(3)
	})
	if res.Messages != 1 || res.Words != 10 {
		t.Fatalf("counted %d messages / %d words, want 1 / 10", res.Messages, res.Words)
	}
	if res.Ops != 6 {
		t.Fatalf("charged %g ops, want 6", res.Ops)
	}
}

func mustPanicRun(t *testing.T, name string, nm *backend.Machine, body func(p *backend.Proc)) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if e := recover(); e != nil {
				msg = e.(string)
			}
		}()
		nm.Run(body)
	}()
	if msg == "" {
		t.Fatalf("%s: expected the run to panic", name)
	}
	return msg
}

func TestTagMismatchPanics(t *testing.T) {
	msg := mustPanicRun(t, "tag mismatch", backend.New(2), func(p *backend.Proc) {
		if p.Rank() == 0 {
			p.Send(1, algebra.Scalar(1), 1)
		} else {
			p.Recv(0, 2)
		}
	})
	if !strings.Contains(msg, "expected tag 2") {
		t.Fatalf("panic message %q does not diagnose the tag", msg)
	}
}

func TestDeadlockTimeout(t *testing.T) {
	nm := backend.New(2)
	nm.Timeout = 50 * time.Millisecond
	msg := mustPanicRun(t, "deadlock", nm, func(p *backend.Proc) {
		if p.Rank() == 1 {
			p.Recv(0, 1) // rank 0 never sends
		}
	})
	if !strings.Contains(msg, "waiting for a message") {
		t.Fatalf("panic message %q does not diagnose the deadlock", msg)
	}
}

func TestBodyPanicIdentifiesRank(t *testing.T) {
	msg := mustPanicRun(t, "body panic", backend.New(4), func(p *backend.Proc) {
		if p.Rank() == 2 {
			panic("kaboom")
		}
	})
	if !strings.Contains(msg, "rank 2") || !strings.Contains(msg, "kaboom") {
		t.Fatalf("panic message %q does not identify the failing rank", msg)
	}
}

func TestSelfSendPanics(t *testing.T) {
	mustPanicRun(t, "self send", backend.New(2), func(p *backend.Proc) {
		if p.Rank() == 0 {
			p.Send(0, algebra.Scalar(1), 1)
		}
	})
}

func TestInjectedStartup(t *testing.T) {
	const delay = 200 * time.Microsecond
	nm := backend.New(2)
	nm.Startup = delay
	res := nm.Run(func(p *backend.Proc) {
		if p.Rank() == 0 {
			p.Send(1, algebra.Scalar(1), 1)
		} else {
			p.Recv(0, 1)
		}
	})
	if res.Makespan < delay {
		t.Fatalf("makespan %v shorter than the injected start-up %v", res.Makespan, delay)
	}
}

func TestMarksRecorded(t *testing.T) {
	nm := backend.New(2)
	res := nm.Run(func(p *backend.Proc) {
		p.Mark("phase-a")
		coll.AllReduce(p, algebra.Add, algebra.Scalar(1))
		p.Mark("phase-b")
	})
	for r, marks := range res.Marks {
		if len(marks) != 2 || marks[0].Label != "phase-a" || marks[1].Label != "phase-b" {
			t.Fatalf("rank %d marks = %v", r, marks)
		}
		if marks[1].At < marks[0].At {
			t.Fatalf("rank %d marks out of order: %v", r, marks)
		}
	}
}

func TestSingleRank(t *testing.T) {
	nm := backend.New(1)
	var got algebra.Value
	nm.Run(func(p *backend.Proc) {
		got = coll.Scan(p, algebra.Add, algebra.Scalar(42))
	})
	if !algebra.Equal(got, algebra.Scalar(42)) {
		t.Fatalf("singleton scan = %v", got)
	}
}

func TestNewValidatesSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	backend.New(0)
}
