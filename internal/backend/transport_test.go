package backend_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
)

// The native Proc must expose the ownership-moving transport the
// collectives' fast path is written against.
var _ coll.Mover = (*backend.Proc)(nil)

// transportModes are the two payload disciplines every transport test
// sweeps: the zero-copy default and the deep-copying isolation baseline.
var transportModes = []backend.TransportMode{backend.TransportZeroCopy, backend.TransportCopy}

// TestZeroCopySendAllocFree pins the zero-copy transport's core promise:
// a steady-state Send of a large block allocates nothing — only the
// reference crosses the mailbox — while the copying transport pays one
// allocation per message for the clone, O(m) words each. The count is a
// regression fence for the ownership-transfer fast path; it is skipped
// under the race detector, whose instrumentation allocates.
func TestZeroCopySendAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	const m = 1 << 16
	const runs = 64
	const done = 1 << 19 // sentinel tag ending the drain loop
	for _, mode := range transportModes {
		t.Run(mode.String(), func(t *testing.T) {
			nm := backend.New(2)
			nm.Timeout = 0 // bare channel ops: no timer arming in the loop
			nm.Transport = mode
			big := algebra.Value(make(algebra.Vec, m))
			ack := algebra.Value(algebra.Scalar(1))
			var allocs float64
			nm.Run(func(p *backend.Proc) {
				if p.Rank() == 0 {
					allocs = testing.AllocsPerRun(runs, func() {
						p.Send(1, big, 7)
						p.Recv(1, 7)
					})
					p.Send(1, ack, done)
					return
				}
				for {
					_, tag := p.RecvAny(0)
					if tag == done {
						return
					}
					p.Send(0, ack, tag)
				}
			})
			switch mode {
			case backend.TransportZeroCopy:
				if allocs != 0 {
					t.Fatalf("zero-copy Send of %d words: %.0f allocs/op, want 0", m, allocs)
				}
			case backend.TransportCopy:
				if allocs < 1 {
					t.Fatalf("copying Send of %d words: %.0f allocs/op, want ≥ 1 (the clone)", m, allocs)
				}
			}
		})
	}
}

// TestSendMovePoisonsSender checks the double-use guard of the ownership
// protocol on both transports: after SendMove the sender's flat tuple is
// poisoned — any access panics — while the receiver adopts an owned,
// writable value. Under zero-copy the very storage crosses; under copy
// the receiver gets an independent clone; the sender-side discipline is
// identical either way, so a program cannot pass on one transport and
// corrupt memory on the other.
func TestSendMovePoisonsSender(t *testing.T) {
	for _, mode := range transportModes {
		t.Run(mode.String(), func(t *testing.T) {
			nm := backend.New(2)
			nm.Transport = mode
			ft := algebra.NewFlatTuple(2, 8)
			for i := range ft.Data {
				ft.Data[i] = float64(i)
			}
			nm.Run(func(p *backend.Proc) {
				if p.Rank() == 0 {
					p.SendMove(1, ft, 5)
					if !ft.IsMoved() {
						t.Error("sender's tuple not marked moved after SendMove")
					}
					defer func() {
						r := recover()
						if r == nil {
							t.Error("accessing a moved-away FlatTuple did not panic")
						} else if !strings.Contains(fmt.Sprint(r), "ownership was moved") {
							t.Errorf("unexpected panic: %v", r)
						}
					}()
					ft.Comp(0) // must panic: the storage moved to rank 1
					return
				}
				v, owned := p.RecvOwned(0, 5)
				if !owned {
					t.Error("RecvOwned after SendMove reported a borrow")
				}
				got, ok := v.(*algebra.FlatTuple)
				if !ok {
					t.Fatalf("received %T, want *algebra.FlatTuple", v)
				}
				if got.IsMoved() {
					t.Error("receiver's tuple still carries the move poison")
				}
				aliased := &got.Data[0] == &ft.Data[0]
				if mode == backend.TransportZeroCopy && !aliased {
					t.Error("zero-copy move did not hand over the backing storage")
				}
				if mode == backend.TransportCopy && aliased {
					t.Error("copying move aliased the sender's storage")
				}
				got.Data[0] = 42 // the new owner may write in place
			})
		})
	}
}

// TestBorrowingSendStaysReadable is the counterpart: a plain Send is a
// borrow — the sender keeps reading its value afterwards on both
// transports.
func TestBorrowingSendStaysReadable(t *testing.T) {
	for _, mode := range transportModes {
		t.Run(mode.String(), func(t *testing.T) {
			nm := backend.New(2)
			nm.Transport = mode
			ft := algebra.NewFlatTuple(2, 4)
			ft.Data[0] = 3
			nm.Run(func(p *backend.Proc) {
				if p.Rank() == 0 {
					p.Send(1, ft, 9)
					if got := ft.Comp(0)[0]; got != 3 {
						t.Errorf("borrowed value changed under the sender: %g", got)
					}
					return
				}
				v, owned := p.RecvOwned(0, 9)
				if owned {
					t.Error("plain Send arrived with ownership")
				}
				if v.Words() != ft.Words() {
					t.Errorf("received %d words, want %d", v.Words(), ft.Words())
				}
			})
		})
	}
}

// TestTransportsBitwiseConform runs the same collectives on both
// transports and requires bitwise-equal results: the zero-copy ownership
// protocol is a pure optimization, never a semantic change.
func TestTransportsBitwiseConform(t *testing.T) {
	const p, m = 6, 32
	run := func(mode backend.TransportMode) ([]coll.Value, []coll.Value) {
		nm := backend.New(p)
		nm.Transport = mode
		in := make([]algebra.Value, p)
		for r := 0; r < p; r++ {
			vec := make(algebra.Vec, m)
			for i := range vec {
				vec[i] = float64((r*13+i*7)%11) / 3
			}
			in[r] = vec
		}
		red := make([]coll.Value, p)
		scn := make([]coll.Value, p)
		nm.Run(func(pr *backend.Proc) {
			r := pr.Rank()
			red[r] = coll.AllReduce(pr, algebra.Add, in[r])
			scn[r] = coll.Scan(pr, algebra.Add, in[r])
		})
		return red, scn
	}
	zcRed, zcScn := run(backend.TransportZeroCopy)
	cpRed, cpScn := run(backend.TransportCopy)
	if !algebra.EqualLists(zcRed, cpRed) {
		t.Errorf("allreduce differs across transports:\nzerocopy %v\ncopy     %v", zcRed, cpRed)
	}
	if !algebra.EqualLists(zcScn, cpScn) {
		t.Errorf("scan differs across transports:\nzerocopy %v\ncopy     %v", zcScn, cpScn)
	}
}

// BenchmarkTransportPingPong measures the per-message cost of shipping an
// m-word block under each transport: zero-copy is O(1) in m (a reference
// through the mailbox), copy is O(m) (the clone). SetBytes makes the
// bandwidth gap visible; ReportAllocs pins the allocation story the
// regression test above asserts.
func BenchmarkTransportPingPong(b *testing.B) {
	for _, mode := range transportModes {
		for _, m := range []int{1 << 10, 1 << 14, 1 << 17} {
			b.Run(fmt.Sprintf("%s/m=%d", mode, m), func(b *testing.B) {
				nm := backend.New(2)
				nm.Timeout = 0
				nm.Transport = mode
				big := algebra.Value(make(algebra.Vec, m))
				ack := algebra.Value(algebra.Scalar(1))
				b.SetBytes(int64(m * 8))
				b.ReportAllocs()
				b.ResetTimer()
				nm.Run(func(p *backend.Proc) {
					for i := 0; i < b.N; i++ {
						if p.Rank() == 0 {
							p.Send(1, big, i)
							p.Recv(1, i)
						} else {
							p.Recv(0, i)
							p.Send(0, ack, i)
						}
					}
				})
			})
		}
	}
}
