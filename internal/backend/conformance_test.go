// Conformance harness: every collective of package coll and every
// optimization rule of package rules must produce identical results on the
// virtual-time machine and on the native goroutine backend. Both backends
// execute the same algorithms in the same combining order, so the
// comparison is exact equality, not approximate — any divergence is a
// backend bug, not floating-point noise.
package backend_test

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/machine"
	"repro/internal/rules"
	"repro/internal/term"
)

// groupSizes covers the degenerate group, powers of two (the butterfly
// paths) and non-powers of two (the fold/unfold and balanced-tree paths).
var groupSizes = []int{1, 2, 3, 4, 5, 7, 8, 12, 16}

// blocks builds one deterministic m-word block per rank, with small
// integer entries so long operator chains stay exactly representable.
func blocks(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for r := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*7+j*3)%5 + 1)
		}
		in[r] = b
	}
	return in
}

// onBoth runs the same SPMD body once on each backend with identical
// per-rank inputs and returns the two output lists.
func onBoth(p int, in []algebra.Value, body func(c coll.Comm, x algebra.Value) algebra.Value) (virtual, native []algebra.Value) {
	virtual = make([]algebra.Value, p)
	vm := machine.New(p, machine.Params{Ts: 100, Tw: 1})
	vm.Run(func(pr *machine.Proc) {
		c := coll.World(pr)
		virtual[c.Rank()] = body(c, in[c.Rank()])
	})
	native = make([]algebra.Value, p)
	nm := backend.New(p)
	nm.Run(func(c *backend.Proc) {
		native[c.Rank()] = body(c, in[c.Rank()])
	})
	return virtual, native
}

// wrap lifts a []Value result (gather and friends) into a single
// comparable Value: nil becomes Undef, a slice becomes a Tuple.
func wrap(vs []algebra.Value) algebra.Value {
	if vs == nil {
		return algebra.Undef{}
	}
	return algebra.Tuple(vs)
}

// collectiveCases enumerates every collective operation of package coll,
// each as a body mapping the rank's input block to a comparable output.
func collectiveCases(p int) map[string]func(c coll.Comm, x algebra.Value) algebra.Value {
	root := (p - 1) / 2 // a non-trivial root exercises the rank rotation
	cases := map[string]func(c coll.Comm, x algebra.Value) algebra.Value{
		"bcast": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Bcast(c, 0, x)
		},
		"bcast/rotated-root": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Bcast(c, root, x)
		},
		"reduce": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Reduce(c, 0, algebra.Add, x)
		},
		"reduce/rotated-root": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Reduce(c, root, algebra.Mul, x)
		},
		"allreduce": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.AllReduce(c, algebra.Add, x)
		},
		"scan": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Scan(c, algebra.Add, x)
		},
		"reduce_balanced": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.ReduceBalanced(c, algebra.OpSR(algebra.Add), algebra.Pair(x))
		},
		"allreduce_balanced": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.AllReduceBalanced(c, algebra.OpSR(algebra.Add), algebra.Pair(x))
		},
		"scan_balanced": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.ScanBalanced(c, algebra.OpSS(algebra.Add), algebra.Quadruple(x))
		},
		"comcast": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Comcast(c, 0, algebra.OpCompBS(algebra.Add), x)
		},
		"bcast_repeat": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.BcastRepeat(c, 0, algebra.OpCompBS(algebra.Add), x)
		},
		"gather": func(c coll.Comm, x algebra.Value) algebra.Value {
			return wrap(coll.Gather(c, root, x))
		},
		"allgather": func(c coll.Comm, x algebra.Value) algebra.Value {
			return wrap(coll.AllGather(c, x))
		},
		"scatter": func(c coll.Comm, x algebra.Value) algebra.Value {
			var parts []algebra.Value
			if c.Rank() == 0 {
				parts = make([]algebra.Value, c.Size())
				for i := range parts {
					parts[i] = algebra.Scalar(i*10 + 1)
				}
			}
			return coll.Scatter(c, 0, parts)
		},
		"alltoall": func(c coll.Comm, x algebra.Value) algebra.Value {
			parts := make([]algebra.Value, c.Size())
			for i := range parts {
				parts[i] = algebra.Scalar(c.Rank()*100 + i)
			}
			return wrap(coll.AllToAll(c, parts))
		},
		"iter": func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.Iter(c, algebra.OpBR(algebra.Add), x)
		},
	}
	if p > 1 {
		// The ring algorithms need at least one vector element per member;
		// the m=16 blocks below satisfy that up to p=16.
		cases["allreduce_ring"] = func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.AllReduceWith(c, algebra.Add, x, coll.AllReduceRingAlg)
		}
		cases["reduce_scatter"] = func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.ReduceScatter(c, algebra.Add, x)
		}
		cases["allreduce_rabenseifner"] = func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.AllReduceWith(c, algebra.Add, x, coll.AllReduceRabenseifnerAlg)
		}
		cases["reduce_pipelined"] = func(c coll.Comm, x algebra.Value) algebra.Value {
			return coll.ReduceWith(c, 0, algebra.Add, x, coll.ReducePipelineAlg, 3)
		}
		if 2*p <= 16 {
			// ring-bi needs two vector elements per member.
			cases["allreduce_ring_bi"] = func(c coll.Comm, x algebra.Value) algebra.Value {
				return coll.AllReduceWith(c, algebra.Add, x, coll.AllReduceRingBiAlg)
			}
		}
	}
	return cases
}

// TestCollectivesConform runs every collective on both backends across
// power-of-two and non-power-of-two group sizes and asserts identical
// per-rank results.
func TestCollectivesConform(t *testing.T) {
	for _, p := range groupSizes {
		in := blocks(p, 16)
		for name, body := range collectiveCases(p) {
			t.Run(fmt.Sprintf("p=%d/%s", p, name), func(t *testing.T) {
				virtual, native := onBoth(p, in, body)
				for r := range virtual {
					if !algebra.Equal(virtual[r], native[r]) {
						t.Fatalf("rank %d: virtual %v, native %v", r, virtual[r], native[r])
					}
				}
			})
		}
	}
}

// TestRulesConform runs the left-hand side and the rewritten right-hand
// side of all eleven optimization rules on both backends and asserts that
// (a) each side's results agree exactly across backends and (b) both
// sides, executed natively, agree with the functional semantics modulo
// undetermined positions — the paper's semantic equality, now established
// on real goroutines too. (Non-root reduce positions are don't-cares in
// the semantics, so the two machine executions are compared through it
// rather than against each other.) The Local rules require a power-of-two
// machine, so non-powers of two are exercised only for the other classes.
func TestRulesConform(t *testing.T) {
	for _, pat := range exper.Patterns() {
		r, ok := rules.ByName(pat.Rule)
		if !ok {
			t.Fatalf("no rule named %s", pat.Rule)
		}
		sizes := []int{4, 8}
		if r.Class != "Local" {
			sizes = append(sizes, 3, 6)
		}
		for _, p := range sizes {
			eng := rules.NewEngine()
			eng.Rules = []rules.Rule{r}
			eng.Env.P = p
			opt, apps := eng.Optimize(pat.LHS.Term())
			if len(apps) != 1 {
				t.Fatalf("rule %s did not apply at p=%d", pat.Rule, p)
			}
			rhs := core.FromTerm(opt)
			for _, m := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/p=%d/m=%d", pat.Rule, p, m), func(t *testing.T) {
					in := blocks(p, m)
					mach := core.Machine{Ts: 100, Tw: 1, P: p, M: m}
					lhsV, _ := pat.LHS.Run(mach, in)
					lhsN, _ := pat.LHS.RunNative(p, in)
					rhsV, _ := rhs.Run(mach, in)
					rhsN, _ := rhs.RunNative(p, in)
					want := term.Eval(pat.LHS.Term(), in)
					for rank := 0; rank < p; rank++ {
						if !algebra.Equal(lhsV[rank], lhsN[rank]) {
							t.Fatalf("LHS rank %d: virtual %v, native %v", rank, lhsV[rank], lhsN[rank])
						}
						if !algebra.Equal(rhsV[rank], rhsN[rank]) {
							t.Fatalf("RHS rank %d: virtual %v, native %v", rank, rhsV[rank], rhsN[rank])
						}
						if !algebra.EqualModuloUndef(lhsN[rank], want[rank]) {
							t.Fatalf("native LHS disagrees with semantics at rank %d: got %v, want %v",
								rank, lhsN[rank], want[rank])
						}
						if !algebra.EqualModuloUndef(rhsN[rank], want[rank]) {
							t.Fatalf("rule %s not semantics-preserving natively at rank %d: got %v, want %v",
								pat.Rule, rank, rhsN[rank], want[rank])
						}
					}
				})
			}
		}
	}
}

// TestNativeCountersMatchVirtual cross-checks the two backends' volume
// accounting: an identical program must move the same number of messages
// and words on either machine (time differs, traffic must not).
func TestNativeCountersMatchVirtual(t *testing.T) {
	for _, p := range []int{2, 5, 8} {
		in := blocks(p, 8)
		prog := core.NewProgram().Bcast().Scan(algebra.Add).AllReduce(algebra.Add)
		_, vres := prog.Run(core.Machine{Ts: 100, Tw: 1, P: p}, in)
		_, nres := prog.RunNative(p, in)
		if vres.Messages != nres.Messages || vres.Words != nres.Words {
			t.Fatalf("p=%d: virtual %d msgs/%d words, native %d msgs/%d words",
				p, vres.Messages, vres.Words, nres.Messages, nres.Words)
		}
		if vres.Ops != nres.Ops {
			t.Fatalf("p=%d: virtual charged %g ops, native %g", p, vres.Ops, nres.Ops)
		}
	}
}
