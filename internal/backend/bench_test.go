package backend_test

import (
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
)

// BenchmarkPingPong measures the per-message cost of the native backend's
// receive path: two ranks bounce a scalar back and forth, so the numbers
// are dominated by Send/Recv plus the receive-timeout machinery. Before
// the reusable per-rank timer, every Recv paid a time.After allocation
// (timer + channel) per message; with the cached timer the steady-state
// receive allocates nothing, which b.ReportAllocs makes visible.
func BenchmarkPingPong(b *testing.B) {
	const msgs = 1024
	run := func(b *testing.B, m *backend.Machine) {
		b.ReportAllocs()
		v := algebra.Value(algebra.Scalar(1))
		for i := 0; i < b.N; i++ {
			m.Run(func(p *backend.Proc) {
				for k := 0; k < msgs; k++ {
					if p.Rank() == 0 {
						p.Send(1, v, k)
						p.Recv(1, k)
					} else {
						p.Recv(0, k)
						p.Send(0, v, k)
					}
				}
			})
		}
	}
	b.Run("timeout", func(b *testing.B) {
		m := backend.New(2) // DefaultTimeout: every Recv arms the timer
		run(b, m)
	})
	b.Run("no-timeout", func(b *testing.B) {
		m := backend.New(2)
		m.Timeout = 0 // bare channel receive, the floor
		run(b, m)
	})
}

// BenchmarkNativeAllReduce exercises a full collective on the cached
// machine: after the first run warms the mailboxes and arenas, the
// combining rounds of the butterfly draw all scratch from the per-rank
// arenas.
func BenchmarkNativeAllReduce(b *testing.B) {
	const p, m = 8, 1024
	mach := backend.New(p)
	mach.Timeout = 10 * time.Second
	in := make([]algebra.Value, p)
	for r := 0; r < p; r++ {
		vec := make(algebra.Vec, m)
		for i := range vec {
			vec[i] = float64(r + i)
		}
		in[r] = vec
	}
	op := algebra.Add
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach.Run(func(pr *backend.Proc) {
			coll.AllReduce(pr, op, in[pr.Rank()])
		})
	}
}
