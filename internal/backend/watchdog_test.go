// Deadlock watchdog tests: a hand-planted deadlock must end in a
// per-rank blocked-on report — rank, direction, peer, tag, wait duration
// — instead of a hang, and the receive timeout must identify the blocked
// edge. These are the diagnostics the chaos harness relies on when a
// protocol bug wedges a run.
package backend_test

import (
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/backend"
)

// mustPanic runs f and returns the recovered panic message, failing the
// test if f returns normally.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if e := recover(); e != nil {
				msg = fmt.Sprint(e)
			}
		}()
		f()
		t.Fatal("expected a panic, got a normal return")
	}()
	return msg
}

// TestWatchdogDiagnosesRecvCycle plants a three-rank receive cycle —
// every rank waits for its successor, nobody sends — with no receive
// timeout, and asserts the watchdog converts the hang into the full
// per-rank diagnosis.
func TestWatchdogDiagnosesRecvCycle(t *testing.T) {
	m := backend.New(3)
	m.Timeout = 0 // the watchdog alone must catch it
	m.Watchdog = 100 * time.Millisecond
	start := time.Now()
	msg := mustPanic(t, func() {
		m.Run(func(p *backend.Proc) {
			p.Recv((p.Rank()+1)%3, 7)
		})
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire on a 100ms threshold", elapsed)
	}
	if !strings.Contains(msg, "backend: deadlock: every unfinished rank blocked") {
		t.Fatalf("missing deadlock header in:\n%s", msg)
	}
	for r := 0; r < 3; r++ {
		line := regexp.MustCompile(fmt.Sprintf(
			`rank %d: blocked receiving from rank %d \(tag 7\) for \d+`, r, (r+1)%3))
		if !line.MatchString(msg) {
			t.Fatalf("no blocked-on line for rank %d in:\n%s", r, msg)
		}
	}
}

// TestWatchdogDiagnosesSendDeadlock wedges the send side: one-slot
// mailboxes and two ranks that only send. Both block in put, and the
// report must say so, naming the peer.
func TestWatchdogDiagnosesSendDeadlock(t *testing.T) {
	m := backend.New(2)
	m.Timeout = 0
	m.MailboxCap = 1
	m.Watchdog = 100 * time.Millisecond
	msg := mustPanic(t, func() {
		m.Run(func(p *backend.Proc) {
			for i := 0; i < 10; i++ {
				p.Send(1-p.Rank(), algebra.Scalar(1), 3)
			}
		})
	})
	for r := 0; r < 2; r++ {
		line := regexp.MustCompile(fmt.Sprintf(
			`rank %d: blocked sending to rank %d \(tag 3\) for \d+`, r, 1-r))
		if !line.MatchString(msg) {
			t.Fatalf("no send-blocked line for rank %d in:\n%s", r, msg)
		}
	}
}

// TestWatchdogReportsFinishedRanks deadlocks two ranks while a third
// finishes cleanly; the report must distinguish the states.
func TestWatchdogReportsFinishedRanks(t *testing.T) {
	m := backend.New(3)
	m.Timeout = 0
	m.Watchdog = 100 * time.Millisecond
	msg := mustPanic(t, func() {
		m.Run(func(p *backend.Proc) {
			if p.Rank() == 2 {
				return
			}
			p.Recv(1-p.Rank(), 9)
		})
	})
	if !strings.Contains(msg, "rank 2: finished") {
		t.Fatalf("finished rank not reported in:\n%s", msg)
	}
	if !regexp.MustCompile(`rank 0: blocked receiving from rank 1 \(tag 9\)`).MatchString(msg) {
		t.Fatalf("rank 0 blocked-on line missing in:\n%s", msg)
	}
}

// TestWatchdogSilentOnHealthyRuns runs a normal program with the
// watchdog armed and checks it neither fires nor leaves goroutines
// behind.
func TestWatchdogSilentOnHealthyRuns(t *testing.T) {
	before := runtime.NumGoroutine()
	m := backend.New(4)
	m.Watchdog = 50 * time.Millisecond
	for i := 0; i < 3; i++ {
		m.Run(func(p *backend.Proc) {
			tag := p.NextTag()
			next, prev := (p.Rank()+1)%4, (p.Rank()+3)%4
			p.Send(next, algebra.Scalar(float64(p.Rank())), tag)
			if got := p.Recv(prev, tag); !algebra.Equal(got, algebra.Scalar(float64(prev))) {
				panic(fmt.Sprintf("rank %d got %v from %d", p.Rank(), got, prev))
			}
			time.Sleep(120 * time.Millisecond) // idle but not blocked: must not trip the watchdog
		})
	}
	waitForGoroutines(t, before)
}

// TestWatchdogAbortLeavesNoGoroutines recovers from a watchdog abort and
// verifies every rank goroutine and the monitor are gone.
func TestWatchdogAbortLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	m := backend.New(4)
	m.Timeout = 0
	m.Watchdog = 80 * time.Millisecond
	mustPanic(t, func() {
		m.Run(func(p *backend.Proc) {
			p.Recv((p.Rank()+1)%4, 1)
		})
	})
	waitForGoroutines(t, before)
}

func waitForGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: limit %d, now %d\n%s", limit, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecvTimeoutDiagnosis pins the enriched receive-timeout message: it
// must name the waiting rank, the peer, the tag, the elapsed bound and
// the traffic counters, so a wedged run is debuggable from the panic
// alone.
func TestRecvTimeoutDiagnosis(t *testing.T) {
	m := backend.New(2)
	m.Timeout = 50 * time.Millisecond
	msg := mustPanic(t, func() {
		m.Run(func(p *backend.Proc) {
			if p.Rank() == 0 {
				p.Recv(1, 5) // rank 1 never sends
			}
		})
	})
	want := regexp.MustCompile(
		`backend: rank 0 timed out after 50ms waiting for a message from rank 1 \(tag 5\); 0 messages received, 0 sent so far`)
	if !want.MatchString(msg) {
		t.Fatalf("timeout diagnosis mismatch:\n%s", msg)
	}
}

// TestExchangeTimeoutDiagnosis does the same for the exchange direction.
func TestExchangeTimeoutDiagnosis(t *testing.T) {
	m := backend.New(3)
	m.Timeout = 50 * time.Millisecond
	msg := mustPanic(t, func() {
		m.Run(func(p *backend.Proc) {
			if p.Rank() == 0 {
				p.Exchange(2, algebra.Scalar(1), 4) // rank 2 never answers
			}
		})
	})
	want := regexp.MustCompile(
		`backend: rank 0 timed out after 50ms deadlocked in exchange with rank 2 \(tag 4\)`)
	if !want.MatchString(msg) {
		t.Fatalf("exchange timeout diagnosis mismatch:\n%s", msg)
	}
}
