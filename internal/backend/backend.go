// Package backend is the native execution backend: a second implementation
// of the coll.Comm communicator in which group members are plain goroutines
// on the host, point-to-point messages are real channel transfers of
// algebra values, and time is wall-clock — per-rank time.Now deltas from a
// barrier-synchronized start — instead of the virtual clocks of package
// machine.
//
// The two backends answer different questions. The virtual machine runs
// the data flow for real but *times* it with the §4.1 cost-model
// arithmetic, so its makespans are deterministic and comparable with the
// paper's closed-form estimates. The native backend times nothing and
// simulates nothing: the arithmetic inside the operators is the
// computation, channel rendezvous and goroutine scheduling are the message
// start-ups, and the measured makespan is the host's actual cost of the
// program. Because every collective in package coll is written against
// coll.Comm, the whole collective library — and every optimization-rule
// rewrite — runs unmodified on either backend, which is what makes the
// conformance harness in this package possible.
//
// # Timing methodology
//
// Every Run follows the same discipline, shared by the experiment
// harness (exper.NativeRunner) and the calibration probes (package
// calib):
//
//   - Barrier start. All P rank goroutines are spawned first and wait on
//     a barrier; the clock of every rank starts only when all ranks are
//     released together, so goroutine spawn cost never pollutes the
//     measurement and no rank gets a head start.
//   - Per-rank elapsed time. Each rank records its own time.Now delta
//     from the barrier release to the end of its program, giving a
//     per-rank profile (Result.Ranks).
//   - Makespan. The run's reported cost is the maximum per-rank elapsed
//     time — the finish of the last rank — matching how the §4.1 model
//     prices a collective by its slowest processor.
//
// Single runs of short programs sit near timer resolution and scheduler
// noise; callers that need stable numbers iterate the operation inside
// one Run to amortize the timer, repeat the run several times, and take
// the minimum as the undisturbed estimate. NativeRunner and the calib
// probes both do exactly this.
package backend

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
)

// DefaultTimeout bounds how long a rank may block in Recv before the run
// is aborted with a deadlock diagnosis.
const DefaultTimeout = 30 * time.Second

// TransportMode selects how a payload crosses the mailbox.
type TransportMode int

const (
	// TransportZeroCopy (the default) hands the value reference through
	// the channel without copying. Borrowing sends (Send, Exchange) freeze
	// the value under the owned-scratch discipline; moving sends
	// (SendMove) additionally transfer write ownership to the receiver,
	// making a large-m transfer O(1) regardless of block size.
	TransportZeroCopy TransportMode = iota
	// TransportCopy deep-copies every payload at the send site, modeling a
	// memory-isolation boundary (as a multi-process transport forces on
	// every message) in-process. It is the O(m) baseline the zero-copy
	// benchmarks and conformance runs compare against.
	TransportCopy
)

// String names the mode as the collbench -transport flag spells it.
func (t TransportMode) String() string {
	switch t {
	case TransportZeroCopy:
		return "zerocopy"
	case TransportCopy:
		return "copy"
	}
	return fmt.Sprintf("TransportMode(%d)", int(t))
}

// ParseTransport maps a -transport flag value to its mode.
func ParseTransport(s string) (TransportMode, error) {
	switch s {
	case "zerocopy":
		return TransportZeroCopy, nil
	case "copy":
		return TransportCopy, nil
	}
	return 0, fmt.Errorf("unknown transport %q (want zerocopy or copy)", s)
}

// Machine is a native shared-memory machine of P ranks. Create one with
// New, then call Run to execute an SPMD program; a Machine runs one
// program at a time.
type Machine struct {
	// P is the number of ranks (goroutines).
	P int
	// Timeout bounds how long a rank may block in Recv or Exchange
	// before the run is aborted with a deadlock diagnosis. Zero means no
	// bound (and removes a per-receive timer, which matters in tight
	// benchmarks).
	Timeout time.Duration
	// Startup, when non-zero, makes every sender busy-wait that long
	// before enqueuing a message — an injected per-message start-up for
	// emulating networks where start-up dominates even more than
	// goroutine scheduling already does. Zero (the default) measures the
	// host's bare channel cost.
	Startup time.Duration
	// MailboxCap overrides the buffer depth per directed rank pair. Zero
	// means the default (4), which is enough for every collective in
	// package coll; fault-injecting decorators that put retransmissions
	// and acknowledgements on the same links want more headroom.
	MailboxCap int
	// Transport selects the payload-passing discipline: TransportZeroCopy
	// (the default) hands references through the mailbox, TransportCopy
	// deep-copies every payload at the send site. See TransportMode.
	Transport TransportMode
	// Watchdog, when non-zero, arms the deadlock watchdog: a monitor
	// that fires when every unfinished rank has been blocked in the same
	// send or receive for at least this long — a quiesced-but-unfinished
	// run. Instead of hanging until Timeout (or forever), the run is
	// aborted with a per-rank blocked-on report naming each rank's peer,
	// tag, direction and wait duration. The watchdog costs two atomic
	// stores per blocking operation, so it is off by default.
	Watchdog time.Duration

	procs []*Proc
	// abort is closed by the watchdog to cancel every blocked rank;
	// wdReport carries its report to Run. Both are per-run state.
	abort    chan struct{}
	wdReport string
	wdWG     sync.WaitGroup
}

// New creates a native machine with p ranks and the default timeout.
func New(p int) *Machine {
	if p < 1 {
		panic(fmt.Sprintf("backend: need at least 1 rank, got %d", p))
	}
	return &Machine{P: p, Timeout: DefaultTimeout}
}

// packet is one in-flight message. Unlike the virtual machine's packet it
// carries no departure clock — arrival order and wall time are the truth.
type packet struct {
	value algebra.Value
	tag   int
	// owned marks an ownership-transferring message: the receiver may
	// write the value in place (it is the new owner); the sender has
	// relinquished it. Borrowing sends leave it false — the value is a
	// shared, frozen reference.
	owned bool
}

// mailboxCap is the default buffer depth per directed rank pair. As on the
// virtual machine, the collectives never have more than a couple of
// outstanding messages per pair.
const mailboxCap = 4

func (m *Machine) mailboxCap() int {
	if m.MailboxCap > 0 {
		return m.MailboxCap
	}
	return mailboxCap
}

// waitInfo is one rank's published blocking state, read by the watchdog.
// A waitInfo is immutable once published; a rank publishes a fresh one on
// every blocking slow path and clears the pointer when it unblocks.
type waitInfo struct {
	// dir is the blocked direction: "receiving from", "sending to" or
	// "deadlocked in exchange with".
	dir string
	// peer and tag identify the transfer being waited on.
	peer, tag int
	// since is when the rank started waiting.
	since time.Time
}

// StageMark is one stage-boundary annotation on a rank's wall-clock
// timeline, recorded by Mark (the generic executor marks every program
// stage).
type StageMark struct {
	// Label names the stage.
	Label string
	// At is the offset from the barrier-synchronized start.
	At time.Duration
}

// Proc is one native rank. It implements coll.Comm, so every collective of
// package coll runs on it directly. Its methods must only be called from
// the goroutine running that rank's SPMD body.
type Proc struct {
	rank int
	m    *Machine
	// in[src] lazily materializes the channel carrying messages from rank
	// src to this rank, so Run setup is O(messages actually exchanged)
	// rather than O(P²) channel allocations per run.
	in []atomic.Pointer[chan packet]
	// timer is the reusable receive-timeout timer; a per-take time.After
	// would allocate a fresh timer (and leak it until expiry) on every
	// receive.
	timer *time.Timer
	// arena is the rank's scratch-buffer pool, reset at the start of every
	// run; package coll's collectives draw their combining buffers from it.
	arena *algebra.Arena
	// start is the barrier-synchronized run start, shared by all ranks.
	start time.Time
	// elapsed is the rank's wall time from start to body return.
	elapsed time.Duration
	// sent/recvd/sentWords/ops mirror the virtual machine's counters so
	// both backends report comparable volume figures.
	sent, recvd int
	sentWords   int
	ops         float64
	tagseq      int
	marks       []StageMark
	// wait is the rank's published blocking state (nil while running);
	// finished flips when the rank's body returns. Both are read by the
	// deadlock watchdog and only written by the rank's own goroutine.
	wait     atomic.Pointer[waitInfo]
	finished atomic.Bool
}

// mailbox returns the channel carrying messages from src to p, creating it
// on first use. Sender and receiver may race to create the same pair's
// channel; the compare-and-swap makes the first one win and both see it.
func (p *Proc) mailbox(src int) chan packet {
	if ch := p.in[src].Load(); ch != nil {
		return *ch
	}
	ch := make(chan packet, p.m.mailboxCap())
	if p.in[src].CompareAndSwap(nil, &ch) {
		return ch
	}
	return *p.in[src].Load()
}

// ScratchArena returns the rank's scratch-buffer arena. The collectives in
// package coll draw their combining buffers from it, so the log-p rounds of
// a reduction or scan reuse storage across runs instead of allocating.
// Values backed by the arena stay valid until the machine's next Run.
func (p *Proc) ScratchArena() *algebra.Arena { return p.arena }

// Rank is this rank's index, 0 ≤ Rank < P.
func (p *Proc) Rank() int { return p.rank }

// Size is the machine size.
func (p *Proc) Size() int { return p.m.P }

// NextTag returns a fresh message tag. As on the virtual machine, the
// per-rank counters of an SPMD program stay synchronized, giving each
// collective a distinct tag without coordination.
func (p *Proc) NextTag() int {
	p.tagseq++
	return p.tagseq
}

// Compute records n charged units of local computation. The native
// backend does not advance any clock here: the arithmetic that the charge
// accounts for has already been executed for real inside the operator, so
// its cost is in the wall-clock measurement. The counter is kept so the
// run's Result reports the same work figure as the virtual machine's.
func (p *Proc) Compute(n float64) {
	if n < 0 {
		panic("backend: negative computation charge")
	}
	p.ops += n
}

// Mark records a stage-boundary annotation at the current wall offset.
func (p *Proc) Mark(label string) {
	p.marks = append(p.marks, StageMark{Label: label, At: time.Since(p.start)})
}

// outbound prepares v for the wire: under TransportCopy every payload is
// deep-copied at the send site (the memory-isolation baseline); under
// TransportZeroCopy the reference itself crosses.
func (p *Proc) outbound(v algebra.Value) algebra.Value {
	if p.m.Transport == TransportCopy {
		return algebra.CloneValue(v)
	}
	return v
}

// Send ships v to rank dst over the channel pair — a real transfer of the
// (shared, immutable-by-convention) value reference, a borrow: the sender
// may still read v afterwards, and neither side may write it.
func (p *Proc) Send(dst int, v algebra.Value, tag int) {
	if dst == p.rank {
		panic(fmt.Sprintf("backend: rank %d sending to itself", p.rank))
	}
	p.checkRank(dst)
	p.m.startupWait()
	p.sent++
	p.sentWords += v.Words()
	p.put(dst, packet{value: p.outbound(v), tag: tag})
}

// SendMove ships v to rank dst transferring ownership: the receiver (via
// RecvOwned) becomes the value's owner and may write it in place; the
// sender relinquishes it and must not observe it again. For a *FlatTuple
// the relinquishment is enforced — the tuple is poisoned and any later
// access by the sender panics until its arena reclaims the buffer at the
// next run's reset. Under TransportZeroCopy this makes a large-m send
// O(1): only the reference crosses the mailbox. Under TransportCopy the
// receiver gets an owned deep copy and the sender's value is poisoned all
// the same, so a program's ownership discipline is checked identically on
// both transports.
func (p *Proc) SendMove(dst int, v algebra.Value, tag int) {
	if dst == p.rank {
		panic(fmt.Sprintf("backend: rank %d sending to itself", p.rank))
	}
	p.checkRank(dst)
	p.m.startupWait()
	p.sent++
	p.sentWords += v.Words()
	wire := p.outbound(v)
	if ft, ok := v.(*algebra.FlatTuple); ok {
		// Poison after outbound: under TransportCopy the clone reads v.
		ft.MarkMoved()
	}
	p.put(dst, packet{value: wire, tag: tag, owned: true})
}

// put enqueues a packet for dst. The fast path is a plain buffered-channel
// send; when the mailbox is full and the watchdog is armed, the rank
// publishes its blocked-on state and stays cancellable, so a send-side
// deadlock (every mailbox full, nobody receiving) is diagnosed like a
// receive-side one.
func (p *Proc) put(dst int, pkt packet) {
	ch := p.m.procs[dst].mailbox(p.rank)
	if p.m.abort == nil {
		ch <- pkt
		return
	}
	select {
	case ch <- pkt:
		return
	default:
	}
	p.wait.Store(&waitInfo{dir: "sending to", peer: dst, tag: pkt.tag, since: time.Now()})
	defer p.wait.Store(nil)
	select {
	case ch <- pkt:
	case <-p.m.abort:
		panic(errWatchdogAbort)
	}
}

// TrySend is the non-blocking variant of Send: it enqueues v for dst if the
// mailbox has room and reports whether it did. Nothing is charged on
// failure. Fault-injecting decorators build their retry loops on it so a
// full mailbox never wedges a rank that still has protocol work to do.
func (p *Proc) TrySend(dst int, v algebra.Value, tag int) bool {
	if dst == p.rank {
		panic(fmt.Sprintf("backend: rank %d sending to itself", p.rank))
	}
	p.checkRank(dst)
	select {
	case p.m.procs[dst].mailbox(p.rank) <- packet{value: p.outbound(v), tag: tag}:
	default:
		return false
	}
	p.m.startupWait()
	p.sent++
	p.sentWords += v.Words()
	return true
}

// Recv receives the next message from rank src, blocking until it
// arrives.
func (p *Proc) Recv(src, tag int) algebra.Value {
	p.checkRank(src)
	pkt := p.take(src, tag, "waiting for a message from")
	return pkt.value
}

// Exchange performs the simultaneous bidirectional swap with partner:
// both sides enqueue, then dequeue, which the buffered channels keep
// deadlock-free.
func (p *Proc) Exchange(partner int, v algebra.Value, tag int) algebra.Value {
	if partner == p.rank {
		panic(fmt.Sprintf("backend: rank %d exchanging with itself", p.rank))
	}
	p.checkRank(partner)
	p.m.startupWait()
	p.sent++
	p.sentWords += v.Words()
	p.put(partner, packet{value: p.outbound(v), tag: tag})
	pkt := p.take(partner, tag, "deadlocked in exchange with")
	return pkt.value
}

// RecvOwned receives the next message from rank src like Recv and reports
// whether the message transferred ownership: when owned is true the caller
// is the value's new owner and may write it in place (a received
// *FlatTuple has its move poison cleared — the adoption point of the
// ownership protocol); when false the value is a borrowed shared reference
// and must be treated as frozen.
func (p *Proc) RecvOwned(src, tag int) (v algebra.Value, owned bool) {
	p.checkRank(src)
	pkt := p.take(src, tag, "waiting for a message from")
	if pkt.owned {
		if ft, ok := pkt.value.(*algebra.FlatTuple); ok {
			ft.MarkOwned()
		}
	}
	return pkt.value, pkt.owned
}

// RecvAny dequeues the next message from rank src regardless of its tag,
// returning the value and the tag it was sent under. It blocks like Recv
// (same timeout and watchdog discipline) but performs no tag check — it is
// the raw link layer that fault-injecting decorators, which multiplex
// their own protocol over one wire tag, read from.
func (p *Proc) RecvAny(src int) (algebra.Value, int) {
	p.checkRank(src)
	pkt := p.take(src, anyTag, "waiting for a message from")
	return pkt.value, pkt.tag
}

// TryRecvAny is the non-blocking variant of RecvAny: it dequeues an
// already-arrived message from src, if there is one.
func (p *Proc) TryRecvAny(src int) (algebra.Value, int, bool) {
	p.checkRank(src)
	select {
	case pkt := <-p.mailbox(src):
		p.recvd++
		return pkt.value, pkt.tag, true
	default:
		return nil, 0, false
	}
}

// anyTag makes take skip the tag check; it is never a valid message tag
// (NextTag counts up from 1, subgroup tags are offset positive).
const anyTag = -1 << 62

// errWatchdogAbort is the sentinel panic value of a rank cancelled by the
// deadlock watchdog; Run replaces it with the watchdog's full report.
var errWatchdogAbort = fmt.Errorf("backend: run aborted by deadlock watchdog")

// take dequeues the next packet from src with the timeout and tag
// discipline of the virtual machine. The timeout uses the rank's reusable
// timer: stopped and drained after every successful receive, so a
// receive-heavy run arms one timer object instead of allocating one per
// message the way time.After would.
func (p *Proc) take(src, tag int, verb string) packet {
	var pkt packet
	ch := p.mailbox(src)
	watched := p.m.abort != nil
	if p.m.Timeout > 0 || watched {
		// Fast path: the message is already there — skip the timer and
		// the wait-state publication entirely.
		select {
		case pkt = <-ch:
			return p.accept(pkt, src, tag)
		default:
		}
		if watched {
			p.wait.Store(&waitInfo{dir: blockDir(verb), peer: src, tag: tag, since: time.Now()})
			defer p.wait.Store(nil)
		}
		// A nil timer channel blocks forever, so the watchdog-only case
		// (Timeout == 0) falls through to the abort select cleanly.
		var timeoutC <-chan time.Time
		if p.m.Timeout > 0 {
			if p.timer == nil {
				p.timer = time.NewTimer(p.m.Timeout)
			} else {
				p.timer.Reset(p.m.Timeout)
			}
			timeoutC = p.timer.C
		}
		var abortC chan struct{}
		if watched {
			abortC = p.m.abort
		}
		select {
		case pkt = <-ch:
			if p.timer != nil && !p.timer.Stop() {
				// The timer fired concurrently with the receive; drain it
				// so the next Reset starts from a clean channel.
				select {
				case <-p.timer.C:
				default:
				}
			}
		case <-timeoutC:
			panic(fmt.Sprintf("backend: rank %d timed out after %v %s rank %d (tag %d); %d messages received, %d sent so far",
				p.rank, p.m.Timeout, verb, src, tag, p.recvd, p.sent))
		case <-abortC:
			panic(errWatchdogAbort)
		}
	} else {
		pkt = <-ch
	}
	return p.accept(pkt, src, tag)
}

// accept performs the tag check of the virtual machine and counts the
// receive. A tag of anyTag skips the check (raw-link receives).
func (p *Proc) accept(pkt packet, src, tag int) packet {
	if tag != anyTag && pkt.tag != tag {
		panic(fmt.Sprintf("backend: rank %d expected tag %d from rank %d, got %d", p.rank, tag, src, pkt.tag))
	}
	p.recvd++
	return pkt
}

// blockDir maps take's panic verb to the watchdog report's direction.
func blockDir(verb string) string {
	if verb == "deadlocked in exchange with" {
		return "exchanging with"
	}
	return "receiving from"
}

func (p *Proc) checkRank(r int) {
	if r < 0 || r >= p.m.P {
		panic(fmt.Sprintf("backend: rank %d out of range [0,%d)", r, p.m.P))
	}
}

// startupWait busy-waits for the injected per-message start-up. A spin
// rather than a sleep: the emulated start-ups of interest sit well below
// the scheduler's sleep granularity.
func (m *Machine) startupWait() {
	if m.Startup <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < m.Startup {
	}
}

// Result summarises one native run.
type Result struct {
	// Makespan is the wall time from the barrier-synchronized start to
	// the last rank's finish — the native analogue of the virtual
	// machine's makespan.
	Makespan time.Duration
	// Ranks are the per-rank wall times from the same start.
	Ranks []time.Duration
	// Messages and Words count the point-to-point transfers and their
	// volume, comparable with the virtual machine's counters.
	Messages int
	Words    int
	// Ops is the computation charged via Compute across all ranks. The
	// native backend performs this work for real; the counter is kept so
	// both backends report the same work figure.
	Ops float64
	// Marks are the per-rank stage annotations ([rank][stage]).
	Marks [][]StageMark
}

// Run executes body as an SPMD program: one goroutine per rank, all
// released from a common barrier so the per-rank timings share one origin.
// It returns when every rank's body has finished. A panic in any rank's
// body aborts the run and is re-raised on the caller's goroutine with the
// rank identified.
//
// The machine caches its ranks across runs: mailbox channels, timeout
// timers, and scratch arenas warm up on the first run and are reused by
// later ones, so a repeated benchmark loop measures the steady state
// rather than per-run setup.
func (m *Machine) Run(body func(p *Proc)) Result {
	m.reset()
	var ready, done sync.WaitGroup
	release := make(chan struct{})
	panics := make([]any, m.P)
	for r := 0; r < m.P; r++ {
		ready.Add(1)
		done.Add(1)
		go func(p *Proc) {
			defer done.Done()
			ready.Done()
			<-release
			defer func() {
				p.elapsed = time.Since(p.start)
				p.finished.Store(true)
				if e := recover(); e != nil {
					panics[p.rank] = e
				}
			}()
			body(p)
		}(m.procs[r])
	}
	ready.Wait()
	var wdStop chan struct{}
	if m.Watchdog > 0 {
		m.abort = make(chan struct{})
		m.wdReport = ""
		wdStop = make(chan struct{})
		m.wdWG.Add(1)
		go m.watch(wdStop)
	}
	start := time.Now()
	for _, p := range m.procs {
		p.start = start
	}
	close(release)
	done.Wait()
	if wdStop != nil {
		close(wdStop)
		m.wdWG.Wait()
		m.abort = nil
	}
	if m.wdReport != "" {
		// The watchdog cancelled a quiesced run: every blocked rank
		// panicked with the sentinel; surface the per-rank report instead.
		m.procs = nil
		panic(m.wdReport)
	}
	for r, e := range panics {
		if e != nil {
			// An aborted run can leave packets in flight; drop the cached
			// ranks so the next run rebuilds clean mailboxes.
			m.procs = nil
			panic(fmt.Sprintf("backend: rank %d failed: %v", r, e))
		}
	}
	res := Result{Ranks: make([]time.Duration, m.P), Marks: make([][]StageMark, m.P)}
	for r, p := range m.procs {
		res.Ranks[r] = p.elapsed
		// Copy the marks: p.marks is reused by the next run.
		res.Marks[r] = append([]StageMark(nil), p.marks...)
		res.Messages += p.sent
		res.Words += p.sentWords
		res.Ops += p.ops
		if p.elapsed > res.Makespan {
			res.Makespan = p.elapsed
		}
	}
	return res
}

// watch is the deadlock watchdog: it samples every rank's published
// blocking state and fires when the run has quiesced without finishing —
// every unfinished rank stuck in the same send or receive for at least
// m.Watchdog. (That condition is a true deadlock: a rank can only be
// unblocked by another rank, and all of them are waiting.) On firing it
// composes the per-rank blocked-on report and cancels every blocked rank,
// so Run returns a diagnosis instead of hanging until Timeout or forever.
func (m *Machine) watch(stop chan struct{}) {
	defer m.wdWG.Done()
	tick := m.Watchdog / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		unfinished, quiesced := 0, true
		for _, p := range m.procs {
			if p.finished.Load() {
				continue
			}
			unfinished++
			w := p.wait.Load()
			if w == nil || now.Sub(w.since) < m.Watchdog {
				quiesced = false
				break
			}
		}
		if unfinished == 0 || !quiesced {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "backend: deadlock: every unfinished rank blocked for %v with no progress\n", m.Watchdog)
		for _, p := range m.procs {
			if p.finished.Load() {
				fmt.Fprintf(&b, "  rank %d: finished\n", p.rank)
				continue
			}
			if w := p.wait.Load(); w != nil {
				fmt.Fprintf(&b, "  rank %d: blocked %s rank %d (tag %d) for %v\n",
					p.rank, w.dir, w.peer, w.tag, now.Sub(w.since).Round(time.Millisecond))
			} else {
				fmt.Fprintf(&b, "  rank %d: running\n", p.rank)
			}
		}
		m.wdReport = b.String()
		close(m.abort)
		return
	}
}

// reset prepares the cached ranks for a fresh run, building them on the
// first call. Counters, tag sequences, marks, and arenas restart from
// zero; mailbox channels persist (a completed run leaves them empty — any
// stray packet would have tripped the previous run's tag check or been
// consumed — and an aborted run discards the ranks entirely).
func (m *Machine) reset() {
	if len(m.procs) != m.P {
		m.procs = make([]*Proc, m.P)
		for r := 0; r < m.P; r++ {
			m.procs[r] = &Proc{
				rank:  r,
				m:     m,
				in:    make([]atomic.Pointer[chan packet], m.P),
				arena: algebra.NewArena(),
			}
		}
		return
	}
	for _, p := range m.procs {
		p.sent, p.recvd, p.sentWords = 0, 0, 0
		p.ops = 0
		p.tagseq = 0
		p.marks = p.marks[:0]
		p.elapsed = 0
		p.finished.Store(false)
		p.wait.Store(nil)
		// The previous run's completion barrier (done.Wait) ordered every
		// rank's arena use before this reset.
		p.arena.Reset()
		// Defensively drain any packet a sloppy program sent but never
		// received, so it cannot satisfy a later run's matching tag.
		for s := range p.in {
			if ch := p.in[s].Load(); ch != nil {
				for {
					select {
					case <-*ch:
						continue
					default:
					}
					break
				}
			}
		}
	}
}
