package exper

import (
	"os"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/mpbackend"
)

// TestMain lets this package's tests spawn multi-process measurement
// jobs: the test binary re-executes itself as the rank workers, and
// MaybeWorker diverts those re-executions before any test runs.
func TestMain(m *testing.M) {
	mpbackend.MaybeWorker()
	os.Exit(m.Run())
}

// TestSeededInputsMatchSweepInputs pins the cross-process contract the
// algorithm sweeps depend on: MeasureCollectiveMP cannot ship this
// process's input blocks to the rank workers, so both sides regenerate
// them from the seed — the native sweep's generator and mpbackend's must
// stay bit-identical or the two backends would measure different data.
func TestSeededInputsMatchSweepInputs(t *testing.T) {
	for _, tc := range []struct{ p, m int }{{2, 1}, {7, 16}, {8, 1024}} {
		native := inputs(11, tc.p, tc.m)
		mp := mpbackend.SeededInputs(11, tc.p, tc.m)
		if !algebra.EqualLists(native, mp) {
			t.Errorf("p=%d m=%d: native sweep inputs and mpbackend.SeededInputs diverge", tc.p, tc.m)
		}
	}
}

// TestMeasureCollectiveMP runs one real multi-process measurement end to
// end: OS-process ranks, warm-up plus timed repetitions, makespan
// reduction. Skipped in -short mode — it spawns processes.
func TestMeasureCollectiveMP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	ns, err := MeasureCollectiveMP(cost.CollAllReduce, cost.AlgoButterfly, 3, 8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatalf("measured makespan %g ns, want > 0", ns)
	}
}
