package exper

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/rules"
)

// RulePattern pairs a rule with a concrete program matching its left-hand
// side, used to measure the rule's effect on the virtual machine.
type RulePattern struct {
	// Rule is the rule name.
	Rule string
	// LHS is a program the rule's pattern matches in full.
	LHS core.Program
}

// Patterns returns one left-hand-side program per optimization rule, with
// representative operators satisfying each rule's condition (⊗ = *, ⊕ = +
// for the distributivity rules, ⊕ = + for the commutativity rules).
func Patterns() []RulePattern {
	return []RulePattern{
		{"SR2-Reduction", core.NewProgram().Scan(algebra.Mul).Reduce(algebra.Add)},
		{"SR-Reduction", core.NewProgram().Scan(algebra.Add).Reduce(algebra.Add)},
		{"SS2-Scan", core.NewProgram().Scan(algebra.Mul).Scan(algebra.Add)},
		{"SS-Scan", core.NewProgram().Scan(algebra.Add).Scan(algebra.Add)},
		{"BS-Comcast", core.NewProgram().Bcast().Scan(algebra.Add)},
		{"BSS2-Comcast", core.NewProgram().Bcast().Scan(algebra.Mul).Scan(algebra.Add)},
		{"BSS-Comcast", core.NewProgram().Bcast().Scan(algebra.Add).Scan(algebra.Add)},
		{"BR-Local", core.NewProgram().Bcast().Reduce(algebra.Add)},
		{"BSR2-Local", core.NewProgram().Bcast().Scan(algebra.Mul).Reduce(algebra.Add)},
		{"BSR-Local", core.NewProgram().Bcast().Scan(algebra.Add).Reduce(algebra.Add)},
		{"CR-AllLocal", core.NewProgram().Bcast().AllReduce(algebra.Add)},
	}
}

// Table1Row is one row of the reproduced Table 1: the closed-form
// estimates plus, when measured, the virtual-machine makespans of the
// rule's left- and right-hand sides.
type Table1Row struct {
	// Rule is the rule name.
	Rule string
	// Condition is the table's "Improved if" column.
	Condition string
	// PredBefore and PredAfter are the closed-form estimates.
	PredBefore, PredAfter float64
	// PredImproves is the condition's verdict at these parameters.
	PredImproves bool
	// MeasBefore and MeasAfter are virtual-machine makespans (zero when
	// not measured).
	MeasBefore, MeasAfter float64
	// MeasImproves reports whether the measured times improved.
	MeasImproves bool
	// Rewritten is the right-hand-side program.
	Rewritten string
}

// Table1 reproduces the paper's Table 1 at the given parameters: for every
// rule, the predicted before/after times and the improvement verdict. With
// measured = true it additionally applies each rule with the rewrite
// engine and measures both sides on the virtual machine (p must then be a
// power of two, matching the butterfly model the predictions assume).
func Table1(mach core.Machine, measured bool) []Table1Row {
	return Table1On(mach, measured, RunVirtual)
}

// Table1On is Table1 with an explicit measurement backend: pass
// NativeRunner to fill the measured columns with wall-clock nanoseconds
// from the goroutine backend instead of virtual time units (the
// predictions stay the closed forms either way).
func Table1On(mach core.Machine, measured bool, run Runner) []Table1Row {
	params := cost.Params{Ts: mach.Ts, Tw: mach.Tw, M: mach.M, P: mach.P}
	var out []Table1Row
	for _, pat := range Patterns() {
		entry, ok := cost.Lookup(pat.Rule)
		if !ok {
			panic(fmt.Sprintf("exper: no Table 1 entry for %s", pat.Rule))
		}
		row := Table1Row{
			Rule:         pat.Rule,
			Condition:    entry.Condition,
			PredBefore:   entry.Before(params),
			PredAfter:    entry.After(params),
			PredImproves: entry.Improves(params),
		}
		if measured {
			r, ok := rules.ByName(pat.Rule)
			if !ok {
				panic(fmt.Sprintf("exper: no rule named %s", pat.Rule))
			}
			eng := rules.NewEngine()
			eng.Rules = []rules.Rule{r}
			eng.Env.P = mach.P
			opt, apps := eng.Optimize(pat.LHS.Term())
			if len(apps) != 1 {
				panic(fmt.Sprintf("exper: rule %s did not apply to %s", pat.Rule, pat.LHS))
			}
			rhs := core.FromTerm(opt)
			in := inputs(1, mach.P, mach.M)
			row.MeasBefore = run(pat.LHS, mach, in)
			row.MeasAfter = run(rhs, mach, in)
			row.MeasImproves = row.MeasAfter < row.MeasBefore
			row.Rewritten = rhs.String()
		}
		out = append(out, row)
	}
	return out
}

// FormatTable1 renders rows as an aligned text table resembling the
// paper's Table 1.
func FormatTable1(rows []Table1Row, measured bool) string {
	var b strings.Builder
	if measured {
		fmt.Fprintf(&b, "%-14s %12s %12s %9s %12s %12s %9s  %s\n",
			"Rule", "pred before", "pred after", "pred imp", "meas before", "meas after", "meas imp", "condition")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-14s %12.0f %12.0f %9v %12.0f %12.0f %9v  %s\n",
				r.Rule, r.PredBefore, r.PredAfter, r.PredImproves,
				r.MeasBefore, r.MeasAfter, r.MeasImproves, r.Condition)
		}
	} else {
		fmt.Fprintf(&b, "%-14s %14s %14s %9s  %s\n",
			"Rule", "time before", "time after", "improves", "condition")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-14s %14.0f %14.0f %9v  %s\n",
				r.Rule, r.PredBefore, r.PredAfter, r.PredImproves, r.Condition)
		}
	}
	return b.String()
}

// CrossoverResult reports a predicted and a measured crossover block size
// for one rule: the largest m at which the rule still pays off at fixed
// ts, tw, p.
type CrossoverResult struct {
	Rule                string
	Predicted, Measured int
}

// MeasureCrossover locates the measured crossover block size of a rule by
// bisection on the virtual machine, alongside the prediction from the
// closed forms. maxM bounds the search. The measured makespans are exact
// under the deterministic cost model, so bisection is sound as long as
// the improvement is monotone in m, which it is for every Table 1 rule.
func MeasureCrossover(ruleName string, mach core.Machine, maxM int) CrossoverResult {
	return MeasureCrossoverOn(ruleName, mach, maxM, RunVirtual)
}

// MeasureCrossoverOn is MeasureCrossover with an explicit measurement
// backend. With NativeRunner the bisection runs on noisy wall-clock
// times; use enough repetitions that the improvement stays effectively
// monotone, and read the result as an estimate, not an exact bound.
func MeasureCrossoverOn(ruleName string, mach core.Machine, maxM int, run Runner) CrossoverResult {
	entry, ok := cost.Lookup(ruleName)
	if !ok {
		panic(fmt.Sprintf("exper: no Table 1 entry for %s", ruleName))
	}
	base := cost.Params{Ts: mach.Ts, Tw: mach.Tw, P: mach.P}
	res := CrossoverResult{
		Rule:      ruleName,
		Predicted: cost.Crossover(entry, base, maxM),
	}
	var pat *RulePattern
	for _, p := range Patterns() {
		if p.Rule == ruleName {
			pp := p
			pat = &pp
			break
		}
	}
	if pat == nil {
		panic(fmt.Sprintf("exper: no pattern for %s", ruleName))
	}
	r, _ := rules.ByName(ruleName)
	eng := rules.NewEngine()
	eng.Rules = []rules.Rule{r}
	eng.Env.P = mach.P
	opt, apps := eng.Optimize(pat.LHS.Term())
	if len(apps) != 1 {
		panic(fmt.Sprintf("exper: rule %s did not apply", ruleName))
	}
	rhs := core.FromTerm(opt)
	improves := func(m int) bool {
		mm := mach
		mm.M = m
		in := inputs(1, mach.P, m)
		return run(rhs, mm, in) < run(pat.LHS, mm, in)
	}
	switch {
	case improves(maxM):
		res.Measured = maxM
	case !improves(1):
		res.Measured = 0
	default:
		lo, hi := 1, maxM
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if improves(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.Measured = lo
	}
	return res
}
