package exper

import (
	"math"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/machine"
)

// parsytec is a start-up-dominated parameter set resembling the paper's
// Parsytec/MPICH testbed, where the comcast rules clearly pay off.
var parsytec = machine.Params{Ts: 5000, Tw: 1}

func TestTable1Predicted(t *testing.T) {
	mach := core.Machine{Ts: 1000, Tw: 1, P: 64, M: 32}
	rows := Table1(mach, false)
	if len(rows) != 11 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PredBefore <= 0 || r.PredAfter <= 0 {
			t.Errorf("%s: non-positive estimates %g %g", r.Rule, r.PredBefore, r.PredAfter)
		}
	}
	out := FormatTable1(rows, false)
	if !strings.Contains(out, "SR2-Reduction") || !strings.Contains(out, "always") {
		t.Fatalf("format:\n%s", out)
	}
}

// TestTable1MeasuredMatchesPredicted is the measured reproduction of
// Table 1: on a power-of-two machine, the virtual-machine makespans of
// each rule's two sides must match the closed-form estimates within 20%
// (comcast right-hand sides differ slightly because processors with few
// one-bits do less repeat work than the worst case the estimate charges),
// and the measured improvement verdict must agree with the condition
// column on both a start-up-dominated and a bandwidth-dominated machine.
func TestTable1MeasuredMatchesPredicted(t *testing.T) {
	machines := []core.Machine{
		{Ts: 5000, Tw: 1, P: 32, M: 16}, // start-up dominated: all rules improve
		{Ts: 1, Tw: 1, P: 32, M: 16384}, // bandwidth dominated
	}
	for _, mach := range machines {
		rows := Table1(mach, true)
		for _, r := range rows {
			if r.MeasBefore <= 0 || r.MeasAfter <= 0 {
				t.Fatalf("%s: no measurement", r.Rule)
			}
			if !within(r.MeasBefore, r.PredBefore, 0.20) {
				t.Errorf("%s at %+v: measured before %g vs predicted %g",
					r.Rule, mach, r.MeasBefore, r.PredBefore)
			}
			if !within(r.MeasAfter, r.PredAfter, 0.20) {
				t.Errorf("%s at %+v: measured after %g vs predicted %g",
					r.Rule, mach, r.MeasAfter, r.PredAfter)
			}
			if r.MeasImproves != r.PredImproves {
				t.Errorf("%s at %+v: measured improvement %v, predicted %v (meas %g->%g, pred %g->%g)",
					r.Rule, mach, r.MeasImproves, r.PredImproves,
					r.MeasBefore, r.MeasAfter, r.PredBefore, r.PredAfter)
			}
		}
	}
}

func within(a, b, frac float64) bool {
	return math.Abs(a-b) <= frac*math.Abs(b)
}

func TestFormatTable1Measured(t *testing.T) {
	mach := core.Machine{Ts: 5000, Tw: 1, P: 8, M: 4}
	rows := Table1(mach, true)
	out := FormatTable1(rows, true)
	if !strings.Contains(out, "meas before") || !strings.Contains(out, "BSS-Comcast") {
		t.Fatalf("format:\n%s", out)
	}
}

// TestFigure7Shape asserts the paper's Figure 7 result: at a fixed large
// block, for every processor count, bcast;repeat < comcast < bcast;scan.
func TestFigure7Shape(t *testing.T) {
	fig := Figure7(parsytec, 2048, 64)
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	scan, com, rep := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range scan.X {
		if !(rep.Y[i] < com.Y[i] && com.Y[i] < scan.Y[i]) {
			t.Errorf("p=%g: ordering violated: scan %g, comcast %g, repeat %g",
				scan.X[i], scan.Y[i], com.Y[i], rep.Y[i])
		}
	}
	// Run time grows with p (log p factor).
	for i := 1; i < len(scan.Y); i++ {
		if scan.Y[i] <= scan.Y[i-1] {
			t.Errorf("bcast;scan not increasing in p: %v", scan.Y)
		}
	}
}

// TestFigure8Shape asserts Figure 8: on 64 processors the three curves
// grow linearly in the block size and keep the same ordering.
func TestFigure8Shape(t *testing.T) {
	fig := Figure8(parsytec, 64, 512, 4096)
	scan, com, rep := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range scan.X {
		if !(rep.Y[i] < com.Y[i] && com.Y[i] < scan.Y[i]) {
			t.Errorf("m=%g: ordering violated: scan %g, comcast %g, repeat %g",
				scan.X[i], scan.Y[i], com.Y[i], rep.Y[i])
		}
	}
	// Linear growth in m: the increment between consecutive block sizes
	// is constant under the cost model.
	for _, s := range fig.Series {
		d0 := s.Y[1] - s.Y[0]
		for i := 2; i < len(s.Y); i++ {
			if !within(s.Y[i]-s.Y[i-1], d0, 1e-9) {
				t.Errorf("%s: growth not linear: %v", s.Label, s.Y)
			}
		}
	}
}

func TestFigureCSV(t *testing.T) {
	fig := Figure7(parsytec, 64, 8)
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// Header + p = 2, 4, 8.
	if len(lines) != 4 {
		t.Fatalf("csv = %q", csv)
	}
	if !strings.HasPrefix(lines[0], "processors,bcast; scan,comcast,bcast; repeat") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestFigurePlot(t *testing.T) {
	fig := Figure7(parsytec, 64, 16)
	out := fig.Plot(40, 10)
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "s=bcast; scan") {
		t.Fatalf("plot:\n%s", out)
	}
	// All three glyphs appear somewhere on the canvas.
	for _, g := range []string{"s", "c", "r"} {
		if !strings.Contains(out, g) {
			t.Fatalf("glyph %s missing:\n%s", g, out)
		}
	}
}

func TestFigure2Reproduction(t *testing.T) {
	p1, p2, mid := Figure2()
	for i := range p1 {
		if !algebra.Equal(p1[i], algebra.Scalar(10)) || !algebra.Equal(p2[i], algebra.Scalar(10)) {
			t.Fatalf("P1 = %v, P2 = %v", p1, p2)
		}
		want := algebra.Tuple{algebra.Scalar(10), algebra.Scalar(24)}
		if !algebra.Equal(mid[i], want) {
			t.Fatalf("P2 intermediate = %v", mid)
		}
	}
}

func TestFigure3Timelines(t *testing.T) {
	mach := core.Machine{Ts: 500, Tw: 1, P: 8, M: 8}
	before, after, tB, tA := Figure3(mach, 60)
	if tA >= tB {
		t.Fatalf("SR2-Reduction did not save time: %g -> %g", tB, tA)
	}
	if !strings.Contains(before, "scan(*) ; reduce(+)") {
		t.Fatalf("before timeline:\n%s", before)
	}
	if !strings.Contains(after, "op_sr2") {
		t.Fatalf("after timeline:\n%s", after)
	}
	if !strings.Contains(before, "P0") || !strings.Contains(after, "P7") {
		t.Fatal("timelines missing processor rows")
	}
}

// TestSS2CrossoverMeasured measures the SS2-Scan crossover block size on
// the virtual machine and compares it with the predicted ts/2 (§4.2).
func TestSS2CrossoverMeasured(t *testing.T) {
	mach := core.Machine{Ts: 1024, Tw: 1, P: 16}
	res := MeasureCrossover("SS2-Scan", mach, 1<<14)
	if res.Predicted != 511 {
		// Largest m with ts > 2m at ts = 1024 is m = 511.
		t.Fatalf("predicted crossover = %d, want 511", res.Predicted)
	}
	if res.Measured != res.Predicted {
		t.Fatalf("measured crossover %d != predicted %d", res.Measured, res.Predicted)
	}
}

// TestSRCrossoverMeasured does the same for SR-Reduction (ts > m).
func TestSRCrossoverMeasured(t *testing.T) {
	mach := core.Machine{Ts: 777, Tw: 2, P: 16}
	res := MeasureCrossover("SR-Reduction", mach, 1<<13)
	if res.Predicted != 776 {
		t.Fatalf("predicted crossover = %d, want 776", res.Predicted)
	}
	if res.Measured != res.Predicted {
		t.Fatalf("measured crossover %d != predicted %d", res.Measured, res.Predicted)
	}
}

// TestPolyEvalCaseStudy reproduces §5: every variant computes the same
// polynomial values, BS-Comcast improves on the specification, and the
// cost-optimal comcast is slower than bcast; repeat.
func TestPolyEvalCaseStudy(t *testing.T) {
	for _, p := range []int{4, 8, 16, 32, 64} {
		pe := NewPolyEval(9, p, 64)
		results := pe.Run(parsytec.Ts, parsytec.Tw)
		if len(results) != 4 {
			t.Fatalf("results = %v", results)
		}
		byName := map[string]Result{}
		for _, r := range results {
			if !r.Correct {
				t.Fatalf("p=%d: %s computed wrong values", p, r.Name)
			}
			byName[r.Name] = r
		}
		spec := byName["PolyEval_1 (bcast; scan)"].Makespan
		fused := byName["PolyEval_3 (fused locals)"].Makespan
		optimal := byName["comcast (cost-optimal)"].Makespan
		two := byName["PolyEval_2 (BS-Comcast)"].Makespan
		if !(fused < spec) {
			t.Errorf("p=%d: PolyEval_3 (%g) not faster than PolyEval_1 (%g)", p, fused, spec)
		}
		if !(two < spec) {
			t.Errorf("p=%d: PolyEval_2 (%g) not faster than PolyEval_1 (%g)", p, two, spec)
		}
		if !(fused < optimal) {
			t.Errorf("p=%d: bcast;repeat (%g) not faster than cost-optimal comcast (%g)", p, fused, optimal)
		}
	}
}

// TestPolyEvalProgram2IsRuleDerived checks PolyEval_2 is literally the
// engine's rewrite of PolyEval_1.
func TestPolyEvalProgram2IsRuleDerived(t *testing.T) {
	pe := NewPolyEval(10, 8, 16)
	if got := pe.Program2().String(); !strings.Contains(got, "repeat") {
		t.Fatalf("PolyEval_2 = %q", got)
	}
}

func TestPolyEvalLargeMachineUsesSafePoints(t *testing.T) {
	pe := NewPolyEval(11, 64, 32)
	for _, y := range pe.Points {
		if y != -1 && y != 0 && y != 1 {
			t.Fatalf("unsafe point %g for p=64", y)
		}
	}
	// Small machines may use the richer point set.
	pe = NewPolyEval(11, 8, 512)
	seen := map[float64]bool{}
	for _, y := range pe.Points {
		seen[y] = true
	}
	if !seen[2] && !seen[0.5] && !seen[-0.5] {
		t.Fatal("small machine should use the richer point set")
	}
}

// TestCrossoverFigureShowsIntersection: the SS2-Scan before/after curves
// must intersect at the predicted m = ts/2 — before is cheaper above,
// after is cheaper below.
func TestCrossoverFigureShowsIntersection(t *testing.T) {
	params := machine.Params{Ts: 1024, Tw: 1}
	ms := []int{128, 256, 384, 512, 640, 768, 1024}
	fig := CrossoverFigure("SS2-Scan", params, 16, ms)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	before, after := fig.Series[0], fig.Series[1]
	for i, m := range ms {
		improves := after.Y[i] < before.Y[i]
		wantImproves := float64(params.Ts) > 2*float64(m)
		if improves != wantImproves {
			t.Errorf("m=%d: after<before = %v, predicted %v (before %g, after %g)",
				m, improves, wantImproves, before.Y[i], after.Y[i])
		}
	}
}

func TestCrossoverFigureUnknownRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossoverFigure("No-Such-Rule", machine.Params{Ts: 1}, 8, []int{1})
}

// TestScalingGapGrowsWithP: at fixed total data, the saving of
// SR2-Reduction grows with the machine size (the fused start-up is paid
// log p times).
func TestScalingGapGrowsWithP(t *testing.T) {
	fig := Scaling("SR2-Reduction", machine.Params{Ts: 5000, Tw: 1}, 1<<14, []int{2, 4, 8, 16, 32, 64})
	before, after := fig.Series[0], fig.Series[1]
	prevGap := 0.0
	for i := range before.X {
		gap := before.Y[i] - after.Y[i]
		if gap <= 0 {
			t.Fatalf("p=%g: no saving (before %g, after %g)", before.X[i], before.Y[i], after.Y[i])
		}
		if gap < prevGap {
			t.Fatalf("p=%g: saving shrank from %g to %g", before.X[i], prevGap, gap)
		}
		prevGap = gap
	}
}

func TestScalingUnknownRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scaling("No-Such-Rule", machine.Params{Ts: 1}, 8, []int{2})
}

func TestAppSpeedup(t *testing.T) {
	for _, app := range []string{"mss", "statistics", "samplesort"} {
		rows := AppSpeedup(app, 100, 1, 4096, []int{1, 2, 4, 8, 16})
		if len(rows) != 5 {
			t.Fatalf("%s: rows = %v", app, rows)
		}
		if rows[0].P != 1 || within(rows[0].Speedup, 1, 1e-9) == false {
			t.Fatalf("%s: p=1 speedup = %g", app, rows[0].Speedup)
		}
		// Local work dominates at cheap start-up: speedup must grow.
		for i := 1; i < len(rows); i++ {
			if rows[i].Speedup <= rows[i-1].Speedup {
				t.Fatalf("%s: speedup not increasing: %+v", app, rows)
			}
		}
		out := FormatSpeedup(app, rows)
		if !strings.Contains(out, "efficiency") {
			t.Fatalf("format:\n%s", out)
		}
	}
}

// TestAppSpeedupAcceptsEveryListedApp pins AppNames against the
// AppSpeedup dispatch: every advertised app must run (the sparse ones
// need n divisible by the stencil's 64 rows and by 8 for the graph's
// vertex count) and produce a nonzero single-processor time.
func TestAppSpeedupAcceptsEveryListedApp(t *testing.T) {
	for _, app := range AppNames {
		rows := AppSpeedup(app, 100, 1, 512, []int{2})
		if len(rows) != 1 || rows[0].Time <= 0 {
			t.Fatalf("%s: rows = %+v", app, rows)
		}
	}
}

func TestAppSpeedupUnknownAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AppSpeedup("nope", 1, 1, 64, []int{1})
}
