package exper

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"

	"repro/internal/algebra"
)

func TestNativeRunnerMeasuresWallClock(t *testing.T) {
	run := NativeRunner(3)
	prog := core.NewProgram().Bcast().Scan(algebra.Add)
	in := inputs(2, 4, 8)
	ns := run(prog, core.Machine{P: 4}, in)
	if ns <= 0 {
		t.Fatalf("native measurement = %g ns, want > 0", ns)
	}
}

func TestNativeFusionRecordsAndJSON(t *testing.T) {
	cfg := NativeFusionConfig{P: 4, Ms: []int{1, 16}, Reps: 2,
		Rules: []string{"SS2-Scan", "BR-Local"}, Ts: 150, Tw: 0.5}
	recs, err := NativeFusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two rules × two block sizes × two sides.
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for _, r := range recs {
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s m=%d: ns_per_op = %g, want > 0", r.Rule, r.Side, r.M, r.NsPerOp)
		}
		if r.Side == "lhs" && r.Speedup != 1 {
			t.Errorf("lhs speedup = %g, want 1", r.Speedup)
		}
		if r.Side == "rhs" && r.Speedup <= 0 {
			t.Errorf("rhs speedup = %g, want > 0", r.Speedup)
		}
		// Every record is self-describing: backend, reps, and the
		// cost-model parameters in force.
		if r.Backend != "native" || r.Reps != cfg.Reps {
			t.Errorf("%s/%s: backend=%q reps=%d, want native/%d", r.Rule, r.Side, r.Backend, r.Reps, cfg.Reps)
		}
		if r.Params.Ts != cfg.Ts || r.Params.Tw != cfg.Tw || r.Params.P != cfg.P || r.Params.M != r.M {
			t.Errorf("%s/%s m=%d: params %+v do not describe the run", r.Rule, r.Side, r.M, r.Params)
		}
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchJSON(path, recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []NativeBenchRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round-trip lost records: %d != %d", len(back), len(recs))
	}
	for i := range back {
		if back[i] != recs[i] {
			t.Fatalf("record %d did not round-trip:\n got %+v\nwant %+v", i, back[i], recs[i])
		}
	}
}

func TestNativeFusionSkipsLocalRulesOnNonPow2(t *testing.T) {
	recs, err := NativeFusion(NativeFusionConfig{P: 6, Ms: []int{1}, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		switch r.Rule {
		case "BR-Local", "BSR2-Local", "BSR-Local", "CR-AllLocal":
			t.Fatalf("Local rule %s measured on p=6", r.Rule)
		}
	}
	if len(recs) == 0 {
		t.Fatal("non-Local rules should still be measured")
	}
}

func TestTable1OnNative(t *testing.T) {
	mach := core.Machine{Ts: 100, Tw: 1, P: 4, M: 4}
	rows := Table1On(mach, true, NativeRunner(2))
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if r.MeasBefore <= 0 || r.MeasAfter <= 0 {
			t.Fatalf("%s: native measurements %g/%g, want > 0", r.Rule, r.MeasBefore, r.MeasAfter)
		}
	}
}
