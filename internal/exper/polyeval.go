package exper

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/term"
)

// PolyEval is the §5 case study: evaluate the polynomial
// a1·x + a2·x² + … + an·xn at m points y1…ym, with coefficient ai on
// processor i-1 and the point list on the first processor.
type PolyEval struct {
	// Coeffs are the polynomial coefficients a1…ap, one per processor.
	Coeffs []float64
	// Points are the m evaluation points.
	Points algebra.Vec
}

// NewPolyEval builds a random instance with p coefficients and m points.
func NewPolyEval(seed int64, p, m int) *PolyEval {
	rng := rand.New(rand.NewSource(seed))
	c := make([]float64, p)
	for i := range c {
		c[i] = float64(rng.Intn(5) - 2)
	}
	// Keep every power and partial sum exactly representable in float64,
	// so the parallel variants can be compared with the reference
	// exactly: beyond ~26 coefficients, powers of 2 or 1/2 would need
	// more mantissa bits than remain after summation, so large machines
	// use points from {-1, 0, 1} only.
	pointSet := []float64{-1, -0.5, 0.5, 1, 2}
	if p > 26 {
		pointSet = []float64{-1, 0, 1}
	}
	pts := make(algebra.Vec, m)
	for i := range pts {
		pts[i] = pointSet[rng.Intn(len(pointSet))]
	}
	return &PolyEval{Coeffs: c, Points: pts}
}

// Reference evaluates the polynomial directly (Horner), the ground truth
// for the parallel programs.
func (pe *PolyEval) Reference() algebra.Vec {
	out := make(algebra.Vec, len(pe.Points))
	for j, y := range pe.Points {
		acc := 0.0
		for i := len(pe.Coeffs) - 1; i >= 0; i-- {
			acc = (acc + pe.Coeffs[i]) * y
		}
		out[j] = acc
	}
	return out
}

// coeffFn multiplies the processor's block elementwise by its coefficient
// (the paper's map2(×) as stage, with the distributed coefficient list
// captured).
func (pe *PolyEval) coeffFn() *term.IdxFn {
	return &term.IdxFn{
		Name: "mul_coeff",
		F: func(i int, v algebra.Value) algebra.Value {
			return algebra.Mul.Apply(algebra.Scalar(pe.Coeffs[i]), v)
		},
		Charge: func(i, m int) float64 { return float64(m) },
	}
}

// Program1 is PolyEval_1, the initial specification (equation (18)):
//
//	bcast ; scan(*) ; map2(×) as ; reduce(+)
func (pe *PolyEval) Program1() core.Program {
	return core.NewProgram().
		Bcast().
		Scan(algebra.Mul).
		MapIdx(pe.coeffFn()).
		Reduce(algebra.Add)
}

// Program2 is PolyEval_2 (equation (19)): the result of applying rule
// BS-Comcast to Program1 with the rewrite engine, i.e.
//
//	bcast ; map# op_poly ; map2(×) as ; reduce(+)
func (pe *PolyEval) Program2() core.Program {
	eng := rules.NewEngine()
	opt, apps := eng.Optimize(pe.Program1().Term())
	if len(apps) != 1 || apps[0].Rule != "BS-Comcast" {
		panic(fmt.Sprintf("exper: BS-Comcast did not apply to PolyEval_1: %v", apps))
	}
	return core.FromTerm(opt)
}

// Program3 is PolyEval_3 (equation (20)): the two local stages of
// Program2 fused into one, map2#(op_new as):
//
//	bcast ; map2# (op_new as) ; reduce(+)
func (pe *PolyEval) Program3() core.Program {
	ops := algebra.OpCompBS(algebra.Mul)
	opNew := &term.IdxFn{
		Name: "op_new",
		F: func(i int, v algebra.Value) algebra.Value {
			powed := algebra.First(ops.Repeat(i, ops.Prepare(v)))
			return algebra.Mul.Apply(algebra.Scalar(pe.Coeffs[i]), powed)
		},
		Charge: func(i, m int) float64 {
			return ops.RepeatCharge(i, m) + float64(m)
		},
	}
	return core.NewProgram().
		Bcast().
		MapIdx(opNew).
		Reduce(algebra.Add)
}

// ProgramComcastOptimal replaces the bcast; repeat of Program3 with the
// cost-optimal doubling comcast — the slower alternative of §3.4, for the
// Figures 7/8 comparison in the polynomial setting.
func (pe *PolyEval) ProgramComcastOptimal() core.Program {
	ops := algebra.OpCompBS(algebra.Mul)
	return core.FromTerm(term.Seq{
		term.Comcast{Ops: ops, CostOptimal: true},
		term.MapIdx{F: pe.coeffFn()},
		term.Reduce{Op: algebra.Add},
	})
}

// input builds the per-processor input list: the points on the first
// processor (broadcast sources ignore the rest, but reduce semantics make
// every processor hold a block of the right shape).
func (pe *PolyEval) input(p int) []algebra.Value {
	in := make([]algebra.Value, p)
	for i := range in {
		in[i] = pe.Points.Clone()
	}
	return in
}

// Result compares one program variant against the reference.
type Result struct {
	// Name labels the variant.
	Name string
	// Makespan is the measured virtual run time.
	Makespan float64
	// Correct reports whether the first processor holds the reference
	// polynomial values.
	Correct bool
}

// Run measures every variant on a machine with len(Coeffs) processors and
// the given communication parameters, checking each against Reference.
func (pe *PolyEval) Run(ts, tw float64) []Result {
	p := len(pe.Coeffs)
	mach := core.Machine{Ts: ts, Tw: tw, P: p, M: len(pe.Points)}
	want := pe.Reference()
	variants := []struct {
		name string
		prog core.Program
	}{
		{"PolyEval_1 (bcast; scan)", pe.Program1()},
		{"PolyEval_2 (BS-Comcast)", pe.Program2()},
		{"PolyEval_3 (fused locals)", pe.Program3()},
		{"comcast (cost-optimal)", pe.ProgramComcastOptimal()},
	}
	var out []Result
	for _, v := range variants {
		got, res := v.prog.Run(mach, pe.input(p))
		out = append(out, Result{
			Name:     v.name,
			Makespan: res.Makespan,
			Correct:  algebra.Equal(got[0], want),
		})
	}
	return out
}
