package exper

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/mpbackend"
)

// This file is the multi-process half of the algorithm-portfolio
// measurement: the same head-to-head sweep as NativeAlgos, but with the
// ranks as separate OS processes (package mpbackend), where every message
// is a real serialization through the kernel. That is the regime the
// paper's cost model assumes — tw > 0 — and where the bandwidth-oriented
// algorithms (rings, pipeline) actually overtake the butterfly, which
// they never do on the in-process backend with its by-reference sends.
//
// Any binary calling into this file must invoke mpbackend.MaybeWorker()
// first thing in main (or TestMain): the measurements re-execute the
// running binary to spawn ranks.

// MeasureCollectiveMP measures the wall-clock makespan in nanoseconds of
// one collective executed with the given portfolio algorithm across p
// rank processes: one process group runs a warm-up plus reps
// barrier-synchronized repetitions, each repetition's makespan is the
// maximum over ranks, and the minimum over the timed repetitions is
// returned — the same discipline as MeasureCollective, minus the shared
// address space. Inputs are the seeded blocks of the native sweep
// (seed 11), regenerated inside each rank.
func MeasureCollectiveMP(collective string, a cost.Algo, p, m, segments, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	res, err := mpbackend.Run("collective", p, mpbackend.CollectiveParams{
		Collective: collective, Algo: string(a), Op: "add",
		M: m, Segments: segments, Reps: reps, Seed: 11,
	}, mpbackend.Options{})
	if err != nil {
		return 0, fmt.Errorf("exper: multiproc %s@%s (p=%d m=%d): %w", collective, a, p, m, err)
	}
	return mpbackend.MinMakespan(res)
}

// MultiProcAlgos measures every portfolio algorithm head-to-head against
// the butterfly across process boundaries — the multi-process rows of
// BENCH_native.json, marked Backend "multiproc". Shape and semantics
// match NativeAlgos exactly: lhs rows carry the butterfly, rhs rows the
// algorithm with Speedup the ratio, and each rhs row carries its group's
// predicted and measured crossover block sizes. cfg.Ts/cfg.Tw should be
// the multi-process calibration's parameters, so the predicted crossovers
// are the ones the calibrated model would act on for this transport.
func MultiProcAlgos(cfg NativeAlgoConfig) ([]NativeBenchRecord, error) {
	if len(cfg.Ps) == 0 || len(cfg.Ms) == 0 {
		return nil, fmt.Errorf("exper: the algorithm sweep needs group and block sizes")
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	maxM := cfg.Ms[len(cfg.Ms)-1]
	var out []NativeBenchRecord
	for _, p := range cfg.Ps {
		if p < 2 {
			return nil, fmt.Errorf("exper: the algorithm sweep needs p ≥ 2, got %d", p)
		}
		base := cost.Params{Ts: cfg.Ts, Tw: cfg.Tw, P: p}
		for _, collective := range []string{cost.CollAllReduce, cost.CollReduce} {
			for _, a := range cost.Algos(collective)[1:] {
				var recs []NativeBenchRecord
				var ms []int
				var won []bool
				measure := func(m int) (bfNs, algNs float64, err error) {
					pp := base
					pp.M = m
					segs := cost.PipelineSegments(pp)
					if bfNs, err = MeasureCollectiveMP(collective, cost.AlgoButterfly, p, m, 0, cfg.Reps); err != nil {
						return 0, 0, err
					}
					algNs, err = MeasureCollectiveMP(collective, a, p, m, segs, cfg.Reps)
					return bfNs, algNs, err
				}
				for _, m := range cfg.Ms {
					pp := base
					pp.M = m
					if !cost.Applicable(collective, a, pp) {
						continue
					}
					bfNs, algNs, err := measure(m)
					if err != nil {
						return nil, err
					}
					ms = append(ms, m)
					won = append(won, algNs < bfNs)
					params := cost.Params{Ts: cfg.Ts, Tw: cfg.Tw, P: p, M: m}
					recs = append(recs,
						NativeBenchRecord{
							Backend: "multiproc", Reps: cfg.Reps, Params: params,
							Op: collective + "(+)", Rule: algoRule(collective, a), Side: "lhs",
							P: p, M: m, NsPerOp: bfNs, Speedup: 1,
						},
						NativeBenchRecord{
							Backend: "multiproc", Reps: cfg.Reps, Params: params,
							Op: fmt.Sprintf("%s(+)@%s", collective, a), Rule: algoRule(collective, a), Side: "rhs",
							P: p, M: m, NsPerOp: algNs, Speedup: bfNs / algNs,
						})
				}
				if len(ms) == 0 {
					continue
				}
				pred := cost.BreakEven(collective, a, base, maxM)
				meas := FirstWinCrossover(ms, won, func(m int) bool {
					bfNs, algNs, err := measure(m)
					// A failed bisection probe counts as a loss: the
					// bracketing sweep measurements already succeeded, so
					// the reported crossover degrades to sweep resolution
					// instead of failing the whole suite.
					return err == nil && algNs < bfNs
				})
				for i := range recs {
					if recs[i].Side == "rhs" {
						recs[i].PredCross = pred
						recs[i].MeasCross = meas
					}
				}
				out = append(out, recs...)
			}
		}
	}
	return out, nil
}
