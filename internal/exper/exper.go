// Package exper is the experiment harness: it regenerates every table and
// figure of the paper's evaluation on the virtual machine — Table 1
// (predicted and measured), the BS-Comcast experiments of Figures 7 and 8,
// the Figure 2/3 illustrations, and the §5 polynomial-evaluation case
// study. Each experiment returns structured rows/series and can render
// itself as text (tables and ASCII plots) or CSV.
package exper

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
)

// Series is one plotted curve: a label and (x, y) points.
type Series struct {
	// Label names the curve (e.g. "bcast; scan").
	Label string
	// X holds the x coordinates (processors or block size).
	X []float64
	// Y holds the measured run times.
	Y []float64
}

// Figure is a set of curves over a common axis.
type Figure struct {
	// Title and axis labels.
	Title, XLabel, YLabel string
	// Series are the curves.
	Series []Series
}

// CSV renders the figure as comma-separated values with a header row.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// block builds a deterministic pseudo-random m-word block for processor r.
func block(rng *rand.Rand, m int) algebra.Vec {
	v := make(algebra.Vec, m)
	for i := range v {
		v[i] = float64(rng.Intn(9) + 1)
	}
	return v
}

// inputs builds one block per processor; only the first matters for
// broadcast-rooted programs but all are populated.
func inputs(seed int64, p, m int) []algebra.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]algebra.Value, p)
	for i := range out {
		out[i] = block(rng, m)
	}
	return out
}

// measure runs a program and returns its makespan on the machine.
func measure(prog core.Program, mach core.Machine, in []algebra.Value) float64 {
	_, res := prog.Run(mach, in)
	return res.Makespan
}
