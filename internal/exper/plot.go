package exper

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII chart of width x height characters
// (plus axes and legend), each series drawn with its own glyph — a
// terminal-friendly stand-in for the paper's gnuplot figures.
func (f Figure) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	glyphs := []byte{'s', 'c', 'r', 'd', 'e', 'f'}
	var xmin, xmax, ymax float64
	xmin = math.Inf(1)
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) || xmax == xmin {
		xmin, xmax = 0, 1
	}
	if ymax == 0 {
		ymax = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int(s.Y[i] / ymax * float64(height-1))
			row := height - 1 - cy
			if row < 0 {
				row = 0
			}
			if cx >= width {
				cx = width - 1
			}
			grid[row][cx] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s (max %.3g)\n", f.YLabel, ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, " %-10.4g%*s\n", xmin, width-10, fmt.Sprintf("%.4g", xmax))
	fmt.Fprintf(&b, " %s:", f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c=%s", glyphs[si%len(glyphs)], s.Label)
	}
	b.WriteByte('\n')
	return b.String()
}
