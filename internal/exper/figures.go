package exper

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/rules"
	"repro/internal/term"
)

// comcastVariants builds the three programs compared in Figures 7 and 8:
// the left-hand side bcast; scan(+), the cost-optimal comcast, and the
// bcast; repeat implementation used by rule BS-Comcast.
func comcastVariants() (lhs, comcastOpt, bcastRepeat core.Program) {
	ops := algebra.OpCompBS(algebra.Add)
	lhs = core.NewProgram().Bcast().Scan(algebra.Add)
	comcastOpt = core.FromTerm(term.Comcast{Ops: ops, CostOptimal: true})
	bcastRepeat = core.FromTerm(term.Comcast{Ops: ops})
	return
}

// Figure7 reproduces Figure 7: run time of the three comcast variants as
// a function of the number of processors, at fixed block size blockWords
// (the paper uses 32·10³ on up to 64 processors). Machine sizes are the
// powers of two up to maxP.
func Figure7(params machine.Params, blockWords, maxP int) Figure {
	return Figure7On(params, blockWords, maxP, RunVirtual)
}

// Figure7On is Figure7 with an explicit measurement backend.
func Figure7On(params machine.Params, blockWords, maxP int, run Runner) Figure {
	fig := Figure{
		Title:  fmt.Sprintf("Figure 7: BS-Comcast variants, block size %d", blockWords),
		XLabel: "processors",
		YLabel: "time",
	}
	lhs, opt, rep := comcastVariants()
	labels := []string{"bcast; scan", "comcast", "bcast; repeat"}
	progs := []core.Program{lhs, opt, rep}
	for i, prog := range progs {
		s := Series{Label: labels[i]}
		for p := 2; p <= maxP; p *= 2 {
			mach := core.Machine{Ts: params.Ts, Tw: params.Tw, P: p, M: blockWords}
			in := inputs(7, p, blockWords)
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, run(prog, mach, in))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure8 reproduces Figure 8: run time of the three comcast variants as
// a function of the block size, at fixed machine size p (64 in the
// paper). Block sizes sweep from step to maxM in equal steps.
func Figure8(params machine.Params, p, step, maxM int) Figure {
	return Figure8On(params, p, step, maxM, RunVirtual)
}

// Figure8On is Figure8 with an explicit measurement backend.
func Figure8On(params machine.Params, p, step, maxM int, run Runner) Figure {
	fig := Figure{
		Title:  fmt.Sprintf("Figure 8: BS-Comcast variants on %d processors", p),
		XLabel: "block size",
		YLabel: "time",
	}
	lhs, opt, rep := comcastVariants()
	labels := []string{"bcast; scan", "comcast", "bcast; repeat"}
	progs := []core.Program{lhs, opt, rep}
	for i, prog := range progs {
		s := Series{Label: labels[i]}
		for m := step; m <= maxM; m += step {
			mach := core.Machine{Ts: params.Ts, Tw: params.Tw, P: p, M: m}
			in := inputs(8, p, m)
			s.X = append(s.X, float64(m))
			s.Y = append(s.Y, run(prog, mach, in))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// CrossoverFigure visualizes the §4.2 analysis for one rule: the measured
// run times of the left-hand side and the rewritten right-hand side as
// the block size m sweeps across the predicted crossover — SS2-Scan's
// ts > 2m, for instance, makes the two curves intersect at m = ts/2.
func CrossoverFigure(ruleName string, params machine.Params, p int, ms []int) Figure {
	return CrossoverFigureOn(ruleName, params, p, ms, RunVirtual)
}

// CrossoverFigureOn is CrossoverFigure with an explicit measurement
// backend: with NativeRunner the crossover plotted is the host's real
// one — where the fused form's saved synchronization rounds stop paying
// for its extra local work.
func CrossoverFigureOn(ruleName string, params machine.Params, p int, ms []int, run Runner) Figure {
	var pat *RulePattern
	for _, candidate := range Patterns() {
		if candidate.Rule == ruleName {
			c := candidate
			pat = &c
			break
		}
	}
	if pat == nil {
		panic(fmt.Sprintf("exper: no pattern for %s", ruleName))
	}
	r, ok := rules.ByName(ruleName)
	if !ok {
		panic(fmt.Sprintf("exper: no rule named %s", ruleName))
	}
	eng := rules.NewEngine()
	eng.Rules = []rules.Rule{r}
	eng.Env.P = p
	opt, apps := eng.Optimize(pat.LHS.Term())
	if len(apps) != 1 {
		panic(fmt.Sprintf("exper: rule %s did not apply", ruleName))
	}
	rhs := core.FromTerm(opt)
	fig := Figure{
		Title:  fmt.Sprintf("%s crossover (ts=%g, tw=%g, p=%d)", ruleName, params.Ts, params.Tw, p),
		XLabel: "block size",
		YLabel: "time",
	}
	lhsSeries := Series{Label: "before (" + pat.LHS.String() + ")"}
	rhsSeries := Series{Label: "after"}
	for _, m := range ms {
		mach := core.Machine{Ts: params.Ts, Tw: params.Tw, P: p, M: m}
		in := inputs(4, p, m)
		lhsSeries.X = append(lhsSeries.X, float64(m))
		lhsSeries.Y = append(lhsSeries.Y, run(pat.LHS, mach, in))
		rhsSeries.X = append(rhsSeries.X, float64(m))
		rhsSeries.Y = append(rhsSeries.Y, run(rhs, mach, in))
	}
	fig.Series = []Series{lhsSeries, rhsSeries}
	return fig
}

// Scaling measures strong scaling of a rule's effect: at fixed total data
// N = p·m, sweep the machine size over the given powers of two and record
// the virtual run times of the rule's left-hand side and its rewrite. The
// gap grows with p — every fused start-up is paid log p times — which is
// the operational content of the paper's claim that "good optimization
// here may pay a lot" on large machines.
func Scaling(ruleName string, params machine.Params, totalWords int, ps []int) Figure {
	return ScalingOn(ruleName, params, totalWords, ps, RunVirtual)
}

// ScalingOn is Scaling with an explicit measurement backend.
func ScalingOn(ruleName string, params machine.Params, totalWords int, ps []int, run Runner) Figure {
	var pat *RulePattern
	for _, candidate := range Patterns() {
		if candidate.Rule == ruleName {
			c := candidate
			pat = &c
			break
		}
	}
	if pat == nil {
		panic(fmt.Sprintf("exper: no pattern for %s", ruleName))
	}
	fig := Figure{
		Title:  fmt.Sprintf("%s strong scaling (N = %d words, ts=%g, tw=%g)", ruleName, totalWords, params.Ts, params.Tw),
		XLabel: "processors",
		YLabel: "time",
	}
	before := Series{Label: "before"}
	after := Series{Label: "after"}
	for _, p := range ps {
		r, _ := rules.ByName(ruleName)
		eng := rules.NewEngine()
		eng.Rules = []rules.Rule{r}
		eng.Env.P = p
		opt, apps := eng.Optimize(pat.LHS.Term())
		if len(apps) != 1 {
			panic(fmt.Sprintf("exper: rule %s did not apply at p=%d", ruleName, p))
		}
		m := totalWords / p
		if m < 1 {
			m = 1
		}
		mach := core.Machine{Ts: params.Ts, Tw: params.Tw, P: p, M: m}
		in := inputs(5, p, m)
		before.X = append(before.X, float64(p))
		before.Y = append(before.Y, run(pat.LHS, mach, in))
		after.X = append(after.X, float64(p))
		after.Y = append(after.Y, run(core.FromTerm(opt), mach, in))
	}
	fig.Series = []Series{before, after}
	return fig
}

// Figure2 reproduces the semantic-equality illustration of Figure 2:
// P1 = allreduce(+) and P2 = map pair; allreduce(op_new); map π₁ applied
// to [1,2,3,4], returning both output lists and the intermediate list of
// P2.
func Figure2() (p1Out, p2Out, p2Mid []algebra.Value) {
	in := []algebra.Value{
		algebra.Scalar(1), algebra.Scalar(2), algebra.Scalar(3), algebra.Scalar(4),
	}
	opNew := algebra.OpNew(algebra.Add, algebra.Mul)
	p1 := term.Seq{term.Reduce{Op: algebra.Add, All: true}}
	p2pre := term.Seq{term.Map{F: term.PairFn}, term.Reduce{Op: opNew, All: true}}
	p2 := term.Compose(p2pre, term.Map{F: term.FirstFn})
	return term.Eval(p1, in), term.Eval(p2, in), term.Eval(p2pre, in)
}

// Figure3 reproduces the run-time pictures of Figure 3: the Example
// program traced on the virtual machine before and after applying rule
// SR2-Reduction, rendered as text timelines. It returns the two rendered
// timelines and the measured makespans.
func Figure3(mach core.Machine, width int) (before, after string, tBefore, tAfter float64) {
	f := &term.Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}
	g := &term.Fn{Name: "g", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(2))
	}}
	example := core.NewProgram().Map(f).Scan(algebra.Mul).Reduce(algebra.Add).Map(g).Bcast()

	eng := rules.NewEngine()
	eng.Env.P = mach.P
	optTerm, apps := eng.Optimize(example.Term())
	if len(apps) == 0 {
		panic("exper: SR2-Reduction did not apply to Example")
	}
	optimized := core.FromTerm(optTerm)

	in := inputs(3, mach.P, mach.M)
	_, resB, evB := example.RunTraced(mach, in)
	_, resA, evA := optimized.RunTraced(mach, in)
	var b strings.Builder
	fmt.Fprintf(&b, "%s   (makespan %.0f)\n", example, resB.Makespan)
	b.WriteString(machine.Timeline(evB, mach.P, width))
	before = b.String()
	b.Reset()
	fmt.Fprintf(&b, "%s   (makespan %.0f)\n", optimized, resA.Makespan)
	b.WriteString(machine.Timeline(evA, mach.P, width))
	after = b.String()
	return before, after, resB.Makespan, resA.Makespan
}
