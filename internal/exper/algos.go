package exper

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
	"repro/internal/cost"
)

// This file is the wall-clock side of the algorithm portfolio: it runs
// each portfolio algorithm (coll/algo.go) head-to-head against the §4.1
// butterfly on the native backend, the measurement under both the
// BENCH_native algorithm records and calib's crossover validation.

// MeasureCollective measures the wall-clock makespan in nanoseconds of
// one collective executed with the given portfolio algorithm on the
// native backend machine nm, taking the minimum over reps runs. segments
// is the pipeline's segment count and is ignored by every other
// algorithm. The caller is expected to warm the machine up with one
// discarded call so mailbox and arena allocation stays out of the
// minimum.
func MeasureCollective(nm *backend.Machine, collective string, a cost.Algo, op *algebra.Op, in []algebra.Value, segments, reps int) float64 {
	if reps < 1 {
		reps = 1
	}
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		res := nm.Run(func(pr *backend.Proc) {
			v := in[pr.Rank()]
			switch collective {
			case cost.CollAllReduce:
				switch a {
				case cost.AlgoRabenseifner:
					coll.AllReduceRabenseifner(pr, op, v)
				case cost.AlgoRing:
					coll.AllReduceRing(pr, op, v)
				case cost.AlgoRingBi:
					coll.AllReduceRingBi(pr, op, v)
				default:
					coll.AllReduce(pr, op, v)
				}
			default: // cost.CollReduce
				if a == cost.AlgoPipeline {
					coll.ReducePipelined(pr, op, v, segments)
				} else {
					coll.Reduce(pr, 0, op, v)
				}
			}
		})
		if ns := float64(res.Makespan.Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best
}

// FirstWinCrossover locates the smallest block size at which wins(m)
// holds: won are the sweep verdicts at the block sizes ms, giving the
// bracket, and bisection with fresh wins() measurements sharpens the
// boundary inside it, so the resolution does not depend on the sweep's
// granularity. It returns 0 when the algorithm never wins in the sweep
// and ms[0] when it already wins at the smallest tested size.
func FirstWinCrossover(ms []int, won []bool, wins func(m int) bool) int {
	first := -1
	for i, w := range won {
		if w {
			first = i
			break
		}
	}
	switch {
	case first < 0:
		return 0
	case first == 0:
		return ms[0]
	}
	lo, hi := ms[first-1], ms[first] // !wins(lo), wins(hi)
	for i := 0; i < 8 && hi-lo > 1; i++ {
		mid := (lo + hi) / 2
		if wins(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// NativeAlgoConfig sizes the algorithm-portfolio wall-clock sweep.
type NativeAlgoConfig struct {
	// Ps are the group sizes; include a non-power-of-two to exercise the
	// rabenseifner fold path.
	Ps []int
	// Ms are the block sizes swept; per algorithm only the applicable
	// subset is measured (the chunked algorithms need m ≥ p or 2p).
	Ms []int
	// Reps is the number of repetitions per measurement (minimum taken).
	Reps int
	// Ts and Tw are the calibrated cost-model parameters recorded with
	// each row and used for the predicted crossovers (they do not affect
	// the measurement — the host's real costs apply).
	Ts, Tw float64
	// Transport selects the native machine's transport mode; the zero
	// value is the zero-copy default. MultiProcAlgos ignores it — a
	// process boundary always serializes.
	Transport backend.TransportMode
}

// DefaultNativeAlgoConfig sweeps the portfolio on 7 and 8 ranks across
// block sizes spanning the start-up-dominated and bandwidth-dominated
// regimes.
func DefaultNativeAlgoConfig() NativeAlgoConfig {
	return NativeAlgoConfig{Ps: []int{7, 8}, Ms: []int{16, 256, 1024, 4096, 16384}, Reps: 7}
}

// NativeAlgos measures every portfolio algorithm head-to-head against
// the butterfly on the native backend — the wall-clock records behind
// docs/ALGORITHMS.md's crossover table. Rows pair up like the fusion
// suite's: per (collective, algorithm, p, m) a "lhs" row carries the
// butterfly and an "rhs" row the algorithm, with Speedup the ratio. Each
// rhs row additionally carries the predicted and measured crossover
// block sizes of its (collective, algorithm, p) group — the smallest m
// at which the algorithm first beats the butterfly, sharpened by
// bisection between sweep points; 0 means it never won in range.
func NativeAlgos(cfg NativeAlgoConfig) ([]NativeBenchRecord, error) {
	if len(cfg.Ps) == 0 || len(cfg.Ms) == 0 {
		return nil, fmt.Errorf("exper: the algorithm sweep needs group and block sizes")
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	op := algebra.Add
	maxM := cfg.Ms[len(cfg.Ms)-1]
	var out []NativeBenchRecord
	for _, p := range cfg.Ps {
		if p < 2 {
			return nil, fmt.Errorf("exper: the algorithm sweep needs p ≥ 2, got %d", p)
		}
		nm := backend.New(p)
		nm.Transport = cfg.Transport
		base := cost.Params{Ts: cfg.Ts, Tw: cfg.Tw, P: p}
		for _, collective := range []string{cost.CollAllReduce, cost.CollReduce} {
			for _, a := range cost.Algos(collective)[1:] {
				var recs []NativeBenchRecord
				var ms []int
				var won []bool
				measure := func(m int) (bfNs, algNs float64) {
					pp := base
					pp.M = m
					segs := cost.PipelineSegments(pp)
					in := inputs(11, p, m)
					MeasureCollective(nm, collective, a, op, in, segs, 1) // warm-up
					bfNs = MeasureCollective(nm, collective, cost.AlgoButterfly, op, in, 0, cfg.Reps)
					algNs = MeasureCollective(nm, collective, a, op, in, segs, cfg.Reps)
					return bfNs, algNs
				}
				for _, m := range cfg.Ms {
					pp := base
					pp.M = m
					if !cost.Applicable(collective, a, pp) {
						continue
					}
					bfNs, algNs := measure(m)
					ms = append(ms, m)
					won = append(won, algNs < bfNs)
					params := cost.Params{Ts: cfg.Ts, Tw: cfg.Tw, P: p, M: m}
					recs = append(recs,
						NativeBenchRecord{
							Backend: "native", Reps: cfg.Reps, Params: params,
							Op: collective + "(+)", Rule: algoRule(collective, a), Side: "lhs",
							P: p, M: m, NsPerOp: bfNs, Speedup: 1,
						},
						NativeBenchRecord{
							Backend: "native", Reps: cfg.Reps, Params: params,
							Op: fmt.Sprintf("%s(+)@%s", collective, a), Rule: algoRule(collective, a), Side: "rhs",
							P: p, M: m, NsPerOp: algNs, Speedup: bfNs / algNs,
						})
				}
				if len(ms) == 0 {
					continue
				}
				pred := cost.BreakEven(collective, a, base, maxM)
				meas := FirstWinCrossover(ms, won, func(m int) bool {
					bfNs, algNs := measure(m)
					return algNs < bfNs
				})
				for i := range recs {
					if recs[i].Side == "rhs" {
						recs[i].PredCross = pred
						recs[i].MeasCross = meas
					}
				}
				out = append(out, recs...)
			}
		}
	}
	return out, nil
}

// algoRule names an algorithm sweep's record group in the Rule field,
// e.g. "Algo-allreduce/ring-bi".
func algoRule(collective string, a cost.Algo) string {
	return fmt.Sprintf("Algo-%s/%s", collective, a)
}

// FormatAlgoCrossovers renders the per-(algorithm, p) crossover summary
// of an algorithm sweep's records: one line per group with the predicted
// and measured break-even block sizes.
func FormatAlgoCrossovers(recs []NativeBenchRecord) string {
	out := fmt.Sprintf("%-28s %4s %12s %12s\n", "Algorithm", "p", "predicted m", "measured m")
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Side != "rhs" {
			continue
		}
		key := fmt.Sprintf("%s/%d", r.Rule, r.P)
		if seen[key] {
			continue
		}
		seen[key] = true
		pred, meas := fmt.Sprintf("%d", r.PredCross), fmt.Sprintf("%d", r.MeasCross)
		if r.PredCross == 0 {
			pred = "never"
		}
		if r.MeasCross == 0 {
			meas = "never"
		}
		out += fmt.Sprintf("%-28s %4d %12s %12s\n", r.Rule, r.P, pred, meas)
	}
	return out
}
