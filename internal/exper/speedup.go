package exper

import (
	"fmt"
	"strings"

	"repro/internal/apps"
)

// SpeedupRow is one machine size in an application strong-scaling table.
type SpeedupRow struct {
	// P is the machine size.
	P int
	// Time is the measured virtual run time.
	Time float64
	// Speedup is Time(p=1)/Time(p), Efficiency is Speedup/p.
	Speedup, Efficiency float64
}

// AppNames lists the applications AppSpeedup accepts, in the order
// collbench -apps reports them. The docscan drift tests pin this list
// against the docs, and a harness test pins it against the AppSpeedup
// dispatch, so an app added to one place must be added to all.
var AppNames = []string{"mss", "statistics", "samplesort", "stencil", "raggedscan", "degreehist"}

// AppSpeedup measures strong scaling of one of the collective-only
// applications: the same N-element problem on growing machines, with
// speedup relative to the single-processor run under the same cost
// model. app is "mss", "samplesort", "statistics", or one of the sparse
// workloads "stencil" (2D torus stencil over halo exchanges, row
// decomposition), "raggedscan" (segmented scan over ragged blocks with
// allgatherv delivery) and "degreehist" (graph-degree histogram over
// reduce_scatterv). The sparse problem shapes derive from n
// deterministically, so rows are comparable across machine sizes.
func AppSpeedup(app string, ts, tw float64, n int, ps []int) []SpeedupRow {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64((i*2654435761)%101) - 50
	}
	runOne := func(p int) float64 {
		mach := apps.Machine{P: p, Ts: ts, Tw: tw}
		switch app {
		case "mss":
			_, res := apps.MSS(mach, xs)
			return res.Makespan
		case "samplesort":
			_, res := apps.SampleSort(mach, xs)
			return res.Makespan
		case "statistics":
			_, res := apps.Statistics(mach, xs)
			return res.Makespan
		case "stencil":
			rows := 64
			cols := n / rows
			grid := make([][]float64, rows)
			for i := range grid {
				grid[i] = xs[i*cols : (i+1)*cols]
			}
			_, res := apps.Stencil2D(mach, grid, p, 1, 4)
			return res.Makespan
		case "raggedscan":
			counts := raggedCounts(n, p)
			flags := make([]bool, n)
			for i := range flags {
				flags[i] = i%7 == 0
			}
			_, res := apps.RaggedSegmentedScan(mach, counts, flags, xs)
			return res.Makespan
		case "degreehist":
			nv := n / 8
			edges := make([][2]int, n)
			for i := range edges {
				edges[i] = [2]int{(i * 2654435761) % nv, (i*40503 + 7) % nv}
			}
			_, res := apps.DegreeHistogram(mach, nv, edges, raggedCounts(nv, p), 8)
			return res.Makespan
		}
		panic(fmt.Sprintf("exper: unknown application %q", app))
	}
	base := runOne(1)
	rows := make([]SpeedupRow, 0, len(ps))
	for _, p := range ps {
		t := runOne(p)
		row := SpeedupRow{P: p, Time: t}
		if t > 0 {
			row.Speedup = base / t
			row.Efficiency = row.Speedup / float64(p)
		}
		rows = append(rows, row)
	}
	return rows
}

// raggedCounts deterministically distributes n items over p ranks with
// genuine raggedness — some ranks own nothing — summing exactly to n.
func raggedCounts(n, p int) []int {
	counts := make([]int, p)
	left := n
	for i := 0; i < p-1; i++ {
		share := n / p * ((i * 3) % 4) / 2 // 0×, 1.5×, 1×, 0.5× the even share
		if share > left {
			share = left
		}
		counts[i] = share
		left -= share
	}
	counts[p-1] = left
	return counts
}

// FormatSpeedup renders a speedup table.
func FormatSpeedup(app string, rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s strong scaling:\n", app)
	fmt.Fprintf(&b, "%6s %14s %10s %11s\n", "p", "time", "speedup", "efficiency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %14.0f %10.2f %10.0f%%\n", r.P, r.Time, r.Speedup, 100*r.Efficiency)
	}
	return b.String()
}
