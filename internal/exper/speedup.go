package exper

import (
	"fmt"
	"strings"

	"repro/internal/apps"
)

// SpeedupRow is one machine size in an application strong-scaling table.
type SpeedupRow struct {
	// P is the machine size.
	P int
	// Time is the measured virtual run time.
	Time float64
	// Speedup is Time(p=1)/Time(p), Efficiency is Speedup/p.
	Speedup, Efficiency float64
}

// AppSpeedup measures strong scaling of one of the collective-only
// applications: the same N-element problem on growing machines, with
// speedup relative to the single-processor run under the same cost
// model. app is "mss", "samplesort" or "statistics".
func AppSpeedup(app string, ts, tw float64, n int, ps []int) []SpeedupRow {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64((i*2654435761)%101) - 50
	}
	runOne := func(p int) float64 {
		mach := apps.Machine{P: p, Ts: ts, Tw: tw}
		switch app {
		case "mss":
			_, res := apps.MSS(mach, xs)
			return res.Makespan
		case "samplesort":
			_, res := apps.SampleSort(mach, xs)
			return res.Makespan
		case "statistics":
			_, res := apps.Statistics(mach, xs)
			return res.Makespan
		}
		panic(fmt.Sprintf("exper: unknown application %q", app))
	}
	base := runOne(1)
	rows := make([]SpeedupRow, 0, len(ps))
	for _, p := range ps {
		t := runOne(p)
		row := SpeedupRow{P: p, Time: t}
		if t > 0 {
			row.Speedup = base / t
			row.Efficiency = row.Speedup / float64(p)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatSpeedup renders a speedup table.
func FormatSpeedup(app string, rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s strong scaling:\n", app)
	fmt.Fprintf(&b, "%6s %14s %10s %11s\n", "p", "time", "speedup", "efficiency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %14.0f %10.2f %10.0f%%\n", r.P, r.Time, r.Speedup, 100*r.Efficiency)
	}
	return b.String()
}
