package exper

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/rules"
)

// Runner measures one program run and returns its makespan — the
// backend-selection point of the experiment harness. RunVirtual yields
// deterministic cost-model time units; NativeRunner yields wall-clock
// nanoseconds on the goroutine backend. Every figure/table function has
// an *On variant taking a Runner, so each experiment can be re-run for
// real on the host.
type Runner func(prog core.Program, mach core.Machine, in []algebra.Value) float64

// RunVirtual measures on the virtual machine: deterministic makespans in
// cost-model time units.
var RunVirtual Runner = measure

// NativeRunner measures wall-clock nanoseconds on the native backend,
// taking the minimum over reps runs (the standard noise filter for
// wall-clock microbenchmarks; the minimum estimates the undisturbed run).
// The machine's Ts/Tw are ignored — the host's real start-up and
// bandwidth apply.
//
// Timing methodology (see package backend for the implementation): each
// run spawns one goroutine per rank, releases all ranks together from a
// barrier-synchronized start, lets every rank record its own elapsed
// wall time, and reports the makespan — the finish time of the last
// rank — as the run's cost, mirroring how the §4.1 model prices the
// slowest processor. All reps share one backend machine, so its cached
// mailboxes and scratch arenas warm up on the first rep and the minimum
// reflects the allocation-free steady state.
func NativeRunner(reps int) Runner {
	return TransportRunner(reps, backend.TransportZeroCopy)
}

// TransportRunner is NativeRunner with an explicit transport mode:
// TransportZeroCopy hands blocks over by reference (the default),
// TransportCopy deep-copies every payload at the send site, modeling a
// memory-isolated transport on otherwise identical machinery — the
// baseline the zero-copy benchmarks are measured against.
func TransportRunner(reps int, transport backend.TransportMode) Runner {
	if reps < 1 {
		reps = 1
	}
	return func(prog core.Program, mach core.Machine, in []algebra.Value) float64 {
		nm := backend.New(mach.P)
		nm.Transport = transport
		best := math.MaxFloat64
		for i := 0; i < reps; i++ {
			_, res := prog.RunOn(nm, in)
			if ns := float64(res.Makespan.Nanoseconds()); ns < best {
				best = ns
			}
		}
		return best
	}
}

// NativeBenchRecord is one row of the native wall-clock suite, the
// machine-readable unit of BENCH_native.json. Each record is
// self-describing: besides the measurement it names the backend, the
// repetition discipline, and the cost-model parameters the run assumed,
// so a record can be audited without the command line that produced it.
type NativeBenchRecord struct {
	// Backend names the measurement backend ("native").
	Backend string `json:"backend"`
	// Reps is the number of repetitions the measurement is the minimum
	// of.
	Reps int `json:"reps"`
	// Params are the cost-model parameters in force for this row —
	// ts/tw as configured (or calibrated), and this row's p and m.
	Params cost.Params `json:"params"`
	// Op is the measured program in the paper's notation.
	Op string `json:"op"`
	// Rule is the optimization rule the program belongs to.
	Rule string `json:"rule"`
	// Side is "lhs" (unfused) or "rhs" (fused).
	Side string `json:"side"`
	// P is the group size, M the per-rank block size in words.
	P int `json:"p"`
	M int `json:"m"`
	// NsPerOp is the measured wall-clock makespan in nanoseconds
	// (minimum over the suite's repetitions).
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is the unfused time divided by this row's time: > 1 on an
	// rhs row means the fused form won for real.
	Speedup float64 `json:"speedup"`
	// PredCross and MeasCross appear on the algorithm-portfolio rows
	// (see NativeAlgos): the block size at which the algorithm first
	// undercuts the butterfly, predicted by the calibrated cost lines
	// and measured on this host; 0 means it never won in range.
	PredCross int `json:"predicted_crossover,omitempty"`
	MeasCross int `json:"measured_crossover,omitempty"`
}

// NativeFusionConfig sizes the wall-clock suite.
type NativeFusionConfig struct {
	// P is the group size; the Local rules require a power of two.
	P int
	// Ms are the block sizes to sweep. Small blocks are the
	// start-up-dominated regime where fusion should win; large blocks
	// are bandwidth/compute-dominated where it should not.
	Ms []int
	// Reps is the number of repetitions per measurement (minimum taken).
	Reps int
	// Rules restricts the suite to the named rules; nil measures all.
	Rules []string
	// Ts and Tw are the cost-model parameters to record with each row
	// (they do not affect the measurement — the host's real costs
	// apply). Pass calibrated values so the emitted records carry them.
	Ts, Tw float64
	// Transport selects the native machine's transport mode; the zero
	// value is the zero-copy default.
	Transport backend.TransportMode
}

// DefaultNativeFusionConfig sweeps all rules on 8 ranks across four block
// sizes spanning both regimes.
func DefaultNativeFusionConfig() NativeFusionConfig {
	return NativeFusionConfig{P: 8, Ms: []int{1, 16, 256, 4096}, Reps: 7}
}

// NativeFusion measures every optimization rule's left-hand side and
// rewritten right-hand side on the native backend across block sizes —
// the wall-clock analogue of Table 1. The returned records carry the
// measured speedups; pass them to WriteBenchJSON to persist the perf
// trajectory.
func NativeFusion(cfg NativeFusionConfig) ([]NativeBenchRecord, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("exper: native suite needs p ≥ 1, got %d", cfg.P)
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	wanted := func(name string) bool {
		if cfg.Rules == nil {
			return true
		}
		for _, r := range cfg.Rules {
			if r == name {
				return true
			}
		}
		return false
	}
	run := TransportRunner(cfg.Reps, cfg.Transport)
	var out []NativeBenchRecord
	for _, pat := range Patterns() {
		if !wanted(pat.Rule) {
			continue
		}
		r, ok := rules.ByName(pat.Rule)
		if !ok {
			return nil, fmt.Errorf("exper: no rule named %s", pat.Rule)
		}
		if r.Class == "Local" && cfg.P&(cfg.P-1) != 0 {
			// The Local rules rewrite to f^(log p) and need a
			// power-of-two machine; skip rather than measure a rewrite
			// that does not apply.
			continue
		}
		eng := rules.NewEngine()
		eng.Rules = []rules.Rule{r}
		eng.Env.P = cfg.P
		opt, apps := eng.Optimize(pat.LHS.Term())
		if len(apps) != 1 {
			return nil, fmt.Errorf("exper: rule %s did not apply at p=%d", pat.Rule, cfg.P)
		}
		rhs := core.FromTerm(opt)
		for _, m := range cfg.Ms {
			mach := core.Machine{P: cfg.P, M: m}
			in := inputs(11, cfg.P, m)
			// Warm up once so first-run allocation noise stays out of
			// both measurements.
			run(pat.LHS, mach, in)
			lhsNs := run(pat.LHS, mach, in)
			rhsNs := run(rhs, mach, in)
			params := cost.Params{Ts: cfg.Ts, Tw: cfg.Tw, M: m, P: cfg.P}
			out = append(out,
				NativeBenchRecord{
					Backend: "native", Reps: cfg.Reps, Params: params,
					Op: pat.LHS.String(), Rule: pat.Rule, Side: "lhs",
					P: cfg.P, M: m, NsPerOp: lhsNs, Speedup: 1,
				},
				NativeBenchRecord{
					Backend: "native", Reps: cfg.Reps, Params: params,
					Op: rhs.String(), Rule: pat.Rule, Side: "rhs",
					P: cfg.P, M: m, NsPerOp: rhsNs, Speedup: lhsNs / rhsNs,
				})
		}
	}
	return out, nil
}

// WriteBenchJSON writes the records as indented JSON — the BENCH_native
// emitter.
func WriteBenchJSON(path string, recs []NativeBenchRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatNativeFusion renders the records as an aligned text table, fused
// and unfused side by side.
func FormatNativeFusion(recs []NativeBenchRecord) string {
	out := fmt.Sprintf("%-14s %6s %7s %14s %14s %8s\n", "Rule", "p", "m", "lhs ns", "rhs ns", "speedup")
	byKey := map[string]*NativeBenchRecord{}
	for i := range recs {
		r := &recs[i]
		if r.Side == "lhs" {
			byKey[fmt.Sprintf("%s/%d/%d", r.Rule, r.P, r.M)] = r
		}
	}
	for i := range recs {
		r := &recs[i]
		if r.Side != "rhs" {
			continue
		}
		lhs := byKey[fmt.Sprintf("%s/%d/%d", r.Rule, r.P, r.M)]
		if lhs == nil {
			continue
		}
		out += fmt.Sprintf("%-14s %6d %7d %14.0f %14.0f %7.2fx\n",
			r.Rule, r.P, r.M, lhs.NsPerOp, r.NsPerOp, r.Speedup)
	}
	return out
}
