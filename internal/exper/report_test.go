package exper

import (
	"strings"
	"testing"
)

func TestReportContainsEverySection(t *testing.T) {
	// Small machine keeps the test fast.
	out := Report(ReportConfig{Ts: 2000, Tw: 1, P: 8, M: 8})
	for _, want := range []string{
		"### Table 1 — start-up-dominated",
		"### Table 1 — bandwidth-dominated",
		"### Figure 2",
		"### Figure 3",
		"### Figure 7",
		"### Figure 8",
		"### Crossovers",
		"### §5 case study",
		"SR2-Reduction",
		"CR-AllLocal",
		"bcast; repeat",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "WRONG RESULT") {
		t.Error("report contains a wrong polynomial result")
	}
}

func TestReportDefaults(t *testing.T) {
	cfg := ReportConfig{}.defaults()
	if cfg.Ts != 5000 || cfg.Tw != 1 || cfg.P != 32 || cfg.M != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestReportTable1AgreesWithItself(t *testing.T) {
	// Every Table 1 line in the report must show matching predicted and
	// measured verdicts ("true / true" or "false / false").
	out := Report(ReportConfig{Ts: 2000, Tw: 1, P: 8, M: 8})
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "true / false") || strings.Contains(line, "false / true") {
			t.Errorf("prediction/measurement disagreement: %s", line)
		}
	}
}
