package exper

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/term"
)

// TestComcastWorkOptimality makes §3.4's cost-optimality discussion
// measurable: the doubling comcast is *work*-optimal — every g^i(b) is
// computed once, total work Θ(p·m) — while bcast;repeat redundantly
// recomputes low digits on every processor, total work Θ(p·m·log p). Yet
// the doubling scheme ships the auxiliary variables (2m words per spawn)
// and is therefore *slower* in time. All three facts are checked on the
// machine's accounting.
func TestComcastWorkOptimality(t *testing.T) {
	ops := algebra.OpCompBS(algebra.Add)
	mach := core.Machine{Ts: 5000, Tw: 1, P: 64, M: 256}
	in := inputs(2, mach.P, mach.M)

	repeat := core.FromTerm(term.Comcast{Ops: ops})
	doubling := core.FromTerm(term.Comcast{Ops: ops, CostOptimal: true})

	_, resRepeat := repeat.Run(mach, in)
	_, resDoubling := doubling.Run(mach, in)

	// 1. The doubling comcast does asymptotically less work.
	if resDoubling.Ops >= resRepeat.Ops {
		t.Fatalf("doubling comcast ops (%g) not below bcast;repeat ops (%g)",
			resDoubling.Ops, resRepeat.Ops)
	}
	// Quantitatively: repeat work ≈ p·log p·2m, doubling ≈ p·3m; the
	// ratio should be around (2·log p)/3 ≈ 4 at p = 64.
	ratio := resRepeat.Ops / resDoubling.Ops
	if ratio < 2 || ratio > 8 {
		t.Fatalf("work ratio = %g, expected around 4", ratio)
	}

	// 2. But it moves more data: 2m words per spawned processor against
	// m per broadcast edge.
	if resDoubling.Words <= resRepeat.Words {
		t.Fatalf("doubling comcast words (%d) not above bcast;repeat words (%d)",
			resDoubling.Words, resRepeat.Words)
	}

	// 3. And it is slower in time — the paper's punchline.
	if resDoubling.Makespan <= resRepeat.Makespan {
		t.Fatalf("doubling comcast (%g) not slower than bcast;repeat (%g)",
			resDoubling.Makespan, resRepeat.Makespan)
	}
}

// TestBcastVolume pins the communication volume of the binomial
// broadcast: every processor except the root receives the block exactly
// once, so the total volume is (p−1)·m words.
func TestBcastVolume(t *testing.T) {
	mach := core.Machine{Ts: 10, Tw: 1, P: 16, M: 32}
	prog := core.NewProgram().Bcast()
	in := inputs(3, mach.P, mach.M)
	_, res := prog.Run(mach, in)
	if want := (mach.P - 1) * mach.M; res.Words != want {
		t.Fatalf("bcast volume = %d words, want %d", res.Words, want)
	}
	if res.Messages != mach.P-1 {
		t.Fatalf("bcast messages = %d, want %d", res.Messages, mach.P-1)
	}
}

// TestRuleReducesVolume: SR2-Reduction halves the number of transfers
// (one butterfly instead of two) at the price of doubling each message.
func TestRuleReducesVolume(t *testing.T) {
	mach := core.Machine{Ts: 5000, Tw: 1, P: 32, M: 64}
	in := inputs(4, mach.P, mach.M)
	lhs := core.NewProgram().Scan(algebra.Mul).Reduce(algebra.Add)
	opt := lhs.Optimize(mach)
	if len(opt.Applications) != 1 {
		t.Fatalf("applications = %v", opt.Applications)
	}
	_, before := lhs.Run(mach, in)
	_, after := opt.Program.Run(mach, in)
	if after.Messages >= before.Messages {
		t.Fatalf("messages did not drop: %d -> %d", before.Messages, after.Messages)
	}
	// Volume stays comparable: half the transfers, twice the words each.
	if after.Words > before.Words+mach.P*mach.M {
		t.Fatalf("volume exploded: %d -> %d", before.Words, after.Words)
	}
}
