package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/coll/sel"
	"repro/internal/cost"
	"repro/internal/rules"
)

func vecInput(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for r := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*5+j*3)%7 + 1)
		}
		in[r] = b
	}
	return in
}

// TestOptimizeOptsAuto: auto-selection populates the selections, scores
// with the portfolio model, and is never worse than the butterfly score.
func TestOptimizeOptsAuto(t *testing.T) {
	prog := NewProgram().Scan(algebra.Add).AllReduce(algebra.Add)
	m := Machine{Ts: 203.6, Tw: 0.007, P: 8, M: 4096}
	opt, err := prog.OptimizeOpts(m, OptimizeOptions{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Selection) == 0 {
		t.Fatal("auto optimization recorded no selections")
	}
	plain := prog.Optimize(m)
	if opt.EstimateAfter > plain.EstimateAfter {
		t.Fatalf("auto estimate %.0f exceeds butterfly estimate %.0f", opt.EstimateAfter, plain.EstimateAfter)
	}
	for _, s := range opt.Selection {
		if s.Predicted > s.Butterfly {
			t.Fatalf("selection %v predicted worse than butterfly", s)
		}
	}
	// The summary mentions the selection.
	if sum := opt.Summary(); len(sum) == 0 {
		t.Fatal("empty summary")
	}
}

// TestRunSelectedBitwise: executing the selected algorithms yields
// bit-identical results to the butterfly executor, on both backends.
func TestRunSelectedBitwise(t *testing.T) {
	for _, p := range []int{4, 7, 8} { // pow2 and folded
		prog := NewProgram().AllReduce(algebra.Add).Reduce(algebra.Add)
		mach := Machine{Ts: 203.6, Tw: 0.007, P: p, M: 4096}
		opt, err := prog.OptimizeOpts(mach, OptimizeOptions{Auto: true})
		if err != nil {
			t.Fatal(err)
		}
		nonBF := 0
		for _, s := range opt.Selection {
			if s.Algo != cost.AlgoButterfly {
				nonBF++
			}
		}
		if nonBF == 0 {
			t.Fatalf("p=%d: expected non-butterfly selections at m=4096, got %v", p, opt.Selection)
		}
		in := vecInput(p, 4096)
		plain, _ := opt.Program.Run(mach, in)
		selV, _ := opt.Program.RunSelected(mach, in, opt.Selection)
		selN, _ := opt.Program.RunNativeSelected(p, in, opt.Selection)
		for r := 0; r < p; r++ {
			if !algebra.Equal(plain[r], selV[r]) {
				t.Fatalf("p=%d rank %d: selected virtual differs from butterfly", p, r)
			}
			if !algebra.Equal(selV[r], selN[r]) {
				t.Fatalf("p=%d rank %d: selected native differs from selected virtual", p, r)
			}
		}
	}
}

// TestRunSelectedFallback: a selection whose shape requirement the
// run-time value cannot satisfy falls back to the butterfly rather than
// panicking — and still computes the right answer.
func TestRunSelectedFallback(t *testing.T) {
	prog := NewProgram().AllReduce(algebra.Add)
	mach := Machine{Ts: 203.6, Tw: 0.007, P: 8, M: 4096}
	sels := []sel.Selection{{Stage: 0, Collective: cost.CollAllReduce, Algo: cost.AlgoRabenseifner}}
	in := vecInput(8, 4) // 4 words < 8 ranks: rabenseifner cannot run
	got, _ := prog.RunSelected(mach, in, sels)
	want, _ := prog.Run(mach, in)
	for r := range want {
		if !algebra.Equal(got[r], want[r]) {
			t.Fatalf("rank %d: fallback result differs", r)
		}
	}
}

// TestRunSelectedEmptySelections routes through the plain executor.
func TestRunSelectedEmptySelections(t *testing.T) {
	prog := NewProgram().Scan(algebra.Add)
	mach := Machine{Ts: 10, Tw: 1, P: 4, M: 8}
	in := vecInput(4, 8)
	got, _ := prog.RunSelected(mach, in, nil)
	want, _ := prog.Run(mach, in)
	for r := range want {
		if !algebra.Equal(got[r], want[r]) {
			t.Fatalf("rank %d differs", r)
		}
	}
}

// TestAutoSearchNeverWorse: the searched auto plan scores no worse than
// the greedy auto plan, and both verify.
func TestAutoSearchNeverWorse(t *testing.T) {
	prog := NewProgram().Scan(algebra.Mul).Reduce(algebra.Add)
	mach := Machine{Ts: 203.6, Tw: 0.007, P: 8, M: 4096}
	vcfg := rules.VerifyConfig{Seed: 5, BlockWords: 3}
	greedy, err := prog.OptimizeOpts(mach, OptimizeOptions{Auto: true, Verify: true, VerifyConfig: vcfg})
	if err != nil {
		t.Fatal(err)
	}
	searched, err := prog.OptimizeOpts(mach, OptimizeOptions{Auto: true, Search: true, Verify: true, VerifyConfig: vcfg})
	if err != nil {
		t.Fatal(err)
	}
	if searched.EstimateAfter > greedy.EstimateAfter {
		t.Fatalf("searched auto plan %.0f worse than greedy auto plan %.0f",
			searched.EstimateAfter, greedy.EstimateAfter)
	}
	if searched.Search == nil {
		t.Fatal("searched plan missing stats")
	}
}
