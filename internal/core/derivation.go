package core

import (
	"fmt"
	"strings"

	"repro/internal/rules"
	"repro/internal/term"
)

// Derivation is an interactive program-design session in the style of §5:
// start from a specification, inspect which rules apply, apply chosen
// ones (by name, optionally at a position), undo, and finally render the
// whole derivation as the paper renders PolyEval_1 → PolyEval_3. Unlike
// Program.Optimize, which commits to the engine's greedy choice, a
// Derivation keeps the programmer in charge — the paper's "methodical use
// of the presented optimization rules".
type Derivation struct {
	mach    Machine
	env     rules.Env
	history []Program
	steps   []rules.Application
}

// NewDerivation starts a derivation from the specification program,
// targeting machine m (used for cost estimates and the Local rules'
// power-of-two requirement).
func NewDerivation(spec Program, m Machine) *Derivation {
	env := rules.DefaultEnv()
	env.P = m.P
	return &Derivation{
		mach:    m,
		env:     env,
		history: []Program{spec},
	}
}

// Current is the program as derived so far.
func (d *Derivation) Current() Program {
	return d.history[len(d.history)-1]
}

// Options lists the rule applications available on the current program,
// with cost estimates for the target machine.
func (d *Derivation) Options() []rules.Application {
	eng := rules.NewCostGuidedEngine(d.mach.costParams())
	eng.Env = d.env
	return eng.Applicable(d.Current().Term())
}

// Apply applies the named rule at the first position it matches (or at
// the given stage position if pos ≥ 0). It verifies the step's semantic
// equality on random inputs before committing and returns the recorded
// application.
func (d *Derivation) Apply(ruleName string, pos int) (rules.Application, error) {
	r, ok := rules.ByName(ruleName)
	if !ok {
		return rules.Application{}, fmt.Errorf("core: unknown rule %q", ruleName)
	}
	stages := term.Stages(d.Current().Term())
	for i := range stages {
		if pos >= 0 && i != pos {
			continue
		}
		if i+r.Window > len(stages) {
			continue
		}
		window := stages[i : i+r.Window]
		repl, ok := r.Try(window, d.env)
		if !ok {
			continue
		}
		app := rules.Application{
			Rule:   r.Name,
			Pos:    i,
			Before: append([]term.Term(nil), window...),
			After:  repl,
		}
		app.CostBefore = costOf(term.Seq(window), d.mach)
		app.CostAfter = costOf(term.Seq(repl), d.mach)
		if err := rules.VerifyApplication(app, rules.VerifyConfig{Seed: 17, BlockWords: 3}); err != nil {
			return rules.Application{}, fmt.Errorf("core: rule %s failed verification: %w", ruleName, err)
		}
		out := make([]term.Term, 0, len(stages)-r.Window+len(repl))
		out = append(out, stages[:i]...)
		out = append(out, repl...)
		out = append(out, stages[i+r.Window:]...)
		d.history = append(d.history, FromTerm(term.Seq(out)))
		d.steps = append(d.steps, app)
		return app, nil
	}
	if pos >= 0 {
		return rules.Application{}, fmt.Errorf("core: rule %s does not match at stage %d", ruleName, pos)
	}
	return rules.Application{}, fmt.Errorf("core: rule %s does not match anywhere in %s", ruleName, d.Current())
}

// Undo reverts the last applied step; it reports whether there was one.
func (d *Derivation) Undo() bool {
	if len(d.steps) == 0 {
		return false
	}
	d.history = d.history[:len(d.history)-1]
	d.steps = d.steps[:len(d.steps)-1]
	return true
}

// Steps returns the applications performed so far, in order.
func (d *Derivation) Steps() []rules.Application {
	return append([]rules.Application(nil), d.steps...)
}

// Script renders the derivation the way §5 presents PolyEval: the
// numbered programs interleaved with the rules that connect them, with
// cost estimates for the target machine.
func (d *Derivation) Script() string {
	var b strings.Builder
	for i, prog := range d.history {
		fmt.Fprintf(&b, "P_%d = %s", i+1, prog)
		fmt.Fprintf(&b, "   (estimate %.0f)\n", prog.Estimate(d.mach))
		if i < len(d.steps) {
			fmt.Fprintf(&b, "    |  %s  { %s }\n", d.steps[i].Rule, ruleCond(d.steps[i].Rule))
			fmt.Fprintf(&b, "    v\n")
		}
	}
	return b.String()
}

func ruleCond(name string) string {
	if r, ok := rules.ByName(name); ok {
		return r.Cond
	}
	return "—"
}

// costOf estimates a term fragment on the machine.
func costOf(t term.Term, m Machine) float64 {
	return FromTerm(t).Estimate(m)
}
