package core

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/rules"
)

func derivMachine() Machine { return Machine{Ts: 2000, Tw: 1, P: 16, M: 8} }

func TestDerivationWalkthrough(t *testing.T) {
	// bcast ; scan(+) ; scan(+) — choose SS-Scan first (against the
	// engine's greedy BSS-Comcast), then BS-Comcast is gone, then undo
	// and take the engine's preferred route.
	spec := NewProgram().Bcast().Scan(algebra.Add).Scan(algebra.Add)
	d := NewDerivation(spec, derivMachine())

	opts := d.Options()
	names := map[string]bool{}
	for _, o := range opts {
		names[o.Rule] = true
	}
	if !names["BSS-Comcast"] || !names["BS-Comcast"] || !names["SS-Scan"] {
		t.Fatalf("options = %v", opts)
	}

	app, err := d.Apply("SS-Scan", -1)
	if err != nil {
		t.Fatal(err)
	}
	if app.Rule != "SS-Scan" || app.Pos != 1 {
		t.Fatalf("application = %+v", app)
	}
	if !strings.Contains(d.Current().String(), "scan_balanced") {
		t.Fatalf("current = %s", d.Current())
	}

	// Undo and take the comcast route instead.
	if !d.Undo() {
		t.Fatal("undo failed")
	}
	if d.Current().String() != spec.String() {
		t.Fatalf("undo did not restore the spec: %s", d.Current())
	}
	if _, err := d.Apply("BSS-Comcast", 0); err != nil {
		t.Fatal(err)
	}
	if len(d.Steps()) != 1 {
		t.Fatalf("steps = %v", d.Steps())
	}

	script := d.Script()
	for _, want := range []string{"P_1 =", "P_2 =", "BSS-Comcast", "⊕ is commutative", "estimate"} {
		if !strings.Contains(script, want) {
			t.Fatalf("script missing %q:\n%s", want, script)
		}
	}
}

func TestDerivationPolyEvalStyle(t *testing.T) {
	// The §5 derivation shape: the spec's bcast;scan window fuses by
	// BS-Comcast, exactly one step.
	spec := NewProgram().Bcast().Scan(algebra.Mul)
	d := NewDerivation(spec, derivMachine())
	if _, err := d.Apply("BS-Comcast", -1); err != nil {
		t.Fatal(err)
	}
	if len(d.Options()) != 0 {
		t.Fatalf("unexpected further options: %v", d.Options())
	}
	// The derived program agrees with the spec.
	if err := spec.Verify(d.Current(), rules.VerifyConfig{Seed: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestDerivationErrors(t *testing.T) {
	spec := NewProgram().Scan(algebra.Add)
	d := NewDerivation(spec, derivMachine())
	if _, err := d.Apply("No-Such-Rule", -1); err == nil {
		t.Fatal("unknown rule accepted")
	}
	if _, err := d.Apply("BS-Comcast", -1); err == nil {
		t.Fatal("non-matching rule accepted")
	}
	if _, err := d.Apply("SS-Scan", 5); err == nil {
		t.Fatal("non-matching position accepted")
	}
	if d.Undo() {
		t.Fatal("undo on empty history succeeded")
	}
}

func TestDerivationRespectsMachineSize(t *testing.T) {
	// BR-Local must not be offered on a non-power-of-two machine.
	spec := NewProgram().Bcast().Reduce(algebra.Add)
	d := NewDerivation(spec, Machine{Ts: 100, Tw: 1, P: 6, M: 4})
	for _, o := range d.Options() {
		if o.Rule == "BR-Local" {
			t.Fatalf("BR-Local offered on p=6: %v", d.Options())
		}
	}
	if _, err := d.Apply("BR-Local", -1); err == nil {
		t.Fatal("BR-Local applied on p=6")
	}
}
