package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/rules"
	"repro/internal/term"
)

// randProgram is the shared generator of the rules package (gen.go):
// random stage soups over operators with known properties.
func randProgram(rng *rand.Rand, maxStages int) term.Seq {
	return rules.RandProgram(rng, maxStages)
}

// TestFuzzMachineAgreesWithSemantics runs random programs — original and
// optimized, paper rules and extensions — on the virtual machine and
// compares every outcome against the functional semantics. This is the
// full-stack version of the rules fuzzer: it exercises the executor, the
// collectives and the communicator tags under arbitrary stage orders.
func TestFuzzMachineAgreesWithSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	mach := Machine{Ts: 20, Tw: 1, P: 8, M: 1}
	for trial := 0; trial < 120; trial++ {
		prog := FromTerm(randProgram(rng, 6))
		in := randScalars(rng, mach.P)

		if err := prog.CrossCheckTol(mach, in, 1e-9); err != nil {
			t.Fatalf("trial %d original: %v\n  program: %s", trial, err, prog)
		}

		opt := prog.OptimizeExhaustively(algebra.Default(), mach.P)
		if err := opt.Program.CrossCheckTol(mach, in, 1e-9); err != nil {
			t.Fatalf("trial %d optimized: %v\n  program: %s", trial, err, opt.Program)
		}
		// Original and optimized agree on the machine, modulo
		// undetermined positions.
		a, _ := prog.Run(mach, in)
		b, _ := opt.Program.Run(mach, in)
		want := term.Eval(prog.Term(), in)
		for i := range want {
			if !algebra.EqualApproxModuloUndef(want[i], a[i], 1e-9) {
				t.Fatalf("trial %d: machine original diverges at %d: %v vs %v\n  %s",
					trial, i, a[i], want[i], prog)
			}
			if !algebra.EqualApproxModuloUndef(want[i], b[i], 1e-9) {
				t.Fatalf("trial %d: machine optimized diverges at %d: %v vs %v\n  %s -> %s",
					trial, i, b[i], want[i], prog, opt.Program)
			}
		}

		ext := rules.NewEngine()
		ext.Rules = rules.AllWithExtensions()
		ext.Env.P = mach.P
		extTerm, _ := ext.Optimize(prog.Term())
		if err := FromTerm(extTerm).CrossCheckTol(mach, in, 1e-9); err != nil {
			t.Fatalf("trial %d extensions: %v\n  program: %s -> %s", trial, err, prog, extTerm)
		}
	}
}
