package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

// TestBuilderCoversEveryStage builds the right-hand sides of the rules by
// hand with the full builder API and runs them, checking they compute what
// their rule's left-hand side computes.
func TestBuilderCoversEveryStage(t *testing.T) {
	mach := testMachine(8)
	in := scalars(3, 1, 4, 1, 5, 9, 2, 6)

	// SR-Reduction RHS by hand: map pair ; reduce_balanced(op_sr) ; map π₁.
	sr := algebra.OpSR(algebra.Add)
	rhs := NewProgram().Map(term.PairFn).ReduceBalanced(sr).Map(term.FirstFn)
	lhs := NewProgram().Scan(algebra.Add).Reduce(algebra.Add)
	outR, _ := rhs.Run(mach, in)
	outL, _ := lhs.Run(mach, in)
	if !algebra.Equal(algebra.First(outR[0]), outL[0]) {
		t.Fatalf("manual SR RHS = %v, LHS = %v", outR[0], outL[0])
	}

	// SR allreduce variant: AllReduceBalanced.
	rhsAll := NewProgram().Map(term.PairFn).AllReduceBalanced(sr).Map(term.FirstFn)
	lhsAll := NewProgram().Scan(algebra.Add).AllReduce(algebra.Add)
	outRA, _ := rhsAll.Run(mach, in)
	outLA, _ := lhsAll.Run(mach, in)
	for i := range outRA {
		if !algebra.Equal(algebra.First(outRA[i]), outLA[i]) {
			t.Fatalf("pos %d: %v vs %v", i, outRA[i], outLA[i])
		}
	}

	// SS-Scan RHS by hand: map quadruple ; scan_balanced(op_ss) ; map π₁.
	ss := algebra.OpSS(algebra.Add)
	rhsSS := NewProgram().Map(term.QuadrupleFn).ScanBalanced(ss).Map(term.FirstFn)
	lhsSS := NewProgram().Scan(algebra.Add).Scan(algebra.Add)
	outRS, _ := rhsSS.Run(mach, in)
	outLS, _ := lhsSS.Run(mach, in)
	for i := range outRS {
		if !algebra.Equal(outRS[i], outLS[i]) {
			t.Fatalf("pos %d: %v vs %v", i, outRS[i], outLS[i])
		}
	}

	// Comcast builder, both implementations.
	ops := algebra.OpCompBS(algebra.Add)
	bin := make([]algebra.Value, 8)
	for i := range bin {
		bin[i] = algebra.Undef{}
	}
	bin[0] = algebra.Scalar(2)
	for _, costOpt := range []bool{false, true} {
		prog := NewProgram().Comcast(ops, costOpt)
		out, _ := prog.Run(mach, bin)
		for k := range out {
			want := algebra.Scalar(float64(2 * (k + 1)))
			if !algebra.Equal(out[k], want) {
				t.Fatalf("comcast(costOpt=%v) proc %d = %v, want %v", costOpt, k, out[k], want)
			}
		}
	}

	// Iter builder: BR-Local RHS.
	br := NewProgram().Iter(algebra.OpBR(algebra.Add))
	outI, _ := br.Run(mach, bin)
	if !algebra.Equal(outI[0], algebra.Scalar(16)) {
		t.Fatalf("iter = %v, want 16", outI[0])
	}

	// MapIdx builder.
	addIdx := &term.IdxFn{
		Name: "addidx",
		F: func(i int, v algebra.Value) algebra.Value {
			return algebra.Add.Apply(v, algebra.Scalar(float64(i)))
		},
		Charge: func(i, m int) float64 { return float64(m) },
	}
	mi := NewProgram().MapIdx(addIdx)
	outM, _ := mi.Run(mach, in)
	for i := range outM {
		want := algebra.Add.Apply(in[i], algebra.Scalar(float64(i)))
		if !algebra.Equal(outM[i], want) {
			t.Fatalf("map# pos %d = %v, want %v", i, outM[i], want)
		}
	}
}

func TestBuilderStageStrings(t *testing.T) {
	sr := algebra.OpSR(algebra.Max)
	ss := algebra.OpSS(algebra.Min)
	ops := algebra.OpCompBS(algebra.Mul)
	prog := NewProgram().
		ReduceBalanced(sr).
		AllReduceBalanced(sr).
		ScanBalanced(ss).
		Comcast(ops, true).
		Iter(algebra.OpBR(algebra.Add))
	want := "reduce_balanced(op_sr(max)) ; allreduce_balanced(op_sr(max)) ; " +
		"scan_balanced(op_ss(min)) ; comcast(op_comp_bs(*)) ; iter(op_br(+))"
	if got := prog.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestEqualTermsMoreStages(t *testing.T) {
	ss := algebra.OpSS(algebra.Add)
	ops := algebra.OpCompBS(algebra.Add)
	br := algebra.OpBR(algebra.Add)
	idx := &term.IdxFn{Name: "i", F: func(i int, v algebra.Value) algebra.Value { return v }}
	pairs := []struct {
		a, b term.Term
		want bool
	}{
		{term.ScanBal{Op: ss}, term.ScanBal{Op: ss}, true},
		{term.ScanBal{Op: ss}, term.ScanBal{Op: algebra.OpSS(algebra.Add)}, false},
		{term.Comcast{Ops: ops}, term.Comcast{Ops: ops}, true},
		{term.Comcast{Ops: ops}, term.Comcast{Ops: ops, CostOptimal: true}, false},
		{term.Iter{Op: br}, term.Iter{Op: br}, true},
		{term.Iter{Op: br}, term.Iter{Op: algebra.OpBR(algebra.Add)}, false},
		{term.MapIdx{F: idx}, term.MapIdx{F: idx}, true},
		{term.MapIdx{F: idx}, term.Bcast{}, false},
	}
	for _, c := range pairs {
		if got := term.EqualTerms(c.a, c.b); got != c.want {
			t.Errorf("EqualTerms(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGatherScatterStagesOnMachine(t *testing.T) {
	// gather ; scatter is the identity; executor must agree with the
	// semantics (modulo undefined positions mid-pipeline).
	prog := FromTerm(term.Seq{term.Gather{}, term.Scatter{}})
	in := scalars(4, 5, 6, 7, 8)
	if err := prog.CrossCheck(testMachine(5), in); err != nil {
		t.Fatal(err)
	}
	out, _ := prog.Run(testMachine(5), in)
	if !algebra.EqualLists(out, in) {
		t.Fatalf("gather;scatter = %v, want %v", out, in)
	}
	// gather alone: the root ends with the full list.
	gOnly := FromTerm(term.Seq{term.Gather{}})
	outG, _ := gOnly.Run(testMachine(5), in)
	list, ok := outG[0].(algebra.Tuple)
	if !ok || len(list) != 5 {
		t.Fatalf("gather root = %v", outG[0])
	}
	if err := gOnly.CrossCheck(testMachine(5), in); err != nil {
		t.Fatal(err)
	}
}
