package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/term"
)

// ExecNative runs a term on the native backend, SPMD-style: one real
// goroutine per rank, every stage realized by the same collectives as on
// the virtual machine but with wall-clock timing — Result.Makespan is the
// host's measured run time from the barrier-synchronized start to the
// last rank's finish.
func ExecNative(t term.Term, nm *backend.Machine, input []algebra.Value) ([]algebra.Value, backend.Result) {
	if len(input) != nm.P {
		panic(fmt.Sprintf("core: input length %d does not match machine size %d", len(input), nm.P))
	}
	out := make([]algebra.Value, nm.P)
	res := nm.Run(func(p *backend.Proc) {
		out[p.Rank()] = RunStages(p, t, input[p.Rank()])
	})
	return out, res
}

// RunNative executes the program on the native backend with procs ranks
// and returns the output list and the wall-clock result. The outputs are
// bit-identical to Run's — both backends execute the same collective
// algorithms in the same combining order — only the notion of time
// differs.
func (p Program) RunNative(procs int, input []algebra.Value) ([]algebra.Value, backend.Result) {
	return ExecNative(p.stages, backend.New(procs), input)
}

// RunOn is RunNative with a caller-configured machine (timeout, injected
// start-up latency).
func (p Program) RunOn(nm *backend.Machine, input []algebra.Value) ([]algebra.Value, backend.Result) {
	return ExecNative(p.stages, nm, input)
}
