package core

import (
	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
	"repro/internal/coll/sel"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/term"
)

// This file is the execution side of the algorithm-selection layer: it
// runs a program like RunStages, but dispatches every selected reduction
// stage to the chosen portfolio algorithm (coll/algo.go) instead of the
// butterfly. Selections come from sel.ForTerm — typically via
// Optimization.Selection — and address stages by flattened index, the
// same numbering ForTerm produced them under.

// RunStagesSelected executes the stages of t over the communicator,
// honoring the algorithm selections: a stage whose index carries a
// selection runs the chosen algorithm. Every other stage executes exactly
// as RunStages. A selection predicted for a block shape the run-time
// value does not satisfy (e.g. fewer words than group members) falls back
// to the butterfly; the check is on the rank's local value, so SPMD
// callers must feed uniformly shaped blocks — the same contract the
// collectives themselves have.
func RunStagesSelected(c coll.Comm, t term.Term, v algebra.Value, sels []sel.Selection) algebra.Value {
	if len(sels) == 0 {
		return RunStages(c, t, v)
	}
	byStage := make(map[int]sel.Selection, len(sels))
	for _, s := range sels {
		byStage[s.Stage] = s
	}
	mk, _ := c.(coll.Marker)
	idx := 0
	var walk func(t term.Term, v algebra.Value) algebra.Value
	walk = func(t term.Term, v algebra.Value) algebra.Value {
		for _, s := range term.Stages(t) {
			if sq, ok := s.(term.Seq); ok {
				v = walk(sq, v)
				continue
			}
			if mk != nil {
				mk.Mark(s.String())
			}
			if r, ok := s.(term.Reduce); ok {
				if choice, sel := byStage[idx]; sel && choice.Algo != cost.AlgoButterfly {
					v = execSelectedReduce(c, r, v, choice)
					idx++
					continue
				}
			}
			v = execStage(s, c, v)
			idx++
		}
		return v
	}
	return walk(t, v)
}

// execSelectedReduce dispatches one reduction to the selected algorithm,
// or to the butterfly when the run-time value fails the algorithm's
// shape requirement.
func execSelectedReduce(c coll.Comm, r term.Reduce, v algebra.Value, s sel.Selection) algebra.Value {
	vec, isVec := v.(algebra.Vec)
	n := c.Size()
	ok := isVec
	switch s.Algo {
	case cost.AlgoRabenseifner, cost.AlgoRing:
		ok = ok && len(vec) >= n && r.All
	case cost.AlgoRingBi:
		ok = ok && len(vec) >= 2*n && r.All
	case cost.AlgoPipeline:
		ok = ok && len(vec) >= 1 && !r.All
	default:
		ok = false
	}
	if !ok {
		if r.All {
			return coll.AllReduce(c, r.Op, v)
		}
		return coll.Reduce(c, 0, r.Op, v)
	}
	switch s.Algo {
	case cost.AlgoRabenseifner:
		return coll.AllReduceRabenseifner(c, r.Op, v)
	case cost.AlgoRing:
		return coll.AllReduceRing(c, r.Op, v)
	case cost.AlgoRingBi:
		return coll.AllReduceRingBi(c, r.Op, v)
	}
	return coll.ReducePipelined(c, r.Op, v, s.Segments)
}

// RunSelected executes the program on the virtual machine honoring the
// algorithm selections (typically Optimization.Selection from an
// auto-selecting optimization).
func (p Program) RunSelected(m Machine, input []algebra.Value, sels []sel.Selection) ([]algebra.Value, machine.Result) {
	vm := m.virtual()
	out := make([]algebra.Value, vm.P)
	res := vm.Run(func(pr *machine.Proc) {
		out[pr.Rank()] = RunStagesSelected(coll.World(pr), p.stages, input[pr.Rank()], sels)
	})
	return out, res
}

// RunNativeSelected is RunSelected on the native backend.
func (p Program) RunNativeSelected(procs int, input []algebra.Value, sels []sel.Selection) ([]algebra.Value, backend.Result) {
	nm := backend.New(procs)
	out := make([]algebra.Value, nm.P)
	res := nm.Run(func(pr *backend.Proc) {
		out[pr.Rank()] = RunStagesSelected(pr, p.stages, input[pr.Rank()], sels)
	})
	return out, res
}
