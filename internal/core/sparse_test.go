package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/rules"
	"repro/internal/term"
)

// sparseProgram builds a surface-syntax sparse program for machine size
// p, together with matching inputs. The programs go through lang.Parse so
// the conformance run covers exactly the path the multi-process backend
// takes.
func sparseProgram(kind string, p int, rng *rand.Rand) (string, []algebra.Value) {
	counts := make([]int, p)
	for i := range counts {
		counts[i] = rng.Intn(3) // zero-length blocks included
	}
	if term.SumCounts(counts) == 0 {
		counts[rng.Intn(p)] = 2
	}
	cs := make([]string, p)
	for i, c := range counts {
		cs[i] = fmt.Sprintf("%d", c)
	}
	list := strings.Join(cs, ",")
	total := term.SumCounts(counts)
	vec := func(n int) algebra.Vec {
		v := make(algebra.Vec, n)
		for j := range v {
			v[j] = float64(rng.Intn(19) - 9)
		}
		return v
	}
	switch kind {
	case "halo":
		in := make([]algebra.Value, p)
		for i := range in {
			in[i] = vec(2)
		}
		return "halo(-1,1)", in
	case "halo-chain":
		in := make([]algebra.Value, p)
		for i := range in {
			in[i] = vec(1)
		}
		return "halo(1,2) ; halo(0,3)", in
	case "agv":
		in := make([]algebra.Value, p)
		for i := range in {
			in[i] = vec(counts[i])
		}
		return fmt.Sprintf("allgatherv(%s)", list), in
	case "rsv":
		in := make([]algebra.Value, p)
		for i := range in {
			in[i] = vec(total)
		}
		return fmt.Sprintf("reduce_scatterv(+,%s)", list), in
	case "rsv-agv":
		in := make([]algebra.Value, p)
		for i := range in {
			in[i] = vec(total)
		}
		return fmt.Sprintf("reduce_scatterv(max,%s) ; allgatherv(%s)", list, list), in
	}
	panic("unknown kind " + kind)
}

// TestSparseConformance checks bitwise agreement of the machine-
// independent semantics (term.Eval), the virtual machine, and the native
// backend on every sparse program shape, at power-of-two and awkward
// machine sizes alike.
func TestSparseConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	kinds := []string{"halo", "halo-chain", "agv", "rsv", "rsv-agv"}
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, kind := range kinds {
			src, in := sparseProgram(kind, p, rng)
			prog, err := lang.Parse(src, nil)
			if err != nil {
				t.Fatalf("p=%d %s: parse: %v", p, kind, err)
			}
			want := term.Eval(prog, in)
			virt, _ := Exec(prog, machine.New(p, machine.Params{Ts: 4, Tw: 1}), in)
			nat, _ := ExecNative(prog, backend.New(p), in)
			for r := 0; r < p; r++ {
				if !algebra.Equal(virt[r], want[r]) {
					t.Fatalf("p=%d %s rank %d: virtual %v, eval %v", p, kind, r, virt[r], want[r])
				}
				if !algebra.Equal(nat[r], want[r]) {
					t.Fatalf("p=%d %s rank %d: native %v, eval %v", p, kind, r, nat[r], want[r])
				}
			}
		}
	}
}

// TestSparseOptimizedConformance rewrites each sparse program with the
// full rule set (greedy engine, machine-size pinned) and checks the
// optimized form still conforms on both backends.
func TestSparseOptimizedConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	for _, p := range []int{2, 3, 4, 6} {
		for _, kind := range []string{"halo-chain", "rsv-agv"} {
			src, in := sparseProgram(kind, p, rng)
			prog, err := lang.Parse(src, nil)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			eng := rules.NewEngine()
			eng.Env.P = p
			opt, apps := eng.Optimize(prog)
			if len(apps) == 0 {
				t.Fatalf("p=%d %s: no rewrite fired on %s", p, kind, src)
			}
			want := term.Eval(prog, in)
			virt, _ := Exec(opt, machine.New(p, machine.Params{Ts: 4, Tw: 1}), in)
			nat, _ := ExecNative(opt, backend.New(p), in)
			for r := 0; r < p; r++ {
				if !algebra.Equal(virt[r], want[r]) {
					t.Fatalf("p=%d %s rank %d: optimized virtual %v, eval %v", p, kind, r, virt[r], want[r])
				}
				if !algebra.Equal(nat[r], want[r]) {
					t.Fatalf("p=%d %s rank %d: optimized native %v, eval %v", p, kind, r, nat[r], want[r])
				}
			}
		}
	}
}
