package core_test

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
)

// ExampleProgram_Optimize shows the basic workflow: build a program of
// collective operations, let the cost-guided engine rewrite it for a
// start-up-dominated machine, and inspect the result.
func ExampleProgram_Optimize() {
	prog := core.NewProgram().Scan(algebra.Mul).Reduce(algebra.Add)
	mach := core.Machine{Ts: 1000, Tw: 1, P: 64, M: 16}

	opt := prog.Optimize(mach)
	fmt.Println(opt.Program)
	fmt.Println(opt.Applications[0].Rule)
	// Output:
	// map pair ; reduce(op_sr2(*,+)) ; map pi_1
	// SR2-Reduction
}

// ExampleProgram_Run executes a program on the virtual machine; the
// Makespan is the run time under the paper's §4.1 cost model.
func ExampleProgram_Run() {
	prog := core.NewProgram().Bcast().Scan(algebra.Add)
	mach := core.Machine{Ts: 100, Tw: 1, P: 4}

	in := []algebra.Value{
		algebra.Scalar(5), algebra.Scalar(0), algebra.Scalar(0), algebra.Scalar(0),
	}
	out, res := prog.Run(mach, in)
	fmt.Println(out)
	fmt.Println(res.Makespan)
	// Output:
	// [5 10 15 20]
	// 408
}

// ExampleProgram_Verify checks a rewriting by randomized testing of the
// functional semantics.
func ExampleProgram_Verify() {
	lhs := core.NewProgram().Bcast().Scan(algebra.Add).Scan(algebra.Add)
	opt := lhs.OptimizeExhaustively(algebra.Default(), 0)

	err := lhs.Verify(opt.Program, rules.VerifyConfig{Seed: 1})
	fmt.Println(opt.Program)
	fmt.Println(err)
	// Output:
	// bcast; map# repeat(op_comp_bss(+))
	// <nil>
}

// ExampleProgram_Applicable lists the rewriting opportunities without
// committing to any — the menu the programmer chooses from.
func ExampleProgram_Applicable() {
	prog := core.NewProgram().Bcast().Scan(algebra.Add).Scan(algebra.Add)
	mach := core.Machine{Ts: 1000, Tw: 1, P: 16, M: 8}

	for _, a := range prog.Applicable(mach) {
		fmt.Printf("%s at stage %d\n", a.Rule, a.Pos)
	}
	// Output:
	// BSS-Comcast at stage 0
	// BS-Comcast at stage 0
	// SS-Scan at stage 1
}
