package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/rules"
	"repro/internal/term"
)

func scalars(xs ...float64) []algebra.Value {
	out := make([]algebra.Value, len(xs))
	for i, x := range xs {
		out[i] = algebra.Scalar(x)
	}
	return out
}

func randScalars(rng *rand.Rand, n int) []algebra.Value {
	out := make([]algebra.Value, n)
	for i := range out {
		out[i] = algebra.Scalar(float64(rng.Intn(13) - 6))
	}
	return out
}

func testMachine(p int) Machine { return Machine{Ts: 50, Tw: 1, P: p, M: 1} }

func TestProgramBuilderAndString(t *testing.T) {
	p := NewProgram().Scan(algebra.Mul).Reduce(algebra.Add).Bcast()
	if got, want := p.String(), "scan(*) ; reduce(+) ; bcast"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := NewProgram().String(); got != "id" {
		t.Fatalf("empty program String = %q", got)
	}
}

func TestProgramImmutableBuilder(t *testing.T) {
	base := NewProgram().Bcast()
	a := base.Scan(algebra.Add)
	b := base.Reduce(algebra.Add)
	if a.String() == b.String() {
		t.Fatalf("builder shares state: %q vs %q", a, b)
	}
	if base.String() != "bcast" {
		t.Fatalf("base mutated: %q", base)
	}
}

func TestProgramThenComposes(t *testing.T) {
	a := NewProgram().Bcast()
	b := NewProgram().Scan(algebra.Add)
	c := a.Then(b)
	if got, want := c.String(), "bcast ; scan(+)"; got != want {
		t.Fatalf("Then = %q, want %q", got, want)
	}
}

func TestRunExampleProgram(t *testing.T) {
	// The paper's Example at p = 4 — must match the functional semantics.
	f := &term.Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}
	g := &term.Fn{Name: "g", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(2))
	}}
	prog := NewProgram().Map(f).Scan(algebra.Add).Reduce(algebra.Add).Map(g).Bcast()
	out, res := prog.Run(testMachine(4), scalars(1, 2, 3, 4))
	if !algebra.EqualLists(out, scalars(60, 60, 60, 60)) {
		t.Fatalf("Example output = %v", out)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
}

func TestRunPanicsOnWrongInputLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProgram().Bcast().Run(testMachine(4), scalars(1, 2))
}

// TestExecutorAgreesWithSemantics cross-checks the machine executor
// against the functional semantics for every stage type, over a range of
// machine sizes.
func TestExecutorAgreesWithSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	progs := map[string]Program{
		"scan":           NewProgram().Scan(algebra.Add),
		"reduce":         NewProgram().Reduce(algebra.Add),
		"allreduce":      NewProgram().AllReduce(algebra.Mul),
		"bcast":          NewProgram().Bcast(),
		"bcast;scan":     NewProgram().Bcast().Scan(algebra.Add),
		"scan;scan":      NewProgram().Scan(algebra.Mul).Scan(algebra.Add),
		"scan;reduce":    NewProgram().Scan(algebra.Add).Reduce(algebra.Add),
		"maps":           NewProgram().Map(term.PairFn).Map(term.FirstFn),
		"bcast;scan2":    NewProgram().Bcast().Scan(algebra.Mul).Scan(algebra.Add),
		"bcast;all":      NewProgram().Bcast().AllReduce(algebra.Add),
		"scan;bcast":     NewProgram().Scan(algebra.Add).Bcast(),
		"reduce;bcast":   NewProgram().Reduce(algebra.Max).Bcast(),
		"longpipeline":   NewProgram().Scan(algebra.Add).AllReduce(algebra.Max).Scan(algebra.Min),
		"noncommutative": NewProgram().Scan(algebra.Left).Reduce(algebra.Left),
	}
	for name, prog := range progs {
		for _, p := range []int{1, 2, 3, 5, 6, 8, 16} {
			in := randScalars(rng, p)
			if err := prog.CrossCheck(testMachine(p), in); err != nil {
				t.Fatalf("%s at p=%d: %v", name, p, err)
			}
		}
	}
}

// TestOptimizedProgramsAgreeOnMachine runs every rule's LHS and its
// rewritten RHS on the virtual machine and compares the outputs — the
// full-stack version of the semantic verification in package rules.
func TestOptimizedProgramsAgreeOnMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	progs := []Program{
		NewProgram().Scan(algebra.Mul).Reduce(algebra.Add),         // SR2
		NewProgram().Scan(algebra.Mul).AllReduce(algebra.Add),      // SR2 all
		NewProgram().Scan(algebra.Add).Reduce(algebra.Add),         // SR
		NewProgram().Scan(algebra.Add).AllReduce(algebra.Add),      // SR all
		NewProgram().Scan(algebra.Mul).Scan(algebra.Add),           // SS2
		NewProgram().Scan(algebra.Add).Scan(algebra.Add),           // SS
		NewProgram().Bcast().Scan(algebra.Add),                     // BS
		NewProgram().Bcast().Scan(algebra.Mul).Scan(algebra.Add),   // BSS2
		NewProgram().Bcast().Scan(algebra.Add).Scan(algebra.Add),   // BSS
		NewProgram().Bcast().Reduce(algebra.Add),                   // BR
		NewProgram().Bcast().Scan(algebra.Mul).Reduce(algebra.Add), // BSR2
		NewProgram().Bcast().Scan(algebra.Add).Reduce(algebra.Add), // BSR
		NewProgram().Bcast().AllReduce(algebra.Add),                // CR
	}
	for _, prog := range progs {
		opt := prog.OptimizeExhaustively(algebra.Default(), 8)
		if len(opt.Applications) == 0 {
			t.Fatalf("no rule applied to %s", prog)
		}
		for trial := 0; trial < 5; trial++ {
			in := randScalars(rng, 8)
			before, _ := prog.Run(testMachine(8), in)
			after, _ := opt.Program.Run(testMachine(8), in)
			// Machine reduce leaves non-root values in place while the
			// semantics marks them undetermined; compare the semantics
			// way: every determined position must agree.
			want := term.Eval(prog.Term(), in)
			if !algebra.EqualListsModuloUndef(before, want) {
				t.Fatalf("%s: machine LHS %v vs semantics %v", prog, before, want)
			}
			if !algebra.EqualListsModuloUndef(after, want) {
				t.Fatalf("%s -> %s: machine RHS %v vs semantics %v", prog, opt.Program, after, want)
			}
		}
	}
}

func TestOptimizeIsCostGuided(t *testing.T) {
	prog := NewProgram().Scan(algebra.Mul).Scan(algebra.Add)
	// Start-up dominated machine: SS2 should fire.
	opt := prog.Optimize(Machine{Ts: 100000, Tw: 1, P: 64, M: 10})
	if len(opt.Applications) != 1 || opt.Applications[0].Rule != "SS2-Scan" {
		t.Fatalf("applications = %v", opt.Applications)
	}
	if opt.EstimateAfter >= opt.EstimateBefore {
		t.Fatalf("estimates not improving: %v -> %v", opt.EstimateBefore, opt.EstimateAfter)
	}
	// Bandwidth-dominated machine: SS2 must not fire.
	opt = prog.Optimize(Machine{Ts: 1, Tw: 1, P: 64, M: 100000})
	if len(opt.Applications) != 0 {
		t.Fatalf("unprofitable rule applied: %v", opt.Applications)
	}
}

func TestOptimizationSummary(t *testing.T) {
	prog := NewProgram().Bcast().Scan(algebra.Add)
	opt := prog.Optimize(Machine{Ts: 100, Tw: 1, P: 16, M: 4})
	s := opt.Summary()
	if s == "" || opt.EstimateBefore <= opt.EstimateAfter {
		t.Fatalf("summary = %q, estimates %g -> %g", s, opt.EstimateBefore, opt.EstimateAfter)
	}
}

func TestApplicableReporting(t *testing.T) {
	prog := NewProgram().Bcast().Scan(algebra.Add).Scan(algebra.Add)
	apps := prog.Applicable(Machine{Ts: 100, Tw: 1, P: 16, M: 4})
	if len(apps) < 2 {
		t.Fatalf("applicable = %v", apps)
	}
	for _, a := range apps {
		if a.CostBefore == 0 {
			t.Fatalf("missing cost estimate in %v", a)
		}
	}
}

func TestVerifyProgramPair(t *testing.T) {
	lhs := NewProgram().Scan(algebra.Mul).Scan(algebra.Add)
	opt := lhs.OptimizeExhaustively(algebra.Default(), 0)
	if err := lhs.Verify(opt.Program, rules.VerifyConfig{Seed: 4, BlockWords: 4}); err != nil {
		t.Fatal(err)
	}
	wrong := NewProgram().Scan(algebra.Add).Scan(algebra.Add)
	if err := lhs.Verify(wrong, rules.VerifyConfig{Seed: 4}); err == nil {
		t.Fatal("Verify accepted inequivalent programs")
	}
}

func TestRunTracedCollectsEvents(t *testing.T) {
	prog := NewProgram().Bcast().Scan(algebra.Add)
	out, res, events := prog.RunTraced(testMachine(4), scalars(5, 0, 0, 0))
	if !algebra.EqualLists(out, scalars(5, 10, 15, 20)) {
		t.Fatalf("output = %v", out)
	}
	if res.Makespan <= 0 || len(events) == 0 {
		t.Fatalf("makespan %g, %d events", res.Makespan, len(events))
	}
}

// TestMeasuredImprovementMatchesPrediction runs a fusable program before
// and after optimization on a start-up-dominated machine and checks the
// measured makespans improve as the estimates promise.
func TestMeasuredImprovementMatchesPrediction(t *testing.T) {
	m := Machine{Ts: 5000, Tw: 1, P: 32, M: 16}
	prog := NewProgram().Scan(algebra.Mul).Reduce(algebra.Add)
	opt := prog.Optimize(m)
	if len(opt.Applications) != 1 {
		t.Fatalf("applications = %v", opt.Applications)
	}
	in := make([]algebra.Value, 32)
	for i := range in {
		v := make(algebra.Vec, 16)
		for j := range v {
			v[j] = float64(i + j)
		}
		in[i] = v
	}
	_, before := prog.Run(m, in)
	_, after := opt.Program.Run(m, in)
	if after.Makespan >= before.Makespan {
		t.Fatalf("no measured improvement: %g -> %g", before.Makespan, after.Makespan)
	}
	// The estimates should be close to the measurements (same model).
	if est := prog.Estimate(Machine{Ts: 5000, Tw: 1, P: 32, M: 16}); !within(est, before.Makespan, 0.05) {
		t.Fatalf("LHS estimate %g vs measured %g", est, before.Makespan)
	}
	if est := opt.Program.Estimate(Machine{Ts: 5000, Tw: 1, P: 32, M: 16}); !within(est, after.Makespan, 0.05) {
		t.Fatalf("RHS estimate %g vs measured %g", est, after.Makespan)
	}
}

func within(a, b, frac float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= frac*b
}
