package core

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/coll/sel"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/rules"
	"repro/internal/term"
)

// Program is a parallel program in the functional framework: a forward
// composition of local and collective stages. The zero value is the empty
// program; stages are appended with the builder methods, each of which
// returns a new Program (programs are immutable values).
type Program struct {
	stages term.Seq
}

// NewProgram returns the empty program.
func NewProgram() Program { return Program{} }

// FromTerm wraps an existing term as a Program.
func FromTerm(t term.Term) Program {
	return Program{stages: term.Compose(t)}
}

// Term returns the program's term.
func (p Program) Term() term.Term { return p.stages }

// String renders the program in the paper's notation.
func (p Program) String() string {
	if len(p.stages) == 0 {
		return "id"
	}
	return p.stages.String()
}

func (p Program) with(t term.Term) Program {
	out := make(term.Seq, len(p.stages), len(p.stages)+1)
	copy(out, p.stages)
	return Program{stages: append(out, t)}
}

// Map appends a local stage map f.
func (p Program) Map(f *term.Fn) Program { return p.with(term.Map{F: f}) }

// MapIdx appends an index-aware local stage map# f.
func (p Program) MapIdx(f *term.IdxFn) Program { return p.with(term.MapIdx{F: f}) }

// Scan appends scan(op).
func (p Program) Scan(op *algebra.Op) Program { return p.with(term.Scan{Op: op}) }

// Reduce appends reduce(op) (result on the first processor).
func (p Program) Reduce(op *algebra.Op) Program { return p.with(term.Reduce{Op: op}) }

// AllReduce appends allreduce(op).
func (p Program) AllReduce(op *algebra.Op) Program {
	return p.with(term.Reduce{Op: op, All: true})
}

// ReduceBalanced appends the balanced reduction of §3.2, which tolerates
// non-associative operators such as op_sr (the operator must provide the
// one-sided case).
func (p Program) ReduceBalanced(op *algebra.Op) Program {
	return p.with(term.Reduce{Op: op, Balanced: true})
}

// AllReduceBalanced appends the balanced all-reduction of §3.2.
func (p Program) AllReduceBalanced(op *algebra.Op) Program {
	return p.with(term.Reduce{Op: op, All: true, Balanced: true})
}

// ScanBalanced appends the balanced scan of §3.3.
func (p Program) ScanBalanced(op *algebra.BalancedScanOp) Program {
	return p.with(term.ScanBal{Op: op})
}

// Comcast appends the compute-after-broadcast collective of §3.4;
// costOptimal selects the successive-doubling implementation instead of
// bcast + repeat.
func (p Program) Comcast(ops *algebra.RepeatOps, costOptimal bool) Program {
	return p.with(term.Comcast{Ops: ops, CostOptimal: costOptimal})
}

// Iter appends the local iteration schema of §3.5.
func (p Program) Iter(op *algebra.IterOp) Program {
	return p.with(term.Iter{Op: op})
}

// Bcast appends a broadcast from the first processor.
func (p Program) Bcast() Program { return p.with(term.Bcast{}) }

// Then concatenates two programs — the program-composition source of
// optimization opportunities from §2.1.
func (p Program) Then(q Program) Program {
	return Program{stages: term.Compose(p.stages, q.stages)}
}

// Optimization reports what Optimize did.
type Optimization struct {
	// Program is the rewritten program.
	Program Program
	// Applications are the rule applications, in order.
	Applications []rules.Application
	// EstimateBefore and EstimateAfter are cost estimates of the whole
	// program on the target machine.
	EstimateBefore, EstimateAfter float64
	// Search carries the plan-search statistics when the optimization was
	// produced by OptimizeSearch/OptimizeSearchVerified; nil for greedy.
	Search *rules.SearchStats
	// Selection records the per-stage algorithm choices when the
	// optimization ran with auto-selection (OptimizeOptions.Auto); the
	// estimates then use the portfolio model (cost.OfTermAuto). Nil
	// without auto-selection.
	Selection []sel.Selection
}

// Summary renders the optimization as a short report.
func (o Optimization) Summary() string {
	var b strings.Builder
	for _, a := range o.Applications {
		fmt.Fprintf(&b, "applied %s\n", a)
	}
	for _, s := range o.Selection {
		fmt.Fprintf(&b, "selected %s\n", s)
	}
	fmt.Fprintf(&b, "estimate: %.0f -> %.0f (%.2fx)\n",
		o.EstimateBefore, o.EstimateAfter, o.EstimateBefore/o.EstimateAfter)
	return b.String()
}

// OptimizeOptions selects the optimizer variant for OptimizeOpts; the
// zero value is the plain greedy engine.
type OptimizeOptions struct {
	// Search runs the global plan search (rules.SearchOptimize) instead
	// of the greedy engine.
	Search bool
	// SearchConfig bounds the search; the zero value selects defaults.
	SearchConfig rules.SearchConfig
	// Auto enables collective-algorithm auto-selection: rewrites are
	// scored with the portfolio model (cost.OfTermAuto), the estimates
	// use it, and the result records the per-stage selections picked for
	// the optimized program (see coll/sel).
	Auto bool
	// Verify checks every rule application and the end-to-end equality
	// under the functional semantics before returning.
	Verify bool
	// VerifyConfig configures the verification runs.
	VerifyConfig rules.VerifyConfig
	// Registry overrides the algebraic property registry; nil means
	// algebra.Default().
	Registry *algebra.Registry
}

// OptimizeOpts is the general optimizer entry point: every other
// Optimize* method is a fixed configuration of it. The error is non-nil
// only when verification is requested and fails.
func (p Program) OptimizeOpts(m Machine, o OptimizeOptions) (Optimization, error) {
	eng := rules.NewCostGuidedEngine(m.costParams())
	if o.Registry != nil {
		eng.Env.Reg = o.Registry
	}
	eng.Auto = o.Auto
	var (
		opt   term.Term
		apps  []rules.Application
		stats *rules.SearchStats
		err   error
	)
	switch {
	case o.Search && o.Verify:
		var st rules.SearchStats
		opt, apps, st, err = rules.VerifySearchOptimization(eng, p.stages, o.VerifyConfig, o.SearchConfig)
		stats = &st
	case o.Search:
		var st rules.SearchStats
		opt, apps, st = eng.SearchOptimize(p.stages, o.SearchConfig)
		stats = &st
	case o.Verify:
		opt, apps, err = rules.VerifyOptimization(eng, p.stages, o.VerifyConfig)
	default:
		opt, apps = eng.Optimize(p.stages)
	}
	if err != nil {
		return Optimization{}, err
	}
	score := cost.OfTerm
	if o.Auto {
		score = cost.OfTermAuto
	}
	res := Optimization{
		Program:        FromTerm(opt),
		Applications:   apps,
		EstimateBefore: score(p.stages, m.costParams()),
		EstimateAfter:  score(opt, m.costParams()),
		Search:         stats,
	}
	if o.Auto {
		res.Selection = sel.ForTerm(opt, m.costParams())
	}
	return res, nil
}

// Optimize rewrites the program with the cost-guided engine: a rule is
// applied only where the Table 1-style estimates predict an improvement on
// machine m. The registry declaring the operators' algebraic properties
// defaults to algebra.Default; use OptimizeWith to supply your own.
func (p Program) Optimize(m Machine) Optimization {
	return p.OptimizeWith(m, algebra.Default())
}

// OptimizeWith is Optimize with an explicit property registry.
func (p Program) OptimizeWith(m Machine, reg *algebra.Registry) Optimization {
	o, _ := p.OptimizeOpts(m, OptimizeOptions{Registry: reg})
	return o
}

// OptimizeVerified is Optimize followed by verification: every rule
// application and the end-to-end equality of the original and optimized
// program are checked under the functional semantics before the result
// is returned. This is the plan-cache entry point of the optimization
// service (package serve) — a cached plan is a verified plan.
func (p Program) OptimizeVerified(m Machine, cfg rules.VerifyConfig) (Optimization, error) {
	return p.OptimizeOpts(m, OptimizeOptions{Verify: true, VerifyConfig: cfg})
}

// OptimizeSearch rewrites the program with the global plan search
// (rules.SearchOptimize): a bounded branch-and-bound exploration of all
// rule-application sequences scored by the end-to-end cost estimate,
// never worse than the greedy Optimize and strictly better where the
// greedy window heuristic forfeits a cheaper derivation downstream. The
// zero SearchConfig selects the default budgets.
func (p Program) OptimizeSearch(m Machine, scfg rules.SearchConfig) Optimization {
	o, _ := p.OptimizeOpts(m, OptimizeOptions{Search: true, SearchConfig: scfg})
	return o
}

// OptimizeSearchVerified is OptimizeSearch followed by verification of
// every rule application of the winning derivation and of the end-to-end
// equality of the original and optimized program — the searched
// counterpart of OptimizeVerified, and the plan-cache entry point for
// the search strategy (package serve).
func (p Program) OptimizeSearchVerified(m Machine, cfg rules.VerifyConfig, scfg rules.SearchConfig) (Optimization, error) {
	return p.OptimizeOpts(m, OptimizeOptions{Search: true, SearchConfig: scfg, Verify: true, VerifyConfig: cfg})
}

// Canonical renders the program in the stable canonical surface syntax
// used as a plan-cache key (see rules.Canonical).
func (p Program) Canonical() string {
	return rules.Canonical(p.stages)
}

// OptimizeExhaustively rewrites with every applicable rule regardless of
// the cost estimates (the purely algebraic view of §3).
func (p Program) OptimizeExhaustively(reg *algebra.Registry, machineP int) Optimization {
	eng := rules.NewEngine()
	eng.Env.Reg = reg
	eng.Env.P = machineP
	opt, apps := eng.Optimize(p.stages)
	return Optimization{Program: FromTerm(opt), Applications: apps}
}

// Applicable lists the rule applications available in the program without
// rewriting, with cost estimates for machine m.
func (p Program) Applicable(m Machine) []rules.Application {
	eng := rules.NewCostGuidedEngine(m.costParams())
	return eng.Applicable(p.stages)
}

// Estimate predicts the program's run time on machine m under the
// butterfly cost model of §4.
func (p Program) Estimate(m Machine) float64 {
	return cost.OfTerm(p.stages, m.costParams())
}

// Run executes the program on a virtual machine with m.P processors and
// returns the output list and the machine result; Result.Makespan is the
// measured run time under the cost model.
func (p Program) Run(m Machine, input []algebra.Value) ([]algebra.Value, machine.Result) {
	return Exec(p.stages, m.virtual(), input)
}

// RunTraced is Run with an event trace collected for timeline rendering.
func (p Program) RunTraced(m Machine, input []algebra.Value) ([]algebra.Value, machine.Result, []machine.Event) {
	vm := m.virtual()
	tr := machine.NewTracer()
	vm.SetTracer(tr)
	out, res := Exec(p.stages, vm, input)
	return out, res, tr.Events()
}

// Verify checks that this program and q are semantically equivalent by
// evaluating both under the functional semantics on randomized inputs
// (comparing modulo undetermined positions). Use it to validate an
// optimization end to end.
func (p Program) Verify(q Program, cfg rules.VerifyConfig) error {
	return rules.VerifyEquivalence(p.stages, q.stages, cfg)
}

// CrossCheck runs the program on the virtual machine and compares the
// result with the functional semantics on the same input, modulo
// undetermined positions — the executor must implement the semantics.
func (p Program) CrossCheck(m Machine, input []algebra.Value) error {
	return p.CrossCheckTol(m, input, 0)
}

// CrossCheckTol is CrossCheck with a relative tolerance on numeric
// results, for programs whose operator chains leave the exactly
// representable float range (the machine's butterfly and the semantics'
// sequential fold may then differ in the last bits by reassociation).
func (p Program) CrossCheckTol(m Machine, input []algebra.Value, relTol float64) error {
	got, _ := p.Run(m, input)
	want := term.Eval(p.stages, input)
	equal := len(got) == len(want)
	if equal {
		for i := range got {
			if relTol > 0 {
				equal = algebra.EqualApproxModuloUndef(got[i], want[i], relTol)
			} else {
				equal = algebra.EqualModuloUndef(got[i], want[i])
			}
			if !equal {
				break
			}
		}
	}
	if !equal {
		return fmt.Errorf("core: machine execution disagrees with semantics:\n  machine: %v\n  semantics: %v", got, want)
	}
	return nil
}
