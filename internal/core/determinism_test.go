package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
)

// TestDeterministicVirtualTime is a load-bearing property of the whole
// reproduction: virtual run times must not depend on goroutine
// scheduling. Every program runs several times and must produce
// bit-identical outputs, makespans and per-processor clocks.
func TestDeterministicVirtualTime(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	progs := []Program{
		NewProgram().Bcast().Scan(algebra.Add).Reduce(algebra.Max),
		NewProgram().Scan(algebra.Mul).Scan(algebra.Add).AllReduce(algebra.Add),
		NewProgram().Scan(algebra.Add).Reduce(algebra.Add).Bcast(),
	}
	for _, p := range []int{5, 8, 13} {
		in := randScalars(rng, p)
		mach := testMachine(p)
		for _, prog := range progs {
			out0, res0 := prog.Run(mach, in)
			for rep := 0; rep < 10; rep++ {
				out, res := prog.Run(mach, in)
				if !algebra.EqualLists(out, out0) {
					t.Fatalf("%s p=%d: outputs differ across runs", prog, p)
				}
				if res.Makespan != res0.Makespan {
					t.Fatalf("%s p=%d: makespan %g vs %g", prog, p, res.Makespan, res0.Makespan)
				}
				for r := range res.Clocks {
					if res.Clocks[r] != res0.Clocks[r] {
						t.Fatalf("%s p=%d: clock of proc %d differs: %g vs %g",
							prog, p, r, res.Clocks[r], res0.Clocks[r])
					}
				}
				if res.Messages != res0.Messages {
					t.Fatalf("%s p=%d: message count differs", prog, p)
				}
			}
		}
	}
}

// TestOptimizerDeterministic: the engine's rewriting is a pure function
// of the term.
func TestOptimizerDeterministic(t *testing.T) {
	prog := NewProgram().
		Bcast().Scan(algebra.Add).Scan(algebra.Add).
		Scan(algebra.Mul).Reduce(algebra.Add)
	mach := Machine{Ts: 5000, Tw: 1, P: 64, M: 16}
	first := prog.Optimize(mach)
	for i := 0; i < 5; i++ {
		again := prog.Optimize(mach)
		if again.Program.String() != first.Program.String() {
			t.Fatalf("optimizer nondeterministic: %s vs %s", again.Program, first.Program)
		}
		if len(again.Applications) != len(first.Applications) {
			t.Fatalf("application counts differ")
		}
	}
}
