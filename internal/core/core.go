// Package core is the public face of the library: it ties the formal
// framework (package term), the optimization rules (package rules), the
// cost calculus (package cost) and the virtual machine with its collective
// operations (packages machine, coll) together into the workflow the paper
// advocates — write a program as a composition of collective operations,
// ask which rules apply, let the cost estimates decide, rewrite, verify,
// and run.
//
// A minimal session:
//
//	prog := core.NewProgram().Scan(algebra.Mul).Reduce(algebra.Add)
//	opt := prog.Optimize(core.Machine{Ts: 1000, Tw: 1, P: 64, M: 128})
//	out, res := opt.Run(core.Machine{Ts: 1000, Tw: 1, P: 64}, input)
package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/term"
)

// Machine describes the target machine for cost estimation and execution:
// start-up time Ts, per-word time Tw, number of processors P, and — for
// estimates only — the block size M in words.
type Machine struct {
	// Ts is the message start-up time in computation units.
	Ts float64
	// Tw is the per-word transfer time in computation units.
	Tw float64
	// P is the number of processors.
	P int
	// M is the per-processor block size in words (estimation only; at
	// run time the actual value sizes are used).
	M int
}

func (m Machine) costParams() cost.Params {
	return cost.Params{Ts: m.Ts, Tw: m.Tw, M: m.M, P: m.P}
}

func (m Machine) virtual() *machine.Machine {
	return machine.New(m.P, machine.Params{Ts: m.Ts, Tw: m.Tw})
}

// Exec runs a term on the virtual machine, SPMD-style: one goroutine per
// processor, each stage realized by the corresponding collective from
// package coll, with communication and computation charged to the virtual
// clocks. It returns the output list and the run's Result (whose Makespan
// is the program's run time under the §4.1 cost model).
func Exec(t term.Term, vm *machine.Machine, input []algebra.Value) ([]algebra.Value, machine.Result) {
	if len(input) != vm.P {
		panic(fmt.Sprintf("core: input length %d does not match machine size %d", len(input), vm.P))
	}
	out := make([]algebra.Value, vm.P)
	res := vm.Run(func(p *machine.Proc) {
		out[p.Rank()] = RunStages(coll.World(p), t, input[p.Rank()])
	})
	return out, res
}

// RunStages executes the stages of t over an arbitrary communicator —
// the backend-generic heart of the executor. It is called once per group
// member from inside an SPMD body (Exec does so on the virtual machine,
// ExecNative on the native backend), threading the member's value through
// every stage. Stage boundaries are marked when the communicator records
// them.
func RunStages(c coll.Comm, t term.Term, v algebra.Value) algebra.Value {
	mk, _ := c.(coll.Marker)
	for _, s := range term.Stages(t) {
		if mk != nil {
			mk.Mark(s.String())
		}
		v = execStage(s, c, v)
	}
	return v
}

func execStage(s term.Term, c coll.Comm, v algebra.Value) algebra.Value {
	switch st := s.(type) {
	case term.Map:
		next := st.F.F(v)
		if st.F.Cost > 0 {
			c.Compute(float64(st.F.Cost) * float64(v.Words()))
		}
		return next
	case term.MapIdx:
		next := st.F.F(c.Rank(), v)
		if st.F.Charge != nil {
			c.Compute(st.F.Charge(c.Rank(), v.Words()))
		}
		return next
	case term.Scan:
		return coll.Scan(c, st.Op, v)
	case term.ScanBal:
		return coll.ScanBalanced(c, st.Op, v)
	case term.Reduce:
		switch {
		case st.Balanced && st.All:
			return coll.AllReduceBalanced(c, st.Op, v)
		case st.Balanced:
			return coll.ReduceBalanced(c, st.Op, v)
		case st.All:
			return coll.AllReduce(c, st.Op, v)
		default:
			return coll.Reduce(c, 0, st.Op, v)
		}
	case term.Bcast:
		return coll.Bcast(c, 0, v)
	case term.Gather:
		gathered := coll.Gather(c, 0, v)
		if gathered == nil {
			return algebra.Undef{}
		}
		return algebra.Tuple(gathered)
	case term.Scatter:
		var parts []algebra.Value
		if c.Rank() == 0 {
			list, ok := v.(algebra.Tuple)
			if !ok {
				panic(fmt.Sprintf("core: scatter needs a list on the first processor, got %v", v))
			}
			parts = []algebra.Value(list)
		}
		return coll.Scatter(c, 0, parts)
	case term.Comcast:
		if st.CostOptimal {
			return coll.Comcast(c, 0, st.Ops, v)
		}
		return coll.BcastRepeat(c, 0, st.Ops, v)
	case term.Iter:
		return coll.Iter(c, st.Op, v)
	case term.Halo:
		if st.H.Isomorphic() {
			return coll.HaloExchange(c, st.H.Offsets, v)
		}
		return coll.HaloExchangeLists(c, st.H.Lists, v)
	case term.AllGatherV:
		return coll.AllGatherV(c, st.Counts, v)
	case term.ReduceScatterV:
		return coll.ReduceScatterV(c, st.Op, st.Counts, v)
	case term.Seq:
		for _, sub := range term.Stages(st) {
			v = execStage(sub, c, v)
		}
		return v
	}
	panic(fmt.Sprintf("core: cannot execute stage %T", s))
}
