package serve

import (
	"net/http"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in      string
		want    Strategy
		wantErr bool
	}{
		{"", StrategyGreedy, false},
		{"greedy", StrategyGreedy, false},
		{"search", StrategySearch, false},
		{"Search", "", true},
		{"exhaustive", "", true},
	}
	for _, c := range cases {
		got, err := ParseStrategy(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseStrategy(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseStrategy(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// trapProgram is the committed greedy-trap counterexample (see
// rules.SearchOptimize and docs/RULES.md): on the default machine the
// greedy engine fuses the two scans and forfeits the cheaper
// scan-reduce fusion.
const trapProgram = "scan(*) ; scan(+) ; reduce(+)"

func TestOptimizeStrategySearch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	greedy, httpResp := postOptimize(t, ts.URL, Request{Program: trapProgram})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("greedy: HTTP %d", httpResp.StatusCode)
	}
	if greedy.Strategy != StrategyGreedy {
		t.Errorf("default strategy = %q, want %q", greedy.Strategy, StrategyGreedy)
	}
	if greedy.Search != nil {
		t.Errorf("greedy plan carries search stats: %+v", greedy.Search)
	}

	searched, httpResp := postOptimize(t, ts.URL, Request{Program: trapProgram, Strategy: "search"})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("search: HTTP %d", httpResp.StatusCode)
	}
	if searched.Strategy != StrategySearch {
		t.Errorf("strategy = %q, want %q", searched.Strategy, StrategySearch)
	}
	if searched.Cached {
		t.Error("first searched request must be a miss: strategies must not share cache entries")
	}
	if searched.Search == nil || !searched.Search.Exhausted {
		t.Fatalf("searched plan missing exhausted search stats: %+v", searched.Search)
	}
	if searched.CostAfter >= greedy.CostAfter {
		t.Errorf("search did not beat greedy on the trap: %g vs %g", searched.CostAfter, greedy.CostAfter)
	}
	if !searched.Verified {
		t.Error("searched plan not verified")
	}

	// The searched plan is now resident under its own key.
	again, _ := postOptimize(t, ts.URL, Request{Program: trapProgram, Strategy: "search"})
	if !again.Cached {
		t.Error("repeat searched request must hit the cache")
	}
	if again.Optimized != searched.Optimized {
		t.Errorf("cache returned a different searched plan: %q vs %q", again.Optimized, searched.Optimized)
	}
}

func TestOptimizeStrategyErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, httpResp := postOptimize(t, ts.URL, Request{Program: "scan(+)", Strategy: "simulated-annealing"})
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy: HTTP %d, want 400", httpResp.StatusCode)
	}
}

// TestFusionStrategySearch: fusible searched requests batch among
// themselves and the shared plan records the search strategy.
func TestFusionStrategySearch(t *testing.T) {
	_, ts := newTestServer(t, Config{FuseMaxCount: 1})
	resp, httpResp := postOptimize(t, ts.URL, Request{Program: "scan(+)", M: 4, Fuse: true, Strategy: "search"})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", httpResp.StatusCode)
	}
	if resp.Fusion == nil {
		t.Fatal("fusible searched request did not go through the fusion window")
	}
	if resp.Strategy != StrategySearch {
		t.Errorf("fused plan strategy = %q, want %q", resp.Strategy, StrategySearch)
	}
}
