package serve

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
)

// Cache is the concurrent sharded plan cache: canonicalized program +
// machine parameters → optimized plan. Keys are hashed onto a
// power-of-two number of shards, each an independently locked LRU-bounded
// map, so concurrent requests for different programs rarely contend on
// one mutex. A computation in flight is published as a pending entry,
// and every concurrent request for the same key waits on it instead of
// running the engine again (single-flight).
type Cache struct {
	shards []cacheShard
	mask   uint32
	// perShard is the LRU bound of each shard; the total capacity is
	// perShard · len(shards).
	perShard int
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	// lru orders ready entries front = most recently used; entries still
	// computing are never evicted.
	lru                                list.List
	hits, misses, coalesced, evictions uint64
}

// cacheEntry is one slot: done is closed when plan/err are set.
type cacheEntry struct {
	key  string
	done chan struct{}
	plan Plan
	err  error
}

// CacheStats aggregates the per-shard counters.
type CacheStats struct {
	// Hits counts lookups answered from a ready entry, Misses lookups
	// that ran the compute function, Coalesced lookups that waited on a
	// computation already in flight (single-flight sharing), Evictions
	// ready entries dropped by the LRU bound.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	// Size is the current number of entries, Capacity the total bound,
	// Shards the shard count.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	Shards   int `json:"shards"`
}

// HitRate is hits+coalesced over all lookups (0 when none yet).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// NewCache returns a cache bounded at capacity entries spread over
// shards shards (rounded up to a power of two). The per-shard bound is
// the ceiling of capacity/shards — never its floor, so the cache holds
// at least capacity entries; each shard holds at least one entry, so the
// effective capacity is at least max(capacity, shards).
func NewCache(capacity, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint32(n - 1), perShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&c.mask]
}

// GetOrCompute returns the plan for key, computing it with compute on a
// miss. Exactly one caller runs compute per resident key; concurrent
// callers for the same key block until it finishes and share its result
// (cached = true for them and for every later lookup, and the shared hit
// refreshes the entry's LRU recency). A failed or panicking computation
// is not cached: its waiters receive the error with cached = false, the
// entry is removed, and the next lookup retries.
func (c *Cache) GetOrCompute(key string, compute func() (Plan, error)) (plan Plan, cached bool, err error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.done:
			if e.err != nil {
				// A failed computation observed before its cleanup ran:
				// shared like a coalesced wait, but not a hit.
				sh.coalesced++
				sh.mu.Unlock()
				return e.plan, false, e.err
			}
			sh.hits++
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			return e.plan, true, nil
		default:
			sh.coalesced++
			sh.mu.Unlock()
			<-e.done
			if e.err != nil {
				return e.plan, false, e.err
			}
			// The awaited plan is as recently used as a plain hit's: keep
			// hot keys computed under contention at the front of the LRU.
			sh.mu.Lock()
			if cur, ok := sh.entries[key]; ok && cur == el {
				sh.lru.MoveToFront(el)
			}
			sh.mu.Unlock()
			return e.plan, true, nil
		}
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	el := sh.lru.PushFront(e)
	sh.entries[key] = el
	sh.misses++
	sh.evictLocked(c.perShard)
	sh.mu.Unlock()

	e.plan, e.err = runCompute(compute)
	close(e.done)
	if e.err != nil {
		sh.mu.Lock()
		if cur, ok := sh.entries[key]; ok && cur == el {
			delete(sh.entries, key)
			sh.lru.Remove(el)
		}
		sh.mu.Unlock()
	}
	return e.plan, false, e.err
}

// runCompute runs the compute function, converting a panic into an error
// result. Without this, a panicking compute would unwind past the
// close(done) and leave every coalesced waiter for the key blocked
// forever on a pending entry the LRU can never evict.
func runCompute(compute func() (Plan, error)) (plan Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = Plan{}, fmt.Errorf("plan computation panicked: %v", r)
		}
	}()
	return compute()
}

// evictLocked drops least-recently-used ready entries until the shard is
// within bound. Entries still computing are skipped — they are pinned by
// their waiters — so a shard may transiently exceed the bound while many
// computations are in flight.
func (sh *cacheShard) evictLocked(bound int) {
	el := sh.lru.Back()
	for len(sh.entries) > bound && el != nil {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		select {
		case <-e.done:
			delete(sh.entries, e.key)
			sh.lru.Remove(el)
			sh.evictions++
		default:
		}
		el = prev
	}
}

// Len is the current number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-shard counters into one snapshot.
func (c *Cache) Stats() CacheStats {
	var s CacheStats
	s.Shards = len(c.shards)
	s.Capacity = c.perShard * len(c.shards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Coalesced += sh.coalesced
		s.Evictions += sh.evictions
		s.Size += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}
