package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/term"
)

func parseProg(t *testing.T, src string) term.Seq {
	t.Helper()
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	parsed, err := lang.Parse(src, syms)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return term.Compose(parsed)
}

func TestFusible(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"scan(+)", true},
		{"allreduce(max)", true},
		{"bcast ; scan(+) ; reduce(+)", true},
		{"map inc ; scan(+)", false},   // local stage reshapes nothing but is conservatively excluded
		{"gather ; scatter", false},    // reshapes values across ranks
		{"map pair ; map pi_1", false}, // tuple construction
	}
	for _, c := range cases {
		if got := Fusible(parseProg(t, c.src)); got != c.want {
			t.Errorf("Fusible(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	if Fusible(nil) {
		t.Error("empty program must not be fusible")
	}
}

// submitN pushes n compatible requests into the fuser concurrently and
// returns each member's plan + info in submission-goroutine order.
func submitN(t *testing.T, f *Fuser, src string, mach core.Machine, ms []int) ([]Plan, []FusionInfo) {
	t.Helper()
	prog := parseProg(t, src)
	canon := rules.Canonical(prog)
	plans := make([]Plan, len(ms))
	infos := make([]FusionInfo, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			mm := mach
			mm.M = m
			plan, _, info, err := f.Submit(prog, canon, mm, StrategyGreedy, false)
			if err != nil {
				t.Errorf("Submit[%d]: %v", i, err)
				return
			}
			plans[i] = plan
			infos[i] = info
		}(i, m)
	}
	wg.Wait()
	return plans, infos
}

// TestFusionBatchByCount: MaxCount compatible requests flush as one
// batch — one plan, one engine run, contiguous offsets.
func TestFusionBatchByCount(t *testing.T) {
	pl := NewPlanner(64, 4)
	f := NewFuser(pl, time.Hour, 4, 1<<30) // only the count threshold can flush
	mach := core.Machine{Ts: 1000, Tw: 1, P: 8}
	ms := []int{2, 3, 1, 4}
	plans, infos := submitN(t, f, "scan(+) ; reduce(+)", mach, ms)

	total := 2 + 3 + 1 + 4
	seen := make(map[int]bool)
	for i, info := range infos {
		if info.Batch != 4 {
			t.Errorf("member %d: batch = %d, want 4", i, info.Batch)
		}
		if info.FusedM != total {
			t.Errorf("member %d: fused m = %d, want %d", i, info.FusedM, total)
		}
		if seen[info.OffsetWords] {
			t.Errorf("duplicate offset %d", info.OffsetWords)
		}
		seen[info.OffsetWords] = true
		if plans[i].Optimized != plans[0].Optimized {
			t.Errorf("member %d got a different plan", i)
		}
	}
	if runs := pl.EngineRuns(); runs != 1 {
		t.Errorf("fused batch cost %d engine runs, want 1", runs)
	}
	st := f.Stats()
	if st.Batches != 1 || st.FusedRequests != 4 || st.MaxBatch != 4 || st.Dist[4] != 1 {
		t.Errorf("stats = %+v, want one batch of 4", st)
	}
}

// TestFusionBatchByBytes: the bytes threshold flushes before the count
// threshold is reached.
func TestFusionBatchByBytes(t *testing.T) {
	pl := NewPlanner(64, 4)
	// 3 words * 8 bytes = 24 >= 20 flushes on the second member.
	f := NewFuser(pl, time.Hour, 100, 20)
	mach := core.Machine{Ts: 1000, Tw: 1, P: 8}
	_, infos := submitN(t, f, "allreduce(+)", mach, []int{2, 2, 2, 2})
	st := f.Stats()
	if st.Batches < 2 {
		t.Errorf("bytes threshold never flushed: stats %+v", st)
	}
	for i, info := range infos {
		if info.Batch > 2 {
			t.Errorf("member %d: batch %d exceeds the bytes bound", i, info.Batch)
		}
	}
}

// TestFusionCycleExpiry: a lone request is flushed by the cycle timer,
// as a batch of one.
func TestFusionCycleExpiry(t *testing.T) {
	pl := NewPlanner(64, 4)
	f := NewFuser(pl, 5*time.Millisecond, 100, 1<<30)
	mach := core.Machine{Ts: 1000, Tw: 1, P: 8, M: 4}
	prog := parseProg(t, "scan(+)")
	start := time.Now()
	_, _, info, err := f.Submit(prog, rules.Canonical(prog), mach, StrategyGreedy, false)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if info.Batch != 1 || info.FusedM != 4 || info.OffsetWords != 0 {
		t.Errorf("info = %+v, want lone batch", info)
	}
	if waited := time.Since(start); waited < 4*time.Millisecond {
		t.Errorf("flushed after %v, before the cycle expired", waited)
	}
}

// TestFusionDrain: Drain flushes open windows immediately so shutdown
// never waits on a cycle timer.
func TestFusionDrain(t *testing.T) {
	pl := NewPlanner(64, 4)
	f := NewFuser(pl, time.Hour, 100, 1<<30)
	mach := core.Machine{Ts: 1000, Tw: 1, P: 8, M: 2}
	prog := parseProg(t, "reduce(max)")
	done := make(chan FusionInfo, 1)
	go func() {
		_, _, info, err := f.Submit(prog, rules.Canonical(prog), mach, StrategyGreedy, false)
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		done <- info
	}()
	// Wait until the request is enrolled, then drain.
	for i := 0; i < 1000; i++ {
		if f.Stats().Pending > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	f.Drain()
	select {
	case info := <-done:
		if info.Batch != 1 {
			t.Errorf("drained batch = %+v", info)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain left the request waiting")
	}
}

// intBlocks builds one m-word small-integer block per rank (exact under
// every operator chain, so bitwise comparisons are meaningful even
// across reassociating rewrites).
func intBlocks(p, m, salt int) []algebra.Value {
	out := make([]algebra.Value, p)
	for r := range out {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*5+j*3+salt)%7 + 1)
		}
		out[r] = b
	}
	return out
}

// TestFusedPlanExecutesBitwiseEqual is the end-to-end fusion soundness
// check: a fused batch's plan, executed once on the native backend over
// the concatenated blocks, must de-batch into results bitwise equal to
// executing the same plan per request — and equal (exactly, on integer
// inputs) to the per-request run of the *original* unoptimized program.
// The plan itself must pass rules.VerifyEquivalence against the original.
func TestFusedPlanExecutesBitwiseEqual(t *testing.T) {
	for _, p := range []int{4, 6, 8} {
		for _, src := range []string{"scan(+) ; reduce(+)", "bcast ; scan(+)", "allreduce(max) ; reduce(+)"} {
			t.Run(fmt.Sprintf("p%d/%s", p, src), func(t *testing.T) {
				pl := NewPlanner(64, 4)
				f := NewFuser(pl, time.Hour, 3, 1<<30)
				// Small blocks and a start-up-dominated machine, so the
				// fused plan actually rewrites.
				mach := core.Machine{Ts: 5000, Tw: 1, P: p}
				ms := []int{2, 3, 1}
				plans, infos := submitN(t, f, src, mach, ms)
				plan := plans[0]
				orig := parseProg(t, src)

				// The fused plan is semantically equivalent to the
				// original program.
				if err := rules.VerifyEquivalence(orig, plan.Term, rules.VerifyConfig{Seed: 9, BlockWords: 3}); err != nil {
					t.Fatalf("fused plan fails VerifyEquivalence: %v", err)
				}
				if !plan.Verified {
					t.Fatal("plan not marked verified")
				}

				// One fused native execution over the concatenated
				// blocks, each member's words at its reported offset
				// (offsets follow enrollment order, which under
				// concurrent submission need not be index order).
				blocks := make([][]algebra.Value, len(ms))
				for i, m := range ms {
					blocks[i] = intBlocks(p, m, i)
				}
				fusedIn := make([]algebra.Value, p)
				for r := 0; r < p; r++ {
					v := make(algebra.Vec, infos[0].FusedM)
					for i := range ms {
						copy(v[infos[i].OffsetWords:infos[i].OffsetWords+ms[i]], blocks[i][r].(algebra.Vec))
					}
					fusedIn[r] = v
				}
				fusedOut, _ := core.ExecNative(plan.Term, backend.New(p), fusedIn)

				for i := range ms {
					// De-batch member i's slice via its offset.
					info := infos[i]
					member := make([]algebra.Value, p)
					for r := 0; r < p; r++ {
						vec := fusedOut[r].(algebra.Vec)
						slice := make(algebra.Vec, ms[i])
						copy(slice, vec[info.OffsetWords:info.OffsetWords+ms[i]])
						member[r] = slice
					}
					// Bitwise equal to the unfused run of the same plan...
					unfused, _ := core.ExecNative(plan.Term, backend.New(p), blocks[i])
					for r := 0; r < p; r++ {
						if !algebra.Equal(member[r], unfused[r]) {
							t.Fatalf("member %d rank %d: fused %v, unfused %v", i, r, member[r], unfused[r])
						}
					}
					// ...and in agreement with the original program's
					// functional semantics modulo undetermined positions
					// (the rules only promise the determined parts — a
					// rewrite may leave non-root ranks with different
					// scratch values).
					sem := term.Eval(orig, blocks[i])
					planSem := term.Eval(plan.Term, blocks[i])
					for r := 0; r < p; r++ {
						if !algebra.EqualModuloUndef(planSem[r], member[r]) {
							t.Fatalf("member %d rank %d: fused %v disagrees with plan semantics %v", i, r, member[r], planSem[r])
						}
						if !algebra.EqualModuloUndef(sem[r], planSem[r]) {
							t.Fatalf("rank %d: plan semantics %v disagree with original semantics %v", r, planSem[r], sem[r])
						}
					}
				}
			})
		}
	}
}

// TestConcatSplitRoundTrip: SplitBlocks undoes ConcatBlocks and copies
// (no aliasing into the fused buffer).
func TestConcatSplitRoundTrip(t *testing.T) {
	blocks := [][]algebra.Value{intBlocks(4, 2, 0), intBlocks(4, 3, 1)}
	fused := ConcatBlocks(blocks)
	back := SplitBlocks(fused, []int{2, 3})
	for i := range blocks {
		for r := range blocks[i] {
			if !algebra.Equal(blocks[i][r], back[i][r]) {
				t.Fatalf("member %d rank %d: %v != %v", i, r, back[i][r], blocks[i][r])
			}
		}
	}
	// Mutating the split output must not touch the fused buffer.
	back[0][0].(algebra.Vec)[0] = -99
	if fused[0].(algebra.Vec)[0] == -99 {
		t.Fatal("SplitBlocks aliased the fused buffer")
	}
}
