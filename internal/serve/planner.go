package serve

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/coll/sel"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/term"
)

// Plan is a finished optimization: the canonical program, its optimized
// form, the derivation summary and the cost estimates — everything a
// response needs, plus the optimized term itself for execution (fused or
// not). Plans are immutable once published and shared by every cache
// hit.
type Plan struct {
	// Canonical is the canonicalized input program (the cache-key half).
	Canonical string `json:"canonical"`
	// Optimized is the canonical rendering of the optimized program.
	Optimized string `json:"optimized"`
	// Applications summarizes the derivation, one rule application per
	// line ("RULE @pos: lhs  =>  rhs").
	Applications []string `json:"applications,omitempty"`
	// CostBefore and CostAfter are the §4 estimates at the plan's
	// machine parameters.
	CostBefore float64 `json:"cost_before"`
	CostAfter  float64 `json:"cost_after"`
	// Verified reports that every rule application and the end-to-end
	// rewriting were checked under the functional semantics.
	Verified bool `json:"verified"`
	// Strategy is the optimizer that produced the plan ("greedy" or
	// "search").
	Strategy Strategy `json:"strategy"`
	// Search carries the plan-search statistics for searched plans.
	Search *rules.SearchStats `json:"search,omitempty"`
	// Selection records the per-stage collective-algorithm choices when
	// the plan was computed with auto-selection (Request.Select): which
	// algorithm each eligible reduction runs, at which block size, with
	// the predicted cost against the butterfly baseline. Nil without
	// auto-selection.
	Selection []sel.Selection `json:"selection,omitempty"`

	// Term is the optimized program term, for executing the plan; not
	// serialized.
	Term term.Seq `json:"-"`
}

// Planner turns program sources into verified optimized plans, memoizing
// them in the sharded cache. It is safe for concurrent use.
type Planner struct {
	// Symbols resolves operator and map-function names; NewPlanner
	// pre-loads the standard table plus the generator's inc.
	Symbols *lang.Symbols
	// Verify makes every computed plan pass rules.VerifyEquivalence
	// (per application and end to end) before it is published.
	Verify bool
	// VerifyCfg configures the verification runs.
	VerifyCfg rules.VerifyConfig
	// SearchCfg bounds the plan search for the search strategy; the zero
	// value selects the default budgets.
	SearchCfg rules.SearchConfig
	// Cache memoizes key → plan.
	Cache *Cache

	engineRuns atomic.Int64
}

// NewPlanner returns a verifying planner over a cache of the given
// geometry.
func NewPlanner(cacheSize, cacheShards int) *Planner {
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	syms.DefineFn(rules.IncTupFn)
	return &Planner{
		Symbols:   syms,
		Verify:    true,
		VerifyCfg: rules.VerifyConfig{Seed: 11, Trials: 4, Sizes: []int{1, 2, 4, 8}, BlockWords: 3, RelTol: 1e-9},
		Cache:     NewCache(cacheSize, cacheShards),
	}
}

// ParseProgram parses a surface-syntax program into a flattened term.
func (pl *Planner) ParseProgram(src string) (term.Seq, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("empty program")
	}
	t, err := lang.Parse(src, pl.Symbols)
	if err != nil {
		return nil, err
	}
	return term.Compose(t), nil
}

// Key builds the cache key for a canonical program at machine
// parameters: the fused and unfused paths, and every client spelling of
// one program, converge on the same key.
func Key(canonical string, m core.Machine) string {
	return fmt.Sprintf("%s|ts=%g|tw=%g|p=%d|m=%d", canonical, m.Ts, m.Tw, m.P, m.M)
}

// KeyStrategy qualifies Key with the optimization strategy. Greedy keys
// are unchanged (cached plans from before the strategy field keep
// working); searched plans get a distinct suffix so the two strategies
// never serve each other's plans.
func KeyStrategy(canonical string, m core.Machine, strat Strategy) string {
	k := Key(canonical, m)
	if strat == StrategySearch {
		k += "|strategy=search"
	}
	return k
}

// KeyOpts additionally qualifies the key with auto-selection: selected
// plans carry different estimates and a selection stanza, so they never
// share a cache entry with unselected plans of the same program.
func KeyOpts(canonical string, m core.Machine, strat Strategy, autoSel bool) string {
	k := KeyStrategy(canonical, m, strat)
	if autoSel {
		k += "|select"
	}
	return k
}

// Plan parses src and returns its optimized plan at machine m, from the
// cache when resident (cached = true) and by one engine run otherwise.
func (pl *Planner) Plan(src string, m core.Machine) (Plan, bool, error) {
	t, err := pl.ParseProgram(src)
	if err != nil {
		return Plan{}, false, err
	}
	return pl.PlanTerm(t, m)
}

// PlanTerm is Plan for an already-parsed term, with the greedy strategy.
func (pl *Planner) PlanTerm(t term.Seq, m core.Machine) (Plan, bool, error) {
	return pl.PlanTermStrategy(t, m, StrategyGreedy)
}

// PlanTermStrategy is PlanTerm with an explicit optimization strategy.
// Searched plans share the cache with greedy plans under a
// strategy-qualified key.
func (pl *Planner) PlanTermStrategy(t term.Seq, m core.Machine, strat Strategy) (Plan, bool, error) {
	return pl.PlanTermOpts(t, m, strat, false)
}

// PlanTermOpts is PlanTermStrategy with collective-algorithm
// auto-selection: the optimizer scores rewrites with the portfolio model
// and the plan records the per-stage selections. Selected plans live
// under their own cache keys (see KeyOpts).
func (pl *Planner) PlanTermOpts(t term.Seq, m core.Machine, strat Strategy, autoSel bool) (Plan, bool, error) {
	canonical := rules.Canonical(t)
	return pl.Cache.GetOrCompute(KeyOpts(canonical, m, strat, autoSel), func() (Plan, error) {
		return pl.compute(t, canonical, m, strat, autoSel)
	})
}

// compute runs the selected optimizer (and, when Verify is set, the
// semantic verifier) — the single-flight body behind every cache miss.
func (pl *Planner) compute(t term.Seq, canonical string, m core.Machine, strat Strategy, autoSel bool) (Plan, error) {
	pl.engineRuns.Add(1)
	prog := core.FromTerm(t)
	opt, err := prog.OptimizeOpts(m, core.OptimizeOptions{
		Search:       strat == StrategySearch,
		SearchConfig: pl.SearchCfg,
		Auto:         autoSel,
		Verify:       pl.Verify,
		VerifyConfig: pl.VerifyCfg,
	})
	if err != nil {
		return Plan{}, fmt.Errorf("verification failed: %w", err)
	}
	optTerm := term.Compose(opt.Program.Term())
	plan := Plan{
		Canonical:  canonical,
		Optimized:  rules.Canonical(optTerm),
		CostBefore: opt.EstimateBefore,
		CostAfter:  opt.EstimateAfter,
		Verified:   pl.Verify,
		Strategy:   strat,
		Search:     opt.Search,
		Selection:  opt.Selection,
		Term:       optTerm,
	}
	for _, a := range opt.Applications {
		plan.Applications = append(plan.Applications, a.String())
	}
	return plan, nil
}

// EngineRuns is the number of engine invocations so far — every cache
// miss costs exactly one; the single-flight tests pin this.
func (pl *Planner) EngineRuns() int64 { return pl.engineRuns.Load() }
