package serve

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/term"
)

// TestSparsePlanEndToEnd drives a ragged reduce_scatterv/allgatherv
// pair through the verifying planner: the RSAG-AllReduce rewrite must
// fire, the plan must verify (the verifier pins its machine sizes to
// the counts length, overriding the planner's dense defaults), and the
// second request must come from the cache without another engine run.
func TestSparsePlanEndToEnd(t *testing.T) {
	pl := NewPlanner(16, 1)
	m := core.Machine{Ts: 4, Tw: 1, P: 3, M: 2}
	const src = "reduce_scatterv(+,2,0,3) ; allgatherv(2,0,3)"
	plan, cached, err := pl.Plan(src, m)
	if err != nil {
		t.Fatalf("sparse plan failed: %v", err)
	}
	if cached {
		t.Fatal("first plan reported cached")
	}
	if !plan.Verified {
		t.Fatal("plan not verified")
	}
	if len(plan.Applications) == 0 {
		t.Fatalf("RSAG-AllReduce did not fire; optimized to %q", plan.Optimized)
	}
	want := rules.Canonical(term.Seq{term.Reduce{Op: algebra.Add, All: true}})
	if plan.Optimized != want {
		t.Fatalf("optimized to %q, want %q", plan.Optimized, want)
	}
	if plan.CostAfter >= plan.CostBefore {
		t.Fatalf("plan did not improve: %g -> %g", plan.CostBefore, plan.CostAfter)
	}
	// A re-spelled but canonically identical program hits the cache.
	again, cached, err := pl.Plan("reduce_scatterv(+,2,0,3);allgatherv(2,0,3)", m)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("identical canonical program missed the cache")
	}
	if again.Optimized != plan.Optimized {
		t.Fatal("cache returned a different plan")
	}
	if runs := pl.EngineRuns(); runs != 1 {
		t.Fatalf("%d engine runs for one distinct program", runs)
	}
}

// TestSparseSearchPlanEscapesGreedyTrap serves the halo chain whose
// only improvement needs the cost-neutral MH-Mobility step first: the
// greedy strategy must return it unchanged, the search strategy must
// find the combined halo — both verified, under distinct cache keys.
func TestSparseSearchPlanEscapesGreedyTrap(t *testing.T) {
	pl := NewPlanner(16, 1)
	m := core.Machine{Ts: 4, Tw: 1, P: 4, M: 1}
	prog, err := pl.ParseProgram("halo(-1,1) ; map inc_t ; halo(-1,1)")
	if err != nil {
		t.Fatal(err)
	}
	greedy, _, err := pl.PlanTermStrategy(prog, m, StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Applications) != 0 {
		t.Fatalf("greedy unexpectedly applied %v", greedy.Applications)
	}
	searched, cached, err := pl.PlanTermStrategy(prog, m, StrategySearch)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("search plan served from the greedy cache entry")
	}
	if searched.CostAfter >= greedy.CostAfter {
		t.Fatalf("search did not beat greedy: %g vs %g", searched.CostAfter, greedy.CostAfter)
	}
	if len(searched.Applications) < 2 {
		t.Fatalf("search applied %d rules, want the MH+HH chain", len(searched.Applications))
	}
	if !searched.Verified {
		t.Fatal("searched plan not verified")
	}
}
