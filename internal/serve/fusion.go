package serve

import (
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/term"
)

// FusionInfo tells a request what batch its plan was computed in: the
// batch size, the fused block size, and where this request's words live
// inside the fused block (the de-batching offset).
type FusionInfo struct {
	Batch       int `json:"batch"`
	FusedM      int `json:"fused_m"`
	OffsetWords int `json:"offset_words"`
}

// Fusible reports whether a program may join a fusion batch. Fusion runs
// one collective over the concatenation of the members' blocks and
// slices the result apart, which is sound exactly when every stage acts
// elementwise on vector blocks: the standard collectives (bcast, scan,
// reduce, allreduce) apply their operator component-wise and move whole
// blocks, so collective(concat xs) = concat(collective xs) with the same
// combining order — bitwise, not just approximately. Local map stages,
// gather/scatter and the auxiliary tuple constructions reshape values
// and are excluded.
func Fusible(t term.Seq) bool {
	if len(term.Stages(t)) == 0 {
		return false
	}
	for _, st := range term.Stages(t) {
		switch st.(type) {
		case term.Bcast, term.Scan, term.Reduce:
		default:
			return false
		}
	}
	return true
}

// wordBytes is the accounting size of one block word (a float64).
const wordBytes = 8

// FusionStats is the /metrics snapshot of the fusion layer.
type FusionStats struct {
	// Batches counts flushed batches, FusedRequests their member total.
	Batches       uint64 `json:"batches"`
	FusedRequests uint64 `json:"fused_requests"`
	// MaxBatch is the largest batch flushed; Dist maps batch size →
	// count of batches of that size.
	MaxBatch int            `json:"max_batch"`
	Dist     map[int]uint64 `json:"dist"`
	// Pending is the number of requests currently waiting in open
	// windows.
	Pending int `json:"pending"`
}

// Fuser implements the cross-request fusion window, after oneCCL's
// fusion design: compatible small requests — same canonical program,
// same machine parameters apart from the block size — arriving within a
// cycle are merged into one optimization over the summed block size. A
// batch flushes when it reaches MaxCount members or MaxBytes fused
// words, or when the cycle timer of its first member expires, whichever
// comes first. Every member gets the shared (verified, cached) plan plus
// its FusionInfo.
type Fuser struct {
	Planner *Planner
	// Cycle is the window length (the cycle-ms threshold).
	Cycle time.Duration
	// MaxCount and MaxBytes flush a batch early.
	MaxCount int
	MaxBytes int

	mu      sync.Mutex
	pending map[string]*fusionBatch
	stats   FusionStats
}

type fusionBatch struct {
	canonical string
	t         term.Seq
	mach      core.Machine // member machine; M is per-member, fused on flush
	strat     Strategy
	autoSel   bool
	members   []*fusionMember
	words     int
	timer     *time.Timer
	flushed   bool
}

type fusionMember struct {
	m  int
	ch chan fusionResult
}

type fusionResult struct {
	plan   Plan
	cached bool
	info   FusionInfo
	err    error
}

// NewFuser returns a fuser with the given thresholds over the planner.
func NewFuser(pl *Planner, cycle time.Duration, maxCount, maxBytes int) *Fuser {
	return &Fuser{
		Planner:  pl,
		Cycle:    cycle,
		MaxCount: maxCount,
		MaxBytes: maxBytes,
		pending:  make(map[string]*fusionBatch),
	}
}

// fusionKey groups compatible requests: everything the plan key has
// except the block size, which the batch sums. The strategy is part of
// the key — a greedy and a searched request never share a batch.
func fusionKey(canonical string, m core.Machine, strat Strategy, autoSel bool) string {
	mm := m
	mm.M = 0
	return KeyOpts(canonical, mm, strat, autoSel)
}

// Submit enrolls one request in the fusion window and blocks until its
// batch flushes, returning the shared plan, whether it came from the
// cache, and the member's FusionInfo. The caller has already checked
// Fusible.
func (f *Fuser) Submit(t term.Seq, canonical string, mach core.Machine, strat Strategy, autoSel bool) (Plan, bool, FusionInfo, error) {
	key := fusionKey(canonical, mach, strat, autoSel)
	mem := &fusionMember{m: mach.M, ch: make(chan fusionResult, 1)}

	f.mu.Lock()
	b := f.pending[key]
	if b == nil {
		b = &fusionBatch{canonical: canonical, t: t, mach: mach, strat: strat, autoSel: autoSel}
		f.pending[key] = b
		b.timer = time.AfterFunc(f.Cycle, func() { f.flushExpired(key, b) })
	}
	b.members = append(b.members, mem)
	b.words += mach.M
	full := len(b.members) >= f.MaxCount || b.words*wordBytes >= f.MaxBytes
	if full {
		b.flushed = true
		delete(f.pending, key)
		b.timer.Stop()
	}
	f.mu.Unlock()

	if full {
		f.run(b)
	}
	r := <-mem.ch
	return r.plan, r.cached, r.info, r.err
}

// flushExpired is the cycle-timer path: flush the batch unless a
// threshold already did.
func (f *Fuser) flushExpired(key string, b *fusionBatch) {
	f.mu.Lock()
	if b.flushed {
		f.mu.Unlock()
		return
	}
	b.flushed = true
	if f.pending[key] == b {
		delete(f.pending, key)
	}
	f.mu.Unlock()
	f.run(b)
}

// run optimizes the fused batch once — the engine sees the summed block
// size, so its cost-guided decisions are made for the fused collective —
// and de-batches the shared plan to every member with its offset.
func (f *Fuser) run(b *fusionBatch) {
	mach := b.mach
	mach.M = b.words
	plan, cached, err := f.Planner.PlanTermOpts(b.t, mach, b.strat, b.autoSel)

	f.mu.Lock()
	f.stats.Batches++
	f.stats.FusedRequests += uint64(len(b.members))
	if f.stats.Dist == nil {
		f.stats.Dist = make(map[int]uint64)
	}
	f.stats.Dist[len(b.members)]++
	if len(b.members) > f.stats.MaxBatch {
		f.stats.MaxBatch = len(b.members)
	}
	f.mu.Unlock()

	offset := 0
	for _, mem := range b.members {
		mem.ch <- fusionResult{
			plan:   plan,
			cached: cached,
			info:   FusionInfo{Batch: len(b.members), FusedM: b.words, OffsetWords: offset},
			err:    err,
		}
		offset += mem.m
	}
}

// Drain flushes every open window immediately — the graceful-shutdown
// path, so no request is left waiting on a cycle timer.
func (f *Fuser) Drain() {
	f.mu.Lock()
	var due []*fusionBatch
	for key, b := range f.pending {
		if !b.flushed {
			b.flushed = true
			b.timer.Stop()
			due = append(due, b)
		}
		delete(f.pending, key)
	}
	f.mu.Unlock()
	for _, b := range due {
		f.run(b)
	}
}

// Stats snapshots the fusion counters.
func (f *Fuser) Stats() FusionStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Dist = make(map[int]uint64, len(f.stats.Dist))
	for k, v := range f.stats.Dist {
		s.Dist[k] = v
	}
	for _, b := range f.pending {
		s.Pending += len(b.members)
	}
	return s
}

// ConcatBlocks builds the fused input: rank r's fused block is the
// concatenation, in member order, of every member's rank-r block. All
// members must supply one algebra.Vec per rank.
func ConcatBlocks(members [][]algebra.Value) []algebra.Value {
	if len(members) == 0 {
		return nil
	}
	p := len(members[0])
	fused := make([]algebra.Value, p)
	for r := 0; r < p; r++ {
		var block algebra.Vec
		for _, blocks := range members {
			block = append(block, blocks[r].(algebra.Vec)...)
		}
		fused[r] = block
	}
	return fused
}

// SplitBlocks undoes ConcatBlocks on a fused output: each rank's fused
// vector is sliced back into per-member blocks of the given word counts
// (fresh copies, not aliases). A non-vector rank value — possible only
// for value shapes outside the fusible grammar — is handed to every
// member unchanged.
func SplitBlocks(fused []algebra.Value, ms []int) [][]algebra.Value {
	out := make([][]algebra.Value, len(ms))
	for i := range ms {
		out[i] = make([]algebra.Value, len(fused))
	}
	for r, v := range fused {
		vec, ok := v.(algebra.Vec)
		if !ok {
			for i := range ms {
				out[i][r] = v
			}
			continue
		}
		off := 0
		for i, m := range ms {
			block := make(algebra.Vec, m)
			copy(block, vec[off:off+m])
			out[i][r] = block
			off += m
		}
	}
	return out
}
