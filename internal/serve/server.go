// Package serve turns the rule engine into a long-running optimization
// service: an HTTP/JSON front-end over the cost-guided engine, a
// concurrent sharded plan cache (canonicalized program + machine
// parameters → verified optimized plan, single-flight per key, LRU
// bounded), and a cross-request fusion window that batches compatible
// collectives arriving close in time into one optimization over their
// combined block — the oneCCL-style bytes/count/cycle thresholds applied
// to the paper's rewrite engine. cmd/collserve is the daemon around it.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// Config sizes a Server.
type Config struct {
	// Machine is the default machine (requests may override P and M,
	// and Ts/Tw explicitly).
	Machine core.Machine
	// CacheSize and CacheShards shape the plan cache.
	CacheSize, CacheShards int
	// FuseCycle, FuseMaxCount and FuseMaxBytes are the fusion-window
	// thresholds.
	FuseCycle    time.Duration
	FuseMaxCount int
	FuseMaxBytes int
	// NoVerify disables semantic verification of newly computed plans
	// (verification is on by default).
	NoVerify bool
}

// DefaultConfig is the daemon's default geometry: a 4096-plan cache over
// 64 shards, a 2 ms fusion cycle flushing at 16 requests or 64 KiB, and
// verification on (each plan is verified once, then served from cache).
func DefaultConfig() Config {
	return Config{
		Machine:      core.Machine{Ts: 1000, Tw: 1, P: 64, M: 64},
		CacheSize:    4096,
		CacheShards:  64,
		FuseCycle:    2 * time.Millisecond,
		FuseMaxCount: 16,
		FuseMaxBytes: 64 << 10,
	}
}

// Request is the body of POST /optimize.
type Request struct {
	// Program is the pipeline in the surface syntax, e.g.
	// "bcast ; scan(+) ; reduce(+)".
	Program string `json:"program"`
	// Ts and Tw override the server's machine parameters when non-nil.
	Ts *float64 `json:"ts,omitempty"`
	Tw *float64 `json:"tw,omitempty"`
	// P and M override the processor count and block size when positive.
	P int `json:"p,omitempty"`
	M int `json:"m,omitempty"`
	// Fuse opts the request into the fusion window (only programs whose
	// every stage is a standard collective are fusible; others fall back
	// to the direct path).
	Fuse bool `json:"fuse,omitempty"`
	// Strategy selects the optimizer: "greedy" (the default) or "search"
	// for the global plan search.
	Strategy string `json:"strategy,omitempty"`
	// Select enables collective-algorithm auto-selection: the plan is
	// scored with the calibrated portfolio model and records which
	// algorithm each eligible reduction should run (Plan.Selection).
	// Selected plans are cached under select-qualified keys.
	Select bool `json:"select,omitempty"`
}

// Response is the body of a successful POST /optimize.
type Response struct {
	Plan
	// Cached reports that the plan came from the cache (including
	// waiting on a computation already in flight).
	Cached bool `json:"cached"`
	// Machine echoes the parameters the plan was computed at; under
	// fusion M is the fused block size.
	Machine core.Machine `json:"machine"`
	// Fusion is set when the request went through the fusion window.
	Fusion *FusionInfo `json:"fusion,omitempty"`
}

// Snapshot is the /metrics document.
type Snapshot struct {
	UptimeSeconds float64     `json:"uptime_s"`
	Requests      uint64      `json:"requests"`
	Optimized     uint64      `json:"optimized"`
	Errors        uint64      `json:"errors"`
	InFlight      int64       `json:"in_flight"`
	EngineRuns    int64       `json:"engine_runs"`
	Cache         CacheStats  `json:"cache"`
	Fusion        FusionStats `json:"fusion"`
}

// Server is the optimizer service: handlers over a planner and a fuser.
type Server struct {
	cfg     Config
	planner *Planner
	fuser   *Fuser
	mux     *http.ServeMux

	start     time.Time
	requests  atomic.Uint64
	optimized atomic.Uint64
	errors    atomic.Uint64
	inFlight  atomic.Int64
}

// New assembles a server from the config (zero fields fall back to
// DefaultConfig values).
func New(cfg Config) *Server {
	def := DefaultConfig()
	if cfg.Machine.P == 0 {
		cfg.Machine = def.Machine
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = def.CacheSize
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = def.CacheShards
	}
	if cfg.FuseCycle <= 0 {
		cfg.FuseCycle = def.FuseCycle
	}
	if cfg.FuseMaxCount <= 0 {
		cfg.FuseMaxCount = def.FuseMaxCount
	}
	if cfg.FuseMaxBytes <= 0 {
		cfg.FuseMaxBytes = def.FuseMaxBytes
	}
	pl := NewPlanner(cfg.CacheSize, cfg.CacheShards)
	pl.Verify = !cfg.NoVerify
	s := &Server{
		cfg:     cfg,
		planner: pl,
		fuser:   NewFuser(pl, cfg.FuseCycle, cfg.FuseMaxCount, cfg.FuseMaxBytes),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.mux.HandleFunc("/optimize", s.handleOptimize)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Planner exposes the planner (tests and the load generator use its
// counters).
func (s *Server) Planner() *Planner { return s.planner }

// Fuser exposes the fusion layer.
func (s *Server) Fuser() *Fuser { return s.fuser }

// Handler is the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		s.mux.ServeHTTP(w, r)
	})
}

// Drain flushes open fusion windows; call after the HTTP listener has
// stopped accepting.
func (s *Server) Drain() { s.fuser.Drain() }

// Metrics snapshots every counter.
func (s *Server) Metrics() Snapshot {
	return Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Optimized:     s.optimized.Load(),
		Errors:        s.errors.Load(),
		InFlight:      s.inFlight.Load(),
		EngineRuns:    s.planner.EngineRuns(),
		Cache:         s.planner.Cache.Stats(),
		Fusion:        s.fuser.Stats(),
	}
}

// machineFor resolves a request's machine parameters over the defaults.
func (s *Server) machineFor(req Request) (core.Machine, error) {
	m := s.cfg.Machine
	if req.Ts != nil {
		m.Ts = *req.Ts
	}
	if req.Tw != nil {
		m.Tw = *req.Tw
	}
	if req.P != 0 {
		m.P = req.P
	}
	if req.M != 0 {
		m.M = req.M
	}
	if m.P < 1 {
		return m, fmt.Errorf("p must be positive, got %d", m.P)
	}
	if m.M < 1 {
		return m, fmt.Errorf("m must be positive, got %d", m.M)
	}
	if m.Ts < 0 || m.Tw < 0 {
		return m, fmt.Errorf("ts and tw must be non-negative, got ts=%g tw=%g", m.Ts, m.Tw)
	}
	return m, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	mach, err := s.machineFor(req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad machine parameters: %v", err)
		return
	}
	strat, err := ParseStrategy(req.Strategy)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad strategy: %v", err)
		return
	}
	t, err := s.planner.ParseProgram(req.Program)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parse error: %v", err)
		return
	}

	var resp Response
	if req.Fuse && Fusible(t) {
		plan, cached, info, err := s.fuser.Submit(t, rules.Canonical(t), mach, strat, req.Select)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "optimization failed: %v", err)
			return
		}
		fusedMach := mach
		fusedMach.M = info.FusedM
		resp = Response{Plan: plan, Cached: cached, Machine: fusedMach, Fusion: &info}
	} else {
		plan, cached, err := s.planner.PlanTermOpts(t, mach, strat, req.Select)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "optimization failed: %v", err)
			return
		}
		resp = Response{Plan: plan, Cached: cached, Machine: mach}
	}
	s.optimized.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"in_flight": s.inFlight.Load(),
		"uptime_s":  time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
