package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleFlight is the contention guarantee of the plan cache:
// with 200 concurrent clients issuing overlapping keys, the compute
// function runs exactly once per key — every other request either hits
// the ready entry or waits on the in-flight computation (coalesces),
// never duplicating the engine run.
func TestCacheSingleFlight(t *testing.T) {
	const (
		clients = 200
		keys    = 10
	)
	c := NewCache(1024, 8)
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			key := fmt.Sprintf("key-%d", i%keys)
			plan, _, err := c.GetOrCompute(key, func() (Plan, error) {
				computes.Add(1)
				// Hold the computation open so concurrent requests for
				// the same key must coalesce rather than racing past a
				// ready entry.
				time.Sleep(5 * time.Millisecond)
				return Plan{Canonical: key}, nil
			})
			if err != nil {
				t.Errorf("GetOrCompute(%q): %v", key, err)
			}
			if plan.Canonical != key {
				t.Errorf("GetOrCompute(%q) returned plan for %q", key, plan.Canonical)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != keys {
		t.Fatalf("single-flight violated: %d computes for %d distinct keys", got, keys)
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if st.Hits+st.Coalesced != clients-keys {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, clients-keys)
	}
}

// TestCacheLRUBound: the cache must stay within its capacity under a
// flood of distinct keys, evicting least-recently-used ready entries.
func TestCacheLRUBound(t *testing.T) {
	const capacity = 16
	c := NewCache(capacity, 4)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			if _, _, err := c.GetOrCompute(key, func() (Plan, error) {
				return Plan{Canonical: key}, nil
			}); err != nil {
				t.Errorf("GetOrCompute(%q): %v", key, err)
			}
		}(i)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, bound is %d", n, capacity)
	}
	st := c.Stats()
	if st.Evictions < 100-uint64(capacity) {
		t.Errorf("evictions = %d, want >= %d", st.Evictions, 100-capacity)
	}
	if st.Size > st.Capacity {
		t.Errorf("stats size %d exceeds capacity %d", st.Size, st.Capacity)
	}
}

// TestCacheLRUOrder: touching an entry protects it from eviction; the
// least-recently-used entry goes first.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2, 1) // one shard, two slots
	put := func(key string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(key, func() (Plan, error) {
			return Plan{Canonical: key}, nil
		}); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a: b is now LRU
	put("c") // evicts b
	var recomputes atomic.Int64
	_, cached, _ := c.GetOrCompute("a", func() (Plan, error) {
		recomputes.Add(1)
		return Plan{Canonical: "a"}, nil
	})
	if !cached || recomputes.Load() != 0 {
		t.Fatalf("refreshed entry a was evicted (cached=%v recomputes=%d)", cached, recomputes.Load())
	}
	_, cached, _ = c.GetOrCompute("b", func() (Plan, error) { return Plan{Canonical: "b"}, nil })
	if cached {
		t.Fatal("LRU entry b should have been evicted")
	}
}

// TestCacheErrorNotCached: a failed computation must not poison the key —
// waiters see the error, the next lookup retries.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8, 1)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (Plan, error) { return Plan{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("first compute: err = %v, want boom", err)
	}
	plan, cached, err := c.GetOrCompute("k", func() (Plan, error) { return Plan{Canonical: "k"}, nil })
	if err != nil || cached || plan.Canonical != "k" {
		t.Fatalf("retry after error: plan=%+v cached=%v err=%v", plan, cached, err)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
}

// TestCacheShardRounding pins the geometry: shard counts round up to a
// power of two and every shard holds at least one entry.
func TestCacheShardRounding(t *testing.T) {
	c := NewCache(10, 3)
	if len(c.shards) != 4 {
		t.Errorf("3 shards should round to 4, got %d", len(c.shards))
	}
	if c.perShard != 2 {
		t.Errorf("perShard = %d, want 10/4 = 2", c.perShard)
	}
	c = NewCache(1, 16)
	if st := c.Stats(); st.Capacity != 16 {
		t.Errorf("tiny capacity: effective capacity = %d, want one per shard = 16", st.Capacity)
	}
}
