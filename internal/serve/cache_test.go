package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleFlight is the contention guarantee of the plan cache:
// with 200 concurrent clients issuing overlapping keys, the compute
// function runs exactly once per key — every other request either hits
// the ready entry or waits on the in-flight computation (coalesces),
// never duplicating the engine run.
func TestCacheSingleFlight(t *testing.T) {
	const (
		clients = 200
		keys    = 10
	)
	c := NewCache(1024, 8)
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			key := fmt.Sprintf("key-%d", i%keys)
			plan, _, err := c.GetOrCompute(key, func() (Plan, error) {
				computes.Add(1)
				// Hold the computation open so concurrent requests for
				// the same key must coalesce rather than racing past a
				// ready entry.
				time.Sleep(5 * time.Millisecond)
				return Plan{Canonical: key}, nil
			})
			if err != nil {
				t.Errorf("GetOrCompute(%q): %v", key, err)
			}
			if plan.Canonical != key {
				t.Errorf("GetOrCompute(%q) returned plan for %q", key, plan.Canonical)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != keys {
		t.Fatalf("single-flight violated: %d computes for %d distinct keys", got, keys)
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if st.Hits+st.Coalesced != clients-keys {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, clients-keys)
	}
}

// TestCacheLRUBound: the cache must stay within its capacity under a
// flood of distinct keys, evicting least-recently-used ready entries.
func TestCacheLRUBound(t *testing.T) {
	const capacity = 16
	c := NewCache(capacity, 4)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			if _, _, err := c.GetOrCompute(key, func() (Plan, error) {
				return Plan{Canonical: key}, nil
			}); err != nil {
				t.Errorf("GetOrCompute(%q): %v", key, err)
			}
		}(i)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, bound is %d", n, capacity)
	}
	st := c.Stats()
	if st.Evictions < 100-uint64(capacity) {
		t.Errorf("evictions = %d, want >= %d", st.Evictions, 100-capacity)
	}
	if st.Size > st.Capacity {
		t.Errorf("stats size %d exceeds capacity %d", st.Size, st.Capacity)
	}
}

// TestCacheLRUOrder: touching an entry protects it from eviction; the
// least-recently-used entry goes first.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2, 1) // one shard, two slots
	put := func(key string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(key, func() (Plan, error) {
			return Plan{Canonical: key}, nil
		}); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a: b is now LRU
	put("c") // evicts b
	var recomputes atomic.Int64
	_, cached, _ := c.GetOrCompute("a", func() (Plan, error) {
		recomputes.Add(1)
		return Plan{Canonical: "a"}, nil
	})
	if !cached || recomputes.Load() != 0 {
		t.Fatalf("refreshed entry a was evicted (cached=%v recomputes=%d)", cached, recomputes.Load())
	}
	_, cached, _ = c.GetOrCompute("b", func() (Plan, error) { return Plan{Canonical: "b"}, nil })
	if cached {
		t.Fatal("LRU entry b should have been evicted")
	}
}

// TestCacheErrorNotCached: a failed computation must not poison the key —
// waiters see the error, the next lookup retries.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8, 1)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (Plan, error) { return Plan{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("first compute: err = %v, want boom", err)
	}
	plan, cached, err := c.GetOrCompute("k", func() (Plan, error) { return Plan{Canonical: "k"}, nil })
	if err != nil || cached || plan.Canonical != "k" {
		t.Fatalf("retry after error: plan=%+v cached=%v err=%v", plan, cached, err)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
}

// TestCacheShardRounding pins the geometry: shard counts round up to a
// power of two, the per-shard bound is the ceiling of capacity/shards —
// so the effective capacity is never below the requested one — and every
// shard holds at least one entry.
func TestCacheShardRounding(t *testing.T) {
	cases := []struct {
		capacity, shards  int
		wantShards, perSh int
	}{
		{10, 3, 4, 3},  // non-pow2 shards, non-divisible: ceil(10/4)
		{10, 4, 4, 3},  // the documented bug: floor gave 8 < 10
		{16, 4, 4, 4},  // divisible: exact
		{7, 1, 1, 7},   // single shard
		{1, 16, 16, 1}, // capacity below shard count: one per shard
		{5, 8, 8, 1},   // ceil(5/8) < 1 clamps to 1
	}
	for _, tc := range cases {
		c := NewCache(tc.capacity, tc.shards)
		if len(c.shards) != tc.wantShards {
			t.Errorf("NewCache(%d, %d): shards = %d, want %d", tc.capacity, tc.shards, len(c.shards), tc.wantShards)
		}
		if c.perShard != tc.perSh {
			t.Errorf("NewCache(%d, %d): perShard = %d, want %d", tc.capacity, tc.shards, c.perShard, tc.perSh)
		}
		if st := c.Stats(); st.Capacity < tc.capacity {
			t.Errorf("NewCache(%d, %d): effective capacity %d below requested %d", tc.capacity, tc.shards, st.Capacity, tc.capacity)
		}
	}
}

// TestCachePanickingCompute: a panicking compute must not deadlock its
// coalesced waiters or pin the pending entry — the panic converts to an
// error result, done is closed, the entry is removed, and the next
// lookup retries. Run under -race in CI with concurrent waiters.
func TestCachePanickingCompute(t *testing.T) {
	c := NewCache(8, 1)
	const waiters = 8
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, waiters)
	cacheds := make([]bool, waiters)
	primary := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute("k", func() (Plan, error) {
			close(entered)
			<-release
			panic("compute exploded")
		})
		primary <- err
	}()
	<-entered // the computation is in flight: everyone below coalesces
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, cacheds[i], errs[i] = c.GetOrCompute("k", func() (Plan, error) {
				t.Error("waiter must coalesce, not compute")
				return Plan{}, nil
			})
		}(i)
	}
	// Give the waiters time to reach the coalesced wait, then let the
	// compute panic. If the panic escapes GetOrCompute or skips the
	// close(done), this test deadlocks (caught by the test timeout).
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if err := <-primary; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("primary caller error = %v, want panic converted to error", err)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "panicked") {
			t.Errorf("waiter %d error = %v, want the panic error", i, errs[i])
		}
		if cacheds[i] {
			t.Errorf("waiter %d reported cached=true for a failed computation", i)
		}
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed entry still resident: Len = %d", n)
	}
	plan, cached, err := c.GetOrCompute("k", func() (Plan, error) { return Plan{Canonical: "k"}, nil })
	if err != nil || cached || plan.Canonical != "k" {
		t.Fatalf("retry after panic: plan=%+v cached=%v err=%v", plan, cached, err)
	}
}

// TestCacheCoalescedRecency: a coalesced wait is a use — it must refresh
// the entry's LRU position like a plain hit does, or hot keys computed
// under contention are evicted immediately.
func TestCacheCoalescedRecency(t *testing.T) {
	c := NewCache(2, 1) // one shard, two slots
	put := func(key string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(key, func() (Plan, error) {
			return Plan{Canonical: key}, nil
		}); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrCompute("a", func() (Plan, error) {
			close(entered)
			<-release
			return Plan{Canonical: "a"}, nil
		})
	}()
	<-entered

	joined := make(chan struct{})
	waited := make(chan bool, 1)
	go func() {
		close(joined)
		_, cached, err := c.GetOrCompute("a", func() (Plan, error) {
			t.Error("waiter must coalesce, not compute")
			return Plan{}, nil
		})
		if err != nil {
			t.Errorf("coalesced wait: %v", err)
		}
		waited <- cached
	}()
	<-joined
	time.Sleep(10 * time.Millisecond) // the waiter is parked on e.done

	// While "a" computes (pinned, unevictable), fill the shard: "b" then
	// "c" leaves ["c", pending "a"] with "b" evicted.
	put("b")
	put("c")

	// Finish "a"; the coalesced waiter's join must move "a" in front of
	// "c".
	close(release)
	if cached := <-waited; !cached {
		t.Fatal("coalesced waiter must report cached=true on success")
	}

	// One more insert evicts the LRU entry — which must now be "c", not
	// the just-shared "a".
	put("d")
	var recomputes atomic.Int64
	_, cached, _ := c.GetOrCompute("a", func() (Plan, error) {
		recomputes.Add(1)
		return Plan{Canonical: "a"}, nil
	})
	if !cached || recomputes.Load() != 0 {
		t.Fatalf("coalesced-shared entry a was evicted (cached=%v recomputes=%d)", cached, recomputes.Load())
	}
	_, cached, _ = c.GetOrCompute("c", func() (Plan, error) { return Plan{Canonical: "c"}, nil })
	if cached {
		t.Fatal("entry c should have been the eviction victim")
	}
}

// TestCacheCoalescedErrorNotCached: a waiter sharing a failed computation
// must report cached=false — error responses must not inflate the hit
// rate's numerator disguised as successful cache traffic.
func TestCacheCoalescedErrorNotCached(t *testing.T) {
	c := NewCache(8, 1)
	boom := errors.New("boom")
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrCompute("k", func() (Plan, error) {
			close(entered)
			<-release
			return Plan{}, boom
		})
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, cached, err := c.GetOrCompute("k", func() (Plan, error) {
			t.Error("waiter must coalesce, not compute")
			return Plan{}, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("coalesced waiter err = %v, want boom", err)
		}
		if cached {
			t.Error("coalesced waiter reported cached=true for a failed computation")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
}
