package serve

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadgenAgainstLiveServer runs a small end-to-end load: a real
// listener, real sockets, all three phases, and a written report.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	s := New(Config{FuseCycle: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := Loadgen(LoadConfig{
		Target:   ts.URL,
		Requests: 600,
		Clients:  8,
		Distinct: 5,
		Fusible:  40,
		Seed:     7,
		P:        8,
		M:        16,
	})
	if err != nil {
		t.Fatalf("Loadgen: %v", err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases = %d, want churn + repeated + fusible-burst", len(rep.Phases))
	}
	for _, ph := range rep.Phases {
		if ph.Errors != 0 {
			t.Errorf("phase %s: %d errors", ph.Name, ph.Errors)
		}
		if ph.Throughput <= 0 || ph.P50 <= 0 || ph.P99 < ph.P50 {
			t.Errorf("phase %s: implausible latencies %+v", ph.Name, ph)
		}
	}
	repeated := rep.Phases[1]
	if repeated.Name != "repeated" {
		t.Fatalf("second phase is %q", repeated.Name)
	}
	// 540 requests over a pool of 5 programs: overwhelmingly cache hits.
	if repeated.CacheHitRate < 0.9 {
		t.Errorf("repeated-phase hit rate %.2f, want > 0.9", repeated.CacheHitRate)
	}
	if rep.Fusion.FusedRequests == 0 || rep.Fusion.Batches == 0 {
		t.Errorf("fusible burst produced no fusion: %+v", rep.Fusion)
	}
	if rep.Server.Requests == 0 || rep.Cache.Hits == 0 {
		t.Errorf("final snapshot empty: server=%+v cache=%+v", rep.Server, rep.Cache)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := WriteLoadReport(path, rep); err != nil {
		t.Fatalf("WriteLoadReport: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("report not written: %v", err)
	}
}

func TestLoadgenRejectsBadConfig(t *testing.T) {
	if _, err := Loadgen(LoadConfig{Requests: 0}); err == nil {
		t.Error("zero requests must error")
	}
	if _, err := Loadgen(LoadConfig{Requests: 10, Target: "http://127.0.0.1:1"}); err == nil {
		t.Error("unreachable target must error")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 0.5); p != 5 {
		t.Errorf("p50 = %g", p)
	}
	if p := percentile(sorted, 0.99); p != 9 {
		t.Errorf("p99 = %g", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %g", p)
	}
}

func TestHitRateDelta(t *testing.T) {
	before := CacheStats{Hits: 10, Coalesced: 2, Misses: 8}
	after := CacheStats{Hits: 40, Coalesced: 2, Misses: 18}
	// 30 new hits, 10 new misses.
	if r := hitRateDelta(before, after); r != 0.75 {
		t.Errorf("hit rate delta = %g, want 0.75", r)
	}
	if r := hitRateDelta(after, after); r != 0 {
		t.Errorf("no traffic delta = %g, want 0", r)
	}
}
