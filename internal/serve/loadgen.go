package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/rules"
)

// LoadConfig drives Loadgen: replay randomized optimization requests
// against a live daemon over real sockets and record throughput,
// latency percentiles and cache behavior per phase.
type LoadConfig struct {
	// Target is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Requests is the total request budget of the two main phases: 10%
	// churn (a wide program pool, populating the cache), 90% repeated
	// workload (a pool of Distinct programs, exercising hits).
	Requests int
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Distinct is the program-pool size of the repeated phase.
	Distinct int
	// Fusible is the request count of the fusion phase (same-shape
	// small collectives with fuse: true); 0 skips it.
	Fusible int
	// Seed makes the workload reproducible.
	Seed int64
	// P and M are the machine parameters sent with each request.
	P, M int
	// Strategy is sent with each request ("" or "greedy" for the greedy
	// engine, "search" for the global plan search).
	Strategy string
	// Select requests algorithm auto-selection with every request
	// (Request.Select), exercising the select-qualified cache keys.
	Select bool
	// Out receives progress lines (nil for quiet).
	Out io.Writer
}

// PhaseResult is the measurement of one load phase.
type PhaseResult struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Elapsed  float64 `json:"elapsed_s"`
	// Throughput is requests per second over the phase.
	Throughput float64 `json:"throughput_rps"`
	// P50/P95/P99 are client-observed latencies in microseconds.
	P50 float64 `json:"p50_us"`
	P95 float64 `json:"p95_us"`
	P99 float64 `json:"p99_us"`
	// CacheHitRate is the server-side hit rate over the phase (from
	// /metrics deltas: hits+coalesced over all lookups).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// LoadReport is the BENCH_serve.json artifact.
type LoadReport struct {
	Target   string        `json:"target"`
	Requests int           `json:"requests"`
	Clients  int           `json:"clients"`
	Distinct int           `json:"distinct"`
	Seed     int64         `json:"seed"`
	P        int           `json:"p"`
	M        int           `json:"m"`
	Strategy string        `json:"strategy,omitempty"`
	Select   bool          `json:"select,omitempty"`
	Phases   []PhaseResult `json:"phases"`
	// Fusion and Cache are the server's final counters.
	Fusion FusionStats `json:"fusion"`
	Cache  CacheStats  `json:"cache"`
	// Server is the final /metrics snapshot.
	Server Snapshot `json:"server"`
}

// fusiblePrograms are the fusion phase's shapes: single collectives over
// the base operators, the small-compatible-collective workload the
// fusion window exists for.
var fusiblePrograms = []string{
	"allreduce(+)", "allreduce(max)", "reduce(+)", "reduce(*)",
	"scan(+)", "scan(max)", "bcast ; reduce(+)",
}

// Loadgen runs the workload and assembles the report. Request errors are
// counted per phase, and a transport-level failure aborts with an error.
func Loadgen(cfg LoadConfig) (LoadReport, error) {
	if cfg.Requests < 1 {
		return LoadReport{}, fmt.Errorf("loadgen: -requests must be positive, got %d", cfg.Requests)
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Distinct < 1 {
		cfg.Distinct = 1
	}
	if cfg.P < 1 {
		cfg.P = 64
	}
	if cfg.M < 1 {
		cfg.M = 64
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients * 2,
			MaxIdleConnsPerHost: cfg.Clients * 2,
		},
	}
	defer client.CloseIdleConnections()

	// Deterministic program pools. The churn pool is much wider than the
	// repeated pool, so the first phase is miss-heavy and the second
	// hit-heavy.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	churnPool := randPool(rng, 16*cfg.Distinct)
	repeatPool := randPool(rng, cfg.Distinct)

	churnN := cfg.Requests / 10
	if churnN < 1 {
		churnN = 1
	}
	repeatN := cfg.Requests - churnN

	rep := LoadReport{
		Target:   cfg.Target,
		Requests: cfg.Requests,
		Clients:  cfg.Clients,
		Distinct: cfg.Distinct,
		Seed:     cfg.Seed,
		P:        cfg.P,
		M:        cfg.M,
		Strategy: cfg.Strategy,
		Select:   cfg.Select,
	}

	phases := []struct {
		name string
		n    int
		pool []string
		fuse bool
	}{
		{"churn", churnN, churnPool, false},
		{"repeated", repeatN, repeatPool, false},
		{"fusible-burst", cfg.Fusible, fusiblePrograms, true},
	}
	for _, ph := range phases {
		if ph.n < 1 {
			continue
		}
		before, err := fetchMetrics(client, cfg.Target)
		if err != nil {
			return rep, fmt.Errorf("loadgen: metrics before %s: %w", ph.name, err)
		}
		res, err := runPhase(client, cfg, ph.name, ph.n, ph.pool, ph.fuse)
		if err != nil {
			return rep, err
		}
		after, err := fetchMetrics(client, cfg.Target)
		if err != nil {
			return rep, fmt.Errorf("loadgen: metrics after %s: %w", ph.name, err)
		}
		res.CacheHitRate = hitRateDelta(before.Cache, after.Cache)
		rep.Phases = append(rep.Phases, res)
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "%-14s %9d req %8.0f req/s  p50 %7.0fµs  p95 %7.0fµs  p99 %7.0fµs  hit %5.1f%%  errors %d\n",
				ph.name, res.Requests, res.Throughput, res.P50, res.P95, res.P99, 100*res.CacheHitRate, res.Errors)
		}
	}

	final, err := fetchMetrics(client, cfg.Target)
	if err != nil {
		return rep, fmt.Errorf("loadgen: final metrics: %w", err)
	}
	rep.Server = final
	rep.Fusion = final.Fusion
	rep.Cache = final.Cache
	return rep, nil
}

// randPool pre-renders n canonical random programs.
func randPool(rng *rand.Rand, n int) []string {
	pool := make([]string, n)
	for i := range pool {
		pool[i] = rules.Canonical(rules.RandProgram(rng, 6))
	}
	return pool
}

// runPhase fires n requests from the pool with cfg.Clients workers and
// aggregates client-side latencies.
func runPhase(client *http.Client, cfg LoadConfig, name string, n int, pool []string, fuse bool) (PhaseResult, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     = make([]float64, 0, n)
		errCount int
		firstErr error
	)
	url := cfg.Target + "/optimize"
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		share := n / cfg.Clients
		if w < n%cfg.Clients {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, share int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000*int64(worker+1)))
			myLats := make([]float64, 0, share)
			myErrs := 0
			var myFirst error
			for i := 0; i < share; i++ {
				prog := pool[rng.Intn(len(pool))]
				req := Request{Program: prog, P: cfg.P, M: cfg.M, Fuse: fuse, Strategy: cfg.Strategy, Select: cfg.Select}
				if fuse {
					// Small compatible blocks, the fusion window's prey.
					req.M = 1 + rng.Intn(8)
				}
				body, _ := json.Marshal(req)
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					myErrs++
					if myFirst == nil {
						myFirst = err
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					myErrs++
					if myFirst == nil {
						myFirst = fmt.Errorf("%s: HTTP %d for %q", name, resp.StatusCode, prog)
					}
					continue
				}
				myLats = append(myLats, float64(time.Since(t0).Microseconds()))
			}
			mu.Lock()
			lats = append(lats, myLats...)
			errCount += myErrs
			if firstErr == nil {
				firstErr = myFirst
			}
			mu.Unlock()
		}(w, share)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if len(lats) == 0 {
		if firstErr != nil {
			return PhaseResult{}, fmt.Errorf("loadgen: phase %s: every request failed: %w", name, firstErr)
		}
		return PhaseResult{}, fmt.Errorf("loadgen: phase %s: no requests completed", name)
	}
	sort.Float64s(lats)
	return PhaseResult{
		Name:       name,
		Requests:   n,
		Errors:     errCount,
		Elapsed:    elapsed,
		Throughput: float64(n-errCount) / elapsed,
		P50:        percentile(lats, 0.50),
		P95:        percentile(lats, 0.95),
		P99:        percentile(lats, 0.99),
	}, nil
}

// percentile reads the q-quantile from sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fetchMetrics(client *http.Client, target string) (Snapshot, error) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("/metrics: %w", err)
	}
	return s, nil
}

// hitRateDelta is the hit rate over the lookups between two snapshots.
func hitRateDelta(before, after CacheStats) float64 {
	hits := (after.Hits + after.Coalesced) - (before.Hits + before.Coalesced)
	total := hits + (after.Misses - before.Misses)
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// WriteLoadReport writes the report as indented JSON (BENCH_serve.json).
func WriteLoadReport(path string, rep LoadReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
