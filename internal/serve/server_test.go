package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postOptimize(t *testing.T, url string, req Request) (Response, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /optimize: %v", err)
	}
	defer httpResp.Body.Close()
	var resp Response
	if httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, httpResp
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, httpResp := postOptimize(t, ts.URL, Request{Program: "bcast ; scan(+) ; scan(+)", M: 16})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", httpResp.StatusCode)
	}
	if resp.Canonical != "bcast ; scan(+) ; scan(+)" {
		t.Errorf("canonical = %q", resp.Canonical)
	}
	if len(resp.Applications) == 0 || !strings.Contains(resp.Applications[0], "BSS-Comcast") {
		t.Errorf("applications = %v, want BSS-Comcast", resp.Applications)
	}
	if resp.CostAfter >= resp.CostBefore {
		t.Errorf("cost did not improve: %g -> %g", resp.CostBefore, resp.CostAfter)
	}
	if !resp.Verified {
		t.Error("plan not verified")
	}
	if resp.Cached {
		t.Error("first request must be a miss")
	}

	// The same program (any spelling) is now a cache hit.
	again, _ := postOptimize(t, ts.URL, Request{Program: "bcast;scan( + );scan(+) # same", M: 16})
	if !again.Cached {
		t.Error("repeat request must hit the cache")
	}
	if again.Optimized != resp.Optimized {
		t.Errorf("cache returned a different plan: %q vs %q", again.Optimized, resp.Optimized)
	}
}

func TestOptimizeErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		do   func() *http.Response
		code int
	}{
		{"parse error", func() *http.Response {
			_, r := postOptimize(t, ts.URL, Request{Program: "scan(???)"})
			return r
		}, http.StatusBadRequest},
		{"empty program", func() *http.Response {
			_, r := postOptimize(t, ts.URL, Request{Program: "   "})
			return r
		}, http.StatusBadRequest},
		{"bad machine", func() *http.Response {
			_, r := postOptimize(t, ts.URL, Request{Program: "scan(+)", P: -3})
			return r
		}, http.StatusBadRequest},
		{"bad body", func() *http.Response {
			r, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, http.StatusBadRequest},
		{"bad method", func() *http.Response {
			r, err := http.Get(ts.URL + "/optimize")
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		r := c.do()
		r.Body.Close()
		if r.StatusCode != c.code {
			t.Errorf("%s: HTTP %d, want %d", c.name, r.StatusCode, c.code)
		}
	}
	if errs := s.Metrics().Errors; errs != uint64(len(cases)) {
		t.Errorf("error counter = %d, want %d", errs, len(cases))
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postOptimize(t, ts.URL, Request{Program: "scan(*) ; scan(+)", M: 8})
	postOptimize(t, ts.URL, Request{Program: "scan(*) ; scan(+)", M: 8})

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests < 3 || snap.Optimized != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", snap.Cache)
	}
	if snap.EngineRuns != 1 {
		t.Errorf("engine runs = %d, want 1", snap.EngineRuns)
	}
}

// TestServerSingleFlightUnderLoad drives 128 concurrent HTTP clients
// over a small program set and asserts the engine ran exactly once per
// distinct (program, machine) key — the single-flight guarantee holding
// end to end through the HTTP layer.
func TestServerSingleFlightUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const clients = 128
	programs := []string{
		"scan(+) ; reduce(+)", "scan(*) ; scan(+)", "bcast ; scan(+) ; scan(+)",
		"reduce(max)", "allreduce(+) ; reduce(+)", "map inc ; scan(+)",
		"bcast ; reduce(min)", "gather ; scatter ; scan(+)",
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, httpResp := postOptimize(t, ts.URL, Request{Program: programs[i%len(programs)], M: 16})
			if httpResp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: HTTP %d", i, httpResp.StatusCode)
				return
			}
			if resp.Optimized == "" {
				errs <- fmt.Errorf("client %d: empty plan", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if runs := s.Planner().EngineRuns(); runs != int64(len(programs)) {
		t.Errorf("engine ran %d times for %d distinct programs under %d clients", runs, len(programs), clients)
	}
	st := s.Planner().Cache.Stats()
	if st.Hits+st.Coalesced != clients-uint64(len(programs)) {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, clients-len(programs))
	}
}

// TestServerFusionOverHTTP: a burst of compatible fuse-enabled requests
// is batched; each response carries its batch size and offset, and the
// fused block size is the members' sum.
func TestServerFusionOverHTTP(t *testing.T) {
	const burst = 6
	s, ts := newTestServer(t, Config{
		FuseCycle:    200 * time.Millisecond,
		FuseMaxCount: burst,
		FuseMaxBytes: 1 << 30,
	})
	var wg sync.WaitGroup
	resps := make([]Response, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, httpResp := postOptimize(t, ts.URL, Request{Program: "allreduce(+)", M: i + 1, Fuse: true})
			if httpResp.StatusCode != http.StatusOK {
				t.Errorf("client %d: HTTP %d", i, httpResp.StatusCode)
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	total := burst * (burst + 1) / 2
	offsets := make(map[int]bool)
	for i, resp := range resps {
		if resp.Fusion == nil {
			t.Fatalf("client %d: no fusion info", i)
		}
		if resp.Fusion.Batch != burst || resp.Fusion.FusedM != total {
			t.Errorf("client %d: fusion = %+v, want batch %d fused_m %d", i, resp.Fusion, burst, total)
		}
		if offsets[resp.Fusion.OffsetWords] {
			t.Errorf("duplicate offset %d", resp.Fusion.OffsetWords)
		}
		offsets[resp.Fusion.OffsetWords] = true
		if resp.Machine.M != total {
			t.Errorf("client %d: machine.m = %d, want fused %d", i, resp.Machine.M, total)
		}
	}
	fs := s.Fuser().Stats()
	if fs.Batches != 1 || fs.FusedRequests != burst {
		t.Errorf("fusion stats = %+v", fs)
	}
	// A non-fusible program with fuse: true falls back to the direct path.
	resp, _ := postOptimize(t, ts.URL, Request{Program: "map inc ; scan(+)", M: 4, Fuse: true})
	if resp.Fusion != nil {
		t.Errorf("non-fusible request got fusion info %+v", resp.Fusion)
	}
}
