package serve

import "fmt"

// Strategy selects the optimizer behind a plan: the greedy cost-guided
// engine (the default) or the global plan search (rules.SearchOptimize),
// which is never worse than greedy and strictly better where the greedy
// window heuristic forfeits a cheaper derivation downstream. Searched
// plans land in the same sharded plan cache under a strategy-qualified
// key, so the two strategies never serve each other's plans.
type Strategy string

const (
	// StrategyGreedy is the window-cost-guided engine of rules.Optimize.
	StrategyGreedy Strategy = "greedy"
	// StrategySearch is the bounded branch-and-bound plan search of
	// rules.SearchOptimize, scored by the end-to-end cost estimate.
	StrategySearch Strategy = "search"
)

// ParseStrategy resolves a request's strategy field; the empty string is
// the greedy default.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", StrategyGreedy:
		return StrategyGreedy, nil
	case StrategySearch:
		return StrategySearch, nil
	}
	return "", fmt.Errorf("unknown strategy %q (want %q or %q)", s, StrategyGreedy, StrategySearch)
}
