package serve

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

// TestPlanSelection: selected plans carry the per-stage algorithm
// choices, live under select-qualified cache keys (no cross-talk with
// unselected plans), and repeat requests hit the cache.
func TestPlanSelection(t *testing.T) {
	pl := NewPlanner(64, 4)
	pl.Verify = false
	m := core.Machine{Ts: 203.6, Tw: 0.007, P: 8, M: 4096}
	prog, err := pl.ParseProgram("allreduce(+)")
	if err != nil {
		t.Fatal(err)
	}

	plain, _, err := pl.PlanTermOpts(prog, m, StrategyGreedy, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Selection) != 0 {
		t.Fatalf("unselected plan carries selections: %v", plain.Selection)
	}

	selected, cached, err := pl.PlanTermOpts(prog, m, StrategyGreedy, true)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("selected plan served from the unselected plan's cache entry")
	}
	if len(selected.Selection) == 0 {
		t.Fatal("selected plan carries no selections")
	}
	if got := selected.Selection[0].Algo; got == cost.AlgoButterfly {
		t.Fatalf("at m=4096 the selection should leave the butterfly, got %s", got)
	}
	if selected.CostAfter > plain.CostAfter {
		t.Fatalf("selected estimate %.0f worse than butterfly estimate %.0f",
			selected.CostAfter, plain.CostAfter)
	}

	if _, cached, _ = pl.PlanTermOpts(prog, m, StrategyGreedy, true); !cached {
		t.Fatal("repeat selected request missed the cache")
	}
}

// TestKeyOptsQualifiers: the select qualifier composes with the strategy
// qualifier and leaves legacy keys unchanged.
func TestKeyOptsQualifiers(t *testing.T) {
	m := core.Machine{Ts: 1, Tw: 2, P: 4, M: 8}
	base := Key("prog", m)
	if KeyOpts("prog", m, StrategyGreedy, false) != base {
		t.Fatal("greedy unselected key must equal the legacy key")
	}
	sk := KeyOpts("prog", m, StrategySearch, true)
	if !strings.Contains(sk, "|strategy=search") || !strings.Contains(sk, "|select") {
		t.Fatalf("search+select key missing qualifiers: %q", sk)
	}
	if KeyOpts("prog", m, StrategyGreedy, true) == base {
		t.Fatal("selected key must differ from the legacy key")
	}
}
