package rules_test

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/term"
)

// parserSymbols is the symbol table the service and the chaos harness
// use: the standard built-ins plus the generator's inc.
func parserSymbols() *lang.Symbols {
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	return syms
}

// TestCanonicalParseFixedPoint is the property the plan cache relies on:
// for every program over the generator grammar (all of which are
// expressible in the surface syntax), parsing and canonicalizing is a
// fixed point, and the reparsed term is structurally equal to the
// original.
func TestCanonicalParseFixedPoint(t *testing.T) {
	syms := parserSymbols()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		prog := rules.RandProgram(rng, 8)
		c1 := rules.Canonical(prog)
		reparsed, err := lang.Parse(c1, syms)
		if err != nil {
			t.Fatalf("trial %d: Canonical %q does not parse: %v", trial, c1, err)
		}
		if !term.EqualTerms(prog, reparsed) {
			t.Fatalf("trial %d: reparse of %q is not the original program (got %s)", trial, c1, reparsed)
		}
		c2 := rules.Canonical(term.Compose(reparsed))
		if c1 != c2 {
			t.Fatalf("trial %d: Canonical not a fixed point: %q -> %q", trial, c1, c2)
		}
	}
}

// TestCanonicalNormalizesSource: whitespace, comments, and newlines in
// the source must not show in the canonical form — two spellings of the
// same program share one cache key.
func TestCanonicalNormalizesSource(t *testing.T) {
	syms := parserSymbols()
	cases := []struct {
		src  string
		want string
	}{
		{"bcast;scan( + )", "bcast ; scan(+)"},
		{"  map   pair ;\n reduce(max) # trailing comment\n ; map pi_1", "map pair ; reduce(max) ; map pi_1"},
		{"gather ; scatter", "gather ; scatter"},
		{"allreduce(*)", "allreduce(*)"},
		{"map inc ; scan(-)", "map inc ; scan(-)"},
	}
	for _, c := range cases {
		parsed, err := lang.Parse(c.src, syms)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := rules.Canonical(term.Compose(parsed)); got != c.want {
			t.Errorf("Canonical(parse(%q)) = %q, want %q", c.src, got, c.want)
		}
	}
}

// TestCanonicalEmpty pins the rendering of the empty program (the cache
// never stores it — the server rejects empty programs — but the function
// must stay total and deterministic).
func TestCanonicalEmpty(t *testing.T) {
	if got := rules.Canonical(nil); got != "id" {
		t.Fatalf("Canonical(nil) = %q, want \"id\"", got)
	}
}

// TestCanonicalDistinguishesPrograms: structurally different programs
// must not collide on one key.
func TestCanonicalDistinguishesPrograms(t *testing.T) {
	syms := parserSymbols()
	progs := []string{
		"scan(+)", "scan(*)", "reduce(+)", "allreduce(+)",
		"bcast ; scan(+)", "scan(+) ; bcast", "map inc ; scan(+)",
	}
	seen := make(map[string]string)
	for _, src := range progs {
		parsed, err := lang.Parse(src, syms)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		key := rules.Canonical(term.Compose(parsed))
		if prev, dup := seen[key]; dup {
			t.Errorf("programs %q and %q collide on key %q", prev, src, key)
		}
		seen[key] = src
	}
}
