package rules

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func TestFormatRule(t *testing.T) {
	out := FormatRule(SS2Scan)
	for _, want := range []string{
		"SS2-Scan",
		"scan(⊗) ; scan(⊕)",
		"{ ⊗ distributes over ⊕ }",
		"map pair ; scan(op_sr2) ; map π₁",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRule missing %q:\n%s", want, out)
		}
	}
}

func TestFormatApplication(t *testing.T) {
	e := NewEngine()
	prog := term.Seq{term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}}
	_, app, ok := e.Step(prog)
	if !ok {
		t.Fatal("no application")
	}
	out := FormatApplication(app)
	for _, want := range []string{
		"SR2-Reduction (at stage 0)",
		"scan(*) ; reduce(+)",
		"{ ⊗ distributes over ⊕ }",
		"reduce(op_sr2(*,+))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatApplication missing %q:\n%s", want, out)
		}
	}
}

func TestCatalogListsEveryRule(t *testing.T) {
	out := Catalog(true)
	for _, r := range AllWithExtensions() {
		if !strings.Contains(out, r.Name) {
			t.Errorf("catalog missing %s", r.Name)
		}
	}
	for _, class := range []string{"Reduction", "Scan", "Comcast", "Local"} {
		if !strings.Contains(out, "-- class "+class+" --") {
			t.Errorf("catalog missing class header %s", class)
		}
	}
	if !strings.Contains(out, "-- extensions") {
		t.Error("catalog missing extensions section")
	}
	slim := Catalog(false)
	if strings.Contains(slim, "BM-Mobility") {
		t.Error("extension appeared in the paper-only catalog")
	}
}

func TestEveryRuleIsDocumented(t *testing.T) {
	for _, r := range AllWithExtensions() {
		if r.Pattern == "" || r.Cond == "" || r.Result == "" {
			t.Errorf("rule %s lacks schematic documentation", r.Name)
		}
	}
}
