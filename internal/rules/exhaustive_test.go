package rules

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

// TestExhaustiveVerificationOfEveryRule proves each rule's equality by
// enumeration over the domain {-1, 0, 1, 2} on up to four processors
// (powers of two only, which covers the Local rules' requirement and is a
// subset of the general rules' domain).
func TestExhaustiveVerificationOfEveryRule(t *testing.T) {
	domain := []float64{-1, 0, 1, 2}
	cases := []struct {
		rule   Rule
		stages []term.Term
	}{
		{SR2Reduction, []term.Term{term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}}},
		{SR2Reduction, []term.Term{term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Max}}},
		{SR2Reduction, []term.Term{term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add, All: true}}},
		{SRReduction, []term.Term{term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}}},
		{SRReduction, []term.Term{term.Scan{Op: algebra.Max}, term.Reduce{Op: algebra.Max}}},
		{SS2Scan, []term.Term{term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}}},
		{SSScan, []term.Term{term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}}},
		{BSComcast, []term.Term{term.Bcast{}, term.Scan{Op: algebra.Add}}},
		{BSComcast, []term.Term{term.Bcast{}, term.Scan{Op: algebra.Left}}},
		{BSS2Comcast, []term.Term{term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}}},
		{BSSComcast, []term.Term{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}}},
		{BRLocal, []term.Term{term.Bcast{}, term.Reduce{Op: algebra.Add}}},
		{BSR2Local, []term.Term{term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}}},
		{BSRLocal, []term.Term{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}}},
		{CRAllLocal, []term.Term{term.Bcast{}, term.Reduce{Op: algebra.Add, All: true}}},
		// Extensions.
		{BMMobility, []term.Term{term.Bcast{}, term.Map{F: term.PairFn}}},
		{RBAllReduce, []term.Term{term.Reduce{Op: algebra.Add}, term.Bcast{}}},
		{BBBcast, []term.Term{term.Bcast{}, term.Bcast{}}},
		{ABAllReduce, []term.Term{term.Reduce{Op: algebra.Max, All: true}, term.Bcast{}}},
	}
	env := DefaultEnv()
	for _, c := range cases {
		repl, ok := c.rule.Try(c.stages, env)
		if !ok {
			t.Fatalf("%s did not match %s", c.rule.Name, term.Seq(c.stages))
		}
		// Local rules are only valid on powers of two; the enumeration
		// covers n = 1, 2, 4 for them and 1..4 for the rest.
		maxN := 4
		lhs, rhs := term.Seq(c.stages), term.Seq(repl)
		if c.rule.Class == "Local" {
			for _, n := range []int{1, 2, 4} {
				if err := exhaustiveAt(lhs, rhs, domain, n); err != nil {
					t.Fatalf("%s: %v", c.rule.Name, err)
				}
			}
			continue
		}
		if err := VerifyExhaustive(lhs, rhs, domain, maxN); err != nil {
			t.Fatalf("%s: %v", c.rule.Name, err)
		}
	}
}

// exhaustiveAt enumerates one specific list length.
func exhaustiveAt(lhs, rhs term.Term, domain []float64, n int) error {
	in := make([]algebra.Value, n)
	var walk func(pos int) error
	walk = func(pos int) error {
		if pos == n {
			return compareOn(lhs, rhs, in, n, -1, 0)
		}
		for _, d := range domain {
			in[pos] = algebra.Scalar(d)
			if err := walk(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0)
}

func TestVerifyExhaustiveCatchesCounterexample(t *testing.T) {
	lhs := term.Seq{term.Scan{Op: algebra.Add}}
	rhs := term.Seq{term.Scan{Op: algebra.Mul}}
	if err := VerifyExhaustive(lhs, rhs, []float64{0, 1, 2}, 3); err == nil {
		t.Fatal("exhaustive verification accepted inequivalent programs")
	}
}
