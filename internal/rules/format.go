package rules

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// FormatRule renders a rule in the paper's box format (§3.1):
//
//	SS2-Scan
//	    scan(⊗) ; scan(⊕)
//	    ⇓  { ⊗ distributes over ⊕ }
//	    map pair ; scan(op_sr2) ; map π₁
func FormatRule(r Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Name)
	fmt.Fprintf(&b, "    %s\n", r.Pattern)
	fmt.Fprintf(&b, "    =>  { %s }\n", r.Cond)
	fmt.Fprintf(&b, "    %s\n", r.Result)
	return b.String()
}

// FormatApplication renders one engine application in the same format,
// with the concrete matched stages instead of the schematic pattern.
func FormatApplication(a Application) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (at stage %d)\n", a.Rule, a.Pos)
	fmt.Fprintf(&b, "    %s\n", term.Seq(a.Before))
	cond := "—"
	if r, ok := ByName(a.Rule); ok {
		cond = r.Cond
	}
	fmt.Fprintf(&b, "    =>  { %s }\n", cond)
	fmt.Fprintf(&b, "    %s\n", term.Seq(a.After))
	if a.CostBefore != 0 || a.CostAfter != 0 {
		fmt.Fprintf(&b, "    estimated %.0f -> %.0f\n", a.CostBefore, a.CostAfter)
	}
	return b.String()
}

// Catalog renders the full rule set — the paper rules by class, then the
// extensions — as a reference card.
func Catalog(includeExtensions bool) string {
	var b strings.Builder
	b.WriteString("Optimization rules (Gorlatch/Wedler/Lengauer, IPPS'99):\n\n")
	class := ""
	paperOrder := []Rule{
		SR2Reduction, SRReduction, SS2Scan, SSScan,
		BSComcast, BSS2Comcast, BSSComcast,
		BRLocal, BSR2Local, BSRLocal, CRAllLocal,
	}
	for _, r := range paperOrder {
		if r.Class != class {
			class = r.Class
			fmt.Fprintf(&b, "-- class %s --\n\n", class)
		}
		b.WriteString(FormatRule(r))
		b.WriteString("\n")
	}
	if includeExtensions {
		b.WriteString("-- extensions (beyond the paper) --\n\n")
		for _, r := range Extensions() {
			b.WriteString(FormatRule(r))
			b.WriteString("\n")
		}
	}
	b.WriteString("-- sparse collectives (message combining) --\n\n")
	for _, r := range Sparse() {
		b.WriteString(FormatRule(r))
		b.WriteString("\n")
	}
	return b.String()
}
