package rules

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

// Negative suite: every rule's side condition must actually gate the
// rewrite. For each rule, a program that matches the syntactic pattern
// but violates the condition — a non-commutative ⊕ where commutativity
// is required, a non-distributing pair, a non-power-of-two machine for
// the Local class — must be left alone; the companion "fixed" program
// shows the violation, not the shape, is what blocks it. The second half
// forces the forbidden rewrites by hand and checks VerifyEquivalence
// rejects them with a concrete counterexample.

// singleRule returns an engine that knows only the named rule.
func singleRule(t *testing.T, name string, p int) *Engine {
	t.Helper()
	r, ok := ByName(name)
	if !ok {
		t.Fatalf("no rule named %s", name)
	}
	e := NewEngine()
	e.Rules = []Rule{r}
	e.Env.P = p
	return e
}

func TestSideConditionViolationsAreRejected(t *testing.T) {
	scan := func(op *algebra.Op) term.Term { return term.Scan{Op: op} }
	red := func(op *algebra.Op) term.Term { return term.Reduce{Op: op} }
	allred := func(op *algebra.Op) term.Term { return term.Reduce{Op: op, All: true} }
	bcast := term.Bcast{}

	cases := []struct {
		rule string
		why  string
		p    int
		prog term.Seq // matches the pattern, violates the condition
		ok   term.Seq // same shape, condition satisfied (nil: covered by another case)
	}{
		{rule: "SR2-Reduction", why: "+ does not distribute over *", p: 4,
			prog: term.Seq{scan(algebra.Add), red(algebra.Mul)},
			ok:   term.Seq{scan(algebra.Mul), red(algebra.Add)}},
		{rule: "SR-Reduction", why: "left is not commutative", p: 4,
			prog: term.Seq{scan(algebra.Left), red(algebra.Left)},
			ok:   term.Seq{scan(algebra.Add), red(algebra.Add)}},
		{rule: "SR-Reduction", why: "scan and reduce operators differ", p: 4,
			prog: term.Seq{scan(algebra.Add), red(algebra.Max)}},
		{rule: "SS2-Scan", why: "+ does not distribute over *", p: 4,
			prog: term.Seq{scan(algebra.Add), scan(algebra.Mul)},
			ok:   term.Seq{scan(algebra.Mul), scan(algebra.Add)}},
		{rule: "SS-Scan", why: "left is not commutative", p: 4,
			prog: term.Seq{scan(algebra.Left), scan(algebra.Left)},
			ok:   term.Seq{scan(algebra.Min), scan(algebra.Min)}},
		{rule: "BS-Comcast", why: "- is not associative", p: 4,
			prog: term.Seq{bcast, scan(algebra.Sub)},
			ok:   term.Seq{bcast, scan(algebra.Add)}},
		{rule: "BSS2-Comcast", why: "+ does not distribute over *", p: 4,
			prog: term.Seq{bcast, scan(algebra.Add), scan(algebra.Mul)},
			ok:   term.Seq{bcast, scan(algebra.Mul), scan(algebra.Add)}},
		{rule: "BSS-Comcast", why: "left is not commutative", p: 4,
			prog: term.Seq{bcast, scan(algebra.Left), scan(algebra.Left)},
			ok:   term.Seq{bcast, scan(algebra.Add), scan(algebra.Add)}},
		{rule: "BR-Local", why: "- is not associative", p: 4,
			prog: term.Seq{bcast, red(algebra.Sub)},
			ok:   term.Seq{bcast, red(algebra.Add)}},
		{rule: "BR-Local", why: "p=6 is not a power of two", p: 6,
			prog: term.Seq{bcast, red(algebra.Add)}},
		{rule: "BSR2-Local", why: "+ does not distribute over *", p: 4,
			prog: term.Seq{bcast, scan(algebra.Add), red(algebra.Mul)},
			ok:   term.Seq{bcast, scan(algebra.Mul), red(algebra.Add)}},
		{rule: "BSR2-Local", why: "p=6 is not a power of two", p: 6,
			prog: term.Seq{bcast, scan(algebra.Mul), red(algebra.Add)}},
		{rule: "BSR-Local", why: "left is not commutative", p: 4,
			prog: term.Seq{bcast, scan(algebra.Left), red(algebra.Left)},
			ok:   term.Seq{bcast, scan(algebra.Add), red(algebra.Add)}},
		{rule: "BSR-Local", why: "p=6 is not a power of two", p: 6,
			prog: term.Seq{bcast, scan(algebra.Add), red(algebra.Add)}},
		{rule: "CR-AllLocal", why: "- is not associative", p: 4,
			prog: term.Seq{bcast, allred(algebra.Sub)},
			ok:   term.Seq{bcast, allred(algebra.Add)}},
		{rule: "CR-AllLocal", why: "p=6 is not a power of two", p: 6,
			prog: term.Seq{bcast, allred(algebra.Add)}},
		{rule: "RB-AllReduce", why: "- is not associative", p: 4,
			prog: term.Seq{red(algebra.Sub), bcast},
			ok:   term.Seq{red(algebra.Max), bcast}},
	}
	for _, tc := range cases {
		t.Run(tc.rule+"/"+strings.ReplaceAll(tc.why, " ", "_"), func(t *testing.T) {
			e := singleRule(t, tc.rule, tc.p)
			out, apps := e.Optimize(tc.prog)
			if len(apps) != 0 {
				t.Fatalf("rule %s applied to %s despite %s: %s -> %s",
					tc.rule, tc.prog, tc.why, tc.prog, out)
			}
			if out.String() != tc.prog.String() {
				t.Fatalf("program changed without an application: %s -> %s", tc.prog, out)
			}
			if tc.ok != nil {
				if _, apps := singleRule(t, tc.rule, tc.p).Optimize(tc.ok); len(apps) == 0 {
					t.Fatalf("control program %s did not trigger %s — the negative case proves nothing",
						tc.ok, tc.rule)
				}
			}
		})
	}
}

// TestForcedWrongRewritesFailVerification constructs the right-hand
// sides the side conditions forbid — exactly what the rules would emit
// if the guard were dropped — and checks the randomized verifier refutes
// each with a counterexample.
func TestForcedWrongRewritesFailVerification(t *testing.T) {
	cfg := VerifyConfig{Seed: 5, Trials: 30}
	cases := []struct {
		name     string
		lhs, rhs term.Term
		cfg      VerifyConfig
	}{
		{
			// SR-Reduction on an operator that is neither associative
			// nor commutative: op_sr(-) under the balanced bracketing
			// computes something else than the sequential scan;reduce.
			// (With left the two sides coincide — the condition is
			// sufficient, not necessary — so the discriminating witness
			// is -.)
			name: "SR-Reduction/sub",
			lhs:  term.Seq{term.Scan{Op: algebra.Sub}, term.Reduce{Op: algebra.Sub}},
			rhs: term.Seq{
				term.Map{F: term.PairFn},
				term.Reduce{Op: algebra.OpSR(algebra.Sub), Balanced: true},
				term.Map{F: term.FirstFn},
			},
			cfg: cfg,
		},
		{
			// SS-Scan likewise: op_ss(-) under the balanced scan tree.
			name: "SS-Scan/sub",
			lhs:  term.Seq{term.Scan{Op: algebra.Sub}, term.Scan{Op: algebra.Sub}},
			rhs: term.Seq{
				term.Map{F: term.QuadrupleFn},
				term.ScanBal{Op: algebra.OpSS(algebra.Sub)},
				term.Map{F: term.FirstFn},
			},
			cfg: cfg,
		},
		{
			// BSR2-Local without distributivity: iter(op_bsr2(+,*))'s
			// repeated squaring needs + to distribute over *, which it
			// does not. Power-of-two sizes only, so the distributivity
			// violation — not the machine size — is what is caught.
			name: "BSR2-Local/add-over-mul",
			lhs:  term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Mul}},
			rhs:  term.Seq{term.Iter{Op: algebra.OpBSR2(algebra.Add, algebra.Mul)}},
			cfg:  VerifyConfig{Seed: 5, Trials: 30, Pow2Only: true},
		},
		{
			// BR-Local off its power-of-two domain: repeated squaring
			// over-counts the reduction.
			name: "BR-Local/non-pow2",
			lhs:  term.Seq{term.Bcast{}, term.Reduce{Op: algebra.Add}},
			rhs:  term.Seq{term.Iter{Op: algebra.OpBR(algebra.Add)}},
			cfg:  VerifyConfig{Seed: 5, Trials: 10, Sizes: []int{3, 5, 6}},
		},
		{
			// CR-AllLocal off its power-of-two domain.
			name: "CR-AllLocal/non-pow2",
			lhs:  term.Seq{term.Bcast{}, term.Reduce{Op: algebra.Add, All: true}},
			rhs:  term.Seq{term.Iter{Op: algebra.OpBR(algebra.Add)}, term.Bcast{}},
			cfg:  VerifyConfig{Seed: 5, Trials: 10, Sizes: []int{3, 5, 6}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := VerifyEquivalence(tc.lhs, tc.rhs, tc.cfg); err == nil {
				t.Fatalf("verifier accepted the forbidden rewrite %s -> %s", tc.lhs, tc.rhs)
			}
		})
	}
}

// TestVerifierAcceptsLegalRewrites is the control for the test above:
// the same constructions with their side conditions satisfied pass.
func TestVerifierAcceptsLegalRewrites(t *testing.T) {
	cfg := VerifyConfig{Seed: 5, Trials: 15}
	lhs := term.Seq{term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}}
	rhs := term.Seq{
		term.Map{F: term.PairFn},
		term.Reduce{Op: algebra.OpSR(algebra.Add), Balanced: true},
		term.Map{F: term.FirstFn},
	}
	if err := VerifyEquivalence(lhs, rhs, cfg); err != nil {
		t.Fatalf("verifier rejected the legal SR-Reduction rewrite: %v", err)
	}
	pow2 := VerifyConfig{Seed: 5, Trials: 15, Pow2Only: true}
	lhs2 := term.Seq{term.Bcast{}, term.Reduce{Op: algebra.Add}}
	rhs2 := term.Seq{term.Iter{Op: algebra.OpBR(algebra.Add)}}
	if err := VerifyEquivalence(lhs2, rhs2, pow2); err != nil {
		t.Fatalf("verifier rejected BR-Local on powers of two: %v", err)
	}
}
