package rules

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

// applyRule matches the rule against the given stages (which must span
// exactly the rule's window) and fails the test if it does not fire.
func applyRule(t *testing.T, r Rule, env Env, stages ...term.Term) []term.Term {
	t.Helper()
	if len(stages) != r.Window {
		t.Fatalf("%s window is %d, got %d stages", r.Name, r.Window, len(stages))
	}
	repl, ok := r.Try(stages, env)
	if !ok {
		t.Fatalf("%s did not match %s", r.Name, term.Seq(stages))
	}
	return repl
}

// refuseRule fails the test if the rule fires.
func refuseRule(t *testing.T, r Rule, env Env, stages ...term.Term) {
	t.Helper()
	if _, ok := r.Try(stages, env); ok {
		t.Fatalf("%s must not match %s", r.Name, term.Seq(stages))
	}
}

// verifyRule applies the rule and checks the semantic equality of both
// sides on random inputs (scalar and 4-word blocks).
func verifyRule(t *testing.T, r Rule, env Env, stages ...term.Term) []term.Term {
	t.Helper()
	repl := applyRule(t, r, env, stages...)
	cfg := VerifyConfig{Seed: 7, BlockWords: 4, Pow2Only: r.Class == "Local"}
	if err := VerifyEquivalence(term.Seq(stages), term.Seq(repl), cfg); err != nil {
		t.Fatalf("%s: %v", r.Name, err)
	}
	return repl
}

func env() Env { return DefaultEnv() }

func TestSR2ReductionMulAdd(t *testing.T) {
	repl := verifyRule(t, SR2Reduction, env(),
		term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add})
	if got := term.Seq(repl).String(); got != "map pair ; reduce(op_sr2(*,+)) ; map pi_1" {
		t.Fatalf("rewrite = %q", got)
	}
}

func TestSR2ReductionTropical(t *testing.T) {
	// + distributes over max: the maximum-segment-sum pair.
	verifyRule(t, SR2Reduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Max})
}

func TestSR2ReductionAllReduceVariant(t *testing.T) {
	repl := verifyRule(t, SR2Reduction, env(),
		term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add, All: true})
	red, ok := repl[1].(term.Reduce)
	if !ok || !red.All {
		t.Fatalf("allreduce variant lost the All flag: %v", term.Seq(repl))
	}
}

func TestSR2ReductionRequiresDistributivity(t *testing.T) {
	// + does not distribute over *.
	refuseRule(t, SR2Reduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Mul})
	// - is not even associative.
	refuseRule(t, SR2Reduction, env(),
		term.Scan{Op: algebra.Sub}, term.Reduce{Op: algebra.Add})
}

func TestSRReductionAdd(t *testing.T) {
	repl := verifyRule(t, SRReduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add})
	red, ok := repl[1].(term.Reduce)
	if !ok || !red.Balanced {
		t.Fatalf("SR-Reduction must produce a balanced reduction: %v", term.Seq(repl))
	}
}

func TestSRReductionAllReduce(t *testing.T) {
	repl := verifyRule(t, SRReduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add, All: true})
	red := repl[1].(term.Reduce)
	if !red.All || !red.Balanced {
		t.Fatalf("allreduce_balanced expected: %v", term.Seq(repl))
	}
}

func TestSRReductionRequiresCommutativity(t *testing.T) {
	refuseRule(t, SRReduction, env(),
		term.Scan{Op: algebra.Left}, term.Reduce{Op: algebra.Left})
}

func TestSRReductionRequiresSameOperator(t *testing.T) {
	refuseRule(t, SRReduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Mul})
}

func TestSS2ScanMulAdd(t *testing.T) {
	repl := verifyRule(t, SS2Scan, env(),
		term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add})
	if _, ok := repl[1].(term.Scan); !ok {
		t.Fatalf("SS2-Scan must produce an ordinary scan: %v", term.Seq(repl))
	}
}

func TestSS2ScanTropical(t *testing.T) {
	verifyRule(t, SS2Scan, env(),
		term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Max})
}

func TestSS2ScanRequiresDistributivity(t *testing.T) {
	refuseRule(t, SS2Scan, env(),
		term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Mul})
}

func TestSSScanAdd(t *testing.T) {
	repl := verifyRule(t, SSScan, env(),
		term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add})
	if _, ok := repl[1].(term.ScanBal); !ok {
		t.Fatalf("SS-Scan must produce a balanced scan: %v", term.Seq(repl))
	}
}

func TestSSScanMax(t *testing.T) {
	verifyRule(t, SSScan, env(),
		term.Scan{Op: algebra.Max}, term.Scan{Op: algebra.Max})
}

func TestSSScanRequiresCommutativity(t *testing.T) {
	refuseRule(t, SSScan, env(),
		term.Scan{Op: algebra.Left}, term.Scan{Op: algebra.Left})
}

func TestBSComcast(t *testing.T) {
	repl := verifyRule(t, BSComcast, env(),
		term.Bcast{}, term.Scan{Op: algebra.Add})
	if len(repl) != 1 {
		t.Fatalf("BS-Comcast should produce one stage: %v", term.Seq(repl))
	}
	if _, ok := repl[0].(term.Comcast); !ok {
		t.Fatalf("BS-Comcast must produce a comcast: %v", term.Seq(repl))
	}
}

func TestBSComcastNonCommutativeOp(t *testing.T) {
	// BS-Comcast needs only associativity; left projection qualifies.
	verifyRule(t, BSComcast, env(),
		term.Bcast{}, term.Scan{Op: algebra.Left})
}

func TestBSComcastRequiresAssociativity(t *testing.T) {
	refuseRule(t, BSComcast, env(), term.Bcast{}, term.Scan{Op: algebra.Sub})
}

func TestBSS2Comcast(t *testing.T) {
	verifyRule(t, BSS2Comcast, env(),
		term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add})
}

func TestBSS2ComcastRequiresDistributivity(t *testing.T) {
	refuseRule(t, BSS2Comcast, env(),
		term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Mul})
}

func TestBSSComcast(t *testing.T) {
	verifyRule(t, BSSComcast, env(),
		term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add})
}

func TestBSSComcastRequiresCommutativity(t *testing.T) {
	refuseRule(t, BSSComcast, env(),
		term.Bcast{}, term.Scan{Op: algebra.Left}, term.Scan{Op: algebra.Left})
}

func TestBRLocal(t *testing.T) {
	repl := verifyRule(t, BRLocal, env(),
		term.Bcast{}, term.Reduce{Op: algebra.Add})
	if _, ok := repl[0].(term.Iter); !ok || len(repl) != 1 {
		t.Fatalf("BR-Local must produce iter: %v", term.Seq(repl))
	}
}

func TestBRLocalRejectsAllReduce(t *testing.T) {
	refuseRule(t, BRLocal, env(), term.Bcast{}, term.Reduce{Op: algebra.Add, All: true})
}

func TestBRLocalRejectsNonPow2Machine(t *testing.T) {
	e := env()
	e.P = 6
	refuseRule(t, BRLocal, e, term.Bcast{}, term.Reduce{Op: algebra.Add})
	e.P = 8
	applyRule(t, BRLocal, e, term.Bcast{}, term.Reduce{Op: algebra.Add})
}

func TestBSR2Local(t *testing.T) {
	verifyRule(t, BSR2Local, env(),
		term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add})
}

func TestBSR2LocalRequiresDistributivity(t *testing.T) {
	refuseRule(t, BSR2Local, env(),
		term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Mul})
}

func TestBSRLocal(t *testing.T) {
	verifyRule(t, BSRLocal, env(),
		term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add})
}

func TestBSRLocalRequiresCommutativity(t *testing.T) {
	refuseRule(t, BSRLocal, env(),
		term.Bcast{}, term.Scan{Op: algebra.Left}, term.Reduce{Op: algebra.Left})
}

func TestCRAllLocal(t *testing.T) {
	repl := verifyRule(t, CRAllLocal, env(),
		term.Bcast{}, term.Reduce{Op: algebra.Add, All: true})
	if len(repl) != 2 {
		t.Fatalf("CR-AllLocal should produce iter ; bcast: %v", term.Seq(repl))
	}
	if _, ok := repl[0].(term.Iter); !ok {
		t.Fatalf("first stage should be iter: %v", term.Seq(repl))
	}
	if _, ok := repl[1].(term.Bcast); !ok {
		t.Fatalf("second stage should be bcast: %v", term.Seq(repl))
	}
}

func TestCRAllLocalRejectsPlainReduce(t *testing.T) {
	refuseRule(t, CRAllLocal, env(), term.Bcast{}, term.Reduce{Op: algebra.Add})
}

func TestRulesDoNotMatchBalancedCollectives(t *testing.T) {
	// A balanced reduce on the left must not be re-fused.
	sr := algebra.OpSR(algebra.Add)
	refuseRule(t, SR2Reduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: sr, Balanced: true})
	refuseRule(t, SRReduction, env(),
		term.Scan{Op: algebra.Add}, term.Reduce{Op: sr, Balanced: true})
}

func TestAllRulesHaveDistinctNamesAndClasses(t *testing.T) {
	seen := map[string]bool{}
	classes := map[string]bool{"Reduction": true, "Scan": true, "Comcast": true, "Local": true}
	for _, r := range All() {
		if seen[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		seen[r.Name] = true
		if !classes[r.Class] {
			t.Errorf("rule %s has unknown class %q", r.Name, r.Class)
		}
		if r.Window < 2 || r.Window > 3 {
			t.Errorf("rule %s has window %d", r.Name, r.Window)
		}
	}
	if len(seen) != 11 {
		t.Errorf("expected 11 rules, got %d", len(seen))
	}
}

func TestByName(t *testing.T) {
	r, ok := ByName("SS2-Scan")
	if !ok || r.Name != "SS2-Scan" {
		t.Fatalf("ByName failed: %v %v", r, ok)
	}
	if _, ok := ByName("No-Such-Rule"); ok {
		t.Fatal("ByName found a nonexistent rule")
	}
}

func TestWindowOrderingTripleRulesFirst(t *testing.T) {
	// In bcast ; scan(+) ; scan(+) the three-stage BSS-Comcast must win
	// over the two-stage BS-Comcast prefix.
	e := NewEngine()
	prog := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}}
	_, app, ok := e.Step(prog)
	if !ok {
		t.Fatal("no rule applied")
	}
	if app.Rule != "BSS-Comcast" {
		t.Fatalf("applied %s, want BSS-Comcast", app.Rule)
	}
}

func TestApplicationString(t *testing.T) {
	e := NewEngine()
	prog := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}}
	_, app, ok := e.Step(prog)
	if !ok {
		t.Fatal("no rule applied")
	}
	s := app.String()
	if !strings.Contains(s, "BS-Comcast") || !strings.Contains(s, "=>") {
		t.Fatalf("Application.String() = %q", s)
	}
}
