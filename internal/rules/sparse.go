package rules

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/term"
)

// Message-combining rules for the sparse and irregular collectives
// (term.Halo, term.AllGatherV, term.ReduceScatterV), after Träff et
// al.'s message-combining algorithms for isomorphic sparse collectives
// and the classic reduce_scatter+allgather ↔ allreduce equivalence
// (Jocksch et al.). Like the paper rules they are syntactic patterns
// with algebraic side conditions, verified against the functional
// semantics; docs/SPARSE.md derives their cost lines.
//
// The sparse rules are part of the default engine rule set (see
// Sparse): their patterns only match sparse stages, so they are inert
// on dense programs and cannot perturb existing optimizations.

// EachFn lifts f to the neighbor tuples a halo delivers: each(f)
// applies f to every component. Moving a map across a halo turns map f
// into map each(f) — same per-element cost, but charged on the |H|-fold
// wider post-halo block.
func EachFn(f *term.Fn) *term.Fn {
	return &term.Fn{
		Name: fmt.Sprintf("each(%s)", f.Name),
		Cost: f.Cost,
		F: func(v algebra.Value) algebra.Value {
			t, ok := v.(algebra.Tuple)
			if !ok {
				// Off-domain input (the verifier samples windows out of
				// context): undetermined, per the §3.5 discipline.
				return algebra.Undef{}
			}
			out := make(algebra.Tuple, len(t))
			for i, c := range t {
				out[i] = f.F(c)
			}
			return out
		},
	}
}

// RegroupFn renests a flat combined-halo tuple of n1·n2 components into
// the n2-tuple of n1-tuples the uncombined halos would have delivered:
// component j·n1+k of the input becomes component k of output component
// j. Pure bookkeeping — no element is touched, so the cost is zero
// (§4.2's "small additive constant ... which we ignore").
func RegroupFn(n1, n2 int) *term.Fn {
	return &term.Fn{
		Name: fmt.Sprintf("regroup_%dx%d", n1, n2),
		F: func(v algebra.Value) algebra.Value {
			t, ok := v.(algebra.Tuple)
			if !ok || len(t) != n1*n2 {
				// Off-domain input (the verifier samples windows out of
				// context): undetermined, per the §3.5 discipline.
				return algebra.Undef{}
			}
			out := make(algebra.Tuple, n2)
			for j := 0; j < n2; j++ {
				inner := make(algebra.Tuple, n1)
				copy(inner, t[j*n1:(j+1)*n1])
				out[j] = inner
			}
			return out
		},
	}
}

// HHCombine is the message-combining rule for consecutive halos:
//
//	halo(O1) ; halo(O2)  →  halo(O2+O1) ; map regroup
//	provided both neighborhoods are isomorphic (offset form).
//
// The combined neighborhood is the sumset {q+o : q ∈ O2, o ∈ O1} in
// q-major order, and the free regroup renests the flat tuple. One
// exchange instead of two: offsets that collide mod p now share a
// message, so both the start-ups and the shipped words can shrink (the
// ±1 ring halo squared has 4 offset pairs but only 2 distinct
// neighbors). The offset arithmetic is what a per-rank neighbor-list
// neighborhood does not support — the side condition the negative
// tests pin.
var HHCombine = Rule{
	Name:    "HH-Combine",
	Class:   "Sparse",
	Window:  2,
	Pattern: "halo(O1) ; halo(O2)",
	Cond:    "both neighborhoods isomorphic",
	Result:  "halo(O2+O1) ; map regroup",
	// The combined window is never estimated dearer than the pair — equal
	// only in degenerate all-local cases — so let the cost-guided engine
	// fire it on equality too.
	CostNeutral: true,
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		h1, ok := w[0].(term.Halo)
		if !ok || !h1.H.Isomorphic() {
			return nil, false
		}
		h2, ok := w[1].(term.Halo)
		if !ok || !h2.H.Isomorphic() {
			return nil, false
		}
		o1, o2 := h1.H.Offsets, h2.H.Offsets
		combined := make([]int, 0, len(o1)*len(o2))
		for _, q := range o2 {
			for _, o := range o1 {
				combined = append(combined, q+o)
			}
		}
		return []term.Term{
			term.Halo{H: &term.Hood{Offsets: combined}},
			term.Map{F: RegroupFn(len(o1), len(o2))},
		}, true
	},
}

// MHMobility moves a local stage rightward across a halo:
//
//	map f ; halo(H)  →  halo(H) ; map each(f)
//
// Both sides deliver ⟨f x_s : s ∈ neighbors⟩. The move is never an
// improvement by itself — each(f) runs on the |H|-fold wider post-halo
// block — so the greedy engine never takes it; its value is opening
// HH-Combine windows in halo ; map f ; halo pipelines, which only the
// plan search discovers (the sparse analogue of the greedy trap in
// docs/RULES.md).
var MHMobility = Rule{
	Name:    "MH-Mobility",
	Class:   "Mobility",
	Window:  2,
	Pattern: "map f ; halo(H)",
	Cond:    "—",
	Result:  "halo(H) ; map each(f)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		m, ok := w[0].(term.Map)
		if !ok {
			return nil, false
		}
		h, ok := w[1].(term.Halo)
		if !ok {
			return nil, false
		}
		return []term.Term{h, term.Map{F: EachFn(m.F)}}, true
	},
}

// RSAGAllReduce fuses the irregular reduce-scatter with the allgather
// that undoes its scatter:
//
//	reduce_scatterv(⊕, c) ; allgatherv(c)  →  allreduce(⊕)
//	provided the counts vectors are equal, ⊕ is associative and
//	elementwise, and the machine size matches the counts.
//
// Slicing the rank-ordered fold and re-concatenating the slices is the
// fold itself exactly when ⊕ combines position by position — MatMul is
// associative but not elementwise, and for it the left side computes
// block-row products the right side never forms.
var RSAGAllReduce = Rule{
	Name:    "RSAG-AllReduce",
	Class:   "Sparse",
	Window:  2,
	Pattern: "reduce_scatterv(⊕,c) ; allgatherv(c)",
	Cond:    "counts equal; ⊕ associative and elementwise; p = len(c)",
	Result:  "allreduce(⊕)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		rs, ok := w[0].(term.ReduceScatterV)
		if !ok {
			return nil, false
		}
		ag, ok := w[1].(term.AllGatherV)
		if !ok {
			return nil, false
		}
		if !equalCounts(rs.Counts, ag.Counts) {
			return nil, false
		}
		if !assoc(env, rs.Op) || !env.Reg.Elementwise(rs.Op) {
			return nil, false
		}
		if env.P != 0 && env.P != len(rs.Counts) {
			return nil, false
		}
		return []term.Term{term.Reduce{Op: rs.Op, All: true}}, true
	},
}

func equalCounts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sparse returns the message-combining rules for the sparse and
// irregular collectives, ordered like All(): genuine fusions first,
// the mobility window-opener last.
func Sparse() []Rule {
	return []Rule{HHCombine, RSAGAllReduce, MHMobility}
}

// IncTupFn is the sparse pipelines' local stage: elementwise +1 that
// recurses through the neighbor tuples halos deliver (IncFn's + lift
// broadcasts over vectors but not tuples, so a map between two halos
// needs the deep form).
var IncTupFn = &term.Fn{Name: "inc_t", Cost: 1, F: incTup}

func incTup(v algebra.Value) algebra.Value {
	if t, ok := v.(algebra.Tuple); ok {
		out := make(algebra.Tuple, len(t))
		for i, c := range t {
			out[i] = incTup(c)
		}
		return out
	}
	if algebra.IsUndef(v) {
		return algebra.Undef{}
	}
	return algebra.Add.Apply(v, algebra.Scalar(1))
}

// RandSparseProgram builds a random sparse pipeline for the property
// harness: halo chains with interspersed local stages, or a ragged
// reduce_scatterv/allgatherv pair over a random counts vector (possibly
// with zero-length and maximally skewed blocks). Unlike RandProgram it
// returns programs whose input shapes depend on the stages, so callers
// pair it with SparseInputs.
func RandSparseProgram(rng *rand.Rand, p int) term.Seq {
	switch rng.Intn(3) {
	case 0:
		// halo chain: 2-3 halos with optional maps between them.
		n := 2 + rng.Intn(2)
		prog := make(term.Seq, 0, 2*n)
		for i := 0; i < n; i++ {
			prog = append(prog, term.Halo{H: &term.Hood{Offsets: randOffsets(rng)}})
			if i+1 < n && rng.Intn(2) == 0 {
				prog = append(prog, term.Map{F: IncTupFn})
			}
		}
		return prog
	case 1:
		// map-then-halo, the MH-Mobility shape.
		return term.Seq{
			term.Map{F: IncFn},
			term.Halo{H: &term.Hood{Offsets: randOffsets(rng)}},
		}
	default:
		counts := RandCounts(rng, p)
		prog := term.Seq{
			term.ReduceScatterV{Op: genOps[rng.Intn(4)], Counts: counts},
			term.AllGatherV{Counts: counts},
		}
		if rng.Intn(2) == 0 {
			prog = append(prog, term.Map{F: IncTupFn})
		}
		return prog
	}
}

func randOffsets(rng *rand.Rand) []int {
	k := 1 + rng.Intn(3)
	offs := make([]int, k)
	for i := range offs {
		offs[i] = rng.Intn(7) - 3
	}
	return offs
}

// RandCounts draws a random counts vector for p ranks: mostly small
// ragged blocks, sometimes zero-padded, sometimes maximally skewed
// (one rank owns everything).
func RandCounts(rng *rand.Rand, p int) []int {
	counts := make([]int, p)
	switch rng.Intn(4) {
	case 0:
		// Maximally skewed: one rank owns everything.
		counts[rng.Intn(p)] = 1 + rng.Intn(5)
	default:
		for i := range counts {
			counts[i] = rng.Intn(4) // zero-length blocks included
		}
	}
	return counts
}

// SparseInputs generates an input list matching the shape the program's
// first shape-determining stage demands: a full ΣCounts-word vector per
// rank ahead of a reduce_scatterv, rank-ragged counts[r]-word vectors
// ahead of an allgatherv, and scalars otherwise (a halo works on any
// value). It is the Gen the shaped verification installs for programs
// with counts-carrying stages.
func SparseInputs(prog term.Seq, rng *rand.Rand, n int) []algebra.Value {
	for _, st := range term.Stages(prog) {
		switch s := st.(type) {
		case term.ReduceScatterV:
			total := term.SumCounts(s.Counts)
			in := make([]algebra.Value, n)
			for i := range in {
				v := make(algebra.Vec, total)
				for j := range v {
					v[j] = float64(rng.Intn(13) - 6)
				}
				in[i] = v
			}
			return in
		case term.AllGatherV:
			in := make([]algebra.Value, n)
			for i := range in {
				cnt := 0
				if i < len(s.Counts) {
					cnt = s.Counts[i]
				}
				v := make(algebra.Vec, cnt)
				for j := range v {
					v[j] = float64(rng.Intn(13) - 6)
				}
				in[i] = v
			}
			return in
		}
	}
	in := make([]algebra.Value, n)
	for i := range in {
		in[i] = algebra.Scalar(float64(rng.Intn(13) - 6))
	}
	return in
}

// progCounts returns the counts vector of the first counts-carrying
// stage of t, if any. Such programs only run at p = len(counts), which
// the shaped verification pins.
func progCounts(t term.Term) ([]int, bool) {
	for _, st := range term.Stages(t) {
		if c, ok := term.CountsStage(st); ok {
			return c, true
		}
	}
	return nil, false
}
