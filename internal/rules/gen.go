package rules

import (
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/term"
)

// Random-program generator over the rule grammar, shared by the fuzzers
// of this package and package core and by the chaos conformance harness
// (package chaos) and its collchaos command.

// IncFn is the generator's generic local stage: elementwise +1. It is not
// one of the parser's built-in functions; consumers that parse reproducer
// strings must register it with Symbols.DefineFn.
var IncFn = &term.Fn{Name: "inc", Cost: 1, F: func(v algebra.Value) algebra.Value {
	return algebra.Add.Apply(v, algebra.Scalar(1))
}}

// genOps are the operators the generator draws from: everything the
// default registry knows properties for, including the non-commutative
// left so the commutativity side conditions get exercised.
var genOps = []*algebra.Op{algebra.Add, algebra.Mul, algebra.Max, algebra.Min, algebra.Left}

// RandProgram builds a random composition of local and collective stages
// over operators whose algebraic properties the default registry knows,
// so every rule has a chance to fire somewhere. Gather is always followed
// by scatter (so downstream stages see per-processor values again), and
// pair by its projection. Every stage is expressible in the surface
// syntax, so a failing program can be reported — and re-run — as a
// parseable string.
func RandProgram(rng *rand.Rand, maxStages int) term.Seq {
	n := 1 + rng.Intn(maxStages)
	prog := make(term.Seq, 0, n+1)
	for i := 0; i < n; i++ {
		op := genOps[rng.Intn(len(genOps))]
		switch rng.Intn(7) {
		case 0:
			prog = append(prog, term.Bcast{})
		case 1:
			prog = append(prog, term.Scan{Op: op})
		case 2:
			prog = append(prog, term.Reduce{Op: op})
		case 3:
			prog = append(prog, term.Reduce{Op: op, All: true})
		case 4:
			prog = append(prog, term.Map{F: IncFn})
		case 5:
			prog = append(prog, term.Map{F: term.PairFn}, term.Map{F: term.FirstFn})
		case 6:
			prog = append(prog, term.Gather{}, term.Scatter{})
		}
	}
	return prog
}
