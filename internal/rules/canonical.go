package rules

import (
	"strings"

	"repro/internal/term"
)

// Canonical renders a program in a stable canonical form of the surface
// syntax — the form used as a plan-cache key by the optimization service
// (package serve). Two programs have the same Canonical string exactly
// when they are EqualTerms over the same named operators and functions,
// regardless of the whitespace, comments or nesting of the source they
// were parsed from.
//
// For every stage expressible in the lang grammar the rendering is the
// concrete syntax the parser accepts, so parse → Canonical is a fixed
// point: Canonical(parse(Canonical(parse(src)))) == Canonical(parse(src))
// (property-tested in canonical_test.go). Stages outside the grammar
// (map#, the balanced forms, comcast, iter — the rule right-hand sides)
// fall back to their String form, which is deterministic and keyed on the
// operator name, still a sound cache key.
func Canonical(s term.Seq) string {
	stages := term.Stages(s)
	if len(stages) == 0 {
		return "id"
	}
	parts := make([]string, len(stages))
	for i, st := range stages {
		parts[i] = canonicalStage(st)
	}
	return strings.Join(parts, " ; ")
}

func canonicalStage(st term.Term) string {
	switch x := st.(type) {
	case term.Map:
		return "map " + x.F.Name
	case term.Scan:
		return "scan(" + x.Op.Name + ")"
	case term.Reduce:
		name := "reduce"
		if x.All {
			name = "allreduce"
		}
		if x.Balanced {
			name += "_balanced"
		}
		return name + "(" + x.Op.Name + ")"
	case term.Bcast:
		return "bcast"
	case term.Gather:
		return "gather"
	case term.Scatter:
		return "scatter"
	case term.Halo:
		// The offset form matches the parseable surface syntax; the
		// per-rank-list form falls back to its deterministic String like
		// the other out-of-grammar stages.
		return x.String()
	case term.AllGatherV:
		return x.String()
	case term.ReduceScatterV:
		return x.String()
	}
	return st.String()
}
