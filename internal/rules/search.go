package rules

import (
	"repro/internal/cost"
	"repro/internal/term"
)

// This file implements the global plan search over rewrite choices. The
// greedy engine (Step/Optimize) applies the first rule whose window cost
// improves, which can forfeit a strictly better derivation downstream —
// the trap ILP-based fusion work (van Balen et al., PAPERS.md) identifies
// for fusion choice. SearchOptimize instead explores the whole space of
// rule-application sequences within a bounded budget, scores every
// candidate program with the end-to-end cost of the full term (block
// sizes tracked through scatter/gather), memoizes intermediate programs
// on their canonical rendering, and prunes with an admissible cost lower
// bound (cost.Floor). The result is never worse than the greedy plan: the
// greedy derivation seeds the incumbent.

// Default search budgets: enough to exhaust the derivation space of any
// program the generator or the examples produce, while bounding the
// latency of a cold plan-cache miss in the serving layer.
const (
	// DefaultSearchNodes is the default expansion budget (rule
	// applications tried).
	DefaultSearchNodes = 4096
	// DefaultSearchDepth is the default bound on derivation length.
	DefaultSearchDepth = 32
)

// SearchConfig bounds the plan search. The zero value selects the
// defaults.
type SearchConfig struct {
	// MaxNodes is the expansion budget: the total number of rule
	// applications the search may try across the whole run.
	MaxNodes int
	// MaxDepth bounds the length of a single derivation.
	MaxDepth int
}

func (c SearchConfig) maxNodes() int {
	if c.MaxNodes <= 0 {
		return DefaultSearchNodes
	}
	return c.MaxNodes
}

func (c SearchConfig) maxDepth() int {
	if c.MaxDepth <= 0 {
		return DefaultSearchDepth
	}
	return c.MaxDepth
}

// SearchStats reports what the search did.
type SearchStats struct {
	// Nodes is the number of rule applications expanded.
	Nodes int `json:"nodes"`
	// MemoHits counts intermediate programs answered from the memo table
	// (distinct derivations converging on one canonical program).
	MemoHits int `json:"memo_hits"`
	// Pruned counts subtrees cut by the cost lower bound.
	Pruned int `json:"pruned"`
	// Exhausted reports that the whole space was explored within the
	// budgets: the returned plan is optimal over the rule set, not just
	// the best found so far.
	Exhausted bool `json:"exhausted"`
	// GreedyCost and BestCost are the end-to-end estimates of the greedy
	// plan and the searched plan (BestCost <= GreedyCost always).
	GreedyCost float64 `json:"greedy_cost"`
	// BestCost is the end-to-end estimate of the returned plan.
	BestCost float64 `json:"best_cost"`
}

// Improved reports whether the search found a strictly better plan than
// the greedy engine.
func (s SearchStats) Improved() bool { return s.BestCost < s.GreedyCost }

// SearchOptimize finds the cheapest program derivable from t by the
// engine's rule set, scored by the end-to-end cost.OfTerm at the engine's
// parameters — a bounded exhaustive search with branch-and-bound pruning,
// memoized on rules.Canonical of intermediate programs. Unlike the greedy
// Optimize, it may pass through rewrites whose window cost does not
// improve when they enable a cheaper program overall, and it never takes
// a locally profitable rewrite that forfeits a better one downstream.
//
// The greedy derivation seeds the incumbent, so the returned plan costs
// at most the greedy plan's; on ties the greedy derivation is returned
// unchanged. The engine must be cost-guided (Params set).
func (e *Engine) SearchOptimize(t term.Term, cfg SearchConfig) (term.Term, []Application, SearchStats) {
	if e.Params == nil {
		panic("rules: SearchOptimize requires a cost-guided engine (Params set)")
	}
	greedyT, greedyApps := e.Optimize(t)
	gCost := e.score(greedyT, *e.Params)

	s := &searcher{
		e:    e,
		cfg:  cfg,
		p:    *e.Params,
		memo: make(map[string]memoEntry),
		best: gCost,
	}
	s.stats.Exhausted = true
	bt, bapps, bcost := s.explore(t, 0)

	s.stats.GreedyCost = gCost
	if bcost >= gCost {
		// The search found nothing better (a budget cut can even hide
		// the greedy path): keep the greedy derivation.
		s.stats.BestCost = gCost
		return greedyT, greedyApps, s.stats
	}
	s.stats.BestCost = bcost
	return bt, bapps, s.stats
}

type memoEntry struct {
	cost float64
	t    term.Term
	apps []Application
}

type searcher struct {
	e     *Engine
	cfg   SearchConfig
	p     cost.Params
	memo  map[string]memoEntry
	best  float64 // cheapest end-to-end cost seen anywhere (incumbent)
	stats SearchStats
}

// explore returns the cheapest program derivable from t (within the
// remaining budgets), its derivation, and its end-to-end cost.
func (s *searcher) explore(t term.Term, depth int) (term.Term, []Application, float64) {
	key := Canonical(term.Compose(t))
	if m, ok := s.memo[key]; ok {
		s.stats.MemoHits++
		return m.t, m.apps, m.cost
	}

	self := s.e.score(t, s.p)
	if self < s.best {
		s.best = self
	}
	bestT, bestCost := t, self
	var bestApps []Application

	switch {
	case depth >= s.cfg.maxDepth():
		s.stats.Exhausted = false
	case cost.Floor(t, s.p) >= s.best:
		// No derivation from here can beat the incumbent: every rewrite
		// keeps at least the floor's local work.
		s.stats.Pruned++
	default:
		stages := term.Stages(t)
		for _, app := range s.applicable(stages) {
			if s.stats.Nodes >= s.cfg.maxNodes() {
				s.stats.Exhausted = false
				break
			}
			s.stats.Nodes++
			child := splice(stages, app.Pos, len(app.Before), app.After)
			ct, capps, ccost := s.explore(child, depth+1)
			if ccost < bestCost {
				bestT, bestCost = ct, ccost
				bestApps = append([]Application{app}, capps...)
				if ccost < s.best {
					s.best = ccost
				}
			}
		}
	}

	s.memo[key] = memoEntry{cost: bestCost, t: bestT, apps: bestApps}
	return bestT, bestApps, bestCost
}

// applicable enumerates every (position, rule) match in the stages, with
// the window cost estimates filled in for reporting — unlike the greedy
// Step, no match is filtered by its window delta.
func (s *searcher) applicable(stages []term.Term) []Application {
	var out []Application
	for i := range stages {
		for _, r := range s.e.rules() {
			if i+r.Window > len(stages) {
				continue
			}
			window := stages[i : i+r.Window]
			repl, ok := r.Try(window, s.e.Env)
			if !ok {
				continue
			}
			out = append(out, Application{
				Rule:       r.Name,
				Pos:        i,
				Before:     append([]term.Term(nil), window...),
				After:      repl,
				CostBefore: cost.OfTerm(term.Seq(window), s.p),
				CostAfter:  cost.OfTerm(term.Seq(repl), s.p),
			})
		}
	}
	return out
}

// splice replaces stages[pos:pos+window] with repl.
func splice(stages []term.Term, pos, window int, repl []term.Term) term.Term {
	out := make([]term.Term, 0, len(stages)-window+len(repl))
	out = append(out, stages[:pos]...)
	out = append(out, repl...)
	out = append(out, stages[pos+window:]...)
	return term.Seq(out)
}

// VerifySearchOptimization runs the plan search and verifies both every
// rule application of the winning derivation and the end-to-end equality
// of the original and optimized program under the functional semantics —
// the searched counterpart of VerifyOptimization, and the plan-cache
// entry point for the search strategy (package serve).
func VerifySearchOptimization(e *Engine, t term.Term, cfg VerifyConfig, scfg SearchConfig) (term.Term, []Application, SearchStats, error) {
	opt, apps, stats := e.SearchOptimize(t, scfg)
	for _, app := range apps {
		if err := VerifyApplication(app, cfg); err != nil {
			return nil, nil, stats, err
		}
		if r, ok := ByName(app.Rule); ok && r.Class == "Local" {
			cfg.Pow2Only = true
			cfg.Sizes = nil
		}
	}
	if err := VerifyEquivalence(t, opt, cfg); err != nil {
		return nil, nil, stats, err
	}
	return opt, apps, stats, nil
}
