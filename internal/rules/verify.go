package rules

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/term"
)

// VerifyConfig controls randomized semantic-equality checking.
type VerifyConfig struct {
	// Sizes are the machine sizes (list lengths) to check; nil means
	// {1, 2, 3, 4, 5, 6, 7, 8, 16} filtered by Pow2Only.
	Sizes []int
	// Trials is the number of random inputs per size (default 25).
	Trials int
	// Seed seeds the input generator.
	Seed int64
	// BlockWords > 1 additionally checks vector blocks of that size.
	BlockWords int
	// Pow2Only restricts the default sizes to powers of two (required
	// for the Local rules).
	Pow2Only bool
	// RelTol, when positive, compares numeric results with a relative
	// tolerance instead of exactly — needed when deep operator chains
	// push floating-point values beyond the exactly representable range
	// and reassociation flips low-order bits.
	RelTol float64
	// Gen, when non-nil, generates the random input list for a machine
	// size instead of the default small-integer scalars — needed when
	// the program's operators work on other value shapes (matrices,
	// tuples). BlockWords is ignored when Gen is set.
	Gen func(rng *rand.Rand, n int) []algebra.Value
}

func (c VerifyConfig) sizes() []int {
	if c.Sizes != nil {
		return c.Sizes
	}
	if c.Pow2Only {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8, 16}
}

func (c VerifyConfig) trials() int {
	if c.Trials == 0 {
		return 25
	}
	return c.Trials
}

// VerifyEquivalence checks that lhs and rhs denote the same list function
// under the functional semantics, on random integral inputs, comparing
// modulo undetermined positions (the rules only promise the determined
// parts of their results, §3.5). It returns an error describing the first
// counterexample found, or nil.
func VerifyEquivalence(lhs, rhs term.Term, cfg VerifyConfig) error {
	cfg = shapeFor(lhs, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for _, n := range cfg.sizes() {
		for trial := 0; trial < cfg.trials(); trial++ {
			var in []algebra.Value
			if cfg.Gen != nil {
				in = cfg.Gen(rng, n)
			} else {
				in = make([]algebra.Value, n)
				for i := range in {
					in[i] = algebra.Scalar(float64(rng.Intn(13) - 6))
				}
			}
			if err := compareOn(lhs, rhs, in, n, trial, cfg.RelTol); err != nil {
				return err
			}
			if cfg.Gen == nil && cfg.BlockWords > 1 {
				vin := make([]algebra.Value, n)
				for i := range vin {
					v := make(algebra.Vec, cfg.BlockWords)
					for j := range v {
						v[j] = float64(rng.Intn(13) - 6)
					}
					vin[i] = v
				}
				if err := compareOn(lhs, rhs, vin, n, trial, cfg.RelTol); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// shapeFor adapts a verification config to programs whose input shapes
// the default scalar generator cannot satisfy: a counts-carrying stage
// (reduce_scatterv, allgatherv) pins the machine size to len(counts)
// and demands vectors of the counts' shape, so the config is rewritten
// to that single size with a shape-matching generator. Explicit Gens
// are respected; programs without counts stages (halos run on any
// value at any size) pass through unchanged.
func shapeFor(lhs term.Term, cfg VerifyConfig) VerifyConfig {
	if cfg.Gen != nil {
		return cfg
	}
	counts, ok := progCounts(lhs)
	if !ok {
		return cfg
	}
	prog := term.Compose(lhs)
	cfg.Sizes = []int{len(counts)}
	cfg.Gen = func(rng *rand.Rand, n int) []algebra.Value {
		return SparseInputs(prog, rng, n)
	}
	return cfg
}

func compareOn(lhs, rhs term.Term, in []algebra.Value, n, trial int, relTol float64) error {
	l := term.Eval(lhs, in)
	r := term.Eval(rhs, in)
	equal := len(l) == len(r)
	if equal {
		for i := range l {
			if relTol > 0 {
				equal = algebra.EqualApproxModuloUndef(l[i], r[i], relTol)
			} else {
				equal = algebra.EqualModuloUndef(l[i], r[i])
			}
			if !equal {
				break
			}
		}
	}
	if !equal {
		return fmt.Errorf("rules: semantic mismatch at p=%d trial %d:\n  input: %v\n  lhs %s = %v\n  rhs %s = %v",
			n, trial, in, lhs, l, rhs, r)
	}
	return nil
}

// VerifyExhaustive checks the semantic equality of lhs and rhs on *every*
// input over a finite scalar domain, for every list length up to maxN —
// proof by enumeration rather than sampling. With domain {-1, 0, 1, 2}
// and maxN = 4 that is 4 + 16 + 64 + 256 inputs, enough to kill any
// counterexample expressible with four distinct values on four
// processors (the algebra of the rules is oblivious to magnitudes, so
// small domains are highly discriminating).
func VerifyExhaustive(lhs, rhs term.Term, domain []float64, maxN int) error {
	for n := 1; n <= maxN; n++ {
		in := make([]algebra.Value, n)
		var walk func(pos int) error
		walk = func(pos int) error {
			if pos == n {
				return compareOn(lhs, rhs, in, n, -1, 0)
			}
			for _, d := range domain {
				in[pos] = algebra.Scalar(d)
				if err := walk(pos + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(0); err != nil {
			return err
		}
	}
	return nil
}

// VerifyApplication checks one recorded rule application: the matched
// window and its replacement must be semantically equal. Local-class
// rules are checked on power-of-two sizes only.
func VerifyApplication(app Application, cfg VerifyConfig) error {
	if r, ok := ByName(app.Rule); ok && r.Class == "Local" {
		cfg.Pow2Only = true
		cfg.Sizes = nil
	}
	if err := VerifyEquivalence(term.Seq(app.Before), term.Seq(app.After), cfg); err != nil {
		return fmt.Errorf("rule %s: %w", app.Rule, err)
	}
	return nil
}

// VerifyOptimization optimizes the term with the engine and verifies both
// every individual application and the end-to-end equality of the
// original and optimized program. It returns the optimized term and the
// applications on success.
func VerifyOptimization(e *Engine, t term.Term, cfg VerifyConfig) (term.Term, []Application, error) {
	opt, apps := e.Optimize(t)
	for _, app := range apps {
		if err := VerifyApplication(app, cfg); err != nil {
			return nil, nil, err
		}
		if r, ok := ByName(app.Rule); ok && r.Class == "Local" {
			cfg.Pow2Only = true
			cfg.Sizes = nil
		}
	}
	if err := VerifyEquivalence(t, opt, cfg); err != nil {
		return nil, nil, err
	}
	return opt, apps, nil
}
