// Package rules implements the optimization rules of §3 of the paper:
// semantic equalities that fuse a composition of two or three collective
// operations into a single collective operation (classes Reduction, Scan
// and Comcast) or into a purely local computation (class Local), trading
// communication start-ups for extra computation via auxiliary variables.
//
// Each rule is a syntactic pattern over a window of program stages plus an
// algebraic condition checked against a property registry (distributivity
// for the *2 rules, commutativity for the single-operator rules). The
// Engine applies rules over a term, either exhaustively or guided by the
// cost calculus of package cost; the Verify functions check every rule's
// claimed semantic equality by evaluating both sides of a rewrite under
// the functional semantics.
package rules

import (
	"repro/internal/algebra"
	"repro/internal/term"
)

// Env is the context a rule match consults: the algebraic-property
// registry, and optionally the machine size (the Local rules compute
// f^(log p) by repeated squaring and therefore require a power-of-two
// machine; with P unknown, they fire and the requirement is the caller's
// to uphold).
type Env struct {
	// Reg declares the algebraic properties of the base operators.
	Reg *algebra.Registry
	// P, when non-zero, is the machine size the rewritten program will
	// run on.
	P int
}

// DefaultEnv uses the default registry and an unknown machine size.
func DefaultEnv() Env { return Env{Reg: algebra.Default()} }

func (e Env) pow2OK() bool {
	return e.P == 0 || e.P&(e.P-1) == 0
}

// Rule is one optimization rule: a named pattern over a fixed-size window
// of stages together with its rewrite.
type Rule struct {
	// Name is the paper's rule name, e.g. "SR2-Reduction".
	Name string
	// Class is Reduction, Scan, Comcast or Local (§3.1).
	Class string
	// Window is the number of stages the left-hand side spans.
	Window int
	// Pattern, Cond and Result document the rule schematically in the
	// paper's box format: the left-hand side, the side condition, and
	// the right-hand side.
	Pattern, Cond, Result string
	// CostNeutral marks rules whose two sides have equal estimated cost
	// (the mobility/fusion extensions); the cost-guided engine applies
	// them when the estimate does not get worse, instead of requiring a
	// strict improvement.
	CostNeutral bool
	// Try matches the window and, if the pattern and conditions hold,
	// returns the replacement stages.
	Try func(w []term.Term, env Env) ([]term.Term, bool)
}

// assoc reports whether the registry declares op associative — the
// standing requirement on every collective's base operator.
func assoc(env Env, op *algebra.Op) bool { return env.Reg.Associative(op) }

// distributes checks the *2-rule condition: ⊗ distributes over ⊕, with
// both associative.
func distributes(env Env, otimes, oplus *algebra.Op) bool {
	return assoc(env, otimes) && assoc(env, oplus) && env.Reg.Distributes(otimes, oplus)
}

// commutative checks the single-operator condition: ⊕ associative and
// commutative.
func commutative(env Env, op *algebra.Op) bool {
	return assoc(env, op) && env.Reg.Commutative(op)
}

// matchScan extracts a scan stage.
func matchScan(t term.Term) (*algebra.Op, bool) {
	s, ok := t.(term.Scan)
	if !ok {
		return nil, false
	}
	return s.Op, true
}

// matchReduce extracts a reduce/allreduce stage (not a balanced one).
func matchReduce(t term.Term) (op *algebra.Op, all, ok bool) {
	r, k := t.(term.Reduce)
	if !k || r.Balanced {
		return nil, false, false
	}
	return r.Op, r.All, true
}

func isBcast(t term.Term) bool {
	_, ok := t.(term.Bcast)
	return ok
}

// SR2Reduction is rule SR2-Reduction (and its allreduce variant):
//
//	scan(⊗) ; [all]reduce(⊕)  →  map pair ; [all]reduce(op_sr2) ; map π₁
//	provided ⊗ distributes over ⊕.
var SR2Reduction = Rule{
	Name:    "SR2-Reduction",
	Class:   "Reduction",
	Window:  2,
	Pattern: "scan(⊗) ; [all]reduce(⊕)",
	Cond:    "⊗ distributes over ⊕",
	Result:  "map pair ; [all]reduce(op_sr2) ; map π₁",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		otimes, ok := matchScan(w[0])
		if !ok {
			return nil, false
		}
		oplus, all, ok := matchReduce(w[1])
		if !ok || !distributes(env, otimes, oplus) {
			return nil, false
		}
		return []term.Term{
			term.Map{F: term.PairFn},
			term.Reduce{Op: algebra.OpSR2(otimes, oplus), All: all},
			term.Map{F: term.FirstFn},
		}, true
	},
}

// SRReduction is rule SR-Reduction:
//
//	scan(⊕) ; [all]reduce(⊕)  →  map pair ; [all]reduce_balanced(op_sr) ; map π₁
//	provided ⊕ is commutative.
//
// op_sr is not associative, so the right-hand side uses the balanced
// reduction of §3.2.
var SRReduction = Rule{
	Name:    "SR-Reduction",
	Class:   "Reduction",
	Window:  2,
	Pattern: "scan(⊕) ; [all]reduce(⊕)",
	Cond:    "⊕ is commutative",
	Result:  "map pair ; [all]reduce_balanced(op_sr) ; map π₁",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		op1, ok := matchScan(w[0])
		if !ok {
			return nil, false
		}
		op2, all, ok := matchReduce(w[1])
		if !ok || op1 != op2 || !commutative(env, op1) {
			return nil, false
		}
		return []term.Term{
			term.Map{F: term.PairFn},
			term.Reduce{Op: algebra.OpSR(op1), All: all, Balanced: true},
			term.Map{F: term.FirstFn},
		}, true
	},
}

// SS2Scan is rule SS2-Scan:
//
//	scan(⊗) ; scan(⊕)  →  map pair ; scan(op_sr2) ; map π₁
//	provided ⊗ distributes over ⊕.
var SS2Scan = Rule{
	Name:    "SS2-Scan",
	Class:   "Scan",
	Window:  2,
	Pattern: "scan(⊗) ; scan(⊕)",
	Cond:    "⊗ distributes over ⊕",
	Result:  "map pair ; scan(op_sr2) ; map π₁",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		otimes, ok := matchScan(w[0])
		if !ok {
			return nil, false
		}
		oplus, ok := matchScan(w[1])
		if !ok || !distributes(env, otimes, oplus) {
			return nil, false
		}
		return []term.Term{
			term.Map{F: term.PairFn},
			term.Scan{Op: algebra.OpSR2(otimes, oplus)},
			term.Map{F: term.FirstFn},
		}, true
	},
}

// SSScan is rule SS-Scan:
//
//	scan(⊕) ; scan(⊕)  →  map quadruple ; scan_balanced(op_ss) ; map π₁
//	provided ⊕ is commutative.
var SSScan = Rule{
	Name:    "SS-Scan",
	Class:   "Scan",
	Window:  2,
	Pattern: "scan(⊕) ; scan(⊕)",
	Cond:    "⊕ is commutative",
	Result:  "map quadruple ; scan_balanced(op_ss) ; map π₁",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		op1, ok := matchScan(w[0])
		if !ok {
			return nil, false
		}
		op2, ok := matchScan(w[1])
		if !ok || op1 != op2 || !commutative(env, op1) {
			return nil, false
		}
		return []term.Term{
			term.Map{F: term.QuadrupleFn},
			term.ScanBal{Op: algebra.OpSS(op1)},
			term.Map{F: term.FirstFn},
		}, true
	},
}

// BSComcast is rule BS-Comcast:
//
//	bcast ; scan(⊕)  →  bcast ; map# op_comp
//
// realized as the comcast collective with the (e,o) pair of §3.4.
var BSComcast = Rule{
	Name:    "BS-Comcast",
	Class:   "Comcast",
	Window:  2,
	Pattern: "bcast ; scan(⊕)",
	Cond:    "⊕ is associative",
	Result:  "bcast ; map# op_comp",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) {
			return nil, false
		}
		op, ok := matchScan(w[1])
		if !ok || !assoc(env, op) {
			return nil, false
		}
		return []term.Term{
			term.Comcast{Ops: algebra.OpCompBS(op)},
		}, true
	},
}

// BSS2Comcast is rule BSS2-Comcast, the corollary of SS2-Scan and
// BS-Comcast:
//
//	bcast ; scan(⊗) ; scan(⊕)  →  bcast ; map# op_comp
//	provided ⊗ distributes over ⊕.
var BSS2Comcast = Rule{
	Name:    "BSS2-Comcast",
	Class:   "Comcast",
	Window:  3,
	Pattern: "bcast ; scan(⊗) ; scan(⊕)",
	Cond:    "⊗ distributes over ⊕",
	Result:  "bcast ; map# op_comp",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) {
			return nil, false
		}
		otimes, ok := matchScan(w[1])
		if !ok {
			return nil, false
		}
		oplus, ok := matchScan(w[2])
		if !ok || !distributes(env, otimes, oplus) {
			return nil, false
		}
		return []term.Term{
			term.Comcast{Ops: algebra.OpCompBSS2(otimes, oplus)},
		}, true
	},
}

// BSSComcast is rule BSS-Comcast. It cannot be derived from SS-Scan plus
// BS-Comcast (op_ss is not associative), so it is a rule of its own:
//
//	bcast ; scan(⊕) ; scan(⊕)  →  bcast ; map# op_comp
//	provided ⊕ is commutative.
var BSSComcast = Rule{
	Name:    "BSS-Comcast",
	Class:   "Comcast",
	Window:  3,
	Pattern: "bcast ; scan(⊕) ; scan(⊕)",
	Cond:    "⊕ is commutative",
	Result:  "bcast ; map# op_comp",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) {
			return nil, false
		}
		op1, ok := matchScan(w[1])
		if !ok {
			return nil, false
		}
		op2, ok := matchScan(w[2])
		if !ok || op1 != op2 || !commutative(env, op1) {
			return nil, false
		}
		return []term.Term{
			term.Comcast{Ops: algebra.OpCompBSS(op1)},
		}, true
	},
}

// BRLocal is rule BR-Local:
//
//	bcast ; reduce(⊕)  →  iter(op_br)
//
// Repeated squaring computes the p-fold reduction of the broadcast value,
// so the rule requires a power-of-two machine. Note the right-hand side
// no longer broadcasts: positions other than the first become
// undetermined (§3.5).
var BRLocal = Rule{
	Name:    "BR-Local",
	Class:   "Local",
	Window:  2,
	Pattern: "bcast ; reduce(⊕)",
	Cond:    "⊕ is associative; p = 2^k",
	Result:  "iter(op_br)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) || !env.pow2OK() {
			return nil, false
		}
		op, all, ok := matchReduce(w[1])
		if !ok || all || !assoc(env, op) {
			return nil, false
		}
		return []term.Term{term.Iter{Op: algebra.OpBR(op)}}, true
	},
}

// BSR2Local is rule BSR2-Local, the corollary of SR2-Reduction and
// BR-Local:
//
//	bcast ; scan(⊗) ; reduce(⊕)  →  map pair ; iter(op_bsr2) ; map π₁
//	provided ⊗ distributes over ⊕ (power-of-two machine).
//
// The pair/π₁ adjustments are folded into the Iter stage.
var BSR2Local = Rule{
	Name:    "BSR2-Local",
	Class:   "Local",
	Window:  3,
	Pattern: "bcast ; scan(⊗) ; reduce(⊕)",
	Cond:    "⊗ distributes over ⊕; p = 2^k",
	Result:  "map pair ; iter(op_bsr2) ; map π₁",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) || !env.pow2OK() {
			return nil, false
		}
		otimes, ok := matchScan(w[1])
		if !ok {
			return nil, false
		}
		oplus, all, ok := matchReduce(w[2])
		if !ok || all || !distributes(env, otimes, oplus) {
			return nil, false
		}
		return []term.Term{term.Iter{Op: algebra.OpBSR2(otimes, oplus)}}, true
	},
}

// BSRLocal is rule BSR-Local. Like BSS-Comcast it cannot be derived as a
// corollary (the result of SR-Reduction is not associative):
//
//	bcast ; scan(⊕) ; reduce(⊕)  →  map pair ; iter(op_bsr) ; map π₁
//	provided ⊕ is commutative (power-of-two machine).
var BSRLocal = Rule{
	Name:    "BSR-Local",
	Class:   "Local",
	Window:  3,
	Pattern: "bcast ; scan(⊕) ; reduce(⊕)",
	Cond:    "⊕ is commutative; p = 2^k",
	Result:  "map pair ; iter(op_bsr) ; map π₁",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) || !env.pow2OK() {
			return nil, false
		}
		op1, ok := matchScan(w[1])
		if !ok {
			return nil, false
		}
		op2, all, ok := matchReduce(w[2])
		if !ok || all || op1 != op2 || !commutative(env, op1) {
			return nil, false
		}
		return []term.Term{term.Iter{Op: algebra.OpBSR(op1)}}, true
	},
}

// CRAllLocal is rule CR-AllLocal, the allreduce variant of BR-Local: the
// locally computed reduction is re-broadcast, because allreduce's result
// is needed everywhere:
//
//	bcast ; allreduce(⊕)  →  iter(op_br) ; bcast
var CRAllLocal = Rule{
	Name:    "CR-AllLocal",
	Class:   "Local",
	Window:  2,
	Pattern: "bcast ; allreduce(⊕)",
	Cond:    "⊕ is associative; p = 2^k",
	Result:  "iter(op_br) ; bcast",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) || !env.pow2OK() {
			return nil, false
		}
		op, all, ok := matchReduce(w[1])
		if !ok || !all || !assoc(env, op) {
			return nil, false
		}
		return []term.Term{term.Iter{Op: algebra.OpBR(op)}, term.Bcast{}}, true
	},
}

// All returns every rule, ordered for the engine: wider windows first so
// the triple rules (BSS2, BSS, BSR2, BSR) win over their two-stage
// prefixes, then Local before Comcast before Reduction/Scan within equal
// windows (a local result beats any collective).
func All() []Rule {
	return []Rule{
		BSR2Local, BSRLocal, BSS2Comcast, BSSComcast,
		BRLocal, CRAllLocal, BSComcast,
		SR2Reduction, SRReduction, SS2Scan, SSScan,
	}
}

// ByName returns the named rule, searching the paper rules and the
// extensions.
func ByName(name string) (Rule, bool) {
	for _, r := range AllWithExtensions() {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}
