package rules

import (
	"testing"

	"repro/internal/term"
)

// decodeProgram maps fuzz bytes to a stage program, two bytes per stage
// (kind, operator), mirroring the shapes of RandProgram so the fuzzer
// explores the same grammar the randomized harness does — but driven by
// coverage feedback instead of a PRNG. Stage count is capped so a long
// input cannot make a single fuzz execution expensive.
func decodeProgram(data []byte) term.Seq {
	var prog term.Seq
	for i := 0; i+1 < len(data) && len(prog) < 8; i += 2 {
		op := genOps[int(data[i+1])%len(genOps)]
		switch data[i] % 7 {
		case 0:
			prog = append(prog, term.Bcast{})
		case 1:
			prog = append(prog, term.Scan{Op: op})
		case 2:
			prog = append(prog, term.Reduce{Op: op})
		case 3:
			prog = append(prog, term.Reduce{Op: op, All: true})
		case 4:
			prog = append(prog, term.Map{F: IncFn})
		case 5:
			prog = append(prog, term.Map{F: term.PairFn}, term.Map{F: term.FirstFn})
		case 6:
			prog = append(prog, term.Gather{}, term.Scatter{})
		}
	}
	return prog
}

// FuzzRewrite optimizes byte-decoded programs with the full rule set —
// paper rules and extensions — and verifies the result against the
// original under the functional semantics on power-of-two sizes. Any
// rewrite that changes the meaning of any decodable program is a
// finding.
//
// The committed corpus lives in testdata/fuzz/FuzzRewrite; CI runs a
// short -fuzz smoke on top of the fixed seeds.
func FuzzRewrite(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 3, 1})       // bcast ; scan(+) ; allreduce(*)
	f.Add([]byte{1, 0, 2, 0})             // scan(+) ; reduce(+) — SR-Reduction
	f.Add([]byte{0, 0, 1, 4, 2, 4})       // bcast ; scan(left) ; reduce(left)
	f.Add([]byte{6, 0, 6, 0})             // two gather;scatter round trips
	f.Add([]byte{5, 0, 4, 0, 0, 0})       // pair;pi_1 ; inc ; bcast
	f.Add([]byte{1, 1, 1, 0, 2, 2, 3, 3}) // scan(*);scan(+);reduce(max);allreduce(min)
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := decodeProgram(data)
		if len(prog) == 0 {
			t.Skip("no stages decoded")
		}
		eng := NewEngine()
		eng.Rules = AllWithExtensions()
		eng.Env.P = 4
		opt, apps := eng.Optimize(prog)
		cfg := VerifyConfig{
			Seed: 11, Trials: 4, Sizes: []int{1, 2, 4}, RelTol: 1e-9,
		}
		if err := VerifyEquivalence(prog, opt, cfg); err != nil {
			t.Fatalf("optimization changed the meaning of %s (-> %s, %d applications): %v",
				prog, opt, len(apps), err)
		}
		// The engine must have reached a fixpoint.
		if _, _, ok := eng.Step(opt); ok {
			t.Fatalf("engine left an applicable rule in %s", opt)
		}
	})
}
