package rules

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/term"
)

// Application records one rule application performed by the Engine.
type Application struct {
	// Rule is the name of the applied rule.
	Rule string
	// Pos is the stage index at which the left-hand side matched.
	Pos int
	// Before and After are the matched window and its replacement.
	Before, After []term.Term
	// CostBefore and CostAfter are the cost estimates of the window,
	// populated when the engine is cost-guided.
	CostBefore, CostAfter float64
}

func (a Application) String() string {
	return fmt.Sprintf("%s @%d: %s  =>  %s", a.Rule, a.Pos, term.Seq(a.Before), term.Seq(a.After))
}

// Engine applies optimization rules over a term.
type Engine struct {
	// Env supplies the property registry and machine size.
	Env Env
	// Rules is the rule set in priority order; nil means All().
	Rules []Rule
	// Params, when non-nil, makes the engine cost-guided: a rule is
	// applied only if the cost estimate of the replacement is strictly
	// lower than that of the matched window — the design discipline of
	// §4, mechanized.
	Params *cost.Params
	// Auto switches the cost-guided scoring from the butterfly model
	// (cost.OfTerm) to the algorithm-portfolio model (cost.OfTermAuto):
	// eligible reduction stages are priced at their best-known algorithm,
	// so a rewrite is judged against what the selection layer will
	// actually run. Requires Params.
	Auto bool
}

// score prices a term under the engine's model: the portfolio-aware
// estimate when Auto is set, the butterfly estimate otherwise.
func (e *Engine) score(t term.Term, p cost.Params) float64 {
	if e.Auto {
		return cost.OfTermAuto(t, p)
	}
	return cost.OfTerm(t, p)
}

// NewEngine returns an exhaustive engine over all rules with the default
// environment.
func NewEngine() *Engine {
	return &Engine{Env: DefaultEnv()}
}

// NewCostGuidedEngine returns an engine that only applies rules improving
// the cost estimate at the given machine parameters.
func NewCostGuidedEngine(p cost.Params) *Engine {
	e := NewEngine()
	e.Params = &p
	e.Env.P = p.P
	return e
}

func (e *Engine) rules() []Rule {
	if e.Rules != nil {
		return e.Rules
	}
	// The sparse message-combining rules ride along by default: their
	// patterns only match sparse stages (halo, reduce_scatterv,
	// allgatherv), so they are inert on dense programs and cannot change
	// any existing optimization.
	return append(All(), Sparse()...)
}

// Step performs the first applicable rule application, scanning stages
// left to right and trying rules in priority order at each position. It
// returns the rewritten term and the application, or ok = false if no
// rule applies.
func (e *Engine) Step(t term.Term) (term.Term, Application, bool) {
	stages := term.Stages(t)
	for i := range stages {
		for _, r := range e.rules() {
			if i+r.Window > len(stages) {
				continue
			}
			window := stages[i : i+r.Window]
			repl, ok := r.Try(window, e.Env)
			if !ok {
				continue
			}
			app := Application{
				Rule:   r.Name,
				Pos:    i,
				Before: append([]term.Term(nil), window...),
				After:  repl,
			}
			if e.Params != nil {
				app.CostBefore = e.score(term.Seq(window), *e.Params)
				app.CostAfter = e.score(term.Seq(repl), *e.Params)
				if app.CostAfter >= app.CostBefore && !(r.CostNeutral && app.CostAfter == app.CostBefore) {
					continue
				}
			}
			out := make([]term.Term, 0, len(stages)-r.Window+len(repl))
			out = append(out, stages[:i]...)
			out = append(out, repl...)
			out = append(out, stages[i+r.Window:]...)
			return term.Seq(out), app, true
		}
	}
	return t, Application{}, false
}

// Optimize applies Step until no rule applies, returning the final term
// and the applications performed in order. Termination is guaranteed:
// every rule strictly decreases the number of collective operations.
func (e *Engine) Optimize(t term.Term) (term.Term, []Application) {
	var apps []Application
	for {
		next, app, ok := e.Step(t)
		if !ok {
			return t, apps
		}
		t = next
		apps = append(apps, app)
	}
}

// Applicable lists, without rewriting, every (position, rule) pair whose
// pattern and conditions match in the term — the menu the programmer
// chooses from in the paper's methodical design process.
func (e *Engine) Applicable(t term.Term) []Application {
	stages := term.Stages(t)
	var out []Application
	for i := range stages {
		for _, r := range e.rules() {
			if i+r.Window > len(stages) {
				continue
			}
			window := stages[i : i+r.Window]
			repl, ok := r.Try(window, e.Env)
			if !ok {
				continue
			}
			app := Application{
				Rule:   r.Name,
				Pos:    i,
				Before: append([]term.Term(nil), window...),
				After:  repl,
			}
			if e.Params != nil {
				app.CostBefore = e.score(term.Seq(window), *e.Params)
				app.CostAfter = e.score(term.Seq(repl), *e.Params)
			}
			out = append(out, app)
		}
	}
	return out
}
