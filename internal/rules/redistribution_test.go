package rules

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func TestGSIdEliminatesRoundTrip(t *testing.T) {
	repl := applyRule(t, GSId, env(), term.Gather{}, term.Scatter{})
	if len(repl) != 0 {
		t.Fatalf("GS-Id should remove both stages, got %v", term.Seq(repl))
	}
	// Semantic check with the default scalar inputs (gather then scatter
	// accepts any per-processor values).
	if err := VerifyEquivalence(
		term.Seq{term.Gather{}, term.Scatter{}}, term.Seq{}, VerifyConfig{Seed: 31},
	); err != nil {
		t.Fatal(err)
	}
}

func TestSGIdEliminatesRoundTrip(t *testing.T) {
	repl := applyRule(t, SGId, env(), term.Scatter{}, term.Gather{})
	if len(repl) != 0 {
		t.Fatalf("SG-Id should remove both stages, got %v", term.Seq(repl))
	}
	// scatter needs a list on the first processor: custom generator.
	cfg := VerifyConfig{Seed: 32, Gen: func(rng *rand.Rand, n int) []algebra.Value {
		in := make([]algebra.Value, n)
		list := make(algebra.Tuple, n)
		for i := range list {
			list[i] = algebra.Scalar(float64(rng.Intn(9)))
		}
		in[0] = list
		for i := 1; i < n; i++ {
			in[i] = algebra.Undef{}
		}
		return in
	}}
	if err := VerifyEquivalence(
		term.Seq{term.Scatter{}, term.Gather{}}, term.Seq{}, cfg,
	); err != nil {
		t.Fatal(err)
	}
}

func TestRedistributionRulesRefuseWrongOrder(t *testing.T) {
	refuseRule(t, GSId, env(), term.Scatter{}, term.Gather{})
	refuseRule(t, SGId, env(), term.Gather{}, term.Scatter{})
	refuseRule(t, GSId, env(), term.Gather{}, term.Bcast{})
}

func TestEngineRemovesRedistributionRoundTrip(t *testing.T) {
	// A pipeline that gathers, scatters, and then scans: the round trip
	// disappears and the scan remains.
	prog := term.Seq{term.Gather{}, term.Scatter{}, term.Scan{Op: algebra.Add}}
	e := NewEngine()
	e.Rules = AllWithExtensions()
	out, apps := e.Optimize(prog)
	if len(apps) != 1 || apps[0].Rule != "GS-Id" {
		t.Fatalf("applications = %v", apps)
	}
	stages := term.Stages(out)
	if len(stages) != 1 {
		t.Fatalf("result = %s", out)
	}
	if _, ok := stages[0].(term.Scan); !ok {
		t.Fatalf("result = %s", out)
	}
}

func TestGatherScatterSemantics(t *testing.T) {
	in := []algebra.Value{algebra.Scalar(7), algebra.Scalar(8), algebra.Scalar(9)}
	g := term.Eval(term.Gather{}, in)
	list, ok := g[0].(algebra.Tuple)
	if !ok || len(list) != 3 || !algebra.Equal(list[2], algebra.Scalar(9)) {
		t.Fatalf("gather = %v", g)
	}
	for i := 1; i < 3; i++ {
		if !algebra.IsUndef(g[i]) {
			t.Fatalf("gather non-root = %v", g[i])
		}
	}
	s := term.Eval(term.Scatter{}, g)
	if !algebra.EqualLists(s, in) {
		t.Fatalf("scatter(gather) = %v", s)
	}
}

func TestScatterSemanticValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	term.Eval(term.Scatter{}, []algebra.Value{algebra.Scalar(1), algebra.Scalar(2)})
}
