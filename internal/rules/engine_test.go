package rules

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/term"
)

// examplish builds the paper's Example program (§2.1): map f ; scan(op1) ;
// reduce(op2) ; map g ; bcast, with op1 = *, op2 = + so that SR2 applies.
func examplish() term.Seq {
	f := &term.Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}
	g := &term.Fn{Name: "g", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(2))
	}}
	return term.Compose(
		term.Map{F: f},
		term.Scan{Op: algebra.Mul},
		term.Reduce{Op: algebra.Add},
		term.Map{F: g},
		term.Bcast{},
	)
}

func TestEngineStepOnExample(t *testing.T) {
	// Figure 3: SR2-Reduction fuses the scan and the reduction of
	// Example.
	e := NewEngine()
	out, app, ok := e.Step(examplish())
	if !ok {
		t.Fatal("no rule applied to Example")
	}
	if app.Rule != "SR2-Reduction" || app.Pos != 1 {
		t.Fatalf("applied %s at %d, want SR2-Reduction at 1", app.Rule, app.Pos)
	}
	want := "map f ; map pair ; reduce(op_sr2(*,+)) ; map pi_1 ; map g ; bcast"
	if got := out.String(); got != want {
		t.Fatalf("rewritten = %q, want %q", got, want)
	}
}

func TestEngineOptimizeTerminates(t *testing.T) {
	e := NewEngine()
	prog := term.Seq{
		term.Bcast{},
		term.Scan{Op: algebra.Add},
		term.Scan{Op: algebra.Add},
		term.Bcast{},
		term.Reduce{Op: algebra.Add},
	}
	out, apps := e.Optimize(prog)
	if len(apps) == 0 {
		t.Fatal("no applications")
	}
	// Nothing more applies.
	if _, _, ok := e.Step(out); ok {
		t.Fatalf("Optimize left an applicable rule in %s", out)
	}
	// Both fusions happened: BSS-Comcast and BR-Local.
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Rule] = true
	}
	if !names["BSS-Comcast"] || !names["BR-Local"] {
		t.Fatalf("applications = %v", apps)
	}
}

func TestEngineOptimizePreservesSemantics(t *testing.T) {
	e := NewEngine()
	prog := examplish()
	opt, apps, err := VerifyOptimization(e, prog, VerifyConfig{Seed: 3, BlockWords: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("expected 1 application, got %v", apps)
	}
	if opt == nil {
		t.Fatal("nil optimized term")
	}
}

func TestEngineCrossProgramComposition(t *testing.T) {
	// §2.1: composing Example (ending in bcast) with Next_Example
	// (starting with scan) exposes bcast ; scan — fused by BS-Comcast.
	exampleTail := term.Seq{term.Bcast{}}
	nextHead := term.Seq{term.Scan{Op: algebra.Add}}
	combined := term.Compose(exampleTail, nextHead)
	e := NewEngine()
	out, apps := e.Optimize(combined)
	if len(apps) != 1 || apps[0].Rule != "BS-Comcast" {
		t.Fatalf("applications = %v", apps)
	}
	if _, ok := term.Stages(out)[0].(term.Comcast); !ok {
		t.Fatalf("result = %s", out)
	}
}

func TestEngineNoRuleOnLocalOnlyProgram(t *testing.T) {
	e := NewEngine()
	prog := term.Seq{term.Map{F: term.PairFn}, term.Map{F: term.FirstFn}}
	out, apps := e.Optimize(prog)
	if len(apps) != 0 || !term.EqualTerms(out, prog) {
		t.Fatalf("engine rewrote a local-only program: %v %v", out, apps)
	}
}

func TestEngineMapBlocksFusion(t *testing.T) {
	// A local stage between two collectives blocks the window match —
	// the engine performs no data-dependence analysis.
	e := NewEngine()
	prog := term.Seq{
		term.Scan{Op: algebra.Mul},
		term.Map{F: term.PairFn},
		term.Reduce{Op: algebra.Add},
	}
	_, apps := e.Optimize(prog)
	if len(apps) != 0 {
		t.Fatalf("engine fused across a local stage: %v", apps)
	}
}

func TestCostGuidedAppliesAlwaysProfitableRule(t *testing.T) {
	// BS-Comcast improves for any parameters (Table 1: always).
	p := cost.Params{Ts: 1, Tw: 1, M: 100000, P: 64}
	e := NewCostGuidedEngine(p)
	prog := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}}
	_, apps := e.Optimize(prog)
	if len(apps) != 1 || apps[0].Rule != "BS-Comcast" {
		t.Fatalf("applications = %v", apps)
	}
	if apps[0].CostAfter >= apps[0].CostBefore {
		t.Fatalf("costs not improving: %v", apps[0])
	}
}

func TestCostGuidedRefusesWhenUnprofitable(t *testing.T) {
	// SS2-Scan pays off only when ts > 2m (§4.2). With a large block and
	// small start-up the cost-guided engine must refuse it.
	prog := term.Seq{term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}}

	cheapStartup := cost.Params{Ts: 10, Tw: 1, M: 1000, P: 64}
	e := NewCostGuidedEngine(cheapStartup)
	_, apps := e.Optimize(prog)
	if len(apps) != 0 {
		t.Fatalf("engine applied an unprofitable rule: %v", apps)
	}

	expensiveStartup := cost.Params{Ts: 10000, Tw: 1, M: 100, P: 64}
	e = NewCostGuidedEngine(expensiveStartup)
	_, apps = e.Optimize(prog)
	if len(apps) != 1 || apps[0].Rule != "SS2-Scan" {
		t.Fatalf("engine missed a profitable rule: %v", apps)
	}
}

func TestCostGuidedMatchesTable1Predicate(t *testing.T) {
	// For every rule with a Table 1 entry, the engine's accept/refuse
	// decision from the general term estimator must agree with the
	// closed-form improvement condition, across a parameter sweep.
	patterns := map[string]term.Seq{
		"SR2-Reduction": {term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}},
		"SR-Reduction":  {term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}},
		"SS2-Scan":      {term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}},
		"SS-Scan":       {term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}},
		"BS-Comcast":    {term.Bcast{}, term.Scan{Op: algebra.Add}},
		"BSS2-Comcast":  {term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}},
		"BSS-Comcast":   {term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}},
		"BR-Local":      {term.Bcast{}, term.Reduce{Op: algebra.Add}},
		"BSR2-Local":    {term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}},
		"BSR-Local":     {term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}},
		"CR-AllLocal":   {term.Bcast{}, term.Reduce{Op: algebra.Add, All: true}},
	}
	sweep := []cost.Params{}
	for _, ts := range []float64{1, 10, 100, 1000, 10000} {
		for _, tw := range []float64{1, 4} {
			for _, m := range []int{1, 16, 256, 4096} {
				sweep = append(sweep, cost.Params{Ts: ts, Tw: tw, M: m, P: 64})
			}
		}
	}
	for name, prog := range patterns {
		entry, ok := cost.Lookup(name)
		if !ok {
			t.Fatalf("no Table 1 entry for %s", name)
		}
		r, ok := ByName(name)
		if !ok {
			t.Fatalf("no rule named %s", name)
		}
		for _, p := range sweep {
			e := NewCostGuidedEngine(p)
			e.Rules = []Rule{r} // isolate the rule under test
			_, apps := e.Optimize(prog)
			applied := len(apps) == 1
			want := entry.Improves(p)
			if applied != want {
				t.Errorf("%s at %+v: engine applied=%v, Table 1 improves=%v",
					name, p, applied, want)
			}
		}
	}
}

func TestApplicableListsWithoutRewriting(t *testing.T) {
	e := NewEngine()
	prog := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}}
	apps := e.Applicable(prog)
	// BSS-Comcast at 0, BS-Comcast at 0, SS-Scan at 1.
	names := map[string]int{}
	for _, a := range apps {
		names[a.Rule]++
	}
	if names["BSS-Comcast"] != 1 || names["BS-Comcast"] != 1 || names["SS-Scan"] != 1 {
		t.Fatalf("applicable = %v", apps)
	}
}

func TestVerifyApplicationCatchesBogusRewrite(t *testing.T) {
	bogus := Application{
		Rule:   "SS2-Scan",
		Before: []term.Term{term.Scan{Op: algebra.Add}},
		After:  []term.Term{term.Scan{Op: algebra.Mul}},
	}
	if err := VerifyApplication(bogus, VerifyConfig{Seed: 1}); err == nil {
		t.Fatal("verifier accepted a bogus rewrite")
	}
}

func TestVerifyEquivalenceOnVectors(t *testing.T) {
	lhs := term.Seq{term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}}
	e := NewEngine()
	rhs, _, ok := e.Step(lhs)
	if !ok {
		t.Fatal("SS2-Scan did not apply")
	}
	if err := VerifyEquivalence(lhs, rhs, VerifyConfig{Seed: 5, BlockWords: 8}); err != nil {
		t.Fatal(err)
	}
}
