package rules

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/term"
)

// This file contains extension rules beyond the paper's Table 1 set.
// §2.1 observes that compositions of collective operations "can also
// arise as a result of program transformations if, e.g., some local and
// collective stages are interchanged, exploiting their data
// independence" — the mobility and fusion rules below mechanize exactly
// that, together with two classic collective fusions (reduce;bcast →
// allreduce and the idempotence of broadcast) that the paper's framework
// proves with the same techniques.
//
// Extension rules are not part of All(); use AllWithExtensions() or set
// Engine.Rules explicitly.

// BMMobility moves a local stage leftward across a broadcast:
//
//	bcast ; map f  →  map f ; bcast
//
// Both sides equal [f x₁, f x₁, …]: on the left f is applied to the
// broadcast copy everywhere, on the right the broadcast ships the already
// transformed first block. The estimated cost is unchanged (map runs in
// parallel either way) but the move exposes fusion windows: in
// bcast ; map f ; scan(⊕) it uncovers bcast ; scan(⊕) for BS-Comcast.
var BMMobility = Rule{
	Name:        "BM-Mobility",
	Class:       "Mobility",
	Window:      2,
	Pattern:     "bcast ; map f",
	Cond:        "—",
	Result:      "map f ; bcast",
	CostNeutral: true,
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) {
			return nil, false
		}
		m, ok := w[1].(term.Map)
		if !ok {
			return nil, false
		}
		return []term.Term{m, term.Bcast{}}, true
	},
}

// MMLocal fuses two adjacent local stages into one — the PolyEval_2 →
// PolyEval_3 step of §5.1 as a rule:
//
//	map f ; map g  →  map (f; g)
var MMLocal = Rule{
	Name:        "MM-Local",
	Class:       "Local",
	Window:      2,
	Pattern:     "map f ; map g",
	Cond:        "—",
	Result:      "map (f; g)",
	CostNeutral: true,
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		f, ok := w[0].(term.Map)
		if !ok {
			return nil, false
		}
		g, ok := w[1].(term.Map)
		if !ok {
			return nil, false
		}
		ff, gg := f.F, g.F
		fused := &term.Fn{
			Name: fmt.Sprintf("(%s; %s)", ff.Name, gg.Name),
			Cost: ff.Cost + gg.Cost,
			F: func(v algebra.Value) algebra.Value {
				return gg.F(ff.F(v))
			},
		}
		return []term.Term{term.Map{F: fused}}, true
	},
}

// RBAllReduce fuses a root reduction followed by a broadcast of the
// result into a single all-reduction — the textbook
// MPI_Reduce + MPI_Bcast → MPI_Allreduce fusion, provable in the
// framework from equations (5), (6) and (8):
//
//	reduce(⊕) ; bcast  →  allreduce(⊕)
//
// One butterfly instead of two tree traversals: always an improvement.
var RBAllReduce = Rule{
	Name:    "RB-AllReduce",
	Class:   "Reduction",
	Window:  2,
	Pattern: "reduce(⊕) ; bcast",
	Cond:    "⊕ is associative",
	Result:  "allreduce(⊕)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		op, all, ok := matchReduce(w[0])
		if !ok || all || !assoc(env, op) {
			return nil, false
		}
		if !isBcast(w[1]) {
			return nil, false
		}
		return []term.Term{term.Reduce{Op: op, All: true}}, true
	},
}

// BBBcast collapses consecutive broadcasts — the second re-broadcasts the
// value the first already delivered everywhere:
//
//	bcast ; bcast  →  bcast
var BBBcast = Rule{
	Name:    "BB-Bcast",
	Class:   "Comcast",
	Window:  2,
	Pattern: "bcast ; bcast",
	Cond:    "—",
	Result:  "bcast",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if !isBcast(w[0]) || !isBcast(w[1]) {
			return nil, false
		}
		return []term.Term{term.Bcast{}}, true
	},
}

// ABAllReduce drops a broadcast after an all-reduction: every processor
// already holds the result:
//
//	allreduce(⊕) ; bcast  →  allreduce(⊕)
var ABAllReduce = Rule{
	Name:    "AB-AllReduce",
	Class:   "Reduction",
	Window:  2,
	Pattern: "allreduce(⊕) ; bcast",
	Cond:    "—",
	Result:  "allreduce(⊕)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		op, all, ok := matchReduce(w[0])
		if !ok || !all {
			return nil, false
		}
		if !isBcast(w[1]) {
			return nil, false
		}
		return []term.Term{term.Reduce{Op: op, All: true}}, true
	},
}

// GSId eliminates a gather immediately undone by a scatter — the
// redistribution round trip costs two tree traversals of the whole data
// and computes nothing:
//
//	gather ; scatter  →  (removed)
var GSId = Rule{
	Name:    "GS-Id",
	Class:   "Local",
	Window:  2,
	Pattern: "gather ; scatter",
	Cond:    "—",
	Result:  "(identity)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if _, ok := w[0].(term.Gather); !ok {
			return nil, false
		}
		if _, ok := w[1].(term.Scatter); !ok {
			return nil, false
		}
		return []term.Term{}, true
	},
}

// SGId eliminates a scatter immediately undone by a gather. The root's
// list is reassembled bitwise identically, so the pair is the identity on
// the first processor — and the other processors' values are don't-cares
// before and after (they hold scatter chunks that the gather re-collects).
//
//	scatter ; gather  →  (removed)
var SGId = Rule{
	Name:    "SG-Id",
	Class:   "Local",
	Window:  2,
	Pattern: "scatter ; gather",
	Cond:    "—",
	Result:  "(identity)",
	Try: func(w []term.Term, env Env) ([]term.Term, bool) {
		if _, ok := w[0].(term.Scatter); !ok {
			return nil, false
		}
		if _, ok := w[1].(term.Gather); !ok {
			return nil, false
		}
		return []term.Term{}, true
	},
}

// Extensions returns the extension rules, ordered so that genuine
// fusions precede the cost-neutral moves.
func Extensions() []Rule {
	return []Rule{RBAllReduce, ABAllReduce, BBBcast, GSId, SGId, BMMobility, MMLocal}
}

// AllWithExtensions returns the paper's rules followed by the extensions
// and the sparse message-combining rules. The paper rules keep priority;
// mobility and local fusion fire only when nothing else does, which is
// what makes them window-openers rather than noise.
func AllWithExtensions() []Rule {
	out := append(All(), Extensions()...)
	return append(out, Sparse()...)
}
