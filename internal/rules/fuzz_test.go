package rules

import (
	"math/rand"
	"testing"

	"repro/internal/term"
)

// randProgram is the shared generator of gen.go — random stage soups over
// operators with known properties, so every rule has a chance to fire.
func randProgram(rng *rand.Rand, maxStages int) term.Seq {
	return RandProgram(rng, maxStages)
}

// TestFuzzOptimizePreservesSemantics optimizes hundreds of random
// programs — with the paper rules alone and with the extensions — and
// verifies every result against the original under the functional
// semantics on power-of-two machine sizes (the Local rules' domain).
func TestFuzzOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2029))
	// Deep random chains of * push values far beyond the exact-integer
	// float range, where the balanced collectives' reassociation flips
	// low-order bits; compare with a relative tolerance.
	cfg := VerifyConfig{Seed: 3, Trials: 6, Pow2Only: true, RelTol: 1e-9}
	for trial := 0; trial < 300; trial++ {
		prog := randProgram(rng, 7)

		paper := NewEngine()
		outP, _ := paper.Optimize(prog)
		if err := VerifyEquivalence(prog, outP, cfg); err != nil {
			t.Fatalf("paper rules broke trial %d:\n  program: %s\n  %v", trial, prog, err)
		}

		ext := NewEngine()
		ext.Rules = AllWithExtensions()
		outE, _ := ext.Optimize(prog)
		if err := VerifyEquivalence(prog, outE, cfg); err != nil {
			t.Fatalf("extensions broke trial %d:\n  program: %s\n  %v", trial, prog, err)
		}
		// The engines reached fixpoints.
		if _, _, ok := paper.Step(outP); ok {
			t.Fatalf("trial %d: paper engine left an applicable rule in %s", trial, outP)
		}
		if _, _, ok := ext.Step(outE); ok {
			t.Fatalf("trial %d: extension engine left an applicable rule in %s", trial, outE)
		}
	}
}

// TestFuzzOptimizeNeverIncreasesCollectives checks the termination
// measure's first component: no rewrite sequence increases the number of
// collective stages.
func TestFuzzOptimizeNeverIncreasesCollectives(t *testing.T) {
	count := func(tm term.Term) int {
		n := 0
		for _, s := range term.Stages(tm) {
			switch s.(type) {
			case term.Map, term.MapIdx:
			default:
				n++
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		prog := randProgram(rng, 8)
		e := NewEngine()
		e.Rules = AllWithExtensions()
		cur := term.Term(prog)
		for {
			next, _, ok := e.Step(cur)
			if !ok {
				break
			}
			if count(next) > count(cur) {
				t.Fatalf("trial %d: collectives increased from %s to %s", trial, cur, next)
			}
			cur = next
		}
	}
}
