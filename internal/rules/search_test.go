package rules

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/term"
)

// searchParams is a start-up-dominated machine where the greedy trap
// below is live: SS2-Scan's window improves (ts > 2m), so the greedy
// engine takes it.
var searchParams = cost.Params{Ts: 1000, Tw: 1, M: 64, P: 64}

// greedyTrap is the committed counterexample where the greedy engine
// forfeits the better plan: in scan(*) ; scan(+) ; reduce(+) the greedy
// Step fuses the two scans first (SS2-Scan at position 0, window cost
// improves when ts > 2m), leaving the reduction unfused behind the
// projection; the optimal derivation instead applies SR-Reduction at
// position 1, fusing scan(+) ; reduce(+) and leaving scan(*) — two
// collectives either way, but the balanced fused reduction costs
// m(2tw+4) per phase against the fused scan's m(2tw+6), so the whole
// program lands at log p·(2ts + m(3tw+6)) instead of the greedy
// log p·(2ts + m(3tw+7)): an m·log p saving. Documented in docs/RULES.md.
func greedyTrap() term.Seq {
	return term.Seq{
		term.Scan{Op: algebra.Mul},
		term.Scan{Op: algebra.Add},
		term.Reduce{Op: algebra.Add},
	}
}

func TestSearchBeatsGreedyOnTrap(t *testing.T) {
	e := NewCostGuidedEngine(searchParams)
	prog := greedyTrap()

	_, greedyApps := e.Optimize(prog)
	if len(greedyApps) != 1 || greedyApps[0].Rule != "SS2-Scan" || greedyApps[0].Pos != 0 {
		t.Fatalf("greedy derivation = %v, want the SS2-Scan@0 trap", greedyApps)
	}

	opt, apps, stats := e.SearchOptimize(prog, SearchConfig{})
	if !stats.Exhausted {
		t.Fatalf("search did not exhaust a 3-stage program: %+v", stats)
	}
	if !stats.Improved() {
		t.Fatalf("search did not beat greedy: %+v", stats)
	}
	if len(apps) != 1 || apps[0].Rule != "SR-Reduction" || apps[0].Pos != 1 {
		t.Fatalf("search derivation = %v, want SR-Reduction@1", apps)
	}
	if got := cost.OfTerm(opt, searchParams); got != stats.BestCost {
		t.Fatalf("BestCost %g does not match the returned term's cost %g", stats.BestCost, got)
	}
	// m·log p cheaper: L(2ts + m(3tw+7)) greedy vs L(2ts + m(3tw+6)).
	wantGain := searchParams.LogP() * float64(searchParams.M)
	if gain := stats.GreedyCost - stats.BestCost; gain != wantGain {
		t.Errorf("gain = %g, want %g", gain, wantGain)
	}
	if err := VerifyEquivalence(prog, opt, VerifyConfig{Seed: 5, BlockWords: 3}); err != nil {
		t.Fatalf("searched plan is not equivalent: %v", err)
	}
}

// TestSearchReturnsGreedyOnTie: where greedy is already optimal the
// search returns the greedy derivation unchanged.
func TestSearchReturnsGreedyOnTie(t *testing.T) {
	e := NewCostGuidedEngine(searchParams)
	prog := term.Seq{term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}}

	greedyT, greedyApps := e.Optimize(prog)
	opt, apps, stats := e.SearchOptimize(prog, SearchConfig{})
	if stats.Improved() {
		t.Fatalf("single-window program cannot improve on greedy: %+v", stats)
	}
	if Canonical(term.Compose(opt)) != Canonical(term.Compose(greedyT)) {
		t.Fatalf("tie should return the greedy term: %s vs %s", opt, greedyT)
	}
	if len(apps) != len(greedyApps) {
		t.Fatalf("tie should return the greedy derivation: %v vs %v", apps, greedyApps)
	}
}

// TestSearchBudgetNeverWorse: even with a starved node budget the search
// result is never worse than greedy (the greedy plan seeds the
// incumbent).
func TestSearchBudgetNeverWorse(t *testing.T) {
	e := NewCostGuidedEngine(searchParams)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		prog := RandProgram(rng, 8)
		opt, _, stats := e.SearchOptimize(prog, SearchConfig{MaxNodes: 3, MaxDepth: 2})
		if stats.BestCost > stats.GreedyCost {
			t.Fatalf("starved search worse than greedy on %s: %+v", Canonical(prog), stats)
		}
		if got := cost.OfTerm(opt, searchParams); got != stats.BestCost {
			t.Fatalf("returned term cost %g != BestCost %g", got, stats.BestCost)
		}
	}
}

// TestSearchNeverWorseProperty is the corpus property: over seeded
// random programs, on power-of-two and non-power-of-two machines, the
// searched plan (i) never costs more than the greedy plan, (ii) is
// bitwise equivalent to the original program, and (iii) agrees with
// greedy whenever greedy is already optimal (exhausted search, equal
// cost). At least one strict improvement must show up across the corpus.
func TestSearchNeverWorseProperty(t *testing.T) {
	const cases = 220
	machines := []cost.Params{
		{Ts: 1000, Tw: 1, M: 64, P: 64}, // pow2, start-up dominated
		{Ts: 300, Tw: 2, M: 48, P: 48},  // non-pow2: Local rules are fenced off
	}
	improved := 0
	for mi, p := range machines {
		e := NewCostGuidedEngine(p)
		rng := rand.New(rand.NewSource(int64(1000 + mi)))
		for i := 0; i < cases; i++ {
			prog := RandProgram(rng, 6)
			canon := Canonical(prog)

			greedyT, _ := e.Optimize(prog)
			gCost := cost.OfTerm(greedyT, p)

			opt, apps, stats := e.SearchOptimize(prog, SearchConfig{})
			if stats.GreedyCost != gCost {
				t.Fatalf("[p=%d %q] GreedyCost %g != engine's %g", p.P, canon, stats.GreedyCost, gCost)
			}
			if stats.BestCost > gCost {
				t.Fatalf("[p=%d %q] search plan %g worse than greedy %g", p.P, canon, stats.BestCost, gCost)
			}
			if got := cost.OfTerm(opt, p); got != stats.BestCost {
				t.Fatalf("[p=%d %q] returned term cost %g != BestCost %g", p.P, canon, got, stats.BestCost)
			}
			if stats.Exhausted && stats.BestCost == gCost &&
				Canonical(term.Compose(opt)) != Canonical(term.Compose(greedyT)) {
				t.Fatalf("[p=%d %q] exhausted tie returned a non-greedy plan: %s vs %s", p.P, canon, opt, greedyT)
			}
			if stats.Improved() {
				improved++
			}

			cfg := VerifyConfig{Seed: int64(i), Trials: 2, Sizes: []int{1, 2, 4, 8}}
			for _, a := range apps {
				if r, ok := ByName(a.Rule); ok && r.Class == "Local" {
					cfg.Pow2Only = true
				}
			}
			if err := VerifyEquivalence(prog, opt, cfg); err != nil {
				t.Fatalf("[p=%d %q] searched plan not equivalent: %v", p.P, canon, err)
			}
		}
	}
	if improved == 0 {
		t.Fatal("no strict improvement anywhere in the corpus — the search is not searching")
	}
}

// TestVerifySearchOptimization: the verified entry point returns the same
// plan and an error-free verification on a program with a known win.
func TestVerifySearchOptimization(t *testing.T) {
	e := NewCostGuidedEngine(searchParams)
	prog := greedyTrap()
	opt, apps, stats, err := VerifySearchOptimization(e, prog, VerifyConfig{Seed: 7, BlockWords: 2}, SearchConfig{})
	if err != nil {
		t.Fatalf("VerifySearchOptimization: %v", err)
	}
	if !stats.Improved() || len(apps) != 1 {
		t.Fatalf("expected the searched win, got stats %+v apps %v", stats, apps)
	}
	if got := cost.OfTerm(opt, searchParams); got != stats.BestCost {
		t.Fatalf("returned term cost %g != BestCost %g", got, stats.BestCost)
	}
}

// TestSearchRequiresCostGuidedEngine pins the contract: a plain engine
// has no objective to search with.
func TestSearchRequiresCostGuidedEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SearchOptimize on a cost-free engine should panic")
		}
	}()
	NewEngine().SearchOptimize(term.Seq{term.Bcast{}}, SearchConfig{})
}
