package rules

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/term"
)

// This file is the search-vs-greedy benchmark behind collopt -searchbench
// and the committed BENCH_search.json artifact: a seeded RandProgram
// corpus (plus the handcrafted greedy-trap counterexample) optimized by
// both strategies, recording plan quality (end-to-end cost estimates and
// the searched gain) against plan-production latency, with every searched
// plan verified under the functional semantics.

// SearchBenchCase is one corpus program's measurement.
type SearchBenchCase struct {
	// Program is the canonical input program.
	Program string `json:"program"`
	// GreedyCost and SearchCost are the end-to-end estimates of the two
	// plans; Gain is their difference (>= 0 always).
	GreedyCost float64 `json:"greedy_cost"`
	SearchCost float64 `json:"search_cost"`
	Gain       float64 `json:"gain"`
	// GreedyMicros and SearchMicros are the plan-production latencies.
	GreedyMicros float64 `json:"greedy_us"`
	SearchMicros float64 `json:"search_us"`
	// Nodes, Pruned and Exhausted summarize the search run.
	Nodes     int  `json:"nodes"`
	Pruned    int  `json:"pruned"`
	Exhausted bool `json:"exhausted"`
	// Verified reports that the searched plan passed VerifyEquivalence.
	Verified bool `json:"verified"`
	// GreedyPlan/SearchPlan and the derivations are recorded only where
	// search improved on greedy — the committed counterexamples.
	GreedyPlan       string   `json:"greedy_plan,omitempty"`
	SearchPlan       string   `json:"search_plan,omitempty"`
	GreedyDerivation []string `json:"greedy_derivation,omitempty"`
	SearchDerivation []string `json:"search_derivation,omitempty"`
}

// SearchBenchReport is the BENCH_search.json document.
type SearchBenchReport struct {
	Seed    int64       `json:"seed"`
	Machine cost.Params `json:"machine"`
	// Cases is the corpus size (including the handcrafted trap).
	Cases int `json:"cases"`
	// Improved counts programs where search beat greedy strictly;
	// NeverWorse asserts SearchCost <= GreedyCost held on every case.
	Improved   int  `json:"improved"`
	NeverWorse bool `json:"never_worse"`
	// AllVerified asserts every searched plan passed VerifyEquivalence.
	AllVerified bool `json:"all_verified"`
	// MaxGain and TotalGain aggregate the plan-quality improvement;
	// MeanGainPct is the mean relative improvement over improved cases.
	MaxGain     float64 `json:"max_gain"`
	TotalGain   float64 `json:"total_gain"`
	MeanGainPct float64 `json:"mean_gain_pct"`
	// MeanGreedyMicros/MeanSearchMicros are the mean plan latencies: the
	// price of the search in plan-production time.
	MeanGreedyMicros float64           `json:"mean_greedy_us"`
	MeanSearchMicros float64           `json:"mean_search_us"`
	Corpus           []SearchBenchCase `json:"corpus"`
}

// SearchBenchTrap is the handcrafted counterexample the benchmark always
// includes: the greedy engine fuses the two scans (SS2-Scan) and forfeits
// the cheaper scan-reduce fusion (SR-Reduction) — see docs/RULES.md.
func SearchBenchTrap() term.Seq {
	return term.Seq{
		term.Scan{Op: algebra.Mul},
		term.Scan{Op: algebra.Add},
		term.Reduce{Op: algebra.Add},
	}
}

// RunSearchBench optimizes the trap plus cases seeded random programs
// with both strategies at machine p and assembles the report. The error
// is non-nil if any searched plan fails verification or costs more than
// the greedy plan — the conditions CI asserts.
func RunSearchBench(seed int64, cases int, p cost.Params, scfg SearchConfig) (SearchBenchReport, error) {
	e := NewCostGuidedEngine(p)
	rng := rand.New(rand.NewSource(seed))

	corpus := []term.Seq{SearchBenchTrap()}
	for i := 0; i < cases; i++ {
		corpus = append(corpus, RandProgram(rng, 6))
	}

	rep := SearchBenchReport{
		Seed:        seed,
		Machine:     p,
		Cases:       len(corpus),
		NeverWorse:  true,
		AllVerified: true,
	}
	var firstErr error
	var sumGreedyUS, sumSearchUS, sumGainPct float64
	for i, prog := range corpus {
		t0 := time.Now()
		greedyT, greedyApps := e.Optimize(prog)
		greedyUS := float64(time.Since(t0).Microseconds())

		t0 = time.Now()
		opt, apps, stats := e.SearchOptimize(prog, scfg)
		searchUS := float64(time.Since(t0).Microseconds())

		c := SearchBenchCase{
			Program:      Canonical(prog),
			GreedyCost:   stats.GreedyCost,
			SearchCost:   stats.BestCost,
			Gain:         stats.GreedyCost - stats.BestCost,
			GreedyMicros: greedyUS,
			SearchMicros: searchUS,
			Nodes:        stats.Nodes,
			Pruned:       stats.Pruned,
			Exhausted:    stats.Exhausted,
		}
		cfg := VerifyConfig{Seed: seed + int64(i), Trials: 2, Sizes: []int{1, 2, 4, 8}, BlockWords: 3, RelTol: 1e-9}
		for _, a := range apps {
			if r, ok := ByName(a.Rule); ok && r.Class == "Local" {
				cfg.Pow2Only = true
				cfg.Sizes = nil
			}
		}
		err := VerifyEquivalence(prog, opt, cfg)
		c.Verified = err == nil
		if err != nil {
			rep.AllVerified = false
			if firstErr == nil {
				firstErr = fmt.Errorf("case %d (%s): verification failed: %w", i, c.Program, err)
			}
		}
		if c.Gain < 0 {
			rep.NeverWorse = false
			if firstErr == nil {
				firstErr = fmt.Errorf("case %d (%s): search plan %g worse than greedy %g", i, c.Program, c.SearchCost, c.GreedyCost)
			}
		}
		if stats.Improved() {
			rep.Improved++
			sumGainPct += 100 * c.Gain / c.GreedyCost
			c.GreedyPlan = Canonical(term.Compose(greedyT))
			c.SearchPlan = Canonical(term.Compose(opt))
			for _, a := range greedyApps {
				c.GreedyDerivation = append(c.GreedyDerivation, a.String())
			}
			for _, a := range apps {
				c.SearchDerivation = append(c.SearchDerivation, a.String())
			}
			if c.Gain > rep.MaxGain {
				rep.MaxGain = c.Gain
			}
		}
		rep.TotalGain += c.Gain
		sumGreedyUS += greedyUS
		sumSearchUS += searchUS
		rep.Corpus = append(rep.Corpus, c)
	}
	n := float64(len(corpus))
	rep.MeanGreedyMicros = sumGreedyUS / n
	rep.MeanSearchMicros = sumSearchUS / n
	if rep.Improved > 0 {
		rep.MeanGainPct = sumGainPct / float64(rep.Improved)
	}
	if rep.Improved == 0 && firstErr == nil {
		firstErr = fmt.Errorf("no strict improvement anywhere in the %d-case corpus", len(corpus))
	}
	return rep, firstErr
}
