package rules

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/term"
)

func someFn(name string) *term.Fn {
	return &term.Fn{Name: name, Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}
}

func TestBMMobility(t *testing.T) {
	f := someFn("f")
	repl := verifyRule(t, BMMobility, env(), term.Bcast{}, term.Map{F: f})
	if len(repl) != 2 {
		t.Fatalf("rewrite = %v", term.Seq(repl))
	}
	if _, ok := repl[0].(term.Map); !ok {
		t.Fatalf("map should move first: %v", term.Seq(repl))
	}
	if _, ok := repl[1].(term.Bcast); !ok {
		t.Fatalf("bcast should move second: %v", term.Seq(repl))
	}
}

func TestBMMobilityOnlyAfterBcast(t *testing.T) {
	refuseRule(t, BMMobility, env(), term.Scan{Op: algebra.Add}, term.Map{F: someFn("f")})
}

func TestMMLocalFusesAndPreservesSemantics(t *testing.T) {
	f := someFn("f")
	g := &term.Fn{Name: "g", Cost: 2, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(3))
	}}
	repl := verifyRule(t, MMLocal, env(), term.Map{F: f}, term.Map{F: g})
	if len(repl) != 1 {
		t.Fatalf("rewrite = %v", term.Seq(repl))
	}
	fused := repl[0].(term.Map)
	if fused.F.Cost != 3 {
		t.Fatalf("fused cost = %d, want 3", fused.F.Cost)
	}
	// (x+1)*3 at x = 4 → 15.
	got := fused.F.F(algebra.Scalar(4))
	if !algebra.Equal(got, algebra.Scalar(15)) {
		t.Fatalf("fused function = %v, want 15", got)
	}
}

func TestRBAllReduce(t *testing.T) {
	repl := verifyRule(t, RBAllReduce, env(), term.Reduce{Op: algebra.Add}, term.Bcast{})
	red, ok := repl[0].(term.Reduce)
	if !ok || !red.All || len(repl) != 1 {
		t.Fatalf("rewrite = %v", term.Seq(repl))
	}
}

func TestRBAllReduceRejectsAllReduceAndBalanced(t *testing.T) {
	refuseRule(t, RBAllReduce, env(), term.Reduce{Op: algebra.Add, All: true}, term.Bcast{})
	sr := algebra.OpSR(algebra.Add)
	refuseRule(t, RBAllReduce, env(), term.Reduce{Op: sr, Balanced: true}, term.Bcast{})
}

func TestBBBcast(t *testing.T) {
	repl := verifyRule(t, BBBcast, env(), term.Bcast{}, term.Bcast{})
	if len(repl) != 1 {
		t.Fatalf("rewrite = %v", term.Seq(repl))
	}
}

func TestABAllReduce(t *testing.T) {
	repl := verifyRule(t, ABAllReduce, env(), term.Reduce{Op: algebra.Max, All: true}, term.Bcast{})
	red, ok := repl[0].(term.Reduce)
	if !ok || !red.All || len(repl) != 1 {
		t.Fatalf("rewrite = %v", term.Seq(repl))
	}
}

// TestMobilityUnblocksComcast is the §2.1 motivation mechanized: a local
// stage parked between bcast and scan blocks every paper rule, and the
// mobility extension moves it out of the way so BS-Comcast can fire.
func TestMobilityUnblocksComcast(t *testing.T) {
	f := someFn("f")
	prog := term.Seq{term.Bcast{}, term.Map{F: f}, term.Scan{Op: algebra.Add}}

	// Paper rules alone: stuck.
	paperOnly := NewEngine()
	_, apps := paperOnly.Optimize(prog)
	if len(apps) != 0 {
		t.Fatalf("paper rules applied unexpectedly: %v", apps)
	}

	// With extensions: mobility, then comcast.
	ext := NewEngine()
	ext.Rules = AllWithExtensions()
	out, apps := ext.Optimize(prog)
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Rule
	}
	if len(apps) != 2 || names[0] != "BM-Mobility" || names[1] != "BS-Comcast" {
		t.Fatalf("applications = %v", names)
	}
	if err := VerifyEquivalence(prog, out, VerifyConfig{Seed: 6, BlockWords: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestReduceBcastChainCollapses checks a chain that needs two extension
// fusions: reduce ; bcast ; bcast → allreduce.
func TestReduceBcastChainCollapses(t *testing.T) {
	prog := term.Seq{term.Reduce{Op: algebra.Add}, term.Bcast{}, term.Bcast{}}
	e := NewEngine()
	e.Rules = AllWithExtensions()
	out, apps := e.Optimize(prog)
	stages := term.Stages(out)
	if len(stages) != 1 {
		t.Fatalf("result = %s after %v", out, apps)
	}
	red, ok := stages[0].(term.Reduce)
	if !ok || !red.All {
		t.Fatalf("result = %s", out)
	}
	if err := VerifyEquivalence(prog, out, VerifyConfig{Seed: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestCostGuidedAppliesCostNeutralMobility: the cost-guided engine must
// accept the zero-gain mobility move because it unlocks a strict gain.
func TestCostGuidedAppliesCostNeutralMobility(t *testing.T) {
	f := someFn("f")
	prog := term.Seq{term.Bcast{}, term.Map{F: f}, term.Scan{Op: algebra.Add}}
	p := cost.Params{Ts: 1000, Tw: 1, M: 8, P: 16}
	e := NewCostGuidedEngine(p)
	e.Rules = AllWithExtensions()
	out, apps := e.Optimize(prog)
	if len(apps) != 2 {
		t.Fatalf("applications = %v", apps)
	}
	if cost.OfTerm(out, p) >= cost.OfTerm(prog, p) {
		t.Fatalf("no net improvement: %s", out)
	}
}

// TestExtensionEngineTerminatesOnAdversarialPrograms drives the extended
// rule set over stage soups designed to trigger repeated mobility.
func TestExtensionEngineTerminatesOnAdversarialPrograms(t *testing.T) {
	f := someFn("f")
	g := someFn("g")
	progs := []term.Seq{
		{term.Bcast{}, term.Bcast{}, term.Map{F: f}, term.Map{F: g}, term.Bcast{}},
		{term.Bcast{}, term.Map{F: f}, term.Bcast{}, term.Map{F: g}, term.Scan{Op: algebra.Add}},
		{term.Reduce{Op: algebra.Add}, term.Bcast{}, term.Scan{Op: algebra.Add}, term.Bcast{}, term.Map{F: f}},
	}
	for _, prog := range progs {
		e := NewEngine()
		e.Rules = AllWithExtensions()
		out, apps := e.Optimize(prog) // must terminate
		if len(apps) == 0 {
			t.Fatalf("nothing applied to %s", prog)
		}
		if _, _, ok := e.Step(out); ok {
			t.Fatalf("fixpoint not reached for %s", prog)
		}
		cfg := VerifyConfig{Seed: 13, Pow2Only: true}
		if err := VerifyEquivalence(prog, out, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExtensionsHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range AllWithExtensions() {
		if seen[r.Name] {
			t.Fatalf("duplicate rule %s", r.Name)
		}
		seen[r.Name] = true
	}
	if len(seen) != 21 {
		t.Fatalf("expected 21 rules total, got %d", len(seen))
	}
	if _, ok := ByName("BM-Mobility"); !ok {
		t.Fatal("ByName does not see extensions")
	}
}
