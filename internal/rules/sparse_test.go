package rules

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/term"
)

// concatOp is vector concatenation — associative but not elementwise.
// It is the discriminating witness for RSAG-AllReduce's elementwise
// condition: slicing a concatenation and re-concatenating the slices is
// not the concatenation (compare AllGather's "++" in the coll tests).
var concatOp = &algebra.Op{
	Name: "++",
	Cost: 1,
	Fn: func(a, b algebra.Value) algebra.Value {
		av, aok := a.(algebra.Vec)
		bv, bok := b.(algebra.Vec)
		if !aok || !bok {
			return algebra.Undef{}
		}
		out := make(algebra.Vec, 0, len(av)+len(bv))
		out = append(out, av...)
		return append(out, bv...)
	},
}

func haloOf(offs ...int) term.Halo {
	return term.Halo{H: &term.Hood{Offsets: offs}}
}

// TestSparseRulesVerifyOnCanonicalShapes applies each message-combining
// rule to its canonical left-hand side and verifies the recorded
// application against the functional semantics.
func TestSparseRulesVerifyOnCanonicalShapes(t *testing.T) {
	cases := []struct {
		rule string
		p    int
		prog term.Seq
	}{
		{rule: "HH-Combine", p: 0, prog: term.Seq{haloOf(1, 2), haloOf(0, 3)}},
		// Offsets that collide mod small p: the combined neighborhood
		// {-2, 0, 0, 2} degenerates and the regroup must still restore
		// the nesting.
		{rule: "HH-Combine", p: 0, prog: term.Seq{haloOf(-1, 1), haloOf(-1, 1)}},
		{rule: "MH-Mobility", p: 0, prog: term.Seq{term.Map{F: IncFn}, haloOf(-1, 1)}},
		{rule: "RSAG-AllReduce", p: 3, prog: term.Seq{
			term.ReduceScatterV{Op: algebra.Add, Counts: []int{2, 0, 1}},
			term.AllGatherV{Counts: []int{2, 0, 1}},
		}},
		{rule: "RSAG-AllReduce", p: 4, prog: term.Seq{
			term.ReduceScatterV{Op: algebra.Max, Counts: []int{0, 0, 4, 0}},
			term.AllGatherV{Counts: []int{0, 0, 4, 0}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.rule+"/"+tc.prog.String(), func(t *testing.T) {
			e := singleRule(t, tc.rule, tc.p)
			_, apps := e.Optimize(tc.prog)
			if len(apps) == 0 {
				t.Fatalf("%s did not fire on %s", tc.rule, tc.prog)
			}
			for _, app := range apps {
				if err := VerifyApplication(app, VerifyConfig{Seed: 11, Trials: 20}); err != nil {
					t.Fatalf("application failed verification: %v", err)
				}
			}
		})
	}
}

// TestSparsePropertyRandomPrograms is the randomized property harness:
// random sparse pipelines are optimized with the full rule set and every
// application plus the end-to-end rewrite is checked against the
// functional semantics. A failure is shrunk to a minimal failing
// pipeline before reporting.
func TestSparsePropertyRandomPrograms(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 20
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := 2 + rng.Intn(5)
		prog := RandSparseProgram(rng, p)
		fails := func(s term.Seq) bool {
			e := NewEngine()
			e.Env.P = p
			_, _, err := VerifyOptimization(e, s, VerifyConfig{Seed: int64(seed), Trials: 6})
			return err != nil
		}
		if fails(prog) {
			shrunk := shrinkProgram(prog, fails)
			e := NewEngine()
			e.Env.P = p
			_, _, err := VerifyOptimization(e, shrunk, VerifyConfig{Seed: int64(seed), Trials: 6})
			t.Fatalf("seed %d p=%d: optimization of %s fails verification; shrunk to %s: %v",
				seed, p, prog, shrunk, err)
		}
	}
}

// shrinkProgram removes stages one at a time while the predicate keeps
// failing, returning a minimal failing pipeline.
func shrinkProgram(prog term.Seq, fails func(term.Seq) bool) term.Seq {
	for {
		shrunkAny := false
		for i := range prog {
			if len(prog) == 1 {
				break
			}
			cand := make(term.Seq, 0, len(prog)-1)
			cand = append(cand, prog[:i]...)
			cand = append(cand, prog[i+1:]...)
			if fails(cand) {
				prog = cand
				shrunkAny = true
				break
			}
		}
		if !shrunkAny {
			return prog
		}
	}
}

// TestSparseSideConditionsAreRejected extends the negative suite to the
// message-combining rules: pattern-matching programs that violate a side
// condition must be left alone, and a control program with the condition
// satisfied must fire.
func TestSparseSideConditionsAreRejected(t *testing.T) {
	lists := [][]int{{1}, {2}, {0}}
	listsHalo := term.Halo{H: &term.Hood{Lists: lists}}
	counts := []int{2, 0, 1}
	rsv := func(op *algebra.Op, c []int) term.Term { return term.ReduceScatterV{Op: op, Counts: c} }
	agv := func(c []int) term.Term { return term.AllGatherV{Counts: c} }

	cases := []struct {
		rule string
		why  string
		p    int
		prog term.Seq
		ok   term.Seq
	}{
		{rule: "HH-Combine", why: "first neighborhood is per-rank (no offset arithmetic)", p: 3,
			prog: term.Seq{listsHalo, haloOf(0, 1)},
			ok:   term.Seq{haloOf(-1, 1), haloOf(0, 1)}},
		{rule: "HH-Combine", why: "second neighborhood is per-rank", p: 3,
			prog: term.Seq{haloOf(0, 1), listsHalo}},
		{rule: "RSAG-AllReduce", why: "counts vectors differ", p: 3,
			prog: term.Seq{rsv(algebra.Add, []int{2, 0, 1}), agv([]int{1, 0, 2})},
			ok:   term.Seq{rsv(algebra.Add, counts), agv(counts)}},
		{rule: "RSAG-AllReduce", why: "- is not associative", p: 3,
			prog: term.Seq{rsv(algebra.Sub, counts), agv(counts)}},
		{rule: "RSAG-AllReduce", why: "matmul is associative but not elementwise", p: 3,
			prog: term.Seq{rsv(algebra.MatMul, counts), agv(counts)}},
		{rule: "RSAG-AllReduce", why: "machine size does not match the counts", p: 4,
			prog: term.Seq{rsv(algebra.Add, counts), agv(counts)}},
	}
	for _, tc := range cases {
		t.Run(tc.rule+"/"+strings.ReplaceAll(tc.why, " ", "_"), func(t *testing.T) {
			e := singleRule(t, tc.rule, tc.p)
			out, apps := e.Optimize(tc.prog)
			if len(apps) != 0 {
				t.Fatalf("rule %s applied to %s despite %s: -> %s", tc.rule, tc.prog, tc.why, out)
			}
			if tc.ok != nil {
				if _, apps := singleRule(t, tc.rule, tc.p).Optimize(tc.ok); len(apps) == 0 {
					t.Fatalf("control program %s did not trigger %s — the negative case proves nothing",
						tc.ok, tc.rule)
				}
			}
		})
	}
}

// sparseCex is a committed shrunk counterexample refuting one forbidden
// sparse rewrite (testdata/sparse_counterexamples.json). Values holds
// the per-rank inputs: one number per rank for scalar cases, a row per
// rank for vector cases.
type sparseCex struct {
	Name   string      `json:"name"`
	P      int         `json:"p"`
	Shape  string      `json:"shape"` // "scalar" or "vec"
	Values [][]float64 `json:"values"`
}

// forcedWrongSparse constructs the right-hand sides the sparse side
// conditions forbid — what the rules would emit with the guard dropped.
func forcedWrongSparse() []struct {
	name     string
	p        int
	shape    string
	width    int
	lhs, rhs term.Seq
} {
	// A genuinely per-rank neighborhood (no single offset vector
	// realizes {1},{0},{0}). HH-Combine applied as if lists[0] were the
	// offset vector pretend-combines with halo(1) into offsets {1+1}.
	lists := [][]int{{1}, {0}, {0}}
	hhLhs := term.Seq{term.Halo{H: &term.Hood{Lists: lists}}, haloOf(1)}
	hhRhs := term.Seq{haloOf(2), term.Map{F: RegroupFn(1, 1)}}
	// RSAG-AllReduce on concatenation: the left side reconstructs rank
	// 0's vector, the right side concatenates everything.
	counts := []int{1, 1}
	rsagLhs := term.Seq{term.ReduceScatterV{Op: concatOp, Counts: counts}, term.AllGatherV{Counts: counts}}
	rsagRhs := term.Seq{term.Reduce{Op: concatOp, All: true}}
	return []struct {
		name     string
		p        int
		shape    string
		width    int
		lhs, rhs term.Seq
	}{
		{name: "HH-Combine/lists-as-offsets", p: 3, shape: "scalar", width: 1, lhs: hhLhs, rhs: hhRhs},
		{name: "RSAG-AllReduce/concat", p: 2, shape: "vec", width: 2, lhs: rsagLhs, rhs: rsagRhs},
	}
}

func cexInputs(shape string, vals [][]float64) []algebra.Value {
	in := make([]algebra.Value, len(vals))
	for i, row := range vals {
		if shape == "scalar" {
			in[i] = algebra.Scalar(row[0])
		} else {
			in[i] = append(algebra.Vec(nil), row...)
		}
	}
	return in
}

func refutes(lhs, rhs term.Seq, shape string, vals [][]float64) bool {
	l := term.Eval(lhs, cexInputs(shape, vals))
	r := term.Eval(rhs, cexInputs(shape, vals))
	if len(l) != len(r) {
		return true
	}
	for i := range l {
		if !algebra.EqualModuloUndef(l[i], r[i]) {
			return true
		}
	}
	return false
}

// shrinkCex greedily drives every input number to 0, then to 1, keeping
// each move that still refutes the rewrite.
func shrinkCex(lhs, rhs term.Seq, shape string, vals [][]float64) [][]float64 {
	for _, target := range []float64{0, 1} {
		for i := range vals {
			for j := range vals[i] {
				if vals[i][j] == target {
					continue
				}
				old := vals[i][j]
				vals[i][j] = target
				if !refutes(lhs, rhs, shape, vals) {
					vals[i][j] = old
				}
			}
		}
	}
	return vals
}

// TestSparseForcedWrongRewritesFailVerification checks the randomized
// verifier refutes each forbidden sparse rewrite, then shrinks a
// concrete counterexample and compares it against the committed witness
// in testdata/sparse_counterexamples.json (regenerate with
// UPDATE_SPARSE_CEX=1).
func TestSparseForcedWrongRewritesFailVerification(t *testing.T) {
	var got []sparseCex
	for _, tc := range forcedWrongSparse() {
		cfg := VerifyConfig{Seed: 13, Trials: 30, Sizes: []int{tc.p}, Gen: func(rng *rand.Rand, n int) []algebra.Value {
			vals := make([][]float64, n)
			for i := range vals {
				row := make([]float64, tc.width)
				for j := range row {
					row[j] = float64(rng.Intn(13) - 6)
				}
				vals[i] = row
			}
			return cexInputs(tc.shape, vals)
		}}
		if err := VerifyEquivalence(tc.lhs, tc.rhs, cfg); err == nil {
			t.Fatalf("%s: verifier accepted the forbidden rewrite %s -> %s", tc.name, tc.lhs, tc.rhs)
		}
		// Find and shrink a deterministic witness.
		rng := rand.New(rand.NewSource(13))
		var vals [][]float64
		for trial := 0; ; trial++ {
			if trial > 1000 {
				t.Fatalf("%s: no counterexample in 1000 trials", tc.name)
			}
			vals = make([][]float64, tc.p)
			for i := range vals {
				row := make([]float64, tc.width)
				for j := range row {
					row[j] = float64(rng.Intn(13) - 6)
				}
				vals[i] = row
			}
			if refutes(tc.lhs, tc.rhs, tc.shape, vals) {
				break
			}
		}
		vals = shrinkCex(tc.lhs, tc.rhs, tc.shape, vals)
		if !refutes(tc.lhs, tc.rhs, tc.shape, vals) {
			t.Fatalf("%s: shrinking lost the counterexample", tc.name)
		}
		got = append(got, sparseCex{Name: tc.name, P: tc.p, Shape: tc.shape, Values: vals})
	}

	path := filepath.Join("testdata", "sparse_counterexamples.json")
	if os.Getenv("UPDATE_SPARSE_CEX") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing committed counterexamples (run with UPDATE_SPARSE_CEX=1): %v", err)
	}
	var want []sparseCex
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("committed %d counterexamples, generated %d", len(want), len(got))
	}
	for i := range want {
		wj, _ := json.Marshal(want[i])
		gj, _ := json.Marshal(got[i])
		if string(wj) != string(gj) {
			t.Fatalf("counterexample %s drifted: committed %s, generated %s", want[i].Name, wj, gj)
		}
	}
}

// TestSparseCounterexamplesStillRefute replays the committed witnesses
// directly against the functional semantics, independent of the search
// that found them.
func TestSparseCounterexamplesStillRefute(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "sparse_counterexamples.json"))
	if err != nil {
		t.Fatalf("missing committed counterexamples: %v", err)
	}
	var cexes []sparseCex
	if err := json.Unmarshal(data, &cexes); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]struct {
		lhs, rhs term.Seq
	})
	for _, tc := range forcedWrongSparse() {
		byName[tc.name] = struct{ lhs, rhs term.Seq }{tc.lhs, tc.rhs}
	}
	for _, c := range cexes {
		tc, ok := byName[c.Name]
		if !ok {
			t.Fatalf("committed counterexample %q matches no forced-wrong case", c.Name)
		}
		if !refutes(tc.lhs, tc.rhs, c.Shape, c.Values) {
			t.Fatalf("%s: committed witness %v no longer refutes the rewrite", c.Name, c.Values)
		}
	}
}

// TestSparseGreedyTrapSearchWins pins the MH-Mobility design point: the
// move alone never improves, so the greedy engine is stuck on
// halo ; map f ; halo — but the plan search passes through it, combines
// the halos, and lands on a strictly cheaper program.
func TestSparseGreedyTrapSearchWins(t *testing.T) {
	params := cost.Params{Ts: 4, Tw: 1, P: 4, M: 1}
	prog := term.Seq{haloOf(-1, 1), term.Map{F: IncTupFn}, haloOf(-1, 1)}

	e := NewCostGuidedEngine(params)
	_, greedyApps := e.Optimize(prog)
	if len(greedyApps) != 0 {
		t.Fatalf("greedy engine escaped the trap: %v", greedyApps)
	}
	opt, apps, stats := e.SearchOptimize(prog, SearchConfig{})
	if !stats.Improved() {
		t.Fatalf("search did not beat greedy on %s: greedy %.0f, best %.0f",
			prog, stats.GreedyCost, stats.BestCost)
	}
	if len(apps) == 0 {
		t.Fatal("search reported an improvement without applications")
	}
	if err := VerifyEquivalence(prog, opt, VerifyConfig{Seed: 9, Trials: 15}); err != nil {
		t.Fatalf("searched plan is not equivalent: %v", err)
	}
}
