package calib

import (
	"strings"
	"testing"

	"repro/internal/cost"
)

func TestValidateAlgosCoversPortfolio(t *testing.T) {
	cfg := QuickConfig()
	cfg.AlgoPs = []int{4, 7}
	cfg.ValidateMs = []int{16, 256}
	fit := Fit{TsNs: 600, TwNs: 0, TcNs: 4, Ts: 150, Tw: 0.01}
	val, err := ValidateAlgos(fit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 allreduce algorithms + 1 reduce algorithm on each of two group
	// sizes.
	if len(val) != 8 {
		t.Fatalf("got %d validations, want 8: %+v", len(val), val)
	}
	maxM := cfg.ValidateMs[len(cfg.ValidateMs)-1]
	seen := map[string]bool{}
	for _, v := range val {
		seen[string(v.Algo)] = true
		if len(v.Ms) == 0 || len(v.ButterflyNs) != len(v.Ms) || len(v.AlgoNs) != len(v.Ms) {
			t.Errorf("%s/%s p=%d: ragged sweep %d/%d/%d", v.Collective, v.Algo, v.P,
				len(v.Ms), len(v.ButterflyNs), len(v.AlgoNs))
		}
		for _, m := range v.Ms {
			pp := cost.Params{Ts: fit.Ts, Tw: fit.Tw, P: v.P, M: m}
			if !cost.Applicable(v.Collective, v.Algo, pp) {
				t.Errorf("%s/%s p=%d: swept inapplicable m=%d", v.Collective, v.Algo, v.P, m)
			}
		}
		if v.PredCross < 0 || v.PredCross > maxM || v.MeasCross < 0 || v.MeasCross > maxM {
			t.Errorf("%s/%s p=%d: crossovers (%d, %d) out of [0, %d]",
				v.Collective, v.Algo, v.P, v.PredCross, v.MeasCross, maxM)
		}
		if v.Agreement < 0 || v.Agreement > 1 {
			t.Errorf("%s/%s p=%d: agreement %g out of [0, 1]", v.Collective, v.Algo, v.P, v.Agreement)
		}
	}
	for _, a := range []cost.Algo{cost.AlgoRabenseifner, cost.AlgoRing, cost.AlgoRingBi, cost.AlgoPipeline} {
		if !seen[string(a)] {
			t.Errorf("portfolio validation missed %s", a)
		}
	}

	text := FormatAlgoValidation(val)
	for _, want := range []string{"Algorithm crossovers", "rabenseifner", "ring-bi", "pipeline"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted validation lacks %q:\n%s", want, text)
		}
	}
}

func TestValidateAlgosFallsBackToValidateP(t *testing.T) {
	cfg := QuickConfig()
	cfg.AlgoPs = nil
	cfg.ValidateMs = []int{64}
	val, err := ValidateAlgos(Fit{Ts: 100, Tw: 0.01, TcNs: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range val {
		if v.P != cfg.ValidateP {
			t.Errorf("expected the ValidateP fallback (p=%d), got p=%d", cfg.ValidateP, v.P)
		}
	}
}
