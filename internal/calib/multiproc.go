package calib

import (
	"fmt"
	"runtime"

	"repro/internal/mpbackend"
)

// This file is the multi-process half of the calibration: the same probe
// family as Measure — ping-pong, compute, and the butterfly collectives —
// run with the ranks as separate OS processes over Unix sockets (package
// mpbackend). On the in-process backends a send hands over a reference,
// so the fitted per-word cost TwNs is indistinguishable from zero and the
// bandwidth-oriented algorithms never win; across process boundaries
// every message is serialized through the kernel, tw > 0 becomes
// measurable, and the crossovers of the §4.1 model appear for real. The
// fitted section lands in the calibration report under "multiproc" — see
// CALIB_native.json.
//
// Any binary calling into this file must invoke mpbackend.MaybeWorker()
// first thing in main (or TestMain): the probes re-execute the running
// binary to spawn ranks.

// MPSection is the multi-process part of the calibration report: its own
// fit, raw samples, and portfolio-crossover validation, measured entirely
// across process boundaries.
type MPSection struct {
	// Workers is the host parallelism the probe coefficients assumed
	// (ranks beyond it serialize — see Coef).
	Workers int `json:"workers"`
	// Reps and Rounds document the repetition discipline.
	Reps   int `json:"reps"`
	Rounds int `json:"rounds"`
	// Fit is the fitted parameter set of this transport.
	Fit Fit `json:"fit"`
	// Samples are the raw multi-process probe observations.
	Samples []Sample `json:"samples"`
	// Algos is the portfolio-crossover validation on this transport.
	Algos []AlgoValidation `json:"algos,omitempty"`
}

// probeMP runs one probe as an mpbackend job and returns its sample: the
// minimum over cfg.Reps barrier-synchronized repetitions of the
// max-over-ranks makespan, after one discarded warm-up.
func probeMP(probe string, p, m, rounds int, cfg Config, workers int) (Sample, error) {
	res, err := mpbackend.Run("probe", p, mpbackend.ProbeParams{
		Probe: probe, M: m, Rounds: rounds, Reps: cfg.Reps,
	}, mpbackend.Options{})
	if err != nil {
		return Sample{}, fmt.Errorf("calib: multiproc %s probe (p=%d m=%d): %w", probe, p, m, err)
	}
	ns, err := mpbackend.MinMakespan(res)
	if err != nil {
		return Sample{}, err
	}
	s := Sample{Probe: probe, P: p, M: m, Rounds: rounds, Ns: ns}
	s.CoefTs, s.CoefTw, s.CoefC = Coef(probe, p, m, rounds, workers)
	return s, nil
}

// MeasureMP runs every probe of the configuration across process
// boundaries and returns the samples, ready for FitSamples. The probe
// kinds, iteration scaling and compute-probe gating mirror Measure
// exactly — only the transport differs.
func MeasureMP(cfg Config) ([]Sample, error) {
	workers := runtime.NumCPU()
	var out []Sample
	add := func(s Sample, err error) error {
		if err != nil {
			return err
		}
		out = append(out, s)
		return nil
	}
	computeOnce := true
	for _, m := range cfg.Ms {
		if err := add(probeMP(ProbePingPong, 2, m, cfg.Rounds*4, cfg, workers)); err != nil {
			return nil, err
		}
		if m >= 64 {
			if err := add(probeMP(ProbeCompute, 1, m, cfg.Rounds*max(16, 4096/m), cfg, workers)); err != nil {
				return nil, err
			}
			computeOnce = false
		}
	}
	if computeOnce {
		if err := add(probeMP(ProbeCompute, 1, 64, cfg.Rounds*max(16, 4096/64), cfg, workers)); err != nil {
			return nil, err
		}
	}
	for _, p := range cfg.Ps {
		if p < 2 {
			continue
		}
		for _, m := range cfg.Ms {
			for _, probe := range []string{ProbeBcast, ProbeReduce, ProbeScan} {
				if err := add(probeMP(probe, p, m, cfg.Rounds, cfg, workers)); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// RunMP performs the multi-process calibration pipeline — measure, fit,
// validate the portfolio crossovers — and assembles the report section.
func RunMP(cfg Config) (*MPSection, error) {
	samples, err := MeasureMP(cfg)
	if err != nil {
		return nil, err
	}
	fit, err := FitSamples(samples)
	if err != nil {
		return nil, err
	}
	algos, err := ValidateAlgosMP(fit, cfg)
	if err != nil {
		return nil, err
	}
	return &MPSection{
		Workers: runtime.NumCPU(),
		Reps:    cfg.Reps,
		Rounds:  cfg.Rounds,
		Fit:     fit,
		Samples: samples,
		Algos:   algos,
	}, nil
}
