package calib

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exper"
	"repro/internal/rules"
)

// RuleValidation is one rule's predicted-vs-measured break-even record:
// the wall-clock sweep of both sides, the crossover block size the
// calibrated closed forms predict, the one the native backend measures,
// and their disagreement.
type RuleValidation struct {
	// Rule and Class identify the rule.
	Rule  string `json:"rule"`
	Class string `json:"class"`
	// LHS and RHS are the unfused and fused programs measured.
	LHS string `json:"lhs"`
	RHS string `json:"rhs"`
	// P is the group size of the sweep.
	P int `json:"p"`
	// Ms, LhsNs and RhsNs are the sweep: block sizes and the measured
	// wall-clock makespans of both sides.
	Ms    []int     `json:"ms"`
	LhsNs []float64 `json:"lhs_ns"`
	RhsNs []float64 `json:"rhs_ns"`
	// PredCross and MeasCross are the break-even block sizes — the
	// largest m at which the rule still improves — predicted by the
	// calibrated closed forms and measured by bisection on the native
	// backend. Both are capped at the sweep's largest block size.
	PredCross int `json:"predicted_crossover"`
	MeasCross int `json:"measured_crossover"`
	// Capped reports that both crossovers sit at the sweep cap: the
	// rule improves at every tested size and no break-even exists in
	// range.
	Capped bool `json:"capped"`
	// AbsErr and RelErr quantify the prediction error:
	// |predicted − measured| and the same relative to the measured
	// crossover (relative to the cap when the measured crossover is 0).
	AbsErr int     `json:"abs_err"`
	RelErr float64 `json:"rel_err"`
	// Agreement is the fraction of sweep points where the calibrated
	// condition's verdict matches the measured one — the accuracy of
	// the cost-guided engine's apply/skip decisions on this machine.
	Agreement float64 `json:"agreement"`
}

// inputsFor builds one deterministic m-word block per rank.
func inputsFor(seed int64, p, m int) []algebra.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]algebra.Value, p)
	for i := range out {
		out[i] = vec(rng, m)
	}
	return out
}

// Validate replays every Table 1 rule's left- and right-hand side on the
// native backend across the configured block-size sweep and reports the
// predicted-vs-measured break-even per rule. The predictions use the
// calibrated parameters of fit; measurements take the minimum over
// cfg.Reps runs. The measured crossover is located from the sweep and
// sharpened by bisection between the bracketing sweep points, so its
// resolution does not depend on the sweep's granularity.
func Validate(fit Fit, cfg Config) ([]RuleValidation, error) {
	p := cfg.ValidateP
	ms := cfg.ValidateMs
	if p < 2 || len(ms) == 0 {
		return nil, fmt.Errorf("calib: validation needs p ≥ 2 and a non-empty block-size sweep")
	}
	maxM := ms[len(ms)-1]
	run := exper.NativeRunner(cfg.Reps)
	var out []RuleValidation
	for _, pat := range exper.Patterns() {
		r, ok := rules.ByName(pat.Rule)
		if !ok {
			return nil, fmt.Errorf("calib: no rule named %s", pat.Rule)
		}
		if r.Class == "Local" && p&(p-1) != 0 {
			// The Local rules rewrite to f^(log p) and need a
			// power-of-two machine.
			continue
		}
		entry, ok := cost.Lookup(pat.Rule)
		if !ok {
			return nil, fmt.Errorf("calib: no Table 1 entry for %s", pat.Rule)
		}
		eng := rules.NewEngine()
		eng.Rules = []rules.Rule{r}
		eng.Env.P = p
		opt, apps := eng.Optimize(pat.LHS.Term())
		if len(apps) != 1 {
			return nil, fmt.Errorf("calib: rule %s did not apply at p=%d", pat.Rule, p)
		}
		rhs := core.FromTerm(opt)

		v := RuleValidation{
			Rule: pat.Rule, Class: r.Class,
			LHS: pat.LHS.String(), RHS: rhs.String(),
			P: p, Ms: ms,
		}
		improves := func(m int) bool {
			mach := core.Machine{P: p, M: m}
			in := inputsFor(11, p, m)
			run(pat.LHS, mach, in) // warm-up, keeps first-run noise out
			return run(rhs, mach, in) < run(pat.LHS, mach, in)
		}
		agree := 0
		base := cost.Params{Ts: fit.Ts, Tw: fit.Tw, P: p}
		for _, m := range ms {
			mach := core.Machine{P: p, M: m}
			in := inputsFor(11, p, m)
			run(pat.LHS, mach, in)
			lhsNs := run(pat.LHS, mach, in)
			rhsNs := run(rhs, mach, in)
			v.LhsNs = append(v.LhsNs, lhsNs)
			v.RhsNs = append(v.RhsNs, rhsNs)
			pp := base
			pp.M = m
			if entry.Improves(pp) == (rhsNs < lhsNs) {
				agree++
			}
		}
		v.Agreement = float64(agree) / float64(len(ms))
		v.PredCross = cost.Crossover(entry, base, maxM)
		v.MeasCross = measuredCrossover(v, improves, maxM)
		v.Capped = v.PredCross == maxM && v.MeasCross == maxM
		v.AbsErr = v.PredCross - v.MeasCross
		if v.AbsErr < 0 {
			v.AbsErr = -v.AbsErr
		}
		v.RelErr = float64(v.AbsErr) / float64(max(v.MeasCross, 1))
		out = append(out, v)
	}
	return out, nil
}

// measuredCrossover locates the largest block size at which the fused
// side still wins. The sweep gives the bracket: the last sweep point
// where the right-hand side measured faster, and the next point where
// it did not; bisection with fresh native measurements then sharpens
// the boundary inside the bracket.
func measuredCrossover(v RuleValidation, improves func(m int) bool, maxM int) int {
	last := -1 // index of the last sweep point where rhs won
	for i := range v.Ms {
		if v.RhsNs[i] < v.LhsNs[i] {
			last = i
		}
	}
	switch {
	case last < 0:
		return 0
	case last == len(v.Ms)-1:
		return maxM
	}
	lo, hi := v.Ms[last], v.Ms[last+1] // improves(lo), !improves(hi)
	for i := 0; i < 8 && hi-lo > 1; i++ {
		mid := (lo + hi) / 2
		if improves(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
