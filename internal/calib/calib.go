// Package calib closes the paper's predict-vs-measure loop on the native
// backend: it measures this machine's cost-model parameters instead of
// assuming them, so the cost-guided optimizer of package rules decides
// with numbers that are true here.
//
// The §4.1 model prices a program as a·ts + b·m·tw + c·m — a message
// start-ups, b·m words shipped, c·m elementary operations — with ts and
// tw expressed in multiples of one elementary operation. Calibration
// runs a small family of microbenchmarks whose model coefficients are
// known exactly (Coef): a two-rank ping-pong (start-up and transfer, no
// compute), a pure local compute loop (the unit), and the three
// butterfly collectives bcast/reduce/scan at several group and block
// sizes (start-up, transfer and compute mixed in three different
// ratios, which is what makes the three parameters separable). A
// weighted least-squares fit over all samples (FitSamples) recovers
// TsNs, TwNs and TcNs — the start-up, per-word and per-operation costs
// in nanoseconds — and reports residuals; dividing by TcNs yields the
// dimensionless Ts and Tw that cost.Params expects.
//
// Timing methodology (shared with package backend): every probe run
// releases all ranks from a barrier-synchronized start, each rank
// records its own elapsed wall time, and the sample's time is the
// makespan — the last rank's finish. Each probe iterates its operation
// Rounds times inside one run to amortize timer resolution, and takes
// the minimum over Reps runs as the undisturbed estimate (the standard
// noise filter for wall-clock microbenchmarks).
//
// Validate then replays every optimization rule's unfused and fused
// form at a sweep of block sizes and compares the measured break-even
// block size with the one the calibrated closed forms predict — the
// whole report (fit, samples, per-rule crossovers with absolute and
// relative error) is emitted machine-readably by WriteReport; see the
// committed CALIB_native.json.
package calib

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
)

// Probe kinds. Each has a distinct (start-up, transfer, compute)
// coefficient shape — see Coef.
const (
	// ProbePingPong bounces a block between two ranks: pure start-up
	// plus transfer, no compute.
	ProbePingPong = "pingpong"
	// ProbeCompute folds a base operator over a block on one rank: pure
	// compute, no communication — the probe that pins down the unit.
	ProbeCompute = "compute"
	// ProbeBcast, ProbeReduce and ProbeScan run the butterfly
	// collectives: log p start-ups with 0, 1 and 2 elementary
	// operations per transferred word respectively.
	ProbeBcast  = "bcast"
	ProbeReduce = "reduce"
	ProbeScan   = "scan"
)

// Sample is one calibration observation: a probe run's cost-model
// coefficients and its measured wall-clock time.
type Sample struct {
	// Probe is the probe kind.
	Probe string `json:"probe"`
	// P and M are the group size and per-rank block size in words.
	P int `json:"p"`
	M int `json:"m"`
	// Rounds is how many times the run iterated the probe operation.
	Rounds int `json:"rounds"`
	// CoefTs, CoefTw and CoefC are the model coefficients of the whole
	// run: predicted ns = CoefTs·TsNs + CoefTw·TwNs + CoefC·TcNs.
	CoefTs float64 `json:"coef_ts"`
	CoefTw float64 `json:"coef_tw"`
	CoefC  float64 `json:"coef_c"`
	// Ns is the measured makespan in nanoseconds (minimum over the
	// configured repetitions).
	Ns float64 `json:"ns"`
}

// Coef returns the cost-model coefficients of one probe run of rounds
// iterations at group size p and block size m: the number of message
// start-ups, word transfers, and elementary operations that bound the
// run's wall time. The group-size factor is ceil(log2 p), matching
// cost.Params.LogP on non-power-of-two groups.
//
// workers is the host's available parallelism (runtime.GOMAXPROCS for a
// real run; ≤ 0 means unlimited). With workers ≥ p the coefficients are
// exactly the §4.1 critical-path counts — log p phases of one message
// and 0/1/2 combines for bcast/reduce/scan, equations (15)–(17). With
// fewer cores than ranks the ranks' concurrent phase work serializes,
// so each coefficient becomes max(critical path, total work ÷ workers):
// a binomial bcast/reduce ships p−1 messages in total, a butterfly scan
// p·log p messages and 1.5·p·log p combines. Charging the serialized
// counts keeps the fitted TsNs/TcNs the true single-stream costs on any
// host instead of silently inflating them.
func Coef(probe string, p, m, rounds, workers int) (a, b, c float64) {
	logp := 0.0
	if p > 1 {
		logp = math.Ceil(math.Log2(float64(p)))
	}
	w := float64(workers)
	if workers <= 0 {
		w = math.Inf(1)
	}
	r, mf, pf := float64(rounds), float64(m), float64(p)
	var msgs, ops float64
	switch probe {
	case ProbePingPong:
		// One round trip is two sequential one-way messages.
		return 2 * r, 2 * r * mf, 0
	case ProbeCompute:
		return 0, 0, r * mf
	case ProbeBcast:
		msgs, ops = math.Max(logp, (pf-1)/w), 0
	case ProbeReduce:
		// One combine per received message, p−1 messages on a binomial
		// tree, log p of them on the critical path.
		msgs = math.Max(logp, (pf-1)/w)
		ops = msgs
	case ProbeScan:
		// Butterfly: every phase exchanges p messages and combines the
		// running total everywhere plus the prefix on half the ranks.
		msgs = math.Max(logp, pf*logp/w)
		ops = math.Max(2*logp, 1.5*pf*logp/w)
	default:
		panic(fmt.Sprintf("calib: unknown probe %q", probe))
	}
	return r * msgs, r * msgs * mf, r * ops * mf
}

// Config sizes a calibration run.
type Config struct {
	// Ps are the group sizes for the collective probes.
	Ps []int
	// Ms are the block sizes swept by every probe.
	Ms []int
	// Reps is the number of repetitions per sample (minimum taken),
	// after one discarded warm-up run.
	Reps int
	// Rounds is the base iteration count inside one run; individual
	// probes scale it to keep each run well above timer resolution.
	Rounds int
	// ValidateP is the group size of the rule-validation sweep (a power
	// of two, so the Local rules participate).
	ValidateP int
	// ValidateMs is the block-size sweep of the rule validation; its
	// last element caps the crossover search.
	ValidateMs []int
	// AlgoPs are the group sizes of the algorithm-portfolio validation
	// (ValidateAlgos); include a non-power-of-two to exercise the
	// rabenseifner fold path. Empty falls back to {ValidateP}.
	AlgoPs []int
}

// DefaultConfig is the full calibration: three group sizes, a
// seven-point geometric block-size sweep, and a rule validation on
// eight ranks.
func DefaultConfig() Config {
	return Config{
		Ps:         []int{2, 4, 8},
		Ms:         []int{1, 4, 16, 64, 256, 1024, 4096},
		Reps:       5,
		Rounds:     32,
		ValidateP:  8,
		ValidateMs: []int{1, 4, 16, 64, 256, 1024, 4096},
		AlgoPs:     []int{7, 8},
	}
}

// QuickConfig is a seconds-scale smoke configuration for CI and tests:
// same probe shapes, minimal sweeps. The sweep reaches m = 1024 so the
// per-word coefficient stays identifiable on the multi-process
// transport — with small blocks only, scheduling noise can flip the
// fitted tw's sign, and the multiproc CI smoke asserts tw > 0.
func QuickConfig() Config {
	return Config{
		Ps:         []int{2, 4},
		Ms:         []int{1, 16, 256, 1024},
		Reps:       2,
		Rounds:     8,
		ValidateP:  4,
		ValidateMs: []int{1, 64},
		AlgoPs:     []int{4},
	}
}

// sink keeps the compute probe's result alive.
var sink algebra.Value

// Measure runs every probe of the configuration on the native backend
// and returns the samples, ready for FitSamples. The compute probe only
// runs at block sizes of 64 words and up: below that the per-ApplyInto
// dispatch overhead dominates the per-word cost and would contaminate
// the fitted unit — in the collectives that overhead is a per-message
// effect and lands in TsNs, where it belongs.
func Measure(cfg Config) []Sample {
	workers := runtime.GOMAXPROCS(0)
	var out []Sample
	computeOnce := true
	for _, m := range cfg.Ms {
		out = append(out, pingpong(m, cfg, workers))
		if m >= 64 {
			out = append(out, compute(m, cfg, workers))
			computeOnce = false
		}
	}
	if computeOnce {
		out = append(out, compute(64, cfg, workers))
	}
	for _, p := range cfg.Ps {
		if p < 2 {
			continue
		}
		for _, m := range cfg.Ms {
			for _, probe := range []string{ProbeBcast, ProbeReduce, ProbeScan} {
				out = append(out, collectiveProbe(probe, p, m, cfg, workers))
			}
		}
	}
	return out
}

// minRun executes body on a fresh machine of p ranks reps+1 times and
// returns the minimum makespan in nanoseconds, discarding the first
// (warm-up) run.
func minRun(p, reps int, body func(pr *backend.Proc)) float64 {
	mach := backend.New(p)
	best := math.MaxFloat64
	for i := 0; i <= reps; i++ {
		res := mach.Run(body)
		if ns := float64(res.Makespan.Nanoseconds()); i > 0 && ns < best {
			best = ns
		}
	}
	return best
}

// vec builds an m-word block with small deterministic entries.
func vec(rng *rand.Rand, m int) algebra.Vec {
	v := make(algebra.Vec, m)
	for i := range v {
		v[i] = float64(rng.Intn(9) + 1)
	}
	return v
}

func pingpong(m int, cfg Config, workers int) Sample {
	rounds := cfg.Rounds * 4
	v := vec(rand.New(rand.NewSource(1)), m)
	ns := minRun(2, cfg.Reps, func(pr *backend.Proc) {
		for i := 0; i < rounds; i++ {
			t1, t2 := pr.NextTag(), pr.NextTag()
			if pr.Rank() == 0 {
				pr.Send(1, v, t1)
				pr.Recv(1, t2)
			} else {
				w := pr.Recv(0, t1)
				pr.Send(0, w, t2)
			}
		}
	})
	s := Sample{Probe: ProbePingPong, P: 2, M: m, Rounds: rounds, Ns: ns}
	s.CoefTs, s.CoefTw, s.CoefC = Coef(s.Probe, s.P, s.M, s.Rounds, workers)
	return s
}

func compute(m int, cfg Config, workers int) Sample {
	// Scale the iteration count so every block size executes enough
	// operations to rise above timer resolution.
	rounds := cfg.Rounds * max(16, 4096/m)
	rng := rand.New(rand.NewSource(2))
	v0, w := vec(rng, m), vec(rng, m)
	acc := make(algebra.Vec, m)
	ns := minRun(1, cfg.Reps, func(pr *backend.Proc) {
		copy(acc, v0)
		// The in-place kernel, not the boxed reference: the unit must
		// price the path the collectives actually run.
		v := algebra.Value(acc)
		for i := 0; i < rounds; i++ {
			v = algebra.Add.ApplyInto(v, v, w)
		}
		sink = v
	})
	s := Sample{Probe: ProbeCompute, P: 1, M: m, Rounds: rounds, Ns: ns}
	s.CoefTs, s.CoefTw, s.CoefC = Coef(s.Probe, s.P, s.M, s.Rounds, workers)
	return s
}

func collectiveProbe(probe string, p, m int, cfg Config, workers int) Sample {
	rng := rand.New(rand.NewSource(3))
	blocks := make([]algebra.Vec, p)
	for i := range blocks {
		blocks[i] = vec(rng, m)
	}
	rounds := cfg.Rounds
	ns := minRun(p, cfg.Reps, func(pr *backend.Proc) {
		v := algebra.Value(blocks[pr.Rank()])
		for i := 0; i < rounds; i++ {
			switch probe {
			case ProbeBcast:
				coll.Bcast(pr, 0, v)
			case ProbeReduce:
				coll.Reduce(pr, 0, algebra.Add, v)
			case ProbeScan:
				coll.Scan(pr, algebra.Add, v)
			}
		}
	})
	s := Sample{Probe: probe, P: p, M: m, Rounds: rounds, Ns: ns}
	s.CoefTs, s.CoefTw, s.CoefC = Coef(s.Probe, s.P, s.M, s.Rounds, workers)
	return s
}

// Calibrate measures and fits in one call.
func Calibrate(cfg Config) (Fit, []Sample, error) {
	samples := Measure(cfg)
	fit, err := FitSamples(samples)
	return fit, samples, err
}
