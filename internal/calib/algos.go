package calib

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/cost"
	"repro/internal/exper"
)

// AlgoValidation is one (collective, algorithm, group size) record of
// the portfolio validation: the wall-clock sweep of the algorithm
// against the §4.1 butterfly, the crossover block size the calibrated
// cost lines predict, the one the native backend measures, and their
// disagreement. Where the rule validation's crossover is the largest
// block at which a fusion still wins, an algorithm's crossover is the
// smallest block at which it first beats the butterfly — the portfolio
// wins in the bandwidth-dominated regime, the rules in the
// start-up-dominated one.
type AlgoValidation struct {
	// Collective and Algo identify the measured pairing.
	Collective string    `json:"collective"`
	Algo       cost.Algo `json:"algo"`
	// P is the group size of the sweep.
	P int `json:"p"`
	// Ms, ButterflyNs and AlgoNs are the sweep: the applicable block
	// sizes and the measured wall-clock makespans of both sides.
	Ms          []int     `json:"ms"`
	ButterflyNs []float64 `json:"butterfly_ns"`
	AlgoNs      []float64 `json:"algo_ns"`
	// PredCross and MeasCross are the break-even block sizes — the
	// smallest m at which the algorithm undercuts the butterfly —
	// predicted by the calibrated cost lines (cost.BreakEven) and
	// measured by bisection on the native backend. 0 means the
	// algorithm never won within the sweep.
	PredCross int `json:"predicted_crossover"`
	MeasCross int `json:"measured_crossover"`
	// AbsErr and RelErr quantify the prediction error:
	// |predicted − measured| and the same relative to the measured
	// crossover (relative to the sweep cap when the measured crossover
	// is 0).
	AbsErr int     `json:"abs_err"`
	RelErr float64 `json:"rel_err"`
	// Agreement is the fraction of sweep points where the calibrated
	// model's winner matches the measured one — the accuracy of the
	// selection layer's choices on this machine.
	Agreement float64 `json:"agreement"`
}

// algoMeasurer produces, for one group size p, the measurement function
// of the head-to-head sweep: given a portfolio pairing it returns the
// butterfly's and the algorithm's wall-clock nanoseconds. Factoring the
// measurer out lets the native and multi-process validations share the
// sweep and crossover logic verbatim.
type algoMeasurer func(p int) func(collective string, a cost.Algo, m, segments int) (bfNs, algNs float64, err error)

// ValidateAlgos runs every portfolio algorithm head-to-head against the
// butterfly on the native backend across the configured sweep and
// reports the predicted-vs-measured crossover per (collective,
// algorithm, group size) — the calibration evidence behind the
// selection layer (coll/sel). Predictions use the calibrated parameters
// of fit; measurements take the minimum over cfg.Reps runs. Only the
// block sizes the algorithm can run at (cost.Applicable) are measured.
func ValidateAlgos(fit Fit, cfg Config) ([]AlgoValidation, error) {
	op := algebra.Add
	return validateAlgosWith(fit, cfg, func(p int) func(string, cost.Algo, int, int) (float64, float64, error) {
		nm := backend.New(p)
		return func(collective string, a cost.Algo, m, segments int) (bfNs, algNs float64, err error) {
			in := inputsFor(11, p, m)
			exper.MeasureCollective(nm, collective, a, op, in, segments, 1) // warm-up
			bfNs = exper.MeasureCollective(nm, collective, cost.AlgoButterfly, op, in, 0, cfg.Reps)
			algNs = exper.MeasureCollective(nm, collective, a, op, in, segments, cfg.Reps)
			return bfNs, algNs, nil
		}
	})
}

// ValidateAlgosMP is ValidateAlgos across process boundaries: the same
// sweep, measured with mpbackend's "collective" jobs
// (exper.MeasureCollectiveMP), so the crossovers recorded are the ones
// the multi-process transport actually exhibits. fit must be the
// multi-process fit — its ts/tw drive the predicted side.
func ValidateAlgosMP(fit Fit, cfg Config) ([]AlgoValidation, error) {
	return validateAlgosWith(fit, cfg, func(p int) func(string, cost.Algo, int, int) (float64, float64, error) {
		return func(collective string, a cost.Algo, m, segments int) (bfNs, algNs float64, err error) {
			if bfNs, err = exper.MeasureCollectiveMP(collective, cost.AlgoButterfly, p, m, 0, cfg.Reps); err != nil {
				return 0, 0, err
			}
			algNs, err = exper.MeasureCollectiveMP(collective, a, p, m, segments, cfg.Reps)
			return bfNs, algNs, err
		}
	})
}

// validateAlgosWith is the transport-independent sweep: it walks every
// (collective, algorithm, group size), measures the applicable block
// sizes with the given measurer, and derives agreement and the
// predicted-vs-measured crossover.
func validateAlgosWith(fit Fit, cfg Config, measurer algoMeasurer) ([]AlgoValidation, error) {
	ps := cfg.AlgoPs
	if len(ps) == 0 {
		ps = []int{cfg.ValidateP}
	}
	ms := cfg.ValidateMs
	if len(ms) == 0 {
		return nil, fmt.Errorf("calib: algorithm validation needs a non-empty block-size sweep")
	}
	maxM := ms[len(ms)-1]
	var out []AlgoValidation
	for _, p := range ps {
		if p < 2 {
			return nil, fmt.Errorf("calib: algorithm validation needs p ≥ 2, got %d", p)
		}
		measureAt := measurer(p)
		base := cost.Params{Ts: fit.Ts, Tw: fit.Tw, P: p}
		for _, collective := range []string{cost.CollAllReduce, cost.CollReduce} {
			for _, a := range cost.Algos(collective)[1:] {
				measure := func(m int) (bfNs, algNs float64, err error) {
					pp := base
					pp.M = m
					return measureAt(collective, a, m, cost.PipelineSegments(pp))
				}
				v := AlgoValidation{Collective: collective, Algo: a, P: p}
				agree := 0
				for _, m := range ms {
					pp := base
					pp.M = m
					if !cost.Applicable(collective, a, pp) {
						continue
					}
					bfNs, algNs, err := measure(m)
					if err != nil {
						return nil, err
					}
					v.Ms = append(v.Ms, m)
					v.ButterflyNs = append(v.ButterflyNs, bfNs)
					v.AlgoNs = append(v.AlgoNs, algNs)
					c, _ := cost.AlgoCost(collective, a, pp)
					bf, _ := cost.AlgoCost(collective, cost.AlgoButterfly, pp)
					if (c < bf) == (algNs < bfNs) {
						agree++
					}
				}
				if len(v.Ms) == 0 {
					continue
				}
				v.Agreement = float64(agree) / float64(len(v.Ms))
				v.PredCross = cost.BreakEven(collective, a, base, maxM)
				won := make([]bool, len(v.Ms))
				for i := range v.Ms {
					won[i] = v.AlgoNs[i] < v.ButterflyNs[i]
				}
				v.MeasCross = exper.FirstWinCrossover(v.Ms, won, func(m int) bool {
					// A failed bisection probe counts as a loss; the
					// bracketing sweep points already measured fine, so the
					// crossover just degrades to sweep resolution.
					bfNs, algNs, err := measure(m)
					return err == nil && algNs < bfNs
				})
				v.AbsErr = v.PredCross - v.MeasCross
				if v.AbsErr < 0 {
					v.AbsErr = -v.AbsErr
				}
				denom := v.MeasCross
				if denom == 0 {
					denom = maxM
				}
				v.RelErr = float64(v.AbsErr) / float64(denom)
				out = append(out, v)
			}
		}
	}
	return out, nil
}

// FormatAlgoValidation renders the per-algorithm crossover table.
func FormatAlgoValidation(val []AlgoValidation) string {
	if len(val) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Algorithm crossovers (smallest m beating the butterfly, predicted with calibrated ts/tw) ==\n")
	fmt.Fprintf(&b, "%-10s %-13s %4s %12s %12s %8s %8s %7s\n",
		"Collective", "algorithm", "p", "predicted m", "measured m", "abs err", "rel err", "agree")
	for _, v := range val {
		pred, meas := fmt.Sprintf("%d", v.PredCross), fmt.Sprintf("%d", v.MeasCross)
		if v.PredCross == 0 {
			pred = "never"
		}
		if v.MeasCross == 0 {
			meas = "never"
		}
		fmt.Fprintf(&b, "%-10s %-13s %4d %12s %12s %8d %7.0f%% %6.0f%%\n",
			v.Collective, v.Algo, v.P, pred, meas, v.AbsErr, 100*v.RelErr, 100*v.Agreement)
	}
	return b.String()
}
