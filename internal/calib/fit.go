package calib

import (
	"fmt"
	"math"
)

// Fit is the result of calibrating the §4.1 cost model against native
// measurements: the three machine parameters in nanoseconds, their
// translation into the paper's unit system, and the goodness of fit.
//
// The regression model is the cost calculus itself: every probe run has
// known coefficients (a, b, c) such that the model predicts
//
//	time ≈ a·TsNs + b·TwNs + c·TcNs
//
// where a counts message start-ups, b word transfers and c elementary
// operations (see Coef). Solving the weighted least-squares system over
// all probe samples recovers the three parameters at once.
type Fit struct {
	// TsNs is the fitted message start-up time in nanoseconds — on the
	// native backend, the cost of a channel rendezvous plus the scheduler
	// wake-up of the receiving goroutine.
	TsNs float64 `json:"ts_ns"`
	// TwNs is the fitted per-word transfer time in nanoseconds. Native
	// sends transfer a block reference, not the words, so on shared
	// memory this is near zero — the calibration discovers that rather
	// than assuming it.
	TwNs float64 `json:"tw_ns"`
	// TcNs is the fitted cost of one elementary operation (one base
	// operator application to one word) in nanoseconds, including the
	// allocation the operator's value semantics implies.
	TcNs float64 `json:"tc_ns"`
	// Ts and Tw are the start-up and per-word times in the paper's unit
	// system — multiples of one elementary operation, i.e. TsNs/TcNs and
	// TwNs/TcNs (clamped at zero) — directly usable as cost.Params.
	Ts float64 `json:"ts"`
	Tw float64 `json:"tw"`
	// N is the number of samples the fit used.
	N int `json:"n"`
	// R2 is the coefficient of determination of the unweighted
	// residuals.
	R2 float64 `json:"r2"`
	// RelRMSE and MaxRelErr summarize the per-sample relative residuals
	// |predicted−measured|/measured: root mean square and worst case.
	RelRMSE   float64 `json:"rel_rmse"`
	MaxRelErr float64 `json:"max_rel_err"`
}

// Predict is the fitted model's time for a probe sample's coefficients,
// in nanoseconds.
func (f Fit) Predict(s Sample) float64 {
	return s.CoefTs*f.TsNs + s.CoefTw*f.TwNs + s.CoefC*f.TcNs
}

// FitSamples solves the weighted least-squares system over the samples
// and returns the fitted parameters with residual statistics. Samples
// are weighted by 1/measured-time, so the minimized quantity is the
// relative error — without this, the large-block samples (milliseconds)
// would drown the small-block ones (microseconds) that pin down TsNs.
//
// It fails if fewer than three linearly independent probe shapes are
// present (the normal matrix is then singular) or if the fitted
// elementary-operation cost is not positive (no unit to express Ts/Tw
// in).
func FitSamples(samples []Sample) (Fit, error) {
	if len(samples) < 3 {
		return Fit{}, fmt.Errorf("calib: need at least 3 samples, got %d", len(samples))
	}
	// Weighted normal equations A·β = b with weight 1/y per row.
	var a [3][3]float64
	var b [3]float64
	for _, s := range samples {
		if s.Ns <= 0 {
			return Fit{}, fmt.Errorf("calib: sample %s p=%d m=%d has non-positive time %g", s.Probe, s.P, s.M, s.Ns)
		}
		x := [3]float64{s.CoefTs, s.CoefTw, s.CoefC}
		w2 := 1 / (s.Ns * s.Ns)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += w2 * x[i] * x[j]
			}
			b[i] += w2 * x[i] * s.Ns
		}
	}
	beta, err := solve3(a, b)
	if err != nil {
		return Fit{}, err
	}
	f := Fit{TsNs: beta[0], TwNs: beta[1], TcNs: beta[2], N: len(samples)}
	if f.TcNs <= 0 {
		return Fit{}, fmt.Errorf("calib: fitted elementary-operation cost %.3g ns is not positive; the probe set cannot express ts/tw in operation units", f.TcNs)
	}
	f.Ts = math.Max(f.TsNs, 0) / f.TcNs
	f.Tw = math.Max(f.TwNs, 0) / f.TcNs

	// Residual statistics.
	var ss, tot, mean, rel2 float64
	for _, s := range samples {
		mean += s.Ns
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		r := f.Predict(s) - s.Ns
		ss += r * r
		tot += (s.Ns - mean) * (s.Ns - mean)
		re := math.Abs(r) / s.Ns
		rel2 += re * re
		if re > f.MaxRelErr {
			f.MaxRelErr = re
		}
	}
	if tot > 0 {
		f.R2 = 1 - ss/tot
	}
	f.RelRMSE = math.Sqrt(rel2 / float64(len(samples)))
	return f, nil
}

// solve3 solves the 3×3 linear system by Gaussian elimination with
// partial pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-18 {
			return [3]float64{}, fmt.Errorf("calib: degenerate probe design — need probes that separate start-up, transfer and compute costs")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 3; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}
