package calib

import (
	"math"
	"math/rand"
	"testing"
)

// synthetic builds a full probe sample set from known machine
// parameters: every probe shape at every (p, m), timed exactly by the
// model (plus optional multiplicative noise). workers ≤ 0 generates the
// paper's fully parallel coefficients.
func synthetic(tsNs, twNs, tcNs float64, ps, ms []int, workers int, noise float64, rng *rand.Rand) []Sample {
	var out []Sample
	add := func(probe string, p, m, rounds int) {
		s := Sample{Probe: probe, P: p, M: m, Rounds: rounds}
		s.CoefTs, s.CoefTw, s.CoefC = Coef(probe, p, m, rounds, workers)
		s.Ns = s.CoefTs*tsNs + s.CoefTw*twNs + s.CoefC*tcNs
		if noise > 0 {
			s.Ns *= 1 + noise*(2*rng.Float64()-1)
		}
		out = append(out, s)
	}
	for _, m := range ms {
		add(ProbePingPong, 2, m, 128)
		add(ProbeCompute, 1, m, 2048)
	}
	for _, p := range ps {
		for _, m := range ms {
			add(ProbeBcast, p, m, 32)
			add(ProbeReduce, p, m, 32)
			add(ProbeScan, p, m, 32)
		}
	}
	return out
}

func TestFitRecoversExactParameters(t *testing.T) {
	cases := []struct {
		name    string
		ps      []int
		workers int
	}{
		{"pow2", []int{2, 4, 8, 16}, 0},
		{"nonpow2", []int{3, 5, 6, 7}, 0},
		{"pow2-serialized", []int{2, 4, 8}, 2},
		{"nonpow2-serialized", []int{3, 6, 12}, 4},
	}
	ts, tw, tc := 800.0, 1.25, 3.5
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			samples := synthetic(ts, tw, tc, c.ps, []int{1, 8, 64, 512, 4096}, c.workers, 0, nil)
			fit, err := FitSamples(samples)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range []struct {
				name      string
				got, want float64
			}{
				{"TsNs", fit.TsNs, ts},
				{"TwNs", fit.TwNs, tw},
				{"TcNs", fit.TcNs, tc},
				{"Ts", fit.Ts, ts / tc},
				{"Tw", fit.Tw, tw / tc},
			} {
				if rel := math.Abs(g.got-g.want) / g.want; rel > 1e-6 {
					t.Errorf("%s = %g, want %g (rel err %g)", g.name, g.got, g.want, rel)
				}
			}
			if fit.MaxRelErr > 1e-9 || fit.R2 < 1-1e-9 {
				t.Errorf("exact data should fit exactly: R2=%g maxRelErr=%g", fit.R2, fit.MaxRelErr)
			}
		})
	}
}

func TestFitRecoversUnderNoise(t *testing.T) {
	ts, tw, tc := 600.0, 0.8, 4.0
	for _, ps := range [][]int{{2, 4, 8}, {3, 5, 6, 7}} {
		rng := rand.New(rand.NewSource(7))
		samples := synthetic(ts, tw, tc, ps, []int{1, 4, 16, 64, 256, 1024, 4096}, 0, 0.05, rng)
		fit, err := FitSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		// ±5% multiplicative noise across ~80 samples: parameters must
		// come back within 15%.
		for _, g := range []struct {
			name      string
			got, want float64
		}{
			{"TsNs", fit.TsNs, ts},
			{"TwNs", fit.TwNs, tw},
			{"TcNs", fit.TcNs, tc},
		} {
			if rel := math.Abs(g.got-g.want) / g.want; rel > 0.15 {
				t.Errorf("ps=%v: %s = %g, want %g within 15%%", ps, g.name, g.got, g.want)
			}
		}
		if fit.MaxRelErr > 0.06 {
			t.Errorf("ps=%v: max rel err %g exceeds the injected noise", ps, fit.MaxRelErr)
		}
	}
}

func TestFitRejectsDegenerateDesign(t *testing.T) {
	// Only ping-pong samples: the compute column is identically zero, so
	// the three parameters are not separable.
	var samples []Sample
	for _, m := range []int{1, 16, 256} {
		s := Sample{Probe: ProbePingPong, P: 2, M: m, Rounds: 8}
		s.CoefTs, s.CoefTw, s.CoefC = Coef(ProbePingPong, 2, m, 8, 0)
		s.Ns = s.CoefTs*100 + s.CoefTw*2
		samples = append(samples, s)
	}
	if _, err := FitSamples(samples); err == nil {
		t.Fatal("degenerate design must not fit")
	}
}

func TestFitRejectsNonPositiveUnit(t *testing.T) {
	// Consistent samples generated with a negative per-op cost (start-up
	// large enough that every run time stays positive): the system
	// solves, but there is no unit to express ts/tw in. The compute
	// probe is excluded — bcast/reduce/scan alone already separate the
	// three columns.
	var samples []Sample
	for _, s := range synthetic(10000, 1, -2, []int{2, 4}, []int{1, 16, 64}, 0, 0, nil) {
		if s.Probe != ProbeCompute && s.Probe != ProbePingPong {
			samples = append(samples, s)
		}
	}
	if _, err := FitSamples(samples); err == nil {
		t.Fatal("non-positive fitted unit must be rejected")
	}
}

func TestFitNeedsSamples(t *testing.T) {
	if _, err := FitSamples(nil); err == nil {
		t.Fatal("empty sample set must not fit")
	}
}

func TestCoefReducesToPaperModel(t *testing.T) {
	// With unlimited workers the coefficients are the §4.1 critical
	// path: log p messages, log p·m words, {0, 1, 2}·log p·m operations.
	for _, c := range []struct {
		probe   string
		opsFrac float64
	}{{ProbeBcast, 0}, {ProbeReduce, 1}, {ProbeScan, 2}} {
		a, b, ops := Coef(c.probe, 8, 16, 1, 0)
		if a != 3 || b != 48 || ops != c.opsFrac*48 {
			t.Errorf("%s: coef = (%g, %g, %g), want (3, 48, %g)", c.probe, a, b, ops, c.opsFrac*48)
		}
	}
	// Non-power-of-two group sizes round the phase count up.
	if a, _, _ := Coef(ProbeBcast, 5, 1, 1, 0); a != 3 {
		t.Errorf("p=5 should have ceil(log2 5) = 3 phases, got %g", a)
	}
	// Serialization never reduces a coefficient below the critical path.
	aPar, _, cPar := Coef(ProbeScan, 8, 16, 1, 0)
	aSer, _, cSer := Coef(ProbeScan, 8, 16, 1, 1)
	if aSer < aPar || cSer < cPar {
		t.Errorf("serialized coefficients (%g, %g) fell below the critical path (%g, %g)", aSer, cSer, aPar, cPar)
	}
}
