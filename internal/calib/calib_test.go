package calib

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMeasureProducesFittableSamples(t *testing.T) {
	cfg := QuickConfig()
	samples := Measure(cfg)
	if len(samples) == 0 {
		t.Fatal("no samples measured")
	}
	probes := map[string]bool{}
	for _, s := range samples {
		probes[s.Probe] = true
		if s.Ns <= 0 {
			t.Errorf("%s p=%d m=%d: measured %g ns, want > 0", s.Probe, s.P, s.M, s.Ns)
		}
		if s.CoefTs < 0 || s.CoefTw < 0 || s.CoefC < 0 {
			t.Errorf("%s p=%d m=%d: negative coefficient", s.Probe, s.P, s.M)
		}
	}
	for _, p := range []string{ProbePingPong, ProbeCompute, ProbeBcast, ProbeReduce, ProbeScan} {
		if !probes[p] {
			t.Errorf("probe %s missing from the sample set", p)
		}
	}
	fit, err := FitSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.TcNs <= 0 || fit.Ts < 0 || fit.Tw < 0 {
		t.Errorf("implausible fit: %+v", fit)
	}
}

func TestValidateCoversEveryRule(t *testing.T) {
	cfg := QuickConfig()
	fit := Fit{TsNs: 600, TwNs: 0, TcNs: 4, Ts: 150, Tw: 0}
	val, err := Validate(fit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ValidateP = 4 is a power of two, so all 11 rules participate.
	if len(val) != 11 {
		t.Fatalf("got %d validations, want 11", len(val))
	}
	maxM := cfg.ValidateMs[len(cfg.ValidateMs)-1]
	for _, v := range val {
		if len(v.LhsNs) != len(cfg.ValidateMs) || len(v.RhsNs) != len(cfg.ValidateMs) {
			t.Errorf("%s: sweep has %d/%d points, want %d", v.Rule, len(v.LhsNs), len(v.RhsNs), len(cfg.ValidateMs))
		}
		if v.PredCross < 0 || v.PredCross > maxM || v.MeasCross < 0 || v.MeasCross > maxM {
			t.Errorf("%s: crossovers (%d, %d) out of [0, %d]", v.Rule, v.PredCross, v.MeasCross, maxM)
		}
		if v.Agreement < 0 || v.Agreement > 1 {
			t.Errorf("%s: agreement %g out of [0, 1]", v.Rule, v.Agreement)
		}
		if v.LHS == "" || v.RHS == "" || v.Class == "" {
			t.Errorf("%s: record is not self-describing: %+v", v.Rule, v)
		}
	}
}

func TestValidateSkipsLocalRulesOnNonPow2(t *testing.T) {
	cfg := QuickConfig()
	cfg.ValidateP = 6
	val, err := Validate(Fit{Ts: 100, TcNs: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range val {
		if v.Class == "Local" {
			t.Errorf("Local rule %s validated on p=6", v.Rule)
		}
	}
	if len(val) != 7 {
		t.Errorf("got %d validations on p=6, want the 7 non-Local rules", len(val))
	}
}

func TestRunAndReportRoundTrip(t *testing.T) {
	rep, err := Run(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "native" || rep.Reps != QuickConfig().Reps {
		t.Errorf("report is not self-describing: backend=%q reps=%d", rep.Backend, rep.Reps)
	}
	path := filepath.Join(t.TempDir(), "calib.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fit != rep.Fit {
		t.Errorf("fit did not round-trip: %+v != %+v", back.Fit, rep.Fit)
	}
	if len(back.Samples) != len(rep.Samples) || len(back.Validation) != len(rep.Validation) {
		t.Errorf("report lost records: %d/%d samples, %d/%d validations",
			len(back.Samples), len(rep.Samples), len(back.Validation), len(rep.Validation))
	}
	text := FormatReport(rep)
	for _, want := range []string{"Calibration", "fitted (ns)", "model units", "fit quality", "Break-even validation", "SR2-Reduction"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted report lacks %q:\n%s", want, text)
		}
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must be an error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Error("malformed JSON must be an error")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(empty); err == nil {
		t.Error("a report without a usable fit must be an error")
	}
}
