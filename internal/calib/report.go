package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Report is the machine-readable calibration artifact (CALIB_native.json):
// the backend and repetition discipline that produced it, the fitted
// parameters with residuals, every raw probe sample, and the per-rule
// break-even validation. A report is self-describing — everything needed
// to reproduce or audit the numbers is in the file.
type Report struct {
	// Backend names the measurement backend ("native").
	Backend string `json:"backend"`
	// Reps is the repetitions per measurement (minimum taken) and
	// Rounds the base in-run iteration count.
	Reps   int `json:"reps"`
	Rounds int `json:"rounds"`
	// Fit is the fitted parameter set.
	Fit Fit `json:"fit"`
	// Samples are the raw probe observations the fit used.
	Samples []Sample `json:"samples"`
	// Validation is the per-rule predicted-vs-measured break-even
	// record.
	Validation []RuleValidation `json:"validation"`
	// Algos is the per-algorithm predicted-vs-measured crossover record
	// of the collective portfolio (see ValidateAlgos).
	Algos []AlgoValidation `json:"algos,omitempty"`
	// MultiProc is the multi-process transport's own fit, samples and
	// crossover validation (see RunMP) — the section where tw > 0.
	MultiProc *MPSection `json:"multiproc,omitempty"`
}

// Run performs the full calibration pipeline — measure, fit, validate —
// and assembles the report.
func Run(cfg Config) (Report, error) {
	fit, samples, err := Calibrate(cfg)
	if err != nil {
		return Report{}, err
	}
	val, err := Validate(fit, cfg)
	if err != nil {
		return Report{}, err
	}
	algos, err := ValidateAlgos(fit, cfg)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Backend:    "native",
		Reps:       cfg.Reps,
		Rounds:     cfg.Rounds,
		Fit:        fit,
		Samples:    samples,
		Validation: val,
		Algos:      algos,
	}, nil
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by WriteReport. CLI front-ends use
// it to feed the calibrated Ts/Tw back into the cost-guided optimizer
// (-params-file).
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("calib: %s is not a calibration report: %v", path, err)
	}
	if r.Fit.TcNs <= 0 {
		return Report{}, fmt.Errorf("calib: %s has no usable fit (tc_ns = %g)", path, r.Fit.TcNs)
	}
	return r, nil
}

// FormatReport renders the fit and validation as aligned text — the
// human half of collbench -calibrate.
func FormatReport(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Calibration (%s backend, reps=%d, %d samples) ==\n", r.Backend, r.Reps, len(r.Samples))
	fmt.Fprintf(&b, "fitted (ns):   Ts = %.1f   Tw = %.4f   Tc = %.3f\n", r.Fit.TsNs, r.Fit.TwNs, r.Fit.TcNs)
	fmt.Fprintf(&b, "model units:   ts = %.1f    tw = %.4f   (1 unit = one elementary op = %.3f ns)\n",
		r.Fit.Ts, r.Fit.Tw, r.Fit.TcNs)
	fmt.Fprintf(&b, "fit quality:   R² = %.4f   rel RMSE = %.1f%%   max rel err = %.1f%%\n",
		r.Fit.R2, 100*r.Fit.RelRMSE, 100*r.Fit.MaxRelErr)
	if len(r.Validation) > 0 {
		b.WriteByte('\n')
		b.WriteString(FormatValidation(r.Validation))
	}
	if len(r.Algos) > 0 {
		b.WriteByte('\n')
		b.WriteString(FormatAlgoValidation(r.Algos))
	}
	if mp := r.MultiProc; mp != nil {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "== Multi-process calibration (one OS process per rank, reps=%d, %d samples) ==\n",
			mp.Reps, len(mp.Samples))
		fmt.Fprintf(&b, "fitted (ns):   Ts = %.1f   Tw = %.4f   Tc = %.3f\n", mp.Fit.TsNs, mp.Fit.TwNs, mp.Fit.TcNs)
		fmt.Fprintf(&b, "model units:   ts = %.1f    tw = %.4f   (1 unit = one elementary op = %.3f ns)\n",
			mp.Fit.Ts, mp.Fit.Tw, mp.Fit.TcNs)
		fmt.Fprintf(&b, "fit quality:   R² = %.4f   rel RMSE = %.1f%%   max rel err = %.1f%%\n",
			mp.Fit.R2, 100*mp.Fit.RelRMSE, 100*mp.Fit.MaxRelErr)
		if len(mp.Algos) > 0 {
			b.WriteByte('\n')
			b.WriteString(FormatAlgoValidation(mp.Algos))
		}
	}
	return b.String()
}

// FormatValidation renders the per-rule break-even table.
func FormatValidation(val []RuleValidation) string {
	var b strings.Builder
	if len(val) == 0 {
		return ""
	}
	cap := val[0].Ms[len(val[0].Ms)-1]
	fmt.Fprintf(&b, "== Break-even validation (p=%d, sweep m=%d..%d, predicted with calibrated ts/tw) ==\n",
		val[0].P, val[0].Ms[0], cap)
	fmt.Fprintf(&b, "%-14s %12s %12s %8s %8s %7s\n", "Rule", "predicted m", "measured m", "abs err", "rel err", "agree")
	for _, v := range val {
		pred, meas := fmt.Sprintf("%d", v.PredCross), fmt.Sprintf("%d", v.MeasCross)
		if v.PredCross == cap {
			pred += " (cap)"
		}
		if v.MeasCross == cap {
			meas += " (cap)"
		}
		fmt.Fprintf(&b, "%-14s %12s %12s %8d %7.0f%% %6.0f%%\n",
			v.Rule, pred, meas, v.AbsErr, 100*v.RelErr, 100*v.Agreement)
	}
	return b.String()
}
