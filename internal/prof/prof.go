// Package prof wires the standard runtime/pprof profiles into the CLIs:
// collbench and collopt take -cpuprofile/-memprofile flags and hand the
// paths here. The profiles are the intended companions of the native
// backend's wall-clock numbers — `go tool pprof` over a collbench run
// shows where the hot path actually spends its time and, via the heap
// profile, whether the zero-allocation kernels are really being hit.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile. It returns a
// stop function that must run before the process exits — it finishes the
// CPU profile and takes the heap snapshot (after a GC, so the snapshot
// shows live retention rather than garbage awaiting collection).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
