package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalarWords(t *testing.T) {
	if got := Scalar(3).Words(); got != 1 {
		t.Fatalf("Scalar.Words() = %d, want 1", got)
	}
}

func TestVecWords(t *testing.T) {
	v := Vec{1, 2, 3, 4, 5}
	if got := v.Words(); got != 5 {
		t.Fatalf("Vec.Words() = %d, want 5", got)
	}
}

func TestTupleWords(t *testing.T) {
	tu := Tuple{Vec{1, 2, 3}, Vec{4, 5, 6}}
	if got := tu.Words(); got != 6 {
		t.Fatalf("Tuple.Words() = %d, want 6", got)
	}
}

func TestUndefWords(t *testing.T) {
	if got := (Undef{}).Words(); got != 0 {
		t.Fatalf("Undef.Words() = %d, want 0", got)
	}
}

func TestVecClone(t *testing.T) {
	v := Vec{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original vector")
	}
}

func TestPairTripleQuadruple(t *testing.T) {
	a := Scalar(7)
	if p := Pair(a).(Tuple); len(p) != 2 || p[0] != a || p[1] != a {
		t.Fatalf("Pair(%v) = %v", a, p)
	}
	if p := Triple(a).(Tuple); len(p) != 3 || p[2] != a {
		t.Fatalf("Triple(%v) = %v", a, p)
	}
	if p := Quadruple(a).(Tuple); len(p) != 4 || p[3] != a {
		t.Fatalf("Quadruple(%v) = %v", a, p)
	}
}

func TestFirst(t *testing.T) {
	if got := First(Tuple{Scalar(1), Scalar(2)}); !Equal(got, Scalar(1)) {
		t.Fatalf("First(pair) = %v, want 1", got)
	}
	if got := First(Tuple{Scalar(9), Scalar(2), Scalar(3), Scalar(4)}); !Equal(got, Scalar(9)) {
		t.Fatalf("First(quadruple) = %v, want 9", got)
	}
	// π₁ on a non-tuple is the identity.
	if got := First(Scalar(5)); !Equal(got, Scalar(5)) {
		t.Fatalf("First(scalar) = %v, want 5", got)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Scalar(1), Scalar(1), true},
		{Scalar(1), Scalar(2), false},
		{Vec{1, 2}, Vec{1, 2}, true},
		{Vec{1, 2}, Vec{1, 3}, false},
		{Vec{1, 2}, Vec{1, 2, 3}, false},
		{Vec{1}, Scalar(1), false},
		{Tuple{Scalar(1), Scalar(2)}, Tuple{Scalar(1), Scalar(2)}, true},
		{Tuple{Scalar(1), Scalar(2)}, Tuple{Scalar(1), Scalar(3)}, false},
		{Tuple{Scalar(1)}, Tuple{Scalar(1), Scalar(1)}, false},
		{Undef{}, Undef{}, true},
		{Undef{}, Scalar(0), false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualModuloUndef(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Undef{}, Scalar(5), true},
		{Scalar(5), Undef{}, true},
		{Tuple{Scalar(1), Undef{}}, Tuple{Scalar(1), Scalar(7)}, true},
		{Tuple{Scalar(2), Undef{}}, Tuple{Scalar(1), Scalar(7)}, false},
		{Tuple{Undef{}, Undef{}}, Tuple{Scalar(1), Scalar(7)}, true},
		{Scalar(1), Scalar(1), true},
		{Scalar(1), Scalar(2), false},
	}
	for _, c := range cases {
		if got := EqualModuloUndef(c.a, c.b); got != c.want {
			t.Errorf("EqualModuloUndef(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsUndef(t *testing.T) {
	if !IsUndef(Undef{}) {
		t.Error("IsUndef(Undef{}) = false")
	}
	if !IsUndef(Tuple{Scalar(1), Undef{}}) {
		t.Error("IsUndef(tuple with undef) = false")
	}
	if IsUndef(Tuple{Scalar(1), Scalar(2)}) {
		t.Error("IsUndef(clean tuple) = true")
	}
	if IsUndef(Scalar(0)) {
		t.Error("IsUndef(scalar) = true")
	}
}

func TestEqualLists(t *testing.T) {
	a := []Value{Scalar(1), Scalar(2)}
	b := []Value{Scalar(1), Scalar(2)}
	if !EqualLists(a, b) {
		t.Error("EqualLists on equal lists = false")
	}
	if EqualLists(a, b[:1]) {
		t.Error("EqualLists on different lengths = true")
	}
	c := []Value{Scalar(1), Undef{}}
	if EqualLists(a, c) {
		t.Error("EqualLists should not ignore Undef")
	}
	if !EqualListsModuloUndef(a, c) {
		t.Error("EqualListsModuloUndef should ignore Undef")
	}
}

// randomVec produces small integral vectors: integral float64 arithmetic
// is exact, so equality checks are meaningful.
func randomVec(r *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = float64(r.Intn(21) - 10)
	}
	return v
}

func TestQuickPairFirstIdentity(t *testing.T) {
	f := func(x int16) bool {
		s := Scalar(x)
		return Equal(First(Pair(s)), s) &&
			Equal(First(Triple(s)), s) &&
			Equal(First(Quadruple(s)), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexiveSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Tuple{randomVec(r, 4), randomVec(r, 4)}
		b := Tuple{randomVec(r, 4), randomVec(r, 4)}
		if !Equal(a, a) {
			t.Fatalf("Equal not reflexive on %v", a)
		}
		if Equal(a, b) != Equal(b, a) {
			t.Fatalf("Equal not symmetric on %v, %v", a, b)
		}
	}
}
