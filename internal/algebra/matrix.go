package algebra

import (
	"fmt"
	"strings"
)

// Mat is a dense row-major matrix value. Matrices make scan and comcast
// applicable to linear recurrences — the setting of the paper's
// reference [20] (linear list recursion in parallel): the k-th term of
// x_{i+1} = A·x_i is read off A^k, and A^k for all k is exactly
// bcast ; scan(matmul), which rule BS-Comcast fuses (matrix
// multiplication is associative but not commutative, so only the
// associativity-based rules apply).
type Mat struct {
	// R and C are the row and column counts.
	R, C int
	// Data holds the entries row-major; len(Data) == R·C.
	Data []float64
}

// NewMat builds an R×C matrix from row-major entries.
func NewMat(r, c int, data ...float64) Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("algebra: %d entries for a %d×%d matrix", len(data), r, c))
	}
	return Mat{R: r, C: c, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) Mat {
	m := Mat{R: n, C: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the (i, j) entry.
func (m Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Clone returns a copy with its own backing array.
func (m Mat) Clone() Mat {
	data := make([]float64, len(m.Data))
	copy(data, m.Data)
	return Mat{R: m.R, C: m.C, Data: data}
}

// Words reports the entry count.
func (m Mat) Words() int { return m.R * m.C }

func (m Mat) String() string {
	rows := make([]string, m.R)
	for i := 0; i < m.R; i++ {
		cells := make([]string, m.C)
		for j := 0; j < m.C; j++ {
			cells[j] = fmt.Sprintf("%g", m.At(i, j))
		}
		rows[i] = strings.Join(cells, " ")
	}
	return "[" + strings.Join(rows, "; ") + "]"
}

// MulMat multiplies two conformable matrices.
func (m Mat) MulMat(n Mat) Mat {
	if m.C != n.R {
		panic(fmt.Sprintf("algebra: multiplying %d×%d by %d×%d", m.R, m.C, n.R, n.C))
	}
	out := Mat{R: m.R, C: n.C, Data: make([]float64, m.R*n.C)}
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.C; j++ {
				out.Data[i*n.C+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// MulVec applies the matrix to a vector of length C.
func (m Mat) MulVec(v Vec) Vec {
	if len(v) != m.C {
		panic(fmt.Sprintf("algebra: %d×%d matrix applied to %d-vector", m.R, m.C, len(v)))
	}
	out := make(Vec, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out[i] += m.At(i, j) * v[j]
		}
	}
	return out
}

// MatMul is matrix multiplication as a collective base operator:
// associative, not commutative. The per-element cost approximates the 2n
// multiply-adds per output entry of an n×n product with the inner
// dimension of the left operand.
var MatMul = &Op{
	Name:  "matmul",
	Cost:  4, // 2·n per element at the n = 2 matrices the examples use
	Arity: 1,
	Fn: func(a, b Value) Value {
		if IsUndef(a) || IsUndef(b) {
			return Undef{}
		}
		x, ok := a.(Mat)
		if !ok {
			panic(fmt.Sprintf("algebra: matmul applied to %T", a))
		}
		y, ok := b.(Mat)
		if !ok {
			panic(fmt.Sprintf("algebra: matmul applied to %T", b))
		}
		return x.MulMat(y)
	},
}

// EqualMat reports exact equality of two matrices.
func EqualMat(a, b Mat) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
