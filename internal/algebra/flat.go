package algebra

import "fmt"

// FlatTuple is the unboxed representation of a width-W tuple whose
// components are equal-length blocks: one backing []float64 holding the W
// components contiguously. It is the working form the derived operators
// (op_sr2, op_ss, …) combine in the hot path — a single buffer the
// in-place kernels can fill without allocating a Tuple cell and a fresh
// Vec per component, per application.
//
// A FlatTuple is interchangeable with the boxed Tuple it represents:
// Boxed converts back (the component Vecs are views into the backing
// array, not copies), and the Equal/IsUndef/First helpers of this package
// treat the two representations as the same value. By construction a
// FlatTuple never holds Undef — collectives that poison components (the
// Solo case of scan_balanced) switch back to the boxed form first.
type FlatTuple struct {
	// W is the tuple width (number of components).
	W int
	// Data holds the W components contiguously: component i is
	// Data[i*m : (i+1)*m] with m = len(Data)/W.
	Data []float64
	// moved marks a tuple whose backing storage has been transferred to
	// another rank through an ownership-moving send (coll.Mover): the
	// sender must not observe the value again, and the accessors enforce
	// that by panicking. The receiver clears the flag on adoption — it is
	// the new owner. See docs/PERF.md, "Zero-copy ownership rules".
	moved bool
}

// MarkMoved poisons the tuple after an ownership-transferring send: any
// later access by the old owner panics. Transports set it; collectives
// never do directly.
func (t *FlatTuple) MarkMoved() { t.moved = true }

// MarkOwned clears the moved poison on adoption by the receiving rank
// (or when an arena re-issues a reclaimed buffer as fresh scratch).
func (t *FlatTuple) MarkOwned() { t.moved = false }

// IsMoved reports whether the tuple's storage has been moved away.
func (t *FlatTuple) IsMoved() bool { return t.moved }

// mustOwn panics when the tuple has been moved away — the double-use
// guard of the ownership protocol.
func (t *FlatTuple) mustOwn() {
	if t.moved {
		panic("algebra: use of a FlatTuple after its ownership was moved by Send")
	}
}

// NewFlatTuple allocates a flat tuple of w components of m words each.
func NewFlatTuple(w, m int) *FlatTuple {
	if w < 1 || m < 1 {
		panic(fmt.Sprintf("algebra: flat tuple needs w ≥ 1, m ≥ 1, got %d×%d", w, m))
	}
	return &FlatTuple{W: w, Data: make([]float64, w*m)}
}

// M is the component block length.
func (t *FlatTuple) M() int { return len(t.Data) / t.W }

// Comp is component i as a Vec view into the backing array (no copy).
func (t *FlatTuple) Comp(i int) Vec {
	t.mustOwn()
	m := t.M()
	return Vec(t.Data[i*m : (i+1)*m : (i+1)*m])
}

// Words is the total size: the sum over the component blocks.
func (t *FlatTuple) Words() int { return len(t.Data) }

func (t *FlatTuple) String() string { return t.Tuple().String() }

// Tuple is the boxed form: a Tuple of Vec views into the backing array.
func (t *FlatTuple) Tuple() Tuple {
	t.mustOwn()
	out := make(Tuple, t.W)
	for i := 0; i < t.W; i++ {
		out[i] = t.Comp(i)
	}
	return out
}

// Clone returns an independent copy with its own backing array.
func (t *FlatTuple) Clone() *FlatTuple {
	t.mustOwn()
	data := make([]float64, len(t.Data))
	copy(data, t.Data)
	return &FlatTuple{W: t.W, Data: data}
}

// Boxed returns v with a flat tuple expanded to the boxed Tuple form
// (a width-1 flat tuple is simply its single Vec — this algebra has no
// 1-tuples); every other value passes through unchanged. It is the
// normalization point where the zero-allocation working representation
// rejoins the reference semantics.
func Boxed(v Value) Value {
	if ft, ok := v.(*FlatTuple); ok {
		if ft.W == 1 {
			return ft.Comp(0)
		}
		return ft.Tuple()
	}
	return v
}

// CanFlatten reports whether t has the shape FlatTuple represents — every
// component a Vec of the same non-zero length — returning the width and
// block length.
func CanFlatten(t Tuple) (w, m int, ok bool) {
	if len(t) == 0 {
		return 0, 0, false
	}
	for i, c := range t {
		v, isVec := c.(Vec)
		if !isVec || len(v) == 0 {
			return 0, 0, false
		}
		if i == 0 {
			m = len(v)
		} else if len(v) != m {
			return 0, 0, false
		}
	}
	return len(t), m, true
}

// FlattenInto copies the components of t into dst, which must have been
// sized by CanFlatten (dst.W == len(t), dst.M() == the common component
// length). It returns dst.
func (dst *FlatTuple) FlattenInto(t Tuple) *FlatTuple {
	dst.mustOwn()
	m := dst.M()
	if dst.W != len(t) {
		panic(fmt.Sprintf("algebra: flattening %d-tuple into width-%d flat tuple", len(t), dst.W))
	}
	for i, c := range t {
		v := c.(Vec)
		if len(v) != m {
			panic(fmt.Sprintf("algebra: flattening component of %d words into %d-word block", len(v), m))
		}
		copy(dst.Data[i*m:(i+1)*m], v)
	}
	return dst
}
