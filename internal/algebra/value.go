// Package algebra provides the value model and operator algebra underlying
// the collective-operation framework of Gorlatch, Wedler and Lengauer
// (IPPS'99): scalar and vector values, tuple values produced by the
// auxiliary-variable technique (pair/triple/quadruple, §2.3 of the paper),
// binary operators with algebraic-property tracking, and the derived
// operators op_sr2, op_sr, op_ss, op_br, op_bsr2, op_bsr and the
// comcast e/o function pairs defined by the optimization rules of §3.
package algebra

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is one processor's datum: the element of the global list that the
// functional framework of §2.2 manipulates. Words reports the size of the
// value in machine words; it determines message cost (m in the paper's
// cost model) when the value is communicated.
type Value interface {
	// Words is the size of the value in machine words.
	Words() int
	// String renders the value for traces and error messages.
	String() string
}

// Scalar is a single-word value. Integral float64 values are exact, which
// the test-suite relies on for verifying semantic equalities.
type Scalar float64

// Words reports the size of a scalar: one word.
func (Scalar) Words() int { return 1 }

func (s Scalar) String() string {
	return strconv.FormatFloat(float64(s), 'g', -1, 64)
}

// Vec is a block of m words, the per-processor block the paper calls a
// "segment of length m".
type Vec []float64

// Words reports the block length m.
func (v Vec) Words() int { return len(v) }

func (v Vec) String() string {
	if len(v) > 8 {
		return fmt.Sprintf("vec[%d]", len(v))
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Clone returns a copy of the vector, so destructive consumers cannot
// alias the original block.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Tuple is the auxiliary-variable construction of §2.3: a fixed-width
// bundle of component values. Pair, Triple and Quadruple build the widths
// used by the optimization rules.
type Tuple []Value

// Words is the total size of all components.
func (t Tuple) Words() int {
	n := 0
	for _, v := range t {
		n += v.Words()
	}
	return n
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Undef is the undetermined value the paper writes as "_": the don't-care
// slots of bcast inputs, the poisoned tuple components of scan_balanced on
// non-power-of-two machines (§3.3), and the non-root results of iter
// (§3.5). Any operator application involving Undef yields Undef.
type Undef struct{}

// Words reports zero: an undetermined value costs nothing to ship because
// it never is shipped — it only marks slots whose content is irrelevant.
func (Undef) Words() int { return 0 }

func (Undef) String() string { return "_" }

// IsUndef reports whether v is the undetermined value, or a tuple any of
// whose components is undetermined. A FlatTuple is never undetermined.
func IsUndef(v Value) bool {
	switch x := v.(type) {
	case Undef:
		return true
	case Tuple:
		for _, c := range x {
			if IsUndef(c) {
				return true
			}
		}
	}
	return false
}

// Pair duplicates a value into a 2-tuple: pair a = (a, a). Equation (9).
func Pair(a Value) Value { return Tuple{a, a} }

// Triple duplicates a value into a 3-tuple: triple a = (a, a, a).
// Equation (10).
func Triple(a Value) Value { return Tuple{a, a, a} }

// Quadruple duplicates a value into a 4-tuple: quadruple a = (a, a, a, a).
// Equation (11).
func Quadruple(a Value) Value { return Tuple{a, a, a, a} }

// First extracts the first component of a tuple (the paper's projection
// π₁, equation (12)). Applied to a non-tuple it is the identity, mirroring
// the paper's overloading of π₁ over tuples of any width.
func First(a Value) Value {
	if ft, ok := a.(*FlatTuple); ok {
		return ft.Comp(0)
	}
	if t, ok := a.(Tuple); ok && len(t) > 0 {
		return t[0]
	}
	return a
}

// Equal reports deep equality of two values. Undef equals only Undef. A
// FlatTuple equals the boxed Tuple it represents: the two are the same
// value in different representations.
func Equal(a, b Value) bool {
	a, b = Boxed(a), Boxed(b)
	switch x := a.(type) {
	case Undef:
		_, ok := b.(Undef)
		return ok
	case Scalar:
		y, ok := b.(Scalar)
		return ok && x == y
	case Vec:
		y, ok := b.(Vec)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case Tuple:
		y, ok := b.(Tuple)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case Mat:
		y, ok := b.(Mat)
		return ok && EqualMat(x, y)
	}
	return false
}

// EqualModuloUndef reports equality of two values ignoring positions where
// either side is undetermined. The optimization rules only guarantee the
// determined parts of their results, so rule verification compares with
// this relaxed equality.
func EqualModuloUndef(a, b Value) bool {
	a, b = Boxed(a), Boxed(b)
	if IsUndef(a) || IsUndef(b) {
		if ta, ok := a.(Tuple); ok {
			if tb, ok := b.(Tuple); ok && len(ta) == len(tb) {
				for i := range ta {
					if !EqualModuloUndef(ta[i], tb[i]) {
						return false
					}
				}
				return true
			}
		}
		if _, ok := a.(Undef); ok {
			return true
		}
		if _, ok := b.(Undef); ok {
			return true
		}
	}
	return Equal(a, b)
}

// EqualApproxModuloUndef is EqualModuloUndef with a relative tolerance on
// numeric components: reassociating floating-point reductions (as the
// balanced collectives do) can flip low-order bits even though the
// algebraic equality is exact, and verification over random inputs must
// not report such rounding as a semantic difference.
func EqualApproxModuloUndef(a, b Value, relTol float64) bool {
	a, b = Boxed(a), Boxed(b)
	if IsUndef(a) || IsUndef(b) {
		if ta, ok := a.(Tuple); ok {
			if tb, ok := b.(Tuple); ok && len(ta) == len(tb) {
				for i := range ta {
					if !EqualApproxModuloUndef(ta[i], tb[i], relTol) {
						return false
					}
				}
				return true
			}
		}
		if _, ok := a.(Undef); ok {
			return true
		}
		if _, ok := b.(Undef); ok {
			return true
		}
	}
	switch x := a.(type) {
	case Scalar:
		y, ok := b.(Scalar)
		return ok && approxEq(float64(x), float64(y), relTol)
	case Vec:
		y, ok := b.(Vec)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !approxEq(x[i], y[i], relTol) {
				return false
			}
		}
		return true
	case Tuple:
		y, ok := b.(Tuple)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !EqualApproxModuloUndef(x[i], y[i], relTol) {
				return false
			}
		}
		return true
	}
	return Equal(a, b)
}

func approxEq(x, y, relTol float64) bool {
	if x == y {
		return true
	}
	d := x - y
	if d < 0 {
		d = -d
	}
	ax, ay := x, y
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	scale := ax
	if ay > scale {
		scale = ay
	}
	return d <= relTol*scale
}

// EqualLists applies Equal pointwise to two value lists of the same length.
func EqualLists(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// EqualListsModuloUndef applies EqualModuloUndef pointwise.
func EqualListsModuloUndef(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualModuloUndef(a[i], b[i]) {
			return false
		}
	}
	return true
}
