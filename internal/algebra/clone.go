package algebra

// CloneValue returns a deep copy of v: mutating the copy (or the
// original) can never be observed through the other. It is the payload
// discipline of the copying transport (backend.TransportCopy) — the
// behavior a memory-isolated transport such as the multi-process backend
// forces on every message, modeled in-process so the two transports can
// be compared head-to-head.
//
// Immutable-by-construction values (Scalar, Undef) are returned as is.
// Value types this package does not know (decorator envelopes such as
// the chaos wire protocol's) also pass through unchanged: protocol
// framing is shared by reference on every transport, and the decorators
// treat it — and the payload inside — as frozen once shipped.
func CloneValue(v Value) Value {
	switch x := v.(type) {
	case Vec:
		return x.Clone()
	case *FlatTuple:
		return x.Clone()
	case Tuple:
		out := make(Tuple, len(x))
		for i, c := range x {
			out[i] = CloneValue(c)
		}
		return out
	case Mat:
		return x.Clone()
	}
	return v
}
