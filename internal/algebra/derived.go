package algebra

import "fmt"

// This file constructs the derived operators that the optimization rules
// of §3 introduce. Each constructor takes the base operator(s) of the
// original collective operations and returns the tuple operator of the
// rewritten program, with the operation counts of §4 recorded in Cost so
// the virtual machine charges exactly the computation the paper counts.

func tup2(v Value) (a, b Value) {
	t, ok := v.(Tuple)
	if !ok || len(t) != 2 {
		panic(fmt.Sprintf("algebra: expected pair, got %s", v))
	}
	return t[0], t[1]
}

func tup3(v Value) (a, b, c Value) {
	t, ok := v.(Tuple)
	if !ok || len(t) != 3 {
		panic(fmt.Sprintf("algebra: expected triple, got %s", v))
	}
	return t[0], t[1], t[2]
}

func tup4(v Value) (a, b, c, d Value) {
	t, ok := v.(Tuple)
	if !ok || len(t) != 4 {
		panic(fmt.Sprintf("algebra: expected quadruple, got %s", v))
	}
	return t[0], t[1], t[2], t[3]
}

// OpSR2 builds op_sr2 of rules SR2-Reduction and SS2-Scan:
//
//	op_sr2((s1,r1),(s2,r2)) = (s1 ⊕ (r1 ⊗ s2), r1 ⊗ r2)
//
// It is associative whenever ⊗ and ⊕ are associative and ⊗ distributes
// over ⊕, so it can drive the ordinary reduce and scan collectives.
// Three elementary operations per element (Table 1: m·(2tw+3)).
func OpSR2(otimes, oplus *Op) *Op {
	op := &Op{
		Name:  fmt.Sprintf("op_sr2(%s,%s)", otimes.Name, oplus.Name),
		Cost:  3,
		Arity: 2,
		Fn: func(a, b Value) Value {
			s1, r1 := tup2(a)
			s2, r2 := tup2(b)
			return Tuple{
				oplus.Apply(s1, otimes.Apply(r1, s2)),
				otimes.Apply(r1, r2),
			}
		},
	}
	if f, g := oplus.Elem, otimes.Elem; f != nil && g != nil {
		op.FlatFn = func(dst, a, b *FlatTuple) {
			m := a.M()
			s1, r1 := a.Data[:m], a.Data[m:]
			s2, r2 := b.Data[:m], b.Data[m:]
			ds, dr := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				x1, y1, x2, y2 := s1[j], r1[j], s2[j], r2[j]
				ds[j] = f(x1, g(y1, x2))
				dr[j] = g(y1, y2)
			}
		}
	}
	return op
}

// OpNew builds the pointwise pair operator of the Figure 2 warm-up:
//
//	op_new((a1,b1),(a2,b2)) = (a1 op1 a2, b1 op2 b2)
func OpNew(op1, op2 *Op) *Op {
	op := &Op{
		Name:  fmt.Sprintf("op_new(%s,%s)", op1.Name, op2.Name),
		Cost:  op1.Cost + op2.Cost,
		Arity: 2,
		Fn: func(a, b Value) Value {
			a1, b1 := tup2(a)
			a2, b2 := tup2(b)
			return Tuple{op1.Apply(a1, a2), op2.Apply(b1, b2)}
		},
	}
	if f1, f2 := op1.Elem, op2.Elem; f1 != nil && f2 != nil {
		op.FlatFn = func(dst, a, b *FlatTuple) {
			m := a.M()
			a1, b1 := a.Data[:m], a.Data[m:]
			a2, b2 := b.Data[:m], b.Data[m:]
			da, db := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				x1, y1, x2, y2 := a1[j], b1[j], a2[j], b2[j]
				da[j] = f1(x1, x2)
				db[j] = f2(y1, y2)
			}
		}
	}
	return op
}

// OpSR builds op_sr of rule SR-Reduction, for commutative ⊕:
//
//	op_sr((t1,u1),(t2,u2)) = (t1 ⊕ t2 ⊕ u1, uu ⊕ uu)   with uu = u1 ⊕ u2
//	op_sr((),   (t2,u2))  = (t2, u2 ⊕ u2)
//
// The shared uu keeps the count at four elementary operations instead of
// five (Table 1: m·(2tw+4)). op_sr is not associative in general, so only
// the balanced collectives of §3.2 may use it.
func OpSR(oplus *Op) *Op {
	op := &Op{
		Name:  fmt.Sprintf("op_sr(%s)", oplus.Name),
		Cost:  4,
		Arity: 2,
		Fn: func(a, b Value) Value {
			t1, u1 := tup2(a)
			t2, u2 := tup2(b)
			uu := oplus.Apply(u1, u2)
			return Tuple{
				oplus.Apply(oplus.Apply(t1, t2), u1),
				oplus.Apply(uu, uu),
			}
		},
		Unary: func(b Value) Value {
			t2, u2 := tup2(b)
			return Tuple{t2, oplus.Apply(u2, u2)}
		},
	}
	if f := oplus.Elem; f != nil {
		op.FlatFn = func(dst, a, b *FlatTuple) {
			m := a.M()
			t1, u1 := a.Data[:m], a.Data[m:]
			t2, u2 := b.Data[:m], b.Data[m:]
			dt, du := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				x1, y1, x2, y2 := t1[j], u1[j], t2[j], u2[j]
				uu := f(y1, y2)
				dt[j] = f(f(x1, x2), y1)
				du[j] = f(uu, uu)
			}
		}
		op.FlatUnary = func(dst, b *FlatTuple) {
			m := b.M()
			t2, u2 := b.Data[:m], b.Data[m:]
			dt, du := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				x2, y2 := t2[j], u2[j]
				dt[j] = x2
				du[j] = f(y2, y2)
			}
		}
	}
	return op
}

// OpSRNoSharing is the ablation variant of OpSR that recomputes u1 ⊕ u2
// on both sides instead of sharing uu: five elementary operations. The
// result is identical; only the charged computation differs.
func OpSRNoSharing(oplus *Op) *Op {
	op := OpSR(oplus)
	naive := &Op{
		Name:  fmt.Sprintf("op_sr_nosharing(%s)", oplus.Name),
		Cost:  5,
		Arity: 2,
		Fn: func(a, b Value) Value {
			t1, u1 := tup2(a)
			t2, u2 := tup2(b)
			return Tuple{
				oplus.Apply(oplus.Apply(t1, t2), u1),
				oplus.Apply(oplus.Apply(u1, u2), oplus.Apply(u1, u2)),
			}
		},
		Unary:     op.Unary,
		FlatUnary: op.FlatUnary,
	}
	if f := oplus.Elem; f != nil {
		naive.FlatFn = func(dst, a, b *FlatTuple) {
			m := a.M()
			t1, u1 := a.Data[:m], a.Data[m:]
			t2, u2 := b.Data[:m], b.Data[m:]
			dt, du := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				x1, y1, x2, y2 := t1[j], u1[j], t2[j], u2[j]
				dt[j] = f(f(x1, x2), y1)
				du[j] = f(f(y1, y2), f(y1, y2))
			}
		}
	}
	return naive
}

// OpSegmented builds the segmented-scan operator over (flag, value)
// pairs — the device that makes nested data parallelism à la NESL (the
// paper's reference [4]) expressible with the ordinary scan collective.
// A set flag starts a new segment; combining restarts the accumulation at
// segment boundaries:
//
//	(f1,x1) ⊕seg (f2,x2) = (f1 ∨ f2,  x2           if f2
//	                                  x1 ⊕ x2      otherwise)
//
// The operator is associative whenever ⊕ is (flags use max as ∨ on 0/1
// scalars), so scan(op_seg) computes all per-segment prefixes in one
// collective.
func OpSegmented(oplus *Op) *Op {
	return &Op{
		Name:  fmt.Sprintf("op_seg(%s)", oplus.Name),
		Cost:  2,
		Arity: 2,
		Fn: func(a, b Value) Value {
			f1, x1 := tup2(a)
			f2, x2 := tup2(b)
			flag := Max.Apply(f1, f2)
			if s, ok := f2.(Scalar); ok && s != 0 {
				return Tuple{flag, x2}
			}
			return Tuple{flag, oplus.Apply(x1, x2)}
		},
	}
}

// BalancedScanOp is the node operator of the balanced scan (§3.3,
// Figure 5). Unlike an ordinary binary operator it produces a result for
// each of the two butterfly partners, and it ships only the components the
// partner actually reads (for op_ss that is (t,u,v) — 3m of the 4m words,
// which is where Table 1's 3tw comes from).
type BalancedScanOp struct {
	// Name identifies the operator in traces.
	Name string
	// CostLo and CostHi are the elementary operations per element
	// performed by the lower- and higher-ranked partner respectively.
	CostLo, CostHi int
	// Arity is the tuple width of the processor state.
	Arity int
	// ShipWidth is the number of tuple components Ship sends to the
	// partner (3 of op_ss's 4 — the source of Table 1's 3tw term).
	ShipWidth int
	// Ship projects the processor state to the message sent to the
	// partner.
	Ship func(own Value) Value
	// Lo computes the lower-ranked partner's new state from its own
	// state and the shipped part of the higher partner's state.
	Lo func(own, fromHi Value) Value
	// Hi computes the higher-ranked partner's new state from its own
	// state and the shipped part of the lower partner's state.
	Hi func(own, fromLo Value) Value
	// Solo is applied by processors without a partner in this phase
	// (number of processors not a power of two): they keep their first
	// component, the rest becomes undetermined.
	Solo func(own Value) Value
	// FlatShip/FlatLo/FlatHi, if non-nil, are the allocation-free flat
	// forms of Ship/Lo/Hi: FlatShip fills a width-ShipWidth dst from a
	// width-Arity state, FlatLo/FlatHi fill a width-Arity dst (which may
	// alias own) from the state and the partner's shipped part. There is
	// no flat Solo — the poisoned components need Undef, which only the
	// boxed form can hold.
	FlatShip func(dst, own *FlatTuple)
	FlatLo   func(dst, own, fromHi *FlatTuple)
	FlatHi   func(dst, own, fromLo *FlatTuple)
}

// OpSS builds op_ss of rule SS-Scan, for commutative ⊕ (§3.3):
//
//	op_ss((s1,t1,u1,v1),(s2,t2,u2,v2)) =
//	    ((s1, ttu, uuuu, vv), (s2 ⊕ t1 ⊕ v1, ttu, uuuu, uu ⊕ vv))
//	ttu = t1 ⊕ t2 ⊕ u1,  uu = u1 ⊕ u2,  uuuu = uu ⊕ uu,  vv = v1 ⊕ v2
//
// Sharing ttu, uu, uuuu and vv brings the operator from twelve to eight
// elementary operations (Table 1: m·(3tw+8); the higher-ranked side does
// the eight, the lower-ranked side five).
func OpSS(oplus *Op) *BalancedScanOp {
	op := &BalancedScanOp{
		Name:      fmt.Sprintf("op_ss(%s)", oplus.Name),
		CostLo:    5,
		CostHi:    8,
		Arity:     4,
		ShipWidth: 3,
		Ship: func(own Value) Value {
			_, t, u, v := tup4(own)
			return Tuple{t, u, v}
		},
		Lo: func(own, fromHi Value) Value {
			s1, t1, u1, v1 := tup4(own)
			t2, u2, v2 := tup3(fromHi)
			uu := oplus.Apply(u1, u2)
			return Tuple{
				s1,
				oplus.Apply(oplus.Apply(t1, t2), u1),
				oplus.Apply(uu, uu),
				oplus.Apply(v1, v2),
			}
		},
		Hi: func(own, fromLo Value) Value {
			s2, t2, u2, v2 := tup4(own)
			t1, u1, v1 := tup3(fromLo)
			uu := oplus.Apply(u1, u2)
			vv := oplus.Apply(v1, v2)
			return Tuple{
				oplus.Apply(oplus.Apply(s2, t1), v1),
				oplus.Apply(oplus.Apply(t1, t2), u1),
				oplus.Apply(uu, uu),
				oplus.Apply(uu, vv),
			}
		},
		Solo: func(own Value) Value {
			s, _, _, _ := tup4(own)
			return Tuple{s, Undef{}, Undef{}, Undef{}}
		},
	}
	if f := oplus.Elem; f != nil {
		op.FlatShip = func(dst, own *FlatTuple) {
			m := own.M()
			copy(dst.Data, own.Data[m:]) // (t, u, v)
		}
		op.FlatLo = func(dst, own, fromHi *FlatTuple) {
			m := own.M()
			s1, t1, u1, v1 := own.Data[:m], own.Data[m:2*m], own.Data[2*m:3*m], own.Data[3*m:]
			t2, u2, v2 := fromHi.Data[:m], fromHi.Data[m:2*m], fromHi.Data[2*m:]
			ds, dt, du, dv := dst.Data[:m], dst.Data[m:2*m], dst.Data[2*m:3*m], dst.Data[3*m:]
			for j := 0; j < m; j++ {
				S1, T1, U1, V1 := s1[j], t1[j], u1[j], v1[j]
				T2, U2, V2 := t2[j], u2[j], v2[j]
				uu := f(U1, U2)
				ds[j] = S1
				dt[j] = f(f(T1, T2), U1)
				du[j] = f(uu, uu)
				dv[j] = f(V1, V2)
			}
		}
		op.FlatHi = func(dst, own, fromLo *FlatTuple) {
			m := own.M()
			s2, t2, u2, v2 := own.Data[:m], own.Data[m:2*m], own.Data[2*m:3*m], own.Data[3*m:]
			t1, u1, v1 := fromLo.Data[:m], fromLo.Data[m:2*m], fromLo.Data[2*m:]
			ds, dt, du, dv := dst.Data[:m], dst.Data[m:2*m], dst.Data[2*m:3*m], dst.Data[3*m:]
			for j := 0; j < m; j++ {
				S2, T2, U2, V2 := s2[j], t2[j], u2[j], v2[j]
				T1, U1, V1 := t1[j], u1[j], v1[j]
				uu := f(U1, U2)
				vv := f(V1, V2)
				ds[j] = f(f(S2, T1), V1)
				dt[j] = f(f(T1, T2), U1)
				du[j] = f(uu, uu)
				dv[j] = f(uu, vv)
			}
		}
	}
	return op
}

// RepeatOps is the (e, o) function pair of the comcast rules (§3.4): the
// repeat schema traverses the binary digits of the processor number,
// applying e for a 0 digit and o for a 1 digit. CostE and CostO record the
// elementary operations per element of each function; the per-phase worst
// case (CostO for every rule in the paper) is what Table 1 charges.
type RepeatOps struct {
	// Name identifies the pair in traces.
	Name string
	// CostE and CostO are elementary operations per element.
	CostE, CostO int
	// Arity is the tuple width of the working state.
	Arity int
	// Prepare duplicates the broadcast value into the working tuple
	// (pair for BS, triple for BSS2, quadruple for BSS).
	Prepare func(b Value) Value
	// E and O are the even- and odd-digit step functions.
	E, O func(Value) Value
	// FlatE and FlatO, if non-nil, are the flat in-place forms of E and
	// O; dst may alias v.
	FlatE, FlatO func(dst, v *FlatTuple)
}

// OpCompBS builds the e/o pair of rule BS-Comcast:
//
//	e(t,u) = (t, u ⊕ u)        o(t,u) = (t ⊕ u, u ⊕ u)
func OpCompBS(oplus *Op) *RepeatOps {
	r := &RepeatOps{
		Name:    fmt.Sprintf("op_comp_bs(%s)", oplus.Name),
		CostE:   1,
		CostO:   2,
		Arity:   2,
		Prepare: Pair,
		E: func(v Value) Value {
			t, u := tup2(v)
			return Tuple{t, oplus.Apply(u, u)}
		},
		O: func(v Value) Value {
			t, u := tup2(v)
			return Tuple{oplus.Apply(t, u), oplus.Apply(u, u)}
		},
	}
	if f := oplus.Elem; f != nil {
		r.FlatE = func(dst, v *FlatTuple) {
			m := v.M()
			t, u := v.Data[:m], v.Data[m:]
			dt, du := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				T, U := t[j], u[j]
				dt[j] = T
				du[j] = f(U, U)
			}
		}
		r.FlatO = func(dst, v *FlatTuple) {
			m := v.M()
			t, u := v.Data[:m], v.Data[m:]
			dt, du := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				T, U := t[j], u[j]
				dt[j] = f(T, U)
				du[j] = f(U, U)
			}
		}
	}
	return r
}

// OpCompBSS2 builds the e/o pair of rule BSS2-Comcast (⊗ distributes
// over ⊕):
//
//	e(s,t,u) = (s, t ⊕ (t ⊗ u), u ⊗ u)
//	o(s,t,u) = (t ⊕ (s ⊗ u), t ⊕ (t ⊗ u), u ⊗ u)
func OpCompBSS2(otimes, oplus *Op) *RepeatOps {
	r := &RepeatOps{
		Name:    fmt.Sprintf("op_comp_bss2(%s,%s)", otimes.Name, oplus.Name),
		CostE:   3,
		CostO:   5,
		Arity:   3,
		Prepare: Triple,
		E: func(v Value) Value {
			s, t, u := tup3(v)
			return Tuple{s, oplus.Apply(t, otimes.Apply(t, u)), otimes.Apply(u, u)}
		},
		O: func(v Value) Value {
			s, t, u := tup3(v)
			return Tuple{
				oplus.Apply(t, otimes.Apply(s, u)),
				oplus.Apply(t, otimes.Apply(t, u)),
				otimes.Apply(u, u),
			}
		},
	}
	if f, g := oplus.Elem, otimes.Elem; f != nil && g != nil {
		r.FlatE = func(dst, v *FlatTuple) {
			m := v.M()
			s, t, u := v.Data[:m], v.Data[m:2*m], v.Data[2*m:]
			ds, dt, du := dst.Data[:m], dst.Data[m:2*m], dst.Data[2*m:]
			for j := 0; j < m; j++ {
				S, T, U := s[j], t[j], u[j]
				ds[j] = S
				dt[j] = f(T, g(T, U))
				du[j] = g(U, U)
			}
		}
		r.FlatO = func(dst, v *FlatTuple) {
			m := v.M()
			s, t, u := v.Data[:m], v.Data[m:2*m], v.Data[2*m:]
			ds, dt, du := dst.Data[:m], dst.Data[m:2*m], dst.Data[2*m:]
			for j := 0; j < m; j++ {
				S, T, U := s[j], t[j], u[j]
				ds[j] = f(T, g(S, U))
				dt[j] = f(T, g(T, U))
				du[j] = g(U, U)
			}
		}
	}
	return r
}

// OpCompBSS builds the e/o pair of rule BSS-Comcast (commutative ⊕):
//
//	e(s,t,u,v) = (s, t ⊕ t ⊕ u, uu ⊕ uu, v ⊕ v)            uu = u ⊕ u
//	o(s,t,u,v) = (s ⊕ t ⊕ v, t ⊕ t ⊕ u, uu ⊕ uu, uu ⊕ v ⊕ v)
func OpCompBSS(oplus *Op) *RepeatOps {
	r := &RepeatOps{
		Name:    fmt.Sprintf("op_comp_bss(%s)", oplus.Name),
		CostE:   5,
		CostO:   8,
		Arity:   4,
		Prepare: Quadruple,
		E: func(v Value) Value {
			s, t, u, vv := tup4(v)
			uu := oplus.Apply(u, u)
			return Tuple{
				s,
				oplus.Apply(oplus.Apply(t, t), u),
				oplus.Apply(uu, uu),
				oplus.Apply(vv, vv),
			}
		},
		O: func(v Value) Value {
			s, t, u, vv := tup4(v)
			uu := oplus.Apply(u, u)
			return Tuple{
				oplus.Apply(oplus.Apply(s, t), vv),
				oplus.Apply(oplus.Apply(t, t), u),
				oplus.Apply(uu, uu),
				oplus.Apply(oplus.Apply(uu, vv), vv),
			}
		},
	}
	if f := oplus.Elem; f != nil {
		r.FlatE = func(dst, v *FlatTuple) {
			m := v.M()
			s, t, u, w := v.Data[:m], v.Data[m:2*m], v.Data[2*m:3*m], v.Data[3*m:]
			ds, dt, du, dw := dst.Data[:m], dst.Data[m:2*m], dst.Data[2*m:3*m], dst.Data[3*m:]
			for j := 0; j < m; j++ {
				S, T, U, W := s[j], t[j], u[j], w[j]
				uu := f(U, U)
				ds[j] = S
				dt[j] = f(f(T, T), U)
				du[j] = f(uu, uu)
				dw[j] = f(W, W)
			}
		}
		r.FlatO = func(dst, v *FlatTuple) {
			m := v.M()
			s, t, u, w := v.Data[:m], v.Data[m:2*m], v.Data[2*m:3*m], v.Data[3*m:]
			ds, dt, du, dw := dst.Data[:m], dst.Data[m:2*m], dst.Data[2*m:3*m], dst.Data[3*m:]
			for j := 0; j < m; j++ {
				S, T, U, W := s[j], t[j], u[j], w[j]
				uu := f(U, U)
				ds[j] = f(f(S, T), W)
				dt[j] = f(f(T, T), U)
				du[j] = f(uu, uu)
				dw[j] = f(f(uu, W), W)
			}
		}
	}
	return r
}

// Repeat applies the logarithmic-time schema of §3.4 (equation (14)) to
// the processor number k: traverse k's binary digits from least to most
// significant, applying E for a 0 and O for a 1.
func (r *RepeatOps) Repeat(k int, b Value) Value {
	if k < 0 {
		panic("algebra: Repeat with negative processor number")
	}
	v := b
	for k != 0 {
		if k%2 == 0 {
			v = r.E(v)
		} else {
			v = r.O(v)
		}
		k /= 2
	}
	return v
}

// RepeatInto is the flat in-place form of Repeat: it rewrites w through
// the digit sequence of k using FlatE/FlatO, allocating nothing. Callers
// must check FlatE/FlatO are available (they are whenever the base
// operators carry elementwise kernels).
func (r *RepeatOps) RepeatInto(k int, w *FlatTuple) {
	if k < 0 {
		panic("algebra: Repeat with negative processor number")
	}
	for k != 0 {
		if k%2 == 0 {
			r.FlatE(w, w)
		} else {
			r.FlatO(w, w)
		}
		k /= 2
	}
}

// RepeatCharge is the computation time charged for Repeat(k, b) on a
// working tuple whose components hold m words each: the digit-by-digit
// sum of CostE/CostO times m.
func (r *RepeatOps) RepeatCharge(k, m int) float64 {
	total := 0
	for k != 0 {
		if k%2 == 0 {
			total += r.CostE
		} else {
			total += r.CostO
		}
		k /= 2
	}
	return float64(total) * float64(m)
}

// IterOp is the unary operator iterated log p times by the Local rules
// (§3.5).
type IterOp struct {
	// Name identifies the operator in traces.
	Name string
	// Cost is elementary operations per element per application.
	Cost int
	// Arity is the tuple width of the working state.
	Arity int
	// Prepare builds the working state from the first processor's input
	// (identity for op_br, pair for op_bsr2/op_bsr).
	Prepare func(b Value) Value
	// F is one application.
	F func(Value) Value
	// FlatF, if non-nil, is the flat in-place form of F; dst may alias v.
	FlatF func(dst, v *FlatTuple)
}

// Charge is the computation time of one application of the operator to
// value a, analogous to Op.Charge.
func (o *IterOp) Charge(a Value) float64 {
	w := a.Words()
	if o.Arity > 1 {
		w /= o.Arity
	}
	return float64(o.Cost) * float64(w)
}

// OpBR builds op_br of rule BR-Local: op_br s = s ⊕ s. Iterated log p
// times it computes the p-fold reduction of the broadcast value.
func OpBR(oplus *Op) *IterOp {
	op := &IterOp{
		Name:    fmt.Sprintf("op_br(%s)", oplus.Name),
		Cost:    1,
		Arity:   1,
		Prepare: func(b Value) Value { return b },
		F:       func(s Value) Value { return oplus.Apply(s, s) },
	}
	if f := oplus.Elem; f != nil {
		op.FlatF = func(dst, v *FlatTuple) {
			s := v.Data
			d := dst.Data
			for j := range s {
				S := s[j]
				d[j] = f(S, S)
			}
		}
	}
	return op
}

// OpBSR2 builds op_bsr2 of rule BSR2-Local (⊗ distributes over ⊕):
//
//	op_bsr2(s,t) = (s ⊕ (s ⊗ t), t ⊗ t)
func OpBSR2(otimes, oplus *Op) *IterOp {
	op := &IterOp{
		Name:    fmt.Sprintf("op_bsr2(%s,%s)", otimes.Name, oplus.Name),
		Cost:    3,
		Arity:   2,
		Prepare: Pair,
		F: func(v Value) Value {
			s, t := tup2(v)
			return Tuple{oplus.Apply(s, otimes.Apply(s, t)), otimes.Apply(t, t)}
		},
	}
	if f, g := oplus.Elem, otimes.Elem; f != nil && g != nil {
		op.FlatF = func(dst, v *FlatTuple) {
			m := v.M()
			s, t := v.Data[:m], v.Data[m:]
			ds, dt := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				S, T := s[j], t[j]
				ds[j] = f(S, g(S, T))
				dt[j] = g(T, T)
			}
		}
	}
	return op
}

// OpBSR builds op_bsr of rule BSR-Local (commutative ⊕):
//
//	op_bsr(t,u) = (t ⊕ t ⊕ u, uu ⊕ uu)    uu = u ⊕ u
func OpBSR(oplus *Op) *IterOp {
	op := &IterOp{
		Name:    fmt.Sprintf("op_bsr(%s)", oplus.Name),
		Cost:    4,
		Arity:   2,
		Prepare: Pair,
		F: func(v Value) Value {
			t, u := tup2(v)
			uu := oplus.Apply(u, u)
			return Tuple{
				oplus.Apply(oplus.Apply(t, t), u),
				oplus.Apply(uu, uu),
			}
		},
	}
	if f := oplus.Elem; f != nil {
		op.FlatF = func(dst, v *FlatTuple) {
			m := v.M()
			t, u := v.Data[:m], v.Data[m:]
			dt, du := dst.Data[:m], dst.Data[m:]
			for j := 0; j < m; j++ {
				T, U := t[j], u[j]
				uu := f(U, U)
				dt[j] = f(f(T, T), U)
				du[j] = f(uu, uu)
			}
		}
	}
	return op
}
