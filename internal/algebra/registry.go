package algebra

import "fmt"

// Registry records algebraic properties of base operators. The rewrite
// engine consults it to check rule conditions: associativity (assumed by
// every collective), commutativity (SR-Reduction, SS-Scan, BSS-Comcast,
// BSR-Local) and distributivity ⊗ over ⊕ (the *2 rules).
//
// Properties are declared, not inferred: they are semantic facts about the
// operators that a finite check cannot establish. The registry can however
// Probe a declared property on randomized inputs, which the test-suite
// uses to guard the declarations themselves.
type Registry struct {
	associative map[*Op]bool
	commutative map[*Op]bool
	distributes map[[2]*Op]bool // [outer ⊗, inner ⊕]: a⊗(b⊕c) = (a⊗b)⊕(a⊗c)
	units       map[*Op]Value
	elementwise map[*Op]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		associative: make(map[*Op]bool),
		commutative: make(map[*Op]bool),
		distributes: make(map[[2]*Op]bool),
		units:       make(map[*Op]Value),
		elementwise: make(map[*Op]bool),
	}
}

// Default returns a registry pre-loaded with the properties of the
// standard base operators:
//
//	+, *, max, min  associative and commutative
//	left            associative only
//	* distributes over +
//	+ distributes over max and over min   (the tropical semirings)
//	max distributes over min, min over max (the distributive lattice)
func Default() *Registry {
	r := NewRegistry()
	for _, op := range []*Op{Add, Mul, Max, Min} {
		r.DeclareAssociative(op)
		r.DeclareCommutative(op)
		r.DeclareElementwise(op)
	}
	r.DeclareAssociative(Left)
	r.DeclareAssociative(MatMul)
	r.DeclareDistributes(Mul, Add)
	r.DeclareDistributes(Add, Max)
	r.DeclareDistributes(Add, Min)
	r.DeclareDistributes(Max, Min)
	r.DeclareDistributes(Min, Max)
	r.DeclareUnit(Add, Scalar(0))
	r.DeclareUnit(Mul, Scalar(1))
	return r
}

// DeclareAssociative records that op is associative.
func (r *Registry) DeclareAssociative(op *Op) { r.associative[op] = true }

// DeclareCommutative records that op is commutative.
func (r *Registry) DeclareCommutative(op *Op) { r.commutative[op] = true }

// DeclareDistributes records that outer distributes over inner:
// a outer (b inner c) = (a outer b) inner (a outer c).
func (r *Registry) DeclareDistributes(outer, inner *Op) {
	r.distributes[[2]*Op{outer, inner}] = true
}

// DeclareUnit records the unit (neutral element) of op.
func (r *Registry) DeclareUnit(op *Op, unit Value) { r.units[op] = unit }

// DeclareElementwise records that op combines vectors position by
// position: (a op b)[i] = a[i] op b[i], so combining commutes with
// taking slices. This is the side condition of the reduce_scatterv +
// allgatherv fusion — MatMul is associative but not elementwise, and
// fusing over it would be wrong.
func (r *Registry) DeclareElementwise(op *Op) { r.elementwise[op] = true }

// Associative reports whether op is declared associative.
func (r *Registry) Associative(op *Op) bool { return r.associative[op] }

// Commutative reports whether op is declared commutative.
func (r *Registry) Commutative(op *Op) bool { return r.commutative[op] }

// Elementwise reports whether op is declared elementwise on vectors.
func (r *Registry) Elementwise(op *Op) bool { return r.elementwise[op] }

// Distributes reports whether outer is declared to distribute over inner.
func (r *Registry) Distributes(outer, inner *Op) bool {
	return r.distributes[[2]*Op{outer, inner}]
}

// Unit returns the declared unit of op, if any.
func (r *Registry) Unit(op *Op) (Value, bool) {
	u, ok := r.units[op]
	return u, ok
}

// ProbeAssociative checks (a op b) op c == a op (b op c) on the given
// sample triples, returning an error describing the first counterexample.
func (r *Registry) ProbeAssociative(op *Op, samples [][3]Value) error {
	for _, s := range samples {
		l := op.Apply(op.Apply(s[0], s[1]), s[2])
		rr := op.Apply(s[0], op.Apply(s[1], s[2]))
		if !Equal(l, rr) {
			return fmt.Errorf("algebra: %s not associative at (%s, %s, %s): %s vs %s",
				op.Name, s[0], s[1], s[2], l, rr)
		}
	}
	return nil
}

// ProbeCommutative checks a op b == b op a on the given sample pairs.
func (r *Registry) ProbeCommutative(op *Op, samples [][2]Value) error {
	for _, s := range samples {
		l := op.Apply(s[0], s[1])
		rr := op.Apply(s[1], s[0])
		if !Equal(l, rr) {
			return fmt.Errorf("algebra: %s not commutative at (%s, %s): %s vs %s",
				op.Name, s[0], s[1], l, rr)
		}
	}
	return nil
}

// ProbeDistributes checks a outer (b inner c) == (a outer b) inner
// (a outer c) on the given sample triples.
func (r *Registry) ProbeDistributes(outer, inner *Op, samples [][3]Value) error {
	for _, s := range samples {
		l := outer.Apply(s[0], inner.Apply(s[1], s[2]))
		rr := inner.Apply(outer.Apply(s[0], s[1]), outer.Apply(s[0], s[2]))
		if !Equal(l, rr) {
			return fmt.Errorf("algebra: %s does not distribute over %s at (%s, %s, %s): %s vs %s",
				outer.Name, inner.Name, s[0], s[1], s[2], l, rr)
		}
	}
	return nil
}
