package algebra

import (
	"fmt"
	"math"
)

// Op is a binary base operator (the paper's ⊕, ⊗) or one of the derived
// tuple operators the optimization rules construct from base operators.
//
// Cost counts elementary base-operator applications per element of the
// underlying block, exactly as §4 of the paper counts them: a base
// operator costs 1, op_sr2 costs 3, op_sr costs 4 (with the uu sharing),
// op_ss costs 8, and so on. Arity is the tuple width the operator consumes
// (1 for base operators, 2 for op_sr2/op_sr, 4 for op_ss); the virtual
// machine uses Cost and Arity to charge computation time per combine.
type Op struct {
	// Name identifies the operator in printed terms and traces, e.g.
	// "+", "*", "op_sr2(+,*)".
	Name string
	// Cost is the number of elementary operations per block element.
	Cost int
	// Arity is the tuple width the operator consumes (1 for scalars/vecs).
	Arity int
	// Fn combines two values.
	Fn func(a, b Value) Value
	// Unary, if non-nil, is the one-sided case op((), b) that balanced
	// collectives apply at nodes with an empty left subtree (§3.2) or
	// at processors without a communication partner (§3.3).
	Unary func(b Value) Value
	// Elem, if non-nil, is the elementwise scalar function the operator
	// lifts (base operators only). It is the allocation-free kernel
	// behind ApplyFloat and the Vec fast paths of ApplyInto.
	Elem func(x, y float64) float64
	// FlatFn, if non-nil, combines two flat tuples of width Arity into
	// dst without allocating. dst may alias a or b: kernels read both
	// operands at an index before writing it. Results are bitwise
	// identical to Fn on the boxed form.
	FlatFn func(dst, a, b *FlatTuple)
	// FlatUnary, if non-nil, is the flat form of Unary.
	FlatUnary func(dst, b *FlatTuple)
}

// Apply combines a and b, propagating undetermined values: if either side
// is (or contains) Undef in a way the operator touches, the result is the
// operator's best effort; fully undetermined operands yield Undef.
func (o *Op) Apply(a, b Value) Value {
	if o.Fn == nil {
		panic(fmt.Sprintf("algebra: operator %q has no implementation", o.Name))
	}
	return o.Fn(a, b)
}

// ApplyUnary applies the one-sided case op((), b). It panics if the
// operator does not define one.
func (o *Op) ApplyUnary(b Value) Value {
	if o.Unary == nil {
		panic(fmt.Sprintf("algebra: operator %q has no one-sided case", o.Name))
	}
	return o.Unary(b)
}

// ApplyFloat applies a base operator to two scalars without boxing either
// operand or the result — the innermost kernel of the hot path. It panics
// on operators that do not carry an elementwise function.
func (o *Op) ApplyFloat(x, y float64) float64 {
	if o.Elem == nil {
		panic(fmt.Sprintf("algebra: operator %q has no elementwise kernel", o.Name))
	}
	return o.Elem(x, y)
}

// ApplyInto combines a and b like Apply, but writes the result into dst's
// storage when dst has the right shape, allocating nothing on the fast
// paths (Vec×Vec, Vec×Scalar, Scalar×Vec with Elem; flat×flat with
// FlatFn). dst may be nil or of the wrong shape, in which case a fresh
// result is allocated; dst may alias a or b, because the kernels read
// both operands at an index before writing it. Operand shapes without a
// kernel fall back to the reference Apply, so ApplyInto is always exactly
// Apply up to representation.
//
// Callers own the aliasing discipline: dst must not be a buffer another
// rank may still read (see the arena ownership rules in docs/PERF.md).
func (o *Op) ApplyInto(dst, a, b Value) Value {
	switch x := a.(type) {
	case Vec:
		switch y := b.(type) {
		case Vec:
			if o.Elem != nil && len(x) == len(y) {
				d, out := vecDst(dst, len(x))
				f := o.Elem
				for i := range x {
					d[i] = f(x[i], y[i])
				}
				return out
			}
		case Scalar:
			if o.Elem != nil {
				d, out := vecDst(dst, len(x))
				f := o.Elem
				s := float64(y)
				for i := range x {
					d[i] = f(x[i], s)
				}
				return out
			}
		}
	case Scalar:
		switch y := b.(type) {
		case Scalar:
			if o.Elem != nil {
				return Scalar(o.Elem(float64(x), float64(y)))
			}
		case Vec:
			if o.Elem != nil {
				d, out := vecDst(dst, len(y))
				f := o.Elem
				s := float64(x)
				for i := range y {
					d[i] = f(s, y[i])
				}
				return out
			}
		}
	case *FlatTuple:
		if y, ok := b.(*FlatTuple); ok && o.FlatFn != nil &&
			x.W == o.Arity && y.W == x.W && len(y.Data) == len(x.Data) {
			d := flatDst(dst, x.W, x.M())
			o.FlatFn(d, x, y)
			return d
		}
	}
	return o.Apply(Boxed(a), Boxed(b))
}

// ApplyUnaryInto is the destination-passing form of ApplyUnary, with the
// same fast-path and fallback contract as ApplyInto.
func (o *Op) ApplyUnaryInto(dst, b Value) Value {
	if x, ok := b.(*FlatTuple); ok && o.FlatUnary != nil && x.W == o.Arity {
		d := flatDst(dst, x.W, x.M())
		o.FlatUnary(d, x)
		return d
	}
	return o.ApplyUnary(Boxed(b))
}

// vecDst resolves the destination of a Vec kernel: dst's own storage when
// it is a Vec of the right length (returning dst's existing interface
// value, so the fast path boxes nothing), a fresh Vec otherwise.
func vecDst(dst Value, n int) (Vec, Value) {
	if d, ok := dst.(Vec); ok && len(d) == n {
		return d, dst
	}
	d := make(Vec, n)
	return d, d
}

// flatDst resolves the destination of a flat kernel analogously.
func flatDst(dst Value, w, m int) *FlatTuple {
	if d, ok := dst.(*FlatTuple); ok && d.W == w && len(d.Data) == w*m {
		return d
	}
	return NewFlatTuple(w, m)
}

// Charge is the computation time, in the paper's unit-cost model, of one
// application of the operator to value a: Cost elementary operations per
// element of the underlying block of m words. For a tuple of width Arity
// holding components of m words each, that is Cost·m.
func (o *Op) Charge(a Value) float64 {
	w := a.Words()
	if o.Arity > 1 {
		w /= o.Arity
	}
	return float64(o.Cost) * float64(w)
}

func (o *Op) String() string { return o.Name }

// lift applies a scalar function elementwise across the supported value
// shapes, propagating Undef. A Scalar paired with a Vec broadcasts over
// the vector's elements.
func lift(name string, f func(x, y float64) float64) func(a, b Value) Value {
	var apply func(a, b Value) Value
	apply = func(a, b Value) Value {
		if IsUndef(a) || IsUndef(b) {
			return Undef{}
		}
		switch x := a.(type) {
		case Scalar:
			switch y := b.(type) {
			case Scalar:
				return Scalar(f(float64(x), float64(y)))
			case Vec:
				out := make(Vec, len(y))
				for i := range y {
					out[i] = f(float64(x), y[i])
				}
				return out
			}
			panic(fmt.Sprintf("algebra: %s applied to mismatched shapes %T and %T", name, a, b))
		case Vec:
			switch y := b.(type) {
			case Scalar:
				out := make(Vec, len(x))
				for i := range x {
					out[i] = f(x[i], float64(y))
				}
				return out
			case Vec:
				if len(x) != len(y) {
					panic(fmt.Sprintf("algebra: %s applied to mismatched vectors %s and %s", name, a, b))
				}
				out := make(Vec, len(x))
				for i := range x {
					out[i] = f(x[i], y[i])
				}
				return out
			}
			panic(fmt.Sprintf("algebra: %s applied to mismatched shapes %T and %T", name, a, b))
		case Tuple:
			y, ok := b.(Tuple)
			if !ok || len(x) != len(y) {
				panic(fmt.Sprintf("algebra: %s applied to mismatched tuples %s and %s", name, a, b))
			}
			out := make(Tuple, len(x))
			for i := range x {
				out[i] = apply(x[i], y[i])
			}
			return out
		}
		panic(fmt.Sprintf("algebra: %s applied to unsupported value %T", name, a))
	}
	return apply
}

// NewBase constructs a base binary operator applying f elementwise.
func NewBase(name string, f func(x, y float64) float64) *Op {
	return &Op{Name: name, Cost: 1, Arity: 1, Fn: lift(name, f), Elem: f}
}

// The standard base operators of the paper's examples. Add and Mul are the
// op1/op2 of program Example; Max and Add form the max/+ (tropical) pair
// used by the maximum-segment-sum example, where + distributes over max.
var (
	// Add is elementwise addition (associative, commutative; unit 0).
	Add = NewBase("+", func(x, y float64) float64 { return x + y })
	// Mul is elementwise multiplication (associative, commutative;
	// unit 1; distributes over Add).
	Mul = NewBase("*", func(x, y float64) float64 { return x * y })
	// Max is elementwise maximum (associative, commutative, idempotent).
	Max = NewBase("max", func(x, y float64) float64 { return math.Max(x, y) })
	// Min is elementwise minimum (associative, commutative, idempotent).
	Min = NewBase("min", func(x, y float64) float64 { return math.Min(x, y) })
	// Left is left projection: Left(a,b) = a. It is associative but not
	// commutative, and exists so tests can exercise rule conditions
	// that must reject non-commutative operators.
	Left = NewBase("left", func(x, _ float64) float64 { return x })
	// Sub is elementwise subtraction: non-associative, non-commutative;
	// it exists so tests can exercise condition rejection.
	Sub = NewBase("-", func(x, y float64) float64 { return x - y })
)
