package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseOpsOnScalars(t *testing.T) {
	cases := []struct {
		op   *Op
		a, b float64
		want float64
	}{
		{Add, 2, 3, 5},
		{Mul, 2, 3, 6},
		{Max, 2, 3, 3},
		{Min, 2, 3, 2},
		{Left, 2, 3, 2},
		{Sub, 2, 3, -1},
	}
	for _, c := range cases {
		got := c.op.Apply(Scalar(c.a), Scalar(c.b))
		if !Equal(got, Scalar(c.want)) {
			t.Errorf("%s(%g, %g) = %v, want %g", c.op.Name, c.a, c.b, got, c.want)
		}
	}
}

func TestBaseOpsOnVectors(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	got := Add.Apply(a, b)
	if !Equal(got, Vec{5, 7, 9}) {
		t.Fatalf("Add(%v, %v) = %v", a, b, got)
	}
	got = Mul.Apply(a, b)
	if !Equal(got, Vec{4, 10, 18}) {
		t.Fatalf("Mul(%v, %v) = %v", a, b, got)
	}
}

func TestOpsOnTuplesElementwise(t *testing.T) {
	a := Tuple{Scalar(1), Scalar(2)}
	b := Tuple{Scalar(10), Scalar(20)}
	got := Add.Apply(a, b)
	if !Equal(got, Tuple{Scalar(11), Scalar(22)}) {
		t.Fatalf("Add on tuples = %v", got)
	}
}

func TestOpsPropagateUndef(t *testing.T) {
	if got := Add.Apply(Undef{}, Scalar(1)); !IsUndef(got) {
		t.Fatalf("Add(_, 1) = %v, want _", got)
	}
	if got := Mul.Apply(Scalar(1), Undef{}); !IsUndef(got) {
		t.Fatalf("Mul(1, _) = %v, want _", got)
	}
	if got := Add.Apply(Tuple{Scalar(1), Undef{}}, Tuple{Scalar(2), Scalar(3)}); !IsUndef(got) {
		t.Fatalf("Add on poisoned tuple = %v, want undef", got)
	}
}

func TestOpApplyMismatchedShapesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched shapes")
		}
	}()
	Add.Apply(Vec{1, 2}, Vec{1, 2, 3})
}

func TestOpCharge(t *testing.T) {
	// A base operator on an m-word vector costs m units.
	if got := Add.Charge(Vec{1, 2, 3, 4}); got != 4 {
		t.Fatalf("Add.Charge(4-vec) = %g, want 4", got)
	}
	// op_sr2 on a pair of m-word vectors costs 3m units (Table 1).
	sr2 := OpSR2(Mul, Add)
	pair := Tuple{Vec{1, 2, 3, 4}, Vec{1, 2, 3, 4}}
	if got := sr2.Charge(pair); got != 12 {
		t.Fatalf("op_sr2.Charge(pair of 4-vecs) = %g, want 12", got)
	}
}

func TestOpWithoutUnaryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing one-sided case")
		}
	}()
	Add.ApplyUnary(Scalar(1))
}

func TestRegistryDefaults(t *testing.T) {
	r := Default()
	for _, op := range []*Op{Add, Mul, Max, Min} {
		if !r.Associative(op) {
			t.Errorf("%s should be associative", op.Name)
		}
		if !r.Commutative(op) {
			t.Errorf("%s should be commutative", op.Name)
		}
	}
	if !r.Associative(Left) {
		t.Error("left should be associative")
	}
	if r.Commutative(Left) {
		t.Error("left must not be commutative")
	}
	if r.Associative(Sub) || r.Commutative(Sub) {
		t.Error("- must be neither associative nor commutative")
	}
	if !r.Distributes(Mul, Add) {
		t.Error("* should distribute over +")
	}
	if r.Distributes(Add, Mul) {
		t.Error("+ must not distribute over *")
	}
	if !r.Distributes(Add, Max) {
		t.Error("+ should distribute over max (tropical semiring)")
	}
	if u, ok := r.Unit(Add); !ok || !Equal(u, Scalar(0)) {
		t.Error("unit of + should be 0")
	}
}

// TestProbeDeclaredProperties guards the Default registry declarations by
// probing each declared property on random samples.
func TestProbeDeclaredProperties(t *testing.T) {
	r := Default()
	rng := rand.New(rand.NewSource(42))
	var triples [][3]Value
	var pairs [][2]Value
	for i := 0; i < 300; i++ {
		triples = append(triples, [3]Value{
			Scalar(rng.Intn(19) - 9), Scalar(rng.Intn(19) - 9), Scalar(rng.Intn(19) - 9),
		})
		pairs = append(pairs, [2]Value{
			Scalar(rng.Intn(19) - 9), Scalar(rng.Intn(19) - 9),
		})
	}
	for _, op := range []*Op{Add, Mul, Max, Min, Left} {
		if err := r.ProbeAssociative(op, triples); err != nil {
			t.Error(err)
		}
	}
	for _, op := range []*Op{Add, Mul, Max, Min} {
		if err := r.ProbeCommutative(op, pairs); err != nil {
			t.Error(err)
		}
	}
	for _, d := range [][2]*Op{{Mul, Add}, {Add, Max}, {Add, Min}, {Max, Min}, {Min, Max}} {
		if err := r.ProbeDistributes(d[0], d[1], triples); err != nil {
			t.Error(err)
		}
	}
}

func TestProbeCatchesViolations(t *testing.T) {
	r := Default()
	samples := [][3]Value{{Scalar(1), Scalar(2), Scalar(3)}}
	if err := r.ProbeAssociative(Sub, samples); err == nil {
		t.Error("ProbeAssociative should reject -")
	}
	if err := r.ProbeCommutative(Left, [][2]Value{{Scalar(1), Scalar(2)}}); err == nil {
		t.Error("ProbeCommutative should reject left")
	}
	if err := r.ProbeDistributes(Add, Mul, samples); err == nil {
		t.Error("ProbeDistributes should reject + over *")
	}
}

// TestQuickOpSR2Associative verifies the keystone of the *2 rules: op_sr2
// built from a distributive pair is associative even though op_sr is not.
func TestQuickOpSR2Associative(t *testing.T) {
	sr2 := OpSR2(Mul, Add)
	f := func(a1, b1, a2, b2, a3, b3 int8) bool {
		x := Tuple{Scalar(a1), Scalar(b1)}
		y := Tuple{Scalar(a2), Scalar(b2)}
		z := Tuple{Scalar(a3), Scalar(b3)}
		l := sr2.Apply(sr2.Apply(x, y), z)
		r := sr2.Apply(x, sr2.Apply(y, z))
		return Equal(l, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickOpSR2TropicalAssociative checks associativity of op_sr2 over
// the max/+ tropical pair (used by the maximum-segment-sum example).
func TestQuickOpSR2TropicalAssociative(t *testing.T) {
	sr2 := OpSR2(Add, Max)
	f := func(a1, b1, a2, b2, a3, b3 int8) bool {
		x := Tuple{Scalar(a1), Scalar(b1)}
		y := Tuple{Scalar(a2), Scalar(b2)}
		z := Tuple{Scalar(a3), Scalar(b3)}
		l := sr2.Apply(sr2.Apply(x, y), z)
		r := sr2.Apply(x, sr2.Apply(y, z))
		return Equal(l, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOpSRNotAssociative documents why SR-Reduction needs the balanced
// collectives: op_sr is not associative.
func TestOpSRNotAssociative(t *testing.T) {
	sr := OpSR(Add)
	x := Tuple{Scalar(1), Scalar(1)}
	y := Tuple{Scalar(2), Scalar(2)}
	z := Tuple{Scalar(3), Scalar(3)}
	l := sr.Apply(sr.Apply(x, y), z)
	r := sr.Apply(x, sr.Apply(y, z))
	if Equal(l, r) {
		t.Fatalf("op_sr unexpectedly associative on the witness: both sides %v", l)
	}
}
