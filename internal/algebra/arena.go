package algebra

// Arena is a per-rank region of scratch buffers for the collective hot
// path. Vec and Flat hand out buffers from size-keyed free lists (or the
// allocator when a list is empty); Reset returns every handed-out buffer
// to its free list in one step. The collectives draw each combining
// round's destination from the arena, so in steady state — after the
// first run has populated the free lists — the log-p rounds of a
// reduction or scan allocate nothing.
//
// Ownership discipline (see docs/PERF.md): a buffer obtained from the
// arena is private to the rank until it is passed to Send or Exchange,
// at which point it is frozen for the rest of the run — the receiver may
// still be reading it. Reset must therefore only run at a point where no
// peer can hold a reference, which the backends guarantee by resetting at
// the start of a run: the previous run's completion barrier orders every
// peer's last read before it.
//
// Vec buffers are pooled as pre-boxed Values: converting a slice header
// to an interface allocates, so the pool stores the interface value and
// the kernels thread it through unchanged.
//
// A nil *Arena is valid and simply allocates fresh buffers — collectives
// run unchanged (only slower) on communicators that provide no arena.
type Arena struct {
	freeVecs  map[int][]Value
	freeFlats map[flatKey][]*FlatTuple
	usedVecs  []Value
	usedFlats []*FlatTuple
}

type flatKey struct{ w, words int }

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		freeVecs:  map[int][]Value{},
		freeFlats: map[flatKey][]*FlatTuple{},
	}
}

// Vec returns a length-n scratch vector, pre-boxed as a Value. Contents
// are unspecified — callers overwrite every element.
func (a *Arena) Vec(n int) Value {
	if a == nil {
		return make(Vec, n)
	}
	if free := a.freeVecs[n]; len(free) > 0 {
		v := free[len(free)-1]
		a.freeVecs[n] = free[:len(free)-1]
		a.usedVecs = append(a.usedVecs, v)
		return v
	}
	v := Value(make(Vec, n))
	a.usedVecs = append(a.usedVecs, v)
	return v
}

// Flat returns a scratch flat tuple of w components of m words each.
// Contents are unspecified — callers overwrite every element.
func (a *Arena) Flat(w, m int) *FlatTuple {
	if a == nil {
		return NewFlatTuple(w, m)
	}
	k := flatKey{w: w, words: w * m}
	if free := a.freeFlats[k]; len(free) > 0 {
		t := free[len(free)-1]
		a.freeFlats[k] = free[:len(free)-1]
		a.usedFlats = append(a.usedFlats, t)
		// A buffer moved away last run is reclaimable now — the previous
		// run's completion barrier ordered the receiver's last access
		// before this hand-out — but its move poison must not survive.
		t.MarkOwned()
		return t
	}
	t := NewFlatTuple(w, m)
	a.usedFlats = append(a.usedFlats, t)
	return t
}

// Reset reclaims every buffer handed out since the last Reset. Only call
// at a point where no other rank can still hold a reference (the backends
// reset at run start, after the previous run's completion barrier).
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for i, v := range a.usedVecs {
		n := len(v.(Vec))
		a.freeVecs[n] = append(a.freeVecs[n], v)
		a.usedVecs[i] = nil
	}
	a.usedVecs = a.usedVecs[:0]
	for i, t := range a.usedFlats {
		k := flatKey{w: t.W, words: len(t.Data)}
		a.freeFlats[k] = append(a.freeFlats[k], t)
		a.usedFlats[i] = nil
	}
	a.usedFlats = a.usedFlats[:0]
}
