package algebra

import "testing"

func TestEqualApproxModuloUndef(t *testing.T) {
	cases := []struct {
		a, b Value
		tol  float64
		want bool
	}{
		{Scalar(1), Scalar(1), 1e-9, true},
		{Scalar(1e15), Scalar(1e15 + 1), 1e-9, true},
		{Scalar(1), Scalar(1.1), 1e-9, false},
		{Scalar(1), Scalar(1.05), 0.1, true},
		{Vec{1, 2}, Vec{1, 2.0000000001}, 1e-9, true},
		{Vec{1, 2}, Vec{1, 3}, 1e-9, false},
		{Vec{1, 2}, Vec{1, 2, 3}, 1e-9, false},
		{Undef{}, Scalar(99), 1e-9, true},
		{Tuple{Scalar(1), Undef{}}, Tuple{Scalar(1), Scalar(7)}, 1e-9, true},
		{Tuple{Scalar(2), Undef{}}, Tuple{Scalar(1), Scalar(7)}, 1e-9, false},
		{Tuple{Scalar(1)}, Tuple{Scalar(1), Scalar(2)}, 1e-9, false},
		{Scalar(0), Scalar(0), 1e-9, true},
		{Scalar(-5), Scalar(-5.0000000001), 1e-9, true},
		{Scalar(1), Vec{1}, 1e-9, false},
	}
	for _, c := range cases {
		if got := EqualApproxModuloUndef(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualApproxModuloUndef(%v, %v, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEq(t *testing.T) {
	if !approxEq(0, 0, 1e-9) {
		t.Error("zero/zero")
	}
	if approxEq(0, 1e-3, 1e-9) {
		t.Error("zero against nonzero must fail (relative scale)")
	}
	if !approxEq(-1e20, -1e20*(1+1e-12), 1e-9) {
		t.Error("large negatives within tolerance")
	}
}

func TestOpString(t *testing.T) {
	if Add.String() != "+" {
		t.Errorf("Add.String() = %q", Add.String())
	}
	sr2 := OpSR2(Mul, Add)
	if sr2.String() != "op_sr2(*,+)" {
		t.Errorf("sr2.String() = %q", sr2.String())
	}
}

func TestValueStrings(t *testing.T) {
	if got := Scalar(2.5).String(); got != "2.5" {
		t.Errorf("Scalar String = %q", got)
	}
	if got := (Vec{1, 2}).String(); got != "[1 2]" {
		t.Errorf("Vec String = %q", got)
	}
	long := make(Vec, 20)
	if got := long.String(); got != "vec[20]" {
		t.Errorf("long Vec String = %q", got)
	}
	if got := (Tuple{Scalar(1), Undef{}}).String(); got != "(1, _)" {
		t.Errorf("Tuple String = %q", got)
	}
}

func TestScalarVecBroadcastInOps(t *testing.T) {
	// lift broadcasts a Scalar across a Vec in either position.
	got := Add.Apply(Scalar(10), Vec{1, 2, 3})
	if !Equal(got, Vec{11, 12, 13}) {
		t.Fatalf("scalar+vec = %v", got)
	}
	got = Mul.Apply(Vec{1, 2, 3}, Scalar(2))
	if !Equal(got, Vec{2, 4, 6}) {
		t.Fatalf("vec*scalar = %v", got)
	}
}

func TestApplyWithoutImplementationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	op := &Op{Name: "hollow"}
	op.Apply(Scalar(1), Scalar(2))
}

func TestLiftRejectsMatrixMix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add.Apply(NewMat(2, 2, 1, 2, 3, 4), Scalar(1))
}
