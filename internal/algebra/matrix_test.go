package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMat(2, 2, 1, 2, 3)
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	if id.At(0, 0) != 1 || id.At(1, 1) != 1 || id.At(0, 1) != 0 {
		t.Fatalf("identity = %v", id)
	}
	m := NewMat(3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	if !EqualMat(m.MulMat(id), m) || !EqualMat(id.MulMat(m), m) {
		t.Fatal("identity is not a unit")
	}
}

func TestMulMat(t *testing.T) {
	a := NewMat(2, 3, 1, 2, 3, 4, 5, 6)
	b := NewMat(3, 2, 7, 8, 9, 10, 11, 12)
	got := a.MulMat(b)
	want := NewMat(2, 2, 58, 64, 139, 154)
	if !EqualMat(got, want) {
		t.Fatalf("product = %v, want %v", got, want)
	}
}

func TestMulMatDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMat(2, 2, 1, 0, 0, 1).MulMat(NewMat(3, 1, 1, 2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewMat(2, 2, 1, 1, 1, 0) // Fibonacci step
	v := a.MulVec(Vec{1, 0})
	if !Equal(v, Vec{1, 1}) {
		t.Fatalf("Av = %v", v)
	}
}

func TestMatWordsAndString(t *testing.T) {
	m := NewMat(2, 2, 1, 2, 3, 4)
	if m.Words() != 4 {
		t.Fatalf("Words = %d", m.Words())
	}
	if m.String() != "[1 2; 3 4]" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMatMulOp(t *testing.T) {
	a := Value(NewMat(2, 2, 1, 1, 1, 0))
	got := MatMul.Apply(a, a)
	if !Equal(got, Value(NewMat(2, 2, 2, 1, 1, 1))) {
		t.Fatalf("matmul = %v", got)
	}
	if !IsUndef(MatMul.Apply(Undef{}, a)) {
		t.Fatal("matmul should propagate undef")
	}
}

func TestMatEqualInValueEqual(t *testing.T) {
	a := Value(NewMat(2, 2, 1, 2, 3, 4))
	b := Value(NewMat(2, 2, 1, 2, 3, 4))
	c := Value(NewMat(2, 2, 1, 2, 3, 5))
	if !Equal(a, b) || Equal(a, c) {
		t.Fatal("Equal on matrices broken")
	}
	if Equal(a, Scalar(1)) {
		t.Fatal("matrix equals scalar")
	}
}

func TestMatMulDeclaredAssociative(t *testing.T) {
	r := Default()
	if !r.Associative(MatMul) {
		t.Fatal("matmul should be associative in the default registry")
	}
	if r.Commutative(MatMul) {
		t.Fatal("matmul must not be commutative")
	}
}

func TestQuickMatMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randMat := func() Mat {
		d := make([]float64, 4)
		for i := range d {
			d[i] = float64(rng.Intn(7) - 3)
		}
		return Mat{R: 2, C: 2, Data: d}
	}
	f := func() bool {
		a, b, c := randMat(), randMat(), randMat()
		l := a.MulMat(b).MulMat(c)
		r := a.MulMat(b.MulMat(c))
		return EqualMat(l, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatMulNotCommutativeWitness(t *testing.T) {
	a := NewMat(2, 2, 1, 1, 0, 1)
	b := NewMat(2, 2, 1, 0, 1, 1)
	if EqualMat(a.MulMat(b), b.MulMat(a)) {
		t.Fatal("witness matrices commute unexpectedly")
	}
}
