package algebra

import (
	"math/rand"
	"testing"
)

// The kernels are only correct if they are *exactly* the reference
// semantics in another representation: same elementary operations, same
// order, bitwise-equal floats. These tests compare every flat/in-place
// kernel against the boxed reference on random inputs.

func randVec(rng *rand.Rand, m int) Vec {
	v := make(Vec, m)
	for i := range v {
		v[i] = float64(rng.Intn(19)) - 9
	}
	return v
}

func randTuple(rng *rand.Rand, w, m int) Tuple {
	t := make(Tuple, w)
	for i := range t {
		t[i] = randVec(rng, m)
	}
	return t
}

func flatOf(t Tuple) *FlatTuple {
	w, m, ok := CanFlatten(t)
	if !ok {
		panic("flatOf: not flattenable")
	}
	return NewFlatTuple(w, m).FlattenInto(t)
}

var kernelSizes = []int{1, 2, 3, 8, 33}

func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range []*Op{Add, Mul, Max, Min, Left, Sub} {
		for _, m := range kernelSizes {
			a, b := randVec(rng, m), randVec(rng, m)
			s := Scalar(float64(rng.Intn(9)) - 4)
			cases := []struct{ x, y Value }{
				{a, b}, {a, s}, {s, b}, {s, Scalar(3)},
				{Tuple{a, b}, Tuple{b, a}}, // no kernel: reference fallback
			}
			for _, c := range cases {
				want := op.Apply(c.x, c.y)
				got := op.ApplyInto(nil, c.x, c.y)
				if !Equal(got, want) {
					t.Fatalf("%s.ApplyInto(nil, %s, %s) = %s, want %s", op, c.x, c.y, got, want)
				}
				// With a destination of the right shape the result must
				// land in the destination's storage.
				if v, ok := want.(Vec); ok {
					dst := Value(make(Vec, len(v)))
					got := op.ApplyInto(dst, c.x, c.y)
					if !Equal(got, want) {
						t.Fatalf("%s.ApplyInto(dst, %s, %s) = %s, want %s", op, c.x, c.y, got, want)
					}
					if &got.(Vec)[0] != &dst.(Vec)[0] {
						t.Fatalf("%s.ApplyInto did not reuse dst storage", op)
					}
				}
			}
			// dst aliasing an operand must be safe.
			aa := a.Clone()
			want := op.Apply(a, b)
			got := op.ApplyInto(aa, aa, b)
			if !Equal(got, want) {
				t.Fatalf("%s.ApplyInto(a, a, b) = %s, want %s", op, got, want)
			}
		}
	}
}

func TestFlatKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := []*Op{
		OpSR2(Mul, Add), OpSR2(Add, Max),
		OpNew(Add, Mul), OpNew(Max, Min),
		OpSR(Add), OpSR(Max),
		OpSRNoSharing(Add),
	}
	for _, op := range ops {
		if op.FlatFn == nil {
			t.Fatalf("%s: no flat kernel", op)
		}
		for _, m := range kernelSizes {
			a, b := randTuple(rng, op.Arity, m), randTuple(rng, op.Arity, m)
			want := op.Apply(a, b)
			got := op.ApplyInto(nil, flatOf(a), flatOf(b))
			if !Equal(got, want) {
				t.Fatalf("%s flat kernel: got %s, want %s (m=%d)", op, got, want, m)
			}
			// In-place: dst aliasing operand a.
			fa := flatOf(a)
			if !Equal(op.ApplyInto(fa, fa, flatOf(b)), want) {
				t.Fatalf("%s flat kernel in-place mismatch (m=%d)", op, m)
			}
			if op.Unary != nil {
				want := op.ApplyUnary(b)
				if !Equal(op.ApplyUnaryInto(nil, flatOf(b)), want) {
					t.Fatalf("%s flat unary mismatch (m=%d)", op, m)
				}
				fb := flatOf(b)
				if !Equal(op.ApplyUnaryInto(fb, fb), want) {
					t.Fatalf("%s flat unary in-place mismatch (m=%d)", op, m)
				}
			}
		}
	}
}

func TestFlatBalancedScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, op := range []*BalancedScanOp{OpSS(Add), OpSS(Max)} {
		if op.FlatShip == nil || op.FlatLo == nil || op.FlatHi == nil {
			t.Fatalf("%s: missing flat kernels", op.Name)
		}
		for _, m := range kernelSizes {
			lo, hi := randTuple(rng, op.Arity, m), randTuple(rng, op.Arity, m)
			flo, fhi := flatOf(lo), flatOf(hi)

			shipLo := NewFlatTuple(op.ShipWidth, m)
			op.FlatShip(shipLo, flo)
			if !Equal(shipLo, op.Ship(lo)) {
				t.Fatalf("%s FlatShip mismatch (m=%d)", op.Name, m)
			}
			shipHi := NewFlatTuple(op.ShipWidth, m)
			op.FlatShip(shipHi, fhi)

			wantLo := op.Lo(lo, op.Ship(hi))
			wantHi := op.Hi(hi, op.Ship(lo))
			gotLo := NewFlatTuple(op.Arity, m)
			op.FlatLo(gotLo, flo, shipHi)
			if !Equal(gotLo, wantLo) {
				t.Fatalf("%s FlatLo: got %s, want %s (m=%d)", op.Name, gotLo, wantLo, m)
			}
			gotHi := NewFlatTuple(op.Arity, m)
			op.FlatHi(gotHi, fhi, shipLo)
			if !Equal(gotHi, wantHi) {
				t.Fatalf("%s FlatHi: got %s, want %s (m=%d)", op.Name, gotHi, wantHi, m)
			}
			// In place, dst aliasing own.
			op.FlatLo(flo, flo, shipHi)
			if !Equal(flo, wantLo) {
				t.Fatalf("%s FlatLo in-place mismatch (m=%d)", op.Name, m)
			}
			op.FlatHi(fhi, fhi, shipLo)
			if !Equal(fhi, wantHi) {
				t.Fatalf("%s FlatHi in-place mismatch (m=%d)", op.Name, m)
			}
		}
	}
}

func TestFlatRepeatMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ops := []*RepeatOps{OpCompBS(Add), OpCompBSS2(Mul, Add), OpCompBSS(Add), OpCompBSS(Max)}
	for _, r := range ops {
		if r.FlatE == nil || r.FlatO == nil {
			t.Fatalf("%s: missing flat kernels", r.Name)
		}
		for _, m := range kernelSizes {
			b := randVec(rng, m)
			for k := 0; k < 20; k++ {
				want := r.Repeat(k, r.Prepare(b))
				w := NewFlatTuple(r.Arity, m)
				for i := 0; i < r.Arity; i++ {
					copy(w.Comp(i), b)
				}
				r.RepeatInto(k, w)
				if !Equal(w, want) {
					t.Fatalf("%s RepeatInto(%d): got %s, want %s (m=%d)", r.Name, k, w, want, m)
				}
			}
		}
	}
}

func TestFlatIterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []*IterOp{OpBR(Add), OpBSR2(Mul, Add), OpBSR(Add), OpBSR(Max)}
	for _, op := range ops {
		if op.FlatF == nil {
			t.Fatalf("%s: no flat kernel", op.Name)
		}
		for _, m := range kernelSizes {
			b := randVec(rng, m)
			want := op.Prepare(b)
			w := NewFlatTuple(op.Arity, m)
			for i := 0; i < op.Arity; i++ {
				copy(w.Comp(i), b)
			}
			for step := 0; step < 5; step++ {
				want = op.F(want)
				op.FlatF(w, w)
				if !Equal(w, Boxed(want)) {
					t.Fatalf("%s step %d: got %s, want %s (m=%d)", op.Name, step, w, want, m)
				}
			}
		}
	}
}

func TestFlatTupleValueSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tp := randTuple(rng, 2, 4)
	ft := flatOf(tp)
	if ft.Words() != tp.Words() {
		t.Fatalf("flat Words = %d, boxed Words = %d", ft.Words(), tp.Words())
	}
	if ft.String() != tp.String() {
		t.Fatalf("flat String = %q, boxed String = %q", ft.String(), tp.String())
	}
	if !Equal(ft, tp) || !Equal(tp, ft) || !EqualModuloUndef(ft, tp) ||
		!EqualApproxModuloUndef(tp, ft, 0) {
		t.Fatal("flat tuple does not compare equal to its boxed form")
	}
	if IsUndef(ft) {
		t.Fatal("flat tuple reported undetermined")
	}
	if !Equal(First(ft), tp[0]) {
		t.Fatalf("First(flat) = %s, want %s", First(ft), tp[0])
	}
	other := flatOf(randTuple(rng, 2, 4))
	if Equal(ft, other) {
		t.Fatal("distinct flat tuples compared equal")
	}
	cl := ft.Clone()
	cl.Data[0]++
	if ft.Data[0] == cl.Data[0] {
		t.Fatal("Clone shares the backing array")
	}
	if _, _, ok := CanFlatten(Tuple{Scalar(1), Scalar(2)}); ok {
		t.Fatal("scalar tuple reported flattenable")
	}
	if _, _, ok := CanFlatten(Tuple{make(Vec, 2), make(Vec, 3)}); ok {
		t.Fatal("ragged tuple reported flattenable")
	}
	if _, _, ok := CanFlatten(Tuple{make(Vec, 2), Undef{}}); ok {
		t.Fatal("tuple with Undef reported flattenable")
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	v1 := a.Vec(8)
	f1 := a.Flat(2, 8)
	a.Reset()
	if v2 := a.Vec(8); &v2.(Vec)[0] != &v1.(Vec)[0] {
		t.Fatal("arena did not reuse the vec buffer after Reset")
	}
	if f2 := a.Flat(2, 8); f2 != f1 {
		t.Fatal("arena did not reuse the flat buffer after Reset")
	}
	// Distinct sizes come from distinct pools.
	if f3 := a.Flat(4, 4); f3 == f1 {
		t.Fatal("arena confused flat tuples of equal word count but different width")
	}
	// A nil arena degrades to plain allocation.
	var nilA *Arena
	if v := nilA.Vec(3); len(v.(Vec)) != 3 {
		t.Fatal("nil arena Vec broken")
	}
	if f := nilA.Flat(2, 3); f.W != 2 || f.M() != 3 {
		t.Fatal("nil arena Flat broken")
	}
	nilA.Reset()
}

// The zero-allocation invariant of the hot kernels, enforced as a test so
// a regression fails CI rather than just shifting a benchmark. Skipped
// under the race detector, whose instrumentation changes allocation
// behaviour.
func TestKernelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const m = 256
	rng := rand.New(rand.NewSource(7))
	// Pre-boxed: in the collectives the operands already live behind the
	// Value interface, so the kernels must add no boxing of their own.
	a, b := Value(randVec(rng, m)), Value(randVec(rng, m))
	dst := Value(make(Vec, m))
	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	check("Scalar ApplyFloat", func() { Add.ApplyFloat(2, 3) })
	check("Vec ApplyInto", func() { dst = Add.ApplyInto(dst, a, b) })

	sr2 := OpSR2(Mul, Add)
	fa, fb := flatOf(randTuple(rng, 2, m)), flatOf(randTuple(rng, 2, m))
	fdst := Value(NewFlatTuple(2, m))
	check("op_sr2 flat ApplyInto", func() { fdst = sr2.ApplyInto(fdst, fa, fb) })

	sr := OpSR(Add)
	check("op_sr flat ApplyUnaryInto", func() { fdst = sr.ApplyUnaryInto(fdst, fa) })

	ss := OpSS(Add)
	qa, qb := flatOf(randTuple(rng, 4, m)), flatOf(randTuple(rng, 4, m))
	ship := NewFlatTuple(3, m)
	check("op_ss flat Ship+Lo+Hi", func() {
		ss.FlatShip(ship, qb)
		ss.FlatLo(qa, qa, ship)
		ss.FlatHi(qb, qb, ship)
	})

	bss := OpCompBSS(Add)
	check("op_comp_bss flat Repeat", func() { bss.RepeatInto(6, qa) })

	bsr := OpBSR(Add)
	check("op_bsr flat iterate", func() { bsr.FlatF(fa, fa) })

	// Arena steady state: after one warm cycle, a get/reset cycle of the
	// same shapes touches only the free lists.
	ar := NewArena()
	cycle := func() {
		ar.Vec(m)
		ar.Vec(m)
		ar.Flat(2, m)
		ar.Flat(4, m)
		ar.Reset()
	}
	cycle()
	check("arena steady-state cycle", cycle)
}
