package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// scanThenReduce is the brute-force reference for scan(⊗); reduce(⊕):
// the ⊕-reduction of the ⊗-prefixes.
func scanThenReduce(otimes, oplus *Op, xs []Value) Value {
	prefix := xs[0]
	acc := xs[0]
	for _, x := range xs[1:] {
		prefix = otimes.Apply(prefix, x)
		acc = oplus.Apply(acc, prefix)
	}
	return acc
}

// TestOpSR2FoldEqualsScanReduce: left-folding op_sr2 over paired inputs
// and projecting the first component equals scan(⊗); reduce(⊕) — the
// semantic core of rule SR2-Reduction.
func TestOpSR2FoldEqualsScanReduce(t *testing.T) {
	sr2 := OpSR2(Mul, Add)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(9)
		xs := make([]Value, n)
		for i := range xs {
			xs[i] = Scalar(rng.Intn(7) - 3)
		}
		acc := Pair(xs[0])
		for _, x := range xs[1:] {
			acc = sr2.Apply(acc, Pair(x))
		}
		got := First(acc)
		want := scanThenReduce(Mul, Add, xs)
		if !Equal(got, want) {
			t.Fatalf("trial %d: op_sr2 fold = %v, want %v (inputs %v)", trial, got, want, xs)
		}
	}
}

// TestOpSR2TreeFoldEqualsScanReduce folds op_sr2 in an arbitrary bracketing
// (possible because it is associative) and checks the same equality.
func TestOpSR2TreeFoldEqualsScanReduce(t *testing.T) {
	sr2 := OpSR2(Add, Max)
	rng := rand.New(rand.NewSource(8))
	var treeFold func(xs []Value) Value
	treeFold = func(xs []Value) Value {
		if len(xs) == 1 {
			return Pair(xs[0])
		}
		cut := 1 + rng.Intn(len(xs)-1)
		return sr2.Apply(treeFold(xs[:cut]), treeFold(xs[cut:]))
	}
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		xs := make([]Value, n)
		for i := range xs {
			xs[i] = Scalar(rng.Intn(11) - 5)
		}
		got := First(treeFold(xs))
		want := scanThenReduce(Add, Max, xs)
		if !Equal(got, want) {
			t.Fatalf("trial %d: tree fold = %v, want %v (inputs %v)", trial, got, want, xs)
		}
	}
}

func TestOpNewFigure2(t *testing.T) {
	// Figure 2: allreduce(op_new) over pair'd [1,2,3,4] yields (10, 24)
	// everywhere; π₁ delivers the sum 10.
	opNew := OpNew(Add, Mul)
	xs := []Value{Scalar(1), Scalar(2), Scalar(3), Scalar(4)}
	acc := Pair(xs[0])
	for _, x := range xs[1:] {
		acc = opNew.Apply(acc, Pair(x))
	}
	if !Equal(acc, Tuple{Scalar(10), Scalar(24)}) {
		t.Fatalf("op_new fold = %v, want (10, 24)", acc)
	}
	if !Equal(First(acc), Scalar(10)) {
		t.Fatalf("π₁ = %v, want 10", First(acc))
	}
}

func TestOpSRUnary(t *testing.T) {
	sr := OpSR(Add)
	// op_sr((), (t,u)) = (t, u ⊕ u): the Figure 4 pass-through
	// (9,14) → (9,28).
	got := sr.ApplyUnary(Tuple{Scalar(9), Scalar(14)})
	if !Equal(got, Tuple{Scalar(9), Scalar(28)}) {
		t.Fatalf("op_sr unary = %v, want (9, 28)", got)
	}
}

func TestOpSRFigure4Nodes(t *testing.T) {
	sr := OpSR(Add)
	// The combining steps of Figure 4.
	steps := []struct {
		a, b, want Tuple
	}{
		{Tuple{Scalar(2), Scalar(2)}, Tuple{Scalar(5), Scalar(5)}, Tuple{Scalar(9), Scalar(14)}},
		{Tuple{Scalar(9), Scalar(9)}, Tuple{Scalar(1), Scalar(1)}, Tuple{Scalar(19), Scalar(20)}},
		{Tuple{Scalar(2), Scalar(2)}, Tuple{Scalar(6), Scalar(6)}, Tuple{Scalar(10), Scalar(16)}},
		{Tuple{Scalar(19), Scalar(20)}, Tuple{Scalar(10), Scalar(16)}, Tuple{Scalar(49), Scalar(72)}},
		{Tuple{Scalar(9), Scalar(28)}, Tuple{Scalar(49), Scalar(72)}, Tuple{Scalar(86), Scalar(200)}},
	}
	for i, s := range steps {
		got := sr.Apply(s.a, s.b)
		if !Equal(got, s.want) {
			t.Errorf("step %d: op_sr(%v, %v) = %v, want %v", i, s.a, s.b, got, s.want)
		}
	}
}

func TestOpSRNoSharingMatchesOpSR(t *testing.T) {
	sr := OpSR(Add)
	naive := OpSRNoSharing(Add)
	if naive.Cost != 5 || sr.Cost != 4 {
		t.Fatalf("costs: sharing %d (want 4), naive %d (want 5)", sr.Cost, naive.Cost)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a := Tuple{Scalar(rng.Intn(20)), Scalar(rng.Intn(20))}
		b := Tuple{Scalar(rng.Intn(20)), Scalar(rng.Intn(20))}
		if !Equal(sr.Apply(a, b), naive.Apply(a, b)) {
			t.Fatalf("sharing and naive op_sr disagree at (%v, %v)", a, b)
		}
	}
}

// repeated applies ⊕ k times to b: b ⊕ b ⊕ … (k+1 operands).
func repeated(op *Op, b Value, k int) Value {
	acc := b
	for i := 0; i < k; i++ {
		acc = op.Apply(acc, b)
	}
	return acc
}

func TestRepeatBSComputesScanOfBroadcast(t *testing.T) {
	// bcast; scan(⊕) gives processor k the (k+1)-fold ⊕ of b.
	ops := OpCompBS(Add)
	b := Scalar(2)
	for k := 0; k < 33; k++ {
		got := First(ops.Repeat(k, ops.Prepare(b)))
		want := repeated(Add, b, k)
		if !Equal(got, want) {
			t.Fatalf("repeat_bs(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestRepeatBSFigure6(t *testing.T) {
	// Figure 6: b = 2, ⊕ = +, six processors get [2 4 6 8 10 12].
	ops := OpCompBS(Add)
	want := []float64{2, 4, 6, 8, 10, 12}
	for k, w := range want {
		got := First(ops.Repeat(k, ops.Prepare(Scalar(2))))
		if !Equal(got, Scalar(w)) {
			t.Fatalf("proc %d: repeat = %v, want %g", k, got, w)
		}
	}
}

func TestRepeatBSS2ComputesScanScanOfBroadcast(t *testing.T) {
	// bcast; scan(⊗); scan(⊕): processor k gets ⊕_{i=0..k} b^{⊗(i+1)}.
	ops := OpCompBSS2(Mul, Add)
	b := Scalar(2)
	for k := 0; k < 17; k++ {
		got := First(ops.Repeat(k, ops.Prepare(b)))
		// Reference: ⊗-powers then ⊕-prefix.
		pow := Value(b)
		acc := Value(b)
		for i := 1; i <= k; i++ {
			pow = Mul.Apply(pow, b)
			acc = Add.Apply(acc, pow)
		}
		if !Equal(got, acc) {
			t.Fatalf("repeat_bss2(%d) = %v, want %v", k, got, acc)
		}
	}
}

func TestRepeatBSSComputesDoubleScanOfBroadcast(t *testing.T) {
	// bcast; scan(⊕); scan(⊕): processor k gets the k-th prefix of the
	// prefixes, (k+1)(k+2)/2 · b for ⊕ = +.
	ops := OpCompBSS(Add)
	b := Scalar(3)
	for k := 0; k < 33; k++ {
		got := First(ops.Repeat(k, ops.Prepare(b)))
		want := Scalar(float64((k+1)*(k+2)/2) * 3)
		if !Equal(got, want) {
			t.Fatalf("repeat_bss(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestRepeatCharge(t *testing.T) {
	ops := OpCompBS(Add) // CostE 1, CostO 2
	// k = 6 = 110b: digits LSB-first are 0,1,1 → e,o,o → 1+2+2 = 5 per word.
	if got := ops.RepeatCharge(6, 10); got != 50 {
		t.Fatalf("RepeatCharge(6, 10) = %g, want 50", got)
	}
	if got := ops.RepeatCharge(0, 10); got != 0 {
		t.Fatalf("RepeatCharge(0, 10) = %g, want 0", got)
	}
}

func TestQuickRepeatMatchesNaive(t *testing.T) {
	// The logarithmic repeat schema equals the naive k-fold application
	// of g (for BS-Comcast, g = (⊕ b) on the running prefix).
	ops := OpCompBS(Add)
	f := func(k uint8, bv int8) bool {
		b := Scalar(bv)
		got := First(ops.Repeat(int(k), ops.Prepare(b)))
		return Equal(got, repeated(Add, b, int(k)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIterOpBR(t *testing.T) {
	// iter(op_br) log p times computes the p-fold reduction of b.
	op := OpBR(Add)
	b := Scalar(5)
	w := op.Prepare(b)
	for j := 0; j < 5; j++ {
		w = op.F(w)
	}
	// 2^5 = 32 copies of 5.
	if !Equal(First(w), Scalar(160)) {
		t.Fatalf("op_br^5(5) = %v, want 160", First(w))
	}
}

func TestIterOpBSR2(t *testing.T) {
	// iter(op_bsr2) log p times computes bcast; scan(⊗); reduce(⊕) on
	// p = 2^j processors.
	op := OpBSR2(Mul, Add)
	b := Scalar(2)
	for j := 0; j <= 4; j++ {
		w := op.Prepare(b)
		for i := 0; i < j; i++ {
			w = op.F(w)
		}
		p := 1 << j
		// Reference: Σ_{i=1..p} 2^i = 2^{p+1} - 2.
		var want float64
		pow := 1.0
		for i := 1; i <= p; i++ {
			pow *= 2
			want += pow
		}
		if !Equal(First(w), Scalar(want)) {
			t.Fatalf("p=%d: op_bsr2 iter = %v, want %g", p, First(w), want)
		}
	}
}

func TestIterOpBSR(t *testing.T) {
	// iter(op_bsr) log p times computes bcast; scan(⊕); reduce(⊕) for
	// commutative ⊕ on p = 2^j processors: p(p+1)/2 · b for +.
	op := OpBSR(Add)
	b := Scalar(4)
	for j := 0; j <= 5; j++ {
		w := op.Prepare(b)
		for i := 0; i < j; i++ {
			w = op.F(w)
		}
		p := 1 << j
		want := Scalar(float64(p*(p+1)/2) * 4)
		if !Equal(First(w), want) {
			t.Fatalf("p=%d: op_bsr iter = %v, want %v", p, First(w), want)
		}
	}
}

func TestIterOpCharge(t *testing.T) {
	op := OpBSR2(Mul, Add) // Cost 3, Arity 2
	pair := Tuple{Vec{1, 2}, Vec{3, 4}}
	if got := op.Charge(pair); got != 6 {
		t.Fatalf("op_bsr2.Charge(pair of 2-vecs) = %g, want 6", got)
	}
}

func TestDerivedOpCosts(t *testing.T) {
	// The operation counts of Table 1.
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"op_sr2", OpSR2(Mul, Add).Cost, 3},
		{"op_sr", OpSR(Add).Cost, 4},
		{"op_ss lo", OpSS(Add).CostLo, 5},
		{"op_ss hi", OpSS(Add).CostHi, 8},
		{"bs e", OpCompBS(Add).CostE, 1},
		{"bs o", OpCompBS(Add).CostO, 2},
		{"bss2 e", OpCompBSS2(Mul, Add).CostE, 3},
		{"bss2 o", OpCompBSS2(Mul, Add).CostO, 5},
		{"bss e", OpCompBSS(Add).CostE, 5},
		{"bss o", OpCompBSS(Add).CostO, 8},
		{"op_br", OpBR(Add).Cost, 1},
		{"op_bsr2", OpBSR2(Mul, Add).Cost, 3},
		{"op_bsr", OpBSR(Add).Cost, 4},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s cost = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestOpSegmentedAssociative(t *testing.T) {
	seg := OpSegmented(Add)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		mk := func() Tuple {
			return Tuple{Scalar(rng.Intn(2)), Scalar(rng.Intn(9) - 4)}
		}
		a, b, c := mk(), mk(), mk()
		l := seg.Apply(seg.Apply(a, b), c)
		r := seg.Apply(a, seg.Apply(b, c))
		if !Equal(l, r) {
			t.Fatalf("op_seg not associative at (%v, %v, %v): %v vs %v", a, b, c, l, r)
		}
	}
}

func TestOpSegmentedScanSemantics(t *testing.T) {
	// Sequential fold of op_seg computes per-segment prefix sums.
	seg := OpSegmented(Add)
	flags := []float64{1, 0, 0, 1, 0, 1, 0, 0}
	vals := []float64{3, 4, 5, 10, 1, 7, 7, 7}
	want := []float64{3, 7, 12, 10, 11, 7, 14, 21}
	acc := Value(Tuple{Scalar(flags[0]), Scalar(vals[0])})
	for i := 1; i < len(vals); i++ {
		acc = seg.Apply(acc, Tuple{Scalar(flags[i]), Scalar(vals[i])})
		got := acc.(Tuple)[1]
		if !Equal(got, Scalar(want[i])) {
			t.Fatalf("position %d: %v, want %g", i, got, want[i])
		}
	}
}
