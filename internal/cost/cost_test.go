package cost

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func params(ts, tw float64, m, p int) Params {
	return Params{Ts: ts, Tw: tw, M: m, P: p}
}

func TestLogP(t *testing.T) {
	cases := []struct {
		p    int
		want float64
	}{
		{1, 0}, {2, 1}, {4, 2}, {8, 3}, {6, 3}, {64, 6}, {100, 7},
	}
	for _, c := range cases {
		if got := (Params{P: c.p}).LogP(); got != c.want {
			t.Errorf("LogP(%d) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestCollectiveFormulas(t *testing.T) {
	p := params(100, 2, 16, 8)
	// Equations (15)–(17) with log p = 3, m = 16.
	if got, want := Bcast(p), 3*(100+16*2.0); got != want {
		t.Errorf("Bcast = %g, want %g", got, want)
	}
	if got, want := Reduce(p), 3*(100+16*3.0); got != want {
		t.Errorf("Reduce = %g, want %g", got, want)
	}
	if got, want := Scan(p), 3*(100+16*4.0); got != want {
		t.Errorf("Scan = %g, want %g", got, want)
	}
}

func TestOfTermMatchesCollectiveFormulas(t *testing.T) {
	p := params(50, 3, 32, 16)
	if got := OfTerm(term.Bcast{}, p); got != Bcast(p) {
		t.Errorf("OfTerm(bcast) = %g, want %g", got, Bcast(p))
	}
	if got := OfTerm(term.Reduce{Op: algebra.Add}, p); got != Reduce(p) {
		t.Errorf("OfTerm(reduce) = %g, want %g", got, Reduce(p))
	}
	if got := OfTerm(term.Scan{Op: algebra.Add}, p); got != Scan(p) {
		t.Errorf("OfTerm(scan) = %g, want %g", got, Scan(p))
	}
}

func TestOfTermSumsStages(t *testing.T) {
	p := params(50, 3, 32, 16)
	seq := term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}}
	if got, want := OfTerm(seq, p), Bcast(p)+Scan(p); got != want {
		t.Errorf("OfTerm(seq) = %g, want %g", got, want)
	}
}

func TestOfTermDerivedOperators(t *testing.T) {
	p := params(100, 2, 8, 4) // log p = 2, m = 8
	logp, m := 2.0, 8.0

	// reduce(op_sr2): ts + 2m·tw + 3m per phase.
	sr2 := algebra.OpSR2(algebra.Mul, algebra.Add)
	got := OfTerm(term.Reduce{Op: sr2}, p)
	want := logp * (100 + 2*m*2 + 3*m)
	if got != want {
		t.Errorf("reduce(op_sr2) = %g, want %g", got, want)
	}

	// scan(op_sr2): ts + 2m·tw + 6m per phase.
	got = OfTerm(term.Scan{Op: sr2}, p)
	want = logp * (100 + 2*m*2 + 6*m)
	if got != want {
		t.Errorf("scan(op_sr2) = %g, want %g", got, want)
	}

	// reduce_balanced(op_sr): ts + 2m·tw + 4m per phase.
	sr := algebra.OpSR(algebra.Add)
	got = OfTerm(term.Reduce{Op: sr, Balanced: true}, p)
	want = logp * (100 + 2*m*2 + 4*m)
	if got != want {
		t.Errorf("reduce_balanced(op_sr) = %g, want %g", got, want)
	}

	// scan_balanced(op_ss): ts + 3m·tw + 8m per phase.
	ss := algebra.OpSS(algebra.Add)
	got = OfTerm(term.ScanBal{Op: ss}, p)
	want = logp * (100 + 3*m*2 + 8*m)
	if got != want {
		t.Errorf("scan_balanced(op_ss) = %g, want %g", got, want)
	}

	// comcast via bcast+repeat (BS): bcast + log p · 2m.
	bs := algebra.OpCompBS(algebra.Add)
	got = OfTerm(term.Comcast{Ops: bs}, p)
	want = Bcast(p) + logp*2*m
	if got != want {
		t.Errorf("comcast(bs) = %g, want %g", got, want)
	}

	// cost-optimal comcast: log p · (ts + 2m·tw + 3m).
	got = OfTerm(term.Comcast{Ops: bs, CostOptimal: true}, p)
	want = logp * (100 + 2*m*2 + 3*m)
	if got != want {
		t.Errorf("comcast(optimal) = %g, want %g", got, want)
	}

	// iter(op_br): log p · m.
	br := algebra.OpBR(algebra.Add)
	got = OfTerm(term.Iter{Op: br}, p)
	want = logp * m
	if got != want {
		t.Errorf("iter(op_br) = %g, want %g", got, want)
	}

	// map f with cost 2: 2m, no log p factor.
	f := &term.Fn{Name: "f", Cost: 2}
	got = OfTerm(term.Map{F: f}, p)
	if got != 2*m {
		t.Errorf("map f = %g, want %g", got, 2*m)
	}

	// map pair and map π₁ are free (§4.2).
	if got := OfTerm(term.Map{F: term.PairFn}, p); got != 0 {
		t.Errorf("map pair = %g, want 0", got)
	}
}

func TestTable1EntriesComplete(t *testing.T) {
	want := []string{
		"SR2-Reduction", "SR-Reduction", "SS2-Scan", "SS-Scan",
		"BS-Comcast", "BSS2-Comcast", "BSS-Comcast",
		"BR-Local", "BSR2-Local", "BSR-Local", "CR-AllLocal",
	}
	got := Table1()
	if len(got) != len(want) {
		t.Fatalf("Table1 has %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Rule != want[i] {
			t.Errorf("entry %d = %s, want %s", i, e.Rule, want[i])
		}
	}
}

func TestTable1ClosedForms(t *testing.T) {
	// Spot-check the linear forms against the printed table at
	// ts = 100, tw = 2, m = 10, p = 8 (log p = 3).
	p := params(100, 2, 10, 8)
	logp := 3.0
	cases := []struct {
		rule          string
		before, after float64
	}{
		{"SR2-Reduction", logp * (2*100 + 10*(2*2+3)), logp * (100 + 10*(2*2+3))},
		{"SR-Reduction", logp * (2*100 + 10*(2*2+3)), logp * (100 + 10*(2*2+4))},
		{"SS2-Scan", logp * (2*100 + 10*(2*2+4)), logp * (100 + 10*(2*2+6))},
		{"SS-Scan", logp * (2*100 + 10*(2*2+4)), logp * (100 + 10*(3*2+8))},
		{"BS-Comcast", logp * (2*100 + 10*(2*2+2)), logp * (100 + 10*(2+2))},
		{"BSS2-Comcast", logp * (3*100 + 10*(3*2+4)), logp * (100 + 10*(2+5))},
		{"BSS-Comcast", logp * (3*100 + 10*(3*2+4)), logp * (100 + 10*(2+8))},
		{"BR-Local", logp * (2*100 + 10*(2*2+1)), logp * 10},
		{"BSR2-Local", logp * (3*100 + 10*(3*2+3)), logp * 3 * 10},
		{"BSR-Local", logp * (3*100 + 10*(3*2+3)), logp * 4 * 10},
	}
	for _, c := range cases {
		e, ok := Lookup(c.rule)
		if !ok {
			t.Fatalf("no entry %s", c.rule)
		}
		if got := e.Before(p); got != c.before {
			t.Errorf("%s before = %g, want %g", c.rule, got, c.before)
		}
		if got := e.After(p); got != c.after {
			t.Errorf("%s after = %g, want %g", c.rule, got, c.after)
		}
	}
}

func TestTable1Conditions(t *testing.T) {
	cases := []struct {
		rule string
		p    Params
		want bool
	}{
		// SR-Reduction: ts > m.
		{"SR-Reduction", params(100, 1, 50, 8), true},
		{"SR-Reduction", params(100, 1, 200, 8), false},
		// SS2-Scan: ts > 2m (§4.2).
		{"SS2-Scan", params(100, 1, 49, 8), true},
		{"SS2-Scan", params(100, 1, 50, 8), false},
		{"SS2-Scan", params(100, 1, 51, 8), false},
		// SS-Scan: ts > m(tw+4).
		{"SS-Scan", params(100, 1, 19, 8), true},
		{"SS-Scan", params(100, 1, 21, 8), false},
		// BSS2-Comcast: tw + ts/m > 1/2.
		{"BSS2-Comcast", params(1, 1, 1000, 8), true}, // tw alone exceeds 1/2
		{"BSS2-Comcast", params(1, 0.1, 1000, 8), false},
		// BSS-Comcast: tw + ts/m > 2.
		{"BSS-Comcast", params(1, 3, 1000, 8), true},
		{"BSS-Comcast", params(1, 1, 1000, 8), false},
		// BSR-Local: tw + ts/m >= 1/3.
		{"BSR-Local", params(1, 1, 1000, 8), true},
		{"BSR-Local", params(1, 0.1, 1000, 8), false},
		// Always-on rules.
		{"SR2-Reduction", params(0.001, 0.001, 100000, 8), true},
		{"BS-Comcast", params(0.001, 0.001, 100000, 8), true},
		{"BR-Local", params(0.001, 0.001, 100000, 8), true},
		{"BSR2-Local", params(0.001, 0.001, 100000, 8), true},
		{"CR-AllLocal", params(0.001, 0.001, 100000, 8), true},
	}
	for _, c := range cases {
		e, ok := Lookup(c.rule)
		if !ok {
			t.Fatalf("no entry %s", c.rule)
		}
		if got := e.Improves(c.p); got != c.want {
			t.Errorf("%s.Improves(%+v) = %v, want %v", c.rule, c.p, got, c.want)
		}
	}
}

// TestTable1ConditionsConsistent checks, for every rule and a wide
// parameter sweep, that the printed improvement condition agrees with
// Before > After — i.e., the table is internally consistent.
func TestTable1ConditionsConsistent(t *testing.T) {
	for _, e := range Table1() {
		for _, ts := range []float64{0.5, 1, 10, 100, 1000, 10000} {
			for _, tw := range []float64{0.1, 1, 2, 8} {
				for _, m := range []int{1, 10, 100, 1000, 30000} {
					p := params(ts, tw, m, 64)
					improves := e.Before(p) > e.After(p)
					cond := e.Improves(p)
					// The BSR-Local condition is ≥, so allow equality
					// to disagree by a hair at the exact boundary.
					if improves != cond && math.Abs(e.Before(p)-e.After(p)) > 1e-9 {
						t.Errorf("%s at %+v: before=%g after=%g improves=%v cond(%s)=%v",
							e.Rule, p, e.Before(p), e.After(p), improves, e.Condition, cond)
					}
				}
			}
		}
	}
}

func TestSS2CrossoverAtTsOver2(t *testing.T) {
	// §4.2: SS2-Scan pays off iff ts > 2m, so the crossover block size
	// at ts = 1000 is m = 499 (the largest m with 1000 > 2m... m = 499
	// since m = 500 gives equality).
	e, _ := Lookup("SS2-Scan")
	base := params(1000, 1, 0, 64)
	got := Crossover(e, base, 1<<20)
	if got != 499 {
		t.Fatalf("SS2 crossover = %d, want 499", got)
	}
}

func TestCrossoverEdges(t *testing.T) {
	always, _ := Lookup("SR2-Reduction")
	if got := Crossover(always, params(1, 1, 0, 8), 1024); got != 1024 {
		t.Fatalf("always-improving crossover = %d, want 1024", got)
	}
	ss, _ := Lookup("SS-Scan")
	// ts = 1: improves only if 1 > m(tw+4) — false even at m = 1 with tw = 1.
	if got := Crossover(ss, params(1, 1, 0, 8), 1024); got != 0 {
		t.Fatalf("never-improving crossover = %d, want 0", got)
	}
}

func TestLookupMissing(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found a nonexistent rule")
	}
}

// TestOfTermTracksBlockSize: the estimator threads the per-processor
// block size through redistribution stages instead of charging the
// global Params.M everywhere. A gather leaves the root holding p·m
// words, a scatter hands back a 1/p share, and the stages in between
// are charged at the block they actually see.
func TestOfTermTracksBlockSize(t *testing.T) {
	p := params(100, 2, 16, 8)
	logp, m, pp := p.LogP(), p.m(), float64(p.P)

	// A gather;scatter round trip is charged exactly as before the
	// block tracking: p·m words through the root's link each way.
	pair := term.Seq{term.Gather{}, term.Scatter{}}
	if got, want := OfTerm(pair, p), 2*(logp*p.Ts+pp*m*p.Tw); got != want {
		t.Errorf("OfTerm(gather;scatter) = %g, want %g", got, want)
	}

	// A broadcast between gather and scatter ships the root's fused
	// p·m-word block, not m words.
	seq := term.Seq{term.Gather{}, term.Bcast{}, term.Scatter{}}
	want := (logp*p.Ts + pp*m*p.Tw) + // gather at block m
		logp*(p.Ts+pp*m*p.Tw) + // bcast at block p·m
		(logp*p.Ts + pp*m*p.Tw) // scatter of the p·m-word block
	if got := OfTerm(seq, p); got != want {
		t.Errorf("OfTerm(gather;bcast;scatter) = %g, want %g", got, want)
	}

	// A scan after a bare scatter works on m/p-word blocks.
	seq = term.Seq{term.Scatter{}, term.Scan{Op: algebra.Add}}
	small := m / pp
	want = (logp*p.Ts + m*p.Tw) + logp*(p.Ts+small*p.Tw+2*small)
	if got := OfTerm(seq, p); got != want {
		t.Errorf("OfTerm(scatter;scan) = %g, want %g", got, want)
	}

	// Local stages scale with the tracked block too.
	f := &term.Fn{Name: "f", Cost: 3}
	seq = term.Seq{term.Gather{}, term.Map{F: f}, term.Scatter{}}
	want = (logp*p.Ts + pp*m*p.Tw) + 3*pp*m + (logp*p.Ts + pp*m*p.Tw)
	if got := OfTerm(seq, p); got != want {
		t.Errorf("OfTerm(gather;map;scatter) = %g, want %g", got, want)
	}
}
