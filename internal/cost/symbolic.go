package cost

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// LinForm is a symbolic cost expression a·ts + b·m·tw + c·m (+ k), the
// shape of every per-log-p entry in Table 1. Symbolic forms let the
// library *derive* the table — both the time columns and the "Improved
// if" conditions — instead of merely storing it, reproducing the §4.2
// calculation mechanically.
type LinForm struct {
	// Ts is the coefficient of the start-up time.
	Ts float64
	// MTw is the coefficient of m·tw.
	MTw float64
	// M is the coefficient of the block size m.
	M float64
	// Const is the constant term (unused by the paper's entries but
	// kept for generality).
	Const float64
}

// Add returns l + r.
func (l LinForm) Add(r LinForm) LinForm {
	return LinForm{l.Ts + r.Ts, l.MTw + r.MTw, l.M + r.M, l.Const + r.Const}
}

// Sub returns l − r.
func (l LinForm) Sub(r LinForm) LinForm {
	return LinForm{l.Ts - r.Ts, l.MTw - r.MTw, l.M - r.M, l.Const - r.Const}
}

// Scale returns s·l.
func (l LinForm) Scale(s float64) LinForm {
	return LinForm{s * l.Ts, s * l.MTw, s * l.M, s * l.Const}
}

// IsZero reports whether every coefficient vanishes.
func (l LinForm) IsZero() bool {
	return l.Ts == 0 && l.MTw == 0 && l.M == 0 && l.Const == 0
}

// Eval substitutes concrete machine parameters (per log p).
func (l LinForm) Eval(p Params) float64 {
	return l.Ts*p.Ts + l.MTw*p.m()*p.Tw + l.M*p.m() + l.Const
}

// EvalTotal multiplies by the log p factor.
func (l LinForm) EvalTotal(p Params) float64 {
	return p.LogP() * l.Eval(p)
}

func fmtCoeff(c float64, unit string, first bool) string {
	sign := " + "
	switch {
	case c < 0 && first:
		sign = "-"
		c = -c
	case c < 0:
		sign = " - "
		c = -c
	case first:
		sign = ""
	}
	if c == 1 && unit != "" {
		return sign + unit
	}
	num := strings.TrimSuffix(strings.TrimSuffix(fmt.Sprintf("%.2f", c), "0"), "0")
	num = strings.TrimSuffix(num, ".")
	if unit == "" {
		return sign + num
	}
	return sign + num + unit
}

// String renders the form in the paper's style, e.g. "2ts + m(2tw + 3)".
func (l LinForm) String() string {
	var b strings.Builder
	if l.Ts != 0 {
		b.WriteString(fmtCoeff(l.Ts, "ts", true))
	}
	switch {
	case l.MTw != 0:
		// Group the m terms as m(a·tw + b), as the table does.
		inner := fmtCoeff(l.MTw, "tw", true)
		if l.M != 0 {
			inner += fmtCoeff(l.M, "", false)
		}
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		b.WriteString("m(" + inner + ")")
	case l.M != 0:
		b.WriteString(fmtCoeff(l.M, "m", b.Len() == 0))
	}
	if l.Const != 0 {
		b.WriteString(fmtCoeff(l.Const, "", b.Len() == 0))
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// SymbolicOfTerm computes the symbolic per-log-p cost of a term under the
// butterfly model, mirroring OfTerm. Stages without the log p factor
// (plain maps) are scaled by 1/logp and therefore need a concrete p; the
// paper's table entries contain none, so SymbolicOfTerm supports exactly
// the stage types that appear in rules: collectives, comcast, iter, and
// the free pair/π₁ maps. It panics on a costed plain map.
func SymbolicOfTerm(t term.Term) LinForm {
	var total LinForm
	for _, stage := range term.Stages(t) {
		total = total.Add(symbolicOfStage(stage))
	}
	return total
}

func symbolicOfStage(t term.Term) LinForm {
	switch s := t.(type) {
	case term.Map:
		if s.F.Cost != 0 {
			panic("cost: symbolic form of a costed local stage is not per-log-p")
		}
		return LinForm{}
	case term.MapIdx:
		// The repeat schema of the comcast rules: worst case applies o
		// each of the log p digits.
		return LinForm{M: float64(repeatWorstCost(s))}
	case term.Bcast:
		return LinForm{Ts: 1, MTw: 1}
	case term.Gather, term.Scatter:
		// Not a per-log-p linear form (the bandwidth term is p·m/log p
		// per phase); the symbolic calculus covers only the stages the
		// paper's table needs.
		panic("cost: gather/scatter have no per-log-p symbolic form")
	case term.Scan:
		return LinForm{Ts: 1, MTw: float64(s.Op.Arity), M: 2 * float64(s.Op.Cost)}
	case term.ScanBal:
		return LinForm{Ts: 1, MTw: float64(s.Op.ShipWidth), M: float64(s.Op.CostHi)}
	case term.Reduce:
		return LinForm{Ts: 1, MTw: float64(s.Op.Arity), M: float64(s.Op.Cost)}
	case term.Comcast:
		if s.CostOptimal {
			return LinForm{Ts: 1, MTw: float64(s.Ops.Arity), M: float64(s.Ops.CostE + s.Ops.CostO)}
		}
		return LinForm{Ts: 1, MTw: 1, M: float64(s.Ops.CostO)}
	case term.Iter:
		return LinForm{M: float64(s.Op.Cost)}
	case term.Seq:
		return SymbolicOfTerm(s)
	}
	panic(fmt.Sprintf("cost: no symbolic form for %T", t))
}

func repeatWorstCost(s term.MapIdx) int {
	// The worst processor applies the odd step every phase; its cost per
	// phase is recoverable from Charge at a power-of-two-minus-one index.
	if s.F.Charge == nil {
		return 0
	}
	// Charge(1, 1) is exactly one odd step on one word.
	return int(s.F.Charge(1, 1))
}

// Condition is a machine-parameter predicate derived symbolically.
type Condition struct {
	// Diff is before − after (per log p); the rule improves iff
	// Diff > 0 (or ≥ 0 when the difference can vanish identically).
	Diff LinForm
	// Text is the human-readable condition in the paper's style.
	Text string
	// Always and Never are set when the verdict is parameter-free.
	Always, Never bool
}

// Holds evaluates the condition at concrete parameters.
func (c Condition) Holds(p Params) bool {
	return c.Diff.Eval(p) > 0
}

// DeriveCondition computes the improvement condition of a rewrite from
// the symbolic costs of its two sides, reproducing the §4.2 derivation:
// simplify before − after and solve for the parameter regime where it is
// positive (ts, tw, m are all positive).
func DeriveCondition(before, after LinForm) Condition {
	d := before.Sub(after)
	c := Condition{Diff: d}
	pos := d.Ts >= 0 && d.MTw >= 0 && d.M >= 0 && d.Const >= 0
	neg := d.Ts <= 0 && d.MTw <= 0 && d.M <= 0 && d.Const <= 0
	switch {
	case d.IsZero():
		c.Never = true
		c.Text = "never (equal cost)"
	case pos:
		c.Always = true
		c.Text = "always"
	case neg:
		c.Never = true
		c.Text = "never"
	case d.Ts > 0 && d.MTw == 0 && d.M < 0 && d.Const == 0:
		// a·ts > b·m  →  ts > (b/a)·m.
		ratio := -d.M / d.Ts
		if ratio == 1 {
			c.Text = "ts > m"
		} else {
			c.Text = fmt.Sprintf("ts > %sm", trimNum(ratio))
		}
	case d.Ts > 0 && d.MTw < 0 && d.M < 0 && d.Const == 0:
		// a·ts > m(b·tw + c)  →  ts > m(tw·b/a + c/a).
		bw := -d.MTw / d.Ts
		cm := -d.M / d.Ts
		inner := ""
		if bw == 1 {
			inner = "tw"
		} else {
			inner = trimNum(bw) + "tw"
		}
		inner += fmt.Sprintf(" + %s", trimNum(cm))
		c.Text = fmt.Sprintf("ts > m(%s)", inner)
	case d.Ts > 0 && d.MTw > 0 && d.M < 0 && d.Const == 0:
		// a·ts + b·m·tw > c·m  →  tw + (a/b)·ts/m > c/b.
		a, bb, cc := d.Ts, d.MTw, -d.M
		lhs := "tw"
		if a != bb {
			lhs = fmt.Sprintf("tw + %s·ts/m", trimNum(a/bb))
		} else {
			lhs = "tw + ts/m"
		}
		c.Text = fmt.Sprintf("%s > %s", lhs, trimNum(cc/bb))
	default:
		c.Text = fmt.Sprintf("%s > 0", d)
	}
	return c
}

func trimNum(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	// Render simple thirds the way the paper does.
	switch s {
	case "0.3333":
		return "1/3"
	case "0.5":
		return "1/2"
	}
	return s
}
