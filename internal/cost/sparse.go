package cost

import "repro/internal/term"

// Cost lines for the sparse and irregular collectives, in the
// per-neighbor k·ts + Σmᵢ·tw shape of the message-combining literature
// (Träff et al.; see docs/SPARSE.md). Unlike the dense butterfly
// estimates these carry no log p factor: a halo is k point-to-point
// transfers and the irregular collectives are linear-round algorithms.

// HaloDegree is the number of messages each rank sends (and receives)
// in a halo exchange: the distinct nonzero offsets mod p for the
// isomorphic form, the worst rank's distinct non-self sources for the
// per-rank form. Offsets congruent mod p share one message; self-edges
// and duplicates are free.
func HaloDegree(h *term.Hood, p int) int {
	if h.Isomorphic() {
		seen := make(map[int]bool, len(h.Offsets))
		k := 0
		for _, o := range h.Offsets {
			d := o
			if p > 1 {
				d = ((o % p) + p) % p
			} else if p == 1 {
				d = 0
			}
			if d != 0 && !seen[d] {
				seen[d] = true
				k++
			}
		}
		return k
	}
	worst := 0
	for i, l := range h.Lists {
		seen := make(map[int]bool, len(l))
		k := 0
		for _, src := range l {
			if src != i && !seen[src] {
				seen[src] = true
				k++
			}
		}
		if k > worst {
			worst = k
		}
	}
	return worst
}

// haloWidth is the fan-in of the halo's output tuple — the factor by
// which the per-processor block grows (the worst rank's, for the
// per-rank form).
func haloWidth(h *term.Hood) int {
	if h.Isomorphic() {
		return len(h.Offsets)
	}
	worst := 0
	for _, l := range h.Lists {
		if len(l) > worst {
			worst = len(l)
		}
	}
	return worst
}

// HaloLine is the halo-exchange estimate at block size b:
// k·(ts + b·tw) for k = HaloDegree — one start-up and one b-word
// transfer per distinct neighbor.
func HaloLine(h *term.Hood, p Params, b float64) float64 {
	return float64(HaloDegree(h, p.P)) * (p.Ts + b*p.Tw)
}

// AllGatherVLine is the ring allgatherv estimate for a counts vector
// with total T = Σcounts: p−1 rounds of one start-up each, shipping
// all but the rank's own block through each link —
// (p−1)·ts + ((p−1)/p)·T·tw.
func AllGatherVLine(counts []int, p Params) float64 {
	n := len(counts)
	if n <= 1 {
		return 0
	}
	T := float64(term.SumCounts(counts))
	return float64(n-1)*p.Ts + float64(n-1)/float64(n)*T*p.Tw
}

// ReduceScatterVLine is the direct pairwise reduce-scatter estimate:
// p−1 start-ups, all but the rank's own slice of T words through each
// link, and p−1 combines of the widest slice at c ops per element —
// (p−1)·ts + ((p−1)/p)·T·tw + (p−1)·c·max(counts).
func ReduceScatterVLine(opCost int, counts []int, p Params) float64 {
	n := len(counts)
	if n <= 1 {
		return 0
	}
	T := float64(term.SumCounts(counts))
	return float64(n-1)*p.Ts + float64(n-1)/float64(n)*T*p.Tw +
		float64(n-1)*float64(opCost)*float64(maxCount(counts))
}

func maxCount(counts []int) int {
	m := 0
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}
