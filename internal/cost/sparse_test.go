package cost

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func TestHaloDegreeDedup(t *testing.T) {
	cases := []struct {
		offs []int
		p    int
		want int
	}{
		{[]int{-1, 1}, 4, 2},
		{[]int{-2, 2}, 4, 1}, // ±2 collide mod 4
		{[]int{0, 0}, 4, 0},  // self-edges free
		{[]int{3, -3}, 3, 0}, // congruent to 0 mod 3
		{[]int{1, 4}, 3, 1},  // 4 ≡ 1 mod 3
		{[]int{-1, 1}, 1, 0}, // single rank: everything local
		{[]int{1, 2, 3}, 8, 3},
	}
	for _, tc := range cases {
		h := &term.Hood{Offsets: tc.offs}
		if got := HaloDegree(h, tc.p); got != tc.want {
			t.Errorf("HaloDegree(%v, p=%d) = %d, want %d", tc.offs, tc.p, got, tc.want)
		}
	}
	lists := &term.Hood{Lists: [][]int{{1, 2, 1}, {1}, {0}}}
	if got := HaloDegree(lists, 3); got != 2 {
		t.Errorf("HaloDegree(lists) = %d, want 2 (worst rank, dedup, self free)", got)
	}
}

func TestSparseCostLines(t *testing.T) {
	p := Params{Ts: 4, Tw: 1, P: 4}
	h := &term.Hood{Offsets: []int{-1, 1}}
	if got := HaloLine(h, p, 3); got != 2*(4+3) {
		t.Errorf("HaloLine = %v, want 14", got)
	}
	counts := []int{1, 2, 3}
	// (p−1)·ts + ((p−1)/p)·T·tw with p = 3, T = 6.
	if got := AllGatherVLine(counts, p); got != 2*4+2.0/3.0*6 {
		t.Errorf("AllGatherVLine = %v, want 12", got)
	}
	if got := AllGatherVLine([]int{5}, p); got != 0 {
		t.Errorf("single-rank AllGatherVLine = %v, want 0", got)
	}
	// + (p−1)·c·max(counts) combine time.
	if got := ReduceScatterVLine(1, counts, p); got != 12+2*3 {
		t.Errorf("ReduceScatterVLine = %v, want 18", got)
	}
}

// TestSparseStageCostsThreadBlockSize pins the block-size reshaping: a
// halo multiplies the running block by its width, the V-collectives set
// it to the total and the per-rank maximum.
func TestSparseStageCostsThreadBlockSize(t *testing.T) {
	p := Params{Ts: 4, Tw: 1, P: 4, M: 2}
	halo := term.Halo{H: &term.Hood{Offsets: []int{-1, 1}}}
	// halo at b=2 costs 2·(4+2), then map inc runs on the widened 4-word
	// block: OfTerm must charge the map at 4 words, not 2.
	prog := term.Seq{halo, term.Map{F: &term.Fn{Name: "inc", Cost: 1}}}
	withMap := OfTerm(prog, p)
	alone := OfTerm(term.Seq{halo}, p)
	if withMap-alone != 4 {
		t.Errorf("map after halo charged %v, want 4 (widened block)", withMap-alone)
	}
	// Floor is admissible: never above the true estimate.
	for _, prog := range []term.Seq{
		{halo, term.Reduce{Op: algebra.Add}},
		{term.AllGatherV{Counts: []int{1, 0, 3, 1}}, term.Reduce{Op: algebra.Add}},
		{term.ReduceScatterV{Op: algebra.Add, Counts: []int{1, 0, 3, 1}}, term.AllGatherV{Counts: []int{1, 0, 3, 1}}},
	} {
		if f, c := Floor(prog, p), OfTerm(prog, p); f > c {
			t.Errorf("Floor(%s) = %v exceeds OfTerm = %v", prog, f, c)
		}
	}
}

// TestHHCombineIsACostTradeoff pins that message combining is not
// uniformly profitable: offsets that collide mod p shrink the combined
// degree below k1+k2, while spread-out offsets blow the sumset up past
// it — the reason the rule is cost-gated rather than unconditional.
func TestHHCombineIsACostTradeoff(t *testing.T) {
	p := Params{Ts: 100, Tw: 1, P: 64, M: 1}
	pair := func(o1, o2 []int) (float64, float64) {
		lhs := term.Seq{
			term.Halo{H: &term.Hood{Offsets: o1}},
			term.Halo{H: &term.Hood{Offsets: o2}},
		}
		combined := make([]int, 0, len(o1)*len(o2))
		for _, q := range o2 {
			for _, o := range o1 {
				combined = append(combined, q+o)
			}
		}
		rhs := term.Seq{term.Halo{H: &term.Hood{Offsets: combined}}}
		return OfTerm(lhs, p), OfTerm(rhs, p)
	}
	if l, r := pair([]int{-1, 1}, []int{-1, 1}); r >= l {
		t.Errorf("ring halo squared: combined %v not cheaper than pair %v", r, l)
	}
	if l, r := pair([]int{1, 2, 4}, []int{8, 16, 32}); r <= l {
		t.Errorf("spread offsets: combined %v not dearer than pair %v (sumset blowup)", r, l)
	}
}
