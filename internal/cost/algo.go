package cost

import (
	"fmt"
	"math"

	"repro/internal/term"
)

// This file extends the §4.1 calculus from "the butterfly cost" to a
// portfolio of collective algorithms. The paper prices every collective on
// one topology; the related work (Träff 2024; Lowery & Langou; the
// poplibs ring programs) shows no single algorithm wins across the whole
// (p, m) plane. Each Algo below carries its own closed-form cost line in
// the same a·ts + b·m·tw + c·m shape as Table 1, so the calibrated
// parameters that validate the rules also rank the algorithms — the
// selection layer (package coll/sel) simply takes the argmin.

// Algo names a collective-algorithm implementation.
type Algo string

// The algorithm portfolio.
const (
	// AlgoButterfly is the §4.1 butterfly/binomial implementation the
	// paper's estimates assume: log p phases of one transfer and one
	// combine. The baseline every alternative is measured against.
	AlgoButterfly Algo = "butterfly"
	// AlgoRabenseifner is the reduce-scatter + allgather all-reduction
	// (recursive halving then recursive doubling): 2·log p start-ups but
	// only ~2m words and ~m combines per member — the classic large-block
	// all-reduce for power-of-two-ish groups (Rabenseifner; Träff 2024).
	AlgoRabenseifner Algo = "rabenseifner"
	// AlgoRing is the unidirectional ring reduce-scatter + allgather:
	// 2(p−1) start-ups, ~2m words — bandwidth-optimal, start-up-heavy.
	AlgoRing Algo = "ring"
	// AlgoRingBi is the bidirectional ring (as in the poplibs ring
	// program): both ring directions carry half the block concurrently,
	// halving the per-step transfer volume on full-duplex links.
	AlgoRingBi Algo = "ring-bi"
	// AlgoPipeline is the chain-pipelined segmented reduction with the
	// Lowery–Langou segment-count choice: k segments stream down a rank
	// chain, overlapping transfer and combine across segments.
	AlgoPipeline Algo = "pipeline"
)

// Collective names for the selection layer.
const (
	CollAllReduce = "allreduce"
	CollReduce    = "reduce"
)

// ParseAlgo resolves an algorithm name; the empty string means butterfly.
func ParseAlgo(s string) (Algo, error) {
	switch Algo(s) {
	case "", AlgoButterfly:
		return AlgoButterfly, nil
	case AlgoRabenseifner, AlgoRing, AlgoRingBi, AlgoPipeline:
		return Algo(s), nil
	}
	return "", fmt.Errorf("unknown algorithm %q", s)
}

// Algos lists the candidate algorithms for a collective, baseline first.
// Unknown collectives have only the butterfly.
func Algos(collective string) []Algo {
	switch collective {
	case CollAllReduce:
		return []Algo{AlgoButterfly, AlgoRabenseifner, AlgoRing, AlgoRingBi}
	case CollReduce:
		return []Algo{AlgoButterfly, AlgoPipeline}
	}
	return []Algo{AlgoButterfly}
}

// PipelineSegments is the Lowery–Langou segment-count choice for the
// chain-pipelined reduction: the pipeline runs p−2+k slots of
// ts + (m/k)·(tw+1) each, and the k minimizing the product is
// k* = sqrt((p−2)·m·(tw+1)/ts) — more segments when start-ups are cheap
// relative to the per-word work, fewer when they are dear. The integer
// neighbor with the lower cost line is returned, clamped to [1, m].
func PipelineSegments(p Params) int {
	if p.P < 2 || p.M < 1 {
		return 1
	}
	if p.Ts <= 0 {
		return p.M // free start-ups: segment all the way down
	}
	kStar := math.Sqrt(float64(p.P-2) * p.m() * (p.Tw + 1) / p.Ts)
	lo := int(math.Floor(kStar))
	best, bestCost := 1, math.Inf(1)
	for _, k := range []int{lo, lo + 1} {
		if k < 1 {
			k = 1
		}
		if k > p.M {
			k = p.M
		}
		if c := pipelineCost(p, k); c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}

// pipelineCost is the chain-pipeline line at k segments:
// (p−2+k)·(ts + (m/k)·(tw+1)).
func pipelineCost(p Params, k int) float64 {
	return float64(p.P-2+k) * (p.Ts + p.m()/float64(k)*(p.Tw+1))
}

// Applicable reports whether the algorithm can run the collective at the
// given group and block size, independent of the operator. The chunked
// algorithms (rabenseifner, ring, ring-bi) split the block across the
// group and need at least one word per member; they additionally require
// an elementwise base operator, which is the caller's side condition
// (see coll/sel) — a derived tuple operator combines whole tuples and
// cannot be applied chunkwise.
func Applicable(collective string, a Algo, p Params) bool {
	if a == AlgoButterfly {
		return true
	}
	found := false
	for _, cand := range Algos(collective) {
		if cand == a {
			found = true
		}
	}
	if !found || p.P < 2 {
		return false
	}
	switch a {
	case AlgoRabenseifner, AlgoRing:
		return p.M >= p.P
	case AlgoRingBi:
		// Each direction carries half the block: one word per member and
		// direction.
		return p.M >= 2*p.P
	case AlgoPipeline:
		return p.M >= 1
	}
	return false
}

// AlgoCost is the closed-form §4.1-model cost line of running the
// collective with the algorithm at parameters p. It returns ok = false
// when the algorithm does not apply (see Applicable). The lines, with
// q = (p−1)/p the reduce-scatter volume fraction:
//
//	butterfly     log p · (ts + m·(tw+1))            (equation (16))
//	rabenseifner  2·log p·ts + 2q·m·tw + q·m  [+ fold for non-pow2 p]
//	ring          2(p−1)·ts + 2q·m·tw + q·m
//	ring-bi       2(p−1)·ts +  q·m·tw + q·m          (full-duplex links)
//	pipeline      (p−2+k)·(ts + (m/k)·(tw+1)),  k = PipelineSegments
//
// The ring-bi line prices both directions' concurrent transfers at the
// volume of one (the full-duplex assumption); on hosts whose links
// serialize the two directions the measured crossover shifts — exactly
// what calib.ValidateAlgos reports.
func AlgoCost(collective string, a Algo, p Params) (float64, bool) {
	if !Applicable(collective, a, p) {
		return 0, false
	}
	q := float64(p.P-1) / float64(p.P)
	switch a {
	case AlgoButterfly:
		return Reduce(p), true
	case AlgoRabenseifner:
		c := 2*p.LogP()*p.Ts + 2*q*p.m()*p.Tw + q*p.m()
		if p.P&(p.P-1) != 0 {
			// Fold the surplus ranks into leaders first and unfold after:
			// one full-block exchange each way plus one combine.
			c += 2*p.Ts + 2*p.m()*p.Tw + p.m()
		}
		return c, true
	case AlgoRing:
		return 2*float64(p.P-1)*p.Ts + 2*q*p.m()*p.Tw + q*p.m(), true
	case AlgoRingBi:
		return 2*float64(p.P-1)*p.Ts + q*p.m()*p.Tw + q*p.m(), true
	case AlgoPipeline:
		return pipelineCost(p, PipelineSegments(p)), true
	}
	return 0, false
}

// BreakEven finds, by bisection over the block size m within [1, hi],
// the smallest m at which the algorithm's predicted cost undercuts the
// butterfly's at fixed ts, tw and p — the model's crossover point for
// this (collective, algorithm, p). It returns 0 when the algorithm never
// wins in range. Bisection applies because every alternative's line has
// a strictly smaller per-word slope than the butterfly's wherever it
// wins at all: once ahead, it stays ahead as m grows.
func BreakEven(collective string, a Algo, base Params, hi int) int {
	wins := func(m int) bool {
		p := base
		p.M = m
		c, ok := AlgoCost(collective, a, p)
		if !ok {
			return false
		}
		bf, _ := AlgoCost(collective, AlgoButterfly, p)
		return c < bf
	}
	if !wins(hi) {
		return 0
	}
	if wins(1) {
		return 1
	}
	lo, up := 1, hi // !wins(lo), wins(up)
	for up-lo > 1 {
		mid := (lo + up) / 2
		if wins(mid) {
			up = mid
		} else {
			lo = mid
		}
	}
	return up
}

// BestAlgo returns the cheapest applicable algorithm for the collective
// at parameters p under the calibrated model, and its predicted cost.
// The butterfly is always a candidate, so the result never costs more
// than the butterfly line; with elementwise = false only the butterfly
// qualifies (the alternatives all split or segment the block, which is
// only sound for elementwise base operators).
func BestAlgo(collective string, p Params, elementwise bool) (Algo, float64) {
	best := AlgoButterfly
	bestCost, _ := AlgoCost(collective, AlgoButterfly, p)
	if !elementwise {
		return best, bestCost
	}
	for _, a := range Algos(collective)[1:] {
		if c, ok := AlgoCost(collective, a, p); ok && c < bestCost {
			best, bestCost = a, c
		}
	}
	return best, bestCost
}

// OfTermAuto estimates t like OfTerm, but prices every unbalanced
// reduction stage over an elementwise base operator at its best-known
// algorithm's cost line instead of the butterfly's — the scoring function
// of the auto-selecting engine (rules.Engine.Auto). Every other stage is
// priced exactly as OfTerm, so OfTermAuto(t) ≤ OfTerm(t) always, and the
// two agree on programs without eligible reductions.
func OfTermAuto(t term.Term, p Params) float64 {
	total, _ := ofStagesAuto(t, p, p.m())
	return total
}

func ofStagesAuto(t term.Term, p Params, b float64) (float64, float64) {
	total := 0.0
	for _, stage := range term.Stages(t) {
		var c float64
		c, b = ofStageAuto(stage, p, b)
		total += c
	}
	return total, b
}

func ofStageAuto(t term.Term, p Params, b float64) (float64, float64) {
	if s, ok := t.(term.Seq); ok {
		return ofStagesAuto(s, p, b)
	}
	if r, ok := t.(term.Reduce); ok && SelectableReduce(r) {
		collective := CollReduce
		if r.All {
			collective = CollAllReduce
		}
		pp := p
		pp.M = int(math.Round(b))
		_, c := BestAlgo(collective, pp, true)
		return c, b
	}
	return ofStage(t, p, b)
}

// SelectableReduce reports whether a reduction stage is eligible for
// algorithm selection: unbalanced (the balanced variants exist precisely
// to host the rules' non-associative derived operators) and over an
// elementwise base operator, so the block may be split or segmented.
func SelectableReduce(r term.Reduce) bool {
	return !r.Balanced && r.Op != nil && r.Op.Elem != nil && r.Op.Arity == 1
}
