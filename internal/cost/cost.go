// Package cost implements the performance-estimate calculus of §4 of the
// paper: the butterfly-implementation cost formulas for the collective
// operations (equations (15)–(17)), a general estimator for arbitrary
// terms of the formal framework, and the closed-form Table 1 — for every
// optimization rule, the time before, the time after, and the
// machine-parameter condition under which applying the rule improves the
// target performance.
package cost

import (
	"math"

	"repro/internal/term"
)

// Params are the cost-model parameters of §4.1: the machine's start-up
// time Ts and per-word transfer time Tw (in units of one computation
// operation), the per-processor block size M in words, and the number of
// processors P.
type Params struct {
	// Ts is the message start-up time.
	Ts float64 `json:"ts"`
	// Tw is the per-word transfer time.
	Tw float64 `json:"tw"`
	// M is the block size in words.
	M int `json:"m"`
	// P is the number of processors.
	P int `json:"p"`
}

// LogP is the number of butterfly phases, ceil(log2 P) — the log p factor
// of every estimate. The paper treats p as a power of two, for which this
// is exactly log2 p.
func (p Params) LogP() float64 {
	if p.P <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p.P)))
}

// m returns the block size as a float.
func (p Params) m() float64 { return float64(p.M) }

// Bcast is equation (15): log p · (ts + m·tw).
func Bcast(p Params) float64 {
	return p.LogP() * (p.Ts + p.m()*p.Tw)
}

// Reduce is equation (16): log p · (ts + m·(tw+1)) for a base operator.
func Reduce(p Params) float64 {
	return p.LogP() * (p.Ts + p.m()*(p.Tw+1))
}

// Scan is equation (17): log p · (ts + m·(tw+2)) for a base operator.
func Scan(p Params) float64 {
	return p.LogP() * (p.Ts + p.m()*(p.Tw+2))
}

// OfTerm estimates the run time of an arbitrary term under the butterfly
// implementation model. It generalizes equations (15)–(17) to the derived
// tuple operators: an operator of arity a and per-element cost c makes a
// reduction phase cost ts + a·m·tw + c·m and a scan phase
// ts + a·m·tw + 2·c·m. Local stages cost their per-element count times m,
// without the log p factor; duplication and projection are free (§4.2).
//
// The per-processor block size is tracked through the redistribution
// stages: a gather leaves the root with a p·m-word block and a scatter
// hands each processor a 1/p share of the root's block, so the stages in
// between are charged at the block size they actually see rather than at
// the global Params.M. For programs without redistribution (all of the
// paper's rules) the estimate is unchanged.
func OfTerm(t term.Term, p Params) float64 {
	total, _ := ofStages(t, p, p.m())
	return total
}

// ofStages walks the stages of t threading the current per-processor
// block size b, and returns the accumulated cost and the block size
// after the last stage.
func ofStages(t term.Term, p Params, b float64) (float64, float64) {
	total := 0.0
	for _, stage := range term.Stages(t) {
		var c float64
		c, b = ofStage(stage, p, b)
		total += c
	}
	return total, b
}

// ofStage estimates one stage at per-processor block size b and returns
// its cost together with the block size downstream stages see.
func ofStage(t term.Term, p Params, b float64) (float64, float64) {
	logp := p.LogP()
	switch s := t.(type) {
	case term.Map:
		return float64(s.F.Cost) * b, b
	case term.MapIdx:
		// The worst processor (rank p-1, all binary digits one for the
		// repeat schema) bounds the makespan.
		if s.F.Charge == nil {
			return 0, b
		}
		return s.F.Charge(p.P-1, int(b)), b
	case term.Bcast:
		return logp * (p.Ts + b*p.Tw), b
	case term.Gather:
		// Binomial tree shipping half the remaining data per phase:
		// log p start-ups and about p·b words through the root's link;
		// the root ends up holding all p blocks.
		return logp*p.Ts + float64(p.P)*b*p.Tw, b * float64(p.P)
	case term.Scatter:
		// The mirror image: the root's b-word block leaves through its
		// link and every processor keeps a 1/p share.
		return logp*p.Ts + b*p.Tw, b / float64(p.P)
	case term.Scan:
		a := float64(s.Op.Arity)
		c := float64(s.Op.Cost)
		return logp * (p.Ts + a*b*p.Tw + 2*c*b), b
	case term.ScanBal:
		ship := float64(s.Op.ShipWidth)
		c := float64(s.Op.CostHi)
		return logp * (p.Ts + ship*b*p.Tw + c*b), b
	case term.Reduce:
		a := float64(s.Op.Arity)
		c := float64(s.Op.Cost)
		return logp * (p.Ts + a*b*p.Tw + c*b), b
	case term.Comcast:
		if s.CostOptimal {
			// log p rounds, each shipping the whole working tuple and
			// computing both e and o on the critical path.
			a := float64(s.Ops.Arity)
			eo := float64(s.Ops.CostE + s.Ops.CostO)
			return logp * (p.Ts + a*b*p.Tw + eo*b), b
		}
		// bcast + local repeat; the worst processor applies o each phase.
		return logp*(p.Ts+b*p.Tw) + logp*float64(s.Ops.CostO)*b, b
	case term.Iter:
		return logp * float64(s.Op.Cost) * b, b
	case term.Halo:
		// k point-to-point transfers, output a width-|H| tuple of blocks.
		return HaloLine(s.H, p, b), b * float64(haloWidth(s.H))
	case term.AllGatherV:
		// The counts pin p and the total; downstream stages see the flat
		// T-word concatenation.
		return AllGatherVLine(s.Counts, p), float64(term.SumCounts(s.Counts))
	case term.ReduceScatterV:
		// The widest slice bounds the makespan; downstream stages see it.
		return ReduceScatterVLine(s.Op.Cost, s.Counts, p), float64(maxCount(s.Counts))
	case term.Seq:
		return ofStages(s, p, b)
	}
	return 0, b
}

// StageCost estimates a single stage at per-processor block size b and
// returns its cost together with the block size downstream stages see —
// the per-stage step of OfTerm, exported for layers that walk a program
// themselves (the selection layer in coll/sel tracks block sizes with it).
func StageCost(t term.Term, p Params, b float64) (float64, float64) {
	return ofStage(t, p, b)
}

// Floor is an admissible lower bound on the cost of every term reachable
// from t by the optimization rules, used to prune the plan search
// (rules.SearchOptimize). The rules rewrite only scans, unbalanced
// reductions, broadcasts, maps and gather/scatter pairs; the derived
// stages they produce — map#, iter, scan_balanced, balanced reductions,
// comcast — match no rule pattern, local work is never discarded (maps
// are only moved or fused, preserving their total cost), and the
// removable gather;scatter round trips are block-neutral. The cost of
// those surviving stages, charged at their tracked block sizes, is
// therefore a floor under every derivation.
func Floor(t term.Term, p Params) float64 {
	total, _ := floorStages(t, p, p.m())
	return total
}

func floorStages(t term.Term, p Params, b float64) (float64, float64) {
	total := 0.0
	for _, stage := range term.Stages(t) {
		switch s := stage.(type) {
		case term.Seq:
			var c float64
			c, b = floorStages(s, p, b)
			total += c
		case term.Gather, term.Scatter:
			// Removable (GS-Id/SG-Id): contributes nothing to the floor,
			// but still reshapes the block for the stages after it.
			_, b = ofStage(stage, p, b)
		case term.Halo, term.AllGatherV, term.ReduceScatterV:
			// Rewritable (HH-Combine fuses halos, RSAG-AllReduce replaces
			// the reduce_scatterv;allgatherv pair): no floor contribution,
			// but the block reshaping survives every derivation — combined
			// halos multiply the fan-ins, and the pair rewrite only fires
			// when the counts match, leaving the downstream block at T.
			_, b = ofStage(stage, p, b)
		case term.Map, term.MapIdx, term.Iter, term.ScanBal, term.Comcast:
			var c float64
			c, b = ofStage(stage, p, b)
			total += c
		case term.Reduce:
			if s.Balanced {
				var c float64
				c, b = ofStage(stage, p, b)
				total += c
			}
		}
	}
	return total, b
}

// lin is a linear form a·ts + b·m·tw + c·m (all per log p), the shape of
// every Table 1 entry.
type lin struct {
	ts, mtw, m float64
}

func (l lin) eval(p Params) float64 {
	return p.LogP() * (l.ts*p.Ts + l.mtw*p.m()*p.Tw + l.m*p.m())
}

// Entry is one row of Table 1: the rule name, the estimated times before
// and after the rewrite, and the improvement condition.
type Entry struct {
	// Rule is the rule name as in §3.
	Rule string
	// Before and After give the estimated run times (including the
	// log p factor, unlike the table's headings).
	Before func(Params) float64
	// After is the estimated run time of the right-hand side.
	After func(Params) float64
	// Improves reports whether the rule improves performance at the
	// given parameters (the table's "Improved if" column).
	Improves func(Params) bool
	// Condition is the human-readable improvement condition.
	Condition string
}

// entry builds an Entry from the two linear forms and condition.
func entry(rule string, before, after lin, cond func(Params) bool, condStr string) Entry {
	return Entry{
		Rule:      rule,
		Before:    before.eval,
		After:     after.eval,
		Improves:  cond,
		Condition: condStr,
	}
}

func always(Params) bool { return true }

// Table1 returns the closed-form performance estimates of Table 1, one
// entry per optimization rule, in the paper's order. CR-AllLocal, which
// the paper defines in §3.5 but leaves out of the table, is appended with
// the same accounting.
func Table1() []Entry {
	return []Entry{
		entry("SR2-Reduction",
			lin{2, 2, 3}, lin{1, 2, 3},
			always, "always"),
		entry("SR-Reduction",
			lin{2, 2, 3}, lin{1, 2, 4},
			func(p Params) bool { return p.Ts > p.m() },
			"ts > m"),
		entry("SS2-Scan",
			lin{2, 2, 4}, lin{1, 2, 6},
			func(p Params) bool { return p.Ts > 2*p.m() },
			"ts > 2m"),
		entry("SS-Scan",
			lin{2, 2, 4}, lin{1, 3, 8},
			func(p Params) bool { return p.Ts > p.m()*(p.Tw+4) },
			"ts > m(tw+4)"),
		entry("BS-Comcast",
			lin{2, 2, 2}, lin{1, 1, 2},
			always, "always"),
		entry("BSS2-Comcast",
			lin{3, 3, 4}, lin{1, 1, 5},
			func(p Params) bool { return p.Tw+p.Ts/p.m() > 0.5 },
			"tw + ts/m > 1/2"),
		entry("BSS-Comcast",
			lin{3, 3, 4}, lin{1, 1, 8},
			func(p Params) bool { return p.Tw+p.Ts/p.m() > 2 },
			"tw + ts/m > 2"),
		entry("BR-Local",
			lin{2, 2, 1}, lin{0, 0, 1},
			always, "always"),
		entry("BSR2-Local",
			lin{3, 3, 3}, lin{0, 0, 3},
			always, "always"),
		entry("BSR-Local",
			lin{3, 3, 3}, lin{0, 0, 4},
			func(p Params) bool { return p.Tw+p.Ts/p.m() >= 1.0/3 },
			"tw + ts/m >= 1/3"),
		entry("CR-AllLocal",
			lin{2, 2, 1}, lin{1, 1, 1},
			always, "always"),
	}
}

// Lookup returns the Table 1 entry for the named rule.
func Lookup(rule string) (Entry, bool) {
	for _, e := range Table1() {
		if e.Rule == rule {
			return e, true
		}
	}
	return Entry{}, false
}

// Crossover finds, by bisection over the block size m at fixed ts, tw and
// p, the largest m (within [1, hi]) at which the rule still improves
// performance according to the closed forms. It returns hi if the rule
// improves everywhere and 0 if nowhere. Used to locate the predicted
// crossover points such as SS2-Scan's m = ts/2.
func Crossover(e Entry, base Params, hi int) int {
	improves := func(m int) bool {
		p := base
		p.M = m
		return e.Improves(p)
	}
	if improves(hi) {
		return hi
	}
	if !improves(1) {
		return 0
	}
	lo, up := 1, hi // improves(lo), !improves(up)
	for up-lo > 1 {
		mid := (lo + up) / 2
		if improves(mid) {
			lo = mid
		} else {
			up = mid
		}
	}
	return lo
}
