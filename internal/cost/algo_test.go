package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func TestParseAlgo(t *testing.T) {
	for _, s := range []string{"", "butterfly", "rabenseifner", "ring", "ring-bi", "pipeline"} {
		if _, err := ParseAlgo(s); err != nil {
			t.Errorf("ParseAlgo(%q): %v", s, err)
		}
	}
	if _, err := ParseAlgo("bogus"); err == nil {
		t.Error("ParseAlgo accepted an unknown algorithm")
	}
}

func TestAlgosBaselineFirst(t *testing.T) {
	for _, coll := range []string{CollAllReduce, CollReduce, "bcast"} {
		algos := Algos(coll)
		if len(algos) == 0 || algos[0] != AlgoButterfly {
			t.Errorf("Algos(%s) = %v: butterfly must lead", coll, algos)
		}
	}
}

// TestPipelineSegmentsMinimizes: the returned k must beat (or tie) every
// other segment count's cost line across a parameter sweep.
func TestPipelineSegmentsMinimizes(t *testing.T) {
	for _, p := range []Params{
		{Ts: 1000, Tw: 1, P: 8, M: 4096},
		{Ts: 100, Tw: 1, P: 16, M: 1024},
		{Ts: 5000, Tw: 0.1, P: 4, M: 64},
		{Ts: 203, Tw: 0.007, P: 8, M: 1 << 15},
	} {
		k := PipelineSegments(p)
		if k < 1 || k > p.M {
			t.Fatalf("%+v: k=%d out of range", p, k)
		}
		best := pipelineCost(p, k)
		for kk := 1; kk <= min(p.M, 512); kk++ {
			if c := pipelineCost(p, kk); c < best-1e-9 {
				t.Fatalf("%+v: k=%d (%.1f) beaten by k=%d (%.1f)", p, k, best, kk, c)
			}
		}
	}
}

func TestPipelineSegmentsEdges(t *testing.T) {
	if k := PipelineSegments(Params{Ts: 1000, Tw: 1, P: 1, M: 64}); k != 1 {
		t.Errorf("p=1: k=%d, want 1", k)
	}
	if k := PipelineSegments(Params{Ts: 0, Tw: 1, P: 8, M: 64}); k != 64 {
		t.Errorf("ts=0: k=%d, want m", k)
	}
}

func TestApplicable(t *testing.T) {
	small := Params{Ts: 100, Tw: 1, P: 8, M: 4} // m < p
	mid := Params{Ts: 100, Tw: 1, P: 8, M: 8}   // m = p
	large := Params{Ts: 100, Tw: 1, P: 8, M: 1 << 12}
	cases := []struct {
		coll string
		a    Algo
		p    Params
		want bool
	}{
		{CollAllReduce, AlgoButterfly, small, true},
		{CollAllReduce, AlgoRabenseifner, small, false},
		{CollAllReduce, AlgoRabenseifner, mid, true},
		{CollAllReduce, AlgoRing, small, false},
		{CollAllReduce, AlgoRing, large, true},
		{CollAllReduce, AlgoRingBi, mid, false}, // needs m ≥ 2p
		{CollAllReduce, AlgoRingBi, large, true},
		{CollAllReduce, AlgoPipeline, large, false}, // pipeline is reduce-only
		{CollReduce, AlgoPipeline, small, true},
		{CollReduce, AlgoRing, large, false}, // ring is allreduce-only
	}
	for _, c := range cases {
		if got := Applicable(c.coll, c.a, c.p); got != c.want {
			t.Errorf("Applicable(%s, %s, m=%d p=%d) = %v, want %v", c.coll, c.a, c.p.M, c.p.P, got, c.want)
		}
	}
}

// TestAlgoCostRegimes pins the qualitative shape: the butterfly wins the
// start-up-dominated corner, the reduce-scatter family wins the
// bandwidth-dominated one.
func TestAlgoCostRegimes(t *testing.T) {
	startup := Params{Ts: 10000, Tw: 1, P: 16, M: 64}
	if a, _ := BestAlgo(CollAllReduce, startup, true); a != AlgoButterfly {
		t.Errorf("start-up regime picked %s, want butterfly", a)
	}
	bandwidth := Params{Ts: 10, Tw: 4, P: 16, M: 1 << 16}
	a, c := BestAlgo(CollAllReduce, bandwidth, true)
	bf, _ := AlgoCost(CollAllReduce, AlgoButterfly, bandwidth)
	if a == AlgoButterfly || c >= bf {
		t.Errorf("bandwidth regime picked %s (%.0f vs butterfly %.0f)", a, c, bf)
	}
}

func TestRabenseifnerNonPow2FoldSurcharge(t *testing.T) {
	pow2 := Params{Ts: 100, Tw: 1, P: 8, M: 1024}
	odd := Params{Ts: 100, Tw: 1, P: 7, M: 1024}
	c8, _ := AlgoCost(CollAllReduce, AlgoRabenseifner, pow2)
	c7, _ := AlgoCost(CollAllReduce, AlgoRabenseifner, odd)
	if c7 <= c8 {
		t.Errorf("non-pow2 rabenseifner (%.0f) must carry the fold surcharge over pow2 (%.0f)", c7, c8)
	}
}

// TestBestAlgoNeverWorseThanButterfly is the selection-soundness
// property: across random parameters the chosen algorithm's predicted
// cost never exceeds the butterfly line.
func TestBestAlgoNeverWorseThanButterfly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		p := Params{
			Ts: math.Exp(rng.Float64() * 10),
			Tw: math.Exp(rng.Float64()*6 - 3),
			P:  1 + rng.Intn(64),
			M:  1 + rng.Intn(1<<14),
		}
		for _, coll := range []string{CollAllReduce, CollReduce} {
			for _, ew := range []bool{true, false} {
				a, c := BestAlgo(coll, p, ew)
				bf, _ := AlgoCost(coll, AlgoButterfly, p)
				if c > bf {
					t.Fatalf("%s elementwise=%v %+v: %s costs %.1f > butterfly %.1f", coll, ew, p, a, c, bf)
				}
				if !ew && a != AlgoButterfly {
					t.Fatalf("non-elementwise selection must stay on the butterfly, got %s", a)
				}
				if !Applicable(coll, a, p) {
					t.Fatalf("BestAlgo picked inapplicable %s at %+v", a, p)
				}
			}
		}
	}
}

// TestOfTermAutoBounds: auto scoring never exceeds the butterfly
// estimate, agrees with it on programs without eligible reductions, and
// undercuts it where an alternative algorithm wins.
func TestOfTermAutoBounds(t *testing.T) {
	p := Params{Ts: 10, Tw: 4, P: 16, M: 1 << 14}
	prog := term.Seq{term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add, All: true}}
	if auto, plain := OfTermAuto(prog, p), OfTerm(prog, p); auto >= plain {
		t.Errorf("auto %.0f should undercut butterfly %.0f in the bandwidth regime", auto, plain)
	}
	scanOnly := term.Seq{term.Scan{Op: algebra.Add}, term.Bcast{}}
	if auto, plain := OfTermAuto(scanOnly, p), OfTerm(scanOnly, p); auto != plain {
		t.Errorf("auto %.0f must equal butterfly %.0f without eligible reductions", auto, plain)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		pp := Params{Ts: math.Exp(rng.Float64() * 8), Tw: math.Exp(rng.Float64()*4 - 2), P: 1 + rng.Intn(32), M: 1 + rng.Intn(1<<12)}
		if auto, plain := OfTermAuto(prog, pp), OfTerm(prog, pp); auto > plain+1e-9 {
			t.Fatalf("%+v: OfTermAuto %.1f > OfTerm %.1f", pp, auto, plain)
		}
	}
}

// TestSelectableReduce pins the side condition: balanced reductions and
// derived tuple operators are never selectable.
func TestSelectableReduce(t *testing.T) {
	if !SelectableReduce(term.Reduce{Op: algebra.Add, All: true}) {
		t.Error("allreduce(+) must be selectable")
	}
	if SelectableReduce(term.Reduce{Op: algebra.Add, All: true, Balanced: true}) {
		t.Error("balanced reductions are not selectable")
	}
	derived := &algebra.Op{Name: "op_x", Arity: 2}
	if SelectableReduce(term.Reduce{Op: derived}) {
		t.Error("derived tuple operators are not selectable")
	}
}
