package cost

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func TestLinFormArithmetic(t *testing.T) {
	a := LinForm{Ts: 2, MTw: 2, M: 3}
	b := LinForm{Ts: 1, MTw: 2, M: 3}
	d := a.Sub(b)
	if d != (LinForm{Ts: 1}) {
		t.Fatalf("Sub = %+v", d)
	}
	if s := a.Add(b); s != (LinForm{Ts: 3, MTw: 4, M: 6}) {
		t.Fatalf("Add = %+v", s)
	}
	if s := a.Scale(2); s != (LinForm{Ts: 4, MTw: 4, M: 6}) {
		t.Fatalf("Scale = %+v", s)
	}
	if !(LinForm{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestLinFormEval(t *testing.T) {
	l := LinForm{Ts: 2, MTw: 2, M: 3}
	p := Params{Ts: 100, Tw: 2, M: 10, P: 8}
	// 2·100 + 2·10·2 + 3·10 = 270, ×log p = 3.
	if got := l.Eval(p); got != 270 {
		t.Fatalf("Eval = %g", got)
	}
	if got := l.EvalTotal(p); got != 810 {
		t.Fatalf("EvalTotal = %g", got)
	}
}

func TestLinFormString(t *testing.T) {
	cases := []struct {
		l    LinForm
		want string
	}{
		{LinForm{Ts: 2, MTw: 2, M: 3}, "2ts + m(2tw + 3)"},
		{LinForm{Ts: 1, MTw: 2, M: 6}, "ts + m(2tw + 6)"},
		{LinForm{M: 1}, "m"},
		{LinForm{M: 3}, "3m"},
		{LinForm{Ts: 1, MTw: 1}, "ts + m(tw)"},
		{LinForm{}, "0"},
		{LinForm{Ts: 1, MTw: -1, M: -4}, "ts + m(-tw - 4)"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.l, got, c.want)
		}
	}
}

// TestSymbolicMatchesTable1 derives every Table 1 row symbolically from
// the term representations and compares against the stored closed forms
// at several parameter points.
func TestSymbolicMatchesTable1(t *testing.T) {
	sr2 := algebra.OpSR2(algebra.Mul, algebra.Add)
	sr := algebra.OpSR(algebra.Add)
	ss := algebra.OpSS(algebra.Add)
	rows := []struct {
		rule     string
		lhs, rhs term.Term
	}{
		{"SR2-Reduction",
			term.Seq{term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}},
			term.Seq{term.Map{F: term.PairFn}, term.Reduce{Op: sr2}, term.Map{F: term.FirstFn}}},
		{"SR-Reduction",
			term.Seq{term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}},
			term.Seq{term.Map{F: term.PairFn}, term.Reduce{Op: sr, Balanced: true}, term.Map{F: term.FirstFn}}},
		{"SS2-Scan",
			term.Seq{term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}},
			term.Seq{term.Map{F: term.PairFn}, term.Scan{Op: sr2}, term.Map{F: term.FirstFn}}},
		{"SS-Scan",
			term.Seq{term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}},
			term.Seq{term.Map{F: term.QuadrupleFn}, term.ScanBal{Op: ss}, term.Map{F: term.FirstFn}}},
		{"BS-Comcast",
			term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}},
			term.Seq{term.Comcast{Ops: algebra.OpCompBS(algebra.Add)}}},
		{"BSS2-Comcast",
			term.Seq{term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Scan{Op: algebra.Add}},
			term.Seq{term.Comcast{Ops: algebra.OpCompBSS2(algebra.Mul, algebra.Add)}}},
		{"BSS-Comcast",
			term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Scan{Op: algebra.Add}},
			term.Seq{term.Comcast{Ops: algebra.OpCompBSS(algebra.Add)}}},
		{"BR-Local",
			term.Seq{term.Bcast{}, term.Reduce{Op: algebra.Add}},
			term.Seq{term.Iter{Op: algebra.OpBR(algebra.Add)}}},
		{"BSR2-Local",
			term.Seq{term.Bcast{}, term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}},
			term.Seq{term.Iter{Op: algebra.OpBSR2(algebra.Mul, algebra.Add)}}},
		{"BSR-Local",
			term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}, term.Reduce{Op: algebra.Add}},
			term.Seq{term.Iter{Op: algebra.OpBSR(algebra.Add)}}},
		{"CR-AllLocal",
			term.Seq{term.Bcast{}, term.Reduce{Op: algebra.Add, All: true}},
			term.Seq{term.Iter{Op: algebra.OpBR(algebra.Add)}, term.Bcast{}}},
	}
	points := []Params{
		{Ts: 100, Tw: 2, M: 10, P: 8},
		{Ts: 5000, Tw: 1, M: 16, P: 32},
		{Ts: 1, Tw: 1, M: 1024, P: 64},
	}
	for _, row := range rows {
		entry, ok := Lookup(row.rule)
		if !ok {
			t.Fatalf("no table entry for %s", row.rule)
		}
		before := SymbolicOfTerm(row.lhs)
		after := SymbolicOfTerm(row.rhs)
		for _, p := range points {
			if got, want := before.EvalTotal(p), entry.Before(p); got != want {
				t.Errorf("%s before at %+v: symbolic %g, table %g (form %s)", row.rule, p, got, want, before)
			}
			if got, want := after.EvalTotal(p), entry.After(p); got != want {
				t.Errorf("%s after at %+v: symbolic %g, table %g (form %s)", row.rule, p, got, want, after)
			}
		}
	}
}

// TestDerivedConditionsMatchPaper reproduces the "Improved if" column by
// symbolic derivation alone.
func TestDerivedConditionsMatchPaper(t *testing.T) {
	cases := []struct {
		rule          string
		before, after LinForm
		want          string
	}{
		{"SR2-Reduction", LinForm{2, 2, 3, 0}, LinForm{1, 2, 3, 0}, "always"},
		{"SR-Reduction", LinForm{2, 2, 3, 0}, LinForm{1, 2, 4, 0}, "ts > m"},
		{"SS2-Scan", LinForm{2, 2, 4, 0}, LinForm{1, 2, 6, 0}, "ts > 2m"},
		{"SS-Scan", LinForm{2, 2, 4, 0}, LinForm{1, 3, 8, 0}, "ts > m(tw + 4)"},
		{"BS-Comcast", LinForm{2, 2, 2, 0}, LinForm{1, 1, 2, 0}, "always"},
		{"BSS2-Comcast", LinForm{3, 3, 4, 0}, LinForm{1, 1, 5, 0}, "tw + ts/m > 1/2"},
		{"BSS-Comcast", LinForm{3, 3, 4, 0}, LinForm{1, 1, 8, 0}, "tw + ts/m > 2"},
		{"BR-Local", LinForm{2, 2, 1, 0}, LinForm{0, 0, 1, 0}, "always"},
		{"BSR2-Local", LinForm{3, 3, 3, 0}, LinForm{0, 0, 3, 0}, "always"},
		{"BSR-Local", LinForm{3, 3, 3, 0}, LinForm{0, 0, 4, 0}, "tw + ts/m > 1/3"},
		{"CR-AllLocal", LinForm{2, 2, 1, 0}, LinForm{1, 1, 1, 0}, "always"},
	}
	for _, c := range cases {
		cond := DeriveCondition(c.before, c.after)
		if cond.Text != c.want {
			t.Errorf("%s: derived %q, want %q (diff %s)", c.rule, cond.Text, c.want, cond.Diff)
		}
		// The derived predicate must agree with the stored one across a
		// parameter sweep (> vs ≥ boundary cases excepted, checked with
		// strictly interior points).
		entry, _ := Lookup(c.rule)
		for _, ts := range []float64{1, 13, 130, 1300, 13000} {
			for _, tw := range []float64{0.25, 1, 3} {
				for _, m := range []int{1, 9, 99, 999, 29999} {
					p := Params{Ts: ts, Tw: tw, M: m, P: 64}
					if got, want := cond.Holds(p), entry.Improves(p); got != want {
						t.Errorf("%s at %+v: derived %v, stored %v", c.rule, p, got, want)
					}
				}
			}
		}
	}
}

func TestDeriveConditionEdgeCases(t *testing.T) {
	c := DeriveCondition(LinForm{Ts: 1}, LinForm{Ts: 1})
	if !c.Never || c.Text != "never (equal cost)" {
		t.Fatalf("equal cost: %+v", c)
	}
	c = DeriveCondition(LinForm{Ts: 1}, LinForm{Ts: 2})
	if !c.Never {
		t.Fatalf("strictly worse: %+v", c)
	}
	c = DeriveCondition(LinForm{Ts: 2, M: 1}, LinForm{Ts: 1})
	if !c.Always {
		t.Fatalf("strictly better: %+v", c)
	}
	// Mixed form that matches no paper pattern falls back to "diff > 0".
	c = DeriveCondition(LinForm{Ts: 1, Const: 5}, LinForm{M: 1})
	if c.Always || c.Never || c.Text == "" {
		t.Fatalf("fallback: %+v", c)
	}
}

func TestSymbolicOfTermRejectsCostedMap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := &term.Fn{Name: "f", Cost: 2}
	SymbolicOfTerm(term.Map{F: f})
}

// TestSymbolicAgreesWithOfTerm cross-checks the symbolic estimator
// against the numeric one on rule-shaped terms.
func TestSymbolicAgreesWithOfTerm(t *testing.T) {
	terms := []term.Term{
		term.Seq{term.Bcast{}, term.Scan{Op: algebra.Add}},
		term.Seq{term.Scan{Op: algebra.Mul}, term.Reduce{Op: algebra.Add}},
		term.Seq{term.Comcast{Ops: algebra.OpCompBSS(algebra.Add)}},
		term.Seq{term.Iter{Op: algebra.OpBSR(algebra.Add)}, term.Bcast{}},
	}
	p := Params{Ts: 777, Tw: 3, M: 42, P: 16}
	for _, tm := range terms {
		sym := SymbolicOfTerm(tm).EvalTotal(p)
		num := OfTerm(tm, p)
		if sym != num {
			t.Errorf("%s: symbolic %g vs numeric %g", tm, sym, num)
		}
	}
}
