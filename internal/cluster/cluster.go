// Package cluster extends the flat machine model to clusters of SMPs —
// the setting of the SIMPLE methodology the paper cites ([3]) and of its
// remark that "multithreaded computations in the symmetric multiprocessor
// nodes of clusters of SMPs can be expressed by introducing one more
// level of parallelism: map (map f) instead of map f" (§2.2).
//
// A cluster has Nodes × Cores processors; links inside a node are cheap
// (Intra parameters), links between nodes expensive (Inter parameters).
// The hierarchical collectives exploit the two levels: an operation first
// runs inside each node, then once across node leaders, then fans back —
// replacing log(n·c) expensive start-ups by log n expensive plus log c
// cheap ones. The subgroup communicators of package coll (Sub) do the
// rank bookkeeping.
package cluster

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// Placement maps global ranks onto nodes.
type Placement int

// Placement choices.
const (
	// Block places ranks [n·Cores, (n+1)·Cores) on node n — the layout
	// under which flat rank-aligned algorithms (binomial, butterfly)
	// are accidentally hierarchical already.
	Block Placement = iota
	// Cyclic places rank r on node r mod Nodes — the adversarial
	// layout (round-robin schedulers produce it) under which flat
	// algorithms cross the expensive interconnect in every phase and
	// placement-aware hierarchical collectives win decisively.
	Cyclic
)

// Topology describes a cluster of SMP nodes.
type Topology struct {
	// Nodes is the number of SMP nodes.
	Nodes int
	// Cores is the number of processors per node.
	Cores int
	// Intra are the link parameters inside a node.
	Intra machine.Params
	// Inter are the link parameters between nodes.
	Inter machine.Params
	// Placement maps ranks to nodes (default Block).
	Placement Placement
}

// P is the total processor count.
func (t Topology) P() int { return t.Nodes * t.Cores }

// Node returns the node a global rank lives on.
func (t Topology) Node(rank int) int {
	if t.Placement == Cyclic {
		return rank % t.Nodes
	}
	return rank / t.Cores
}

// nodeMembers lists the global ranks on a node, in rank order.
func (t Topology) nodeMembers(node int) []int {
	out := make([]int, t.Cores)
	for i := range out {
		if t.Placement == Cyclic {
			out[i] = node + i*t.Nodes
		} else {
			out[i] = node*t.Cores + i
		}
	}
	return out
}

// Machine builds the virtual machine with the two-level link costs.
func (t Topology) Machine() *machine.Machine {
	if t.Nodes < 1 || t.Cores < 1 {
		panic(fmt.Sprintf("cluster: bad topology %d×%d", t.Nodes, t.Cores))
	}
	m := machine.New(t.P(), t.Inter)
	m.LinkCost = func(src, dst int) machine.Params {
		if t.Node(src) == t.Node(dst) {
			return t.Intra
		}
		return t.Inter
	}
	return m
}

// Comms bundles the three communicators hierarchical collectives use.
type Comms struct {
	// World spans the whole cluster.
	World coll.Comm
	// Node spans the caller's SMP node.
	Node coll.Comm
	// Leaders spans the first core of every node; nil on non-leader
	// processors.
	Leaders coll.Comm
}

// CommsFor builds the communicator bundle for a processor. Every
// processor must call it (collectively) before using the hierarchical
// collectives. The node leader is the node's lowest global rank.
//
// Under Cyclic placement the hierarchical Reduce/AllReduce do not combine
// in global rank order (node members are not rank-contiguous), so they
// require a commutative operator there; Scan additionally requires Block
// placement, because prefixes are only decomposable over contiguous
// ranges.
func CommsFor(t Topology, p *machine.Proc) Comms {
	w := coll.World(p)
	node := t.Node(p.Rank())
	nodeRanks := t.nodeMembers(node)
	cs := Comms{World: w, Node: coll.Sub(w, nodeRanks)}
	if p.Rank() == nodeRanks[0] {
		leaderRanks := make([]int, t.Nodes)
		for i := range leaderRanks {
			leaderRanks[i] = t.nodeMembers(i)[0]
		}
		cs.Leaders = coll.Sub(w, leaderRanks)
	}
	return cs
}

// Bcast broadcasts global rank 0's value hierarchically: across the node
// leaders first (log n expensive transfers), then inside each node
// (log c cheap ones) — versus log(n·c) expensive transfers for the flat
// binomial tree.
func Bcast(cs Comms, x coll.Value) coll.Value {
	v := x
	if cs.Leaders != nil {
		v = coll.Bcast(cs.Leaders, 0, v)
	}
	return coll.Bcast(cs.Node, 0, v)
}

// Reduce combines all processors' values onto global rank 0: inside each
// node first, then across leaders. The operator must be associative;
// rank-ordered combining is preserved because node rank ranges are
// contiguous.
func Reduce(cs Comms, op *algebra.Op, x coll.Value) coll.Value {
	v := coll.Reduce(cs.Node, 0, op, x)
	if cs.Leaders != nil {
		return coll.Reduce(cs.Leaders, 0, op, v)
	}
	return v
}

// AllReduce delivers the combined value to every processor: node-level
// reduction, leader butterfly, node-level broadcast.
func AllReduce(cs Comms, op *algebra.Op, x coll.Value) coll.Value {
	v := coll.Reduce(cs.Node, 0, op, x)
	if cs.Leaders != nil {
		v = coll.AllReduce(cs.Leaders, op, v)
	}
	return coll.Bcast(cs.Node, 0, v)
}

// Scan computes the global inclusive prefix hierarchically:
//
//  1. each node scans locally (cheap links);
//  2. the node leaders, holding nothing yet, receive their node's total
//     from the node's last core and scan those totals (expensive links);
//  3. each leader passes the prefix of all *preceding* nodes back into
//     its node, where it is combined with the local prefixes.
//
// The exclusive offset for node k is the leaders' inclusive scan at node
// k−1, obtained by shifting among leaders — no inverses required.
func Scan(cs Comms, t Topology, p *machine.Proc, op *algebra.Op, x coll.Value) coll.Value {
	if t.Placement != Block {
		panic("cluster: hierarchical Scan requires Block placement (prefixes need contiguous ranges)")
	}
	tag := p.NextTag()
	local := coll.Scan(cs.Node, op, x)

	node := t.Node(p.Rank())
	leaderRank := node * t.Cores
	lastRank := leaderRank + t.Cores - 1

	// Step 2: the node total lives on the last core (its inclusive
	// prefix); ship it to the leader unless they coincide.
	var total coll.Value
	if t.Cores == 1 {
		total = local
	} else {
		switch p.Rank() {
		case lastRank:
			p.Send(leaderRank, local, local.Words(), tag)
		case leaderRank:
			total = p.Recv(lastRank, tag).(coll.Value)
		}
	}

	// Leaders scan node totals, then shift the inclusive results one
	// node to the right: node k's offset is node k−1's inclusive total.
	var offset coll.Value // nil on node 0: no preceding nodes
	if cs.Leaders != nil {
		incl := coll.Scan(cs.Leaders, op, total)
		shiftTag := p.NextTag()
		if node+1 < t.Nodes {
			next := (node + 1) * t.Cores
			p.Send(next, incl, incl.Words(), shiftTag)
		}
		if node > 0 {
			prev := (node - 1) * t.Cores
			offset = p.Recv(prev, shiftTag).(coll.Value)
		}
	} else {
		// Non-leaders must burn the same tag to stay synchronized.
		p.NextTag()
	}

	// Step 3: broadcast the offset within the node and combine.
	var off coll.Value
	if cs.Leaders != nil {
		if offset == nil {
			off = algebra.Undef{}
		} else {
			off = offset
		}
	}
	off = coll.Bcast(cs.Node, 0, off)
	if algebra.IsUndef(off) {
		return local
	}
	res := op.Apply(off, local)
	p.Compute(op.Charge(res))
	return res
}
