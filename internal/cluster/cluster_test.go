package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/machine"
)

// topo builds a test topology with cheap intra-node and expensive
// inter-node links.
func topo(nodes, cores int) Topology {
	return Topology{
		Nodes: nodes,
		Cores: cores,
		Intra: machine.Params{Ts: 10, Tw: 1},
		Inter: machine.Params{Ts: 1000, Tw: 2},
	}
}

func randScalars(rng *rand.Rand, n int) []coll.Value {
	out := make([]coll.Value, n)
	for i := range out {
		out[i] = algebra.Scalar(float64(rng.Intn(19) - 9))
	}
	return out
}

// runCluster executes body on every processor of the topology.
func runCluster(t Topology, body func(p *machine.Proc, cs Comms) coll.Value) ([]coll.Value, machine.Result) {
	m := t.Machine()
	out := make([]coll.Value, t.P())
	res := m.Run(func(p *machine.Proc) {
		cs := CommsFor(t, p)
		out[p.Rank()] = body(p, cs)
	})
	return out, res
}

var shapes = [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 3}, {3, 2}, {4, 4}, {3, 5}, {8, 4}}

func TestTopologyBasics(t *testing.T) {
	tp := topo(3, 4)
	if tp.P() != 12 {
		t.Fatalf("P = %d", tp.P())
	}
	if tp.Node(0) != 0 || tp.Node(3) != 0 || tp.Node(4) != 1 || tp.Node(11) != 2 {
		t.Fatal("Node mapping broken")
	}
}

func TestTopologyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Topology{Nodes: 0, Cores: 4}.Machine()
}

func TestLinkCostTwoLevels(t *testing.T) {
	tp := topo(2, 2)
	m := tp.Machine()
	res := m.Run(func(p *machine.Proc) {
		if p.Rank() == 0 {
			p.Send(1, nil, 10, 1) // intra: 10 + 10·1 = 20
			p.Send(2, nil, 10, 2) // inter: 1000 + 10·2 = 1020
		}
		if p.Rank() == 1 {
			p.Recv(0, 1)
		}
		if p.Rank() == 2 {
			p.Recv(0, 2)
		}
	})
	// Receiver 1: transfer departs at 0, intra cost 10 + 10·1 = 20.
	if res.Clocks[1] != 20 {
		t.Fatalf("intra-node receiver clock = %g, want 20", res.Clocks[1])
	}
	// Sender: 20 (intra) + 1020 (inter) = 1040; receiver max(0,20)+1020.
	if res.Clocks[2] != 1040 {
		t.Fatalf("inter-node receiver clock = %g, want 1040", res.Clocks[2])
	}
}

func TestHierBcastAllShapes(t *testing.T) {
	for _, sh := range shapes {
		tp := topo(sh[0], sh[1])
		out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
			x := coll.Value(algebra.Undef{})
			if p.Rank() == 0 {
				x = algebra.Scalar(77)
			}
			return Bcast(cs, x)
		})
		for r, v := range out {
			if !algebra.Equal(v, algebra.Scalar(77)) {
				t.Fatalf("%dx%d: proc %d = %v", sh[0], sh[1], r, v)
			}
		}
	}
}

func TestHierReduceAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, sh := range shapes {
		tp := topo(sh[0], sh[1])
		xs := randScalars(rng, tp.P())
		out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
			return Reduce(cs, algebra.Add, xs[p.Rank()])
		})
		want := 0.0
		for _, x := range xs {
			want += float64(x.(algebra.Scalar))
		}
		if !algebra.Equal(out[0], algebra.Scalar(want)) {
			t.Fatalf("%dx%d: reduce = %v, want %g", sh[0], sh[1], out[0], want)
		}
	}
}

func TestHierReduceNonCommutative(t *testing.T) {
	// Rank-ordered combining across the hierarchy: left projection
	// yields x0.
	rng := rand.New(rand.NewSource(102))
	for _, sh := range shapes {
		tp := topo(sh[0], sh[1])
		xs := randScalars(rng, tp.P())
		out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
			return Reduce(cs, algebra.Left, xs[p.Rank()])
		})
		if !algebra.Equal(out[0], xs[0]) {
			t.Fatalf("%dx%d: left-reduce = %v, want %v", sh[0], sh[1], out[0], xs[0])
		}
	}
}

func TestHierAllReduceAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, sh := range shapes {
		tp := topo(sh[0], sh[1])
		xs := randScalars(rng, tp.P())
		out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
			return AllReduce(cs, algebra.Add, xs[p.Rank()])
		})
		want := 0.0
		for _, x := range xs {
			want += float64(x.(algebra.Scalar))
		}
		for r, v := range out {
			if !algebra.Equal(v, algebra.Scalar(want)) {
				t.Fatalf("%dx%d: proc %d = %v, want %g", sh[0], sh[1], r, v, want)
			}
		}
	}
}

func TestHierScanAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, sh := range shapes {
		tp := topo(sh[0], sh[1])
		xs := randScalars(rng, tp.P())
		out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
			return Scan(cs, tp, p, algebra.Add, xs[p.Rank()])
		})
		acc := 0.0
		for r, x := range xs {
			acc += float64(x.(algebra.Scalar))
			if !algebra.Equal(out[r], algebra.Scalar(acc)) {
				t.Fatalf("%dx%d: proc %d = %v, want %g (xs %v, out %v)",
					sh[0], sh[1], r, out[r], acc, xs, out)
			}
		}
	}
}

func TestHierScanNonCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	tp := topo(3, 4)
	xs := randScalars(rng, tp.P())
	out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return Scan(cs, tp, p, algebra.Left, xs[p.Rank()])
	})
	for r, v := range out {
		if !algebra.Equal(v, xs[0]) {
			t.Fatalf("proc %d left-scan = %v, want %v", r, v, xs[0])
		}
	}
}

// TestBlockPlacementFlatIsAlreadyHierarchical documents a subtle finding:
// under Block placement, the flat binomial tree's critical path crosses
// the interconnect exactly ceil(log nodes) times — the same as the
// explicit hierarchy — so the two tie. The hierarchy's advantage needs an
// adversarial placement (next test).
func TestBlockPlacementFlatIsAlreadyHierarchical(t *testing.T) {
	tp := Topology{
		Nodes: 8, Cores: 8,
		Intra: machine.Params{Ts: 1, Tw: 1},
		Inter: machine.Params{Ts: 10000, Tw: 1},
	}
	bc := func(p *machine.Proc, cs Comms, flat bool) coll.Value {
		x := coll.Value(algebra.Undef{})
		if p.Rank() == 0 {
			x = algebra.Scalar(1)
		}
		if flat {
			return coll.Bcast(cs.World, 0, x)
		}
		return Bcast(cs, x)
	}
	_, hier := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value { return bc(p, cs, false) })
	_, flat := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value { return bc(p, cs, true) })
	if hier.Makespan != flat.Makespan {
		t.Fatalf("expected a tie under block placement: hier %g, flat %g", hier.Makespan, flat.Makespan)
	}
}

// TestHierarchicalBeatsFlatOnCyclicPlacement is the point of the
// placement-aware hierarchy: under cyclic (round-robin) placement on a
// non-power-of-two node count, the node of a rank depends on all of its
// bits, so the flat doubling algorithms cross the expensive interconnect
// in nearly every phase, while the hierarchical collectives still pay
// only ceil(log nodes) expensive start-ups. (With a power-of-two node
// count the node is a function of the low bits alone and the flat
// binomial accidentally ties the hierarchy — see the previous test.)
func TestHierarchicalBeatsFlatOnExpensiveInterconnect(t *testing.T) {
	tp := Topology{
		Nodes: 6, Cores: 8,
		Intra:     machine.Params{Ts: 1, Tw: 1},
		Inter:     machine.Params{Ts: 10000, Tw: 1},
		Placement: Cyclic,
	}
	_, hier := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		x := coll.Value(algebra.Undef{})
		if p.Rank() == 0 {
			x = algebra.Scalar(1)
		}
		return Bcast(cs, x)
	})
	_, flat := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		x := coll.Value(algebra.Undef{})
		if p.Rank() == 0 {
			x = algebra.Scalar(1)
		}
		return coll.Bcast(cs.World, 0, x)
	})
	if hier.Makespan >= flat.Makespan {
		t.Fatalf("hierarchical bcast (%g) not faster than flat (%g)", hier.Makespan, flat.Makespan)
	}

	_, hierR := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return AllReduce(cs, algebra.Add, algebra.Scalar(float64(p.Rank())))
	})
	_, flatR := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return coll.AllReduce(cs.World, algebra.Add, algebra.Scalar(float64(p.Rank())))
	})
	if hierR.Makespan >= flatR.Makespan {
		t.Fatalf("hierarchical allreduce (%g) not faster than flat (%g)", hierR.Makespan, flatR.Makespan)
	}
}

func TestCyclicPlacementCorrectness(t *testing.T) {
	// Hierarchical Bcast/Reduce/AllReduce stay correct under cyclic
	// placement (commutative operators).
	rng := rand.New(rand.NewSource(106))
	tp := Topology{
		Nodes: 4, Cores: 3,
		Intra:     machine.Params{Ts: 1, Tw: 1},
		Inter:     machine.Params{Ts: 100, Tw: 1},
		Placement: Cyclic,
	}
	xs := randScalars(rng, tp.P())
	want := 0.0
	for _, x := range xs {
		want += float64(x.(algebra.Scalar))
	}
	out, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return AllReduce(cs, algebra.Add, xs[p.Rank()])
	})
	for r, v := range out {
		if !algebra.Equal(v, algebra.Scalar(want)) {
			t.Fatalf("proc %d = %v, want %g", r, v, want)
		}
	}
	outB, _ := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		x := coll.Value(algebra.Undef{})
		if p.Rank() == 0 {
			x = algebra.Scalar(3)
		}
		return Bcast(cs, x)
	})
	for r, v := range outB {
		if !algebra.Equal(v, algebra.Scalar(3)) {
			t.Fatalf("cyclic bcast proc %d = %v", r, v)
		}
	}
}

func TestScanRejectsCyclicPlacement(t *testing.T) {
	tp := Topology{
		Nodes: 2, Cores: 2,
		Intra: machine.Params{}, Inter: machine.Params{},
		Placement: Cyclic,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return Scan(cs, tp, p, algebra.Add, algebra.Scalar(1))
	})
}

func TestNodeMembersPlacements(t *testing.T) {
	blk := Topology{Nodes: 3, Cores: 2}
	if got := blk.nodeMembers(1); got[0] != 2 || got[1] != 3 {
		t.Fatalf("block members = %v", got)
	}
	cyc := Topology{Nodes: 3, Cores: 2, Placement: Cyclic}
	if got := cyc.nodeMembers(1); got[0] != 1 || got[1] != 4 {
		t.Fatalf("cyclic members = %v", got)
	}
	if cyc.Node(4) != 1 || cyc.Node(5) != 2 {
		t.Fatal("cyclic Node mapping broken")
	}
}

// TestFlatBeatsHierarchicalOnUniformMachine: on a uniform machine the
// extra fan-in/fan-out stages make the hierarchy slower — the tradeoff is
// real, not free.
func TestFlatBeatsHierarchicalOnUniformMachine(t *testing.T) {
	tp := Topology{
		Nodes: 8, Cores: 8,
		Intra: machine.Params{Ts: 100, Tw: 1},
		Inter: machine.Params{Ts: 100, Tw: 1},
	}
	_, hier := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return AllReduce(cs, algebra.Add, algebra.Scalar(1))
	})
	_, flat := runCluster(tp, func(p *machine.Proc, cs Comms) coll.Value {
		return coll.AllReduce(cs.World, algebra.Add, algebra.Scalar(1))
	})
	if flat.Makespan >= hier.Makespan {
		t.Fatalf("flat allreduce (%g) should beat hierarchical (%g) on a uniform machine",
			flat.Makespan, hier.Makespan)
	}
}
