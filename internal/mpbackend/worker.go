package mpbackend

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// Env variables of the worker re-exec protocol: the coordinator spawns
// the current executable again with these set, and MaybeWorker — called
// first thing from main() or TestMain — detects them and runs the rank
// instead of the normal program.
const (
	envDir  = "COLLMP_DIR"
	envRank = "COLLMP_RANK"
)

// Body is one registered SPMD body: it runs on every rank of the process
// group with the job's parameters and returns a JSON-serializable result
// the coordinator collects. Closures cannot cross process boundaries, so
// the coordinator names a body and ships parameters; both sides resolve
// the name in the same registry, compiled into the shared executable.
type Body func(p *Proc, params json.RawMessage) (any, error)

var bodies = map[string]Body{}

// Register adds a body under name. Call from init (or from TestMain
// before MaybeWorker), so the registration exists in the re-executed
// worker too. Registering a duplicate name panics.
func Register(name string, b Body) {
	if _, dup := bodies[name]; dup {
		panic(fmt.Sprintf("mpbackend: body %q registered twice", name))
	}
	bodies[name] = b
}

// jobSpec is the job description the coordinator writes to job.json.
type jobSpec struct {
	Body       string          `json:"body"`
	P          int             `json:"p"`
	TimeoutSec float64         `json:"timeout_sec"`
	Params     json.RawMessage `json:"params"`
}

// rankOut is one rank's result envelope (out.<rank>.json).
type rankOut struct {
	Result json.RawMessage `json:"result,omitempty"`
	Err    string          `json:"error,omitempty"`
	// Msgs, Words and Ops are the rank's traffic and work counters,
	// comparable with the other backends' Result fields.
	Msgs  int     `json:"msgs"`
	Words int     `json:"words"`
	Ops   float64 `json:"ops"`
}

// MaybeWorker turns the current process into a multi-process rank when
// the coordinator's environment variables are set, and returns without
// effect otherwise. Every binary that coordinates multi-process runs —
// including test binaries, via TestMain — must call it before doing
// anything else, because the coordinator re-executes the running binary
// to spawn ranks. When acting as a worker it never returns: it runs the
// job body and exits.
func MaybeWorker() {
	dir := os.Getenv(envDir)
	if dir == "" {
		return
	}
	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpbackend: bad %s: %v\n", envRank, err)
		os.Exit(3)
	}
	if err := runWorker(dir, rank); err != nil {
		fmt.Fprintf(os.Stderr, "mpbackend: rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runWorker executes one rank of the job described in dir.
func runWorker(dir string, rank int) (err error) {
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return err
	}
	var spec jobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("bad job.json: %v", err)
	}
	if rank < 0 || rank >= spec.P {
		return fmt.Errorf("rank %d out of range [0,%d)", rank, spec.P)
	}
	body, ok := bodies[spec.Body]
	if !ok {
		return fmt.Errorf("no body named %q compiled into this binary", spec.Body)
	}
	timeout := time.Duration(spec.TimeoutSec * float64(time.Second))
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	// Belt-and-braces watchdog: a wedged rank exits on its own even if
	// the coordinator's kill never arrives.
	watchdog := time.AfterFunc(timeout, func() {
		fmt.Fprintf(os.Stderr, "mpbackend: rank %d timed out after %v\n", rank, timeout)
		os.Exit(3)
	})
	defer watchdog.Stop()
	pr, err := connect(dir, rank, spec.P, time.Now().Add(timeout))
	if err != nil {
		return err
	}
	out := rankOut{}
	res, bodyErr := func() (res any, bodyErr error) {
		defer func() {
			if r := recover(); r != nil {
				bodyErr = fmt.Errorf("panic: %v", r)
			}
		}()
		return body(pr, spec.Params)
	}()
	if bodyErr != nil {
		out.Err = bodyErr.Error()
	} else if res != nil {
		if out.Result, err = json.Marshal(res); err != nil {
			out.Err = fmt.Sprintf("unmarshalable body result: %v", err)
		}
	}
	out.Msgs, out.Words, out.Ops = pr.sent, pr.sentWords, pr.ops
	// Orderly shutdown: meet every peer at a final barrier before
	// closing any link, so no rank observes EOF mid-protocol. A failed
	// rank skips the barrier — its closed links then unwedge the others.
	if bodyErr == nil {
		func() {
			defer func() { recover() }() // a peer may have failed already
			pr.Barrier()
		}()
	}
	pr.close()
	data, err = json.Marshal(out)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, fmt.Sprintf("out.%d.tmp", rank))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, fmt.Sprintf("out.%d.json", rank)))
}
