package mpbackend

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/algebra"
)

// packet is one decoded in-flight message, queued between a link's reader
// goroutine and the rank's body.
type packet struct {
	value algebra.Value
	tag   int
	owned bool
}

// mailboxCap is the decoded-message queue depth per inbound link. It is
// deeper than the native backend's default because the socket reader
// drains ahead of the body: protocol bursts (barriers, unfold sends)
// should never stall the peer's writer.
const mailboxCap = 64

// Proc is one multi-process rank: a separate OS process connected to
// every peer by a Unix domain socket, with the same communicator surface
// as the in-process backends — coll.Comm, coll.Transport, coll.Mover and
// coll.ArenaHolder — so every collective of package coll runs on it
// unmodified. Unlike the in-process backends a message here is a real
// serialization: the value is encoded at the send site, shipped through
// the kernel, and decoded into fresh storage by the receiver, which is
// exactly the per-word cost the §4.1 model calls tw and the in-process
// transports calibrate to ~0.
type Proc struct {
	rank, p int
	// links[r] is the duplex connection to rank r (nil at rank itself).
	// Only the rank's body goroutine writes a link.
	links []*link
	// mail[src] queues decoded packets from src, filled by that link's
	// reader goroutine.
	mail []chan packet
	// dead is closed (once) by the first reader that fails; failErr is
	// written before the close, so goroutines observing the closed
	// channel read it race-free.
	dead     chan struct{}
	failOnce sync.Once
	failErr  error
	arena    *algebra.Arena
	tagseq   int
	ctrlseq  int
	// sent/recvd/sentWords/ops mirror the other backends' counters.
	sent, recvd int
	sentWords   int
	ops         float64
	// encBuf is the reusable frame-encoding buffer; it grows to the
	// largest message and is not reallocated per send.
	encBuf []byte
}

type link struct {
	conn net.Conn
	w    *bufio.Writer
}

// sockPath is rank r's listening socket inside the job directory.
func sockPath(dir string, r int) string {
	return filepath.Join(dir, fmt.Sprintf("rank.%d.sock", r))
}

// connect builds the full mesh for one rank: listen on the rank's own
// socket, dial every lower rank (retrying until its listener exists),
// then accept one connection from every higher rank. Dialers identify
// themselves with a 4-byte hello. The linear setup is acceptable because
// a process group is spawned once per job, not per measurement.
func connect(dir string, rank, p int, deadline time.Time) (*Proc, error) {
	pr := &Proc{
		rank:  rank,
		p:     p,
		links: make([]*link, p),
		mail:  make([]chan packet, p),
		dead:  make(chan struct{}),
		arena: algebra.NewArena(),
	}
	for r := range pr.mail {
		if r != rank {
			pr.mail[r] = make(chan packet, mailboxCap)
		}
	}
	if p == 1 {
		return pr, nil
	}
	ln, err := net.Listen("unix", sockPath(dir, rank))
	if err != nil {
		return nil, fmt.Errorf("rank %d listen: %w", rank, err)
	}
	defer ln.Close()
	for r := 0; r < rank; r++ {
		conn, err := dialRetry(sockPath(dir, r), deadline)
		if err != nil {
			return nil, fmt.Errorf("rank %d dialing rank %d: %w", rank, r, err)
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(rank))
		if _, err := conn.Write(hello[:]); err != nil {
			return nil, fmt.Errorf("rank %d hello to rank %d: %w", rank, r, err)
		}
		pr.links[r] = &link{conn: conn, w: bufio.NewWriter(conn)}
	}
	for n := rank + 1; n < p; n++ {
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("rank %d accepting peer: %w", rank, err)
		}
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return nil, fmt.Errorf("rank %d reading hello: %w", rank, err)
		}
		src := int(binary.LittleEndian.Uint32(hello[:]))
		if src <= rank || src >= p || pr.links[src] != nil {
			return nil, fmt.Errorf("rank %d got hello from unexpected rank %d", rank, src)
		}
		pr.links[src] = &link{conn: conn, w: bufio.NewWriter(conn)}
	}
	for r, l := range pr.links {
		if l != nil {
			go pr.read(r, l)
		}
	}
	return pr, nil
}

// dialRetry dials a peer socket, retrying while the peer's listener may
// not exist yet.
func dialRetry(path string, deadline time.Time) (net.Conn, error) {
	for {
		conn, err := net.Dial("unix", path)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// read is the per-link reader goroutine: it decodes frames from src into
// the mailbox until the connection closes. The first failure poisons the
// Proc so blocked receives surface it instead of hanging.
func (p *Proc) read(src int, l *link) {
	for {
		tag, owned, v, err := readFrame(l.conn)
		if err != nil {
			p.fail(fmt.Errorf("link from rank %d: %w", src, err))
			return
		}
		p.mail[src] <- packet{value: v, tag: tag, owned: owned}
	}
}

// fail records the first link failure and wakes every blocked receive.
func (p *Proc) fail(err error) {
	p.failOnce.Do(func() {
		p.failErr = err
		close(p.dead)
	})
}

// close shuts down every link; blocked peers observe EOF.
func (p *Proc) close() {
	for _, l := range p.links {
		if l != nil {
			l.w.Flush()
			l.conn.Close()
		}
	}
}

// Rank is this rank's index, 0 ≤ Rank < P.
func (p *Proc) Rank() int { return p.rank }

// Size is the process-group size.
func (p *Proc) Size() int { return p.p }

// NextTag returns a fresh message tag; the per-rank counters of an SPMD
// program stay synchronized, exactly as on the other backends.
func (p *Proc) NextTag() int {
	p.tagseq++
	return p.tagseq
}

// Compute records n charged units of local computation (the work itself
// already ran for real inside the operator).
func (p *Proc) Compute(n float64) {
	if n < 0 {
		panic("mpbackend: negative computation charge")
	}
	p.ops += n
}

// ScratchArena returns the rank's scratch-buffer arena. Because every
// message is serialized at the send site, no peer ever holds a reference
// into this rank's buffers — the body may Reset the arena at any
// quiescent point (the probe bodies do so between repetitions).
func (p *Proc) ScratchArena() *algebra.Arena { return p.arena }

// send encodes and ships one frame to dst.
func (p *Proc) send(dst, tag int, owned bool, v algebra.Value) {
	if dst == p.rank {
		panic(fmt.Sprintf("mpbackend: rank %d sending to itself", p.rank))
	}
	p.checkRank(dst)
	p.sent++
	p.sentWords += v.Words()
	p.encBuf = appendFrame(p.encBuf[:0], tag, owned, v)
	l := p.links[dst]
	if _, err := l.w.Write(p.encBuf); err != nil {
		panic(fmt.Sprintf("mpbackend: rank %d sending to rank %d: %v", p.rank, dst, err))
	}
	if err := l.w.Flush(); err != nil {
		panic(fmt.Sprintf("mpbackend: rank %d sending to rank %d: %v", p.rank, dst, err))
	}
}

// Send ships v to rank dst. The value is fully serialized before Send
// returns, so — unlike the in-process transports — the caller's buffer is
// not frozen afterwards; the borrow contract is still honored by treating
// it as such, which keeps programs portable across transports.
func (p *Proc) Send(dst int, v algebra.Value, tag int) {
	p.send(dst, tag, false, v)
}

// SendMove ships v transferring ownership (coll.Mover). Across a process
// boundary the receiver always gets private storage, so the move costs
// the same as Send; the sender's *FlatTuple is poisoned all the same, so
// the ownership discipline is checked identically on every transport.
func (p *Proc) SendMove(dst int, v algebra.Value, tag int) {
	p.send(dst, tag, true, v)
	if ft, ok := v.(*algebra.FlatTuple); ok {
		ft.MarkMoved()
	}
}

// TrySend is the non-blocking send of coll.Transport. Socket writes are
// buffered by the kernel and the peer's reader goroutine always drains,
// so the link always has room and TrySend never refuses.
func (p *Proc) TrySend(dst int, v algebra.Value, tag int) bool {
	p.send(dst, tag, false, v)
	return true
}

// take dequeues the next packet from src, surfacing a dead link as a
// panic instead of a hang. Delivered messages win over a concurrent link
// failure: the mailbox is drained before the poison is surfaced, so a
// peer closing right after its last send never loses that send.
func (p *Proc) take(src int) packet {
	p.checkRank(src)
	select {
	case pkt := <-p.mail[src]:
		p.recvd++
		return pkt
	default:
	}
	select {
	case pkt := <-p.mail[src]:
		p.recvd++
		return pkt
	case <-p.dead:
		select {
		case pkt := <-p.mail[src]:
			p.recvd++
			return pkt
		default:
		}
		panic(fmt.Sprintf("mpbackend: rank %d: %v", p.rank, p.failErr))
	}
}

// accept enforces the tag discipline shared with the other backends.
func (p *Proc) accept(pkt packet, src, tag int) packet {
	if pkt.tag != tag {
		panic(fmt.Sprintf("mpbackend: rank %d expected tag %d from rank %d, got %d", p.rank, tag, src, pkt.tag))
	}
	return pkt
}

// Recv receives the next message from rank src, blocking until it
// arrives.
func (p *Proc) Recv(src, tag int) algebra.Value {
	return p.accept(p.take(src), src, tag).value
}

// RecvOwned receives like Recv and reports whether the message moved
// ownership here (coll.Mover). Every received value is freshly decoded
// private storage, but the flag is carried on the wire so borrow/move
// semantics match the in-process transports exactly.
func (p *Proc) RecvOwned(src, tag int) (algebra.Value, bool) {
	pkt := p.accept(p.take(src), src, tag)
	return pkt.value, pkt.owned
}

// Exchange performs the simultaneous bidirectional swap with partner.
// Both sides write first — kernel socket buffers and the always-draining
// reader goroutines keep that deadlock-free — then read.
func (p *Proc) Exchange(partner int, v algebra.Value, tag int) algebra.Value {
	if partner == p.rank {
		panic(fmt.Sprintf("mpbackend: rank %d exchanging with itself", p.rank))
	}
	p.send(partner, tag, false, v)
	return p.accept(p.take(partner), partner, tag).value
}

// RecvAny dequeues the next message from src regardless of tag
// (coll.Transport).
func (p *Proc) RecvAny(src int) (algebra.Value, int) {
	pkt := p.take(src)
	return pkt.value, pkt.tag
}

// TryRecvAny dequeues an already-arrived message from src, if any
// (coll.Transport).
func (p *Proc) TryRecvAny(src int) (algebra.Value, int, bool) {
	p.checkRank(src)
	select {
	case pkt := <-p.mail[src]:
		p.recvd++
		return pkt.value, pkt.tag, true
	default:
		return nil, 0, false
	}
}

func (p *Proc) checkRank(r int) {
	if r < 0 || r >= p.p {
		panic(fmt.Sprintf("mpbackend: rank %d out of range [0,%d)", r, p.p))
	}
}

// ctrlBase offsets the barrier's control tags far below every application
// tag (NextTag counts up from 1, subgroup tags are offset positive), so a
// control message can never satisfy a collective's receive.
const ctrlBase = -(1 << 40)

// Barrier blocks until every rank of the group has entered it: non-zero
// ranks report to rank 0 and wait for its release. The measurement bodies
// use it to give every repetition a synchronized start, mirroring the
// barrier-released runs of the in-process backends. Control traffic does
// not count toward the message/word counters.
func (p *Proc) Barrier() {
	if p.p == 1 {
		return
	}
	p.ctrlseq++
	tag := ctrlBase - p.ctrlseq
	sent, words := p.sent, p.sentWords
	if p.rank == 0 {
		for r := 1; r < p.p; r++ {
			p.accept(p.take(r), r, tag)
			p.recvd--
		}
		for r := 1; r < p.p; r++ {
			p.send(r, tag, false, algebra.Scalar(0))
		}
	} else {
		p.send(0, tag, false, algebra.Scalar(0))
		p.accept(p.take(0), 0, tag)
		p.recvd--
	}
	p.sent, p.sentWords = sent, words
}
