package mpbackend

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/algebra"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/term"
)

// Built-in bodies: the calibration probes ("probe"), the algorithm
// portfolio measurement ("collective"), and the rule-grammar program
// executor ("program"). Together they let calib and exper re-run every
// table and figure across process boundaries without any new measurement
// code of their own — the same probes, the same collectives, the same
// timing discipline (barrier-synchronized repetitions, minimum taken by
// the caller), just on this backend.

func init() {
	Register("probe", probeBody)
	Register("collective", collectiveBody)
	Register("program", programBody)
}

// opByName resolves the operator names jobs may carry.
func opByName(name string) (*algebra.Op, error) {
	switch name {
	case "", "add":
		return algebra.Add, nil
	case "mul":
		return algebra.Mul, nil
	case "matmul":
		return algebra.MatMul, nil
	}
	return nil, fmt.Errorf("mpbackend: unknown operator %q", name)
}

// vecOf mirrors the deterministic block generators of calib and exper
// (calib.vec, exper.block): m words with small integer entries drawn
// sequentially from rng. The formula is duplicated here because those
// packages sit above this one in the import graph; a cross-check test in
// exper pins the two in sync.
func vecOf(rng *rand.Rand, m int) algebra.Vec {
	v := make(algebra.Vec, m)
	for i := range v {
		v[i] = float64(rng.Intn(9) + 1)
	}
	return v
}

// SeededInputs mirrors exper.inputs/calib.inputsFor: one block per rank,
// drawn sequentially so every rank deterministically reconstructs the
// whole input list and picks its own. It is exported so exper can pin the
// two generators bitwise-identical with a cross-check test — the
// multi-process conformance comparisons depend on it.
func SeededInputs(seed int64, p, m int) []algebra.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]algebra.Value, p)
	for i := range out {
		out[i] = vecOf(rng, m)
	}
	return out
}

// encodeResult serializes a value for the JSON result envelope using the
// wire codec.
func encodeResult(v algebra.Value) string {
	return base64.StdEncoding.EncodeToString(appendValue(nil, v))
}

// DecodeResult decodes a value a body encoded with the wire codec — the
// coordinator-side half of result comparison.
func DecodeResult(s string) (algebra.Value, error) {
	data, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	v, rest, err := readValue(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("mpbackend: %d trailing bytes after result value", len(rest))
	}
	return v, nil
}

// ProbeParams parameterizes the "probe" body: the calib probe kinds run
// on this backend. Rounds is the in-run iteration count (already scaled
// by the caller), Reps the number of barrier-separated repetitions — one
// extra warm-up repetition is prepended and reported, so callers discard
// RepNs[0].
type ProbeParams struct {
	Probe  string `json:"probe"`
	M      int    `json:"m"`
	Rounds int    `json:"rounds"`
	Reps   int    `json:"reps"`
}

// TimingResult is the per-rank result of the measurement bodies: the
// rank's elapsed wall time per repetition, from the repetition's barrier
// release to its own finish. The coordinator computes each repetition's
// makespan as the maximum over ranks and takes the minimum over the
// non-warm-up repetitions — the same methodology as the in-process
// backends.
type TimingResult struct {
	RepNs []float64 `json:"rep_ns"`
	// Result carries the final value of the last repetition (wire codec,
	// base64) where the body has one — the conformance hook.
	Result string `json:"result,omitempty"`
}

// MinMakespan reduces the measurement bodies' per-rank timings to one
// number the way the in-process backends do: each repetition's makespan
// is the maximum over ranks (the barrier releases everyone together, so
// per-rank deltas share a start), the warm-up repetition RepNs[0] is
// discarded, and the minimum over the rest estimates the undisturbed run.
func MinMakespan(results []RankResult) (float64, error) {
	timings, err := Decode[TimingResult](results)
	if err != nil {
		return 0, err
	}
	if len(timings) == 0 {
		return 0, fmt.Errorf("mpbackend: no rank timings")
	}
	n := len(timings[0].RepNs)
	if n < 2 {
		return 0, fmt.Errorf("mpbackend: need a warm-up plus at least one timed repetition, got %d", n)
	}
	for r, tr := range timings {
		if len(tr.RepNs) != n {
			return 0, fmt.Errorf("mpbackend: rank %d reported %d repetitions, rank 0 reported %d", r, len(tr.RepNs), n)
		}
	}
	best := math.Inf(1)
	for rep := 1; rep < n; rep++ {
		makespan := 0.0
		for _, tr := range timings {
			if tr.RepNs[rep] > makespan {
				makespan = tr.RepNs[rep]
			}
		}
		if makespan < best {
			best = makespan
		}
	}
	return best, nil
}

// repTimed runs op once per repetition (plus one warm-up), each from a
// barrier-synchronized start, resetting the scratch arena before every
// repetition exactly like Machine.Run does on the native backend.
func repTimed(p *Proc, reps int, op func()) []float64 {
	ns := make([]float64, 0, reps+1)
	for rep := 0; rep <= reps; rep++ {
		p.arena.Reset()
		p.Barrier()
		t0 := time.Now()
		op()
		ns = append(ns, float64(time.Since(t0).Nanoseconds()))
	}
	return ns
}

// sink keeps the compute probe's result alive.
var sink algebra.Value

func probeBody(p *Proc, raw json.RawMessage) (any, error) {
	var ps ProbeParams
	if err := json.Unmarshal(raw, &ps); err != nil {
		return nil, err
	}
	if ps.Reps < 1 || ps.Rounds < 1 || ps.M < 1 {
		return nil, fmt.Errorf("mpbackend: probe needs reps, rounds and m ≥ 1")
	}
	var op func()
	switch ps.Probe {
	case "pingpong":
		if p.Size() != 2 {
			return nil, fmt.Errorf("mpbackend: pingpong needs exactly 2 ranks, got %d", p.Size())
		}
		v := algebra.Value(vecOf(rand.New(rand.NewSource(1)), ps.M))
		op = func() {
			for i := 0; i < ps.Rounds; i++ {
				t1, t2 := p.NextTag(), p.NextTag()
				if p.Rank() == 0 {
					p.Send(1, v, t1)
					p.Recv(1, t2)
				} else {
					w := p.Recv(0, t1)
					p.Send(0, w, t2)
				}
			}
		}
	case "compute":
		rng := rand.New(rand.NewSource(2))
		v0, w := vecOf(rng, ps.M), vecOf(rng, ps.M)
		acc := make(algebra.Vec, ps.M)
		op = func() {
			copy(acc, v0)
			v := algebra.Value(acc)
			for i := 0; i < ps.Rounds; i++ {
				v = algebra.Add.ApplyInto(v, v, w)
			}
			sink = v
		}
	case "bcast", "reduce", "scan":
		blocks := SeededInputs(3, p.Size(), ps.M)
		v := blocks[p.Rank()]
		probe := ps.Probe
		op = func() {
			for i := 0; i < ps.Rounds; i++ {
				switch probe {
				case "bcast":
					coll.Bcast(p, 0, v)
				case "reduce":
					coll.Reduce(p, 0, algebra.Add, v)
				case "scan":
					coll.Scan(p, algebra.Add, v)
				}
			}
		}
	default:
		return nil, fmt.Errorf("mpbackend: unknown probe %q", ps.Probe)
	}
	return TimingResult{RepNs: repTimed(p, ps.Reps, op)}, nil
}

// CollectiveParams parameterizes the "collective" body: one portfolio
// algorithm of one collective, run on seeded inputs — the measurement
// behind the multi-process algorithm sweep and the crossover validation.
type CollectiveParams struct {
	// Collective is cost.CollReduce or cost.CollAllReduce; Algo a
	// portfolio algorithm name (cost.Algo), "" or "butterfly" for the
	// §4.1 baseline.
	Collective string `json:"collective"`
	Algo       string `json:"algo"`
	Op         string `json:"op"`
	M          int    `json:"m"`
	Segments   int    `json:"segments"`
	Reps       int    `json:"reps"`
	Seed       int64  `json:"seed"`
}

func collectiveBody(p *Proc, raw json.RawMessage) (any, error) {
	var ps CollectiveParams
	if err := json.Unmarshal(raw, &ps); err != nil {
		return nil, err
	}
	if ps.Reps < 1 || ps.M < 1 {
		return nil, fmt.Errorf("mpbackend: collective needs reps and m ≥ 1")
	}
	op, err := opByName(ps.Op)
	if err != nil {
		return nil, err
	}
	in := SeededInputs(ps.Seed, p.Size(), ps.M)[p.Rank()]
	var out algebra.Value
	run := func() {
		// Mirrors exper.MeasureCollective's dispatch.
		switch ps.Collective {
		case cost.CollAllReduce:
			switch cost.Algo(ps.Algo) {
			case cost.AlgoRabenseifner:
				out = coll.AllReduceRabenseifner(p, op, in)
			case cost.AlgoRing:
				out = coll.AllReduceRing(p, op, in)
			case cost.AlgoRingBi:
				out = coll.AllReduceRingBi(p, op, in)
			default:
				out = coll.AllReduce(p, op, in)
			}
		case cost.CollReduce:
			if cost.Algo(ps.Algo) == cost.AlgoPipeline {
				out = coll.ReducePipelined(p, op, in, ps.Segments)
			} else {
				out = coll.Reduce(p, 0, op, in)
			}
		default:
			panic(fmt.Sprintf("unknown collective %q", ps.Collective))
		}
	}
	ns := repTimed(p, ps.Reps, run)
	// Re-box before the arena-backed result is encoded: the final
	// repetition's buffers are still live (no Reset ran after it).
	return TimingResult{RepNs: ns, Result: encodeResult(out)}, nil
}

// ProgramParams parameterizes the "program" body: a rule-grammar program
// in surface syntax, run by the backend-generic stage executor on the
// conformance harness's deterministic inputs.
type ProgramParams struct {
	Src  string `json:"src"`
	M    int    `json:"m"`
	Reps int    `json:"reps"`
}

// confBlocks mirrors the conformance harness's deterministic per-rank
// blocks (backend's conformance_test.blocks and collchaos's).
func confBlocks(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for r := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*7+j*3)%5 + 1)
		}
		in[r] = b
	}
	return in
}

// confInputs adapts the blocks to the program: a leading scatter consumes
// a p-component list on rank 0, a leading reduce_scatterv a full
// ΣCounts-word vector per rank, and a leading allgatherv the ragged
// counts[r]-word blocks — as in the chaos harness.
func confInputs(prog term.Seq, p, m int) []algebra.Value {
	if len(prog) > 0 {
		switch st := prog[0].(type) {
		case term.Scatter:
			in := make([]algebra.Value, p)
			list := make(algebra.Tuple, p)
			copy(list, confBlocks(p, m))
			in[0] = list
			for r := 1; r < p; r++ {
				in[r] = algebra.Scalar(float64(-r))
			}
			return in
		case term.ReduceScatterV:
			total := term.SumCounts(st.Counts)
			in := make([]algebra.Value, p)
			for r := range in {
				b := make(algebra.Vec, total)
				for j := range b {
					b[j] = float64((r*7+j*3)%5 + 1)
				}
				in[r] = b
			}
			return in
		case term.AllGatherV:
			in := make([]algebra.Value, p)
			for r := range in {
				cnt := 0
				if r < len(st.Counts) {
					cnt = st.Counts[r]
				}
				b := make(algebra.Vec, cnt)
				for j := range b {
					b[j] = float64((r*7+j*3)%5 + 1)
				}
				in[r] = b
			}
			return in
		}
	}
	return confBlocks(p, m)
}

func programBody(p *Proc, raw json.RawMessage) (any, error) {
	var ps ProgramParams
	if err := json.Unmarshal(raw, &ps); err != nil {
		return nil, err
	}
	if ps.M < 1 {
		return nil, fmt.Errorf("mpbackend: program needs m ≥ 1")
	}
	if ps.Reps < 1 {
		ps.Reps = 1
	}
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	syms.DefineFn(rules.IncTupFn)
	t, err := lang.Parse(ps.Src, syms)
	if err != nil {
		return nil, fmt.Errorf("mpbackend: bad program: %v", err)
	}
	prog := term.Compose(t)
	in := confInputs(prog, p.Size(), ps.M)[p.Rank()]
	var out algebra.Value
	ns := repTimed(p, ps.Reps, func() {
		out = core.RunStages(p, prog, in)
	})
	return TimingResult{RepNs: ns, Result: encodeResult(out)}, nil
}
