// Sparse-collective conformance across real process boundaries: halo
// exchanges and the irregular V-collectives run through the "program"
// body (re-executed worker processes, JSON wire) and must agree bitwise
// with the native backend and, modulo undetermined positions, with the
// functional semantics — including zero-length and maximally-skewed
// counts.
package mpbackend_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/apps"
	"repro/internal/backend"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/mpbackend"
	"repro/internal/rules"
	"repro/internal/term"
)

// sparseConfInputs mirrors the body-side confInputs: a leading
// reduce_scatterv gets a full ΣCounts-word vector per rank, a leading
// allgatherv the ragged counts[r]-word blocks, everything else the
// dense deterministic blocks.
func sparseConfInputs(prog term.Seq, p, m int) []algebra.Value {
	word := func(r, j int) float64 { return float64((r*7+j*3)%5 + 1) }
	if len(prog) > 0 {
		switch st := prog[0].(type) {
		case term.ReduceScatterV:
			total := term.SumCounts(st.Counts)
			in := make([]algebra.Value, p)
			for r := range in {
				b := make(algebra.Vec, total)
				for j := range b {
					b[j] = word(r, j)
				}
				in[r] = b
			}
			return in
		case term.AllGatherV:
			in := make([]algebra.Value, p)
			for r := range in {
				b := make(algebra.Vec, st.Counts[r])
				for j := range b {
					b[j] = word(r, j)
				}
				in[r] = b
			}
			return in
		}
	}
	return confBlocks(p, m)
}

// TestSparseProgramsConform drives the sparse surface syntax through the
// multi-process backend on power-of-two and non-power-of-two machines.
// Counts vectors pin the machine size, so each program carries its own
// size list.
func TestSparseProgramsConform(t *testing.T) {
	type tc struct {
		src   string
		sizes []int
	}
	cases := []tc{
		{"halo(-1,1)", []int{1, 2, 3, 4, 5, 8}},
		{"halo(1,2) ; halo(0,3)", []int{2, 4, 5}},
		{"halo(0,1,0,-1) ; map inc_t", []int{3, 4}},
		{"allgatherv(2,0,3)", []int{3}},
		{"allgatherv(0,5,0,0)", []int{4}},
		{"allgatherv(0,0,0)", []int{3}},
		{"reduce_scatterv(+,2,0,3)", []int{3}},
		{"reduce_scatterv(max,1,0,2,1) ; allgatherv(1,0,2,1)", []int{4}},
		{"reduce_scatterv(+,1,2,0,1,0,3) ; allgatherv(1,2,0,1,0,3)", []int{6}},
	}
	if testing.Short() {
		cases = cases[:6]
	}
	for _, c := range cases {
		for _, p := range c.sizes {
			t.Run(fmt.Sprintf("p=%d/%s", p, c.src), func(t *testing.T) {
				syms := lang.NewSymbols()
				syms.DefineFn(rules.IncFn)
				syms.DefineFn(rules.IncTupFn)
				parsed, err := lang.Parse(c.src, syms)
				if err != nil {
					t.Fatal(err)
				}
				prog := term.Compose(parsed)
				const m = 4
				in := sparseConfInputs(prog, p, m)
				want, _ := core.ExecNative(prog, backend.New(p), in)
				sem := term.Eval(prog, in)
				got := mpResults(t, c.src, p, m)
				for r := 0; r < p; r++ {
					if !algebra.Equal(want[r], got[r]) {
						t.Fatalf("rank %d: multiproc %v, native %v", r, got[r], want[r])
					}
					if !algebra.EqualModuloUndef(got[r], sem[r]) {
						t.Fatalf("rank %d: multiproc %v, semantics %v", r, got[r], sem[r])
					}
				}
			})
		}
	}
}

// sparseAppParams parameterizes the registered sparse-application body:
// the workers rebuild the deterministic inputs from the seed, so only
// the shape crosses the wire.
type sparseAppParams struct {
	App  string `json:"app"`
	Seed int64  `json:"seed"`
	Pr   int    `json:"pr,omitempty"`
	Pc   int    `json:"pc,omitempty"`
}

// sparseAppInputs derives the application inputs from the seed — the
// coordinator-side reference and the re-executed workers call the same
// function, so both sides agree without shipping the data.
func sparseAppGrid(seed int64, rows, cols int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
		for j := range g[i] {
			g[i][j] = float64(rng.Intn(19) - 9)
		}
	}
	return g
}

func sparseAppRagged(seed int64, p int) (counts []int, flags []bool, values []float64) {
	rng := rand.New(rand.NewSource(seed))
	counts = make([]int, p)
	total := 0
	for i := range counts {
		counts[i] = rng.Intn(4)
		total += counts[i]
	}
	if total == 0 {
		counts[0] = 3
		total = 3
	}
	flags = make([]bool, total)
	values = make([]float64, total)
	for i := range values {
		flags[i] = rng.Intn(4) == 0
		values[i] = float64(rng.Intn(19) - 9)
	}
	return counts, flags, values
}

func sparseAppGraph(seed int64, p int) (n int, edges [][2]int, counts []int) {
	rng := rand.New(rand.NewSource(seed))
	n = 12
	edges = make([][2]int, 3*n)
	for i := range edges {
		edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	counts = make([]int, p)
	left := n
	for i := 0; i < p-1; i++ {
		counts[i] = rng.Intn(left + 1)
		left -= counts[i]
	}
	counts[p-1] = left
	return n, edges, counts
}

// sparseAppRank runs one application's rank body on any communicator —
// the shared SPMD core of the native reference and the worker body.
func sparseAppRank(c coll.Comm, ps sparseAppParams) algebra.Vec {
	switch ps.App {
	case "stencil":
		tiles := tileForMP(sparseAppGrid(ps.Seed, 4*ps.Pr, 3*ps.Pc), ps.Pr, ps.Pc)
		tile := apps.StencilRank(c, tiles[c.Rank()], ps.Pr, ps.Pc, 2)
		flat := make(algebra.Vec, 0, len(tile)*len(tile[0]))
		for _, row := range tile {
			flat = append(flat, row...)
		}
		return flat
	case "raggedscan":
		counts, flags, values := sparseAppRagged(ps.Seed, c.Size())
		off := 0
		for r := 0; r < c.Rank(); r++ {
			off += counts[r]
		}
		fb := flags[off : off+counts[c.Rank()]]
		vb := values[off : off+counts[c.Rank()]]
		return apps.RaggedSegScanRank(c, counts, fb, vb)
	case "degreehist":
		n, edges, counts := sparseAppGraph(ps.Seed, c.Size())
		per := len(edges) / c.Size()
		lo := c.Rank() * per
		hi := lo + per
		if c.Rank() == c.Size()-1 {
			hi = len(edges)
		}
		return apps.DegreeHistRank(c, n, counts, edges[lo:hi], 5)
	}
	panic(fmt.Sprintf("unknown sparse app %q", ps.App))
}

// tileForMP cuts the grid into pr×pc equal tiles in rank order
// (mirrors the apps-internal tiler for the worker side).
func tileForMP(grid [][]float64, pr, pc int) [][][]float64 {
	rows, cols := len(grid), len(grid[0])
	tr, tc := rows/pr, cols/pc
	tiles := make([][][]float64, pr*pc)
	for ri := 0; ri < pr; ri++ {
		for ci := 0; ci < pc; ci++ {
			tile := make([][]float64, tr)
			for i := range tile {
				tile[i] = append([]float64(nil), grid[ri*tr+i][ci*tc:ci*tc+tc]...)
			}
			tiles[ri*pc+ci] = tile
		}
	}
	return tiles
}

func init() {
	mpbackend.Register("test-sparse-app", func(p *mpbackend.Proc, raw json.RawMessage) (any, error) {
		var ps sparseAppParams
		if err := json.Unmarshal(raw, &ps); err != nil {
			return nil, err
		}
		out := sparseAppRank(p, ps)
		return []float64(out), nil
	})
}

// TestSparseAppsAcrossProcesses runs the stencil, ragged segmented
// scan, and degree histogram rank bodies in real worker processes and
// compares every rank's result bitwise against the native backend
// running the identical body.
func TestSparseAppsAcrossProcesses(t *testing.T) {
	cases := []sparseAppParams{
		{App: "stencil", Seed: 601, Pr: 2, Pc: 2},
		{App: "stencil", Seed: 602, Pr: 3, Pc: 1},
		{App: "raggedscan", Seed: 603},
		{App: "degreehist", Seed: 604},
	}
	for _, ps := range cases {
		p := 4
		if ps.App == "stencil" {
			p = ps.Pr * ps.Pc
		}
		t.Run(fmt.Sprintf("%s/p=%d", ps.App, p), func(t *testing.T) {
			want := make([]algebra.Vec, p)
			backend.New(p).Run(func(pr *backend.Proc) {
				want[pr.Rank()] = append(algebra.Vec(nil), sparseAppRank(pr, ps)...)
			})
			res, err := mpbackend.Run("test-sparse-app", p, ps, mpbackend.Options{})
			if err != nil {
				t.Fatal(err)
			}
			lists, err := mpbackend.Decode[[]float64](res)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < p; r++ {
				if len(lists[r]) != len(want[r]) {
					t.Fatalf("rank %d returned %d words, want %d", r, len(lists[r]), len(want[r]))
				}
				for i := range want[r] {
					if lists[r][i] != float64(want[r][i]) {
						t.Fatalf("rank %d word %d: multiproc %g, native %g", r, i, lists[r][i], want[r][i])
					}
				}
			}
		})
	}
}
