// Conformance and protocol tests for the multi-process backend. Every
// test here spawns real OS processes: the test binary re-executes itself
// (TestMain calls MaybeWorker), so results compared against the
// in-process backends crossed a genuine serialization boundary.
package mpbackend_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/mpbackend"
	"repro/internal/rules"
	"repro/internal/term"
)

func TestMain(m *testing.M) {
	mpbackend.MaybeWorker()
	os.Exit(m.Run())
}

// confBlocks mirrors the conformance harness's deterministic inputs.
func confBlocks(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for r := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*7+j*3)%5 + 1)
		}
		in[r] = b
	}
	return in
}

// mpResults runs the "program" body and decodes the per-rank values.
func mpResults(t *testing.T, src string, p, m int) []algebra.Value {
	t.Helper()
	res, err := mpbackend.Run("program", p, mpbackend.ProgramParams{Src: src, M: m, Reps: 1}, mpbackend.Options{})
	if err != nil {
		t.Fatalf("mp run of %q: %v", src, err)
	}
	timings, err := mpbackend.Decode[mpbackend.TimingResult](res)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]algebra.Value, p)
	for r, tr := range timings {
		if out[r], err = mpbackend.DecodeResult(tr.Result); err != nil {
			t.Fatalf("rank %d result: %v", r, err)
		}
	}
	return out
}

// TestProgramsConform runs rule-grammar programs across process
// boundaries and asserts bitwise equality with the native backend and,
// modulo undetermined positions, with the functional semantics. The
// native reference runs the identical program through the same stage
// executor, so any divergence is a transport bug — serialization must be
// value-exact.
func TestProgramsConform(t *testing.T) {
	progs := []string{
		"bcast",
		"reduce(+)",
		"allreduce(+)",
		"scan(+)",
		"bcast ; scan(+)",
		"scan(*) ; reduce(+) ; bcast",
		"gather ; scatter",
		"map pair ; allreduce(min) ; map pi_1",
	}
	sizes := []int{1, 2, 3, 4, 5, 8}
	if testing.Short() {
		progs = progs[:5]
		sizes = []int{1, 2, 3, 4}
	}
	for _, p := range sizes {
		for _, src := range progs {
			t.Run(fmt.Sprintf("p=%d/%s", p, src), func(t *testing.T) {
				syms := lang.NewSymbols()
				syms.DefineFn(rules.IncFn)
				parsed, err := lang.Parse(src, syms)
				if err != nil {
					t.Fatal(err)
				}
				prog := term.Compose(parsed)
				const m = 16
				in := confBlocks(p, m)
				want, _ := core.ExecNative(prog, backend.New(p), in)
				sem := term.Eval(prog, in)
				got := mpResults(t, src, p, m)
				for r := 0; r < p; r++ {
					if !algebra.Equal(want[r], got[r]) {
						t.Fatalf("rank %d: multiproc %v, native %v", r, got[r], want[r])
					}
					if !algebra.EqualModuloUndef(got[r], sem[r]) {
						t.Fatalf("rank %d: multiproc %v, semantics %v", r, got[r], sem[r])
					}
				}
			})
		}
	}
}

// TestCollectiveAlgosConform runs every portfolio algorithm across
// process boundaries and asserts bitwise equality with the native
// backend running the identical algorithm.
func TestCollectiveAlgosConform(t *testing.T) {
	type tc struct {
		collective string
		algo       cost.Algo
	}
	cases := []tc{
		{cost.CollAllReduce, cost.AlgoButterfly},
		{cost.CollAllReduce, cost.AlgoRabenseifner},
		{cost.CollAllReduce, cost.AlgoRing},
		{cost.CollAllReduce, cost.AlgoRingBi},
		{cost.CollReduce, cost.AlgoButterfly},
		{cost.CollReduce, cost.AlgoPipeline},
	}
	sizes := []int{4, 7}
	if testing.Short() {
		sizes = []int{4}
	}
	const m, seed, segments = 32, 11, 3
	for _, p := range sizes {
		in := seededBlocks(seed, p, m)
		for _, c := range cases {
			t.Run(fmt.Sprintf("p=%d/%s@%s", p, c.collective, c.algo), func(t *testing.T) {
				want := make([]algebra.Value, p)
				nm := backend.New(p)
				nm.Run(func(pr *backend.Proc) {
					want[pr.Rank()] = runCollective(pr, c.collective, c.algo, in[pr.Rank()], segments)
				})
				res, err := mpbackend.Run("collective", p, mpbackend.CollectiveParams{
					Collective: c.collective, Algo: string(c.algo), Op: "add",
					M: m, Segments: segments, Reps: 1, Seed: seed,
				}, mpbackend.Options{})
				if err != nil {
					t.Fatal(err)
				}
				timings, err := mpbackend.Decode[mpbackend.TimingResult](res)
				if err != nil {
					t.Fatal(err)
				}
				for r := range timings {
					got, err := mpbackend.DecodeResult(timings[r].Result)
					if err != nil {
						t.Fatal(err)
					}
					if len(timings[r].RepNs) != 2 {
						t.Fatalf("rank %d reported %d repetitions, want warm-up + 1", r, len(timings[r].RepNs))
					}
					if !algebra.Equal(want[r], got) {
						t.Fatalf("rank %d: multiproc %v, native %v", r, got, want[r])
					}
				}
			})
		}
	}
}

// seededBlocks mirrors the seeded input generator shared by exper, calib
// and the collective body.
func seededBlocks(seed int64, p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	rng := rand.New(rand.NewSource(seed))
	for i := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64(rng.Intn(9) + 1)
		}
		in[i] = b
	}
	return in
}

// runCollective mirrors the collective body's dispatch on an in-process
// communicator.
func runCollective(c coll.Comm, collective string, a cost.Algo, v algebra.Value, segments int) algebra.Value {
	switch collective {
	case cost.CollAllReduce:
		switch a {
		case cost.AlgoRabenseifner:
			return coll.AllReduceRabenseifner(c, algebra.Add, v)
		case cost.AlgoRing:
			return coll.AllReduceRing(c, algebra.Add, v)
		case cost.AlgoRingBi:
			return coll.AllReduceRingBi(c, algebra.Add, v)
		default:
			return coll.AllReduce(c, algebra.Add, v)
		}
	default:
		if a == cost.AlgoPipeline {
			return coll.ReducePipelined(c, algebra.Add, v, segments)
		}
		return coll.Reduce(c, 0, algebra.Add, v)
	}
}

// TestCountersMatchNative cross-checks the traffic accounting: the same
// program must move the same messages and words across process boundaries
// as it does on the in-process backends.
func TestCountersMatchNative(t *testing.T) {
	const src = "bcast ; scan(+) ; allreduce(+)"
	const p, m = 5, 8
	syms := lang.NewSymbols()
	parsed, err := lang.Parse(src, syms)
	if err != nil {
		t.Fatal(err)
	}
	prog := term.Compose(parsed)
	in := confBlocks(p, m)
	nm := backend.New(p)
	nres := nm.Run(func(pr *backend.Proc) {
		core.RunStages(pr, prog, in[pr.Rank()])
	})
	res, err := mpbackend.Run("program", p, mpbackend.ProgramParams{Src: src, M: m, Reps: 1}, mpbackend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msgs, words := 0, 0
	for _, r := range res {
		msgs += r.Msgs
		words += r.Words
	}
	// The body runs a warm-up plus one timed repetition: twice the
	// program's traffic.
	if msgs != 2*nres.Messages || words != 2*nres.Words {
		t.Fatalf("multiproc moved %d msgs/%d words over 2 runs, native %d/%d per run",
			msgs, words, nres.Messages, nres.Words)
	}
}

// TestProbeBody smoke-tests the calibration probes across processes: the
// timing vectors have the warm-up-plus-reps shape and every entry is a
// positive wall-clock measurement.
func TestProbeBody(t *testing.T) {
	for _, probe := range []string{"pingpong", "bcast", "reduce", "scan"} {
		p := 2
		if probe != "pingpong" {
			p = 3
		}
		res, err := mpbackend.Run("probe", p, mpbackend.ProbeParams{Probe: probe, M: 64, Rounds: 4, Reps: 2}, mpbackend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", probe, err)
		}
		timings, err := mpbackend.Decode[mpbackend.TimingResult](res)
		if err != nil {
			t.Fatal(err)
		}
		for r, tr := range timings {
			if len(tr.RepNs) != 3 {
				t.Fatalf("%s rank %d: %d repetitions, want warm-up + 2", probe, r, len(tr.RepNs))
			}
			for i, ns := range tr.RepNs {
				if ns <= 0 {
					t.Fatalf("%s rank %d rep %d: non-positive time %g", probe, r, i, ns)
				}
			}
		}
	}
	res, err := mpbackend.Run("probe", 1, mpbackend.ProbeParams{Probe: "compute", M: 64, Rounds: 16, Reps: 2}, mpbackend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("compute probe returned %d ranks", len(res))
	}
}

// echoRegistered exercises the Register extension seam: a custom body
// compiled into this test binary, resolved by name in the re-executed
// workers. It allgathers the ranks and returns the list, so it also
// checks full-mesh connectivity directly.
func init() {
	mpbackend.Register("test-allgather", func(p *mpbackend.Proc, raw json.RawMessage) (any, error) {
		got := coll.AllGather(p, algebra.Scalar(float64(p.Rank()*p.Rank())))
		out := make([]float64, len(got))
		for i, v := range got {
			out[i] = float64(v.(algebra.Scalar))
		}
		return out, nil
	})
}

func TestRegisteredBody(t *testing.T) {
	const p = 4
	res, err := mpbackend.Run("test-allgather", p, nil, mpbackend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lists, err := mpbackend.Decode[[]float64](res)
	if err != nil {
		t.Fatal(err)
	}
	for r, list := range lists {
		if len(list) != p {
			t.Fatalf("rank %d gathered %d entries", r, len(list))
		}
		for i, v := range list {
			if v != float64(i*i) {
				t.Fatalf("rank %d entry %d = %g, want %d", r, i, v, i*i)
			}
		}
	}
}

// TestRunErrors pins the coordinator's failure modes: unknown bodies and
// failing ranks surface as errors, not hangs.
func TestRunErrors(t *testing.T) {
	if _, err := mpbackend.Run("no-such-body", 2, nil, mpbackend.Options{}); err == nil {
		t.Fatal("unknown body did not fail")
	}
	if _, err := mpbackend.Run("program", 2, mpbackend.ProgramParams{Src: "scan(", M: 1}, mpbackend.Options{}); err == nil {
		t.Fatal("unparsable program did not fail")
	}
	if _, err := mpbackend.Run("probe", 3, mpbackend.ProbeParams{Probe: "pingpong", M: 1, Rounds: 1, Reps: 1}, mpbackend.Options{}); err == nil {
		t.Fatal("pingpong on 3 ranks did not fail")
	}
}
