// Package mpbackend is the multi-process distributed backend: the third
// implementation of the coll.Comm communicator, in which group members
// are separate OS processes connected by Unix domain sockets. Where the
// native backend's goroutines share one address space — so a message is a
// reference hand-off and the per-word cost tw calibrates to ~0 — a rank
// here can only communicate by serializing values through the kernel, so
// every message pays a real per-byte cost and the §4.1 model's tw term
// finally becomes observable: rings and pipelines beat the butterfly at
// large blocks, as the paper's Parsytec numbers predict (see the
// multiproc section of CALIB_native.json).
//
// # Coordinator/worker protocol
//
// Closures cannot cross process boundaries, so jobs are named bodies
// (Register) with JSON parameters. The coordinator (Run) writes the job
// description to a scratch directory and re-executes the current binary
// once per rank with COLLMP_DIR/COLLMP_RANK set; MaybeWorker — which
// every coordinating binary calls first thing in main or TestMain —
// detects the variables, connects the socket mesh, runs the body, writes
// its result to out.<rank>.json, and exits. The coordinator collects the
// per-rank results and tears the directory down. One process group is
// spawned per job; measurement bodies amortize the spawn by looping
// repetitions internally with barrier-synchronized starts, mirroring the
// timing discipline of the in-process backends.
package mpbackend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// DefaultTimeout bounds a job's wall time, coordinator and worker side.
const DefaultTimeout = 120 * time.Second

// Options tunes a coordinator run.
type Options struct {
	// Timeout bounds the whole job; 0 means DefaultTimeout. Workers arm
	// their own watchdog with the same bound.
	Timeout time.Duration
}

// RankResult is one rank's collected output.
type RankResult struct {
	// Result is the body's JSON-encoded return value.
	Result json.RawMessage
	// Msgs, Words and Ops are the rank's traffic and work counters.
	Msgs  int
	Words int
	Ops   float64
}

// Run executes the named body as an SPMD job across p freshly spawned
// rank processes and returns the per-rank results. params is marshaled to
// JSON and handed to every rank. Run fails if the body is not registered
// in this binary (the workers re-execute it, so registration here implies
// registration there), if any rank exits unhealthily, or if the job
// exceeds its timeout — in which case all ranks are killed.
func Run(body string, p int, params any, opt Options) ([]RankResult, error) {
	if p < 1 {
		return nil, fmt.Errorf("mpbackend: need at least 1 rank, got %d", p)
	}
	if _, ok := bodies[body]; !ok {
		return nil, fmt.Errorf("mpbackend: no body named %q", body)
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, fmt.Errorf("mpbackend: unmarshalable params: %v", err)
	}
	dir, err := os.MkdirTemp("", "collmp")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	spec := jobSpec{Body: body, P: p, TimeoutSec: timeout.Seconds(), Params: raw}
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(dir+"/job.json", data, 0o644); err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("mpbackend: cannot locate own executable: %v", err)
	}
	cmds := make([]*exec.Cmd, p)
	stderrs := make([]bytes.Buffer, p)
	for r := 0; r < p; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%s", envDir, dir),
			fmt.Sprintf("%s=%d", envRank, r))
		cmd.Stderr = &stderrs[r]
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("mpbackend: spawning rank %d: %v", r, err)
		}
		cmds[r] = cmd
	}
	waitErrs := make(chan error, p)
	for r, cmd := range cmds {
		go func(r int, cmd *exec.Cmd) {
			if err := cmd.Wait(); err != nil {
				waitErrs <- fmt.Errorf("rank %d: %v%s", r, err, stderrTail(&stderrs[r]))
				return
			}
			waitErrs <- nil
		}(r, cmd)
	}
	deadline := time.NewTimer(timeout + 5*time.Second)
	defer deadline.Stop()
	var failures []string
	for done := 0; done < p; done++ {
		select {
		case err := <-waitErrs:
			if err != nil {
				failures = append(failures, err.Error())
			}
		case <-deadline.C:
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
			return nil, fmt.Errorf("mpbackend: job %q (p=%d) exceeded %v; ranks killed", body, p, timeout)
		}
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("mpbackend: job %q failed:\n  %s", body, strings.Join(failures, "\n  "))
	}
	out := make([]RankResult, p)
	for r := 0; r < p; r++ {
		data, err := os.ReadFile(fmt.Sprintf("%s/out.%d.json", dir, r))
		if err != nil {
			return nil, fmt.Errorf("mpbackend: rank %d exited cleanly but wrote no result: %v", r, err)
		}
		var ro rankOut
		if err := json.Unmarshal(data, &ro); err != nil {
			return nil, fmt.Errorf("mpbackend: rank %d wrote a bad result: %v", r, err)
		}
		if ro.Err != "" {
			return nil, fmt.Errorf("mpbackend: rank %d: %s", r, ro.Err)
		}
		out[r] = RankResult{Result: ro.Result, Msgs: ro.Msgs, Words: ro.Words, Ops: ro.Ops}
	}
	return out, nil
}

// stderrTail renders the last lines of a failed rank's stderr for the
// error message.
func stderrTail(b *bytes.Buffer) string {
	s := strings.TrimSpace(b.String())
	if s == "" {
		return ""
	}
	lines := strings.Split(s, "\n")
	if len(lines) > 6 {
		lines = lines[len(lines)-6:]
	}
	return "\n    " + strings.Join(lines, "\n    ")
}

// Decode unmarshals every rank's body result into T.
func Decode[T any](results []RankResult) ([]T, error) {
	out := make([]T, len(results))
	for r, res := range results {
		if err := json.Unmarshal(res.Result, &out[r]); err != nil {
			return nil, fmt.Errorf("mpbackend: rank %d result: %v", r, err)
		}
	}
	return out, nil
}
