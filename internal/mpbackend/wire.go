package mpbackend

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/algebra"
	"repro/internal/coll"
)

// Wire format. Every message is one length-prefixed frame:
//
//	u32 length of the rest | i64 tag | u8 owned | value
//
// and a value is a kind byte followed by its payload:
//
//	0 Undef
//	1 Scalar:    f64
//	2 Vec:       u32 n | n × f64
//	3 FlatTuple: u32 w | u32 len(Data) | len × f64
//	4 Tuple:     u32 n | n × value
//	5 Mat:       u32 r | u32 c | r·c × f64
//	6 ValueList: u32 n | n × value (coll's gather/scatter chunks)
//
// All integers and floats are little-endian. The codec covers exactly the
// value algebra of package algebra; an unknown Value type is a programming
// error and panics at the send site with the offending type named, so a
// new value kind fails loudly instead of deadlocking a remote rank.
// Encoding and decoding are where the multi-process transport pays the
// per-word cost the cost model calls tw — the deep copy the in-process
// backends can elide is mandatory here.

const (
	kindUndef byte = iota
	kindScalar
	kindVec
	kindFlat
	kindTuple
	kindMat
	kindList
)

// appendValue serializes v onto buf.
func appendValue(buf []byte, v algebra.Value) []byte {
	switch x := v.(type) {
	case algebra.Undef:
		return append(buf, kindUndef)
	case algebra.Scalar:
		buf = append(buf, kindScalar)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(x)))
	case algebra.Vec:
		buf = append(buf, kindVec)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return appendFloats(buf, x)
	case *algebra.FlatTuple:
		buf = append(buf, kindFlat)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.W))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Data)))
		return appendFloats(buf, x.Data)
	case algebra.Tuple:
		buf = append(buf, kindTuple)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, c := range x {
			buf = appendValue(buf, c)
		}
		return buf
	case algebra.Mat:
		buf = append(buf, kindMat)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.R))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.C))
		return appendFloats(buf, x.Data)
	case coll.ValueList:
		buf = append(buf, kindList)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, c := range x {
			buf = appendValue(buf, c)
		}
		return buf
	}
	panic(fmt.Sprintf("mpbackend: cannot serialize a %T across process boundaries", v))
}

func appendFloats(buf []byte, fs []float64) []byte {
	for _, f := range fs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// readValue deserializes one value from buf, returning the remainder.
func readValue(buf []byte) (algebra.Value, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("truncated value")
	}
	kind := buf[0]
	buf = buf[1:]
	switch kind {
	case kindUndef:
		return algebra.Undef{}, buf, nil
	case kindScalar:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("truncated scalar")
		}
		s := algebra.Scalar(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
		return s, buf[8:], nil
	case kindVec:
		n, rest, err := readLen(buf, "vec")
		if err != nil {
			return nil, nil, err
		}
		v := make(algebra.Vec, n)
		rest, err = readFloats(rest, v, "vec")
		return v, rest, err
	case kindFlat:
		w, rest, err := readLen(buf, "flat tuple")
		if err != nil {
			return nil, nil, err
		}
		n, rest, err := readLen(rest, "flat tuple")
		if err != nil {
			return nil, nil, err
		}
		if w < 1 || n < w || n%w != 0 {
			return nil, nil, fmt.Errorf("flat tuple of %d words in %d components", n, w)
		}
		ft := &algebra.FlatTuple{W: w, Data: make([]float64, n)}
		rest, err = readFloats(rest, ft.Data, "flat tuple")
		return ft, rest, err
	case kindTuple:
		n, rest, err := readLen(buf, "tuple")
		if err != nil {
			return nil, nil, err
		}
		t := make(algebra.Tuple, n)
		for i := range t {
			t[i], rest, err = readValue(rest)
			if err != nil {
				return nil, nil, err
			}
		}
		return t, rest, nil
	case kindMat:
		r, rest, err := readLen(buf, "matrix")
		if err != nil {
			return nil, nil, err
		}
		c, rest, err := readLen(rest, "matrix")
		if err != nil {
			return nil, nil, err
		}
		m := algebra.Mat{R: r, C: c, Data: make([]float64, r*c)}
		rest, err = readFloats(rest, m.Data, "matrix")
		return m, rest, err
	case kindList:
		n, rest, err := readLen(buf, "value list")
		if err != nil {
			return nil, nil, err
		}
		l := make(coll.ValueList, n)
		for i := range l {
			l[i], rest, err = readValue(rest)
			if err != nil {
				return nil, nil, err
			}
		}
		return l, rest, nil
	}
	return nil, nil, fmt.Errorf("unknown value kind %d", kind)
}

func readLen(buf []byte, what string) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("truncated %s header", what)
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > 1<<28 {
		return 0, nil, fmt.Errorf("implausible %s size %d", what, n)
	}
	return int(n), buf[4:], nil
}

func readFloats(buf []byte, dst []float64, what string) ([]byte, error) {
	if len(buf) < 8*len(dst) {
		return nil, fmt.Errorf("truncated %s payload", what)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return buf[8*len(dst):], nil
}

// appendFrame serializes a tagged message onto buf, length prefix
// included.
func appendFrame(buf []byte, tag int, owned bool, v algebra.Value) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length back-patched below
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(tag)))
	if owned {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendValue(buf, v)
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// readFrame reads one frame from r, blocking until it is complete.
func readFrame(r io.Reader) (tag int, owned bool, v algebra.Value, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > 1<<30 {
		return 0, false, nil, fmt.Errorf("implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, false, nil, err
	}
	tag = int(int64(binary.LittleEndian.Uint64(body)))
	owned = body[8] != 0
	v, rest, err := readValue(body[9:])
	if err != nil {
		return 0, false, nil, err
	}
	if len(rest) != 0 {
		return 0, false, nil, fmt.Errorf("%d trailing bytes after value", len(rest))
	}
	return tag, owned, v, nil
}
