package machine

import (
	"fmt"
	"strings"
)

// Usage summarizes how one processor spent its virtual time.
type Usage struct {
	// Compute is the time spent in local computation.
	Compute float64
	// Comm is the time spent sending, receiving and exchanging
	// (including the wait for a late sender, which this model folds
	// into the transfer interval).
	Comm float64
	// Idle is the remaining time before the processor's finish.
	Idle float64
	// Finish is the processor's final clock.
	Finish float64
}

// Analyze aggregates a trace into per-processor usage. Overlapping
// intervals cannot occur (a processor does one thing at a time), so the
// busy time is the plain sum of event durations.
func Analyze(events []Event, procs int) []Usage {
	out := make([]Usage, procs)
	for _, e := range events {
		if e.Proc < 0 || e.Proc >= procs {
			continue
		}
		d := e.End - e.Start
		switch e.Kind {
		case EvCompute:
			out[e.Proc].Compute += d
		case EvSend, EvRecv, EvExchange:
			out[e.Proc].Comm += d
		}
		if e.End > out[e.Proc].Finish {
			out[e.Proc].Finish = e.End
		}
	}
	for i := range out {
		out[i].Idle = out[i].Finish - out[i].Compute - out[i].Comm
		if out[i].Idle < 0 {
			out[i].Idle = 0
		}
	}
	return out
}

// StageCost is the makespan contribution of one marked program stage: the
// maximum, over processors, of the time between the stage's mark and the
// next mark (or the processor's finish).
type StageCost struct {
	// Label is the stage label passed to Proc.Mark.
	Label string
	// Time is the stage's critical-path duration.
	Time float64
}

// StageBreakdown splits a trace at the Mark events each processor
// emitted: stage k spans from the k-th mark to the (k+1)-th (or the
// processor's finish), and its cost is the maximum span over processors.
// All processors must have emitted the same mark sequence, which the SPMD
// executor guarantees.
func StageBreakdown(events []Event, procs int) []StageCost {
	marks := make([][]Event, procs)
	finish := make([]float64, procs)
	for _, e := range events {
		if e.Proc < 0 || e.Proc >= procs {
			continue
		}
		if e.Kind == EvMark {
			marks[e.Proc] = append(marks[e.Proc], e)
		}
		if e.End > finish[e.Proc] {
			finish[e.Proc] = e.End
		}
	}
	if procs == 0 || len(marks[0]) == 0 {
		return nil
	}
	n := len(marks[0])
	for p := 1; p < procs; p++ {
		if len(marks[p]) != n {
			panic(fmt.Sprintf("machine: processor %d emitted %d marks, processor 0 emitted %d",
				p, len(marks[p]), n))
		}
	}
	out := make([]StageCost, n)
	for k := 0; k < n; k++ {
		out[k].Label = marks[0][k].Label
		for p := 0; p < procs; p++ {
			end := finish[p]
			if k+1 < n {
				end = marks[p][k+1].Start
			}
			if d := end - marks[p][k].Start; d > out[k].Time {
				out[k].Time = d
			}
		}
	}
	return out
}

// FormatProfile renders usage and stage breakdown as a small report.
func FormatProfile(usage []Usage, stages []StageCost) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s\n", "proc", "compute", "comm", "idle", "finish")
	for i, u := range usage {
		fmt.Fprintf(&b, "P%-5d %10.0f %10.0f %10.0f %10.0f\n", i, u.Compute, u.Comm, u.Idle, u.Finish)
	}
	if len(stages) > 0 {
		b.WriteString("\nstage breakdown (critical path):\n")
		total := 0.0
		for _, s := range stages {
			total += s.Time
		}
		// Render in program order, but give shares of the total.
		for _, s := range stages {
			share := 0.0
			if total > 0 {
				share = 100 * s.Time / total
			}
			fmt.Fprintf(&b, "  %-40s %10.0f  (%4.1f%%)\n", s.Label, s.Time, share)
		}
	}
	return b.String()
}
